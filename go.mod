module falseshare

go 1.22
