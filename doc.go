// Package falseshare reproduces "Reducing False Sharing on Shared
// Memory Multiprocessors through Compile Time Data Transformations"
// (Jeremiassen & Eggers, PPoPP 1995) as a complete Go system.
//
// The repository contains:
//
//   - a compiler front end for parc, the restricted explicitly
//     parallel C subset the paper's model requires (internal/lang);
//   - the paper's three compile-time analysis stages — per-process
//     control flow with PDV detection, barrier-based non-concurrency
//     analysis, and interprocedural summary side effects over bounded
//     regular section descriptors with static profiling
//     (internal/analysis);
//   - the four shared-data transformations and the §3.3 heuristics
//     (internal/transform), wired end to end in internal/core;
//   - the simulation substrate: a memory layout engine
//     (internal/layout), a bytecode VM producing interleaved shared
//     memory traces (internal/vm), a multiprocessor write-invalidate
//     cache simulator with word-granularity false-sharing miss
//     classification (internal/sim/cache), and a KSR2-like ring
//     execution-time model (internal/sim/ksr);
//   - the ten-benchmark workload of Table 1 (internal/workload) and
//     the harness regenerating Figure 3, Table 2, Figure 4, Table 3
//     and the aggregate claims (internal/experiments).
//
// Command-line entry points live in cmd/fsc (the restructurer),
// cmd/fssim (trace-driven cache simulation) and cmd/fsexp (the
// evaluation). Runnable examples are under examples/. The benchmarks
// in bench_test.go regenerate every table and figure via `go test
// -bench`.
package falseshare
