package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"falseshare/internal/experiments"
	"falseshare/internal/sim/ksr"
)

// update rewrites the golden files instead of comparing:
//
//	go test ./cmd/fsexp -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestGoldenFig3Output pins the exact text `fsexp -fig3` prints on a
// tiny configuration, so CLI formatting regressions (column widths,
// headers, bar glyphs, float precision) are caught by diff. The
// simulation itself is deterministic, so the file is stable across
// runs, worker counts, and platforms.
func TestGoldenFig3Output(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Workers = 4 // golden output must not depend on parallelism
	cfg.Fig3Blocks = []int64{16, 128}
	cells, err := experiments.Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly what main() prints for -fig3 (fmt.Println adds the
	// trailing newline).
	got := experiments.RenderFigure3(cells) + "\n"

	golden := filepath.Join("testdata", "fig3.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/fsexp -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("fsexp -fig3 output drifted from %s (refresh with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestGoldenTable2Output pins the exact text `fsexp -table2` prints on
// a reduced block set (the -scale-min configuration), mirroring
// TestGoldenFig3Output: deterministic simulation, so any diff is a
// formatting or classification change.
func TestGoldenTable2Output(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Workers = 4 // golden output must not depend on parallelism
	cfg.Table2Blocks = []int64{32, 128}
	rows, err := experiments.Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := experiments.RenderTable2(rows) + "\n"

	golden := filepath.Join("testdata", "table2.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/fsexp -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("fsexp -table2 output drifted from %s (refresh with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestGoldenFig4Output pins the exact text `fsexp -fig4` prints on the
// -scale-min sweep, mirroring the fig3 and table2 golden tests: the
// header line plus one RenderCurves block per program in sorted order,
// exactly as main() assembles them.
func TestGoldenFig4Output(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Workers = 4 // golden output must not depend on parallelism
	cfg.SweepCounts = []int{1, 2, 4}
	curves, err := experiments.Figure4(cfg, ksr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	got := "Figure 4: speedup curves (N=unoptimized C=compiler P=programmer)\n"
	for _, n := range names {
		got += experiments.RenderCurves(curves[n]) + "\n"
	}

	golden := filepath.Join("testdata", "fig4.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/fsexp -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("fsexp -fig4 output drifted from %s (refresh with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// TestGoldenMatrixOutput pins the exact text `fsexp -matrix` prints on
// a small generated population (the -scale-min program sizes): the
// aggregated protocol × topology grid plus the pattern summary. The
// generator and simulation are both deterministic, so the file is
// stable across runs, worker counts, and platforms.
func TestGoldenMatrixOutput(t *testing.T) {
	cfg := experiments.DefaultConfig()
	cfg.Workers = 4 // golden output must not depend on parallelism
	opt := experiments.MatrixOptions{Workloads: 8, Seed: 1, Procs: 8, Block: 64, ScaleMin: true}
	cells, err := experiments.Matrix(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := experiments.RenderMatrix(cells) + "\n"

	golden := filepath.Join("testdata", "matrix.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/fsexp -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("fsexp -matrix output drifted from %s (refresh with -update if intended):\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff for the failure message.
func diffLines(want, got string) string {
	w, g := splitLines(want), splitLines(got)
	out := ""
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			out += fmt.Sprintf("line %d:\n  want: %q\n  got:  %q\n", i+1, wl, gl)
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
