// Command fsexp regenerates the paper's evaluation: Figure 3,
// Table 2, Figure 4, Table 3, and the Section 1/5 aggregate numbers.
//
// Usage:
//
//	fsexp -fig3 -table2 -fig4 -table3 -aggregates    # pick any subset
//	fsexp -all                                        # everything
//	fsexp -all -quick                                 # reduced sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"falseshare/internal/experiments"
	"falseshare/internal/sim/ksr"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (the benchmark suite)")
		fig3   = flag.Bool("fig3", false, "regenerate Figure 3 (miss-rate bars)")
		table2 = flag.Bool("table2", false, "regenerate Table 2 (FS reduction by transformation)")
		fig4   = flag.Bool("fig4", false, "regenerate Figure 4 (speedup curves)")
		table3 = flag.Bool("table3", false, "regenerate Table 3 (maximum speedups)")
		aggr   = flag.Bool("aggregates", false, "regenerate the §1/§5 aggregate numbers")
		ccost  = flag.Bool("compilecost", false, "measure front-end vs restructuring time (§3.1 claim)")
		all    = flag.Bool("all", false, "regenerate everything")
		quick  = flag.Bool("quick", false, "smaller processor sweeps (faster)")
		csv    = flag.Bool("csv", false, "emit CSV instead of formatted tables (fig3/fig4/table2)")
		scale  = flag.Int("scale", 1, "workload scale")
	)
	flag.Parse()
	if *all {
		*table1, *fig3, *table2, *fig4, *table3, *aggr, *ccost = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig3 && !*table2 && !*fig4 && !*table3 && !*aggr && !*ccost {
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	if *quick {
		cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 20, 28}
		cfg.Table2Blocks = []int64{16, 64, 128, 256}
	}
	machine := ksr.DefaultConfig()

	if *table1 {
		fmt.Println(experiments.RenderTable1(experiments.Table1()))
	}
	if *fig3 {
		cells, err := experiments.Figure3(cfg)
		check(err)
		if *csv {
			fmt.Print(experiments.CSVFigure3(cells))
		} else {
			fmt.Println(experiments.RenderFigure3(cells))
		}
	}
	if *aggr {
		a, err := experiments.ComputeAggregates(cfg, 128)
		check(err)
		fmt.Println(a.Render())
	}
	if *table2 {
		rows, err := experiments.Table2(cfg)
		check(err)
		if *csv {
			fmt.Print(experiments.CSVTable2(rows))
		} else {
			fmt.Println(experiments.RenderTable2(rows))
		}
	}
	if *fig4 {
		curves, err := experiments.Figure4(cfg, machine)
		check(err)
		names := make([]string, 0, len(curves))
		for n := range curves {
			names = append(names, n)
		}
		sort.Strings(names)
		if !*csv {
			fmt.Println("Figure 4: speedup curves (N=unoptimized C=compiler P=programmer)")
		}
		for _, n := range names {
			if *csv {
				fmt.Print(experiments.CSVCurves(curves[n]))
			} else {
				fmt.Println(experiments.RenderCurves(curves[n]))
			}
		}
	}
	if *table3 {
		rows, err := experiments.Table3(cfg, machine)
		check(err)
		fmt.Println(experiments.RenderTable3(rows))
	}
	if *ccost {
		rows, err := experiments.CompileCost(*scale, 12, 5)
		check(err)
		fmt.Println(experiments.RenderCompileCost(rows))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsexp: %v\n", err)
		os.Exit(1)
	}
}
