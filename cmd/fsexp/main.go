// Command fsexp regenerates the paper's evaluation: Figure 3,
// Table 2, Figure 4, Table 3, and the Section 1/5 aggregate numbers.
//
// Usage:
//
//	fsexp -fig3 -table2 -fig4 -table3 -aggregates    # pick any subset
//	fsexp -all                                        # everything
//	fsexp -all -j 8                                   # 8 parallel jobs
//	fsexp -all -quick                                 # reduced sweeps
//	fsexp -all -scale-min -j 4                        # smoke-test config
//	fsexp -all -reportdir runs/                       # one JSON manifest
//	                                                  # per figure/table
//
// Every figure and table is regenerated from independent
// compile→run→simulate jobs fanned out over -j workers (default:
// GOMAXPROCS). Results are identical at any -j; -j 1 preserves the
// serial execution order exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"falseshare/internal/experiments"
	"falseshare/internal/obs"
	"falseshare/internal/sim/ksr"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (the benchmark suite)")
		fig3   = flag.Bool("fig3", false, "regenerate Figure 3 (miss-rate bars)")
		table2 = flag.Bool("table2", false, "regenerate Table 2 (FS reduction by transformation)")
		fig4   = flag.Bool("fig4", false, "regenerate Figure 4 (speedup curves)")
		table3 = flag.Bool("table3", false, "regenerate Table 3 (maximum speedups)")
		aggr   = flag.Bool("aggregates", false, "regenerate the §1/§5 aggregate numbers")
		ccost  = flag.Bool("compilecost", false, "measure front-end vs restructuring time (§3.1 claim)")
		all    = flag.Bool("all", false, "regenerate everything")
		quick  = flag.Bool("quick", false, "smaller processor sweeps (faster)")
		csv    = flag.Bool("csv", false, "emit CSV instead of formatted tables (fig3/fig4/table2)")
		scale  = flag.Int("scale", 1, "workload scale")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "parallel experiment jobs (1 = serial)")

		scaleMin = flag.Bool("scale-min", false, "minimal sweeps and block sets (CI smoke runs)")

		reportDir = flag.String("reportdir", "", "write one JSON run manifest per figure/table into this directory")
		verbose   = flag.Bool("v", false, "log experiment progress to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *all {
		*table1, *fig3, *table2, *fig4, *table3, *aggr, *ccost = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig3 && !*table2 && !*fig4 && !*table3 && !*aggr && !*ccost {
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			check(err)
		}
		defer stop()
	}
	if *verbose {
		rec := obs.NewRecorder()
		rec.Verbose = true
		obs.Install(rec)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *jobs
	if *quick {
		cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 20, 28}
		cfg.Table2Blocks = []int64{16, 64, 128, 256}
	}
	if *scaleMin {
		cfg.SweepCounts = []int{1, 2, 4}
		cfg.Table2Blocks = []int64{32, 128}
		cfg.Fig3Blocks = []int64{16, 128}
	}
	machine := ksr.DefaultConfig()

	// run executes one experiment. With -reportdir every run records
	// into its own manifest (stage spans plus the result rows) written
	// as <dir>/<name>.json, so benchmark trajectories diff as JSON.
	run := func(name string, fn func() (any, error)) any {
		if *reportDir == "" {
			v, err := fn()
			check(err)
			return v
		}
		rep, err := experiments.RunManifest("fsexp", name, experiments.ConfigMap(cfg), fn)
		check(err)
		path, werr := experiments.WriteManifest(*reportDir, name, rep)
		check(werr)
		if *verbose {
			fmt.Fprintf(os.Stderr, "fsexp: %s manifest -> %s\n", name, path)
		}
		v := rep.Data["result"]
		return v
	}

	if *table1 {
		fmt.Println(experiments.RenderTable1(experiments.Table1()))
	}
	if *fig3 {
		cells := run("fig3", func() (any, error) { return experiments.Figure3(cfg) }).([]experiments.Fig3Cell)
		if *csv {
			fmt.Print(experiments.CSVFigure3(cells))
		} else {
			fmt.Println(experiments.RenderFigure3(cells))
		}
	}
	if *aggr {
		a := run("aggregates", func() (any, error) { return experiments.ComputeAggregates(cfg, 128) }).(*experiments.Aggregates)
		fmt.Println(a.Render())
	}
	if *table2 {
		rows := run("table2", func() (any, error) { return experiments.Table2(cfg) }).([]experiments.Table2Row)
		if *csv {
			fmt.Print(experiments.CSVTable2(rows))
		} else {
			fmt.Println(experiments.RenderTable2(rows))
		}
	}
	if *fig4 {
		curves := run("fig4", func() (any, error) { return experiments.Figure4(cfg, machine) }).(map[string][]experiments.Curve)
		names := make([]string, 0, len(curves))
		for n := range curves {
			names = append(names, n)
		}
		sort.Strings(names)
		if !*csv {
			fmt.Println("Figure 4: speedup curves (N=unoptimized C=compiler P=programmer)")
		}
		for _, n := range names {
			if *csv {
				fmt.Print(experiments.CSVCurves(curves[n]))
			} else {
				fmt.Println(experiments.RenderCurves(curves[n]))
			}
		}
	}
	if *table3 {
		rows := run("table3", func() (any, error) { return experiments.Table3(cfg, machine) }).([]experiments.Table3Row)
		fmt.Println(experiments.RenderTable3(rows))
	}
	if *ccost {
		rows := run("compilecost", func() (any, error) { return experiments.CompileCost(*scale, 12, 5, *jobs) }).([]experiments.CompileCostRow)
		fmt.Println(experiments.RenderCompileCost(rows))
	}

	if *memprof != "" {
		check(obs.WriteHeapProfile(*memprof))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsexp: %v\n", err)
		os.Exit(1)
	}
}
