// Command fsexp regenerates the paper's evaluation: Figure 3,
// Table 2, Figure 4, Table 3, and the Section 1/5 aggregate numbers.
//
// Usage:
//
//	fsexp -fig3 -table2 -fig4 -table3 -aggregates    # pick any subset
//	fsexp -all                                        # everything
//	fsexp -all -j 8                                   # 8 parallel jobs
//	fsexp -all -quick                                 # reduced sweeps
//	fsexp -all -scale-min -j 4                        # smoke-test config
//	fsexp -all -reportdir runs/                       # one JSON manifest
//	                                                  # per figure/table
//	fsexp -all -resume runs/r1                        # checkpoint cells;
//	                                                  # re-run resumes
//	fsexp -all -keep-going                            # render what
//	                                                  # survives failures
//
// Every figure and table is regenerated from independent
// compile→run→simulate jobs fanned out over -j workers (default:
// GOMAXPROCS). Results are identical at any -j; -j 1 preserves the
// serial execution order exactly.
//
// Fault tolerance: Ctrl-C (or SIGTERM) cancels the run cooperatively —
// cells in flight stop at their next cancellation check, finished
// cells stay checkpointed when -resume is set, and a second interrupt
// exits immediately (reaping any spawned worker processes). -job-timeout
// bounds each cell, -retries re-runs transiently failed cells,
// -step-budget caps VM instructions so a runaway program fails instead
// of hanging. -faults (or the FSEXP_FAULTS environment variable)
// injects deterministic faults for testing; see internal/faultinject.
//
// Distributed runs: -workers N shards the cells across N spawned
// worker processes (fsexp -worker over stdio); -listen additionally
// accepts external workers started with `fsexp -worker -connect`.
// Dead or hung workers are detected by heartbeat and per-cell
// deadline, their cells reassigned, and the resulting manifests are
// byte-identical (modulo timing) to a single-process run. -cache
// dedups cells through a persistent content-addressed store. See
// internal/experiments/fabric.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"

	"falseshare/internal/experiments"
	"falseshare/internal/experiments/fabric"
	"falseshare/internal/experiments/journal"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/ksr"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 (the benchmark suite)")
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3 (miss-rate bars)")
		table2   = flag.Bool("table2", false, "regenerate Table 2 (FS reduction by transformation)")
		fig4     = flag.Bool("fig4", false, "regenerate Figure 4 (speedup curves)")
		table3   = flag.Bool("table3", false, "regenerate Table 3 (maximum speedups)")
		aggr     = flag.Bool("aggregates", false, "regenerate the §1/§5 aggregate numbers")
		ccost    = flag.Bool("compilecost", false, "measure front-end vs restructuring time (§3.1 claim)")
		all      = flag.Bool("all", false, "regenerate everything")
		bench    = flag.Bool("bench", false, "replay the fixed benchmark matrix and write the BENCH_sim.json trajectory")
		matrix   = flag.Bool("matrix", false, "sweep generated workloads across every coherence protocol and topology")
		benchout = flag.String("benchout", "BENCH_sim.json", "output path for the -bench report")
		quick    = flag.Bool("quick", false, "smaller processor sweeps (faster)")
		csv      = flag.Bool("csv", false, "emit CSV instead of formatted tables (fig3/fig4/table2)")
		scale    = flag.Int("scale", 1, "workload scale")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "parallel experiment jobs (1 = serial)")

		scaleMin = flag.Bool("scale-min", false, "minimal sweeps and block sets (CI smoke runs)")

		matrixWorkloads = flag.Int("matrix-workloads", 60, "generated workload population for -matrix")
		matrixSeed      = flag.Int64("matrix-seed", 1, "generator corpus seed for -matrix")
		matrixProcs     = flag.Int("matrix-procs", 8, "processor count for -matrix cells")
		matrixBlock     = flag.Int64("matrix-block", 64, "block size for -matrix cells")
		protocols       = flag.String("protocols", "", "comma-separated protocol subset for -matrix (default: all)")
		topologies      = flag.String("topologies", "", "comma-separated topology subset for -matrix (default: all)")

		workerMode = flag.Bool("worker", false, "run as a fabric worker process (spawned by -workers, or started by hand with -connect)")
		connect    = flag.String("connect", "", "with -worker: attach to a coordinator listening at this host:port")
		workersN   = flag.Int("workers", 0, "distribute cells across this many spawned worker processes (0 = run in-process)")
		listenAddr = flag.String("listen", "", "accept external fabric workers on this TCP host:port")
		cacheDir   = flag.String("cache", "", "content-addressed result cache directory: identical cells dedup across runs and shards")
		cacheBytes = flag.Int64("cache-bytes", 0, "LRU byte budget for -cache: least-recently-used entries are evicted past this size (0 = unlimited)")

		resume     = flag.String("resume", "", "checkpoint completed cells into this directory's journal and skip cells already checkpointed")
		keepGoing  = flag.Bool("keep-going", false, "keep running after cell failures and render partial figures/tables (default: fail fast)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-cell deadline, e.g. 90s (0 = none)")
		retries    = flag.Int("retries", 0, "retry a transiently failed cell up to this many times")
		stepBudget = flag.Int64("step-budget", 0, "per-process VM instruction cap (0 = the VM default of 1e9)")
		verifyRuns = flag.Bool("verify", false, "translation-validate every compiler-restructured cell; failing objects degrade to the identity layout and are reported")
		diagRuns   = flag.Bool("diag", false, "attribute misses to objects in every fig3/table2 cell and print which objects' false sharing each transformation eliminated")
		faults     = flag.String("faults", "", "deterministic fault-injection spec (testing; see internal/faultinject)")

		reportDir = flag.String("reportdir", "", "write one JSON run manifest per figure/table into this directory")
		verbose   = flag.Bool("v", false, "log experiment progress to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	// Worker mode: no sections, no flags beyond the link — everything
	// a worker needs (grid spec, sections, fault spec, journal file)
	// arrives in the coordinator's hello frame.
	if *workerMode {
		var err error
		if *connect != "" {
			err = fabric.RunWorkerTCP(*connect)
		} else {
			err = fabric.RunWorker(os.Stdin, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsexp: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *connect != "" {
		check(fmt.Errorf("-connect requires -worker"))
	}

	if *all {
		*table1, *fig3, *table2, *fig4, *table3, *aggr, *ccost = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig3 && !*table2 && !*fig4 && !*table3 && !*aggr && !*ccost && !*bench && !*matrix {
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			check(err)
		}
		defer stop()
	}
	if *verbose {
		rec := obs.NewRecorder()
		rec.Verbose = true
		obs.Install(rec)
	}

	// faultSpec is the effective spec — also what the coordinator
	// propagates to every worker process, so a -faults (or
	// FSEXP_FAULTS) rule targeting a worker-side point fires inside
	// the workers, not just the parent.
	faultSpec := *faults
	if faultSpec == "" {
		faultSpec = os.Getenv("FSEXP_FAULTS")
	}
	if faultSpec != "" {
		s, err := faultinject.Parse(faultSpec)
		if *faults == "" {
			if err != nil {
				err = fmt.Errorf("FSEXP_FAULTS: %w", err)
			}
		}
		check(err)
		faultinject.Enable(s)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *jobs
	cfg.StepBudget = *stepBudget
	cfg.Verify = *verifyRuns
	cfg.Diag = *diagRuns
	cfg.Policy = pool.Policy{
		FailFast:   !*keepGoing,
		JobTimeout: *jobTimeout,
		Retries:    *retries,
	}
	if *quick {
		cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 20, 28}
		cfg.Table2Blocks = []int64{16, 64, 128, 256}
	}
	if *scaleMin {
		cfg.SweepCounts = []int{1, 2, 4}
		cfg.Table2Blocks = []int64{32, 128}
		cfg.Fig3Blocks = []int64{16, 128}
	}
	machine := ksr.DefaultConfig()

	// -matrix axes: explicit subsets parse up front so a typo fails
	// before any cell runs; -scale-min shrinks the generated programs,
	// never the population (the matrix's value is breadth).
	mopt := experiments.MatrixOptions{
		Workloads: *matrixWorkloads,
		Seed:      *matrixSeed,
		Procs:     *matrixProcs,
		Block:     *matrixBlock,
		ScaleMin:  *scaleMin,
	}
	if *protocols != "" {
		for _, s := range splitList(*protocols) {
			p, err := cache.ParseProtocol(s)
			check(err)
			mopt.Protocols = append(mopt.Protocols, p)
		}
	}
	if *topologies != "" {
		for _, s := range splitList(*topologies) {
			tp, err := cache.ParseTopology(s)
			check(err)
			mopt.Topologies = append(mopt.Topologies, tp)
		}
	}

	// First interrupt: cancel the run cooperatively — cells in flight
	// stop at their next check, the journal, worker journals and any
	// partial manifests are flushed on the way out. Second interrupt:
	// exit immediately — but reap spawned workers first, so an
	// impatient Ctrl-C Ctrl-C never leaves orphan fsexp -worker
	// processes behind.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Ctx = ctx
	var coordP atomic.Pointer[fabric.Coordinator]
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fsexp: interrupt — draining (interrupt again to exit immediately)")
		cancel()
		<-sigc
		if c := coordP.Load(); c != nil {
			c.Kill()
		}
		os.Exit(130)
	}()

	var jnl *journal.Journal
	if *resume != "" {
		// Fold in worker journals a previous (crashed or killed)
		// distributed run left behind: cells its workers finished but
		// never reported resume instead of recomputing.
		check(fabric.MergeWorkerJournals(*resume))
		var err error
		jnl, err = journal.Open(*resume)
		check(err)
		if n := jnl.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "fsexp: resuming: %d cells checkpointed in %s\n", n, jnl.Path())
		}
		defer jnl.Close()
		cfg.Journal = jnl
	}

	// Distributed mode: spawn/accept fabric workers and route every
	// driver fan-out through the coordinator. The workers re-enumerate
	// the same grid from cfg's spec, so results — and manifests — are
	// byte-identical to an in-process run.
	var coord *fabric.Coordinator
	var fabricRec *obs.Recorder
	var fabricCache *fabric.Cache
	if *workersN > 0 || *listenAddr != "" {
		var sections []string
		if *fig3 {
			sections = append(sections, "fig3")
		}
		if *aggr {
			sections = append(sections, "aggregates")
		}
		if *table2 {
			sections = append(sections, "table2")
		}
		if *fig4 {
			sections = append(sections, "fig4")
		}
		if *table3 {
			sections = append(sections, "table3")
		}
		if *ccost {
			sections = append(sections, "compilecost")
		}
		if *matrix {
			sections = append(sections, "matrix")
		}
		if len(sections) == 0 {
			check(fmt.Errorf("-workers/-listen: no distributable sections selected (fig3, aggregates, table2, fig4, table3, compilecost, matrix)"))
		}
		var cc *fabric.Cache
		if *cacheDir != "" {
			var err error
			cc, err = fabric.OpenCacheBudget(*cacheDir, *cacheBytes)
			check(err)
		}
		fabricCache = cc
		fabricRec = obs.NewRecorder()
		if base := obs.Default(); base != nil {
			fabricRec.Verbose = base.Verbose
			fabricRec.LogW = base.LogW
		}
		coord = fabric.NewCoordinator(fabric.Options{
			Workers: *workersN,
			Listen:  *listenAddr,
			Spec:    cfg.Spec(),
			Set: experiments.SectionSet{
				Sections:     sections,
				Matrix:       mopt,
				Machine:      machine,
				AggBlock:     128,
				CompileProcs: 12,
				CompileReps:  5,
			},
			Faults:   faultSpec,
			RunDir:   *resume,
			Cache:    cc,
			Policy:   cfg.Policy,
			Recorder: fabricRec,
		})
		check(coord.Start(ctx))
		coordP.Store(coord)
		cfg.Runner = coord
		if *listenAddr != "" {
			fmt.Fprintf(os.Stderr, "fsexp: fabric: accepting workers on %s (start them with: fsexp -worker -connect %s)\n", coord.Addr(), coord.Addr())
		}
	}

	// shutdownFabric drains the fabric exactly once: shutdown frames,
	// journal merge, the stderr summary line, and (with -reportdir) a
	// separate fabric manifest. The fabric's telemetry lives in its
	// own manifest because scheduling is nondeterministic — folding it
	// into the figure manifests would break their byte-identity.
	fabricDone := false
	shutdownFabric := func() {
		if coord == nil || fabricDone {
			return
		}
		fabricDone = true
		if err := coord.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fsexp: fabric: %v\n", err)
		}
		st := coord.Stats()
		// Stats first, then flush the cache's LRU index: the counters
		// (hits/misses/corrupt/evicted) ride in st.
		if err := fabricCache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fsexp: fabric: %v\n", err)
		}
		fmt.Fprintln(os.Stderr, "fsexp: "+st.Summary())
		if *reportDir != "" {
			rep := fabricRec.Report("fsexp")
			rep.AddData("name", "fabric")
			rep.AddData("stats", st)
			if path, werr := experiments.WriteManifest(*reportDir, "fabric", rep); werr != nil {
				fmt.Fprintf(os.Stderr, "fsexp: fabric manifest: %v\n", werr)
			} else if *verbose {
				fmt.Fprintf(os.Stderr, "fsexp: fabric manifest -> %s\n", path)
			}
		}
	}
	defer shutdownFabric()

	// failSections collects per-experiment partial-failure reports; they
	// are printed after every rendered figure/table, and make the run
	// exit nonzero.
	var failSections []string
	interrupted := false

	// fatal ends the run on an experiment error: journal flushed,
	// resume hint printed, exit code 130 for an interrupted run and 1
	// otherwise.
	fatal := func(name string, err error) {
		shutdownFabric()
		jnl.Close()
		fmt.Fprintf(os.Stderr, "fsexp: %s: %v\n", name, err)
		code := 1
		if errors.Is(err, context.Canceled) {
			code = 130
		}
		if *resume != "" {
			fmt.Fprintf(os.Stderr, "fsexp: completed cells are checkpointed; re-run with -resume %s to continue\n", *resume)
		} else {
			fmt.Fprintln(os.Stderr, "fsexp: hint: run with -resume <dir> to make interrupted runs resumable")
		}
		os.Exit(code)
	}

	// run executes one experiment. With -reportdir every run records
	// into its own manifest (stage spans plus the result rows) written
	// as <dir>/<name>.json — even for a failed or partial run, so an
	// interrupted invocation still leaves its manifests behind. With
	// -keep-going a *Partial failure renders whatever survived and the
	// failed cell keys are reported (and recorded in the manifest under
	// "failed"); any other failure is fatal.
	run := func(name string, fn func() (any, error)) any {
		var v any
		var err error
		seenDegraded := len(experiments.DegradedEvents())
		seenDiag := len(experiments.DiagCells())
		if *reportDir == "" {
			v, err = fn()
		} else {
			var rep *obs.Report
			rep, err = experiments.RunManifest("fsexp", name, experiments.ConfigMap(cfg), fn)
			if p, ok := experiments.AsPartial(err); ok {
				rep.AddData("failed", p.Failed)
			}
			if ev := experiments.DegradedEvents(); len(ev) > seenDegraded {
				// Safe mode rolled objects back in this section: record
				// the cell keys and objects in the manifest.
				degraded := map[string][]string{}
				for _, e := range ev[seenDegraded:] {
					degraded[e.Key] = e.Objects
				}
				rep.AddData("degraded", degraded)
			}
			if cells := experiments.DiagCells(); len(cells) > seenDiag {
				// Miss attribution ran in this section: record each
				// cell's per-object report alongside the results.
				rep.AddData("attribution", cells[seenDiag:])
			}
			path, werr := experiments.WriteManifest(*reportDir, name, rep)
			if werr != nil {
				fatal(name, werr)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "fsexp: %s manifest -> %s\n", name, path)
			}
			v = rep.Data["result"]
		}
		if err != nil {
			p, ok := experiments.AsPartial(err)
			if !ok || !*keepGoing {
				fatal(name, err)
			}
			if errors.Is(err, context.Canceled) {
				interrupted = true
			}
			failSections = append(failSections, fmt.Sprintf("%s: %d of %d cells failed:\n%s", name, len(p.Failed), p.Total, p.Details()))
		}
		return v
	}

	if *table1 {
		fmt.Println(experiments.RenderTable1(experiments.Table1()))
	}
	if *fig3 {
		cells := run("fig3", func() (any, error) { return experiments.Figure3(cfg) }).([]experiments.Fig3Cell)
		if *csv {
			fmt.Print(experiments.CSVFigure3(cells))
		} else {
			fmt.Println(experiments.RenderFigure3(cells))
		}
	}
	if *aggr {
		a := run("aggregates", func() (any, error) { return experiments.ComputeAggregates(cfg, 128) }).(*experiments.Aggregates)
		fmt.Println(a.Render())
	}
	if *table2 {
		rows := run("table2", func() (any, error) { return experiments.Table2(cfg) }).([]experiments.Table2Row)
		if *csv {
			fmt.Print(experiments.CSVTable2(rows))
		} else {
			fmt.Println(experiments.RenderTable2(rows))
		}
	}
	if *fig4 {
		curves := run("fig4", func() (any, error) { return experiments.Figure4(cfg, machine) }).(map[string][]experiments.Curve)
		names := make([]string, 0, len(curves))
		for n := range curves {
			names = append(names, n)
		}
		sort.Strings(names)
		if !*csv {
			fmt.Println("Figure 4: speedup curves (N=unoptimized C=compiler P=programmer)")
		}
		for _, n := range names {
			if *csv {
				fmt.Print(experiments.CSVCurves(curves[n]))
			} else {
				fmt.Println(experiments.RenderCurves(curves[n]))
			}
		}
	}
	if *table3 {
		rows := run("table3", func() (any, error) { return experiments.Table3(cfg, machine) }).([]experiments.Table3Row)
		fmt.Println(experiments.RenderTable3(rows))
	}
	if *ccost {
		rows := run("compilecost", func() (any, error) { return experiments.CompileCost(cfg, 12, 5) }).([]experiments.CompileCostRow)
		fmt.Println(experiments.RenderCompileCost(rows))
	}
	if *bench {
		rep := run("bench", func() (any, error) { return experiments.Bench(cfg, nil, nil) }).(*experiments.BenchReport)
		check(experiments.WriteBenchReport(*benchout, rep))
		fmt.Println(experiments.RenderBench(rep))
		fmt.Fprintf(os.Stderr, "fsexp: bench report -> %s\n", *benchout)
	}

	if *matrix {
		cells := run("matrix", func() (any, error) { return experiments.Matrix(cfg, mopt) }).([]experiments.MatrixCell)
		if *csv {
			fmt.Print(experiments.CSVMatrix(cells))
		} else {
			fmt.Println(experiments.RenderMatrix(cells))
		}
	}

	// Aggregate diagnosis: pair each section's unoptimized and
	// transformed attribution cells and show, per applied decision,
	// the false-sharing misses the transformation eliminated.
	if *diagRuns {
		if cells := experiments.DiagCells(); len(cells) > 0 {
			fmt.Println(experiments.RenderDiag(cells))
		}
	}

	if *memprof != "" {
		check(obs.WriteHeapProfile(*memprof))
	}

	// Safe-mode summary (stderr, so stdout tables stay stable): which
	// cells finished with degraded objects, and the overall count.
	if *verifyRuns {
		ev := experiments.DegradedEvents()
		sort.Slice(ev, func(i, j int) bool { return ev[i].Key < ev[j].Key })
		for _, e := range ev {
			fmt.Fprintf(os.Stderr, "fsexp: degraded %s: %v\n", e.Key, e.Objects)
		}
		fmt.Fprintf(os.Stderr, "fsexp: verify: %d objects degraded\n", experiments.DegradedObjects())
	}

	shutdownFabric()

	if len(failSections) > 0 {
		fmt.Println("Failed cells:")
		for _, s := range failSections {
			fmt.Print(s)
		}
		jnl.Close()
		if *resume != "" {
			fmt.Fprintf(os.Stderr, "fsexp: completed cells are checkpointed; re-run with -resume %s to retry only the failed ones\n", *resume)
		}
		if interrupted {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsexp: %v\n", err)
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
