// Command fssim executes a parc program (or bundled benchmark) on the
// SPMD virtual machine and reports the multiprocessor cache
// simulation: miss rates broken down by class, per block size.
//
// Usage:
//
//	fssim [-p N] [-blocks 16,64,128] [-transformed] file.parc
//	fssim -bench pverify -transformed
//	fssim -bench mp3d -save-trace mp3d.trc     # store the reference trace
//	fssim -replay mp3d.trc -blocks 32,256      # re-simulate a stored trace
//	fssim -bench pverify -report run.json -v   # machine-readable manifest
//	fssim -bench maxflow -diag                 # attribute misses to objects
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/sim/attr"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/trace"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

// sampleEvery is the -v progress-streaming period, in simulated block
// references.
const sampleEvery = 2_000_000

func main() {
	var (
		nprocs      = flag.Int("p", 12, "number of processes")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "parallelism: >1 runs one goroutine per block-size simulator (1 = serial)")
		blockList   = flag.String("blocks", "16,64,128", "comma-separated block sizes to simulate")
		bench       = flag.String("bench", "", "run a bundled benchmark instead of a file")
		scale       = flag.Int("scale", 1, "workload scale for -bench")
		transformed = flag.Bool("transformed", false, "run the compiler-restructured version")
		saveTrace   = flag.String("save-trace", "", "also store the reference trace to this file (plus its address-map sidecar)")
		replay      = flag.String("replay", "", "simulate a stored trace instead of executing a program")
		diag        = flag.Bool("diag", false, "attribute misses to objects and fields; prints per-block false-sharing tables (implies -j 1)")
		statsJSON   = flag.String("stats-json", "", "write the full per-block cache statistics (including per-processor counters) as JSON to this file")

		protoFlag = flag.String("protocol", "write-invalidate", "coherence protocol: write-invalidate, mesi, or write-update")
		topoFlag  = flag.String("topology", "flat", "machine topology: flat or two-ring")
		ringSize  = flag.Int("ring-size", 0, "processors per ring for -topology two-ring (0 = the KSR default of 32)")
		sector    = flag.Int64("sector", 0, "invalidate in sectors of this many bytes instead of whole lines (0 = whole-line)")

		stepBudget = flag.Int64("step-budget", 0, "per-process VM instruction cap (0 = the VM default of 1e9)")
		faults     = flag.String("faults", "", "deterministic fault-injection spec (testing; see internal/faultinject)")

		report  = flag.String("report", "", "write a JSON run manifest (stage timings, per-block and per-processor stats) to this file")
		verbose = flag.Bool("v", false, "log pipeline and simulation progress to stderr")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *faults != "" {
		s, err := faultinject.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		faultinject.Enable(s)
	} else if _, err := faultinject.FromEnv(os.Getenv("FSEXP_FAULTS")); err != nil {
		fatal(fmt.Errorf("FSEXP_FAULTS: %w", err))
	}

	// First interrupt: cancel the run — the VM stops at its next
	// scheduler poll and fssim exits 130. Second interrupt: exit
	// immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fssim: interrupt — stopping (interrupt again to exit immediately)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	var rec *obs.Recorder
	if *report != "" || *verbose {
		rec = obs.NewRecorder()
		rec.Verbose = *verbose
		obs.Install(rec)
	}

	// Protocol/topology/sector knobs apply to every simulator this run
	// builds; parse them before block validation so a bad combination
	// (write-update with sectors, say) is one clear message up front.
	{
		p, err := cache.ParseProtocol(*protoFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fssim: %v\n", err)
			os.Exit(2)
		}
		tp, err := cache.ParseTopology(*topoFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fssim: %v\n", err)
			os.Exit(2)
		}
		simKnobs = knobs{proto: p, topo: tp, ringSize: *ringSize, sector: *sector}
	}

	var blocks []int64
	for _, s := range strings.Split(*blockList, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fssim: bad block size %q\n", s)
			os.Exit(2)
		}
		// Validate each block against the simulator configuration it
		// will become, so a bad size (not a power of two, too small)
		// or knob combination is one clear message here instead of
		// garbage classifications. Two-ring defaults are filled by
		// cache.New, so validate through it.
		if _, verr := cache.New(simConfig(*nprocs, v)); verr != nil {
			fmt.Fprintf(os.Stderr, "fssim: %v\n", verr)
			os.Exit(2)
		}
		blocks = append(blocks, v)
	}

	// Attribution resolves every miss through one shared, lazily grown
	// address map, so the per-block simulators must consume the stream
	// on a single goroutine.
	if *diag {
		*jobs = 1
	}

	var perBlock []experiments.BlockStats

	// Replay mode: drive the simulators from a stored trace (the
	// paper's methodology: simulate traces captured once).
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sims, err := newSims(*nprocs, blocks, *verbose)
		if err != nil {
			fatal(err)
		}
		// A stored trace is a bare reference stream; attribution needs
		// the address map the capturing run saved alongside it.
		var colls []*attr.Collector
		if *diag {
			amap, err := attr.LoadMap(trace.MapSidecar(*replay))
			if err != nil {
				fatal(fmt.Errorf("-diag needs the trace's address-map sidecar (re-capture with -save-trace to produce it): %w", err))
			}
			colls = attachCollectors(amap, sims, blocks)
		}
		sinks := make([]trace.Sink, len(sims))
		for i, s := range sims {
			s := s
			sinks[i] = func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) }
		}
		sp := obs.Begin("replay")
		sink, finish := fanout(*jobs, sp, blocks, sinks...)
		tr := trace.NewReader(f)
		// Headered traces declare their capture's process count: check
		// it against -p up front (the Reader additionally validates
		// every record). Legacy headerless traces carry no count, so a
		// stored ref could name a proc the -p sized simulators have no
		// counters for; reject it before it reaches a sink rather than
		// panicking there.
		if n := tr.Nprocs(); n > *nprocs {
			fatal(fmt.Errorf("trace %s was captured with %d processes; rerun with -p %d or more", *replay, n, n))
		}
		var badRef error
		nrec := 0
		err = tr.ForEach(func(r vm.Ref) {
			nrec++
			if badRef == nil && r.Proc >= *nprocs {
				badRef = fmt.Errorf("trace %s: record %d uses proc %d; rerun with -p %d or more",
					*replay, nrec, r.Proc, r.Proc+1)
			}
			if badRef == nil {
				sink(r)
			}
		})
		if err == nil {
			err = badRef
		}
		if ferr := finish(); err == nil {
			err = ferr
		}
		sp.End()
		if err != nil {
			fatal(err)
		}
		for i, s := range sims {
			fmt.Printf("block %3d: %s", blocks[i], s.Stats().String())
			perBlock = append(perBlock, experiments.NewBlockStats(s.Stats()))
		}
		printDiag(colls, blocks, *nprocs)
		writeStatsJSON(*statsJSON, perBlock)
		writeReport(rec, *report, map[string]any{
			"nprocs": *nprocs, "blocks": blocks, "replay": *replay, "jobs": *jobs,
			"protocol": simKnobs.proto.String(), "topology": simKnobs.topo.String(),
		}, perBlock, *verbose)
		return
	}

	var source string
	switch {
	case *bench != "":
		b := workload.Get(*bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "fssim: unknown benchmark %q (choose from: %s)\n",
				*bench, strings.Join(workload.Names(), ", "))
			os.Exit(1)
		}
		source = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: fssim [flags] file.parc | fssim -bench NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// One compiled program per block size for the transformed case
	// (padding depends on the block); the unoptimized program is
	// block-independent so one execution feeds all simulators.
	if !*transformed {
		prog, err := core.CompileCtx(ctx, source, core.Options{Nprocs: *nprocs, BlockSize: blocks[0]})
		if err != nil {
			fatal(err)
		}
		stats, err := runAndReport(ctx, prog, *nprocs, *jobs, *stepBudget, blocks, *saveTrace, *diag, *verbose)
		if err != nil {
			fatal(err)
		}
		perBlock = append(perBlock, stats...)
	} else {
		for _, blk := range blocks {
			obs.Logf("restructuring for block %d", blk)
			res, err := core.RestructureCtx(ctx, source, core.Options{Nprocs: *nprocs, BlockSize: blk})
			if err != nil {
				fatal(err)
			}
			// The transformed program differs per block size, so each
			// block's execution produces a distinct trace: write one
			// trace file per block rather than silently keeping only
			// the first.
			traceFile := ""
			if *saveTrace != "" {
				traceFile = blockTraceName(*saveTrace, blk, len(blocks) > 1)
				if len(blocks) > 1 {
					fmt.Printf("note: transformed traces differ per block; block %d -> %s\n", blk, traceFile)
				}
			}
			stats, err := runAndReport(ctx, res.Transformed, *nprocs, *jobs, *stepBudget, []int64{blk}, traceFile, *diag, *verbose)
			if err != nil {
				fatal(err)
			}
			perBlock = append(perBlock, stats...)
		}
	}

	writeStatsJSON(*statsJSON, perBlock)
	writeReport(rec, *report, map[string]any{
		"nprocs": *nprocs, "blocks": blocks, "bench": *bench, "scale": *scale,
		"transformed": *transformed, "jobs": *jobs,
		"protocol": simKnobs.proto.String(), "topology": simKnobs.topo.String(),
	}, perBlock, *verbose)

	if *memprof != "" {
		if err := obs.WriteHeapProfile(*memprof); err != nil {
			fatal(err)
		}
	}
}

// knobs carries the protocol/topology/sector flags to every simulator
// construction site (replay and execute paths alike).
type knobs struct {
	proto    cache.Protocol
	topo     cache.Topology
	ringSize int
	sector   int64
}

var simKnobs knobs

// simConfig is DefaultConfig plus the run's protocol/topology/sector
// knobs.
func simConfig(nprocs int, blk int64) cache.Config {
	cfg := cache.DefaultConfig(nprocs, blk)
	cfg.Protocol = simKnobs.proto
	cfg.Topology = simKnobs.topo
	cfg.RingSize = simKnobs.ringSize
	cfg.SectorSize = simKnobs.sector
	return cfg
}

// blockTraceName derives the per-block trace file name: "x.trc" with
// block 128 becomes "x.b128.trc" (unless the trace is unique anyway).
func blockTraceName(base string, block int64, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s.b%d%s", strings.TrimSuffix(base, ext), block, ext)
}

// newSims builds one simulator per block size, streaming progress in
// verbose mode. Block sizes are validated at flag parsing, so a
// failure here means a programming error upstream.
func newSims(nprocs int, blocks []int64, verbose bool) ([]*cache.Sim, error) {
	sims := make([]*cache.Sim, len(blocks))
	for i, blk := range blocks {
		var err error
		sims[i], err = cache.New(simConfig(nprocs, blk))
		if err != nil {
			return nil, err
		}
		if verbose && i == 0 {
			blk := blk
			sims[i].SetSampler(sampleEvery, func(st *cache.Stats) {
				fmt.Fprintf(os.Stderr, "fssim: block %d: %d refs, missrate=%.4f%% (fs=%.4f%%)\n",
					blk, st.Refs, 100*st.MissRate(), 100*st.FSRate())
			})
		}
	}
	return sims, nil
}

// fanout assembles the reference-delivery path for the given sinks: a
// plain Tee at -j 1 (or when there is only one sink), otherwise a
// batched ParTee running each sink on its own goroutine. Every sink
// sees the identical full stream in order either way; the returned
// finish func must be called after the stream ends.
func fanout(j int, parent *obs.Span, blocks []int64, sinks ...trace.Sink) (trace.Sink, func() error) {
	if j == 1 || len(sinks) < 2 {
		return trace.Tee(sinks...), func() error { return nil }
	}
	pt := trace.NewParTee(0, sinks...)
	for i := range sinks {
		if i < len(blocks) {
			pt.SetSpan(i, parent.Child(fmt.Sprintf("sim:b%d", blocks[i])))
		}
	}
	return pt.Sink(), pt.Close
}

// runAndReport executes a program once, feeding one cache simulator
// per block size (and optionally a trace file), then prints the
// per-block statistics. With -j > 1 the simulators (and the trace
// writer) each consume the stream on their own goroutine. ctx cancels
// the VM mid-run; budget caps per-process instructions (0: VM
// default).
func runAndReport(ctx context.Context, prog *core.Program, nprocs, j int, budget int64, blocks []int64, traceFile string, diag, verbose bool) ([]experiments.BlockStats, error) {
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return nil, err
	}
	sims, err := newSims(nprocs, blocks, verbose)
	if err != nil {
		return nil, err
	}
	m := vm.New(bc)
	m.SetContext(ctx)
	if budget > 0 {
		m.MaxInstrs = budget
	}
	// The address map serves two consumers: live miss attribution
	// (-diag) and the trace's replay sidecar (-save-trace).
	var amap *attr.Map
	var colls []*attr.Collector
	if diag || traceFile != "" {
		amap = attr.NewMap(prog.Layout)
		amap.AttachMachine(m)
	}
	if diag {
		colls = attachCollectors(amap, sims, blocks)
	}
	sinks := make([]trace.Sink, 0, len(blocks)+1)
	for _, s := range sims {
		s := s
		sinks = append(sinks, func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) })
	}
	var tw *trace.Writer
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tw = trace.NewWriter(f, nprocs)
		sinks = append(sinks, tw.Sink())
	}
	sp := obs.Begin("measure")
	sink, finish := fanout(j, sp, blocks, sinks...)
	runErr := m.Run(sink)
	if err := finish(); runErr == nil {
		runErr = err
	}
	sp.End()
	if runErr != nil {
		return nil, runErr
	}
	if tw != nil {
		n, err := tw.Flush()
		if err != nil {
			return nil, err
		}
		fmt.Printf("trace: %d references -> %s\n", n, traceFile)
		// The sidecar lets a later `fssim -replay trace -diag` resolve
		// the stored addresses back to objects and fields.
		side := trace.MapSidecar(traceFile)
		if err := amap.WriteFile(side); err != nil {
			return nil, fmt.Errorf("address-map sidecar: %w", err)
		}
		fmt.Printf("address map -> %s\n", side)
	}
	out := make([]experiments.BlockStats, 0, len(sims))
	for i, s := range sims {
		fmt.Printf("block %3d: %s", blocks[i], s.Stats().String())
		out = append(out, experiments.NewBlockStats(s.Stats()))
	}
	if diag {
		amap.ResolveOwners()
		printDiag(colls, blocks, nprocs)
	}
	return out, nil
}

// attachCollectors installs one miss attributor per simulator, all
// resolving through the same address map (single-goroutine use only;
// -diag forces -j 1).
func attachCollectors(amap *attr.Map, sims []*cache.Sim, blocks []int64) []*attr.Collector {
	colls := make([]*attr.Collector, len(sims))
	for i, s := range sims {
		colls[i] = attr.NewCollector(amap, blocks[i])
		s.SetAttributor(colls[i])
	}
	return colls
}

// printDiag renders each block's attribution report.
func printDiag(colls []*attr.Collector, blocks []int64, nprocs int) {
	for i, c := range colls {
		fmt.Printf("\n--- attribution, block %d ---\n%s", blocks[i], c.Report(nprocs).Render())
	}
}

// writeStatsJSON dumps the full per-block statistics (the complete
// counter set plus the per-processor decomposition) as JSON.
func writeStatsJSON(path string, perBlock []experiments.BlockStats) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(perBlock, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// writeReport assembles and writes the run manifest when -report is
// set.
func writeReport(rec *obs.Recorder, path string, config map[string]any, perBlock []experiments.BlockStats, verbose bool) {
	if path == "" {
		return
	}
	rep := rec.Report("fssim")
	rep.Config = config
	rep.AddData("blocks", perBlock)
	if err := rep.WriteFile(path); err != nil {
		fatal(err)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "fssim: report -> %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fssim: %v\n", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
