// Command fssim executes a parc program (or bundled benchmark) on the
// SPMD virtual machine and reports the multiprocessor cache
// simulation: miss rates broken down by class, per block size.
//
// Usage:
//
//	fssim [-p N] [-blocks 16,64,128] [-transformed] file.parc
//	fssim -bench pverify -transformed
//	fssim -bench mp3d -save-trace mp3d.trc     # store the reference trace
//	fssim -replay mp3d.trc -blocks 32,256      # re-simulate a stored trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"falseshare/internal/core"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/trace"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

func main() {
	var (
		nprocs      = flag.Int("p", 12, "number of processes")
		blockList   = flag.String("blocks", "16,64,128", "comma-separated block sizes to simulate")
		bench       = flag.String("bench", "", "run a bundled benchmark instead of a file")
		scale       = flag.Int("scale", 1, "workload scale for -bench")
		transformed = flag.Bool("transformed", false, "run the compiler-restructured version")
		saveTrace   = flag.String("save-trace", "", "also store the reference trace to this file")
		replay      = flag.String("replay", "", "simulate a stored trace instead of executing a program")
	)
	flag.Parse()

	var blocks []int64
	for _, s := range strings.Split(*blockList, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || v < 4 {
			fmt.Fprintf(os.Stderr, "fssim: bad block size %q\n", s)
			os.Exit(2)
		}
		blocks = append(blocks, v)
	}

	// Replay mode: drive the simulators from a stored trace (the
	// paper's methodology: simulate traces captured once).
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sims := make([]*cache.Sim, len(blocks))
		sinks := make([]trace.Sink, len(blocks))
		for i, blk := range blocks {
			sims[i] = cache.New(cache.DefaultConfig(*nprocs, blk))
			s := sims[i]
			sinks[i] = func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) }
		}
		if err := trace.NewReader(f).ForEach(trace.Tee(sinks...)); err != nil {
			fatal(err)
		}
		for i, s := range sims {
			fmt.Printf("block %3d: %s", blocks[i], s.Stats().String())
		}
		return
	}

	var source string
	switch {
	case *bench != "":
		b := workload.Get(*bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "fssim: unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		source = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fssim: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: fssim [flags] file.parc | fssim -bench NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// One compiled program per block size for the transformed case
	// (padding depends on the block); the unoptimized program is
	// block-independent so one execution feeds all simulators.
	if !*transformed {
		prog, err := core.Compile(source, core.Options{Nprocs: *nprocs, BlockSize: blocks[0]})
		if err != nil {
			fatal(err)
		}
		if err := runAndReport(prog, *nprocs, blocks, *saveTrace); err != nil {
			fatal(err)
		}
		return
	}
	for i, blk := range blocks {
		res, err := core.Restructure(source, core.Options{Nprocs: *nprocs, BlockSize: blk})
		if err != nil {
			fatal(err)
		}
		traceFile := ""
		if i == 0 {
			traceFile = *saveTrace
		}
		if err := runAndReport(res.Transformed, *nprocs, []int64{blk}, traceFile); err != nil {
			fatal(err)
		}
	}
}

// runAndReport executes a program once, feeding one cache simulator
// per block size (and optionally a trace file), then prints the
// per-block statistics.
func runAndReport(prog *core.Program, nprocs int, blocks []int64, traceFile string) error {
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return err
	}
	sims := make([]*cache.Sim, len(blocks))
	sinks := make([]trace.Sink, 0, len(blocks)+1)
	for i, blk := range blocks {
		sims[i] = cache.New(cache.DefaultConfig(nprocs, blk))
		s := sims[i]
		sinks = append(sinks, func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) })
	}
	var tw *trace.Writer
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		sinks = append(sinks, tw.Sink())
	}
	m := vm.New(bc)
	if err := m.Run(trace.Tee(sinks...)); err != nil {
		return err
	}
	if tw != nil {
		n, err := tw.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d references -> %s\n", n, traceFile)
	}
	for i, s := range sims {
		fmt.Printf("block %3d: %s", blocks[i], s.Stats().String())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fssim: %v\n", err)
	os.Exit(1)
}
