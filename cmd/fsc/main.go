// Command fsc is the false-sharing restructurer front end: it runs
// the full compile-time analysis on a parc source file, reports the
// transformation decisions, and prints the restructured program.
//
// Usage:
//
//	fsc [-p N] [-b BLOCK] [-summary] [-pdv] [-plan] [-src] file.parc
//	fsc -bench NAME ...      # use a bundled benchmark as input
package main

import (
	"flag"
	"fmt"
	"os"

	"falseshare/internal/core"
	"falseshare/internal/workload"
)

func main() {
	var (
		nprocs  = flag.Int("p", 12, "number of processes/processors assumed by the analysis")
		block   = flag.Int64("b", 128, "coherence block size in bytes")
		bench   = flag.String("bench", "", "analyze a bundled benchmark (maxflow, pverify, ...) instead of a file")
		scale   = flag.Int("scale", 1, "workload scale for -bench")
		summary = flag.Bool("summary", false, "print the side-effect summary")
		pdv     = flag.Bool("pdv", false, "print discovered PDVs")
		plan    = flag.Bool("plan", true, "print the transformation plan")
		src     = flag.Bool("src", false, "print the transformed source")
	)
	flag.Parse()

	var source string
	switch {
	case *bench != "":
		b := workload.Get(*bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "fsc: unknown benchmark %q\n", *bench)
			os.Exit(1)
		}
		source = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsc: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: fsc [flags] file.parc | fsc -bench NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	res, err := core.Restructure(source, core.Options{Nprocs: *nprocs, BlockSize: *block})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsc: %v\n", err)
		os.Exit(1)
	}

	if *pdv {
		fmt.Println("--- process differentiating variables ---")
		fmt.Print(res.PDVs.String())
	}
	if *summary {
		fmt.Println("--- per-process side-effect summary ---")
		fmt.Print(res.Summary.String())
	}
	if *plan {
		fmt.Println("--- transformation plan ---")
		fmt.Print(res.Plan.String())
		fmt.Println("--- layout directives ---")
		fmt.Print(res.Transformed.Dirs.String())
	}
	if *src {
		fmt.Println("--- transformed program ---")
		fmt.Print(res.Transformed.Source)
	}
}
