// Command fsc is the false-sharing restructurer front end: it runs
// the full compile-time analysis on a parc source file, reports the
// transformation decisions, and prints the restructured program.
//
// Usage:
//
//	fsc [-p N] [-b BLOCK] [-summary] [-pdv] [-plan] [-src] file.parc
//	fsc -bench NAME ...      # use a bundled benchmark as input
//	fsc -bench NAME -report run.json -v    # machine-readable manifest
//	fsc -bench NAME -diag    # simulate both versions, attribute the FS delta
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/workload"
)

func main() {
	var (
		nprocs  = flag.Int("p", 12, "number of processes/processors assumed by the analysis")
		block   = flag.Int64("b", 128, "coherence block size in bytes")
		bench   = flag.String("bench", "", "analyze a bundled benchmark (maxflow, pverify, ...) instead of a file")
		scale   = flag.Int("scale", 1, "workload scale for -bench")
		summary = flag.Bool("summary", false, "print the side-effect summary")
		pdv     = flag.Bool("pdv", false, "print discovered PDVs")
		plan    = flag.Bool("plan", true, "print the transformation plan")
		src     = flag.Bool("src", false, "print the transformed source")
		verify  = flag.Bool("verify", false, "translation-validate the transformed program against the original (safe mode: failing objects degrade to the identity layout)")
		diag    = flag.Bool("diag", false, "simulate both versions at -b and attribute the false-sharing delta to the applied decisions")

		faults  = flag.String("faults", "", "deterministic fault-injection spec (testing; e.g. transform.corrupt:error to seed a miscompile -verify must catch)")
		report  = flag.String("report", "", "write a JSON run manifest (per-stage timings and counters) to this file")
		verbose = flag.Bool("v", false, "log pipeline progress to stderr")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	var rec *obs.Recorder
	if *report != "" || *verbose {
		rec = obs.NewRecorder()
		rec.Verbose = *verbose
		obs.Install(rec)
	}

	if *faults != "" {
		s, err := faultinject.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		faultinject.Enable(s)
	}

	var source string
	switch {
	case *bench != "":
		b := workload.Get(*bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "fsc: unknown benchmark %q (choose from: %s)\n",
				*bench, strings.Join(workload.Names(), ", "))
			os.Exit(1)
		}
		source = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: fsc [flags] file.parc | fsc -bench NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}

	res, err := core.Restructure(source, core.Options{Nprocs: *nprocs, BlockSize: *block, Verify: *verify})
	if err != nil {
		fatal(err)
	}

	if *pdv {
		fmt.Println("--- process differentiating variables ---")
		fmt.Print(res.PDVs.String())
	}
	if *summary {
		fmt.Println("--- per-process side-effect summary ---")
		fmt.Print(res.Summary.String())
	}
	if *plan {
		fmt.Println("--- transformation plan ---")
		fmt.Print(res.Plan.String())
		fmt.Println("--- layout directives ---")
		fmt.Print(res.Transformed.Dirs.String())
	}
	if *src {
		fmt.Println("--- transformed program ---")
		fmt.Print(res.Transformed.Source)
	}
	if *verify {
		fmt.Println("--- translation validation ---")
		if res.Verify != nil {
			fmt.Print(res.Verify)
		}
		if len(res.Degraded) > 0 {
			fmt.Printf("%d object(s) degraded to the identity layout:\n", len(res.Degraded))
			for _, d := range res.Degraded {
				fmt.Printf("  %s\n", d)
			}
		} else {
			fmt.Println("0 objects degraded")
		}
	}

	// The diagnosis closes the loop on the plan above: it executes both
	// programs through the simulator with miss attribution installed
	// and shows which objects' false-sharing misses each decision
	// actually eliminated.
	if *diag {
		ctx := context.Background()
		name := *bench
		if name == "" {
			name = flag.Arg(0)
		}
		_, before, err := experiments.Diagnose(ctx, res.Original, *block, 0)
		if err != nil {
			fatal(fmt.Errorf("diagnose original: %w", err))
		}
		_, after, err := experiments.Diagnose(ctx, res.Transformed, *block, 0)
		if err != nil {
			fatal(fmt.Errorf("diagnose transformed: %w", err))
		}
		fmt.Println("--- miss attribution: original ---")
		fmt.Print(before.Render())
		fmt.Println("--- miss attribution: transformed ---")
		fmt.Print(after.Render())
		fmt.Println("--- diagnosis ---")
		fmt.Print(experiments.RenderDiagPair(name, *block, before, after, res.Applied))
	}

	if *report != "" {
		rep := rec.Report("fsc")
		rep.Config = map[string]any{
			"nprocs": *nprocs,
			"block":  *block,
			"bench":  *bench,
			"scale":  *scale,
		}
		decisions := make([]string, 0, len(res.Plan.Decisions))
		for _, d := range res.Plan.Decisions {
			decisions = append(decisions, d.String())
		}
		rep.AddData("decisions", decisions)
		rep.AddData("skipped", res.Plan.Skipped)
		rep.AddData("applied", len(res.Applied))
		if *verify {
			degraded := make([]string, 0, len(res.Degraded))
			for _, d := range res.Degraded {
				degraded = append(degraded, d.String())
			}
			rep.AddData("degraded", degraded)
			if res.Verify != nil {
				rep.AddData("verify_ok", res.Verify.OK)
				rep.AddData("verify_objects", len(res.Verify.Objects))
			}
		}
		if err := rep.WriteFile(*report); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "fsc: report -> %s\n", *report)
		}
	}
	if *memprof != "" {
		if err := obs.WriteHeapProfile(*memprof); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsc: %v\n", err)
	os.Exit(1)
}
