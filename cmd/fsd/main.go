// Command fsd runs the false-sharing pipeline as a daemon: a
// crash-safe, overload-protected HTTP/JSON compile service. See
// internal/serve for the endpoints and the robustness envelope.
//
// Typical use:
//
//	fsd -addr :8347 -cache /var/tmp/fsd-cache &
//	curl -s localhost:8347/v1/analyze -d '{"source":"shared int x[64]; ..."}'
//
// SIGTERM or SIGINT drains gracefully: the listener closes, readiness
// fails, in-flight requests finish (or are cancelled at
// -drain-timeout), the cache index is flushed, and fsd exits 0. A
// second signal exits immediately with status 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falseshare/internal/faultinject"
	"falseshare/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8347", "listen address")
		workers      = flag.Int("workers", 0, "max concurrently executing requests (0: GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "max requests waiting for a worker before 429")
		perClient    = flag.Int("per-client", 8, "max in-flight requests per client (X-Client-ID header, else remote host)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request compile+simulate deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long drain waits for in-flight requests")
		stepBudget   = flag.Int64("step-budget", 200_000_000, "VM step budget cap per request (requests may lower it)")
		poisonBudget = flag.Int("poison-budget", 3, "panics/blown budgets before a source hash is quarantined")
		cacheDir     = flag.String("cache", "", "artifact response cache directory (empty: no cache)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "cache eviction budget in bytes (0: unlimited)")
		verbose      = flag.Bool("v", false, "stream per-request span completions to stderr")
		faults       = flag.String("faults", "", "deterministic fault-injection spec (testing; see internal/faultinject)")
	)
	flag.Parse()

	faultSpec := *faults
	if faultSpec == "" {
		faultSpec = os.Getenv("FSD_FAULTS")
	}
	if faultSpec != "" {
		s, err := faultinject.Parse(faultSpec)
		if err != nil {
			if *faults == "" {
				err = fmt.Errorf("FSD_FAULTS: %w", err)
			}
			fmt.Fprintf(os.Stderr, "fsd: %v\n", err)
			os.Exit(2)
		}
		faultinject.Enable(s)
	}

	srv, err := serve.New(serve.Options{
		Workers:        *workers,
		Queue:          *queue,
		PerClient:      *perClient,
		MaxBody:        *maxBody,
		RequestTimeout: *timeout,
		StepBudget:     *stepBudget,
		PoisonBudget:   *poisonBudget,
		CacheDir:       *cacheDir,
		CacheBytes:     *cacheBytes,
		Verbose:        *verbose,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsd: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsd: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "fsd: listening on %s\n", ln.Addr())

	// First signal: graceful drain. Second: immediate exit.
	drained := make(chan error, 1)
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fsd: signal — draining (signal again to exit immediately)")
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			defer cancel()
			drained <- srv.Drain(ctx)
		}()
		<-sigc
		fmt.Fprintln(os.Stderr, "fsd: second signal — exiting immediately")
		os.Exit(1)
	}()

	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "fsd: %v\n", err)
		os.Exit(1)
	}
	// Serve returned because Drain closed the listener; wait for the
	// drain itself (in-flight requests, cache index flush) to finish.
	if err := <-drained; err != nil {
		fmt.Fprintf(os.Stderr, "fsd: drain: %v\n", err)
	}
	c := srv.CacheCounters()
	fmt.Fprintf(os.Stderr, "fsd: drained | cache hits=%d misses=%d corrupt=%d evicted=%d entries=%d bytes=%d\n",
		c.Hits, c.Misses, c.CorruptDropped, c.Evictions, c.Entries, c.Bytes)
}
