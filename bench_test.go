package falseshare

import (
	"fmt"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/ksr"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

// The benchmarks below regenerate the paper's evaluation. Each
// bench's body performs one full experiment per iteration and reports
// the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces every table and figure. Shapes (who wins, by roughly
// what factor, where curves cross) are the reproduction target; see
// EXPERIMENTS.md for paper-vs-measured values.

func quickCfg() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 20, 28}
	cfg.Table2Blocks = []int64{16, 64, 128, 256}
	return cfg
}

// BenchmarkFigure3 regenerates Figure 3: miss rates split into false
// sharing vs other for the unoptimized and compiler versions at 16B
// and 128B blocks.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure3(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				if c.Block == 128 {
					b.ReportMetric(c.FSRate, fmt.Sprintf("fs%%_%s_%s", c.Program, c.Version))
				}
			}
			b.Logf("\n%s", experiments.RenderFigure3(cells))
		}
	}
}

// BenchmarkTable2 regenerates Table 2: false-sharing reduction broken
// down by transformation, averaged over block sizes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(quickCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Total, "red%_"+r.Program)
			}
			b.Logf("\n%s", experiments.RenderTable2(rows))
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: speedup curves for the three
// representative programs.
func BenchmarkFigure4(b *testing.B) {
	machine := ksr.DefaultConfig()
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure4(quickCfg(), machine)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, name := range []string{"raytrace", "fmm", "pverify"} {
				for _, c := range curves[name] {
					b.ReportMetric(c.MaxSpeed, fmt.Sprintf("max_%s_%s", name, c.Version))
				}
				b.Logf("\n%s", experiments.RenderCurves(curves[name]))
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3: maximum speedups across the
// whole suite.
func BenchmarkTable3(b *testing.B) {
	machine := ksr.DefaultConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(quickCfg(), machine)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.RenderTable3(rows))
		}
	}
}

// BenchmarkAggregates regenerates the §1/§5 headline numbers at 128B.
func BenchmarkAggregates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.ComputeAggregates(quickCfg(), 128)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*a.FSFractionOfMisses, "fs_frac%")
			b.ReportMetric(100*a.FSEliminated, "fs_elim%")
			b.ReportMetric(100*a.OtherIncrease, "other_incr%")
			b.ReportMetric(100*a.TotalMissReduction, "total_red%")
			b.Logf("\n%s", a.Render())
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationNoProfiling disables static profiling: without
// frequency weighting, cold data gets padded too (spatial-locality
// loss) and busy scalars are indistinguishable from cold ones.
func BenchmarkAblationNoProfiling(b *testing.B) {
	bm := workload.Get("maxflow")
	for i := 0; i < b.N; i++ {
		for _, noProf := range []bool{false, true} {
			res, err := core.Restructure(bm.Source(1), core.Options{
				Nprocs: 12, BlockSize: 128, NoProfiling: noProf,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("noProfiling=%v: %d decisions, %d skipped",
					noProf, len(res.Applied), len(res.Plan.Skipped))
			}
		}
	}
}

// BenchmarkAblationLockCoAllocation compares padded locks against
// Torrellas-style co-allocation on the lock-heavy radiosity kernel.
func BenchmarkAblationLockCoAllocation(b *testing.B) {
	bm := workload.Get("radiosity")
	machine := ksr.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, coalloc := range []bool{false, true} {
			prog, err := experiments.Program(bm, experiments.VersionC, 12, 1, 128,
				transform.Config{CoAllocateLocks: coalloc})
			if err != nil {
				b.Fatal(err)
			}
			r, err := ksr.Execute(prog, machine)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				label := "padded"
				if coalloc {
					label = "coallocated"
				}
				b.ReportMetric(r.Cycles, "cycles_"+label)
			}
		}
	}
}

// BenchmarkAblationWriteDominance sweeps the §3.3 write:read dominance
// threshold.
func BenchmarkAblationWriteDominance(b *testing.B) {
	bm := workload.Get("fmm")
	for i := 0; i < b.N; i++ {
		for _, dom := range []float64{2, 10, 100} {
			res, err := core.Restructure(bm.Source(1), core.Options{
				Nprocs: 12, BlockSize: 128,
				Heuristics: transform.Config{WriteDominance: dom},
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("dominance=%g: %d decisions", dom, len(res.Applied))
			}
		}
	}
}

// BenchmarkAblationRSDLimit sweeps the descriptor cap (paper: 10).
func BenchmarkAblationRSDLimit(b *testing.B) {
	bm := workload.Get("topopt")
	for i := 0; i < b.N; i++ {
		for _, limit := range []int{1, 10} {
			res, err := core.Restructure(bm.Source(1), core.Options{
				Nprocs: 12, BlockSize: 128, RSDLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("rsdLimit=%d: %d decisions", limit, len(res.Applied))
			}
		}
	}
}

// BenchmarkAblationWordInvalidateHW compares the paper's compile-time
// approach against the hardware alternative of Dubois et al. (§6):
// per-word invalidation eliminates false-sharing misses entirely, but
// costs per-word valid bits and extra traffic; the compiler gets most
// of the benefit with no hardware change. Reported metrics are misses
// on the unoptimized program under both protocols, and on the
// transformed program under the normal protocol.
func BenchmarkAblationWordInvalidateHW(b *testing.B) {
	bm := workload.Get("pverify")
	for i := 0; i < b.N; i++ {
		res, err := core.Restructure(bm.Source(1), core.Options{Nprocs: 12, BlockSize: 128})
		if err != nil {
			b.Fatal(err)
		}
		measure := func(prog *core.Program, wordInval bool) int64 {
			bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 12)
			if err != nil {
				b.Fatal(err)
			}
			cfg := cache.DefaultConfig(12, 128)
			cfg.WordInvalidate = wordInval
			sim, err := cache.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m := vm.New(bc)
			if err := m.Run(func(r vm.Ref) {
				sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
			}); err != nil {
				b.Fatal(err)
			}
			if wordInval && sim.Stats().FalseShare != 0 {
				b.Fatalf("word invalidation left FS misses")
			}
			return sim.Stats().Misses()
		}
		if i == 0 {
			b.ReportMetric(float64(measure(res.Original, false)), "miss_N_invalidate")
			b.ReportMetric(float64(measure(res.Original, true)), "miss_N_wordinval")
			b.ReportMetric(float64(measure(res.Transformed, false)), "miss_C_invalidate")
		}
	}
}

// BenchmarkVM measures raw VM execution speed (instructions/op) on
// the largest kernel, for substrate performance tracking.
func BenchmarkVM(b *testing.B) {
	bm := workload.Get("pverify")
	prog, err := core.Compile(bm.Source(1), core.Options{Nprocs: 12, BlockSize: 128})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := experiments.MeasureBlocks(prog, []int64{128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats[0].Refs), "refs")
	}
}
