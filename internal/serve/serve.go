// Package serve is the fsd daemon: the fsc/fsexp pipeline as a
// long-lived, overload-protected HTTP/JSON service. POST /v1/analyze
// returns the analysis report with miss attribution, /v1/transform
// the restructured source with its translation-validation report,
// /v1/simulate cache statistics under any simulator configuration;
// GET /healthz, /readyz, /metrics and /v1/cache/stats expose
// liveness, drain state, counters, and the artifact cache.
//
// Every request runs through the existing machinery rather than
// around it: the pool executes each admitted request with panic
// containment and a private span recorder, core's safe mode degrades
// malformed or adversarial programs into typed JSON errors with the
// failing stage, the VM's step budget and the per-request deadline
// bound runaway programs, and results are cached in the crash-safe
// artifact store keyed by sha256(stage version ‖ budget ‖ source
// body) — a warm repeat of an identical request never recomputes.
//
// The robustness envelope:
//
//   - Admission control: a bounded worker set plus a bounded queue;
//     past both, requests are rejected with 429 and Retry-After
//     instead of queuing without bound.
//   - Per-client concurrency caps (X-Client-ID header, else the
//     remote host) and request body size limits (413).
//   - A circuit breaker quarantines source hashes that repeatedly
//     panicked the pipeline or blew their step budget — the poison
//     budget, mirroring the fabric's per-cell death budget. Further
//     requests for that hash fast-fail with 422.
//   - Graceful drain: Drain stops admissions, lets in-flight
//     requests finish until the deadline, then cancels their
//     contexts, and flushes the cache index.
//   - Deterministic chaos: faultinject points serve.handler (inside
//     every admitted request), serve.cache (the artifact store's
//     write path), and serve.drain.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"falseshare/internal/artifact"
	"falseshare/internal/core"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/vm"
)

// Stage version strings: part of every cache key, so bumping one
// flushes exactly that endpoint's cached responses.
const (
	analyzeSchema   = "fsd/analyze/v1"
	transformSchema = "fsd/transform/v1"
	simulateSchema  = "fsd/simulate/v1"
)

// Options configures a Server. The zero value serves with the
// documented defaults.
type Options struct {
	// Workers bounds concurrently executing requests (default:
	// GOMAXPROCS). Queue bounds requests waiting for a worker
	// (default 64); past both, requests get 429 + Retry-After.
	Workers int
	Queue   int
	// PerClient caps in-flight requests per client — the X-Client-ID
	// header, else the remote host (default 8).
	PerClient int
	// MaxBody is the request body limit in bytes (default 1 MiB).
	MaxBody int64
	// RequestTimeout bounds one request's compile+simulate work
	// (default 60s).
	RequestTimeout time.Duration
	// StepBudget caps VM steps per request (default 200e6). Requests
	// may ask for less, never more.
	StepBudget int64
	// PoisonBudget is the circuit breaker's strike limit: after this
	// many panics or blown budgets, a source hash is quarantined
	// (default 3).
	PoisonBudget int
	// CacheDir enables the artifact response cache; CacheBytes is
	// its LRU eviction budget (0 = unlimited).
	CacheDir   string
	CacheBytes int64
	// Verbose/LogW stream per-request span completions; Metrics
	// receives streaming metric snapshots from inside requests
	// (simulator progress), forwarded from every request recorder.
	Verbose bool
	LogW    io.Writer
	Metrics obs.MetricsSink
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.PerClient <= 0 {
		o.PerClient = 8
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 1 << 20
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.StepBudget <= 0 {
		o.StepBudget = 200_000_000
	}
	if o.PoisonBudget <= 0 {
		o.PoisonBudget = 3
	}
	if o.LogW == nil {
		o.LogW = os.Stderr
	}
	return o
}

// Server is one fsd instance.
type Server struct {
	opt   Options
	store *artifact.Store
	mux   *http.ServeMux
	hsrv  *http.Server
	start time.Time

	// baseCtx dies when drain gives up waiting: every in-flight
	// request's context is its child.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	slots chan struct{} // admission semaphore: cap == Workers

	mu          sync.Mutex
	queued      int
	clients     map[string]int
	strikes     map[string]int
	quarantined map[string]bool
	draining    bool
	m           metrics
}

// metrics is the /metrics counter set. All access under Server.mu.
type metrics struct {
	Requests         map[string]int64
	Status           map[string]int64
	RejectedQueue    int64
	RejectedClient   int64
	RejectedSize     int64
	Panics           int64
	BudgetBlown      int64
	QuarantineFails  int64
	CacheHitServes   int64
	MetricsSnapshots int64
}

// New builds a Server, opening (and recovering) the artifact cache
// when configured.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:         opt,
		start:       time.Now(),
		slots:       make(chan struct{}, opt.Workers),
		clients:     make(map[string]int),
		strikes:     make(map[string]int),
		quarantined: make(map[string]bool),
	}
	s.m.Requests = make(map[string]int64)
	s.m.Status = make(map[string]int64)
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	if opt.CacheDir != "" {
		st, err := artifact.Open(opt.CacheDir, artifact.Options{
			MaxBytes:   opt.CacheBytes,
			FaultPoint: "serve.cache",
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.store = st
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/readyz", s.readyz)
	s.mux.HandleFunc("/metrics", s.metricsHandler)
	s.mux.HandleFunc("/v1/cache/stats", s.cacheStats)
	s.mux.HandleFunc("/v1/analyze", s.api("analyze", analyzeSchema, s.analyze))
	s.mux.HandleFunc("/v1/transform", s.api("transform", transformSchema, s.transform))
	s.mux.HandleFunc("/v1/simulate", s.api("simulate", simulateSchema, s.simulate))
	s.hsrv = &http.Server{
		Handler:     s.mux,
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	return s, nil
}

// Handler exposes the daemon's routes (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Drain or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	err := s.hsrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Drain.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return s.Serve(ln)
}

// Draining reports whether drain has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the daemon down gracefully: stop accepting and fail
// readiness, let in-flight requests finish, and when ctx expires
// cancel whatever is still running (their handlers answer 503/504),
// then flush the cache index. Safe to call once; the listener is
// closed when it returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	if ferr := faultinject.Fire(ctx, "serve.drain", ""); ferr != nil {
		fmt.Fprintf(s.opt.LogW, "serve: drain fault: %v\n", ferr)
	}
	err := s.hsrv.Shutdown(ctx)
	// Past the deadline (or immediately, when Shutdown returned
	// clean): cancel anything still computing so handlers observe it.
	s.cancelBase()
	if err != nil {
		// Connections were still alive at the deadline; their
		// handlers are being cancelled — force the sockets closed.
		s.hsrv.Close()
	}
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// CacheCounters snapshots the artifact store (zero when no cache).
func (s *Server) CacheCounters() artifact.Counters { return s.store.Counters() }

// ---- request plumbing ----------------------------------------------

// Envelope is every response's JSON shape. HandlerNs measures the
// handler's own work — cache lookup plus compute — excluding network
// reads and writes; it is also exposed as the X-Handler-Ns header,
// and the warm-cache acceptance bound is measured against it.
type Envelope struct {
	OK        bool            `json:"ok"`
	Cached    bool            `json:"cached,omitempty"`
	HandlerNs int64           `json:"handler_ns"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     *ErrorBody      `json:"error,omitempty"`
}

// ErrorBody is the typed error: the HTTP status, the pipeline stage
// that failed (parse, check, layout, restructure, vm, admission,
// drain, quarantine, ...), and the diagnostic.
type ErrorBody struct {
	Status      int    `json:"status"`
	Stage       string `json:"stage"`
	Reason      string `json:"reason"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

type apiFunc func(ctx context.Context, body []byte, budget int64) (any, error)

// api wraps one endpoint with the full envelope: admission, size and
// client caps, the response cache, the poison breaker, pooled
// execution with panic containment, and typed errors.
func (s *Server) api(name, schema string, fn apiFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.countRequest(name)
		if r.Method != http.MethodPost {
			s.writeError(w, name, time.Now(), &ErrorBody{Status: http.StatusMethodNotAllowed, Stage: "request", Reason: "POST required"})
			return
		}
		if s.Draining() {
			s.writeError(w, name, time.Now(), &ErrorBody{Status: http.StatusServiceUnavailable, Stage: "drain", Reason: "daemon is draining"})
			return
		}

		// Size limit, before any queuing: oversized bodies are cheap
		// to reject.
		r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBody)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.bump(func(m *metrics) { m.RejectedSize++ })
				s.writeError(w, name, time.Now(), &ErrorBody{
					Status: http.StatusRequestEntityTooLarge,
					Stage:  "admission",
					Reason: fmt.Sprintf("request body exceeds %d bytes", s.opt.MaxBody),
				})
				return
			}
			s.writeError(w, name, time.Now(), &ErrorBody{Status: http.StatusBadRequest, Stage: "request", Reason: "reading body: " + err.Error()})
			return
		}

		// Per-client cap.
		client := clientKey(r)
		if !s.acquireClient(client) {
			s.bump(func(m *metrics) { m.RejectedClient++ })
			w.Header().Set("Retry-After", "1")
			s.writeError(w, name, time.Now(), &ErrorBody{
				Status: http.StatusTooManyRequests,
				Stage:  "admission",
				Reason: fmt.Sprintf("client %q has %d requests in flight (cap %d)", client, s.opt.PerClient, s.opt.PerClient),
			})
			return
		}
		defer s.releaseClient(client)

		// Admission: worker slot or bounded queue, else 429.
		release, ok := s.admit(r.Context())
		if !ok {
			s.bump(func(m *metrics) { m.RejectedQueue++ })
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			s.writeError(w, name, time.Now(), &ErrorBody{
				Status: http.StatusTooManyRequests,
				Stage:  "admission",
				Reason: "saturated: worker slots and queue are full",
			})
			return
		}
		defer release()

		// The handler clock starts after admission: HandlerNs is the
		// work this request cost, not the time it waited.
		start := time.Now()

		// Per-request observability: a private recorder so concurrent
		// requests don't interleave span trees; streaming metrics
		// forward to the server sink.
		rec := obs.NewRecorder()
		rec.Verbose = s.opt.Verbose
		rec.LogW = s.opt.LogW
		rec.OnMetrics = s.sink
		prev := obs.BindGoroutine(rec)
		defer obs.BindGoroutine(prev)
		sp := obs.Begin("serve." + name)
		defer sp.End()

		srcHash := bodyHash(body)
		budget := s.effectiveBudget(body)
		key := fmt.Sprintf("budget=%d|sha256=%s", budget, srcHash)

		// Response cache first: a warm repeat of an identical request
		// is served without touching the pipeline (sub-millisecond).
		if data, ok := s.store.Get(schema, key); ok {
			sp.Set("cached", 1)
			s.bump(func(m *metrics) { m.CacheHitServes++ })
			s.writeEnvelope(w, name, Envelope{OK: true, Cached: true, Result: data}, start, http.StatusOK)
			return
		}

		// Poison breaker: hashes that repeatedly killed workers are
		// fast-failed, exactly like the fabric's per-cell death
		// budget. Checked after the cache: a cached success is proof
		// the input is fine.
		if s.isQuarantined(srcHash) {
			s.bump(func(m *metrics) { m.QuarantineFails++ })
			s.writeError(w, name, start, &ErrorBody{
				Status:      http.StatusUnprocessableEntity,
				Stage:       "quarantine",
				Reason:      fmt.Sprintf("source %s exceeded the poison budget (%d strikes); quarantined", short(srcHash), s.opt.PoisonBudget),
				Quarantined: true,
			})
			return
		}

		// Execute through the pool: panic containment, the
		// pool.worker and serve.handler fault points, span grafting
		// under this request's recorder.
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		jobKey := name + "/" + short(srcHash)
		jobs := []pool.Job[json.RawMessage]{{
			Key: jobKey,
			Run: func(ctx context.Context) (json.RawMessage, error) {
				if ferr := faultinject.Fire(ctx, "serve.handler", jobKey); ferr != nil {
					return nil, ferr
				}
				v, err := fn(ctx, body, budget)
				if err != nil {
					return nil, err
				}
				return json.Marshal(v)
			},
		}}
		res, err := pool.RunPolicy(ctx, "serve", 1, pool.Policy{}, jobs)
		if err != nil {
			eb := s.classify(ctx, srcHash, err)
			s.writeError(w, name, start, eb)
			return
		}

		// Cache the response (advisory: a failed put only costs
		// future hits) and answer.
		if perr := s.store.Put(ctx, schema, key, res[0]); perr != nil {
			fmt.Fprintf(s.opt.LogW, "serve: cache put: %v\n", perr)
		}
		s.writeEnvelope(w, name, Envelope{OK: true, Result: res[0]}, start, http.StatusOK)
	}
}

// classify maps a pipeline failure to its typed error, and feeds the
// poison breaker: contained panics and blown step budgets are
// strikes against the source hash.
func (s *Server) classify(ctx context.Context, srcHash string, err error) *ErrorBody {
	cause := err
	if fails := pool.Failures(err); len(fails) > 0 {
		cause = fails[0].Err
	}

	switch {
	case errors.Is(cause, context.DeadlineExceeded):
		return &ErrorBody{Status: http.StatusGatewayTimeout, Stage: "deadline",
			Reason: fmt.Sprintf("request exceeded its deadline (%s)", s.opt.RequestTimeout)}
	case errors.Is(cause, context.Canceled):
		stage, reason := "cancelled", "request cancelled"
		if s.Draining() {
			stage, reason = "drain", "request cancelled by daemon drain"
		}
		return &ErrorBody{Status: http.StatusServiceUnavailable, Stage: stage, Reason: reason}
	}

	var ferr *faultinject.Error
	if errors.As(cause, &ferr) {
		// Injected faults are infrastructure chaos, not the input's
		// fault: typed 500, no poison strike.
		return &ErrorBody{Status: http.StatusInternalServerError, Stage: "fault", Reason: cause.Error()}
	}

	var ie *core.InternalError
	if errors.As(cause, &ie) {
		// A contained compiler panic: the process survived, the
		// request degrades to a typed 500, and the input earns a
		// poison strike.
		s.bump(func(m *metrics) { m.Panics++ })
		s.strike(srcHash)
		return &ErrorBody{Status: http.StatusInternalServerError, Stage: ie.Stage,
			Reason: "internal error (contained panic): " + ie.Value}
	}
	if msg := cause.Error(); strings.HasPrefix(msg, "panic: ") {
		// A panic the pool contained outside core's guards (handler
		// code, simulator): same posture.
		s.bump(func(m *metrics) { m.Panics++ })
		s.strike(srcHash)
		if i := strings.IndexByte(msg, '\n'); i > 0 {
			msg = msg[:i]
		}
		return &ErrorBody{Status: http.StatusInternalServerError, Stage: "handler",
			Reason: "internal error (contained " + msg + ")"}
	}

	var re *vm.RunError
	if errors.As(cause, &re) {
		if strings.Contains(re.Msg, "step budget exceeded") {
			s.bump(func(m *metrics) { m.BudgetBlown++ })
			s.strike(srcHash)
		}
		return &ErrorBody{Status: http.StatusUnprocessableEntity, Stage: "vm", Reason: cause.Error()}
	}

	if stage := core.ErrorStage(cause); stage != "" {
		// The program's fault (parse error, type error, bad layout):
		// a client error, no strike.
		return &ErrorBody{Status: http.StatusUnprocessableEntity, Stage: stage, Reason: cause.Error()}
	}
	var be *badRequestError
	if errors.As(cause, &be) {
		return &ErrorBody{Status: http.StatusBadRequest, Stage: be.stage, Reason: be.Error()}
	}
	return &ErrorBody{Status: http.StatusInternalServerError, Stage: "internal", Reason: cause.Error()}
}

// badRequestError marks malformed request bodies and configurations
// (as opposed to programs that fail to compile).
type badRequestError struct {
	stage string
	err   error
}

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(stage string, err error) error {
	return &badRequestError{stage: stage, err: err}
}

// ---- admission, clients, poison ------------------------------------

// admit acquires a worker slot, waiting in the bounded queue when
// all are busy. False means rejected (queue full) or the request
// died while waiting.
func (s *Server) admit(ctx context.Context) (func(), bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
	}
	s.mu.Lock()
	if s.queued >= s.opt.Queue || s.draining {
		s.mu.Unlock()
		return nil, false
	}
	s.queued++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
	}()
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-ctx.Done():
		return nil, false
	case <-s.baseCtx.Done():
		return nil, false
	}
}

// retryAfter estimates (in whole seconds, at least 1) when a
// rejected client should try again: the queue's depth over the
// worker count, bounded to stay a hint rather than a promise.
func (s *Server) retryAfter() int {
	s.mu.Lock()
	q := s.queued
	s.mu.Unlock()
	sec := 1 + q/s.opt.Workers
	if sec > 30 {
		sec = 30
	}
	return sec
}

func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) acquireClient(client string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client] >= s.opt.PerClient {
		return false
	}
	s.clients[client]++
	return true
}

func (s *Server) releaseClient(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients[client]--; s.clients[client] <= 0 {
		delete(s.clients, client)
	}
}

func (s *Server) isQuarantined(srcHash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined[srcHash]
}

// strike charges one poison strike against a source hash; at the
// budget, the hash is quarantined for the daemon's lifetime.
func (s *Server) strike(srcHash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strikes[srcHash]++
	if s.strikes[srcHash] >= s.opt.PoisonBudget {
		s.quarantined[srcHash] = true
	}
}

// requestCtx derives the request's working context: bounded by the
// per-request timeout, the client connection, and the drain
// deadline (baseCtx) — whichever dies first.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// effectiveBudget is the VM step budget for one request: the server
// cap, lowered (never raised) by the request's step_budget field.
func (s *Server) effectiveBudget(body []byte) int64 {
	var req struct {
		StepBudget int64 `json:"step_budget"`
	}
	budget := s.opt.StepBudget
	if json.Unmarshal(body, &req) == nil && req.StepBudget > 0 && req.StepBudget < budget {
		budget = req.StepBudget
	}
	return budget
}

// sink receives streaming metric snapshots from inside requests
// (the simulators' samplers) and forwards them to the configured
// sink.
func (s *Server) sink(source string, counters map[string]int64) {
	s.bump(func(m *metrics) { m.MetricsSnapshots++ })
	if s.opt.Metrics != nil {
		s.opt.Metrics(source, counters)
	}
}

// ---- responses and counters ----------------------------------------

func (s *Server) countRequest(name string) {
	s.mu.Lock()
	s.m.Requests[name]++
	s.mu.Unlock()
}

func (s *Server) bump(f func(*metrics)) {
	s.mu.Lock()
	f(&s.m)
	s.mu.Unlock()
}

func (s *Server) countStatus(status int) {
	class := fmt.Sprintf("%dxx", status/100)
	s.mu.Lock()
	s.m.Status[class]++
	s.mu.Unlock()
}

func (s *Server) writeEnvelope(w http.ResponseWriter, name string, env Envelope, start time.Time, status int) {
	env.HandlerNs = time.Since(start).Nanoseconds()
	s.countStatus(status)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Handler-Ns", strconv.FormatInt(env.HandlerNs, 10))
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&env)
}

func (s *Server) writeError(w http.ResponseWriter, name string, start time.Time, eb *ErrorBody) {
	s.writeEnvelope(w, name, Envelope{Error: eb}, start, eb.Status)
}

func bodyHash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// ---- health, metrics, cache stats ----------------------------------

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	requests := make(map[string]int64, len(s.m.Requests))
	for k, v := range s.m.Requests {
		requests[k] = v
	}
	status := make(map[string]int64, len(s.m.Status))
	for k, v := range s.m.Status {
		status[k] = v
	}
	body := map[string]any{
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"draining":  s.draining,
		"in_flight": len(s.slots),
		"queued":    s.queued,
		"requests":  requests,
		"status":    status,
		"rejected": map[string]int64{
			"queue":  s.m.RejectedQueue,
			"client": s.m.RejectedClient,
			"size":   s.m.RejectedSize,
		},
		"panics_contained":     s.m.Panics,
		"budget_blown":         s.m.BudgetBlown,
		"quarantined_hashes":   len(s.quarantined),
		"quarantine_fastfails": s.m.QuarantineFails,
		"cache_hit_serves":     s.m.CacheHitServes,
		"metrics_snapshots":    s.m.MetricsSnapshots,
	}
	s.mu.Unlock()
	body["cache"] = s.store.Counters()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) cacheStats(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"dir":      s.store.Dir(),
		"counters": s.store.Counters(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
