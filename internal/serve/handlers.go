package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
	"falseshare/internal/sim/cache"
)

// Daemon-side defaults for requests that omit the machine shape.
const (
	defaultNprocs    = 8
	defaultBlockSize = 64
	defaultTopFS     = 5
)

// request is the shared request body: all three POST endpoints take
// a superset of these fields; unknown fields are ignored so clients
// can send one shape everywhere.
type request struct {
	// Source is the parC program (required).
	Source string `json:"source"`
	// Nprocs/BlockSize set the machine shape the analysis assumes
	// (defaults 8 and 64).
	Nprocs    int   `json:"nprocs"`
	BlockSize int64 `json:"block_size"`
	// StepBudget lowers the VM step budget below the server cap.
	StepBudget int64 `json:"step_budget"`

	// analyze: how many worst false-sharing objects to list.
	Top int `json:"top"`

	// transform: run translation validation (default true; set
	// "verify": false to skip).
	Verify *bool `json:"verify"`

	// simulate: which program to measure — "original" (default) or
	// "transformed" (compile-time restructuring first).
	Version string `json:"version"`
	// simulate: simulator configuration overrides on top of
	// cache.DefaultConfig (32 KiB, 4-way).
	CacheSize      int64  `json:"cache_size"`
	Assoc          int    `json:"assoc"`
	Protocol       string `json:"protocol"`
	Topology       string `json:"topology"`
	SectorSize     int64  `json:"sector_size"`
	WordInvalidate bool   `json:"word_invalidate"`
	RingSize       int    `json:"ring_size"`
	LocalLatency   int64  `json:"local_latency"`
	RemoteLatency  int64  `json:"remote_latency"`
}

func parseRequest(body []byte) (*request, error) {
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("request", fmt.Errorf("decoding request body: %w", err))
	}
	if req.Source == "" {
		return nil, badRequest("request", errors.New(`missing "source"`))
	}
	if req.Nprocs <= 0 {
		req.Nprocs = defaultNprocs
	}
	if req.BlockSize <= 0 {
		req.BlockSize = defaultBlockSize
	}
	return &req, nil
}

// cacheConfig builds the simulator configuration from the request's
// overrides on top of the default geometry.
func (req *request) cacheConfig() (cache.Config, error) {
	ccfg := cache.DefaultConfig(req.Nprocs, req.BlockSize)
	if req.CacheSize > 0 {
		ccfg.CacheSize = req.CacheSize
	}
	if req.Assoc > 0 {
		ccfg.Assoc = req.Assoc
	}
	ccfg.SectorSize = req.SectorSize
	ccfg.WordInvalidate = req.WordInvalidate
	if req.Protocol != "" {
		p, err := cache.ParseProtocol(req.Protocol)
		if err != nil {
			return ccfg, badRequest("config", err)
		}
		ccfg.Protocol = p
	}
	if req.Topology != "" {
		topo, err := cache.ParseTopology(req.Topology)
		if err != nil {
			return ccfg, badRequest("config", err)
		}
		ccfg.Topology = topo
	}
	if req.RingSize > 0 {
		ccfg.RingSize = req.RingSize
	}
	if req.LocalLatency > 0 {
		ccfg.LocalLatency = req.LocalLatency
	}
	if req.RemoteLatency > 0 {
		ccfg.RemoteLatency = req.RemoteLatency
	}
	if err := ccfg.Validate(); err != nil {
		return ccfg, badRequest("config", err)
	}
	return ccfg, nil
}

// analyze runs the restructuring analysis and attributes the
// original program's coherence misses back to objects and fields:
// what the compiler would do, and why, with the simulator's evidence.
func (s *Server) analyze(ctx context.Context, body []byte, budget int64) (any, error) {
	req, err := parseRequest(body)
	if err != nil {
		return nil, err
	}
	res, err := core.RestructureCtx(ctx, req.Source, core.Options{
		Nprocs:    req.Nprocs,
		BlockSize: req.BlockSize,
	})
	if err != nil {
		return nil, err
	}
	ccfg, err := req.cacheConfig()
	if err != nil {
		return nil, err
	}
	st, rep, err := experiments.MeasureConfigAttr(ctx, res.Original, ccfg, budget)
	if err != nil {
		return nil, err
	}

	decisions := make([]string, 0, len(res.Plan.Decisions))
	for _, d := range res.Plan.Decisions {
		decisions = append(decisions, d.String())
	}
	degraded := make([]string, 0, len(res.Degraded))
	for _, d := range res.Degraded {
		degraded = append(degraded, d.String())
	}
	top := req.Top
	if top <= 0 {
		top = defaultTopFS
	}
	return map[string]any{
		"nprocs":      req.Nprocs,
		"block_size":  req.BlockSize,
		"decisions":   decisions,
		"skipped":     res.Plan.Skipped,
		"degraded":    degraded,
		"stats":       experiments.StatsRecord(st),
		"top_fs":      experiments.TopFSObjects(rep, top),
		"attribution": rep,
	}, nil
}

// transform runs the full compile-time restructuring and returns the
// transformed source with the translation-validation report.
func (s *Server) transform(ctx context.Context, body []byte, budget int64) (any, error) {
	req, err := parseRequest(body)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		Nprocs:       req.Nprocs,
		BlockSize:    req.BlockSize,
		Verify:       req.Verify == nil || *req.Verify,
		VerifyBudget: budget,
	}
	res, err := core.RestructureCtx(ctx, req.Source, opt)
	if err != nil {
		return nil, err
	}

	applied := make([]string, 0, len(res.Applied))
	for _, d := range res.Applied {
		applied = append(applied, d.String())
	}
	degraded := make([]string, 0, len(res.Degraded))
	for _, d := range res.Degraded {
		degraded = append(degraded, d.String())
	}
	out := map[string]any{
		"nprocs":             req.Nprocs,
		"block_size":         req.BlockSize,
		"transformed_source": res.Transformed.Source,
		"applied":            applied,
		"skipped":            res.Plan.Skipped,
		"degraded":           degraded,
		"verified":           opt.Verify,
	}
	if res.Verify != nil {
		out["verify_report"] = res.Verify.String()
	}
	return out, nil
}

// simulate measures one program version under an arbitrary simulator
// configuration and returns the full statistics record.
func (s *Server) simulate(ctx context.Context, body []byte, budget int64) (any, error) {
	req, err := parseRequest(body)
	if err != nil {
		return nil, err
	}
	ccfg, err := req.cacheConfig()
	if err != nil {
		return nil, err
	}

	opt := core.Options{Nprocs: req.Nprocs, BlockSize: req.BlockSize}
	var prog *core.Program
	switch req.Version {
	case "", "original", "orig":
		req.Version = "original"
		prog, err = core.CompileCtx(ctx, req.Source, opt)
	case "transformed", "restructured":
		req.Version = "transformed"
		var res *core.Result
		res, err = core.RestructureCtx(ctx, req.Source, opt)
		if err == nil {
			prog = res.Transformed
		}
	default:
		return nil, badRequest("request", fmt.Errorf(`unknown "version" %q (want "original" or "transformed")`, req.Version))
	}
	if err != nil {
		return nil, err
	}

	st, err := experiments.MeasureConfig(ctx, prog, ccfg, budget)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"version": req.Version,
		"stats":   st,
		"summary": experiments.StatsRecord(st),
	}, nil
}
