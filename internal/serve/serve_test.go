package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"falseshare/internal/faultinject"
	"falseshare/internal/serve"
)

// goodProgram exhibits classic per-processor false sharing: adjacent
// cell[pid]/hits[pid] words packed into shared blocks.
const goodProgram = `
shared int cell[16];
shared int hits[16];
void main() {
    for (int i = 0; i < 200; i = i + 1) {
        cell[pid] = cell[pid] + 1;
        hits[pid] = hits[pid] + 2;
    }
}
`

// runawayProgram needs ~4M steps — far past the tiny step budget the
// poison tests submit, so every attempt blows the budget.
const runawayProgram = `
shared int x[8];
void main() {
    for (int i = 0; i < 1000000; i = i + 1) {
        x[pid] = x[pid] + 1;
    }
}
`

func newEnv(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opt.LogW == nil {
		opt.LogW = testWriter{t}
	}
	srv, err := serve.New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// post sends one API request and decodes the envelope.
func post(t *testing.T, url, path string, body map[string]any, hdr map[string]string) (int, *serve.Envelope, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var env serve.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("POST %s: decoding envelope: %v", path, err)
	}
	return resp.StatusCode, &env, resp.Header
}

func analyzeBody() map[string]any {
	return map[string]any{"source": goodProgram, "nprocs": 4, "block_size": 64}
}

func TestEndpointsHappyPath(t *testing.T) {
	_, ts := newEnv(t, serve.Options{})

	// analyze: decisions + attribution against the original program.
	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || !env.OK {
		t.Fatalf("analyze: status=%d env=%+v", status, env)
	}
	var analysis struct {
		Decisions []string `json:"decisions"`
		TopFS     []string `json:"top_fs"`
		Stats     struct {
			Refs       int64 `json:"refs"`
			FalseShare int64 `json:"false_share"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(env.Result, &analysis); err != nil {
		t.Fatalf("analyze result: %v", err)
	}
	if len(analysis.Decisions) == 0 {
		t.Error("analyze: no transformation decisions for a false-sharing program")
	}
	if analysis.Stats.Refs == 0 || analysis.Stats.FalseShare == 0 {
		t.Errorf("analyze: expected refs and false-sharing misses, got %+v", analysis.Stats)
	}
	if len(analysis.TopFS) == 0 {
		t.Error("analyze: no top false-sharing objects attributed")
	}

	// transform: restructured source + validation verdict.
	status, env, _ = post(t, ts.URL, "/v1/transform", analyzeBody(), nil)
	if status != http.StatusOK || !env.OK {
		t.Fatalf("transform: status=%d env=%+v", status, env)
	}
	var trans struct {
		TransformedSource string   `json:"transformed_source"`
		Applied           []string `json:"applied"`
		Verified          bool     `json:"verified"`
	}
	if err := json.Unmarshal(env.Result, &trans); err != nil {
		t.Fatalf("transform result: %v", err)
	}
	if !strings.Contains(trans.TransformedSource, "struct") || len(trans.Applied) == 0 {
		t.Errorf("transform: expected a grouped record, got applied=%v source:\n%s",
			trans.Applied, trans.TransformedSource)
	}
	if !trans.Verified {
		t.Error("transform: verification should default on")
	}

	// simulate: both versions; the transformed one must cut false
	// sharing.
	fs := map[string]int64{}
	for _, version := range []string{"original", "transformed"} {
		body := analyzeBody()
		body["version"] = version
		status, env, _ = post(t, ts.URL, "/v1/simulate", body, nil)
		if status != http.StatusOK || !env.OK {
			t.Fatalf("simulate %s: status=%d env=%+v", version, status, env)
		}
		var sim struct {
			Summary struct {
				FalseShare int64 `json:"false_share"`
			} `json:"summary"`
		}
		if err := json.Unmarshal(env.Result, &sim); err != nil {
			t.Fatalf("simulate result: %v", err)
		}
		fs[version] = sim.Summary.FalseShare
	}
	if fs["transformed"] >= fs["original"] {
		t.Errorf("simulate: restructuring did not cut false sharing: original=%d transformed=%d",
			fs["original"], fs["transformed"])
	}

	// Health, readiness, metrics.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/cache/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m struct {
		Requests map[string]int64 `json:"requests"`
		Status   map[string]int64 `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if m.Requests["analyze"] == 0 || m.Status["2xx"] == 0 {
		t.Errorf("metrics: expected non-zero analyze requests and 2xx, got %+v", m)
	}
}

func TestTypedErrors(t *testing.T) {
	_, ts := newEnv(t, serve.Options{MaxBody: 4096})

	cases := []struct {
		name   string
		path   string
		body   map[string]any
		status int
		stage  string
	}{
		{"parse error", "/v1/analyze",
			map[string]any{"source": "shared int x["},
			http.StatusUnprocessableEntity, "parse"},
		{"missing source", "/v1/transform",
			map[string]any{"nprocs": 4},
			http.StatusBadRequest, "request"},
		{"bad protocol", "/v1/simulate",
			map[string]any{"source": goodProgram, "protocol": "nope"},
			http.StatusBadRequest, "config"},
		{"bad version", "/v1/simulate",
			map[string]any{"source": goodProgram, "version": "quantum"},
			http.StatusBadRequest, "request"},
		{"bad block size", "/v1/simulate",
			map[string]any{"source": goodProgram, "block_size": 48},
			http.StatusBadRequest, "config"},
	}
	for _, c := range cases {
		status, env, _ := post(t, ts.URL, c.path, c.body, nil)
		if status != c.status || env.Error == nil || env.Error.Stage != c.stage {
			t.Errorf("%s: status=%d env.Error=%+v, want status=%d stage=%q",
				c.name, status, env.Error, c.status, c.stage)
		}
	}

	// Oversized body: 413 at admission.
	big := map[string]any{"source": strings.Repeat("x", 8192)}
	status, env, _ := post(t, ts.URL, "/v1/analyze", big, nil)
	if status != http.StatusRequestEntityTooLarge || env.Error == nil || env.Error.Stage != "admission" {
		t.Errorf("oversized body: status=%d env.Error=%+v", status, env.Error)
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: status %d, want 405", resp.StatusCode)
	}
}

// TestPanicContainedNextSucceeds is the core chaos acceptance: an
// injected panic inside a request degrades that request to a typed
// 500 — and the daemon serves the next request normally.
func TestPanicContainedNextSucceeds(t *testing.T) {
	_, ts := newEnv(t, serve.Options{})

	set, err := faultinject.Parse("serve.handler:panic:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusInternalServerError || env.Error == nil {
		t.Fatalf("panicking request: status=%d env=%+v, want typed 500", status, env)
	}
	if env.Error.Stage == "" || !strings.Contains(env.Error.Reason, "panic") {
		t.Errorf("panicking request: error not typed: %+v", env.Error)
	}

	status, env, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || !env.OK {
		t.Fatalf("request after contained panic: status=%d env=%+v, want 200", status, env)
	}
}

// TestInjectedFaultTypedError: a plain injected error surfaces as a
// typed 500 with stage "fault" and no poison strike.
func TestInjectedFaultTypedError(t *testing.T) {
	_, ts := newEnv(t, serve.Options{PoisonBudget: 1})

	set, err := faultinject.Parse("serve.handler:error:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusInternalServerError || env.Error == nil || env.Error.Stage != "fault" {
		t.Fatalf("injected fault: status=%d env.Error=%+v, want 500 stage=fault", status, env.Error)
	}

	// No strike: even with PoisonBudget 1, the same source still runs.
	status, env, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK {
		t.Fatalf("after injected fault: status=%d env=%+v (fault must not poison the input)", status, env)
	}
}

// TestQuarantinePoisonHash: a source that keeps blowing its step
// budget earns strikes; at the poison budget the hash is quarantined
// and fast-failed, mirroring the fabric's per-cell death budget.
func TestQuarantinePoisonHash(t *testing.T) {
	_, ts := newEnv(t, serve.Options{PoisonBudget: 2})

	body := map[string]any{"source": runawayProgram, "nprocs": 2, "block_size": 64, "step_budget": 2000}
	for i := 0; i < 2; i++ {
		status, env, _ := post(t, ts.URL, "/v1/analyze", body, nil)
		if status != http.StatusUnprocessableEntity || env.Error == nil || env.Error.Stage != "vm" {
			t.Fatalf("strike %d: status=%d env.Error=%+v, want 422 stage=vm", i+1, status, env.Error)
		}
		if !strings.Contains(env.Error.Reason, "step budget exceeded") {
			t.Fatalf("strike %d: reason %q", i+1, env.Error.Reason)
		}
	}

	// Past the budget: fast-fail without compiling anything.
	start := time.Now()
	status, env, _ := post(t, ts.URL, "/v1/analyze", body, nil)
	if status != http.StatusUnprocessableEntity || env.Error == nil || env.Error.Stage != "quarantine" || !env.Error.Quarantined {
		t.Fatalf("quarantined request: status=%d env.Error=%+v", status, env.Error)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("quarantine fast-fail took %v", d)
	}

	// A different program (different hash) is unaffected.
	if status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil); status != http.StatusOK {
		t.Fatalf("innocent request after quarantine: status=%d env=%+v", status, env)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		BudgetBlown int64 `json:"budget_blown"`
		Quarantined int64 `json:"quarantined_hashes"`
		FastFails   int64 `json:"quarantine_fastfails"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.BudgetBlown != 2 || m.Quarantined != 1 || m.FastFails != 1 {
		t.Errorf("metrics: budget_blown=%d quarantined=%d fastfails=%d, want 2/1/1",
			m.BudgetBlown, m.Quarantined, m.FastFails)
	}
}

// TestOverloadBounded: with one worker and a one-deep queue, a third
// concurrent request is rejected 429 + Retry-After instead of
// queuing without bound.
func TestOverloadBounded(t *testing.T) {
	_, ts := newEnv(t, serve.Options{Workers: 1, Queue: 1, PerClient: 16})

	set, err := faultinject.Parse("serve.handler:delay=600ms:count=2")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	statuses := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
		}(i)
		// Give request i time to occupy the worker slot (i=0) and the
		// queue slot (i=1) before the next arrives.
		time.Sleep(150 * time.Millisecond)
	}
	var hdr http.Header
	var env *serve.Envelope
	statuses[2], env, hdr = post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	wg.Wait()

	if statuses[0] != http.StatusOK || statuses[1] != http.StatusOK {
		t.Errorf("admitted requests: statuses %v, want 200,200", statuses[:2])
	}
	if statuses[2] != http.StatusTooManyRequests || env.Error == nil || env.Error.Stage != "admission" {
		t.Fatalf("overflow request: status=%d env.Error=%+v, want 429 admission", statuses[2], env.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("overflow request: missing Retry-After header")
	}
}

// TestPerClientCap: one client saturating its own cap gets 429
// without affecting other clients.
func TestPerClientCap(t *testing.T) {
	_, ts := newEnv(t, serve.Options{Workers: 4, PerClient: 1})

	set, err := faultinject.Parse("serve.handler:delay=500ms:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	greedy := map[string]string{"X-Client-ID": "greedy"}
	var wg sync.WaitGroup
	var firstStatus int
	wg.Add(1)
	go func() {
		defer wg.Done()
		firstStatus, _, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), greedy)
	}()
	time.Sleep(150 * time.Millisecond)

	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), greedy)
	if status != http.StatusTooManyRequests || env.Error == nil || env.Error.Stage != "admission" {
		t.Errorf("second greedy request: status=%d env.Error=%+v, want 429", status, env.Error)
	}
	// Another client is unaffected.
	status, _, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), map[string]string{"X-Client-ID": "patient"})
	if status != http.StatusOK {
		t.Errorf("other client: status=%d, want 200", status)
	}
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Errorf("first greedy request: status=%d, want 200", firstStatus)
	}
}

// TestWarmCacheHit: an identical repeat is served from the artifact
// store — cached:true, and the handler time excludes the pipeline
// entirely.
func TestWarmCacheHit(t *testing.T) {
	_, ts := newEnv(t, serve.Options{CacheDir: t.TempDir()})

	status, cold, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || cold.Cached {
		t.Fatalf("cold request: status=%d cached=%v", status, cold.Cached)
	}
	status, warm, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || !warm.Cached {
		t.Fatalf("warm request: status=%d cached=%v, want cache hit", status, warm.Cached)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Error("warm result differs from cold result")
	}
	// The warm handler did a hash, one small file read, and a JSON
	// decode: sub-millisecond on any dev machine; 25ms bounds it
	// under CI noise while still proving no recompute happened.
	if warm.HandlerNs > 25*int64(time.Millisecond) {
		t.Errorf("warm handler took %v, want sub-millisecond-ish", time.Duration(warm.HandlerNs))
	}

	var st struct {
		Counters struct {
			Hits int64 `json:"hits"`
		} `json:"counters"`
	}
	resp, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Counters.Hits != 1 {
		t.Errorf("cache stats: hits=%d, want 1", st.Counters.Hits)
	}

	// A different step budget is a different key: no stale hit.
	body := analyzeBody()
	body["step_budget"] = 1_000_000
	if _, env, _ := post(t, ts.URL, "/v1/analyze", body, nil); env.Cached {
		t.Error("different budget served from cache")
	}
}

// TestCacheWriteFaultDegrades: a failing cache write costs future
// hits, never the response.
func TestCacheWriteFaultDegrades(t *testing.T) {
	_, ts := newEnv(t, serve.Options{CacheDir: t.TempDir()})

	set, err := faultinject.Parse("serve.cache=put/:error:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || !env.OK {
		t.Fatalf("request with failing cache write: status=%d env=%+v, want 200", status, env)
	}
	// The write was lost, so the repeat is a miss — but it computes
	// and succeeds.
	status, env, _ = post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusOK || env.Cached {
		t.Fatalf("repeat after lost write: status=%d cached=%v", status, env.Cached)
	}
}

// TestGracefulDrain: SIGTERM semantics at the library level — drain
// lets the in-flight request finish, fails readiness, rejects new
// work, closes the listener, and flushes the cache.
func TestGracefulDrain(t *testing.T) {
	srv, err := serve.New(serve.Options{CacheDir: t.TempDir(), LogW: testWriter{t}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	set, err := faultinject.Parse("serve.handler:delay=400ms:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	inflight := make(chan int, 1)
	go func() {
		status, _, _ := post(t, url, "/v1/analyze", analyzeBody(), nil)
		inflight <- status
	}()
	time.Sleep(150 * time.Millisecond) // let it reach the handler

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("drain took %v", d)
	}
	if err := <-served; err != nil {
		t.Errorf("Serve returned %v, want nil after drain", err)
	}
	if status := <-inflight; status != http.StatusOK {
		t.Errorf("in-flight request during drain: status=%d, want 200", status)
	}
	if !srv.Draining() {
		t.Error("Draining() false after drain")
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestDrainRejectsNewRequests: once draining, the handler answers
// 503 stage=drain (for deployments keeping the socket open behind a
// proxy) and readyz fails.
func TestDrainRejectsNewRequests(t *testing.T) {
	srv, ts := newEnv(t, serve.Options{})

	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	status, env, _ := post(t, ts.URL, "/v1/analyze", analyzeBody(), nil)
	if status != http.StatusServiceUnavailable || env.Error == nil || env.Error.Stage != "drain" {
		t.Errorf("request while draining: status=%d env.Error=%+v, want 503 drain", status, env.Error)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status=%d, want 503", resp.StatusCode)
	}
}

// TestDrainCancelsStragglers: a request hung past the drain deadline
// is cancelled rather than holding the daemon open forever.
func TestDrainCancelsStragglers(t *testing.T) {
	srv, ts := newEnv(t, serve.Options{})

	set, err := faultinject.Parse("serve.handler:hang:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// The connection may be severed at the deadline or answer a
		// typed 5xx — either way the request must terminate.
		b, _ := json.Marshal(analyzeBody())
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
		if err == nil {
			if resp.StatusCode < 500 {
				t.Errorf("hung request: status=%d, want 5xx or connection error", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond)

	drainCtx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	srv.Drain(drainCtx) // deadline exceeded is expected here
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain with hung request took %v", d)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hung request never terminated after drain")
	}
}

// TestAdmissionAfterDrainUnblocksQueue: requests parked in the
// admission queue when drain begins are released, not leaked.
func TestAdmissionAfterDrainUnblocksQueue(t *testing.T) {
	srv, ts := newEnv(t, serve.Options{Workers: 1, Queue: 4})

	set, err := faultinject.Parse("serve.handler:hang:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(analyzeBody())
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(100 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	srv.Drain(drainCtx)

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("queued requests never released after drain")
	}
}
