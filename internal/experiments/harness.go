// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5): Figure 3 (miss-rate bars), Table 2
// (false-sharing reduction by transformation), Figure 4 (speedup
// curves), Table 3 (maximum speedups), and the Section 1/5 aggregate
// claims. Each experiment builds its programs through the restructurer
// (never from hand-written "compiler" versions), executes them on the
// VM, and measures them with the cache simulator and the KSR2 time
// model.
package experiments

import (
	"context"
	"fmt"

	"falseshare/internal/core"
	"falseshare/internal/experiments/journal"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/obs"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/trace"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

// Version identifies a program version as in the paper's Table 1.
type Version string

const (
	// VersionN is the unoptimized program.
	VersionN Version = "N"
	// VersionC is the compiler-restructured program.
	VersionC Version = "C"
	// VersionP is the hand-optimized program.
	VersionP Version = "P"
)

// Config parameterizes the experiment harness.
type Config struct {
	// Scale multiplies workload sizes (1 = paper-shaped experiment
	// runs; tests use smaller).
	Scale int
	// Workers bounds the experiment pool's concurrency (fsexp -j).
	// Zero or negative means runtime.GOMAXPROCS; 1 runs every job
	// serially in submission order on the calling goroutine. Results
	// are identical at any worker count — the jobs share nothing but
	// read-only workload sources.
	Workers int
	// Fig3Procs is the Figure 3 processor count (12 in the paper;
	// Topopt ran on 9).
	Fig3Procs       int
	Fig3ProcsTopopt int
	// Fig3Blocks are the block sizes shown in Figure 3.
	Fig3Blocks []int64
	// Table2Blocks are the block sizes Table 2 averages over.
	Table2Blocks []int64
	// SweepCounts are the processor counts for Figure 4 / Table 3.
	SweepCounts []int

	// Ctx, when non-nil, cancels the whole run: jobs in flight observe
	// the cancellation through their context, unstarted jobs are
	// skipped. The CLIs route Ctrl-C through here.
	Ctx context.Context
	// Policy governs the experiment pool's failure handling: fail-fast
	// vs keep-going, per-job deadlines, retries. The zero value runs
	// every job with no deadline (the historical behavior).
	Policy pool.Policy
	// Journal, when non-nil, checkpoints every completed cell and
	// resumes from checkpoints already present (fsexp -resume).
	Journal *journal.Journal
	// StepBudget caps per-process VM instructions per execution
	// (0: the VM default of 1e9), so runaway programs fail instead of
	// hanging a job forever.
	StepBudget int64
	// Verify enables safe mode for every compiler-restructured cell:
	// each C program is translation-validated against its original,
	// and objects that fail validation (or whose transformation fails
	// to apply) are degraded to the identity layout and recorded — see
	// DegradedEvents. Cells replayed from the journal skip compilation
	// and therefore record no events.
	Verify bool
	// Diag enables miss attribution for the Figure 3 and Table 2
	// cells: each measured simulation carries an attr.Collector, and
	// the per-object reports are recorded against the cell key — see
	// DiagCells and RenderDiag. Like Verify, cells replayed from the
	// journal skip measurement and record nothing.
	Diag bool
	// Runner, when non-nil, executes cells in other processes: every
	// driver fan-out is dispatched through it instead of the local
	// pool (journal hits still resolve locally first). The distributed
	// fabric's coordinator implements it; see CellRunner.
	Runner CellRunner

	// enum, when non-nil, switches runJobs into enumeration mode:
	// jobs are captured into the grid instead of executed. Set only
	// by Collect.
	enum *Enumeration
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Scale:           1,
		Fig3Procs:       12,
		Fig3ProcsTopopt: 9,
		Fig3Blocks:      []int64{16, 128},
		Table2Blocks:    []int64{8, 16, 32, 64, 128, 256},
		SweepCounts:     []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56},
	}
}

// Program builds one version of a benchmark, compiled and laid out for
// the given processor count and block size. The C version is produced
// by the restructurer; heur tweaks its heuristics (ablations).
func Program(b *workload.Benchmark, ver Version, nprocs int, scale int, block int64, heur transform.Config) (*core.Program, error) {
	return ProgramCtx(context.Background(), b, ver, nprocs, scale, block, heur)
}

// ProgramCtx is Program with cooperative cancellation through the
// compiler pipeline.
func ProgramCtx(ctx context.Context, b *workload.Benchmark, ver Version, nprocs int, scale int, block int64, heur transform.Config) (*core.Program, error) {
	opt := core.Options{Nprocs: nprocs, BlockSize: block, Heuristics: heur}
	switch ver {
	case VersionN:
		if !b.HasN {
			return nil, fmt.Errorf("%s has no unoptimized version", b.Name)
		}
		return core.CompileCtx(ctx, b.Source(scale), opt)
	case VersionP:
		src := b.ProgrammerSource(scale)
		if src == "" {
			return nil, fmt.Errorf("%s has no programmer version", b.Name)
		}
		return core.CompileCtx(ctx, src, opt)
	case VersionC:
		res, err := core.RestructureCtx(ctx, b.Source(scale), opt)
		if err != nil {
			return nil, err
		}
		return res.Transformed, nil
	}
	return nil, fmt.Errorf("unknown version %q", ver)
}

// runJobs routes every experiment's fan-out through the configured
// context, failure policy and journal: jobs already checkpointed in
// cfg.Journal return their stored results without running, fresh
// completions are checkpointed as they finish.
//
// Two alternate modes branch here, both invisible to the drivers:
// with cfg.enum set (Collect) the jobs are captured, not run, and the
// driver sees zero-valued results behind an errCollected sentinel;
// with cfg.Runner set the cells execute in other processes and the
// results, spans and journal checkpoints are reassembled locally.
func runJobs[T any](cfg Config, name string, jobs []pool.Job[T]) ([]T, error) {
	if cfg.enum != nil {
		collectJobs(cfg.enum, jobs)
		return make([]T, len(jobs)), errCollected
	}
	if cfg.Runner != nil {
		return runRemote(cfg, name, jobs)
	}
	return pool.RunPolicy(cfg.Ctx, name, cfg.Workers, cfg.Policy, journal.WrapAll(cfg.Journal, jobs))
}

// Baseline returns the version speedups are measured against: N when
// it exists, else P (the original program).
func Baseline(b *workload.Benchmark) Version {
	if b.HasN {
		return VersionN
	}
	return VersionP
}

// Versions lists the versions available for a benchmark, in N, C, P
// order.
func Versions(b *workload.Benchmark) []Version {
	var out []Version
	if b.HasN {
		out = append(out, VersionN)
	}
	out = append(out, VersionC)
	if b.HasP {
		out = append(out, VersionP)
	}
	return out
}

// MeasureBlocks executes a program once and measures it with one cache
// simulator per block size (the trace is identical across block
// sizes, so a single execution feeds them all). With more than one
// block size the simulators run sharded across goroutines; see
// MeasureBlocksN.
func MeasureBlocks(prog *core.Program, blocks []int64) ([]*cache.Stats, error) {
	return MeasureBlocksN(prog, blocks, 0)
}

// MeasureBlocksN is MeasureBlocks with an explicit worker bound
// (<= 0: runtime.GOMAXPROCS); see MeasureBlocksCtx.
func MeasureBlocksN(prog *core.Program, blocks []int64, workers int) ([]*cache.Stats, error) {
	return MeasureBlocksCtx(context.Background(), prog, blocks, workers, 0)
}

// MeasureBlocksCtx is the full-control measurement entry point: ctx
// cancels the VM mid-execution, budget caps per-process instructions
// (0: the VM default), workers bounds the simulator shards (<= 0:
// runtime.GOMAXPROCS). With workers == 1 — or a single block size, or
// a single available CPU — the VM feeds every simulator inline from
// its own goroutine, the pre-sharding serial path. Otherwise the VM
// publishes references in fixed-size batches to one goroutine per
// block-size simulator: every simulator still consumes the identical
// full trace in order, so the stats match the serial path exactly.
func MeasureBlocksCtx(ctx context.Context, prog *core.Program, blocks []int64, workers int, budget int64) ([]*cache.Stats, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("experiments: MeasureBlocks: no block sizes given")
	}
	sp := obs.Begin("measure")
	defer sp.End()
	sp.Set("blocks", int64(len(blocks)))
	nprocs := int(prog.Layout.Nprocs)
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return nil, err
	}
	sims := make([]*cache.Sim, len(blocks))
	for i, blk := range blocks {
		sims[i], err = cache.New(cache.DefaultConfig(nprocs, blk))
		if err != nil {
			return nil, fmt.Errorf("experiments: MeasureBlocks: block %d: %w", blk, err)
		}
	}
	m := vm.New(bc)
	m.SetContext(ctx)
	if budget > 0 {
		m.MaxInstrs = budget
	}
	installMetrics(sims, blocks)

	if pool.Workers(workers) == 1 || len(blocks) == 1 {
		if err := m.Run(func(r vm.Ref) {
			for _, s := range sims {
				s.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
			}
		}); err != nil {
			return nil, err
		}
	} else {
		sinks := make([]trace.Sink, len(sims))
		for i, s := range sims {
			s := s
			sinks[i] = func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) }
		}
		pt := trace.NewParTee(0, sinks...)
		// The deferred Close (idempotent) guarantees the simulator
		// goroutines are shut down even when m.Run panics — without it
		// a panic between NewParTee and Close would leak one goroutine
		// per block size, parked on its channel forever.
		defer pt.Close()
		// One worker span per simulator, attached under measure in
		// block order before the stream starts.
		for i, blk := range blocks {
			pt.SetSpan(i, sp.Child(fmt.Sprintf("sim:b%d", blk)))
		}
		runErr := m.Run(pt.Sink())
		if err := pt.Close(); err != nil {
			return nil, err
		}
		if runErr != nil {
			return nil, runErr
		}
	}

	out := make([]*cache.Stats, len(sims))
	for i, s := range sims {
		out[i] = s.Stats()
	}
	return out, nil
}

// metricsEvery is the streaming-metrics period in block references:
// long simulations emit one obs metrics snapshot per interval so
// multi-minute sweeps show live progress instead of going dark.
const metricsEvery = 5_000_000

// installMetrics wires each simulator's sampler to the current
// recorder's metrics sink. The recorder is captured here because the
// sharded path invokes samplers from worker goroutines with no
// recorder binding of their own. No recorder: no sampler, and the
// simulator hot path keeps its zero-cost disabled branch.
func installMetrics(sims []*cache.Sim, blocks []int64) {
	rec := obs.Current()
	if rec == nil {
		return
	}
	for i, s := range sims {
		src := fmt.Sprintf("sim:b%d", blocks[i])
		s.SetSampler(metricsEvery, func(st *cache.Stats) {
			rec.EmitMetrics(src, map[string]int64{
				"refs":   st.Refs,
				"misses": st.Misses(),
				"false":  st.FalseShare,
				"true":   st.TrueShare,
			})
		})
	}
}
