package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"

	"falseshare/internal/experiments"
	"falseshare/internal/experiments/journal"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// WorkerJournalFile names a worker's private journal inside the
// shared run directory.
func WorkerJournalFile(id int) string {
	return fmt.Sprintf("journal-worker-%d.jsonl", id)
}

// RunWorker speaks the worker side of the protocol over an arbitrary
// byte stream (stdin/stdout in spawn mode, a TCP connection in
// -connect mode). It blocks until the coordinator shuts the link down
// — a shutdown frame, or the stream closing (a spawned worker whose
// coordinator died sees stdin EOF and exits; no orphans).
//
// The worker enumerates the full cell grid from the hello frame's
// spec before accepting assignments, runs one cell at a time, and
// journals every successful cell into its own journal file before
// reporting it — so even if the report (or the worker) dies, the
// finished work survives and merges into the main journal.
func RunWorker(in io.Reader, out io.Writer) error {
	conn := NewConn(in, out)
	hello, err := conn.Read()
	if err != nil {
		return fmt.Errorf("fabric: worker: reading hello: %w", err)
	}
	if hello.Type != TypeHello || hello.Spec == nil || hello.Set == nil {
		return fmt.Errorf("fabric: worker: expected hello, got %q", hello.Type)
	}
	if hello.Faults != "" {
		set, err := faultinject.Parse(hello.Faults)
		if err != nil {
			return fmt.Errorf("fabric: worker: %w", err)
		}
		faultinject.Enable(set)
	}
	enum, err := experiments.Collect(hello.Spec.Config(), *hello.Set)
	if err != nil {
		return fmt.Errorf("fabric: worker: %w", err)
	}
	var jnl *journal.Journal
	if hello.RunDir != "" {
		jnl, err = journal.OpenFile(hello.RunDir, WorkerJournalFile(hello.Worker))
		if err != nil {
			// A worker without a journal still works; it just cannot
			// preserve completions across its own death.
			obs.Logf("fabric: worker %d: no journal: %v", hello.Worker, err)
			jnl = nil
		}
	}
	if err := conn.Write(&Frame{Type: TypeReady, Cells: enum.Len()}); err != nil {
		return err
	}

	// The read loop stays responsive while a cell runs: assignments
	// queue to a single runner goroutine (cells run serially — the
	// coordinator keeps one cell outstanding per worker, the buffer
	// only decouples the loops), pings answer immediately so a busy
	// worker still proves liveness.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	assigns := make(chan *Frame, 4)
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		for a := range assigns {
			runCell(ctx, conn, enum, jnl, a)
		}
	}()

	defer jnl.Close()
	for {
		f, err := conn.Read()
		if err != nil {
			cancel()
			close(assigns)
			<-runnerDone
			if peerGone(err) {
				return nil
			}
			return err
		}
		switch f.Type {
		case TypePing:
			if err := conn.Write(&Frame{Type: TypePong}); err != nil {
				cancel()
				close(assigns)
				<-runnerDone
				if peerGone(err) {
					return nil
				}
				return err
			}
		case TypeAssign:
			assigns <- f
		case TypeShutdown:
			close(assigns)
			<-runnerDone
			cancel()
			return nil
		default:
			// Unknown frames are ignored, not fatal: an older worker
			// against a newer coordinator degrades instead of dying.
			obs.Logf("fabric: worker: ignoring frame %q", f.Type)
		}
	}
}

// peerGone reports whether a link error means the coordinator's end
// is simply gone. A spawned worker sees stdin EOF; a TCP worker whose
// coordinator closed with frames (a pong, a late result) still in
// flight sees a connection reset instead, because unread data at
// close time turns the FIN into an RST. Either way the worker's job
// is over and it retires cleanly — no orphans, no spurious errors.
func peerGone(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Dial policy for RunWorkerTCP: workers are routinely started before
// the coordinator's -listen socket is up (init systems, parallel ssh
// fan-out), so a refused dial retries with exponential backoff and
// jitter instead of dying. Package variables so tests can tighten
// them.
var (
	tcpDialTimeout    = 10 * time.Second
	tcpDialAttempts   = 8
	tcpDialBackoff    = 250 * time.Millisecond
	tcpDialBackoffMax = 3 * time.Second
	tcpDialNow        = time.Now // only the jitter reads the clock
)

// dialCoordinator dials addr with bounded retry: tcpDialAttempts
// attempts, exponential backoff from tcpDialBackoff capped at
// tcpDialBackoffMax, each wait jittered by up to half its length so
// a fleet of workers pointed at one coordinator doesn't reconnect in
// lockstep.
func dialCoordinator(addr string) (net.Conn, error) {
	backoff := tcpDialBackoff
	var lastErr error
	for attempt := 0; attempt < tcpDialAttempts; attempt++ {
		if attempt > 0 {
			jitter := time.Duration(tcpDialNow().UnixNano()) % (backoff / 2)
			obs.Logf("fabric: worker: dial %s failed (%v), retry %d/%d in %v",
				addr, lastErr, attempt, tcpDialAttempts-1, backoff+jitter)
			time.Sleep(backoff + jitter)
			if backoff *= 2; backoff > tcpDialBackoffMax {
				backoff = tcpDialBackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fabric: worker: dial %s: %d attempts: %w",
		addr, tcpDialAttempts, lastErr)
}

// RunWorkerTCP dials the coordinator and serves the worker protocol
// over the connection (fsexp -worker -connect addr). A coordinator
// that is not listening yet is retried with backoff, so start order
// does not matter.
func RunWorkerTCP(addr string) error {
	conn, err := dialCoordinator(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return RunWorker(conn, conn)
}

// runCell executes one assignment and reports its result. The chaos
// points live here: worker.cell fires before the cell runs (exit and
// hang simulate crashes and wedges mid-cell), worker.send fires
// before the report (corrupt mangles the result frame so the
// coordinator must treat this worker as failed).
func runCell(ctx context.Context, conn *Conn, enum *experiments.Enumeration, jnl *journal.Journal, a *Frame) {
	res := &Frame{Type: TypeResult, Key: a.Key, Fingerprint: a.Fingerprint}
	if ferr := faultinject.Fire(ctx, "worker.cell", a.Key); ferr != nil {
		res.Err = ferr.Error()
		res.Retryable = isTransient(ferr)
		conn.Write(res)
		return
	}
	mark := experiments.MarkEvents()
	data, spans, err, ok := enum.Run(ctx, a.Key)
	switch {
	case !ok:
		// Grid mismatch: the coordinator asked for a cell this worker
		// never enumerated. Reported, not fatal — the coordinator
		// decides whether to fail the cell or the worker.
		res.Err = fmt.Sprintf("worker has no cell %q (grid mismatch?)", a.Key)
	case err != nil:
		res.Err = err.Error()
		res.Retryable = isTransient(err)
	default:
		res.Data = data
		res.Spans = spans
		if ev := experiments.EventsSince(mark); !ev.Empty() {
			res.Events = &ev
		}
		if jnl != nil {
			if aerr := jnl.Append(a.Key, data, spans); aerr != nil {
				obs.Logf("fabric: %v", aerr)
			}
		}
	}
	if ferr := faultinject.Fire(ctx, "worker.send", a.Key); ferr != nil && faultinject.IsCorrupt(ferr) {
		conn.writeMangled(res)
		return
	}
	if werr := conn.Write(res); werr != nil {
		obs.Logf("fabric: worker: report %s: %v", a.Key, werr)
	}
}

// isTransient mirrors the pool's default transience classifier: any
// error in the chain declaring itself Transient().
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
