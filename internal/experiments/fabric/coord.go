package fabric

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"falseshare/internal/experiments"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is how many local worker processes to spawn. Zero with a
	// Listen address means external workers only.
	Workers int
	// WorkerCmd is the argv used to spawn a worker (default: the
	// current executable with a single "-worker" argument). Tests
	// override it to re-exec the test binary.
	WorkerCmd []string
	// Listen, when non-empty, accepts external workers over TCP
	// (started with fsexp -worker -connect <addr>).
	Listen string
	// Spec and Set describe the grid; every worker re-enumerates it
	// from these, so they must cover every section the run dispatches.
	Spec experiments.ConfigSpec
	Set  experiments.SectionSet
	// Faults is the fault spec propagated to every worker (satellite:
	// a -faults spec must not silently apply only to the parent).
	Faults string
	// RunDir, when non-empty, is the shared run directory: workers
	// journal completions into journal-worker-<id>.jsonl there, and
	// Close merges them into the main journal.
	RunDir string
	// Cache, when non-nil, dedups cells through the content-addressed
	// store: hits skip dispatch entirely, successes are stored.
	Cache *Cache
	// Policy supplies the pool's failure semantics: Retries/Backoff
	// bound error retries (transient errors only, exponential
	// backoff), FailFast cancels the grid on the first hard failure,
	// JobTimeout is the per-cell deadline (a cell exceeding it marks
	// its worker hung: killed and the cell reassigned).
	Policy pool.Policy
	// Heartbeat is the ping period (default 500ms); DeadAfter is how
	// much silence marks a worker dead (default 10s).
	Heartbeat time.Duration
	DeadAfter time.Duration
	// MaxDeaths bounds reassignment per cell: a cell that kills this
	// many workers fails instead of killing the whole fleet
	// (default 3).
	MaxDeaths int
	// MaxRespawns bounds replacement workers across the run
	// (default 2×Workers+2), so a crash loop terminates.
	MaxRespawns int
	// Stderr receives spawned workers' stderr (default os.Stderr).
	Stderr io.Writer
	// Recorder receives the fabric's own telemetry spans — worker
	// lifetimes, reassignments, retries, cache hit rates. It is
	// deliberately separate from the experiment recorder: fabric
	// scheduling is nondeterministic, and folding it into the figure
	// manifests would break their byte-identity contract.
	Recorder *obs.Recorder
}

func (o Options) heartbeat() time.Duration {
	if o.Heartbeat <= 0 {
		return 500 * time.Millisecond
	}
	return o.Heartbeat
}

func (o Options) deadAfter() time.Duration {
	if o.DeadAfter <= 0 {
		return 10 * time.Second
	}
	return o.DeadAfter
}

func (o Options) maxDeaths() int {
	if o.MaxDeaths <= 0 {
		return 3
	}
	return o.MaxDeaths
}

func (o Options) maxRespawns() int {
	if o.MaxRespawns <= 0 {
		return 2*o.Workers + 2
	}
	return o.MaxRespawns
}

func (o Options) stderr() io.Writer {
	if o.Stderr == nil {
		return os.Stderr
	}
	return o.Stderr
}

// Stats is a snapshot of the fabric's counters.
type Stats struct {
	// Spawned counts worker processes started (including respawns);
	// Attached counts TCP workers accepted; Deaths counts workers that
	// died or were killed (hung, corrupt, chaos).
	Spawned  int
	Attached int
	Deaths   int
	// Cells counts dispatched cell executions (not cache/journal
	// hits); Reassigned counts cells re-queued after losing their
	// worker; Retries counts error-retries.
	Cells      int
	Reassigned int
	Retries    int
	// CacheHits/CacheMisses count content-cache lookups for
	// fingerprinted cells.
	CacheHits   int
	CacheMisses int
	// CacheCorrupt counts torn or corrupt cache entries dropped (at
	// the open-time recovery scan or on read) and CacheEvicted counts
	// LRU evictions under the byte budget — previously both were
	// silently folded into misses.
	CacheCorrupt int
	CacheEvicted int
}

// Summary renders the one-line run summary fsexp prints.
func (s Stats) Summary() string {
	return fmt.Sprintf(
		"fabric: workers spawned=%d attached=%d deaths=%d | cells=%d reassigned=%d retries=%d | cache hits=%d misses=%d corrupt=%d evicted=%d",
		s.Spawned, s.Attached, s.Deaths, s.Cells, s.Reassigned, s.Retries,
		s.CacheHits, s.CacheMisses, s.CacheCorrupt, s.CacheEvicted)
}

// Coordinator shards cells across worker processes. It implements
// experiments.CellRunner, so plugging it into Config.Runner routes
// every driver fan-out through the fabric.
type Coordinator struct {
	opt  Options
	ctx  context.Context
	stop context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[int]*workerHandle
	nextID  int
	live    int
	spawned int // spawn attempts, bounded by Workers+MaxRespawns
	run     *cellRun
	stats   Stats
	closed  bool

	listener net.Listener
	wg       sync.WaitGroup

	span *obs.Span // fabric root span on opt.Recorder
}

// workerHandle is the coordinator's view of one worker.
type workerHandle struct {
	id      int
	conn    *Conn
	cmd     *exec.Cmd // nil for TCP workers
	ready   chan struct{}
	results chan *Frame
	done    chan struct{} // closed when the reader exits: worker gone
	span    *obs.Span

	mu        sync.Mutex
	err       error // why the reader exited; nil until then
	lastHeard time.Time
	killed    bool
}

func (w *workerHandle) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *workerHandle) lastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *workerHandle) heard() {
	w.mu.Lock()
	w.lastHeard = time.Now()
	w.mu.Unlock()
}

func (w *workerHandle) silence() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastHeard)
}

// kill severs the worker: the connection closes (unblocking the
// reader) and a spawned process is SIGKILLed. Idempotent.
func (w *workerHandle) kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	w.mu.Unlock()
	w.conn.Close()
	if w.cmd != nil && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
}

// cellRun is one RunCells invocation in flight.
type cellRun struct {
	section string
	reqs    []experiments.CellRequest
	state   []cellState
	queue   []int // indices awaiting dispatch
	pending int   // cells without a final outcome (incl. backoff + outstanding)
	closed  bool  // results no longer accepted (cancelled / returned)
	ctx     context.Context
	results []experiments.CellResult
}

type cellState struct {
	attempts int // error retries so far
	deaths   int // workers lost while owning this cell
	final    bool
}

// NewCoordinator builds a Coordinator; Start launches it.
func NewCoordinator(opt Options) *Coordinator {
	c := &Coordinator{opt: opt, workers: map[int]*workerHandle{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Start spawns the local workers and, if configured, starts the TCP
// listener. ctx bounds the coordinator's lifetime; cancelling it
// aborts dispatch (Close still reaps and merges).
func (c *Coordinator) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx, c.stop = context.WithCancel(ctx)
	if c.opt.Recorder != nil {
		prev := obs.BindGoroutine(c.opt.Recorder)
		c.span = obs.Begin("fabric")
		obs.BindGoroutine(prev)
		c.span.Set("workers", int64(c.opt.Workers))
	}
	if c.opt.Listen != "" {
		ln, err := net.Listen("tcp", c.opt.Listen)
		if err != nil {
			return fmt.Errorf("fabric: listen: %w", err)
		}
		c.listener = ln
		c.wg.Add(1)
		go c.acceptLoop(ln)
	}
	for i := 0; i < c.opt.Workers; i++ {
		if err := c.spawnWorker(); err != nil {
			c.Close()
			return err
		}
	}
	if c.opt.Workers == 0 && c.listener == nil {
		return fmt.Errorf("fabric: no workers configured (need -workers or -listen)")
	}
	return nil
}

// Addr returns the listener address ("" when not listening).
func (c *Coordinator) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// Stats returns a snapshot of the fabric counters, folding in the
// content cache's own accounting (corrupt entries dropped, LRU
// evictions) so the manifest and summary line expose them.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	cc := c.opt.Cache.Counters()
	st.CacheCorrupt = int(cc.CorruptDropped)
	st.CacheEvicted = int(cc.Evictions)
	return st
}

// Pids lists the live spawned worker process ids (TCP workers have
// none). Used by the orphan-reaping tests and by operators checking
// what a coordinator is running.
func (c *Coordinator) Pids() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var pids []int
	for _, w := range c.workers {
		if w.cmd != nil && w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}

// workerArgv resolves the spawn command.
func (c *Coordinator) workerArgv() ([]string, error) {
	if len(c.opt.WorkerCmd) > 0 {
		return c.opt.WorkerCmd, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fabric: resolve worker executable: %w", err)
	}
	return []string{exe, "-worker"}, nil
}

// spawnWorker starts one local worker process and its goroutines.
func (c *Coordinator) spawnWorker() error {
	argv, err := c.workerArgv()
	if err != nil {
		return err
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = c.opt.stderr()
	setProcAttr(cmd)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("fabric: spawn worker: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("fabric: spawn worker: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fabric: spawn worker: %w", err)
	}
	conn := NewConn(stdout, stdin)
	c.mu.Lock()
	c.spawned++
	c.stats.Spawned++
	c.mu.Unlock()
	c.attach(conn, cmd)
	return nil
}

// acceptLoop admits external TCP workers.
func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		closed := c.closed
		if !closed {
			c.stats.Attached++
		}
		c.mu.Unlock()
		if closed {
			conn.Close()
			continue
		}
		c.attach(NewConn(conn, conn), nil)
	}
}

// attach registers a connected worker and launches its goroutines:
// reader (routes frames, tracks liveness), pinger (heartbeats +
// dead-silence detection), driver (pulls cells and runs the
// assignment protocol).
func (c *Coordinator) attach(conn *Conn, cmd *exec.Cmd) {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	w := &workerHandle{
		id:      id,
		conn:    conn,
		cmd:     cmd,
		ready:   make(chan struct{}),
		results: make(chan *Frame, 1),
		done:    make(chan struct{}),
	}
	w.lastHeard = time.Now()
	c.workers[id] = w
	c.live++
	if c.span != nil {
		w.span = c.span.Child(fmt.Sprintf("worker:%d", id))
		if cmd == nil {
			w.span.Set("tcp", 1)
		}
	}
	c.mu.Unlock()

	hello := &Frame{
		Type:   TypeHello,
		Spec:   &c.opt.Spec,
		Set:    &c.opt.Set,
		Faults: c.opt.Faults,
		RunDir: c.opt.RunDir,
		Worker: id,
	}
	if err := conn.Write(hello); err != nil {
		obs.Logf("fabric: worker %d: hello: %v", id, err)
		w.kill()
	}
	c.wg.Add(3)
	go c.readLoop(w)
	go c.pingLoop(w)
	go c.driveLoop(w)
	if cmd != nil {
		// Reap the process whenever it exits, so no zombies accumulate
		// regardless of which path killed it.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			cmd.Wait()
		}()
	}
}

// readLoop routes a worker's frames until the connection dies.
func (c *Coordinator) readLoop(w *workerHandle) {
	defer c.wg.Done()
	defer close(w.done)
	readyClosed := false
	for {
		f, err := w.conn.Read()
		if err != nil {
			w.setErr(err)
			return
		}
		w.heard()
		switch f.Type {
		case TypeReady:
			if !readyClosed {
				readyClosed = true
				close(w.ready)
			}
		case TypeResult:
			select {
			case w.results <- f:
			default:
				// No one waiting for this result (stale run, duplicate).
				obs.Logf("fabric: worker %d: dropping unexpected result %s", w.id, f.Key)
			}
		case TypePong:
			// liveness only; heard() already recorded it
		default:
			obs.Logf("fabric: worker %d: ignoring frame %q", w.id, f.Type)
		}
	}
}

// pingLoop heartbeats the worker and kills it after DeadAfter of
// silence — the wedged-process detector (a worker busy in a cell
// still answers pings from its read loop; only a truly stuck or
// vanished process goes silent).
func (c *Coordinator) pingLoop(w *workerHandle) {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-c.ctx.Done():
			return
		case <-t.C:
			if w.silence() > c.opt.deadAfter() {
				obs.Logf("fabric: worker %d: silent for %s; killing", w.id, c.opt.deadAfter())
				w.kill()
				return
			}
			if err := w.conn.Write(&Frame{Type: TypePing}); err != nil {
				w.kill()
				return
			}
		}
	}
}

// driveLoop owns one worker's assignment stream: wait for readiness,
// then pull cells and run the assignment protocol until the worker or
// the coordinator dies. On worker death it requeues the owned cell,
// accounts the loss, and respawns a replacement if the budget allows.
func (c *Coordinator) driveLoop(w *workerHandle) {
	defer c.wg.Done()
	alive := c.awaitReady(w)
	for alive {
		idx, run, ok := c.nextCell()
		if !ok {
			break
		}
		alive = c.assign(w, run, idx)
	}
	c.workerGone(w)
}

// awaitReady blocks until the worker acknowledged hello (or died).
func (c *Coordinator) awaitReady(w *workerHandle) bool {
	select {
	case <-w.ready:
		return true
	case <-w.done:
		return false
	case <-c.ctx.Done():
		return false
	}
}

// nextCell blocks until a dispatchable cell exists, the coordinator
// closes, or the context ends. ok=false means the driver should exit.
func (c *Coordinator) nextCell() (int, *cellRun, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || c.ctx.Err() != nil {
			return 0, nil, false
		}
		if r := c.run; r != nil && !r.closed && len(r.queue) > 0 {
			idx := r.queue[0]
			r.queue = r.queue[1:]
			return idx, r, true
		}
		c.cond.Wait()
	}
}

// assign runs the protocol for one cell on one worker. It returns
// false when the worker is gone (the driver exits and the cell has
// been requeued or failed).
func (c *Coordinator) assign(w *workerHandle, run *cellRun, idx int) bool {
	req := run.reqs[idx]
	c.mu.Lock()
	c.stats.Cells++
	c.mu.Unlock()

	if err := w.conn.Write(&Frame{Type: TypeAssign, Key: req.Key, Fingerprint: req.Fingerprint}); err != nil {
		c.requeueDeath(run, idx, w, fmt.Errorf("fabric: worker %d: assign: %w", w.id, err))
		return false
	}
	// Chaos: coord.kill SIGKILLs the worker that just received this
	// assignment — a deterministic mid-cell worker death. Count/match
	// live on the coordinator's rule counters, so "kill exactly one
	// worker, once" is expressible (worker-side rules re-fire in
	// replacement processes).
	if ferr := faultinject.Fire(c.ctx, "coord.kill", req.Key); ferr != nil {
		obs.Logf("fabric: chaos: killing worker %d mid-cell (%s)", w.id, req.Key)
		w.kill()
	}

	var deadline <-chan time.Time
	if c.opt.Policy.JobTimeout > 0 {
		t := time.NewTimer(c.opt.Policy.JobTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case f := <-w.results:
		if f.Key != req.Key {
			c.requeueDeath(run, idx, w, fmt.Errorf("fabric: worker %d: result for %q while %q assigned", w.id, f.Key, req.Key))
			w.kill()
			return false
		}
		c.complete(run, idx, f)
		return true
	case <-w.done:
		err := w.lastErr()
		if err == nil {
			err = fmt.Errorf("fabric: worker %d: connection closed", w.id)
		}
		c.requeueDeath(run, idx, w, err)
		return false
	case <-deadline:
		c.requeueDeath(run, idx, w, fmt.Errorf("fabric: worker %d: cell %s exceeded %s deadline", w.id, req.Key, c.opt.Policy.JobTimeout))
		w.kill()
		return false
	case <-c.ctx.Done():
		// The run is being abandoned; RunCells marks the leftovers.
		return false
	}
}

// complete records one cell's reported outcome: success stores into
// the run (and the cache); a transient error within the retry budget
// requeues with exponential backoff; anything else is final.
func (c *Coordinator) complete(run *cellRun, idx int, f *Frame) {
	err := frameError(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	if run.closed || run.state[idx].final {
		return
	}
	st := &run.state[idx]
	if err != nil {
		if isTransient(err) && st.attempts < c.opt.Policy.Retries {
			st.attempts++
			c.stats.Retries++
			if c.span != nil {
				c.span.Count("retries", 1)
			}
			run.results[idx].Retries = st.attempts
			backoff := c.backoff(st.attempts - 1)
			obs.Logf("fabric: retrying %s after transient failure (attempt %d): %v", run.reqs[idx].Key, st.attempts, err)
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.requeueAfter(run, idx, backoff)
			}()
			return
		}
		c.finalize(run, idx, experiments.CellResult{Key: run.reqs[idx].Key, Err: err, Retries: st.attempts})
		return
	}
	res := experiments.CellResult{
		Key:     run.reqs[idx].Key,
		Data:    f.Data,
		Spans:   f.Spans,
		Retries: st.attempts,
	}
	if f.Events != nil {
		res.Events = *f.Events
	}
	c.finalize(run, idx, res)
	if c.opt.Cache != nil && run.reqs[idx].Fingerprint != "" {
		if cerr := c.opt.Cache.Put(run.reqs[idx].Fingerprint, res.Key, f.Data, f.Spans); cerr != nil {
			obs.Logf("%v", cerr)
		}
	}
}

// finalize records a cell's final outcome. Callers hold c.mu.
func (c *Coordinator) finalize(run *cellRun, idx int, res experiments.CellResult) {
	if run.state[idx].final {
		return
	}
	run.state[idx].final = true
	run.results[idx] = res
	run.pending--
	if res.Err != nil && c.opt.Policy.FailFast {
		c.abortLocked(run, fmt.Errorf("%w: fail-fast after %s", pool.ErrSkipped, res.Key))
	}
	c.cond.Broadcast()
}

// abortLocked marks every queued (not yet assigned) cell of the run
// as skipped. Outstanding assignments finish naturally and report
// their real outcome, mirroring the local pool's fail-fast drain.
func (c *Coordinator) abortLocked(run *cellRun, err error) {
	for _, idx := range run.queue {
		if run.state[idx].final {
			continue
		}
		run.state[idx].final = true
		run.results[idx] = experiments.CellResult{Key: run.reqs[idx].Key, Err: err}
		run.pending--
	}
	run.queue = nil
	c.cond.Broadcast()
}

// backoff mirrors pool.Policy's exponential schedule.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opt.Policy.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return d << attempt
}

// requeueAfter re-dispatches a cell after its retry backoff.
func (c *Coordinator) requeueAfter(run *cellRun, idx int, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.ctx.Done():
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if run.closed || run.state[idx].final {
		return
	}
	run.queue = append(run.queue, idx)
	c.cond.Broadcast()
}

// requeueDeath handles a cell orphaned by its worker's death: bounded
// reassignment, then failure — one poison cell must not consume the
// whole fleet.
func (c *Coordinator) requeueDeath(run *cellRun, idx int, w *workerHandle, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if run.closed || run.state[idx].final {
		return
	}
	st := &run.state[idx]
	st.deaths++
	c.stats.Reassigned++
	if c.span != nil {
		c.span.Count("reassigned", 1)
	}
	if st.deaths > c.opt.maxDeaths() {
		c.finalize(run, idx, experiments.CellResult{
			Key: run.reqs[idx].Key,
			Err: fmt.Errorf("fabric: cell %s lost %d workers (last: %w)", run.reqs[idx].Key, st.deaths, cause),
		})
		return
	}
	obs.Logf("fabric: reassigning %s after worker %d died: %v", run.reqs[idx].Key, w.id, cause)
	// Front of the queue: a cell that already lost a worker should not
	// wait behind the whole backlog.
	run.queue = append([]int{idx}, run.queue...)
	c.cond.Broadcast()
}

// workerGone retires a worker handle: accounting, telemetry, and a
// replacement spawn when the budget allows. When the last worker dies
// with no replacement possible, the current run's undispatched cells
// fail — never hang.
func (c *Coordinator) workerGone(w *workerHandle) {
	w.kill()
	c.mu.Lock()
	if _, ok := c.workers[w.id]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.workers, w.id)
	c.live--
	if !c.closed {
		// A worker retiring during shutdown is not a death — only
		// losing one mid-run counts.
		c.stats.Deaths++
	}
	if w.span != nil {
		if werr := w.lastErr(); werr != nil && werr != io.EOF {
			w.span.Fail(werr)
		}
		w.span.End()
	}
	respawn := !c.closed && c.ctx.Err() == nil && w.cmd != nil &&
		c.spawned < c.opt.Workers+c.opt.maxRespawns()
	lastLight := c.live == 0 && !respawn && c.listener == nil
	run := c.run
	c.mu.Unlock()

	if respawn {
		if err := c.spawnWorker(); err != nil {
			obs.Logf("fabric: respawn: %v", err)
			c.mu.Lock()
			lastLight = c.live == 0 && c.listener == nil
			c.mu.Unlock()
		}
	}
	if lastLight && run != nil {
		c.mu.Lock()
		if c.run == run && !run.closed {
			c.abortLocked(run, fmt.Errorf("fabric: all workers dead"))
		}
		c.mu.Unlock()
	}
}

// RunCells implements experiments.CellRunner: resolve cache hits,
// queue the rest, and wait until every cell has a final outcome (or
// the context dies, which marks the leftovers skipped).
func (c *Coordinator) RunCells(ctx context.Context, section string, reqs []experiments.CellRequest) ([]experiments.CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run := &cellRun{
		section: section,
		reqs:    reqs,
		state:   make([]cellState, len(reqs)),
		results: make([]experiments.CellResult, len(reqs)),
		ctx:     ctx,
	}
	// Content-cache pass: hits never touch a worker.
	for i, req := range reqs {
		if c.opt.Cache != nil && req.Fingerprint != "" {
			if data, spans, ok := c.opt.Cache.Get(req.Fingerprint); ok {
				run.state[i].final = true
				run.results[i] = experiments.CellResult{Key: req.Key, Data: data, Spans: spans}
				c.mu.Lock()
				c.stats.CacheHits++
				c.mu.Unlock()
				if c.span != nil {
					c.span.Count("cache_hits", 1)
				}
				continue
			}
			c.mu.Lock()
			c.stats.CacheMisses++
			c.mu.Unlock()
			if c.span != nil {
				c.span.Count("cache_misses", 1)
			}
		}
		run.queue = append(run.queue, i)
		run.pending++
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: coordinator closed")
	}
	if run.pending == 0 {
		c.mu.Unlock()
		return run.results, nil
	}
	if c.run != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fabric: a run is already active")
	}
	c.run = run
	c.cond.Broadcast()
	c.mu.Unlock()

	// Wake the wait loop when the caller's context dies.
	cancelDone := make(chan struct{})
	defer close(cancelDone)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-cancelDone:
		}
	}()

	c.mu.Lock()
	for run.pending > 0 && ctx.Err() == nil && c.ctx.Err() == nil && !c.closed {
		c.cond.Wait()
	}
	if run.pending > 0 {
		// Cancelled (SIGINT, coordinator shutdown): mark what never got
		// a final outcome as skipped, exactly like the local pool's
		// drain.
		cause := ctx.Err()
		if cause == nil {
			cause = c.ctx.Err()
		}
		if cause == nil {
			cause = context.Canceled
		}
		for i := range run.state {
			if !run.state[i].final {
				run.state[i].final = true
				run.results[i] = experiments.CellResult{
					Key: reqs[i].Key,
					Err: fmt.Errorf("%w: %w", pool.ErrSkipped, cause),
				}
				run.pending--
			}
		}
	}
	run.closed = true
	c.run = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	return run.results, nil
}

// Close shuts the fabric down: shutdown frames to every worker, a
// bounded wait for them to flush their journals and exit, SIGKILL for
// stragglers, then the per-worker journal merge into the main journal
// (when RunDir is set). Safe to call more than once.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.run != nil {
		c.run.closed = true
	}
	workers := make([]*workerHandle, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	if c.listener != nil {
		c.listener.Close()
	}
	for _, w := range workers {
		w.conn.Write(&Frame{Type: TypeShutdown})
	}
	// Give workers a moment to flush and exit on their own...
	deadline := time.After(3 * time.Second)
	for _, w := range workers {
		select {
		case <-w.done:
		case <-deadline:
		}
	}
	// ...then reap whatever is left.
	for _, w := range workers {
		w.kill()
	}
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
	var err error
	if c.opt.RunDir != "" {
		err = MergeWorkerJournals(c.opt.RunDir)
	}
	if c.span != nil {
		c.span.End()
	}
	return err
}

// Kill is the emergency stop (second SIGINT): SIGKILL every spawned
// worker immediately, no draining, no waiting — but no orphans
// either. Safe to call from a signal handler at any point after
// Start, including concurrently with Close.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	workers := make([]*workerHandle, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	c.mu.Unlock()
	for _, w := range workers {
		w.kill()
	}
	if c.listener != nil {
		c.listener.Close()
	}
}
