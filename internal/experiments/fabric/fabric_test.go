package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"falseshare/internal/experiments"
	"falseshare/internal/experiments/journal"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// The integration suite re-execs this test binary as the worker
// process: TestMain intercepts the child before any test runs, so a
// spawned worker speaks the fabric protocol on stdio exactly like
// fsexp -worker does. FABRIC_TEST_WORKER is exported for the whole
// parent run, so every coordinator spawn (including mid-test respawns
// after chaos kills) lands in worker mode.
func TestMain(m *testing.M) {
	if os.Getenv("FABRIC_TEST_WORKER") == "1" {
		if err := RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fabric test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Setenv("FABRIC_TEST_WORKER", "1")
	os.Exit(m.Run())
}

// testGrid is the shared small grid: a 2-workload protocol/topology
// matrix at minimal scale — a few dozen cheap cells with full fabric
// coverage (fingerprints, spans, deterministic keys).
func testGrid() (experiments.Config, experiments.MatrixOptions, experiments.SectionSet) {
	cfg := experiments.DefaultConfig()
	cfg.Workers = 4
	mopt := experiments.MatrixOptions{Workloads: 2, Seed: 7, Procs: 2, Block: 32, ScaleMin: true}
	set := experiments.SectionSet{Sections: []string{"matrix"}, Matrix: mopt}
	return cfg, mopt, set
}

// gridKeys enumerates the grid's cell keys the same way a worker does.
func gridKeys(t *testing.T, cfg experiments.Config, set experiments.SectionSet) []string {
	t.Helper()
	enum, err := experiments.Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}
	keys := enum.Keys()
	if len(keys) == 0 {
		t.Fatal("empty grid")
	}
	return keys
}

// startCoordinator wires the re-exec worker command into opt, starts
// the coordinator, and registers cleanup.
func startCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	if len(opt.WorkerCmd) == 0 {
		opt.WorkerCmd = []string{os.Args[0]}
	}
	c := NewCoordinator(opt)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// normManifest mirrors fsexp -reportdir and the determinism suite's
// normalization: the manifest with timing fields (started, wall_ms,
// wall_ns) and worker-count knobs (config.workers, the pool span's
// workers counter) removed — the only fields allowed to differ
// between a local and a distributed run.
func normManifest(t *testing.T, name string, cfg experiments.Config, fn func() (any, error)) []byte {
	t.Helper()
	rep, err := experiments.RunManifest("fsexp", name, experiments.ConfigMap(cfg), fn)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "started")
	delete(doc, "wall_ms")
	if c, ok := doc["config"].(map[string]any); ok {
		delete(c, "workers")
	}
	scrubSpans(doc["spans"])
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func scrubSpans(v any) {
	spans, _ := v.([]any)
	for _, s := range spans {
		m, _ := s.(map[string]any)
		if m == nil {
			continue
		}
		delete(m, "wall_ns")
		delete(m, "wall_ms")
		if c, ok := m["counters"].(map[string]any); ok {
			delete(c, "workers")
			if len(c) == 0 {
				delete(m, "counters")
			}
		}
		scrubSpans(m["children"])
	}
}

func firstDiff(a, b []byte) (string, string) {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	window := func(x []byte) string {
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		return string(x[lo:hi])
	}
	return window(a), window(b)
}

// TestFabricManifestByteIdentity is the tentpole contract and the
// satellite-3 property: a distributed matrix run — at one worker and
// at four — produces a manifest byte-identical to the single-process
// run, modulo timing.
func TestFabricManifestByteIdentity(t *testing.T) {
	cfg, mopt, set := testGrid()
	local := normManifest(t, "matrix", cfg, func() (any, error) { return experiments.Matrix(cfg, mopt) })

	for _, workers := range []int{1, 4} {
		coord := startCoordinator(t, Options{Workers: workers, Spec: cfg.Spec(), Set: set, Recorder: obs.NewRecorder()})
		fcfg := cfg
		fcfg.Runner = coord
		dist := normManifest(t, "matrix", fcfg, func() (any, error) { return experiments.Matrix(fcfg, mopt) })
		if !bytes.Equal(local, dist) {
			d1, d2 := firstDiff(local, dist)
			t.Errorf("-workers %d manifest differs from single-process:\n--- local ---\n%s\n--- fabric ---\n%s", workers, d1, d2)
		}
		st := coord.Stats()
		if st.Deaths != 0 || st.Reassigned != 0 {
			t.Errorf("-workers %d: clean run recorded deaths=%d reassigned=%d", workers, st.Deaths, st.Reassigned)
		}
		if err := coord.Close(); err != nil {
			t.Errorf("-workers %d: close: %v", workers, err)
		}
	}
}

// TestFabricWorkerKillResume kills one worker mid-cell (the coord.kill
// chaos point: deterministic, fires once) and requires the run to
// complete via reassignment with results identical to an undisturbed
// local run; then a -resume style replay of the merged journal must
// reproduce them again without recomputing anything.
func TestFabricWorkerKillResume(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[len(keys)/2]

	want, err := experiments.Matrix(cfg, mopt)
	if err != nil {
		t.Fatal(err)
	}

	set2, err := faultinject.Parse("coord.kill=" + victim + ":error:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set2)
	defer faultinject.Disable()

	runDir := t.TempDir()
	jnl, err := journal.Open(runDir)
	if err != nil {
		t.Fatal(err)
	}
	coord := startCoordinator(t, Options{Workers: 2, Spec: cfg.Spec(), Set: set, RunDir: runDir})
	fcfg := cfg
	fcfg.Runner = coord
	fcfg.Journal = jnl
	got, err := experiments.Matrix(fcfg, mopt)
	if err != nil {
		var me *pool.MultiError
		if errors.As(err, &me) {
			for _, fe := range me.Errors {
				t.Errorf("cell %s failed: %v", fe.Key, fe.Err)
			}
		}
		t.Fatalf("run with worker kill failed: %v", err)
	}
	jnl.Close()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	faultinject.Disable()

	st := coord.Stats()
	if st.Deaths != 1 {
		t.Errorf("deaths = %d, want 1 (exactly one chaos kill)", st.Deaths)
	}
	if st.Reassigned != 1 {
		t.Errorf("reassigned = %d, want 1", st.Reassigned)
	}
	if st.Spawned != 3 {
		t.Errorf("spawned = %d, want 3 (2 workers + 1 respawn)", st.Spawned)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("results after worker kill differ from undisturbed run")
	}

	// Resume round trip: the journal now holds every cell; a local
	// replay must serve all of them without touching a worker.
	jnl2, err := journal.Open(runDir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if jnl2.Len() < len(keys) {
		t.Errorf("journal has %d cells, want >= %d", jnl2.Len(), len(keys))
	}
	rcfg := cfg
	rcfg.Workers = 1
	rcfg.Journal = jnl2
	resumed, err := experiments.Matrix(rcfg, mopt)
	if err != nil {
		t.Fatalf("resume replay: %v", err)
	}
	if !bytes.Equal(mustJSON(t, resumed), mustJSON(t, want)) {
		t.Error("resumed results differ from original run")
	}
}

// TestFabricFaultPropagation is satellite 1: a -faults spec handed to
// the coordinator reaches spawned workers, and a pool.worker rule
// fires inside the worker process (this process never enables the
// fault set, so the injected error can only have crossed the wire).
func TestFabricFaultPropagation(t *testing.T) {
	if faultinject.Active() {
		t.Fatal("fault injection unexpectedly enabled in the test process")
	}
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[0]

	coord := startCoordinator(t, Options{
		Workers: 2,
		Spec:    cfg.Spec(),
		Set:     set,
		Faults:  "pool.worker=" + victim + ":error",
	})
	fcfg := cfg
	fcfg.Runner = coord
	_, err := experiments.Matrix(fcfg, mopt)
	if err == nil {
		t.Fatal("injected worker fault did not surface")
	}
	var me *pool.MultiError
	if !errors.As(err, &me) {
		t.Fatalf("error is %T, want *pool.MultiError: %v", err, err)
	}
	if len(me.Errors) != 1 {
		t.Fatalf("got %d failed cells, want exactly the victim: %v", len(me.Errors), me)
	}
	fe := me.Errors[0]
	if fe.Key != victim {
		t.Errorf("failed cell %s, want %s", fe.Key, victim)
	}
	if !strings.Contains(fe.Err.Error(), "injected fault at pool.worker") {
		t.Errorf("error %q does not carry the worker-side injection", fe.Err)
	}
	if faultinject.Active() {
		t.Error("worker fault spec leaked into the coordinator process")
	}
}

// TestFabricKillReapsWorkers is satellite 2: Kill (the second-SIGINT
// path) leaves no orphaned worker processes.
func TestFabricKillReapsWorkers(t *testing.T) {
	cfg, _, set := testGrid()
	coord := startCoordinator(t, Options{Workers: 3, Spec: cfg.Spec(), Set: set})
	pids := coord.Pids()
	if len(pids) != 3 {
		t.Fatalf("got %d worker pids, want 3", len(pids))
	}
	for _, pid := range pids {
		if err := syscall.Kill(pid, 0); err != nil {
			t.Fatalf("worker %d not alive before Kill: %v", pid, err)
		}
	}
	coord.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for _, pid := range pids {
		for {
			if err := syscall.Kill(pid, 0); err == syscall.ESRCH {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d still alive after Kill", pid)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	coord.Close()
}

// TestFabricChaosExit crashes every worker that picks up one poison
// cell (worker-side rules re-fire in replacement processes, so the
// cell stays poisoned): the fleet must survive — bounded reassignment
// fails the cell, respawns keep the rest of the grid running.
func TestFabricChaosExit(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[0]

	coord := startCoordinator(t, Options{
		Workers:   2,
		Spec:      cfg.Spec(),
		Set:       set,
		Faults:    "worker.cell=" + victim + ":exit",
		MaxDeaths: 1,
	})
	fcfg := cfg
	fcfg.Runner = coord
	cells, err := experiments.Matrix(fcfg, mopt)
	var me *pool.MultiError
	if !errors.As(err, &me) || len(me.Errors) != 1 {
		t.Fatalf("want exactly the poison cell to fail, got %v", err)
	}
	if me.Errors[0].Key != victim {
		t.Errorf("failed cell %s, want %s", me.Errors[0].Key, victim)
	}
	if !strings.Contains(me.Errors[0].Err.Error(), "lost 2 workers") {
		t.Errorf("poison cell error %q does not report bounded reassignment", me.Errors[0].Err)
	}
	if n := len(cells); n != len(keys)-1 {
		t.Errorf("got %d completed cells, want %d (everything but the poison cell)", n, len(keys)-1)
	}
	st := coord.Stats()
	if st.Deaths < 1 {
		t.Errorf("deaths = %d, want >= 1 (each attempt crashes a worker)", st.Deaths)
	}
	// Both original workers crash on the poison cell, yet the other 11
	// cells complete — only possible if respawns kept the fleet alive.
	if st.Spawned < 3 {
		t.Errorf("spawned = %d, want >= 3 (respawns kept the fleet alive)", st.Spawned)
	}
}

// TestFabricChaosHang wedges every worker that picks up one cell; the
// per-cell deadline must detect the hang (heartbeats stay healthy — a
// hung cell is not a dead process), kill the worker and eventually
// fail the cell, while the rest of the grid completes.
func TestFabricChaosHang(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[len(keys)-1]

	coord := startCoordinator(t, Options{
		Workers:   2,
		Spec:      cfg.Spec(),
		Set:       set,
		Faults:    "worker.cell=" + victim + ":hang",
		MaxDeaths: 1,
		Policy:    pool.Policy{JobTimeout: 2 * time.Second},
	})
	fcfg := cfg
	fcfg.Runner = coord
	_, err := experiments.Matrix(fcfg, mopt)
	var me *pool.MultiError
	if !errors.As(err, &me) || len(me.Errors) != 1 {
		t.Fatalf("want exactly the hung cell to fail, got %v", err)
	}
	if me.Errors[0].Key != victim {
		t.Errorf("failed cell %s, want %s", me.Errors[0].Key, victim)
	}
	if !strings.Contains(me.Errors[0].Err.Error(), "deadline") {
		t.Errorf("hung cell error %q does not mention the deadline", me.Errors[0].Err)
	}
	// At least the first hung worker's death is always accounted; the
	// second can race with shutdown (deaths during Close are deliberately
	// not counted), so >= 1.
	if st := coord.Stats(); st.Deaths < 1 {
		t.Errorf("deaths = %d, want >= 1 (hung worker killed)", st.Deaths)
	}
}

// TestFabricChaosCorrupt mangles the result frame for one cell: the
// coordinator must treat the undecodable worker as dead, reassign, and
// — since the corruption re-fires in every replacement — fail the cell
// after bounded reassignment instead of looping forever.
func TestFabricChaosCorrupt(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[0]

	coord := startCoordinator(t, Options{
		Workers:   2,
		Spec:      cfg.Spec(),
		Set:       set,
		Faults:    "worker.send=" + victim + ":corrupt:count=1",
		MaxDeaths: 1,
	})
	fcfg := cfg
	fcfg.Runner = coord
	_, err := experiments.Matrix(fcfg, mopt)
	var me *pool.MultiError
	if !errors.As(err, &me) || len(me.Errors) != 1 {
		t.Fatalf("want exactly the corrupted cell to fail, got %v", err)
	}
	if me.Errors[0].Key != victim {
		t.Errorf("failed cell %s, want %s", me.Errors[0].Key, victim)
	}
	if st := coord.Stats(); st.Deaths < 1 {
		t.Errorf("deaths = %d, want >= 1 (corrupt frames kill the connection)", st.Deaths)
	}
}

// TestFabricTransientRetry: a worker-reported transient error retries
// under pool.Policy semantics (bounded, backed off) and succeeds on
// the second attempt — the count=1 rule is exhausted within the single
// worker process.
func TestFabricTransientRetry(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	victim := keys[0]

	coord := startCoordinator(t, Options{
		Workers: 1,
		Spec:    cfg.Spec(),
		Set:     set,
		Faults:  "worker.cell=" + victim + ":error:transient:count=1",
		Policy:  pool.Policy{Retries: 2, Backoff: 5 * time.Millisecond},
	})
	fcfg := cfg
	fcfg.Runner = coord
	got, err := experiments.Matrix(fcfg, mopt)
	if err != nil {
		t.Fatalf("transient fault was not retried: %v", err)
	}
	want, err := experiments.Matrix(cfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("retried run differs from undisturbed run")
	}
	st := coord.Stats()
	if st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
	if st.Deaths != 0 {
		t.Errorf("deaths = %d, want 0 (a retried error is not a dead worker)", st.Deaths)
	}
}

// TestFabricCacheDedup is the content-cache acceptance: a second run
// over the same grid serves every cell from the cache (>= 90%
// required; 100% expected), with identical results — and a schema
// bump (satellite 6) forces full recomputation.
func TestFabricCacheDedup(t *testing.T) {
	cfg, mopt, set := testGrid()
	keys := gridKeys(t, cfg, set)
	dir := t.TempDir()

	runWith := func(cc *Cache) ([]experiments.MatrixCell, Stats) {
		t.Helper()
		coord := startCoordinator(t, Options{Workers: 2, Spec: cfg.Spec(), Set: set, Cache: cc})
		fcfg := cfg
		fcfg.Runner = coord
		cells, err := experiments.Matrix(fcfg, mopt)
		if err != nil {
			t.Fatal(err)
		}
		coord.Close()
		return cells, coord.Stats()
	}

	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, st1 := runWith(c1)
	if st1.CacheMisses != len(keys) || st1.CacheHits != 0 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/%d", st1.CacheHits, st1.CacheMisses, len(keys))
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, st2 := runWith(c2)
	if st2.CacheHits != len(keys) || st2.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want %d/0", st2.CacheHits, st2.CacheMisses, len(keys))
	}
	if st2.Cells != 0 {
		t.Errorf("warm run dispatched %d cells, want 0", st2.Cells)
	}
	if !bytes.Equal(mustJSON(t, first), mustJSON(t, second)) {
		t.Error("cache-served results differ from computed ones")
	}

	// Satellite 6: bumping the stage version string in the key must
	// miss every entry and recompute.
	c3, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3.Schema = experiments.CellSchema + "-bumped"
	third, st3 := runWith(c3)
	if st3.CacheHits != 0 || st3.CacheMisses != len(keys) {
		t.Errorf("bumped-schema run: hits=%d misses=%d, want 0/%d", st3.CacheHits, st3.CacheMisses, len(keys))
	}
	if !bytes.Equal(mustJSON(t, first), mustJSON(t, third)) {
		t.Error("recomputed results differ")
	}
}

// TestFabricTCPWorker attaches a worker over TCP (fsexp -worker
// -connect) instead of spawning: same protocol, same results.
func TestFabricTCPWorker(t *testing.T) {
	cfg, mopt, set := testGrid()
	coord := startCoordinator(t, Options{Listen: "127.0.0.1:0", Spec: cfg.Spec(), Set: set})
	if coord.Addr() == "" {
		t.Fatal("no listener address")
	}
	workerErr := make(chan error, 1)
	go func() { workerErr <- RunWorkerTCP(coord.Addr()) }()

	fcfg := cfg
	fcfg.Runner = coord
	got, err := experiments.Matrix(fcfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Matrix(cfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("TCP-worker results differ from local run")
	}
	st := coord.Stats()
	if st.Attached != 1 || st.Spawned != 0 {
		t.Errorf("attached=%d spawned=%d, want 1/0", st.Attached, st.Spawned)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Errorf("TCP worker exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("TCP worker did not exit after shutdown")
	}
}

// TestFabricTCPWorkerRetriesUntilCoordinatorUp is the start-order
// regression test: a worker launched before the coordinator's
// -listen socket exists must retry with backoff and attach once the
// listener appears, instead of dying on the first refused dial.
func TestFabricTCPWorkerRetriesUntilCoordinatorUp(t *testing.T) {
	// Tighten the dial policy so the test is fast; the schedule is
	// still real retries against a real refused port.
	defer func(to time.Duration, n int, b, m time.Duration) {
		tcpDialTimeout, tcpDialAttempts, tcpDialBackoff, tcpDialBackoffMax = to, n, b, m
	}(tcpDialTimeout, tcpDialAttempts, tcpDialBackoff, tcpDialBackoffMax)
	tcpDialTimeout = 2 * time.Second
	tcpDialAttempts = 60
	tcpDialBackoff = 25 * time.Millisecond
	tcpDialBackoffMax = 100 * time.Millisecond

	// Reserve an address nothing is listening on yet.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	workerErr := make(chan error, 1)
	go func() { workerErr <- RunWorkerTCP(addr) }()
	// Let at least one dial fail against the closed port before the
	// coordinator comes up.
	time.Sleep(60 * time.Millisecond)
	select {
	case err := <-workerErr:
		t.Fatalf("worker gave up before the coordinator started: %v", err)
	default:
	}

	cfg, mopt, set := testGrid()
	coord := startCoordinator(t, Options{Listen: addr, Spec: cfg.Spec(), Set: set})

	fcfg := cfg
	fcfg.Runner = coord
	got, err := experiments.Matrix(fcfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Matrix(cfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("late-coordinator results differ from local run")
	}
	if st := coord.Stats(); st.Attached != 1 {
		t.Errorf("attached=%d, want 1", st.Attached)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Errorf("TCP worker exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("TCP worker did not exit after shutdown")
	}
}
