// Package fabric runs experiment cells in worker processes: a
// coordinator shards a run's (program × version × procs × block ×
// protocol × topology) grid across workers it spawns locally (fsexp
// -worker over stdio) or that attach over TCP, and folds the results
// back into the same journals, span trees and manifests a
// single-process run produces — byte-identical modulo timing.
//
// Robustness is the headline contract, because at fleet scale
// something is always failing:
//
//   - per-worker heartbeats and per-cell deadlines detect dead and
//     hung workers;
//   - cells owned by a dead worker are reassigned automatically,
//     bounded per cell so a poison cell cannot eat the fleet;
//   - transient cell errors retry with exponential backoff under the
//     same pool.Policy semantics as a local run;
//   - results dedup through a content-addressed cache keyed by
//     (schema version, cell fingerprint), so re-runs and overlapping
//     shards hit the cache instead of recomputing;
//   - every worker journals its completions before reporting them, so
//     a worker's death never loses finished work: the per-worker
//     journals merge into the main resume journal.
//
// The wire protocol is deliberately minimal: 4-byte big-endian
// length-prefixed JSON frames over any byte stream. Workers re-derive
// the coordinator's exact cell grid from the shipped ConfigSpec and
// SectionSet (experiments.Collect), so an assignment is just a key —
// no closures, no code shipping, and the same determinism guarantees
// as running in process.
package fabric

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"falseshare/internal/experiments"
	"falseshare/internal/obs"
)

// Frame types. The coordinator sends hello, assign, ping and
// shutdown; workers send ready, result and pong.
const (
	// TypeHello configures a worker: grid spec, sections, fault spec,
	// run directory. Always the first frame on a connection.
	TypeHello = "hello"
	// TypeReady acknowledges hello: the worker enumerated its grid and
	// accepts assignments.
	TypeReady = "ready"
	// TypeAssign hands one cell (by key) to the worker.
	TypeAssign = "assign"
	// TypeResult reports one cell's outcome.
	TypeResult = "result"
	// TypePing/TypePong are the liveness heartbeat.
	TypePing = "ping"
	TypePong = "pong"
	// TypeShutdown asks the worker to flush and exit cleanly.
	TypeShutdown = "shutdown"
)

// Frame is one protocol message. A single struct with optional fields
// keeps the codec trivial; each type uses the fields it needs.
type Frame struct {
	Type string `json:"type"`

	// hello
	Spec   *experiments.ConfigSpec `json:"spec,omitempty"`
	Set    *experiments.SectionSet `json:"set,omitempty"`
	Faults string                  `json:"faults,omitempty"`
	RunDir string                  `json:"run_dir,omitempty"`
	Worker int                     `json:"worker,omitempty"`

	// assign + result
	Key         string `json:"key,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// result
	Data      json.RawMessage         `json:"data,omitempty"`
	Spans     []*obs.Span             `json:"spans,omitempty"`
	Events    *experiments.CellEvents `json:"events,omitempty"`
	Err       string                  `json:"err,omitempty"`
	Retryable bool                    `json:"retryable,omitempty"`

	// ready
	Cells int `json:"cells,omitempty"`
}

// MaxFrame bounds a frame's encoded size: anything larger is a
// protocol violation (or corruption), not a legitimate result.
const MaxFrame = 64 << 20

// Conn frames a byte stream. Reads are single-reader; writes are
// mutex-serialized so heartbeats and results can share a connection.
type Conn struct {
	r   *bufio.Reader
	wmu sync.Mutex
	w   *bufio.Writer
	c   io.Closer
}

// NewConn wraps a reader/writer pair. If rw also implements
// io.Closer, Close closes it.
func NewConn(r io.Reader, w io.Writer) *Conn {
	conn := &Conn{r: bufio.NewReader(r), w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		conn.c = c
	}
	return conn
}

// Close closes the underlying stream, if it is closable. Safe to call
// concurrently with Read/Write: a blocked Read unblocks with an error.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Read decodes the next frame. io.EOF means the peer closed cleanly
// between frames; any mid-frame truncation or undecodable payload is
// an error — the fabric treats both as a dead peer.
func (c *Conn) Read() (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("fabric: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("fabric: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("fabric: read frame body: %w", err)
	}
	f := &Frame{}
	if err := json.Unmarshal(buf, f); err != nil {
		return nil, fmt.Errorf("fabric: decode frame: %w", err)
	}
	if f.Type == "" {
		return nil, fmt.Errorf("fabric: frame without type")
	}
	return f, nil
}

// Write encodes and sends one frame, flushed before returning.
func (c *Conn) Write(f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encode frame: %w", err)
	}
	return c.writeRaw(b)
}

// writeMangled sends a deliberately corrupted encoding of f — the
// worker.send chaos mode. The length prefix stays valid so the
// corruption surfaces as a decode failure at the peer, the way a
// flipped bit in a real payload would.
func (c *Conn) writeMangled(f *Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: encode frame: %w", err)
	}
	for i := range b {
		b[i] ^= 0x5a
	}
	return c.writeRaw(b)
}

func (c *Conn) writeRaw(b []byte) error {
	if len(b) > MaxFrame {
		return fmt.Errorf("fabric: frame length %d out of range", len(b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	if _, err := c.w.Write(b); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("fabric: write frame: %w", err)
	}
	return nil
}

// transientError is a worker-reported error whose transience survived
// the wire (Frame.Retryable), so the coordinator's retry policy and
// the pool's default classifier both still see it.
type transientError struct{ msg string }

func (e *transientError) Error() string   { return e.msg }
func (e *transientError) Transient() bool { return true }

// frameError reconstructs a worker-reported error.
func frameError(f *Frame) error {
	if f.Err == "" {
		return nil
	}
	if f.Retryable {
		return &transientError{msg: f.Err}
	}
	return fmt.Errorf("%s", f.Err)
}
