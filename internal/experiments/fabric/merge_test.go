package fabric

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"falseshare/internal/experiments/journal"
)

// TestMergeWorkerJournals pins the crash-survival contract: cells a
// worker finished but never managed to report merge into the main
// journal, while the coordinator's own copies stay authoritative.
func TestMergeWorkerJournals(t *testing.T) {
	dir := t.TempDir()
	main, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := main.Append("cell/a", json.RawMessage(`"main-a"`), nil); err != nil {
		t.Fatal(err)
	}
	main.Close()

	w0, err := journal.OpenFile(dir, WorkerJournalFile(0))
	if err != nil {
		t.Fatal(err)
	}
	// cell/a duplicates a key the coordinator already journaled (the
	// normal case: worker reported it, coordinator recorded it) with
	// different bytes, proving main wins.
	w0.Append("cell/a", json.RawMessage(`"worker-a"`), nil)
	w0.Append("cell/b", json.RawMessage(`"worker-b"`), nil)
	w0.Close()
	w1, err := journal.OpenFile(dir, WorkerJournalFile(1))
	if err != nil {
		t.Fatal(err)
	}
	w1.Append("cell/c", json.RawMessage(`"worker-c"`), nil)
	w1.Close()

	if err := MergeWorkerJournals(dir); err != nil {
		t.Fatal(err)
	}

	merged, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	want := map[string]string{
		"cell/a": `"main-a"`, // coordinator's copy authoritative
		"cell/b": `"worker-b"`,
		"cell/c": `"worker-c"`,
	}
	if merged.Len() != len(want) {
		t.Errorf("merged journal has %d keys, want %d", merged.Len(), len(want))
	}
	for key, data := range want {
		got, _, ok := merged.Lookup(key)
		if !ok {
			t.Errorf("key %s missing after merge", key)
			continue
		}
		if !bytes.Equal(got, json.RawMessage(data)) {
			t.Errorf("key %s = %s, want %s", key, got, data)
		}
	}

	// Worker files are consumed...
	left, _ := filepath.Glob(filepath.Join(dir, "journal-worker-*.jsonl"))
	if len(left) != 0 {
		t.Errorf("worker journals left behind: %v", left)
	}
	// ...and the merge is idempotent: running it again (resume after a
	// crash mid-merge) changes nothing.
	if err := MergeWorkerJournals(dir); err != nil {
		t.Fatal(err)
	}
	again, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != len(want) {
		t.Errorf("second merge changed the journal: %d keys, want %d", again.Len(), len(want))
	}
}

func TestMergeWorkerJournalsNoFiles(t *testing.T) {
	if err := MergeWorkerJournals(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
