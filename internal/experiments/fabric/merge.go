package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"falseshare/internal/experiments/journal"
	"falseshare/internal/obs"
)

// MergeWorkerJournals folds every journal-worker-*.jsonl in dir into
// the main journal.jsonl, then removes the worker files. Keys the
// main journal already holds are kept as-is (the coordinator's copy
// is authoritative — it is what the manifests rendered); keys only a
// worker recorded — cells a worker finished but whose report never
// reached the coordinator before it died — are appended, so a
// -resume run replays them instead of recomputing.
//
// Worker files visit in sorted name order and keys within a file in
// sorted order, so a merge is deterministic regardless of which
// worker finished what. The merge is idempotent: re-running it (a
// resume after a crash mid-merge) converges to the same journal.
func MergeWorkerJournals(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "journal-worker-*.jsonl"))
	if err != nil {
		return fmt.Errorf("fabric: merge journals: %w", err)
	}
	if len(files) == 0 {
		return nil
	}
	sort.Strings(files)
	main, err := journal.Open(dir)
	if err != nil {
		return fmt.Errorf("fabric: merge journals: %w", err)
	}
	defer main.Close()
	merged := 0
	for _, file := range files {
		wj, err := journal.OpenFile(dir, filepath.Base(file))
		if err != nil {
			obs.Logf("fabric: merge: skipping %s: %v", filepath.Base(file), err)
			continue
		}
		type rec struct {
			key   string
			data  json.RawMessage
			spans []*obs.Span
		}
		var recs []rec
		wj.Each(func(key string, data json.RawMessage, spans []*obs.Span) {
			recs = append(recs, rec{key, data, spans})
		})
		wj.Close()
		sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
		for _, r := range recs {
			if main.Has(r.key) {
				continue
			}
			if err := main.Append(r.key, r.data, r.spans); err != nil {
				return fmt.Errorf("fabric: merge journals: %w", err)
			}
			merged++
		}
		// The worker file is folded in; removing it keeps a future
		// run's worker ids from appending to stale files.
		if err := os.Remove(file); err != nil {
			obs.Logf("fabric: merge: %v", err)
		}
	}
	if merged > 0 {
		obs.Logf("fabric: merged %d worker-journal entries into %s", merged, main.Path())
	}
	return nil
}
