package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"falseshare/internal/experiments"
	"falseshare/internal/obs"
)

// Cache is the content-addressed result store: one JSON file per
// cell, addressed by hash(schema version ‖ cell fingerprint). The
// fingerprint covers everything the result depends on — program
// source, cell configuration, scale, budget — and the schema version
// covers the code itself, so bumping either recomputes instead of
// serving stale cells. Unlike the resume journal (scoped to one run
// directory), the cache is a persistent cross-run store: re-runs and
// overlapping shards of different grids dedup through it.
//
// Entries store the result JSON and the span subtree the original
// execution recorded, so a cache-served cell reconstructs the same
// manifest as a computed one — the journal's byte-identity contract,
// extended across runs.
type Cache struct {
	dir string
	// Schema is the cache key version, normally experiments.CellSchema.
	// Exposed so tests can prove a version bump forces recomputation.
	Schema string
}

// cacheEntry is one stored cell.
type cacheEntry struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint"`
	Key         string          `json:"key"`
	Data        json.RawMessage `json:"data"`
	Spans       []*obs.Span     `json:"spans,omitempty"`
}

// OpenCache opens (creating as needed) the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: cache: %w", err)
	}
	return &Cache{dir: dir, Schema: experiments.CellSchema}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path maps a fingerprint to its entry file: <dir>/<h[:2]>/<h>.json,
// fanned out over 256 subdirectories so huge sweeps don't pile every
// entry into one directory.
func (c *Cache) path(fingerprint string) string {
	sum := sha256.Sum256([]byte(c.Schema + "\x00" + fingerprint))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, h[:2], h+".json")
}

// Get returns the cached result and spans for a fingerprint, if
// present. A stored entry whose schema or fingerprint does not match
// (hash collision, truncated write, schema drift) is a miss, never an
// error: the cost of a miss is one recomputation.
func (c *Cache) Get(fingerprint string) (json.RawMessage, []*obs.Span, bool) {
	if c == nil || fingerprint == "" {
		return nil, nil, false
	}
	b, err := os.ReadFile(c.path(fingerprint))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != c.Schema || e.Fingerprint != fingerprint {
		return nil, nil, false
	}
	return e.Data, e.Spans, true
}

// Put stores one successful cell result, atomically (tmp + rename),
// so a concurrent reader never observes a torn entry and a crashed
// writer leaves at most an orphan tmp file. Errors are returned but
// callers may treat them as advisory: a failed Put only costs future
// cache hits.
func (c *Cache) Put(fingerprint, key string, data json.RawMessage, spans []*obs.Span) error {
	if c == nil || fingerprint == "" {
		return nil
	}
	e := cacheEntry{Schema: c.Schema, Fingerprint: fingerprint, Key: key, Data: data, Spans: spans}
	b, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	path := c.path(fingerprint)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	return nil
}
