package fabric

import (
	"context"
	"encoding/json"
	"fmt"

	"falseshare/internal/artifact"
	"falseshare/internal/experiments"
	"falseshare/internal/obs"
)

// Cache is the content-addressed result store: one JSON entry per
// cell, addressed by hash(schema version ‖ cell fingerprint). The
// fingerprint covers everything the result depends on — program
// source, cell configuration, scale, budget — and the schema version
// covers the code itself, so bumping either recomputes instead of
// serving stale cells. Unlike the resume journal (scoped to one run
// directory), the cache is a persistent cross-run store: re-runs and
// overlapping shards of different grids dedup through it.
//
// Entries store the result JSON and the span subtree the original
// execution recorded, so a cache-served cell reconstructs the same
// manifest as a computed one — the journal's byte-identity contract,
// extended across runs.
//
// Storage is the artifact package's crash-safe store: atomic writes,
// a recovery scan at open that drops torn or corrupt entries (and
// counts them — visible in the fabric summary line), and optional
// LRU eviction under a byte budget.
type Cache struct {
	store *artifact.Store
	// Schema is the cache key version, normally experiments.CellSchema.
	// Exposed so tests can prove a version bump forces recomputation.
	Schema string
}

// cellPayload is one stored cell's content: the result JSON plus the
// recorded span subtree.
type cellPayload struct {
	Key   string          `json:"key"`
	Data  json.RawMessage `json:"data"`
	Spans []*obs.Span     `json:"spans,omitempty"`
}

// OpenCache opens (creating as needed) the cache rooted at dir, with
// no eviction budget.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheBudget(dir, 0)
}

// OpenCacheBudget opens the cache with an LRU eviction budget over
// entry bytes (0 = unlimited). Opening runs the store's recovery
// scan; torn or corrupt entries are dropped and counted.
func OpenCacheBudget(dir string, maxBytes int64) (*Cache, error) {
	st, err := artifact.Open(dir, artifact.Options{
		MaxBytes:   maxBytes,
		FaultPoint: "fabric.cache",
	})
	if err != nil {
		return nil, fmt.Errorf("fabric: cache: %w", err)
	}
	return &Cache{store: st, Schema: experiments.CellSchema}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.store.Dir() }

// Get returns the cached result and spans for a fingerprint, if
// present. A stored entry whose schema or fingerprint does not match
// (hash collision, truncated write, schema drift) is a miss, never an
// error: the cost of a miss is one recomputation.
func (c *Cache) Get(fingerprint string) (json.RawMessage, []*obs.Span, bool) {
	if c == nil || fingerprint == "" {
		return nil, nil, false
	}
	b, ok := c.store.Get(c.Schema, fingerprint)
	if !ok {
		return nil, nil, false
	}
	var p cellPayload
	if json.Unmarshal(b, &p) != nil {
		return nil, nil, false
	}
	return p.Data, p.Spans, true
}

// Put stores one successful cell result, atomically (tmp + rename),
// so a concurrent reader never observes a torn entry and a crashed
// writer leaves at most an orphan tmp file. Errors are returned but
// callers may treat them as advisory: a failed Put only costs future
// cache hits.
func (c *Cache) Put(fingerprint, key string, data json.RawMessage, spans []*obs.Span) error {
	if c == nil || fingerprint == "" {
		return nil
	}
	b, err := json.Marshal(&cellPayload{Key: key, Data: data, Spans: spans})
	if err != nil {
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	if err := c.store.Put(context.Background(), c.Schema, fingerprint, b); err != nil {
		return fmt.Errorf("fabric: cache put %s: %w", key, err)
	}
	return nil
}

// Counters snapshots the underlying store's activity — hits, misses,
// corrupt entries dropped, evictions. nil-safe.
func (c *Cache) Counters() artifact.Counters {
	if c == nil {
		return artifact.Counters{}
	}
	return c.store.Counters()
}

// Close flushes the store's LRU recency index. nil-safe; losing the
// flush costs eviction accuracy, never entries.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	return c.store.Close()
}
