//go:build !linux

package fabric

import "os/exec"

// setProcAttr is a no-op off Linux: there is no parent-death signal,
// so orphan prevention relies on the explicit Kill/Close reaping and
// on workers exiting at stdin EOF.
func setProcAttr(cmd *exec.Cmd) {}
