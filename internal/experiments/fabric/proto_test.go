package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"falseshare/internal/experiments"
	"falseshare/internal/obs"
)

// pipeConn returns two Conns wired back to back over in-memory pipes.
func pipeConn() (*Conn, *Conn) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return NewConn(ar, aw), NewConn(br, bw)
}

func TestConnRoundTrip(t *testing.T) {
	a, b := pipeConn()
	frames := []*Frame{
		{Type: TypeHello, Spec: &experiments.ConfigSpec{Scale: 3}, Set: &experiments.SectionSet{Sections: []string{"matrix"}}, Faults: "pool.worker:error", RunDir: "/tmp/run", Worker: 7},
		{Type: TypeReady, Cells: 42},
		{Type: TypeAssign, Key: "matrix/gen-001/mesi/flat", Fingerprint: "matrix:abc"},
		{Type: TypeResult, Key: "matrix/gen-001/mesi/flat", Data: json.RawMessage(`{"x":1}`), Spans: []*obs.Span{{Name: "job"}}},
		{Type: TypeResult, Key: "k", Err: "boom", Retryable: true},
		{Type: TypePing},
		{Type: TypePong},
		{Type: TypeShutdown},
	}
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := a.Write(f); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for _, want := range frames {
		got, err := b.Read()
		if err != nil {
			t.Fatalf("read %q: %v", want.Type, err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Errorf("frame %q did not round-trip:\nsent %s\ngot  %s", want.Type, wb, gb)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnTransientSurvivesWire(t *testing.T) {
	f := &Frame{Type: TypeResult, Key: "k", Err: "flaky", Retryable: true}
	if err := frameError(f); !isTransient(err) {
		t.Errorf("retryable frame error lost its transience: %v", err)
	}
	f.Retryable = false
	if err := frameError(f); isTransient(err) {
		t.Errorf("non-retryable frame error became transient: %v", err)
	}
	if err := frameError(&Frame{Type: TypeResult, Key: "k"}); err != nil {
		t.Errorf("success frame produced error %v", err)
	}
}

// TestConnMangledFrame pins the worker.send chaos contract: a mangled
// payload keeps a valid length prefix but fails to decode, so the
// coordinator sees a protocol error (dead worker), not a hang.
func TestConnMangledFrame(t *testing.T) {
	a, b := pipeConn()
	go a.writeMangled(&Frame{Type: TypeResult, Key: "k", Data: json.RawMessage(`{"x":1}`)})
	_, err := b.Read()
	if err == nil {
		t.Fatal("mangled frame decoded cleanly")
	}
	if err == io.EOF {
		t.Fatal("mangled frame read as clean EOF")
	}
}

func TestConnRejectsBadLengths(t *testing.T) {
	for name, hdr := range map[string]uint32{
		"zero":     0,
		"oversize": MaxFrame + 1,
	} {
		var buf bytes.Buffer
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], hdr)
		buf.Write(b[:])
		c := NewConn(&buf, io.Discard)
		if _, err := c.Read(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s length: got err %v, want out-of-range", name, err)
		}
	}
}

func TestConnEOFSemantics(t *testing.T) {
	// Clean close between frames is io.EOF...
	c := NewConn(bytes.NewReader(nil), io.Discard)
	if _, err := c.Read(); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	// ...but a truncated frame is a real error: the peer died mid-send.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	c = NewConn(&buf, io.Discard)
	if _, err := c.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated frame: got %v, want mid-frame error", err)
	}
}

func TestConnRejectsOversizeWrite(t *testing.T) {
	c := NewConn(bytes.NewReader(nil), io.Discard)
	big := json.RawMessage(`"` + strings.Repeat("x", MaxFrame) + `"`)
	if err := c.Write(&Frame{Type: TypeResult, Data: big}); err == nil {
		t.Error("oversize frame written without error")
	}
}
