package fabric

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"falseshare/internal/experiments"
	"falseshare/internal/obs"
)

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if c.Schema != experiments.CellSchema {
		t.Fatalf("new cache schema = %q, want %q", c.Schema, experiments.CellSchema)
	}
	data := json.RawMessage(`{"miss_rate":0.25}`)
	spans := []*obs.Span{{Name: "job:matrix/gen-001"}}
	if _, _, ok := c.Get("matrix:fp1"); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put("matrix:fp1", "matrix/gen-001", data, spans); err != nil {
		t.Fatal(err)
	}
	got, gotSpans, ok := c.Get("matrix:fp1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, data) {
		t.Errorf("data = %s, want %s", got, data)
	}
	if len(gotSpans) != 1 || gotSpans[0].Name != "job:matrix/gen-001" {
		t.Errorf("spans did not round-trip: %+v", gotSpans)
	}
	// A different fingerprint stays a miss.
	if _, _, ok := c.Get("matrix:fp2"); ok {
		t.Error("hit for a fingerprint never stored")
	}
}

// TestCacheSchemaBumpForcesRecomputation is the satellite-6 contract:
// the stage version string is part of every cache key, so bumping it
// invalidates everything at once — no stale cells survive a format or
// semantics change.
func TestCacheSchemaBumpForcesRecomputation(t *testing.T) {
	dir := t.TempDir()
	v1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Put("matrix:fp1", "k", json.RawMessage(`1`), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := v1.Get("matrix:fp1"); !ok {
		t.Fatal("v1 miss after Put")
	}

	v2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	v2.Schema = experiments.CellSchema + "-bumped"
	if _, _, ok := v2.Get("matrix:fp1"); ok {
		t.Fatal("bumped schema served a stale v1 entry")
	}
	// The bumped run recomputes and stores under the new key without
	// disturbing the old one: both generations coexist.
	if err := v2.Put("matrix:fp1", "k", json.RawMessage(`2`), nil); err != nil {
		t.Fatal(err)
	}
	if d, _, ok := v1.Get("matrix:fp1"); !ok || !bytes.Equal(d, json.RawMessage(`1`)) {
		t.Errorf("v1 entry disturbed by v2 Put: ok=%v data=%s", ok, d)
	}
	if d, _, ok := v2.Get("matrix:fp1"); !ok || !bytes.Equal(d, json.RawMessage(`2`)) {
		t.Errorf("v2 entry wrong: ok=%v data=%s", ok, d)
	}
}

// TestCacheCorruptEntryIsMiss pins Get's failure posture: a torn or
// tampered entry costs one recomputation, never an error.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("matrix:fp1", "k", json.RawMessage(`1`), nil); err != nil {
		t.Fatal(err)
	}
	var files []string
	filepath.Walk(dir, func(p string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			files = append(files, p)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("expected 1 entry file, found %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("matrix:fp1"); ok {
		t.Error("corrupt entry served as a hit")
	}
	// The corruption is dropped from disk and visible in counters,
	// not silently re-read forever.
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt entry not dropped from disk")
	}
	if n := c.Counters().CorruptDropped; n != 1 {
		t.Errorf("CorruptDropped = %d, want 1", n)
	}
	// An entry whose recorded fingerprint disagrees with its address
	// (collision, manual tampering) is also a miss.
	b, _ := json.Marshal(map[string]any{"schema": c.Schema, "key": "matrix:other", "data": json.RawMessage(`1`)})
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("matrix:fp1"); ok {
		t.Error("entry with mismatched fingerprint served as a hit")
	}
}

func TestCacheNilAndEmptyFingerprint(t *testing.T) {
	var c *Cache
	if _, _, ok := c.Get("fp"); ok {
		t.Error("nil cache hit")
	}
	if err := c.Put("fp", "k", nil, nil); err != nil {
		t.Errorf("nil cache Put: %v", err)
	}
	real, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Unfingerprinted cells (compilecost: timing must not be cached)
	// never enter the cache.
	if err := real.Put("", "k", json.RawMessage(`1`), nil); err != nil {
		t.Errorf("empty-fingerprint Put: %v", err)
	}
	if _, _, ok := real.Get(""); ok {
		t.Error("empty-fingerprint Get hit")
	}
}
