//go:build linux

package fabric

import (
	"os/exec"
	"syscall"
)

// setProcAttr arranges for a spawned worker to die with its
// coordinator: PDEATHSIG delivers SIGKILL to the worker when the
// parent thread exits, the kernel-level backstop behind the
// second-SIGINT reap — even a coordinator killed with SIGKILL leaves
// no orphaned workers.
func setProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
