package experiments

import (
	"context"
	"fmt"
	"strings"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/sim/ksr"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Curve is one program version's speedup curve.
type Curve struct {
	Program  string
	Version  Version
	Counts   []int
	Speedup  []float64
	Cycles   []float64
	MaxSpeed float64
	MaxAt    int
}

// sweepJobs enumerates every (version × processor count) execution a
// benchmark's Figure 4 curves need — the baseline uniprocessor run
// first, then each version across cfg.SweepCounts — and returns the
// assembler that turns the results, indexed like the jobs, back into
// curves. Splitting enumeration from assembly lets Figure4 and Table3
// fan the sweeps of *all* their benchmarks into one pool.
func sweepJobs(b *workload.Benchmark, cfg Config, machine ksr.Config) ([]pool.Job[*ksr.Result], func([]*ksr.Result) []Curve) {
	if machine.StepBudget == 0 {
		machine.StepBudget = cfg.StepBudget
	}
	execute := func(ver Version, p int) pool.Job[*ksr.Result] {
		key := fmt.Sprintf("fig4/%s/%s/p%d", b.Name, ver, p)
		return pool.Job[*ksr.Result]{
			Key: key,
			Fingerprint: fingerprint("fig4",
				"prog="+b.Name, "ver="+string(ver), fmt.Sprintf("procs=%d", p),
				fmt.Sprintf("machine=%+v", machine),
				fmt.Sprintf("scale=%d", cfg.Scale), fmt.Sprintf("verify=%v", cfg.Verify),
				"src="+srcHash(verSource(b, ver, cfg.Scale))),
			Run: func(ctx context.Context) (*ksr.Result, error) {
				prog, err := cfg.buildProgram(ctx, key, b, ver, p, machine.BlockSize, transform.Config{})
				if err != nil {
					return nil, fmt.Errorf("fig4 %s/%s: %w", b.Name, ver, err)
				}
				r, err := ksr.ExecuteCtx(ctx, prog, machine)
				if err != nil {
					return nil, fmt.Errorf("fig4 %s/%s at %d procs: %w", b.Name, ver, p, err)
				}
				return r, nil
			},
		}
	}

	// Job 0: uniprocessor run of the unoptimized (or original)
	// version — the denominator of every speedup.
	jobs := []pool.Job[*ksr.Result]{execute(Baseline(b), 1)}
	for _, ver := range Versions(b) {
		for _, p := range cfg.SweepCounts {
			jobs = append(jobs, execute(ver, p))
		}
	}

	assemble := func(results []*ksr.Result) []Curve {
		base := results[0].Cycles
		var curves []Curve
		i := 1
		for _, ver := range Versions(b) {
			rs := results[i : i+len(cfg.SweepCounts)]
			i += len(cfg.SweepCounts)
			c := Curve{Program: b.Name, Version: ver, Counts: cfg.SweepCounts}
			for _, r := range rs {
				c.Cycles = append(c.Cycles, r.Cycles)
			}
			c.Speedup = ksr.SpeedupCurve(rs, base)
			c.MaxSpeed, c.MaxAt = ksr.MaxSpeedup(cfg.SweepCounts, c.Speedup)
			curves = append(curves, c)
		}
		return curves
	}
	return jobs, assemble
}

// SpeedupCurves computes the speedup curves of every available version
// of one benchmark over the configured processor counts, relative to
// the uniprocessor execution of the baseline (unoptimized) version —
// exactly as the paper's Figure 4 plots them. The sweep's executions
// fan out across cfg.Workers.
func SpeedupCurves(b *workload.Benchmark, cfg Config, machine ksr.Config) ([]Curve, error) {
	jobs, assemble := sweepJobs(b, cfg, machine)
	results, err := runJobs(cfg, "fig4:"+b.Name, jobs)
	if err != nil {
		// A speedup curve is meaningless with holes (every point is
		// relative to the baseline run), so a single benchmark's sweep
		// is all or nothing.
		return nil, partial(err, len(jobs))
	}
	return assemble(results), nil
}

// benchCurves fans the sweeps of several benchmarks into one pool and
// assembles per-benchmark curves, preserving the given order. A
// benchmark that lost any sweep job to a failure gets nil curves —
// curves are relative measurements, so one hole invalidates the whole
// benchmark — while unaffected benchmarks assemble normally. The
// failed keys come back in the *Partial error.
func benchCurves(name string, benches []*workload.Benchmark, cfg Config, machine ksr.Config) ([][]Curve, error) {
	var jobs []pool.Job[*ksr.Result]
	type slice struct {
		lo, hi   int
		assemble func([]*ksr.Result) []Curve
	}
	slices := make([]slice, len(benches))
	for i, b := range benches {
		js, assemble := sweepJobs(b, cfg, machine)
		slices[i] = slice{lo: len(jobs), hi: len(jobs) + len(js), assemble: assemble}
		jobs = append(jobs, js...)
	}
	results, err := runJobs(cfg, name, jobs)
	out := make([][]Curve, len(benches))
	for i, s := range slices {
		complete := true
		for _, r := range results[s.lo:s.hi] {
			if r == nil {
				complete = false
				break
			}
		}
		if complete {
			out[i] = s.assemble(results[s.lo:s.hi])
		}
	}
	return out, partial(err, len(jobs))
}

// Figure4 regenerates the paper's Figure 4: speedup curves for the
// three representative programs (Raytrace — compiler and programmer
// comparable; Fmm — programmer efforts bring little gain; Pverify —
// in between). All three programs' sweeps share one job pool.
func Figure4(cfg Config, machine ksr.Config) (map[string][]Curve, error) {
	names := []string{"raytrace", "fmm", "pverify"}
	benches := make([]*workload.Benchmark, len(names))
	for i, name := range names {
		b := workload.Get(name)
		if b == nil {
			return nil, fmt.Errorf("fig4: %s not registered", name)
		}
		benches[i] = b
	}
	curves, err := benchCurves("fig4", benches, cfg, machine)
	if err != nil && curves == nil {
		return nil, err
	}
	out := map[string][]Curve{}
	for i, name := range names {
		if curves[i] != nil {
			out[name] = curves[i]
		}
	}
	if err != nil && len(out) == 0 {
		return nil, err
	}
	return out, err
}

// RenderCurves formats speedup curves as aligned columns (one row per
// processor count).
func RenderCurves(curves []Curve) string {
	if len(curves) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%s: speedup vs processors (base: uniprocessor unoptimized)\n", curves[0].Program))
	sb.WriteString(fmt.Sprintf("%6s", "procs"))
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf(" %10s", string(c.Version)))
	}
	sb.WriteString("\n")
	for i, p := range curves[0].Counts {
		sb.WriteString(fmt.Sprintf("%6d", p))
		for _, c := range curves {
			sb.WriteString(fmt.Sprintf(" %10.2f", c.Speedup[i]))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("   max")
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf(" %6.2f(%2d)", c.MaxSpeed, c.MaxAt))
	}
	sb.WriteString("\n")
	return sb.String()
}
