package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/core"
	"falseshare/internal/sim/ksr"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Curve is one program version's speedup curve.
type Curve struct {
	Program  string
	Version  Version
	Counts   []int
	Speedup  []float64
	Cycles   []float64
	MaxSpeed float64
	MaxAt    int
}

// SpeedupCurves computes the speedup curves of every available version
// of one benchmark over the configured processor counts, relative to
// the uniprocessor execution of the baseline (unoptimized) version —
// exactly as the paper's Figure 4 plots them.
func SpeedupCurves(b *workload.Benchmark, cfg Config, machine ksr.Config) ([]Curve, error) {
	compileVer := func(ver Version) func(p int) (*core.Program, error) {
		return func(p int) (*core.Program, error) {
			return Program(b, ver, p, cfg.Scale, machine.BlockSize, transform.Config{})
		}
	}

	// Baseline: uniprocessor run of the unoptimized (or original)
	// version.
	baseRes, err := ksr.Sweep([]int{1}, compileVer(Baseline(b)), machine)
	if err != nil {
		return nil, fmt.Errorf("fig4 %s baseline: %w", b.Name, err)
	}
	base := baseRes[0].Cycles

	var curves []Curve
	for _, ver := range Versions(b) {
		rs, err := ksr.Sweep(cfg.SweepCounts, compileVer(ver), machine)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s/%s: %w", b.Name, ver, err)
		}
		c := Curve{Program: b.Name, Version: ver, Counts: cfg.SweepCounts}
		for _, r := range rs {
			c.Cycles = append(c.Cycles, r.Cycles)
		}
		c.Speedup = ksr.SpeedupCurve(rs, base)
		c.MaxSpeed, c.MaxAt = ksr.MaxSpeedup(cfg.SweepCounts, c.Speedup)
		curves = append(curves, c)
	}
	return curves, nil
}

// Figure4 regenerates the paper's Figure 4: speedup curves for the
// three representative programs (Raytrace — compiler and programmer
// comparable; Fmm — programmer efforts bring little gain; Pverify —
// in between).
func Figure4(cfg Config, machine ksr.Config) (map[string][]Curve, error) {
	out := map[string][]Curve{}
	for _, name := range []string{"raytrace", "fmm", "pverify"} {
		b := workload.Get(name)
		if b == nil {
			return nil, fmt.Errorf("fig4: %s not registered", name)
		}
		curves, err := SpeedupCurves(b, cfg, machine)
		if err != nil {
			return nil, err
		}
		out[name] = curves
	}
	return out, nil
}

// RenderCurves formats speedup curves as aligned columns (one row per
// processor count).
func RenderCurves(curves []Curve) string {
	if len(curves) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%s: speedup vs processors (base: uniprocessor unoptimized)\n", curves[0].Program))
	sb.WriteString(fmt.Sprintf("%6s", "procs"))
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf(" %10s", string(c.Version)))
	}
	sb.WriteString("\n")
	for i, p := range curves[0].Counts {
		sb.WriteString(fmt.Sprintf("%6d", p))
		for _, c := range curves {
			sb.WriteString(fmt.Sprintf(" %10.2f", c.Speedup[i]))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("   max")
	for _, c := range curves {
		sb.WriteString(fmt.Sprintf(" %6.2f(%2d)", c.MaxSpeed, c.MaxAt))
	}
	sb.WriteString("\n")
	return sb.String()
}
