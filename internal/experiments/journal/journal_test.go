package journal

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/obs"
)

type cell struct {
	Prog  string `json:"prog"`
	Miss  int64  `json:"miss"`
	Ratio float64
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := cell{Prog: "maxflow", Miss: 12345, Ratio: 1.5}
	if err := j.Append("fig3/maxflow/N/b128", want, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j2.Len())
	}
	raw, _, ok := j2.Lookup("fig3/maxflow/N/b128")
	if !ok {
		t.Fatal("entry missing after reopen")
	}
	var got cell
	if err := jsonUnmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestJournalLastEntryWins(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append("k", cell{Miss: int64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	raw, _, ok := j2.Lookup("k")
	if !ok {
		t.Fatal("entry missing")
	}
	var got cell
	if err := jsonUnmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Miss != 2 {
		t.Errorf("last entry should win: got miss=%d, want 2", got.Miss)
	}
	if j2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (dedup)", j2.Len())
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("good", cell{Miss: 7}, nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a run killed mid-append: a partial final line.
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","data":{"mi`)
	f.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not prevent open: %v", err)
	}
	defer j2.Close()
	if j2.Torn() != 1 {
		t.Errorf("Torn = %d, want 1", j2.Torn())
	}
	if _, _, ok := j2.Lookup("good"); !ok {
		t.Error("intact entry lost")
	}
	if _, _, ok := j2.Lookup("torn"); ok {
		t.Error("torn entry surfaced")
	}
	// The journal stays appendable after a torn tail: the next entry
	// starts on its own line only if the torn line is terminated — it
	// is not, so the appended line merges with the torn prefix. That
	// costs exactly one more skipped line on the following open, never
	// a lost complete entry.
	if err := j2.Append("after", cell{Miss: 9}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(fmt.Sprintf("k%02d", i), cell{Miss: int64(i)}, nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("Len = %d, want %d", j2.Len(), n)
	}
	for i := 0; i < n; i++ {
		raw, _, ok := j2.Lookup(fmt.Sprintf("k%02d", i))
		if !ok {
			t.Fatalf("k%02d missing", i)
		}
		var got cell
		if err := jsonUnmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Miss != int64(i) {
			t.Errorf("k%02d: miss = %d", i, got.Miss)
		}
	}
}

func TestJournalSpanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spans := []*obs.Span{{
		Name:     "measure",
		Wall:     3 * time.Millisecond,
		Counters: map[string]int64{"instrs": 42},
		Children: []*obs.Span{{Name: "vm", Counters: map[string]int64{"refs": 7}}},
	}}
	if err := j.Append("k", cell{}, spans); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, got, ok := j2.Lookup("k")
	if !ok {
		t.Fatal("entry missing")
	}
	if len(got) != 1 || got[0].Name != "measure" || got[0].Counters["instrs"] != 42 {
		t.Fatalf("span lost in round trip: %+v", got)
	}
	if len(got[0].Children) != 1 || got[0].Children[0].Counters["refs"] != 7 {
		t.Fatalf("child span lost: %+v", got[0].Children)
	}
	if got[0].Wall != 3*time.Millisecond {
		t.Errorf("wall = %v, want 3ms", got[0].Wall)
	}
}

// TestWrapCheckpointsAndResumes: a wrapped job runs once, and a
// second pool run over the same journal returns the checkpointed
// result without re-running — with the original span subtree grafted
// into the new run's manifest.
func TestWrapCheckpointsAndResumes(t *testing.T) {
	dir := t.TempDir()
	var runs int
	mk := func(j *Journal) []pool.Job[cell] {
		return WrapAll(j, []pool.Job[cell]{{
			Key: "fig3/maxflow/N/b128",
			Run: func(ctx context.Context) (cell, error) {
				runs++
				sp := obs.Begin("measure")
				sp.Set("instrs", 42)
				sp.End()
				return cell{Prog: "maxflow", Miss: 11}, nil
			},
		}})
	}

	runPool := func(j *Journal) (cell, []*obs.Span) {
		rec := obs.NewRecorder()
		prev := obs.BindGoroutine(rec)
		defer obs.BindGoroutine(prev)
		res, err := pool.Run("t", 1, mk(j))
		if err != nil {
			t.Fatal(err)
		}
		return res[0], rec.Spans()
	}

	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, firstSpans := runPool(j)
	j.Close()
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}

	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second, secondSpans := runPool(j2)
	if runs != 1 {
		t.Fatalf("resume re-ran the job (runs = %d)", runs)
	}
	if first != second {
		t.Errorf("resumed result differs: %+v vs %+v", first, second)
	}
	scrub(firstSpans)
	scrub(secondSpans)
	if !reflect.DeepEqual(firstSpans, secondSpans) {
		t.Errorf("span trees differ:\nfirst:  %+v\nsecond: %+v", firstSpans, secondSpans)
	}
}

// TestWrapStaleCheckpoint: a checkpoint that fails to unmarshal into
// the job's result type is treated as a miss, not an error.
func TestWrapStaleCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append("k", "a plain string, not a cell", nil); err != nil {
		t.Fatal(err)
	}
	ran := false
	job := Wrap(j, pool.Job[cell]{Key: "k", Run: func(ctx context.Context) (cell, error) {
		ran = true
		return cell{Miss: 5}, nil
	}})
	got, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("stale checkpoint should fall through to the job")
	}
	if got.Miss != 5 {
		t.Errorf("miss = %d, want 5", got.Miss)
	}
}

// TestWrapDoesNotCheckpointFailures: a failed job leaves no journal
// entry, so a resumed run retries it.
func TestWrapDoesNotCheckpointFailures(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	job := Wrap(j, pool.Job[cell]{Key: "k", Run: func(ctx context.Context) (cell, error) {
		return cell{}, fmt.Errorf("boom")
	}})
	if _, err := job.Run(context.Background()); err == nil {
		t.Fatal("want error")
	}
	if j.Len() != 0 {
		t.Errorf("failure was checkpointed (Len = %d)", j.Len())
	}
}

// scrub zeroes timing fields so tree comparisons see only structure
// and deterministic counters.
func scrub(spans []*obs.Span) {
	for _, s := range spans {
		s.Wall = 0
		s.Started = time.Time{}
		scrub(s.Children)
	}
}

func jsonUnmarshal(raw []byte, v any) error { return json.Unmarshal(raw, v) }
