// Package journal checkpoints experiment results so an interrupted
// run can resume without re-simulating finished cells.
//
// The format is append-only JSONL: one line per completed job, keyed
// by the job's deterministic pool key ("fig3/maxflow/N/b128"). Each
// entry stores both the job's result (as JSON) and the observability
// span subtree it recorded, so a resumed run reconstructs the same
// manifest — byte-identical modulo wall-clock fields — as an
// uninterrupted one. Appends are flushed per entry; a run killed
// mid-write leaves at most one torn final line, which Open tolerates
// and discards. Duplicate keys are legal (a cell re-run on purpose):
// the last entry wins.
package journal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/obs"
)

// FileName is the journal file inside a run directory.
const FileName = "journal.jsonl"

// entry is one JSONL line.
type entry struct {
	Key   string          `json:"key"`
	Data  json.RawMessage `json:"data"`
	Spans []*obs.Span     `json:"spans,omitempty"`
}

// Journal is an append-only result checkpoint. All methods are safe
// for concurrent use (pool workers append from many goroutines).
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	entries map[string]*entry
	path    string
	torn    int
}

// Open opens (creating as needed) the journal in dir and loads every
// complete entry already present. Unparsable lines — a torn tail from
// a killed run, or stray corruption — are counted and skipped, never
// fatal: losing one checkpoint costs one re-run, while refusing to
// open would cost the whole resume.
func Open(dir string) (*Journal, error) {
	return OpenFile(dir, FileName)
}

// OpenFile is Open with an explicit file name inside dir. The
// distributed fabric gives every worker process its own journal file
// ("journal-worker-3.jsonl") in the shared run directory, so worker
// appends never contend and a dead worker's checkpoints survive it.
func OpenFile(dir, file string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, file)
	j := &Journal{entries: map[string]*entry{}, path: path}
	if b, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(b, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e entry
			if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
				j.torn++
				continue
			}
			j.entries[e.Key] = &e
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// Path returns the journal file path (for resume hints).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Len reports the number of distinct checkpointed keys.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Torn reports how many unparsable lines Open skipped.
func (j *Journal) Torn() int {
	if j == nil {
		return 0
	}
	return j.torn
}

// Has reports whether key is checkpointed.
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Each visits every checkpointed entry, in no particular order. The
// fabric uses it to fold a dead worker's journal into the main one.
func (j *Journal) Each(fn func(key string, data json.RawMessage, spans []*obs.Span)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	entries := make([]*entry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, j.entries[k])
	}
	j.mu.Unlock()
	for i, k := range keys {
		fn(k, entries[i].Data, entries[i].Spans)
	}
}

// Lookup returns the checkpointed result JSON and span subtree for
// key, if present.
func (j *Journal) Lookup(key string) (json.RawMessage, []*obs.Span, bool) {
	if j == nil {
		return nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return nil, nil, false
	}
	return e.Data, e.Spans, true
}

// Append checkpoints one completed job: the line is written and
// flushed to the OS before Append returns, so a crash immediately
// after loses nothing.
func (j *Journal) Append(key string, data any, spans []*obs.Span) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("journal: marshal %s: %w", key, err)
	}
	e := &entry{Key: key, Data: raw, Spans: spans}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: marshal %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: append %s: %w", key, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: append %s: %w", key, err)
	}
	j.entries[key] = e
	return nil
}

// Close flushes and closes the journal file. Lookup keeps working on
// a closed journal; Append does not.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Wrap gives a pool job checkpoint/resume behavior. On a journal hit
// the stored result is returned without running the job, and the
// stored span subtree is adopted into the job's recorder so the
// manifest keeps the original run's tree. On a miss the job runs,
// and a successful result is checkpointed together with the spans it
// recorded. A nil journal wraps to the job unchanged.
//
// T must round-trip through encoding/json: the resumed value is the
// unmarshalled checkpoint, not the original in-memory one.
func Wrap[T any](j *Journal, job pool.Job[T]) pool.Job[T] {
	if j == nil {
		return job
	}
	run := job.Run
	key := job.Key
	job.Run = func(ctx context.Context) (T, error) {
		if raw, spans, ok := j.Lookup(key); ok {
			var v T
			if err := json.Unmarshal(raw, &v); err != nil {
				// A checkpoint that no longer matches the result type
				// (schema drift between runs) is treated as a miss.
				obs.Logf("journal: stale checkpoint for %s (%v); re-running", key, err)
			} else {
				// Graft the original run's span subtree so the resumed
				// manifest is identical to the uninterrupted one. No
				// extra "cache hit" span — that would make the trees
				// diverge, which resume promises not to do.
				obs.Current().Adopt(spans)
				obs.Logf("journal: resume hit for %s", key)
				return v, nil
			}
		}
		v, err := run(ctx)
		if err != nil {
			return v, err
		}
		if aerr := j.Append(key, v, obs.Current().Spans()); aerr != nil {
			// The result is valid even if checkpointing it failed; a
			// lost checkpoint only costs a re-run on resume.
			obs.Logf("journal: %v", aerr)
		}
		return v, err
	}
	return job
}

// WrapAll applies Wrap to every job.
func WrapAll[T any](j *Journal, jobs []pool.Job[T]) []pool.Job[T] {
	if j == nil {
		return jobs
	}
	out := make([]pool.Job[T], len(jobs))
	for i, job := range jobs {
		out[i] = Wrap(j, job)
	}
	return out
}
