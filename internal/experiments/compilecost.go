package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"falseshare/internal/cfg"
	"falseshare/internal/core"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
	"falseshare/internal/workload"
)

// CompileCostRow reports restructuring cost for one benchmark. The
// paper's claim (§3.1/§7): the false-sharing analyses and
// transformations added only ~5% to the restructurer's total running
// time, the rest being conventional compiler work (parsing, type
// checking, graph construction).
type CompileCostRow struct {
	Program string
	// Baseline is the conventional front-end time (parse + check +
	// CFG/call graph construction).
	Baseline time.Duration
	// Full is the complete restructuring time (baseline + the paper's
	// analyses + heuristics + rewrites + re-check + layout).
	Full time.Duration
}

// Overhead returns the added fraction: (Full-Baseline)/Full.
func (r CompileCostRow) Overhead() float64 {
	if r.Full <= 0 {
		return 0
	}
	return float64(r.Full-r.Baseline) / float64(r.Full)
}

// CompileCost measures front-end vs full-restructurer time over the
// suite with ecfg's scale, workers, policy and journal, repeating
// each measurement and keeping the minimum (the usual noise-robust
// choice for microtimings). One job per benchmark; the minimum-of-reps
// absorbs most of the scheduling noise concurrent timing adds, but
// the steadiest numbers come from ecfg.Workers == 1.
//
// When some benchmarks fail (and ecfg.Policy keeps going), the
// surviving rows are returned with a *Partial error naming the rest.
// Note that journaled timings are replayed verbatim on resume — cheap
// and deterministic, but not fresh measurements.
func CompileCost(ecfg Config, nprocs, reps int) ([]CompileCostRow, error) {
	if reps < 1 {
		reps = 3
	}
	scale := ecfg.Scale
	var jobs []pool.Job[CompileCostRow]
	for _, b := range workload.All() {
		jobs = append(jobs, pool.Job[CompileCostRow]{
			Key: "compilecost/" + b.Name,
			Run: func(ctx context.Context) (CompileCostRow, error) {
				src := b.Source(scale)
				row := CompileCostRow{Program: b.Name}

				base, err := minTime(reps, func() error {
					f, err := parser.Parse(src)
					if err != nil {
						return err
					}
					info, err := types.Check(f)
					if err != nil {
						return err
					}
					cfg.BuildProgram(f)
					_ = info
					return nil
				})
				if err != nil {
					return row, fmt.Errorf("compilecost %s baseline: %w", b.Name, err)
				}
				row.Baseline = base

				full, err := minTime(reps, func() error {
					_, err := core.RestructureCtx(ctx, src, core.Options{Nprocs: nprocs, BlockSize: 128})
					return err
				})
				if err != nil {
					return row, fmt.Errorf("compilecost %s full: %w", b.Name, err)
				}
				row.Full = full
				return row, nil
			},
		})
	}
	rows, err := runJobs(ecfg, "compilecost", jobs)
	if err == nil {
		return rows, nil
	}
	failed := failedKeys(err)
	var ok []CompileCostRow
	for i, j := range jobs {
		if !failed[j.Key] {
			ok = append(ok, rows[i])
		}
	}
	return ok, partial(err, len(jobs))
}

func minTime(reps int, f func() error) (time.Duration, error) {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// RenderCompileCost formats the rows.
func RenderCompileCost(rows []CompileCostRow) string {
	var sb strings.Builder
	sb.WriteString("Compile cost: conventional front end vs full restructuring\n")
	sb.WriteString(fmt.Sprintf("%-11s %12s %12s %10s\n", "program", "front end", "restructure", "added"))
	var totB, totF time.Duration
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %12s %12s %9.1f%%\n",
			r.Program, r.Baseline.Round(time.Microsecond), r.Full.Round(time.Microsecond), 100*r.Overhead()))
		totB += r.Baseline
		totF += r.Full
	}
	agg := CompileCostRow{Baseline: totB, Full: totF}
	sb.WriteString(fmt.Sprintf("%-11s %12s %12s %9.1f%%  (paper: analyses were ~5%% of the restructurer)\n",
		"total", totB.Round(time.Microsecond), totF.Round(time.Microsecond), 100*agg.Overhead()))
	return sb.String()
}
