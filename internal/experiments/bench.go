package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"falseshare/internal/core"
	"falseshare/internal/obs"
	"falseshare/internal/sim/cache"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

// BenchSchema identifies the BENCH_sim.json format. v2 added the
// wide-machine synthetic cells (program "synthetic", BenchWideProcs ×
// 64-byte blocks) proving the multi-word sharer directory holds the
// 12-processor ns/ref band out to 1024 processors.
const BenchSchema = "falseshare/bench/v2"

// BenchPrograms is the fixed workload matrix the -bench mode replays:
// the three trace-heavy benchmarks of Table 1.
var BenchPrograms = []string{"maxflow", "mp3d", "pverify"}

// BenchBlocks are the block sizes of the -bench matrix.
var BenchBlocks = []int64{16, 64, 128, 256}

// BenchWideProcs is the processor axis of the wide-machine cells: the
// paper-scale widths (the KSR2 discussion targets machines far beyond
// 64 processors) plus the 12-processor anchor the trajectory compares
// them against. Every width replays the same seeded synthetic
// workload shape at the benchWideBlock block size.
var BenchWideProcs = []int{12, 128, 256, 1024}

// benchWideBlock fixes the wide cells' block size; benchWideRefs
// sizes their traces. The trace weak-scales — at least benchWideMin
// references, at least benchWidePerProc per processor — so every
// width replays the same per-processor work and the cold-start
// fraction stays constant across the axis instead of drowning the
// wide cells in first-touch misses.
const (
	benchWideBlock   = 64
	benchWideMin     = 4 << 20
	benchWidePerProc = 1 << 15
)

func benchWideRefs(nprocs int) int {
	if n := nprocs * benchWidePerProc; n > benchWideMin {
		return n
	}
	return benchWideMin
}

// benchWideTrace builds the deterministic wide-machine workload the
// synthetic cells replay. It is shaped like real trace-driven replay:
// processors issue in round-robin quanta of 64 consecutive references
// (trace files interleave per-CPU chunks, not single references).
// Each processor mostly works a private hot region packed 192 bytes
// from its neighbors', so boundary blocks are falsely shared between
// adjacent processors — the paper's pathology, at an intensity that
// does not depend on the machine width — and the rest of the
// references read a small immutable global region. ~30% of private
// references are writes, with a sprinkle of block-spanning doubles.
// The per-reference work this trace induces is width-invariant by
// construction, so the ns/ref series across BenchWideProcs isolates
// the directory implementation: a coherence path that scans O(procs)
// shows up as a cliff, a vector walk stays flat. The real parc traces
// are generated at 12 processors and never exercise wide sharer
// vectors, which is why the wide cells need a synthetic shape.
func benchWideTrace(seed int64, nprocs, n int) []vm.Ref {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vm.Ref, 0, n)
	const quantum = 256
	for len(out) < n {
		proc := rng.Intn(nprocs)
		for q := 0; q < quantum && len(out) < n; q++ {
			var addr int64
			write := false
			if rng.Intn(10) < 8 { // private hot region, 192 B per proc
				addr = 0x9000 + int64(proc)*192 + rng.Int63n(192)
				write = rng.Intn(10) < 3
			} else { // immutable global region: read-only sharing
				addr = 0x1000 + rng.Int63n(8*1024)
			}
			addr -= addr % 4
			size := int8(4)
			if rng.Intn(8) == 0 {
				size = 8 // spans a block boundary at the right offset
			}
			out = append(out, vm.Ref{Proc: proc, Addr: addr, Size: size, Write: write})
		}
	}
	return out
}

// BenchCell is one (program × block) simulator measurement: the full
// reference trace of the unoptimized program replayed through one
// cache configuration, timed.
type BenchCell struct {
	Program      string  `json:"program"`
	Version      string  `json:"version"`
	Procs        int     `json:"procs"`
	Block        int64   `json:"block"`
	Refs         int64   `json:"refs"`
	WallNs       int64   `json:"wall_ns"`
	NsPerRef     float64 `json:"ns_per_ref"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	MissRate     float64 `json:"miss_rate"`
}

// BenchFigure records the end-to-end wall time of regenerating one
// figure or table (compile + execute + simulate + render inputs).
type BenchFigure struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

// BenchReport is the BENCH_sim.json payload: the simulator-replay
// matrix plus per-figure wall times. Environment-dependent fields are
// limited to the Go release so regenerated baselines diff cleanly.
type BenchReport struct {
	Schema      string        `json:"schema"`
	GoVersion   string        `json:"go_version"`
	Scale       int           `json:"scale"`
	Cells       []BenchCell   `json:"cells"`
	Figures     []BenchFigure `json:"figures"`
	TotalWallNs int64         `json:"total_wall_ns"`
}

// Bench replays the fixed workload matrix through the cache simulator
// and times the figure/table pipelines, producing the trajectory
// numbers future PRs compare against. Programs and blocks default to
// BenchPrograms/BenchBlocks when nil. Each cell runs under an obs span
// carrying refs/wall_ns/allocs counters, so a -reportdir manifest
// records the same numbers as the JSON report.
func Bench(cfg Config, programs []string, blocks []int64) (*BenchReport, error) {
	if programs == nil {
		programs = BenchPrograms
	}
	if blocks == nil {
		blocks = BenchBlocks
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	procs := cfg.Fig3Procs
	if procs <= 0 {
		procs = 12
	}
	rep := &BenchReport{Schema: BenchSchema, GoVersion: runtime.Version(), Scale: cfg.Scale}
	start := time.Now()

	for _, name := range programs {
		b := workload.Get(name)
		if b == nil {
			return nil, fmt.Errorf("experiments: bench: unknown benchmark %q", name)
		}
		// Capture the reference trace once per program (the paper's
		// stored-trace methodology), then time pure simulator replays.
		// The base source is used directly — the N version where one
		// exists, the programmer version otherwise — matching fssim's
		// -bench behavior.
		ver := VersionN
		if b.BaseIsP() {
			ver = VersionP
		}
		prog, err := core.CompileCtx(ctx, b.Source(cfg.Scale), core.Options{Nprocs: procs, BlockSize: blocks[0]})
		if err != nil {
			return nil, fmt.Errorf("experiments: bench: %s: %w", name, err)
		}
		bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, procs)
		if err != nil {
			return nil, fmt.Errorf("experiments: bench: %s: %w", name, err)
		}
		m := vm.New(bc)
		m.SetContext(ctx)
		if cfg.StepBudget > 0 {
			m.MaxInstrs = cfg.StepBudget
		}
		refs := make([]vm.Ref, 0, 1<<20)
		if err := m.Run(func(r vm.Ref) { refs = append(refs, r) }); err != nil {
			return nil, fmt.Errorf("experiments: bench: %s: %w", name, err)
		}

		for _, blk := range blocks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sim, err := cache.New(cache.DefaultConfig(procs, blk))
			if err != nil {
				return nil, fmt.Errorf("experiments: bench: %s block %d: %w", name, blk, err)
			}
			sp := obs.Begin(fmt.Sprintf("bench:%s:b%d", name, blk))
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			for _, r := range refs {
				sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
			}
			wall := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			st := sim.Stats()
			cell := BenchCell{
				Program: name,
				Version: string(ver),
				Procs:   procs,
				Block:   blk,
				Refs:    st.Refs,
				WallNs:  wall.Nanoseconds(),
			}
			if st.Refs > 0 {
				cell.NsPerRef = float64(wall.Nanoseconds()) / float64(st.Refs)
				cell.AllocsPerRef = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Refs)
			}
			cell.MissRate = st.MissRate()
			sp.Set("refs", st.Refs)
			sp.Set("wall_ns", wall.Nanoseconds())
			sp.Set("allocs", int64(ms1.Mallocs-ms0.Mallocs))
			sp.End()
			rep.Cells = append(rep.Cells, cell)
		}
	}

	// Wide-machine cells: the same seeded synthetic workload replayed
	// at every BenchWideProcs width. These are the trajectory's proof
	// that 128–1024-processor configurations run in the same ns/ref
	// band as the 12-processor anchor instead of falling off the old
	// O(procs × assoc) scan cliff.
	for _, wp := range BenchWideProcs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		refs := benchWideTrace(0x51de, wp, benchWideRefs(wp))
		sim, err := cache.New(cache.DefaultConfig(wp, benchWideBlock))
		if err != nil {
			return nil, fmt.Errorf("experiments: bench: wide p%d: %w", wp, err)
		}
		sp := obs.Begin(fmt.Sprintf("bench:synthetic:p%d", wp))
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for _, r := range refs {
			sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		st := sim.Stats()
		cell := BenchCell{
			Program: "synthetic",
			Version: "W",
			Procs:   wp,
			Block:   benchWideBlock,
			Refs:    st.Refs,
			WallNs:  wall.Nanoseconds(),
		}
		if st.Refs > 0 {
			cell.NsPerRef = float64(wall.Nanoseconds()) / float64(st.Refs)
			cell.AllocsPerRef = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Refs)
		}
		cell.MissRate = st.MissRate()
		sp.Set("refs", st.Refs)
		sp.Set("wall_ns", wall.Nanoseconds())
		sp.Set("allocs", int64(ms1.Mallocs-ms0.Mallocs))
		sp.End()
		rep.Cells = append(rep.Cells, cell)
	}

	// End-to-end figure/table pipelines, timed whole: these are the
	// wall times a contributor actually waits on when regenerating the
	// evaluation.
	figures := []struct {
		name string
		fn   func() error
	}{
		{"fig3", func() error { _, err := Figure3(cfg); return err }},
		{"table2", func() error { _, err := Table2(cfg); return err }},
		{"aggregates", func() error { _, err := ComputeAggregates(cfg, 128); return err }},
	}
	for _, f := range figures {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := obs.Begin("bench:" + f.name)
		t0 := time.Now()
		if err := f.fn(); err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: bench: %s: %w", f.name, err)
		}
		wall := time.Since(t0)
		sp.Set("wall_ns", wall.Nanoseconds())
		sp.End()
		rep.Figures = append(rep.Figures, BenchFigure{Name: f.name, WallNs: wall.Nanoseconds()})
	}

	rep.TotalWallNs = time.Since(start).Nanoseconds()
	return rep, nil
}

// WriteBenchReport writes the report as indented JSON (the committed
// BENCH_sim.json baseline format).
func WriteBenchReport(path string, rep *BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderBench formats the report for the terminal.
func RenderBench(rep *BenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulator replay matrix (%s, scale %d):\n\n", rep.GoVersion, rep.Scale)
	fmt.Fprintf(&sb, "%-10s %5s %6s %12s %10s %8s %10s\n",
		"program", "procs", "block", "refs", "ns/ref", "allocs", "missrate")
	for _, c := range rep.Cells {
		fmt.Fprintf(&sb, "%-10s %5d %6d %12d %10.1f %8.4f %9.4f%%\n",
			c.Program, c.Procs, c.Block, c.Refs, c.NsPerRef, c.AllocsPerRef, 100*c.MissRate)
	}
	sb.WriteString("\nFigure pipelines:\n")
	for _, f := range rep.Figures {
		fmt.Fprintf(&sb, "  %-12s %8.2fs\n", f.Name, float64(f.WallNs)/1e9)
	}
	fmt.Fprintf(&sb, "  %-12s %8.2fs\n", "total", float64(rep.TotalWallNs)/1e9)
	return sb.String()
}
