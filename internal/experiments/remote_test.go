package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"falseshare/internal/experiments/journal"
	"falseshare/internal/sim/ksr"
)

// localRunner is an in-process CellRunner: it executes cells straight
// from an Enumeration, exactly like a fabric worker does but without
// crossing a process boundary — the cheapest way to prove runJobs'
// Runner path reassembles results, spans and errors faithfully.
type localRunner struct {
	enum *Enumeration
	down bool // refuse every cell (simulates an unreachable fleet)
}

func (r *localRunner) RunCells(ctx context.Context, section string, reqs []CellRequest) ([]CellResult, error) {
	out := make([]CellResult, len(reqs))
	for i, req := range reqs {
		if r.down {
			out[i] = CellResult{Key: req.Key, Err: errors.New("fleet unreachable")}
			continue
		}
		data, spans, err, ok := r.enum.Run(ctx, req.Key)
		if !ok {
			out[i] = CellResult{Key: req.Key, Err: fmt.Errorf("no cell %q", req.Key)}
			continue
		}
		out[i] = CellResult{Key: req.Key, Data: data, Spans: spans, Err: err}
	}
	return out, nil
}

func remoteTestGrid() (Config, MatrixOptions, SectionSet) {
	cfg := DefaultConfig()
	cfg.Workers = 2
	mopt := MatrixOptions{Workloads: 2, Seed: 7, Procs: 2, Block: 32, ScaleMin: true}
	return cfg, mopt, SectionSet{Sections: []string{"matrix"}, Matrix: mopt}
}

// TestCollectDeterministic: two enumerations of the same spec produce
// the same keys in the same order — the property that lets a worker
// rebuild the coordinator's grid from the shipped spec alone.
func TestCollectDeterministic(t *testing.T) {
	cfg, _, set := remoteTestGrid()
	a, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty enumeration")
	}
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("enumerations differ in size: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key %d differs: %q vs %q", i, ka[i], kb[i])
		}
	}
	for _, k := range ka {
		if !strings.HasPrefix(k, "matrix/") {
			t.Errorf("unexpected key %q", k)
		}
	}
}

// TestCollectSpecRoundTrip: the spec and section set survive JSON (the
// hello frame) without changing the grid.
func TestCollectSpecRoundTrip(t *testing.T) {
	cfg, _, set := remoteTestGrid()
	direct, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}

	sb, err := json.Marshal(cfg.Spec())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	var spec ConfigSpec
	var set2 SectionSet
	if err := json.Unmarshal(sb, &spec); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tb, &set2); err != nil {
		t.Fatal(err)
	}
	wired, err := Collect(spec.Config(), set2)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := direct.Keys(), wired.Keys()
	if len(ka) != len(kb) {
		t.Fatalf("grid changed across the wire: %d vs %d cells", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("key %d changed across the wire: %q vs %q", i, ka[i], kb[i])
		}
	}
}

// TestCollectSectionOverlap: Table 3 re-enumerates Figure 4's sweep
// under the same keys; the enumeration dedups them (first add wins,
// sound because equal keys denote equal work).
func TestCollectSectionOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepCounts = []int{1, 2}
	machine := ksr.DefaultConfig()
	set4 := SectionSet{Sections: []string{"fig4"}, Machine: machine}
	set3 := SectionSet{Sections: []string{"table3"}, Machine: machine}
	both := SectionSet{Sections: []string{"fig4", "table3"}, Machine: machine}
	e4, err := Collect(cfg, set4)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Collect(cfg, set3)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Collect(cfg, both)
	if err != nil {
		t.Fatal(err)
	}
	if eb.Len() >= e4.Len()+e3.Len() {
		t.Errorf("no dedup across fig4+table3: %d cells from %d + %d", eb.Len(), e4.Len(), e3.Len())
	}
	if eb.Len() < e4.Len() || eb.Len() < e3.Len() {
		t.Errorf("union smaller than a member: %d vs %d/%d", eb.Len(), e4.Len(), e3.Len())
	}
}

func TestCollectUnknownSection(t *testing.T) {
	cfg, _, _ := remoteTestGrid()
	if _, err := Collect(cfg, SectionSet{Sections: []string{"fig99"}}); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestEnumerationUnknownKey(t *testing.T) {
	cfg, _, set := remoteTestGrid()
	enum, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := enum.Run(context.Background(), "matrix/no-such-cell"); ok {
		t.Fatal("unknown key executed")
	}
}

// TestRunnerManifestMatchesLocal: routing a driver through a
// CellRunner yields a manifest byte-identical to the plain local run —
// the byte-identity contract at the package boundary, without any
// process machinery.
func TestRunnerManifestMatchesLocal(t *testing.T) {
	cfg, mopt, set := remoteTestGrid()
	local := manifestBytes(t, "matrix", cfg, func() (any, error) { return Matrix(cfg, mopt) })

	enum, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Runner = &localRunner{enum: enum}
	remote := manifestBytes(t, "matrix", rcfg, func() (any, error) { return Matrix(rcfg, mopt) })
	if !bytes.Equal(local, remote) {
		d1, d2 := firstDiff(local, remote)
		t.Errorf("runner manifest differs from local:\n--- local ---\n%s\n--- runner ---\n%s", d1, d2)
	}
}

// TestRunnerJournalShortCircuit: cells checkpointed in the journal
// never reach the runner — a resumed distributed run with every cell
// journaled completes even when the whole fleet is unreachable.
func TestRunnerJournalShortCircuit(t *testing.T) {
	cfg, mopt, set := remoteTestGrid()
	enum, err := Collect(cfg.Spec().Config(), set)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Runner = &localRunner{enum: enum}
	rcfg.Journal = jnl
	want, err := Matrix(rcfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	rcfg2 := cfg
	rcfg2.Runner = &localRunner{down: true}
	rcfg2.Journal = jnl2
	got, err := Matrix(rcfg2, mopt)
	if err != nil {
		t.Fatalf("journal-complete run touched the dead fleet: %v", err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Error("journal-replayed results differ")
	}
}

// TestRunnerNilResultBackfill: a runner that returns (nil, err) — a
// whole-fleet breakdown — must surface a per-cell error for every
// requested cell, never a panic or silent zero results.
func TestRunnerNilResultBackfill(t *testing.T) {
	cfg, mopt, _ := remoteTestGrid()
	rcfg := cfg
	rcfg.Runner = brokenRunner{}
	_, err := Matrix(rcfg, mopt)
	if err == nil {
		t.Fatal("fleet breakdown produced no error")
	}
	if !strings.Contains(err.Error(), "all workers dead") && !strings.Contains(err.Error(), "failed") {
		t.Logf("breakdown error: %v", err)
	}
}

type brokenRunner struct{}

func (brokenRunner) RunCells(ctx context.Context, section string, reqs []CellRequest) ([]CellResult, error) {
	return nil, errors.New("fabric: all workers dead")
}

// TestFingerprintDeterminism pins the cache-key material: stable
// across calls, sensitive to every field, and section-prefixed so a
// cache directory is greppable by experiment.
func TestFingerprintDeterminism(t *testing.T) {
	a := fingerprint("fig3", "prog=maxflow", "procs=12")
	b := fingerprint("fig3", "prog=maxflow", "procs=12")
	if a != b {
		t.Errorf("fingerprint not stable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "fig3:") {
		t.Errorf("fingerprint %q not section-prefixed", a)
	}
	if c := fingerprint("fig3", "prog=maxflow", "procs=16"); c == a {
		t.Error("fingerprint insensitive to a field change")
	}
	if c := fingerprint("table2", "prog=maxflow", "procs=12"); c == a {
		t.Error("fingerprint insensitive to the section")
	}
	// Field-boundary safety: the separator keeps "ab"+"c" distinct
	// from "a"+"bc".
	if fingerprint("s", "ab", "c") == fingerprint("s", "a", "bc") {
		t.Error("fingerprint concatenates fields without separation")
	}
}

// TestEventsRoundTrip: MarkEvents/EventsSince/AdoptEvents carry
// degraded and diag records across (what would be) a process boundary.
func TestEventsRoundTrip(t *testing.T) {
	ResetDegraded()
	defer ResetDegraded()
	mark := MarkEvents()
	if ev := EventsSince(mark); !ev.Empty() {
		t.Fatalf("fresh mark sees events: %+v", ev)
	}
	// What a worker does: record during the cell (AdoptEvents doubles
	// as the recording primitive here), capture the delta after.
	AdoptEvents(CellEvents{Degraded: []DegradeEvent{{Key: "matrix/gen-test", Objects: []string{"obj"}, Details: []string{"d"}}}})
	ev := EventsSince(mark)
	if len(ev.Degraded) != 1 || ev.Degraded[0].Key != "matrix/gen-test" {
		t.Fatalf("EventsSince missed the degrade event: %+v", ev)
	}
	// What the coordinator does: adopt the shipped delta.
	AdoptEvents(ev)
	after := DegradedEvents()
	if len(after) != 2 {
		t.Fatalf("got %d recorded events, want 2 (worker + adopted copy)", len(after))
	}
	got := after[len(after)-1]
	if got.Key != "matrix/gen-test" || len(got.Objects) != 1 || got.Objects[0] != "obj" {
		t.Errorf("adopted event mangled: %+v", got)
	}
}
