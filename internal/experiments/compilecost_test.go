package experiments

import (
	"strings"
	"testing"
)

func TestCompileCost(t *testing.T) {
	rows, err := CompileCost(Config{Scale: 1}, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Full <= 0 {
			t.Errorf("%s: non-positive timings %v %v", r.Program, r.Baseline, r.Full)
		}
		if r.Full < r.Baseline/4 {
			t.Errorf("%s: full restructuring (%v) implausibly below front end (%v)",
				r.Program, r.Full, r.Baseline)
		}
		if o := r.Overhead(); o < -0.5 || o > 1 {
			t.Errorf("%s: overhead %f out of range", r.Program, o)
		}
	}
	out := RenderCompileCost(rows)
	if !strings.Contains(out, "total") || !strings.Contains(out, "maxflow") {
		t.Errorf("render:\n%s", out)
	}
}
