package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"falseshare/internal/core"
	"falseshare/internal/experiments/journal"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
)

// The chaos suite drives the fault-injection harness through the real
// experiment stack: deterministic faults (error, panic, delay) at the
// pool worker, inside the VM run loop, and in the ParTee simulator
// workers, under the keep-going policy. Every case asserts the same
// three things the runner promises: the pool drains cleanly (complete
// per-job accounting, no hang, no leaked goroutine — the race
// detector rides along in CI), the journal holds exactly the cells
// that succeeded, and a resumed run completes the rest and converges
// to the same results as an undisturbed run.

// chaosSource is a small terminating program whose per-process writes
// actually false-share, so the measured counters are non-trivial.
const chaosSource = `
shared int cells[16];
void main() {
    int i;
    i = 0;
    while (i < 3000) {
        cells[pid] = cells[pid] + i;
        i = i + 1;
    }
}
`

// chaosJobs builds n identical compile→run→simulate jobs over the
// chaos program. simWorkers > 1 with several blocks routes the
// measurement through the ParTee fan-out (the trace.partee fault
// point); 1 keeps it on the serial path.
func chaosJobs(blocks []int64, n, simWorkers int) []pool.Job[int64] {
	jobs := make([]pool.Job[int64], n)
	for i := range jobs {
		jobs[i] = pool.Job[int64]{
			Key: fmt.Sprintf("chaos/cell%d", i),
			Run: func(ctx context.Context) (int64, error) {
				prog, err := core.CompileCtx(ctx, chaosSource, core.Options{Nprocs: 4, BlockSize: blocks[0]})
				if err != nil {
					return 0, err
				}
				stats, err := MeasureBlocksCtx(ctx, prog, blocks, simWorkers, 0)
				if err != nil {
					return 0, err
				}
				return stats[0].Refs, nil
			},
		}
	}
	return jobs
}

// TestChaosMatrix: error/panic/delay at each fault point, keep-going,
// with a journal. Failures must be confined to the injected count,
// the journal must checkpoint exactly the survivors, and a resumed
// run (faults off) must finish the rest.
func TestChaosMatrix(t *testing.T) {
	const nJobs = 6
	serialBlocks := []int64{64}
	parBlocks := []int64{16, 32, 64, 128}

	cases := []struct {
		name     string
		spec     string
		blocks   []int64
		simW     int
		wantFail int
	}{
		// Pool-worker faults hit before the job body runs; the match
		// pins the victim, so the failed key is exact.
		{"pool-error", "pool.worker=chaos/cell3:error", serialBlocks, 1, 1},
		{"pool-panic", "pool.worker=chaos/cell3:panic", serialBlocks, 1, 1},
		{"pool-delay", "pool.worker:delay=2ms", serialBlocks, 1, 0},
		// VM faults fire inside Machine.Run; count=1 fails exactly one
		// cell (which one depends on scheduling — that's the point).
		{"vm-error", "vm.run:error:count=1", serialBlocks, 1, 1},
		{"vm-panic", "vm.run:panic:count=1", serialBlocks, 1, 1},
		{"vm-delay", "vm.run:delay=2ms:count=3", serialBlocks, 1, 0},
		// Compiler-stage fault.
		{"core-error", "core.compile:error:count=1", serialBlocks, 1, 1},
		// ParTee faults fire in a simulator worker goroutine; the
		// producer must drain, the job must fail, nothing may hang.
		{"partee-error", "trace.partee=0:error:count=1", parBlocks, 4, 1},
		{"partee-panic", "trace.partee=0:panic:count=1", parBlocks, 4, 1},
		{"partee-delay", "trace.partee:delay=2ms:count=4", parBlocks, 4, 0},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			jnl, err := journal.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Workers: 4,
				Policy:  pool.Policy{FailFast: false},
				Journal: jnl,
			}
			s, err := faultinject.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			faultinject.Enable(s)
			results, err := runJobs(cfg, "chaos", chaosJobs(tc.blocks, nJobs, tc.simW))
			faultinject.Disable()

			if tc.wantFail == 0 {
				if err != nil {
					t.Fatalf("delay fault must not fail jobs: %v", err)
				}
				if jnl.Len() != nJobs {
					t.Fatalf("journal has %d cells, want %d", jnl.Len(), nJobs)
				}
				jnl.Close()
				return
			}

			failures := pool.Failures(err)
			if len(failures) != tc.wantFail {
				t.Fatalf("failures = %d (%v), want %d", len(failures), err, tc.wantFail)
			}
			failedSet := map[string]bool{}
			for _, f := range failures {
				failedSet[f.Key] = true
			}
			// Keep-going: every cell has a definite outcome and the
			// survivors carry real results.
			for i, r := range results {
				key := fmt.Sprintf("chaos/cell%d", i)
				if failedSet[key] {
					continue
				}
				if r <= 0 {
					t.Errorf("%s: surviving cell has empty result %d", key, r)
				}
			}
			// The journal checkpointed exactly the survivors.
			if jnl.Len() != nJobs-tc.wantFail {
				t.Errorf("journal has %d cells, want %d", jnl.Len(), nJobs-tc.wantFail)
			}
			for _, f := range failures {
				if _, _, ok := jnl.Lookup(f.Key); ok {
					t.Errorf("failed cell %s was checkpointed", f.Key)
				}
			}
			jnl.Close()

			// Resume with faults off: only the failed cells re-run, and
			// the final results match an undisturbed run.
			jnl2, err := journal.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer jnl2.Close()
			cfg.Journal = jnl2
			resumed, err := runJobs(cfg, "chaos", chaosJobs(tc.blocks, nJobs, tc.simW))
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			clean, err := runJobs(Config{Workers: 4}, "chaos", chaosJobs(tc.blocks, nJobs, tc.simW))
			if err != nil {
				t.Fatal(err)
			}
			for i := range clean {
				if resumed[i] != clean[i] {
					t.Errorf("cell%d: resumed %d != clean %d", i, resumed[i], clean[i])
				}
			}
		})
	}
}

// TestChaosFailFastDrain: under fail-fast, one injected failure must
// cancel the rest promptly — every remaining cell reports skipped (and
// cancelled), none hangs — while the error still carries the root
// cause.
func TestChaosFailFastDrain(t *testing.T) {
	s, err := faultinject.Parse("pool.worker=chaos/cell0:error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)

	cfg := Config{Workers: 1, Policy: pool.Policy{FailFast: true}}
	done := make(chan error, 1)
	go func() {
		_, err := runJobs(cfg, "chaos", chaosJobs([]int64{64}, 8, 1))
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("fail-fast run did not drain")
	}
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Fatalf("root cause lost: %v", err)
	}
	failures := pool.Failures(err)
	if len(failures) != 8 {
		t.Fatalf("want all 8 cells accounted, got %d", len(failures))
	}
	skipped := 0
	for _, f := range failures[1:] {
		if errors.Is(f.Err, pool.ErrSkipped) {
			skipped++
		}
	}
	if skipped != 7 {
		t.Errorf("want 7 skipped cells after the serial fail-fast failure, got %d", skipped)
	}
}

// TestChaosInterruptedResumeManifest is the acceptance criterion:
// a run interrupted partway (fail-fast cancellation after an injected
// failure) and then resumed from its journal must produce a manifest
// byte-identical — modulo timing fields — to an uninterrupted run.
func TestChaosInterruptedResumeManifest(t *testing.T) {
	cfg := determinismConfig(4)

	// Uninterrupted reference run.
	clean := manifestBytes(t, "fig3", cfg, func() (any, error) { return Figure3(cfg) })

	// Interrupted run: one cell fails, fail-fast cancels the rest.
	dir := t.TempDir()
	jnl, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := faultinject.Parse("pool.worker=fig3/pverify/C/b128:error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	icfg := cfg
	icfg.Journal = jnl
	icfg.Policy = pool.Policy{FailFast: true}
	_, ierr := RunManifest("fsexp", "fig3", ConfigMap(icfg), func() (any, error) { return Figure3(icfg) })
	faultinject.Disable()
	if ierr == nil {
		t.Fatal("interrupted run reported success")
	}
	if !errors.Is(ierr, pool.ErrSkipped) && jnl.Len() == 0 {
		t.Log("note: no cells were skipped — interruption landed late")
	}
	jnl.Close()
	completed := jnl.Len()

	// Resumed run: checkpointed cells replay from the journal, the
	// rest execute fresh.
	jnl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	rcfg := cfg
	rcfg.Journal = jnl2
	resumed := manifestBytes(t, "fig3", rcfg, func() (any, error) { return Figure3(rcfg) })

	if !bytes.Equal(clean, resumed) {
		d1, d2 := firstDiff(clean, resumed)
		t.Errorf("resumed manifest differs from uninterrupted run (%d cells were checkpointed):\n--- clean ---\n%s\n--- resumed ---\n%s",
			completed, d1, d2)
	}
	if jnl2.Len() <= completed && completed > 0 {
		t.Errorf("resume did not checkpoint the remaining cells: %d -> %d", completed, jnl2.Len())
	}
}

// TestMeasureBlocksPanicDrainsParTee is the goroutine-leak regression
// test: when the VM panics between NewParTee and Close, the deferred
// close must still drain and join every simulator goroutine.
func TestMeasureBlocksPanicDrainsParTee(t *testing.T) {
	prog, err := core.Compile(chaosSource, core.Options{Nprocs: 4, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	s, err := faultinject.Parse("vm.run:panic:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)

	before := runtime.NumGoroutine()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the injected VM panic to propagate")
			}
		}()
		MeasureBlocksN(prog, []int64{16, 32, 64, 128}, 4)
	}()

	// The four simulator workers must exit; give the scheduler a
	// moment, then compare against the pre-call count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
