package experiments

import (
	"strings"
	"testing"

	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

func TestVersionsAndBaseline(t *testing.T) {
	pv := workload.Get("pverify")
	if got := Versions(pv); len(got) != 3 || got[0] != VersionN || got[2] != VersionP {
		t.Errorf("pverify versions: %v", got)
	}
	if Baseline(pv) != VersionN {
		t.Errorf("pverify baseline should be N")
	}

	w := workload.Get("water")
	if got := Versions(w); len(got) != 2 || got[0] != VersionC || got[1] != VersionP {
		t.Errorf("water versions: %v", got)
	}
	if Baseline(w) != VersionP {
		t.Errorf("water baseline should be P (no N exists)")
	}
}

func TestProgramErrors(t *testing.T) {
	w := workload.Get("water")
	if _, err := Program(w, VersionN, 4, 1, 128, transform.Config{}); err == nil {
		t.Errorf("water has no N version; Program must fail")
	}
	mf := workload.Get("maxflow")
	if _, err := Program(mf, VersionP, 4, 1, 128, transform.Config{}); err == nil {
		t.Errorf("maxflow has no P version; Program must fail")
	}
	if _, err := Program(mf, Version("Z"), 4, 1, 128, transform.Config{}); err == nil {
		t.Errorf("unknown version must fail")
	}
}

func TestProgramVersionsCompile(t *testing.T) {
	mf := workload.Get("maxflow")
	for _, v := range Versions(mf) {
		prog, err := Program(mf, v, 8, 1, 64, transform.Config{})
		if err != nil {
			t.Fatalf("maxflow %s: %v", v, err)
		}
		if prog.Layout.Nprocs != 8 {
			t.Errorf("%s layout nprocs = %d", v, prog.Layout.Nprocs)
		}
	}
}

// TestMeasureBlocksEmpty: a zero-length block list is a caller bug and
// must be an explicit error, not a silent empty result.
func TestMeasureBlocksEmpty(t *testing.T) {
	mf := workload.Get("maxflow")
	prog, err := Program(mf, VersionN, 4, 1, 64, transform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBlocks(prog, nil); err == nil {
		t.Error("MeasureBlocks(nil blocks) must fail")
	}
	if _, err := MeasureBlocks(prog, []int64{}); err == nil {
		t.Error("MeasureBlocks(empty blocks) must fail")
	} else if !strings.Contains(err.Error(), "no block sizes") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestParallelMeasureBlocksMatchesSerial: the sharded simulators (one
// goroutine per block size, batched ref delivery) must agree with the
// single-goroutine path stat for stat.
func TestParallelMeasureBlocksMatchesSerial(t *testing.T) {
	mf := workload.Get("maxflow")
	prog, err := Program(mf, VersionN, 6, 1, 64, transform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := []int64{16, 32, 64, 128}
	serial, err := MeasureBlocksN(prog, blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := MeasureBlocksN(prog, blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		a, b := serial[i], sharded[i]
		if a.Refs != b.Refs || a.Hits != b.Hits || a.Cold != b.Cold || a.Replace != b.Replace ||
			a.TrueShare != b.TrueShare || a.FalseShare != b.FalseShare ||
			a.Upgrades != b.Upgrades || a.Invalidations != b.Invalidations {
			t.Errorf("block %d: sharded stats differ from serial:\nserial:  %v\nsharded: %v", blocks[i], a, b)
		}
		for p := range a.ProcRefs {
			if a.ProcFS[p] != b.ProcFS[p] || a.ProcTS[p] != b.ProcTS[p] || a.ProcMisses[p] != b.ProcMisses[p] {
				t.Errorf("block %d proc %d: per-proc stats differ", blocks[i], p)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1(rows)
	for _, want := range []string{"maxflow", "N C", "12391", "Rendering of 3-dimensional scene"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
	// Water is C P only.
	for _, r := range rows {
		if r.Program == "water" && r.Versions != "C P" {
			t.Errorf("water versions = %q", r.Versions)
		}
		if r.Program == "pverify" && r.Versions != "N C P" {
			t.Errorf("pverify versions = %q", r.Versions)
		}
	}
}
