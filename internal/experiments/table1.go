package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/workload"
)

// Table1Row describes one benchmark as in the paper's Table 1.
type Table1Row struct {
	Program     string
	Description string
	PaperLines  int
	Versions    string // e.g. "N C P"
}

// Table1 renders the workload inventory.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, b := range workload.All() {
		vers := []string{}
		if b.HasN {
			vers = append(vers, "N")
		}
		vers = append(vers, "C")
		if b.HasP {
			vers = append(vers, "P")
		}
		rows = append(rows, Table1Row{
			Program:     b.Name,
			Description: b.Description,
			PaperLines:  b.PaperLines,
			Versions:    strings.Join(vers, " "),
		})
	}
	return rows
}

// RenderTable1 formats the rows like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: benchmarks (paper line counts; versions: N=unoptimized C=compiler P=programmer)\n")
	sb.WriteString(fmt.Sprintf("%-11s %-36s %10s  %s\n", "program", "description", "lines of C", "versions"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %-36s %10d  %s\n", r.Program, r.Description, r.PaperLines, r.Versions))
	}
	return sb.String()
}
