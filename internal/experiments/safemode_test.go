package experiments

import (
	"context"
	"testing"

	"falseshare/internal/faultinject"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// TestBuildProgramRecordsDegradation: a verifying experiment cell hit
// by a seeded miscompile still completes — it records the degraded
// objects against the cell key and returns a runnable program.
func TestBuildProgramRecordsDegradation(t *testing.T) {
	s, err := faultinject.Parse("transform.corrupt:error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)
	ResetDegraded()
	t.Cleanup(ResetDegraded)

	b := workload.Get("pverify")
	if b == nil {
		t.Fatal("pverify workload missing")
	}
	cfg := Config{Scale: 1, Verify: true}
	const key = "safemode/pverify/C/b128"
	prog, err := cfg.buildProgram(context.Background(), key, b, VersionC, 8, 128, transform.Config{})
	if err != nil {
		t.Fatalf("cell failed instead of degrading: %v", err)
	}
	if prog == nil {
		t.Fatal("no program")
	}

	evs := DegradedEvents()
	if len(evs) != 1 || evs[0].Key != key {
		t.Fatalf("events = %+v, want one for %s", evs, key)
	}
	if len(evs[0].Objects) == 0 || len(evs[0].Details) == 0 {
		t.Fatalf("event carries no diagnostics: %+v", evs[0])
	}
	if DegradedObjects() != len(evs[0].Objects) {
		t.Fatalf("DegradedObjects() = %d, want %d", DegradedObjects(), len(evs[0].Objects))
	}
}

// TestBuildProgramCleanRecordsNothing: without faults, verifying
// cells record no degrade events; and the N version never verifies.
func TestBuildProgramCleanRecordsNothing(t *testing.T) {
	ResetDegraded()
	t.Cleanup(ResetDegraded)

	b := workload.Get("pverify")
	cfg := Config{Scale: 1, Verify: true}
	for _, ver := range []Version{VersionN, VersionC} {
		if _, err := cfg.buildProgram(context.Background(), "clean/cell", b, ver, 8, 128, transform.Config{}); err != nil {
			t.Fatalf("%s: %v", ver, err)
		}
	}
	if n := len(DegradedEvents()); n != 0 {
		t.Fatalf("clean run recorded %d degrade events: %+v", n, DegradedEvents())
	}
}
