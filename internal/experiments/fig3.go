package experiments

import (
	"context"
	"fmt"
	"strings"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Fig3Cell is one bar of Figure 3: the miss rate of one program
// version at one block size, split into its false-sharing and other
// components.
type Fig3Cell struct {
	Program string
	Version Version
	Block   int64
	Procs   int

	Refs        int64
	FSMisses    int64
	OtherMisses int64
	FSRate      float64 // percent
	OtherRate   float64 // percent
}

// TotalRate returns the total miss rate in percent.
func (c Fig3Cell) TotalRate() float64 { return c.FSRate + c.OtherRate }

// Figure3 regenerates the paper's Figure 3: total miss rates of the
// unoptimized and compiler-transformed versions of the six
// unoptimizable programs at 16- and 128-byte blocks, 12 processors
// (Topopt: 9), with the false-sharing portion split out.
//
// The (program × version × block) cells are independent
// compile→run→simulate jobs; they are enumerated up front and fanned
// out across cfg.Workers, with the cell order fixed by enumeration.
//
// When some cells fail (and cfg.Policy keeps going), the surviving
// cells are returned alongside a *Partial error naming the failed
// ones, so callers can render the bars they have.
func Figure3(cfg Config) ([]Fig3Cell, error) {
	var jobs []pool.Job[Fig3Cell]
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		for _, ver := range []Version{VersionN, VersionC} {
			// Block size affects the C version's padding, so compile
			// per block size.
			for _, blk := range cfg.Fig3Blocks {
				key := fmt.Sprintf("fig3/%s/%s/b%d", b.Name, ver, blk)
				jobs = append(jobs, pool.Job[Fig3Cell]{
					Key: key,
					Fingerprint: fingerprint("fig3",
						"prog="+b.Name, "ver="+string(ver),
						fmt.Sprintf("procs=%d", procs), fmt.Sprintf("blk=%d", blk),
						fmt.Sprintf("scale=%d", cfg.Scale), fmt.Sprintf("budget=%d", cfg.StepBudget),
						fmt.Sprintf("verify=%v", cfg.Verify),
						"src="+srcHash(b.Source(cfg.Scale))),
					Run: func(ctx context.Context) (Fig3Cell, error) {
						prog, err := cfg.buildProgram(ctx, key, b, ver, procs, blk, transform.Config{})
						if err != nil {
							return Fig3Cell{}, fmt.Errorf("fig3 %s/%s: %w", b.Name, ver, err)
						}
						st, err := cfg.measureCell(ctx, key, b.Name, ver, procs, blk, prog, cfg.Diag)
						if err != nil {
							return Fig3Cell{}, fmt.Errorf("fig3 %s/%s run: %w", b.Name, ver, err)
						}
						return Fig3Cell{
							Program:     b.Name,
							Version:     ver,
							Block:       blk,
							Procs:       procs,
							Refs:        st.Refs,
							FSMisses:    st.FalseShare,
							OtherMisses: st.Misses() - st.FalseShare,
							FSRate:      100 * st.FSRate(),
							OtherRate:   100 * st.OtherRate(),
						}, nil
					},
				})
			}
		}
	}
	cells, err := runJobs(cfg, "fig3", jobs)
	if err == nil {
		return cells, nil
	}
	// Partial assembly: keep the cells whose jobs succeeded.
	failed := failedKeys(err)
	var ok []Fig3Cell
	for i, j := range jobs {
		if !failed[j.Key] {
			ok = append(ok, cells[i])
		}
	}
	return ok, partial(err, len(jobs))
}

// RenderFigure3 formats the cells like the paper's bar chart, as an
// ASCII table with one bar per row.
func RenderFigure3(cells []Fig3Cell) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: total miss rates (%), false-sharing (FS) vs other, N=unoptimized C=compiler\n")
	sb.WriteString(fmt.Sprintf("%-11s %-3s %5s %6s | %8s %8s %8s   %s\n",
		"program", "ver", "block", "procs", "FS%", "other%", "total%", "bar (#=FS .=other)"))
	for _, c := range cells {
		bar := barString(c.FSRate, c.OtherRate)
		sb.WriteString(fmt.Sprintf("%-11s %-3s %5d %6d | %8.3f %8.3f %8.3f   %s\n",
			c.Program, c.Version, c.Block, c.Procs, c.FSRate, c.OtherRate, c.TotalRate(), bar))
	}
	return sb.String()
}

func barString(fs, other float64) string {
	const scale = 0.5 // columns per percent
	f := int(fs*scale + 0.5)
	o := int(other*scale + 0.5)
	if f > 60 {
		f = 60
	}
	if o > 60 {
		o = 60
	}
	return strings.Repeat("#", f) + strings.Repeat(".", o)
}
