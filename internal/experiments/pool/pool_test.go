package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falseshare/internal/obs"
)

// TestParallelPoolOrdering: results come back indexed like the jobs
// no matter how completion order scrambles — late jobs must not
// displace early ones.
func TestParallelPoolOrdering(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%02d", i),
			Run: func() (int, error) {
				// Early jobs sleep longest, so completion order is
				// roughly the reverse of submission order.
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Run("order", workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestParallelPoolBoundedConcurrency: never more than `workers` jobs
// in flight.
func TestParallelPoolBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = Job[struct{}]{
			Key: fmt.Sprintf("j%d", i),
			Run: func() (struct{}, error) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	if _, err := Run("bounded", workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestParallelPoolPanicRecovery: a panicking job becomes that job's
// error (with its key and stack), other jobs still complete, and the
// first failure in submission order wins deterministically.
func TestParallelPoolPanicRecovery(t *testing.T) {
	ran := make([]atomic.Bool, 4)
	jobs := []Job[int]{
		{Key: "ok0", Run: func() (int, error) { ran[0].Store(true); return 1, nil }},
		{Key: "boom", Run: func() (int, error) { ran[1].Store(true); panic("kaboom") }},
		{Key: "fail", Run: func() (int, error) { ran[2].Store(true); return 0, errors.New("plain error") }},
		{Key: "ok3", Run: func() (int, error) { ran[3].Store(true); return 4, nil }},
	}
	for _, workers := range []int{1, 4} {
		got, err := Run("panics", workers, jobs)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var pe *Error
		if !errors.As(err, &pe) || pe.Key != "boom" {
			t.Errorf("workers=%d: first failure should be job \"boom\": %v", workers, err)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: panic value missing from error: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("workers=%d: job %d did not run despite earlier failure", workers, i)
			}
		}
		if got[3] != 4 {
			t.Errorf("workers=%d: healthy job's result lost: %v", workers, got)
		}
	}
}

// TestParallelPoolSpanTree: the pool records one child span per job in
// submission order — regardless of worker count — and grafts each
// job's privately recorded spans under its own child.
func TestParallelPoolSpanTree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := obs.NewRecorder()
		obs.Install(rec)
		jobs := make([]Job[int], 8)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Key: fmt.Sprintf("k%d", i),
				Run: func() (int, error) {
					sp := obs.Begin("inner")
					sp.Set("idx", int64(i))
					sp.End()
					return i, nil
				},
			}
		}
		_, err := Run("spans", workers, jobs)
		obs.Install(nil)
		if err != nil {
			t.Fatal(err)
		}
		spans := rec.Spans()
		if len(spans) != 1 || spans[0].Name != "pool:spans" {
			t.Fatalf("workers=%d: top spans = %+v", workers, spans)
		}
		p := spans[0]
		if p.Counter("jobs") != 8 {
			t.Errorf("workers=%d: jobs counter = %d", workers, p.Counter("jobs"))
		}
		if len(p.Children) != 8 {
			t.Fatalf("workers=%d: %d job spans, want 8", workers, len(p.Children))
		}
		for i, c := range p.Children {
			if want := fmt.Sprintf("job:k%d", i); c.Name != want {
				t.Errorf("workers=%d: child %d = %q, want %q (submission order)", workers, i, c.Name, want)
			}
			if len(c.Children) != 1 || c.Children[0].Name != "inner" {
				t.Fatalf("workers=%d: job %d subtree = %+v", workers, i, c.Children)
			}
			if got := c.Children[0].Counters["idx"]; got != int64(i) {
				t.Errorf("workers=%d: job %d adopted wrong subtree (idx=%d)", workers, i, got)
			}
		}
	}
}

// TestParallelPoolNoRecorder: with observability off the pool neither
// panics nor installs anything.
func TestParallelPoolNoRecorder(t *testing.T) {
	obs.Install(nil)
	got, err := Run("quiet", 4, []Job[string]{
		{Key: "a", Run: func() (string, error) { return "x", nil }},
		{Key: "b", Run: func() (string, error) { return "y", nil }},
	})
	if err != nil || got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v, %v", got, err)
	}
	if obs.Current() != nil {
		t.Error("pool leaked a recorder binding")
	}
}

// TestParallelWorkersDefault: the GOMAXPROCS default and clamping.
func TestParallelWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers must default to at least 1")
	}
	if Workers(7) != 7 {
		t.Error("explicit worker counts pass through")
	}
}
