package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// TestParallelPoolOrdering: results come back indexed like the jobs
// no matter how completion order scrambles — late jobs must not
// displace early ones.
func TestParallelPoolOrdering(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%02d", i),
			Run: func(context.Context) (int, error) {
				// Early jobs sleep longest, so completion order is
				// roughly the reverse of submission order.
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Run("order", workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestParallelPoolBoundedConcurrency: never more than `workers` jobs
// in flight.
func TestParallelPoolBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = Job[struct{}]{
			Key: fmt.Sprintf("j%d", i),
			Run: func(context.Context) (struct{}, error) {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	if _, err := Run("bounded", workers, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestParallelPoolPanicRecovery: a panicking job becomes that job's
// error (with its key and stack), other jobs still complete, and the
// first failure in submission order is found first by errors.As.
func TestParallelPoolPanicRecovery(t *testing.T) {
	ran := make([]atomic.Bool, 4)
	jobs := []Job[int]{
		{Key: "ok0", Run: func(context.Context) (int, error) { ran[0].Store(true); return 1, nil }},
		{Key: "boom", Run: func(context.Context) (int, error) { ran[1].Store(true); panic("kaboom") }},
		{Key: "fail", Run: func(context.Context) (int, error) { ran[2].Store(true); return 0, errors.New("plain error") }},
		{Key: "ok3", Run: func(context.Context) (int, error) { ran[3].Store(true); return 4, nil }},
	}
	for _, workers := range []int{1, 4} {
		got, err := Run("panics", workers, jobs)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		var pe *Error
		if !errors.As(err, &pe) || pe.Key != "boom" {
			t.Errorf("workers=%d: first failure should be job \"boom\": %v", workers, err)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: panic value missing from error: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("workers=%d: job %d did not run despite earlier failure", workers, i)
			}
		}
		if got[3] != 4 {
			t.Errorf("workers=%d: healthy job's result lost: %v", workers, got)
		}
	}
}

// TestPoolMultiError: the returned error carries EVERY keyed job
// failure in submission order, not just the first, and unwraps so
// errors.Is/As reach each one.
func TestPoolMultiError(t *testing.T) {
	sentinel := errors.New("sentinel")
	jobs := []Job[int]{
		{Key: "a", Run: func(context.Context) (int, error) { return 1, nil }},
		{Key: "b", Run: func(context.Context) (int, error) { return 0, errors.New("b failed") }},
		{Key: "c", Run: func(context.Context) (int, error) { return 3, nil }},
		{Key: "d", Run: func(context.Context) (int, error) { return 0, fmt.Errorf("wrap: %w", sentinel) }},
	}
	for _, workers := range []int{1, 4} {
		got, err := Run("multi", workers, jobs)
		if got[0] != 1 || got[2] != 3 {
			t.Errorf("workers=%d: healthy results lost: %v", workers, got)
		}
		var merr *MultiError
		if !errors.As(err, &merr) {
			t.Fatalf("workers=%d: error is not a MultiError: %v", workers, err)
		}
		if keys := merr.Keys(); len(keys) != 2 || keys[0] != "b" || keys[1] != "d" {
			t.Errorf("workers=%d: failed keys %v, want [b d]", workers, keys)
		}
		if merr.Jobs != 4 {
			t.Errorf("workers=%d: Jobs = %d", workers, merr.Jobs)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: sentinel not reachable through unwrap", workers)
		}
		if fails := Failures(err); len(fails) != 2 || fails[0].Key != "b" {
			t.Errorf("workers=%d: Failures(err) = %v", workers, fails)
		}
	}
	if Failures(nil) != nil {
		t.Error("Failures(nil) must be nil")
	}
}

// TestPoolFailFast: after the first failure the remaining jobs are
// skipped (marked ErrSkipped + cancelled), and the drain is prompt.
func TestPoolFailFast(t *testing.T) {
	const n = 32
	var started atomic.Int64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("j%02d", i),
			Run: func(ctx context.Context) (int, error) {
				started.Add(1)
				if i == 0 {
					return 0, errors.New("first job fails")
				}
				// Later jobs wait on ctx so the serial path exercises
				// skipping and the parallel path exercises cancellation.
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(5 * time.Second):
					return i, nil
				}
			},
		}
	}
	for _, workers := range []int{1, 4} {
		started.Store(0)
		start := time.Now()
		_, err := RunPolicy(context.Background(), "failfast", workers, Policy{FailFast: true}, jobs)
		if time.Since(start) > 2*time.Second {
			t.Fatalf("workers=%d: fail-fast drain took %v", workers, time.Since(start))
		}
		var merr *MultiError
		if !errors.As(err, &merr) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(merr.Errors) < n-workers {
			t.Errorf("workers=%d: only %d failures recorded", workers, len(merr.Errors))
		}
		if merr.Errors[0].Key != "j00" {
			t.Errorf("workers=%d: first failure %q", workers, merr.Errors[0].Key)
		}
		skipped := 0
		for _, e := range merr.Errors[1:] {
			if errors.Is(e, ErrSkipped) {
				if !errors.Is(e, context.Canceled) {
					t.Errorf("workers=%d: skipped job not marked cancelled: %v", workers, e)
				}
				skipped++
			}
		}
		if skipped == 0 {
			t.Errorf("workers=%d: no jobs were skipped", workers)
		}
		if s := started.Load(); s > int64(workers) {
			t.Errorf("workers=%d: %d jobs started after fail-fast", workers, s)
		}
	}
}

// TestPoolExternalCancel: cancelling the caller's context drains the
// pool promptly and accounts for every job.
func TestPoolExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("j%02d", i),
			Run: func(ctx context.Context) (int, error) {
				if i == 0 {
					close(release)
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
		}
	}
	go func() {
		<-release
		cancel()
	}()
	_, err := RunPolicy(ctx, "cancel", 2, Policy{}, jobs)
	var merr *MultiError
	if !errors.As(err, &merr) || len(merr.Errors) != 16 {
		t.Fatalf("expected all jobs to fail after cancel: %v", err)
	}
	for _, e := range merr.Errors {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("job %s: %v not a cancellation", e.Key, e.Err)
		}
	}
}

// TestPoolJobTimeout: a job that honors its context is cut off by the
// per-job deadline; jobs that finish in time are untouched.
func TestPoolJobTimeout(t *testing.T) {
	jobs := []Job[string]{
		{Key: "fast", Run: func(context.Context) (string, error) { return "done", nil }},
		{Key: "stuck", Run: func(ctx context.Context) (string, error) {
			<-ctx.Done()
			return "", ctx.Err()
		}},
	}
	got, err := RunPolicy(context.Background(), "deadline", 2,
		Policy{JobTimeout: 30 * time.Millisecond}, jobs)
	if got[0] != "done" {
		t.Errorf("fast job result %q", got[0])
	}
	fails := Failures(err)
	if len(fails) != 1 || fails[0].Key != "stuck" || !errors.Is(fails[0], context.DeadlineExceeded) {
		t.Fatalf("expected stuck/deadline, got %v", err)
	}
}

// TestPoolRetryTransient: transient failures are retried with
// backoff until the budget runs out; non-transient failures are not
// retried at all.
func TestPoolRetryTransient(t *testing.T) {
	type flaky struct{ error }
	transient := func(err error) bool {
		var f flaky
		return errors.As(err, &f)
	}

	var attempts atomic.Int64
	jobs := []Job[int]{{
		Key: "flaky",
		Run: func(context.Context) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, flaky{errors.New("transient blip")}
			}
			return 42, nil
		},
	}}
	pol := Policy{Retries: 3, Backoff: time.Millisecond, IsTransient: transient}
	got, err := RunPolicy(context.Background(), "retry", 1, pol, jobs)
	if err != nil || got[0] != 42 {
		t.Fatalf("retries should have recovered: %v %v", got, err)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("took %d attempts, want 3", n)
	}

	// Budget exhausted: the last error surfaces.
	attempts.Store(0)
	alwaysBad := []Job[int]{{
		Key: "hopeless",
		Run: func(context.Context) (int, error) {
			attempts.Add(1)
			return 0, flaky{errors.New("always")}
		},
	}}
	if _, err := RunPolicy(context.Background(), "retry2", 1, Policy{Retries: 2, Backoff: time.Millisecond, IsTransient: transient}, alwaysBad); err == nil {
		t.Fatal("expected failure after retries exhausted")
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("%d attempts, want 1+2 retries", n)
	}

	// Non-transient: one attempt only.
	attempts.Store(0)
	solid := []Job[int]{{
		Key: "solid",
		Run: func(context.Context) (int, error) {
			attempts.Add(1)
			return 0, errors.New("permanent")
		},
	}}
	if _, err := RunPolicy(context.Background(), "retry3", 1, Policy{Retries: 5, Backoff: time.Millisecond, IsTransient: transient}, solid); err == nil {
		t.Fatal("expected failure")
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("non-transient error retried (%d attempts)", n)
	}
}

// TestPoolDefaultTransient: with no classifier, errors exposing
// Transient() bool (as injected faults do) are retried.
func TestPoolDefaultTransient(t *testing.T) {
	s, err := faultinject.Parse("pool.worker=blip:error:transient:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)

	var ran atomic.Int64
	jobs := []Job[int]{{
		Key: "blip",
		Run: func(context.Context) (int, error) { ran.Add(1); return 7, nil },
	}}
	got, err := RunPolicy(context.Background(), "transient", 1, Policy{Retries: 1, Backoff: time.Millisecond}, jobs)
	if err != nil || got[0] != 7 {
		t.Fatalf("transient injected fault not retried: %v %v", got, err)
	}
	if ran.Load() != 1 {
		// First attempt died at the injection point (before Run);
		// the retry succeeded.
		t.Errorf("job body ran %d times, want 1", ran.Load())
	}
}

// TestParallelPoolSpanTree: the pool records one child span per job in
// submission order — regardless of worker count — and grafts each
// job's privately recorded spans under its own child.
func TestParallelPoolSpanTree(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := obs.NewRecorder()
		obs.Install(rec)
		jobs := make([]Job[int], 8)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Key: fmt.Sprintf("k%d", i),
				Run: func(context.Context) (int, error) {
					sp := obs.Begin("inner")
					sp.Set("idx", int64(i))
					sp.End()
					return i, nil
				},
			}
		}
		_, err := Run("spans", workers, jobs)
		obs.Install(nil)
		if err != nil {
			t.Fatal(err)
		}
		spans := rec.Spans()
		if len(spans) != 1 || spans[0].Name != "pool:spans" {
			t.Fatalf("workers=%d: top spans = %+v", workers, spans)
		}
		p := spans[0]
		if p.Counter("jobs") != 8 {
			t.Errorf("workers=%d: jobs counter = %d", workers, p.Counter("jobs"))
		}
		if len(p.Children) != 8 {
			t.Fatalf("workers=%d: %d job spans, want 8", workers, len(p.Children))
		}
		for i, c := range p.Children {
			if want := fmt.Sprintf("job:k%d", i); c.Name != want {
				t.Errorf("workers=%d: child %d = %q, want %q (submission order)", workers, i, c.Name, want)
			}
			if len(c.Children) != 1 || c.Children[0].Name != "inner" {
				t.Fatalf("workers=%d: job %d subtree = %+v", workers, i, c.Children)
			}
			if got := c.Children[0].Counters["idx"]; got != int64(i) {
				t.Errorf("workers=%d: job %d adopted wrong subtree (idx=%d)", workers, i, got)
			}
		}
	}
}

// TestPoolSpanFailureAnnotations: failed and skipped jobs are marked
// on their spans (error / cancelled counters).
func TestPoolSpanFailureAnnotations(t *testing.T) {
	rec := obs.NewRecorder()
	obs.Install(rec)
	defer obs.Install(nil)
	jobs := []Job[int]{
		{Key: "bad", Run: func(context.Context) (int, error) { return 0, errors.New("x") }},
		{Key: "never", Run: func(context.Context) (int, error) { return 1, nil }},
	}
	_, err := RunPolicy(context.Background(), "annot", 1, Policy{FailFast: true}, jobs)
	if err == nil {
		t.Fatal("expected error")
	}
	spans := rec.Spans()
	p := spans[0]
	if p.Children[0].Counters["error"] != 1 {
		t.Errorf("failed job span counters: %v", p.Children[0].Counters)
	}
	if p.Children[1].Counters["cancelled"] != 1 {
		t.Errorf("skipped job span counters: %v", p.Children[1].Counters)
	}
	if p.Counter("failed") != 2 {
		t.Errorf("pool failed counter = %d", p.Counter("failed"))
	}
}

// TestParallelPoolNoRecorder: with observability off the pool neither
// panics nor installs anything.
func TestParallelPoolNoRecorder(t *testing.T) {
	obs.Install(nil)
	got, err := Run("quiet", 4, []Job[string]{
		{Key: "a", Run: func(context.Context) (string, error) { return "x", nil }},
		{Key: "b", Run: func(context.Context) (string, error) { return "y", nil }},
	})
	if err != nil || got[0] != "x" || got[1] != "y" {
		t.Fatalf("got %v, %v", got, err)
	}
	if obs.Current() != nil {
		t.Error("pool leaked a recorder binding")
	}
}

// TestParallelWorkersDefault: the GOMAXPROCS default and clamping.
func TestParallelWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers must default to at least 1")
	}
	if Workers(7) != 7 {
		t.Error("explicit worker counts pass through")
	}
}
