// Package pool runs independent experiment jobs across a bounded set
// of worker goroutines. The evaluation's jobs (program × version ×
// nprocs × block) share nothing but read-only workload sources, so
// they parallelize freely; what the pool adds over `go` is the
// discipline the manifests and tests need:
//
//   - results come back indexed like the submitted jobs, regardless of
//     completion order, so every figure renders identically at any -j;
//   - a panicking job is recovered and surfaced as that job's error
//     (with its stack), never a crashed process;
//   - every job failure is kept, keyed, in submission order — the
//     returned error unwraps to all of them, so callers can render the
//     cells that succeeded and report exactly the ones that did not;
//   - cancellation (a signal, a fail-fast policy) drains promptly:
//     running jobs see their context cancelled, unstarted jobs are
//     skipped and marked, and the pool always returns a complete
//     per-job accounting;
//   - each job records observability spans into its own private
//     recorder, grafted under a per-job span in submission order, so a
//     parallel run's manifest has the same deterministic span tree as
//     a serial one.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// Job is one unit of work. Key names the job in errors and span trees
// ("fig3/maxflow/N/b128"); Run produces its result. Run must honor
// ctx: the pool cancels it on fail-fast, per-job deadline, or an
// external cancellation (Ctrl-C), and relies on the job to return.
type Job[T any] struct {
	Key string
	Run func(ctx context.Context) (T, error)
	// Fingerprint, when non-empty, is a content hash of everything the
	// job's result depends on (program source, cell configuration,
	// stage version). The pool itself ignores it; the distributed
	// fabric uses it to key its content-addressed result cache, so two
	// cells with the same fingerprint never compute twice.
	Fingerprint string
}

// Error wraps a job failure with the job's key.
type Error struct {
	Key string
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying job error.
func (e *Error) Unwrap() error { return e.Err }

// ErrSkipped marks jobs that never started because the run was
// cancelled first (fail-fast after another job's failure, or an
// external cancellation). errors.Is(err, context.Canceled) also holds
// for skipped jobs, so cancellation tests stay uniform.
var ErrSkipped = errors.New("skipped: run cancelled")

// MultiError aggregates every job failure of one pool run, keyed and
// in submission order. It unwraps to all of them (errors.Is/As search
// the whole set), so a single failed cell is still found by
// errors.As(err, &poolErr) exactly as before.
type MultiError struct {
	// Errors holds one entry per failed job, in submission order.
	Errors []*Error
	// Jobs is the total number of jobs submitted.
	Jobs int
}

func (m *MultiError) Error() string {
	const show = 5
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d of %d jobs failed", len(m.Errors), m.Jobs)
	for i, e := range m.Errors {
		if i == show {
			fmt.Fprintf(&sb, "; ... and %d more", len(m.Errors)-show)
			break
		}
		sb.WriteString("; ")
		sb.WriteString(e.Error())
	}
	return sb.String()
}

// Unwrap exposes every keyed job error.
func (m *MultiError) Unwrap() []error {
	out := make([]error, len(m.Errors))
	for i, e := range m.Errors {
		out[i] = e
	}
	return out
}

// Keys lists the failed job keys in submission order.
func (m *MultiError) Keys() []string {
	out := make([]string, len(m.Errors))
	for i, e := range m.Errors {
		out[i] = e.Key
	}
	return out
}

// Failures extracts the per-job failures from a pool error: the
// MultiError's entries, a bare *Error, or nil for a nil error. Any
// other error (not produced by the pool) comes back as a single
// unkeyed entry so callers never lose it.
func Failures(err error) []*Error {
	if err == nil {
		return nil
	}
	var merr *MultiError
	if errors.As(err, &merr) {
		return merr.Errors
	}
	var one *Error
	if errors.As(err, &one) {
		return []*Error{one}
	}
	return []*Error{{Key: "", Err: err}}
}

// Policy configures how a pool run treats failure and time.
//
// The zero value reproduces the historical behavior: every job runs
// regardless of other jobs' failures, with no deadlines and no
// retries.
type Policy struct {
	// FailFast cancels the remaining jobs after the first failure:
	// running jobs see their context cancelled, unstarted jobs are
	// skipped (ErrSkipped). Without it the pool keeps going and runs
	// everything.
	FailFast bool
	// JobTimeout bounds each job attempt with a context deadline
	// (0: none). Enforcement is cooperative — the job must honor its
	// context, as the VM and the restructurer do.
	JobTimeout time.Duration
	// Retries re-runs a failed job attempt up to this many extra
	// times, but only when the error is transient (see IsTransient).
	Retries int
	// Backoff is the sleep before the first retry, doubling per
	// attempt (default 100ms when Retries > 0).
	Backoff time.Duration
	// IsTransient classifies errors worth retrying. nil uses the
	// default: any error in the chain implementing
	// `Transient() bool` and reporting true (injected faults marked
	// :transient do).
	IsTransient func(error) bool
}

func (p Policy) transient(err error) bool {
	if err == nil {
		return false
	}
	if p.IsTransient != nil {
		return p.IsTransient(err)
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

func (p Policy) backoff(attempt int) time.Duration {
	d := p.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	return d << attempt
}

// Workers normalizes a -j style worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes the jobs with the zero Policy and no external
// cancellation; see RunPolicy.
func Run[T any](name string, workers int, jobs []Job[T]) ([]T, error) {
	return RunPolicy(context.Background(), name, workers, Policy{}, jobs)
}

// RunPolicy executes the jobs with at most workers concurrent
// (workers <= 0: GOMAXPROCS) and returns their results indexed like
// jobs. With one worker, jobs run serially in the calling goroutine —
// no goroutines are spawned — preserving the pre-pool execution order
// exactly.
//
// Failure handling follows pol. Whatever the policy, the returned
// error is nil only when every job succeeded; otherwise it is a
// *MultiError carrying every failed job's keyed error in submission
// order — deterministic at any worker count. Results of successful
// jobs are always valid, so callers may render partial output.
//
// Cancelling ctx stops the run promptly: running jobs observe the
// cancellation through their context, unstarted jobs are skipped and
// reported with ErrSkipped.
func RunPolicy[T any](ctx context.Context, name string, workers int, pol Policy, jobs []Job[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// The span tree is laid out before any job runs: one child per job
	// in submission order, so the manifest's shape does not depend on
	// scheduling. Each job then records into a private recorder whose
	// spans are grafted under its pre-made child.
	parent := obs.Begin("pool:" + name)
	parent.Set("jobs", int64(len(jobs)))
	parent.Set("workers", int64(workers))
	defer parent.End()
	spans := make([]*obs.Span, len(jobs))
	for i, j := range jobs {
		spans[i] = parent.Child("job:" + j.Key)
	}
	base := obs.Current()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	runJob := func(i int) {
		if cerr := runCtx.Err(); cerr != nil {
			// Prompt drain: the run was cancelled before this job
			// started. Mark it skipped (and cancelled) without running.
			errs[i] = fmt.Errorf("%w: %w", ErrSkipped, cerr)
			spans[i].Fail(errs[i])
			spans[i].End()
			return
		}
		results[i], errs[i] = runOne(runCtx, pol, base, spans[i], jobs[i])
		if errs[i] != nil && pol.FailFast {
			cancel()
		}
	}

	if workers <= 1 {
		for i := range jobs {
			runJob(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runJob(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var failed []*Error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &Error{Key: jobs[i].Key, Err: err})
		}
	}
	if failed != nil {
		parent.Set("failed", int64(len(failed)))
		return results, &MultiError{Errors: failed, Jobs: len(jobs)}
	}
	return results, nil
}

// runOne executes a single job — retrying transient failures per the
// policy — and owns the job span's lifetime.
func runOne[T any](ctx context.Context, pol Policy, base *obs.Recorder, span *obs.Span, job Job[T]) (result T, err error) {
	start := time.Now()
	defer func() {
		span.SetWall(time.Since(start))
		span.Fail(err)
		span.End()
	}()
	for attempt := 0; ; attempt++ {
		result, err = runAttempt(ctx, pol, base, span, job)
		if err == nil || attempt >= pol.Retries || !pol.transient(err) || ctx.Err() != nil {
			return result, err
		}
		span.Count("retries", 1)
		obs.Logf("pool: retrying %s after transient failure: %v", job.Key, err)
		if !sleep(ctx, pol.backoff(attempt)) {
			return result, err
		}
	}
}

// runAttempt is one attempt of a job under its own recorder and
// deadline, converting a panic into the job's error.
func runAttempt[T any](ctx context.Context, pol Policy, base *obs.Recorder, span *obs.Span, job Job[T]) (result T, err error) {
	if pol.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pol.JobTimeout)
		defer cancel()
	}
	var rec *obs.Recorder
	if base != nil {
		rec = obs.NewRecorder()
		rec.Verbose = base.Verbose
		rec.LogW = base.LogW
		// Streaming metrics pass through: a server counting simulated
		// refs sees live snapshots from inside pooled jobs. The sink
		// is documented goroutine-safe.
		rec.OnMetrics = base.OnMetrics
		prev := obs.BindGoroutine(rec)
		defer obs.BindGoroutine(prev)
	}
	defer func() {
		if rec != nil {
			span.Adopt(rec.Spans())
		}
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
			span.Set("panic", 1)
		}
	}()
	if ferr := faultinject.Fire(ctx, "pool.worker", job.Key); ferr != nil {
		return result, ferr
	}
	return job.Run(ctx)
}

// sleep waits for d, returning false if ctx is cancelled first.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
