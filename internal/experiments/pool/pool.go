// Package pool runs independent experiment jobs across a bounded set
// of worker goroutines. The evaluation's jobs (program × version ×
// nprocs × block) share nothing but read-only workload sources, so
// they parallelize freely; what the pool adds over `go` is the
// discipline the manifests and tests need:
//
//   - results come back indexed like the submitted jobs, regardless of
//     completion order, so every figure renders identically at any -j;
//   - a panicking job is recovered and surfaced as that job's error
//     (with its stack), never a crashed process;
//   - each job records observability spans into its own private
//     recorder, grafted under a per-job span in submission order, so a
//     parallel run's manifest has the same deterministic span tree as
//     a serial one.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"falseshare/internal/obs"
)

// Job is one unit of work. Key names the job in errors and span trees
// ("fig3/maxflow/N/b128"); Run produces its result.
type Job[T any] struct {
	Key string
	Run func() (T, error)
}

// Error wraps a job failure with the job's key.
type Error struct {
	Key string
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying job error.
func (e *Error) Unwrap() error { return e.Err }

// Workers normalizes a -j style worker count: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes the jobs with at most workers concurrent (workers <= 0:
// GOMAXPROCS) and returns their results indexed like jobs. All jobs
// run even if some fail; the returned error is the first failure in
// submission order (deterministic at any worker count). With one
// worker, jobs run serially in the calling goroutine — no goroutines
// are spawned — preserving the pre-pool execution order exactly.
func Run[T any](name string, workers int, jobs []Job[T]) ([]T, error) {
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// The span tree is laid out before any job runs: one child per job
	// in submission order, so the manifest's shape does not depend on
	// scheduling. Each job then records into a private recorder whose
	// spans are grafted under its pre-made child.
	parent := obs.Begin("pool:" + name)
	parent.Set("jobs", int64(len(jobs)))
	parent.Set("workers", int64(workers))
	defer parent.End()
	spans := make([]*obs.Span, len(jobs))
	for i, j := range jobs {
		spans[i] = parent.Child("job:" + j.Key)
	}
	base := obs.Current()

	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	runJob := func(i int) {
		results[i], errs[i] = runOne(base, spans[i], jobs[i])
	}

	if workers <= 1 {
		for i := range jobs {
			runJob(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runJob(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return results, &Error{Key: jobs[i].Key, Err: err}
		}
	}
	return results, nil
}

// runOne executes a single job under its own recorder, converting a
// panic into the job's error.
func runOne[T any](base *obs.Recorder, span *obs.Span, job Job[T]) (result T, err error) {
	var rec *obs.Recorder
	if base != nil {
		rec = obs.NewRecorder()
		rec.Verbose = base.Verbose
		rec.LogW = base.LogW
		prev := obs.BindGoroutine(rec)
		defer obs.BindGoroutine(prev)
	}
	start := time.Now()
	defer func() {
		if rec != nil {
			span.Adopt(rec.Spans())
		}
		span.SetWall(time.Since(start))
		span.End()
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
			span.Set("panic", 1)
		}
	}()
	return job.Run()
}
