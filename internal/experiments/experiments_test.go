package experiments

import (
	"strings"
	"testing"

	"falseshare/internal/sim/ksr"
	"falseshare/internal/workload"
)

// testConfig keeps test runtime modest: fewer processor counts and
// the standard scale (the kernels are small).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16}
	return cfg
}

func TestFigure3ShapesMatchPaper(t *testing.T) {
	cells, err := Figure3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6*2*2 {
		t.Fatalf("cells = %d, want 24", len(cells))
	}
	// Index cells for comparisons.
	get := func(prog string, ver Version, blk int64) Fig3Cell {
		for _, c := range cells {
			if c.Program == prog && c.Version == ver && c.Block == blk {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s/%d", prog, ver, blk)
		return Fig3Cell{}
	}
	for _, b := range workload.Unoptimizable() {
		n128 := get(b.Name, VersionN, 128)
		c128 := get(b.Name, VersionC, 128)
		n16 := get(b.Name, VersionN, 16)
		// The compiler reduces false sharing at 128B for every
		// program (the paper: "in all programs for all block sizes").
		if c128.FSRate >= n128.FSRate {
			t.Errorf("%s: FS rate not reduced at 128B: %.3f -> %.3f", b.Name, n128.FSRate, c128.FSRate)
		}
		// False sharing grows with block size.
		if n128.FSMisses <= n16.FSMisses {
			t.Errorf("%s: FS should grow with block size: 16B=%d 128B=%d", b.Name, n16.FSMisses, n128.FSMisses)
		}
		// The total miss rate falls at 128B.
		if c128.TotalRate() >= n128.TotalRate() {
			t.Errorf("%s: total miss rate not reduced: %.3f -> %.3f", b.Name, n128.TotalRate(), c128.TotalRate())
		}
	}
	out := RenderFigure3(cells)
	if !strings.Contains(out, "maxflow") || !strings.Contains(out, "#") {
		t.Errorf("render looks wrong:\n%s", out)
	}
}

func TestAggregatesMatchPaperBands(t *testing.T) {
	a, err := ComputeAggregates(testConfig(), 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a.Render())
	// Paper: ~70% of misses are false sharing at 128B. Accept a broad
	// band — the substrate differs — but the misses must be
	// FS-dominated.
	if a.FSFractionOfMisses < 0.40 || a.FSFractionOfMisses > 0.95 {
		t.Errorf("FS fraction of misses %.2f outside [0.40, 0.95] (paper ~0.70)", a.FSFractionOfMisses)
	}
	// Paper: ~80% of FS misses eliminated.
	if a.FSEliminated < 0.60 {
		t.Errorf("FS eliminated %.2f < 0.60 (paper ~0.80)", a.FSEliminated)
	}
	// Paper: other misses rise ~19%; allow anything below a doubling.
	if a.OtherIncrease < -0.10 || a.OtherIncrease > 1.0 {
		t.Errorf("other-miss increase %.2f outside [-0.10, 1.0] (paper ~0.19)", a.OtherIncrease)
	}
	// Paper: total misses roughly halved.
	if a.TotalMissReduction < 0.25 {
		t.Errorf("total miss reduction %.2f < 0.25 (paper ~0.50)", a.TotalMissReduction)
	}
}

func TestTable2ShapesMatchPaper(t *testing.T) {
	cfg := testConfig()
	cfg.Table2Blocks = []int64{32, 128} // keep the test quick
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	t.Logf("\n%s", RenderTable2(rows))

	// Shape assertions from the paper's Table 2:
	// Pverify is indirection-dominated.
	pv := byName["pverify"]
	if !(pv.Indirection > pv.GroupTranspose && pv.Indirection > pv.PadAlign) {
		t.Errorf("pverify should be indirection-dominated: %+v", pv)
	}
	// Fmm, Radiosity, Raytrace are G&T-dominated.
	for _, n := range []string{"fmm", "radiosity", "raytrace"} {
		r := byName[n]
		if !(r.GroupTranspose > r.Indirection && r.GroupTranspose > r.PadAlign) {
			t.Errorf("%s should be G&T-dominated: %+v", n, r)
		}
	}
	// Maxflow is pad-dominated with no G&T/indirection contribution.
	mf := byName["maxflow"]
	if !(mf.PadAlign > mf.GroupTranspose && mf.PadAlign > mf.Indirection) {
		t.Errorf("maxflow should be pad-dominated: %+v", mf)
	}
	// Totals: >90%% for fmm/pverify/radiosity; lower for the rest.
	for _, n := range []string{"fmm", "pverify", "radiosity"} {
		if byName[n].Total < 85 {
			t.Errorf("%s total %.1f%%, want >= 85%% (paper >90%%)", n, byName[n].Total)
		}
	}
	for _, n := range []string{"maxflow", "topopt", "raytrace"} {
		if byName[n].Total > 97 {
			t.Errorf("%s total %.1f%%, should retain residual FS", n, byName[n].Total)
		}
	}
}

// TestTable3HeadlineShapes is the paper's central quantitative claim,
// verified across the whole suite: the compiler version reaches the
// highest maximum speedup for every program and always outperforms the
// programmer's hand-tuning. Run with -short to skip (it sweeps many
// processor counts).
func TestTable3HeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	cfg := testConfig()
	cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 24}
	rows, err := Table3(cfg, ksr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	doubled := 0
	for _, r := range rows {
		c := r.Max[VersionC]
		if n, ok := r.Max[VersionN]; ok {
			if c <= n {
				t.Errorf("%s: compiler (%.2f) must beat original (%.2f)", r.Program, c, n)
			}
			if c >= 2*n {
				doubled++
			}
		}
		if p, ok := r.Max[VersionP]; ok {
			if c < p*0.999 {
				t.Errorf("%s: compiler (%.2f) must not lose to programmer (%.2f)", r.Program, c, p)
			}
		}
	}
	// The paper: maximum speedup "more than doubled" for several
	// programs.
	if doubled < 2 {
		t.Errorf("compiler should at least double the original's maximum for several programs (got %d)", doubled)
	}
	t.Logf("\n%s", RenderTable3(rows))
}

func TestSpeedupCurvesKeyProperties(t *testing.T) {
	cfg := testConfig()
	machine := ksr.DefaultConfig()
	b := workload.Get("pverify")
	curves, err := SpeedupCurves(b, cfg, machine)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("pverify should have 3 curves, got %d", len(curves))
	}
	t.Logf("\n%s", RenderCurves(curves))
	var n, c, p Curve
	for _, cv := range curves {
		switch cv.Version {
		case VersionN:
			n = cv
		case VersionC:
			c = cv
		case VersionP:
			p = cv
		}
	}
	if c.MaxSpeed <= n.MaxSpeed {
		t.Errorf("compiler must beat original: C=%.2f N=%.2f", c.MaxSpeed, n.MaxSpeed)
	}
	if c.MaxSpeed <= p.MaxSpeed {
		t.Errorf("compiler must beat programmer: C=%.2f P=%.2f", c.MaxSpeed, p.MaxSpeed)
	}
}
