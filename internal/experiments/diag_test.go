package experiments

import (
	"context"
	"fmt"
	"testing"

	"falseshare/internal/sim/attr"
	"falseshare/internal/sim/cache"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// TestAttributionInvariants checks, across a (procs × block ×
// workload) matrix, that the attribution layer is a pure observer:
// per-object tallies sum exactly to the simulator's per-class miss
// totals, sharing events equal the invalidation-miss class, and
// installing the hook changes no statistic.
func TestAttributionInvariants(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"maxflow", "pverify", "mp3d"} {
		b := workload.Get(name)
		if b == nil {
			t.Fatalf("workload %s not registered", name)
		}
		for _, procs := range []int{4, 12} {
			for _, blk := range []int64{16, 128} {
				t.Run(fmt.Sprintf("%s/p%d/b%d", name, procs, blk), func(t *testing.T) {
					prog, err := Program(b, Baseline(b), procs, 1, blk, transform.Config{})
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					stats, reps, err := MeasureBlocksAttr(ctx, prog, []int64{blk}, 0)
					if err != nil {
						t.Fatalf("measure: %v", err)
					}
					st, rep := stats[0], reps[0]

					// Attribution must not perturb the simulation.
					plain, err := MeasureBlocksCtx(ctx, prog, []int64{blk}, 1, 0)
					if err != nil {
						t.Fatalf("plain measure: %v", err)
					}
					ps := plain[0]
					if st.Cold != ps.Cold || st.Replace != ps.Replace ||
						st.TrueShare != ps.TrueShare || st.FalseShare != ps.FalseShare ||
						st.Invalidations != ps.Invalidations || st.Refs != ps.Refs {
						t.Fatalf("attribution changed stats:\nwith:    %s\nwithout: %s", st, ps)
					}

					// Event totals match the simulator's accounting.
					if rep.Cold != st.Cold || rep.Replace != st.Replace ||
						rep.TrueShare != st.TrueShare || rep.FalseShare != st.FalseShare {
						t.Errorf("report totals diverge: report cold=%d replace=%d ts=%d fs=%d, stats %s",
							rep.Cold, rep.Replace, rep.TrueShare, rep.FalseShare, st)
					}
					if rep.Invalidations != st.Invalidations {
						t.Errorf("invalidation events %d != stats %d", rep.Invalidations, st.Invalidations)
					}

					// Sharing events equal the invalidation-miss class.
					if rep.TrueShare+rep.FalseShare != st.TrueShare+st.FalseShare {
						t.Errorf("sharing events %d != invalidation-miss class %d",
							rep.TrueShare+rep.FalseShare, st.TrueShare+st.FalseShare)
					}

					// Per-object tallies sum exactly to the totals.
					var cold, repl, ts, fs, inv int64
					for _, o := range rep.Objects {
						cold += o.Cold
						repl += o.Replace
						ts += o.TrueShare
						fs += o.FalseShare
						inv += o.InvCaused
					}
					if cold != st.Cold || repl != st.Replace || ts != st.TrueShare || fs != st.FalseShare {
						t.Errorf("object sums diverge: cold=%d/%d replace=%d/%d ts=%d/%d fs=%d/%d",
							cold, st.Cold, repl, st.Replace, ts, st.TrueShare, fs, st.FalseShare)
					}
					if inv != st.Invalidations {
						t.Errorf("object inval-caused sum %d != %d", inv, st.Invalidations)
					}

					// Misses must resolve to real objects: nothing lands
					// in the catch-all when the map has the machine.
					for _, o := range rep.Objects {
						if o.Kind == attr.KindNone && o.Misses() > 0 {
							t.Errorf("unmapped object got %d misses", o.Misses())
						}
					}
					_ = cache.WordSize
				})
			}
		}
	}
}

// TestDiagPaperObjects checks the acceptance-level claim: with
// attribution enabled, the top false-sharing objects of the paper's
// §4/§5 case studies are the structures the paper names.
func TestDiagPaperObjects(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		bench string
		block int64
		want  []string // any of these must rank in the top 3 FS objects
	}{
		// Maxflow (§4): excess[] and height[] are the pad & align
		// targets; push_cnt/relabel_cnt are the §5 residual anecdote.
		{"maxflow", 128, []string{"excess", "height", "push_cnt", "relabel_cnt"}},
		// Pverify (§4): done[] and steps[] are the pid-indexed
		// bookkeeping vectors of the group & transpose contribution.
		{"pverify", 128, []string{"done", "steps"}},
		// Mp3d (§4): space[] is write-shared with no locality; pvel[]
		// chunks are not block-aligned.
		{"mp3d", 128, []string{"space", "pvel"}},
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			b := workload.Get(tc.bench)
			if b == nil {
				t.Fatalf("workload %s not registered", tc.bench)
			}
			prog, err := Program(b, Baseline(b), 12, 1, tc.block, transform.Config{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			_, rep, err := Diagnose(ctx, prog, tc.block, 0)
			if err != nil {
				t.Fatalf("diagnose: %v", err)
			}
			if rep.FalseShare == 0 {
				t.Fatalf("no false sharing attributed at block %d", tc.block)
			}
			top := rep.Objects
			if len(top) > 3 {
				top = top[:3]
			}
			for _, o := range top {
				for _, w := range tc.want {
					if o.Object == w {
						return
					}
				}
			}
			var got []string
			for _, o := range top {
				got = append(got, fmt.Sprintf("%s(fs=%d)", o.Object, o.FalseShare))
			}
			t.Errorf("top FS objects %v contain none of %v", got, tc.want)
		})
	}
}
