package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Aggregates holds the Section 1/5 headline numbers at one block
// size, summed over the unoptimizable programs.
type Aggregates struct {
	Block int64

	// FSFractionOfMisses: in the unoptimized programs, the fraction
	// of all cache misses that are false-sharing misses (paper, 128B:
	// ~70%).
	FSFractionOfMisses float64
	// FSEliminated: fraction of false-sharing misses the
	// transformations remove (paper: ~80%).
	FSEliminated float64
	// OtherIncrease: relative increase in non-false-sharing misses
	// (paper: ~19%).
	OtherIncrease float64
	// TotalMissReduction: relative reduction in total misses (paper:
	// about half).
	TotalMissReduction float64
}

// ComputeAggregates derives the headline numbers from fresh runs at
// the given block size.
func ComputeAggregates(cfg Config, block int64) (*Aggregates, error) {
	var fsN, otherN, fsC, otherC int64
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		for _, ver := range []Version{VersionN, VersionC} {
			prog, err := Program(b, ver, procs, cfg.Scale, block, transform.Config{})
			if err != nil {
				return nil, err
			}
			stats, err := MeasureBlocks(prog, []int64{block})
			if err != nil {
				return nil, err
			}
			st := stats[0]
			if ver == VersionN {
				fsN += st.FalseShare
				otherN += st.Misses() - st.FalseShare
			} else {
				fsC += st.FalseShare
				otherC += st.Misses() - st.FalseShare
			}
		}
	}
	a := &Aggregates{Block: block}
	if fsN+otherN > 0 {
		a.FSFractionOfMisses = float64(fsN) / float64(fsN+otherN)
	}
	if fsN > 0 {
		a.FSEliminated = 1 - float64(fsC)/float64(fsN)
	}
	if otherN > 0 {
		a.OtherIncrease = float64(otherC)/float64(otherN) - 1
	}
	if fsN+otherN > 0 {
		a.TotalMissReduction = 1 - float64(fsC+otherC)/float64(fsN+otherN)
	}
	return a, nil
}

// Render formats the aggregates against the paper's claims.
func (a *Aggregates) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Aggregate results at %d-byte blocks (paper values at 128B in parentheses):\n", a.Block)
	fmt.Fprintf(&sb, "  false sharing as fraction of all misses (unoptimized): %5.1f%%  (paper: ~70%%)\n", 100*a.FSFractionOfMisses)
	fmt.Fprintf(&sb, "  false-sharing misses eliminated:                        %5.1f%%  (paper: ~80%%)\n", 100*a.FSEliminated)
	fmt.Fprintf(&sb, "  increase in other misses:                               %5.1f%%  (paper: ~19%%)\n", 100*a.OtherIncrease)
	fmt.Fprintf(&sb, "  total miss reduction:                                   %5.1f%%  (paper: ~50%%)\n", 100*a.TotalMissReduction)
	return sb.String()
}
