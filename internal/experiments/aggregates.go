package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Aggregates holds the Section 1/5 headline numbers at one block
// size, summed over the unoptimizable programs.
type Aggregates struct {
	Block int64

	// FSFractionOfMisses: in the unoptimized programs, the fraction
	// of all cache misses that are false-sharing misses (paper, 128B:
	// ~70%).
	FSFractionOfMisses float64
	// FSEliminated: fraction of false-sharing misses the
	// transformations remove (paper: ~80%).
	FSEliminated float64
	// OtherIncrease: relative increase in non-false-sharing misses
	// (paper: ~19%).
	OtherIncrease float64
	// TotalMissReduction: relative reduction in total misses (paper:
	// about half).
	TotalMissReduction float64
}

// aggCell is one program version's miss split for the aggregates.
type aggCell struct {
	ver   Version
	fs    int64
	other int64
}

// ComputeAggregates derives the headline numbers from fresh runs at
// the given block size. Each (program × version) run is one job,
// fanned out across cfg.Workers; the sums are accumulated after the
// fan-out.
func ComputeAggregates(cfg Config, block int64) (*Aggregates, error) {
	var jobs []pool.Job[aggCell]
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		for _, ver := range []Version{VersionN, VersionC} {
			jobs = append(jobs, pool.Job[aggCell]{
				Key: fmt.Sprintf("aggregates/%s/%s", b.Name, ver),
				Run: func() (aggCell, error) {
					prog, err := Program(b, ver, procs, cfg.Scale, block, transform.Config{})
					if err != nil {
						return aggCell{}, err
					}
					stats, err := MeasureBlocks(prog, []int64{block})
					if err != nil {
						return aggCell{}, err
					}
					st := stats[0]
					return aggCell{ver: ver, fs: st.FalseShare, other: st.Misses() - st.FalseShare}, nil
				},
			})
		}
	}
	cells, err := pool.Run("aggregates", cfg.Workers, jobs)
	if err != nil {
		return nil, err
	}

	var fsN, otherN, fsC, otherC int64
	for _, c := range cells {
		if c.ver == VersionN {
			fsN += c.fs
			otherN += c.other
		} else {
			fsC += c.fs
			otherC += c.other
		}
	}
	a := &Aggregates{Block: block}
	if fsN+otherN > 0 {
		a.FSFractionOfMisses = float64(fsN) / float64(fsN+otherN)
	}
	if fsN > 0 {
		a.FSEliminated = 1 - float64(fsC)/float64(fsN)
	}
	if otherN > 0 {
		a.OtherIncrease = float64(otherC)/float64(otherN) - 1
	}
	if fsN+otherN > 0 {
		a.TotalMissReduction = 1 - float64(fsC+otherC)/float64(fsN+otherN)
	}
	return a, nil
}

// Render formats the aggregates against the paper's claims.
func (a *Aggregates) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Aggregate results at %d-byte blocks (paper values at 128B in parentheses):\n", a.Block)
	fmt.Fprintf(&sb, "  false sharing as fraction of all misses (unoptimized): %5.1f%%  (paper: ~70%%)\n", 100*a.FSFractionOfMisses)
	fmt.Fprintf(&sb, "  false-sharing misses eliminated:                        %5.1f%%  (paper: ~80%%)\n", 100*a.FSEliminated)
	fmt.Fprintf(&sb, "  increase in other misses:                               %5.1f%%  (paper: ~19%%)\n", 100*a.OtherIncrease)
	fmt.Fprintf(&sb, "  total miss reduction:                                   %5.1f%%  (paper: ~50%%)\n", 100*a.TotalMissReduction)
	return sb.String()
}
