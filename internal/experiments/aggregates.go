package experiments

import (
	"context"
	"fmt"
	"strings"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Aggregates holds the Section 1/5 headline numbers at one block
// size, summed over the unoptimizable programs.
type Aggregates struct {
	Block int64

	// FSFractionOfMisses: in the unoptimized programs, the fraction
	// of all cache misses that are false-sharing misses (paper, 128B:
	// ~70%).
	FSFractionOfMisses float64
	// FSEliminated: fraction of false-sharing misses the
	// transformations remove (paper: ~80%).
	FSEliminated float64
	// OtherIncrease: relative increase in non-false-sharing misses
	// (paper: ~19%).
	OtherIncrease float64
	// TotalMissReduction: relative reduction in total misses (paper:
	// about half).
	TotalMissReduction float64
}

// aggCell is one program version's miss split for the aggregates.
// The fields are exported so a cell survives the JSON round trip
// through the resume journal.
type aggCell struct {
	Prog  string  `json:"prog"`
	Ver   Version `json:"ver"`
	FS    int64   `json:"fs"`
	Other int64   `json:"other"`
}

// ComputeAggregates derives the headline numbers from fresh runs at
// the given block size. Each (program × version) run is one job,
// fanned out across cfg.Workers; the sums are accumulated after the
// fan-out.
//
// The aggregates compare each program's N and C runs, so when either
// version of a program fails (and cfg.Policy keeps going) both its
// cells are excluded from the sums — a one-sided contribution would
// bias every headline number — and the *Partial error names the
// failures.
func ComputeAggregates(cfg Config, block int64) (*Aggregates, error) {
	var jobs []pool.Job[aggCell]
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		for _, ver := range []Version{VersionN, VersionC} {
			key := fmt.Sprintf("aggregates/%s/%s", b.Name, ver)
			jobs = append(jobs, pool.Job[aggCell]{
				Key: key,
				Fingerprint: fingerprint("aggregates",
					"prog="+b.Name, "ver="+string(ver),
					fmt.Sprintf("procs=%d", procs), fmt.Sprintf("blk=%d", block),
					fmt.Sprintf("scale=%d", cfg.Scale), fmt.Sprintf("budget=%d", cfg.StepBudget),
					fmt.Sprintf("verify=%v", cfg.Verify),
					"src="+srcHash(b.Source(cfg.Scale))),
				Run: func(ctx context.Context) (aggCell, error) {
					prog, err := cfg.buildProgram(ctx, key, b, ver, procs, block, transform.Config{})
					if err != nil {
						return aggCell{}, err
					}
					stats, err := MeasureBlocksCtx(ctx, prog, []int64{block}, 1, cfg.StepBudget)
					if err != nil {
						return aggCell{}, err
					}
					st := stats[0]
					return aggCell{Prog: b.Name, Ver: ver, FS: st.FalseShare, Other: st.Misses() - st.FalseShare}, nil
				},
			})
		}
	}
	cells, err := runJobs(cfg, "aggregates", jobs)
	failed := failedKeys(err)
	excluded := map[string]bool{}
	for _, j := range jobs {
		if failed[j.Key] {
			// Exclude the whole program, both versions.
			excluded[progOfAggKey(j.Key)] = true
		}
	}
	if err != nil && len(excluded) == len(workload.Unoptimizable()) {
		return nil, partial(err, len(jobs))
	}

	var fsN, otherN, fsC, otherC int64
	for i, c := range cells {
		if failed[jobs[i].Key] || excluded[c.Prog] {
			continue
		}
		if c.Ver == VersionN {
			fsN += c.FS
			otherN += c.Other
		} else {
			fsC += c.FS
			otherC += c.Other
		}
	}
	a := &Aggregates{Block: block}
	if fsN+otherN > 0 {
		a.FSFractionOfMisses = float64(fsN) / float64(fsN+otherN)
	}
	if fsN > 0 {
		a.FSEliminated = 1 - float64(fsC)/float64(fsN)
	}
	if otherN > 0 {
		a.OtherIncrease = float64(otherC)/float64(otherN) - 1
	}
	if fsN+otherN > 0 {
		a.TotalMissReduction = 1 - float64(fsC+otherC)/float64(fsN+otherN)
	}
	return a, partial(err, len(jobs))
}

// progOfAggKey extracts the program name from an "aggregates/<prog>/<ver>"
// job key.
func progOfAggKey(key string) string {
	parts := strings.Split(key, "/")
	if len(parts) >= 2 {
		return parts[1]
	}
	return key
}

// Render formats the aggregates against the paper's claims.
func (a *Aggregates) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Aggregate results at %d-byte blocks (paper values at 128B in parentheses):\n", a.Block)
	fmt.Fprintf(&sb, "  false sharing as fraction of all misses (unoptimized): %5.1f%%  (paper: ~70%%)\n", 100*a.FSFractionOfMisses)
	fmt.Fprintf(&sb, "  false-sharing misses eliminated:                        %5.1f%%  (paper: ~80%%)\n", 100*a.FSEliminated)
	fmt.Fprintf(&sb, "  increase in other misses:                               %5.1f%%  (paper: ~19%%)\n", 100*a.OtherIncrease)
	fmt.Fprintf(&sb, "  total miss reduction:                                   %5.1f%%  (paper: ~50%%)\n", 100*a.TotalMissReduction)
	return sb.String()
}
