package experiments

import (
	"testing"

	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// TestPageGranularity exercises the related-work setting of Bolosky et
// al. and Granston (paper §6): false sharing of virtual-memory pages
// rather than cache blocks. The same simulator handles it — a page is
// just a 4096-byte coherence unit — and the same transformations,
// asked to pad to the page size, eliminate most page-level false
// sharing too.
func TestPageGranularity(t *testing.T) {
	const pageSize = 4096
	b := workload.Get("pverify")
	nprocs := 8

	nProg, err := Program(b, VersionN, nprocs, 1, pageSize, transform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nStats, err := MeasureBlocks(nProg, []int64{pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if nStats[0].FalseShare == 0 {
		t.Fatalf("page-level false sharing expected in the unoptimized program")
	}

	cProg, err := Program(b, VersionC, nprocs, 1, pageSize, transform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cStats, err := MeasureBlocks(cProg, []int64{pageSize})
	if err != nil {
		t.Fatal(err)
	}
	red := 1 - float64(cStats[0].FalseShare)/float64(nStats[0].FalseShare)
	t.Logf("page-level FS: %d -> %d (%.1f%% reduction)",
		nStats[0].FalseShare, cStats[0].FalseShare, 100*red)
	if red < 0.5 {
		t.Errorf("page-padding transformations should remove most page FS: %.1f%%", 100*red)
	}
}
