package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Table2Row is one row of Table 2: a program's total false-sharing
// reduction and the fraction attributable to each transformation,
// averaged over the 8-256 byte block sizes.
type Table2Row struct {
	Program string
	// Total is the total false-sharing miss reduction (percent of the
	// unoptimized program's false-sharing misses eliminated by the
	// fully transformed version).
	Total float64
	// ByKind is the reduction achieved by each transformation applied
	// alone (percent of the unoptimized false-sharing misses).
	GroupTranspose float64
	Indirection    float64
	PadAlign       float64
	Locks          float64
}

// onlyConfigs builds the heuristic configurations that enable exactly
// one transformation, for the per-transformation attribution.
func onlyConfigs() map[string]transform.Config {
	all := func() transform.Config { return transform.Config{} }
	return map[string]transform.Config{
		"all": all(),
		"gt": {
			DisableIndirection: true, DisablePadAlign: true, CoAllocateLocks: true,
		},
		"ind": {
			DisableGroupTranspose: true, DisablePadAlign: true, CoAllocateLocks: true,
		},
		"pad": {
			DisableGroupTranspose: true, DisableIndirection: true, CoAllocateLocks: true,
		},
		"locks": {
			DisableGroupTranspose: true, DisableIndirection: true, DisablePadAlign: true,
		},
	}
}

// Table2 regenerates the paper's Table 2 for the six unoptimizable
// programs: the false-sharing reduction of the full restructurer and
// of each transformation in isolation, averaged over the block sizes.
func Table2(cfg Config) ([]Table2Row, error) {
	variants := onlyConfigs()
	var rows []Table2Row
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		row := Table2Row{Program: b.Name}

		// Per block size: FS misses of N and of each variant.
		reductions := map[string][]float64{}
		for _, blk := range cfg.Table2Blocks {
			nProg, err := Program(b, VersionN, procs, cfg.Scale, blk, transform.Config{})
			if err != nil {
				return nil, fmt.Errorf("table2 %s N: %w", b.Name, err)
			}
			nStats, err := MeasureBlocks(nProg, []int64{blk})
			if err != nil {
				return nil, err
			}
			fsN := nStats[0].FalseShare
			if fsN == 0 {
				continue // no false sharing at this block size
			}
			for name, hc := range variants {
				cProg, err := Program(b, VersionC, procs, cfg.Scale, blk, hc)
				if err != nil {
					return nil, fmt.Errorf("table2 %s %s: %w", b.Name, name, err)
				}
				cStats, err := MeasureBlocks(cProg, []int64{blk})
				if err != nil {
					return nil, err
				}
				red := 1 - float64(cStats[0].FalseShare)/float64(fsN)
				if red < 0 {
					red = 0
				}
				reductions[name] = append(reductions[name], red)
			}
		}
		row.Total = 100 * mean(reductions["all"])
		row.GroupTranspose = 100 * mean(reductions["gt"])
		row.Indirection = 100 * mean(reductions["ind"])
		row.PadAlign = 100 * mean(reductions["pad"])
		row.Locks = 100 * mean(reductions["locks"])
		rows = append(rows, row)
	}
	return rows, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RenderTable2 formats the rows like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: false-sharing miss reduction by transformation (avg over 8-256 byte blocks)\n")
	sb.WriteString(fmt.Sprintf("%-11s %8s | %10s %11s %10s %6s\n",
		"program", "total%", "grp&trans%", "indirection%", "pad&align%", "locks%"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %8.1f | %10.1f %11.1f %10.1f %6.1f\n",
			r.Program, r.Total, r.GroupTranspose, r.Indirection, r.PadAlign, r.Locks))
	}
	return sb.String()
}
