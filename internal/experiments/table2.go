package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// Table2Row is one row of Table 2: a program's total false-sharing
// reduction and the fraction attributable to each transformation,
// averaged over the 8-256 byte block sizes.
type Table2Row struct {
	Program string
	// Total is the total false-sharing miss reduction (percent of the
	// unoptimized program's false-sharing misses eliminated by the
	// fully transformed version).
	Total float64
	// ByKind is the reduction achieved by each transformation applied
	// alone (percent of the unoptimized false-sharing misses).
	GroupTranspose float64
	Indirection    float64
	PadAlign       float64
	Locks          float64
}

// onlyConfigs builds the heuristic configurations that enable exactly
// one transformation, for the per-transformation attribution.
func onlyConfigs() map[string]transform.Config {
	all := func() transform.Config { return transform.Config{} }
	return map[string]transform.Config{
		"all": all(),
		"gt": {
			DisableIndirection: true, DisablePadAlign: true, CoAllocateLocks: true,
		},
		"ind": {
			DisableGroupTranspose: true, DisablePadAlign: true, CoAllocateLocks: true,
		},
		"pad": {
			DisableGroupTranspose: true, DisableIndirection: true, CoAllocateLocks: true,
		},
		"locks": {
			DisableGroupTranspose: true, DisableIndirection: true, DisablePadAlign: true,
		},
	}
}

// table2Key indexes one Table 2 measurement: a benchmark's FS miss
// count at one block size, for the unoptimized program ("N") or one
// heuristic variant.
type table2Key struct {
	prog    string
	block   int64
	variant string // "N" or an onlyConfigs key
}

// Table2 regenerates the paper's Table 2 for the six unoptimizable
// programs: the false-sharing reduction of the full restructurer and
// of each transformation in isolation, averaged over the block sizes.
//
// Every (program × block × variant) measurement — including the
// unoptimized reference — is an independent job; the reductions are
// aggregated after the fan-out, in the same block order as the old
// serial loop. Variant runs at block sizes where the unoptimized
// program shows no false sharing are discarded, exactly as the serial
// path skipped them.
//
// When some measurements fail (and cfg.Policy keeps going), a block
// size is dropped from a program's average when its reference or any
// variant is missing, and the row itself is dropped when no block
// size survives; a *Partial error names the failed cells.
func Table2(cfg Config) ([]Table2Row, error) {
	variants := onlyConfigs()
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)

	var jobs []pool.Job[int64]
	var keys []table2Key
	add := func(b *workload.Benchmark, procs int, blk int64, variant string, hc transform.Config) {
		keys = append(keys, table2Key{prog: b.Name, block: blk, variant: variant})
		ver := VersionC
		if variant == "N" {
			ver = VersionN
		}
		key := fmt.Sprintf("table2/%s/b%d/%s", b.Name, blk, variant)
		jobs = append(jobs, pool.Job[int64]{
			Key: key,
			Fingerprint: fingerprint("table2",
				"prog="+b.Name, fmt.Sprintf("blk=%d", blk), "variant="+variant,
				fmt.Sprintf("procs=%d", procs), fmt.Sprintf("heur=%+v", hc),
				fmt.Sprintf("scale=%d", cfg.Scale), fmt.Sprintf("budget=%d", cfg.StepBudget),
				fmt.Sprintf("verify=%v", cfg.Verify),
				"src="+srcHash(b.Source(cfg.Scale))),
			Run: func(ctx context.Context) (int64, error) {
				prog, err := cfg.buildProgram(ctx, key, b, ver, procs, blk, hc)
				if err != nil {
					return 0, fmt.Errorf("table2 %s %s: %w", b.Name, variant, err)
				}
				// Attribution covers the reference and the fully
				// transformed variant; the single-transformation
				// ablations stay plain (their deltas are Table 2's
				// own columns).
				diag := cfg.Diag && (variant == "N" || variant == "all")
				st, err := cfg.measureCell(ctx, key, b.Name, ver, procs, blk, prog, diag)
				if err != nil {
					return 0, err
				}
				return st.FalseShare, nil
			},
		})
	}
	for _, b := range workload.Unoptimizable() {
		procs := cfg.Fig3Procs
		if b.Name == "topopt" && cfg.Fig3ProcsTopopt > 0 {
			procs = cfg.Fig3ProcsTopopt
		}
		for _, blk := range cfg.Table2Blocks {
			add(b, procs, blk, "N", transform.Config{})
			for _, name := range names {
				add(b, procs, blk, name, variants[name])
			}
		}
	}

	fsCounts, err := runJobs(cfg, "table2", jobs)
	failed := failedKeys(err)
	fs := make(map[table2Key]int64, len(keys))
	have := make(map[table2Key]bool, len(keys))
	for i, k := range keys {
		if failed[jobs[i].Key] {
			continue
		}
		fs[k] = fsCounts[i]
		have[k] = true
	}

	var rows []Table2Row
	for _, b := range workload.Unoptimizable() {
		row := Table2Row{Program: b.Name}
		reductions := map[string][]float64{}
		usable := 0
		for _, blk := range cfg.Table2Blocks {
			nKey := table2Key{prog: b.Name, block: blk, variant: "N"}
			if !have[nKey] {
				continue // reference measurement failed
			}
			complete := true
			for _, name := range names {
				if !have[table2Key{prog: b.Name, block: blk, variant: name}] {
					complete = false
					break
				}
			}
			if !complete {
				continue // a variant failed: the block can't be attributed
			}
			usable++
			fsN := fs[nKey]
			if fsN == 0 {
				continue // no false sharing at this block size
			}
			for _, name := range names {
				red := 1 - float64(fs[table2Key{prog: b.Name, block: blk, variant: name}])/float64(fsN)
				if red < 0 {
					red = 0
				}
				reductions[name] = append(reductions[name], red)
			}
		}
		if usable == 0 && err != nil {
			continue // every block size of this program lost a cell
		}
		row.Total = 100 * mean(reductions["all"])
		row.GroupTranspose = 100 * mean(reductions["gt"])
		row.Indirection = 100 * mean(reductions["ind"])
		row.PadAlign = 100 * mean(reductions["pad"])
		row.Locks = 100 * mean(reductions["locks"])
		rows = append(rows, row)
	}
	return rows, partial(err, len(jobs))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RenderTable2 formats the rows like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: false-sharing miss reduction by transformation (avg over 8-256 byte blocks)\n")
	sb.WriteString(fmt.Sprintf("%-11s %8s | %10s %11s %10s %6s\n",
		"program", "total%", "grp&trans%", "indirection%", "pad&align%", "locks%"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %8.1f | %10.1f %11.1f %10.1f %6.1f\n",
			r.Program, r.Total, r.GroupTranspose, r.Indirection, r.PadAlign, r.Locks))
	}
	return sb.String()
}
