package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"falseshare/internal/core"
	"falseshare/internal/obs"
	"falseshare/internal/sim/attr"
	"falseshare/internal/sim/cache"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
)

// DiagCell records one experiment cell's miss attribution: which
// objects suffered which misses, plus the restructuring decisions the
// cell's program was built with (C versions only). Paired N/C cells
// are the raw material for RenderDiag's before/after deltas.
type DiagCell struct {
	// Key is the experiment cell, e.g. "fig3/maxflow/C/b128".
	Key     string  `json:"key"`
	Program string  `json:"program"`
	Version Version `json:"version"`
	Block   int64   `json:"block"`
	Procs   int     `json:"procs"`
	// Applied are the rendered decisions behind the cell's program;
	// AppliedTargets the object names each decision touches, index-
	// aligned with Applied.
	Applied        []string     `json:"applied,omitempty"`
	AppliedTargets [][]string   `json:"applied_targets,omitempty"`
	Report         *attr.Report `json:"report,omitempty"`
}

var (
	diagMu    sync.Mutex
	diagCells []DiagCell
)

// ResetDiag clears the recorded attribution cells; each driver run
// starts fresh.
func ResetDiag() {
	diagMu.Lock()
	diagCells = nil
	diagMu.Unlock()
}

// DiagCells returns the cells recorded since the last reset, in
// insertion order (nondeterministic across parallel workers; sort by
// Key for deterministic output). Drivers snapshot the length before a
// section and slice from it after, like DegradedEvents.
func DiagCells() []DiagCell {
	diagMu.Lock()
	defer diagMu.Unlock()
	return append([]DiagCell(nil), diagCells...)
}

func recordDiagCell(c DiagCell) {
	diagMu.Lock()
	diagCells = append(diagCells, c)
	diagMu.Unlock()
}

// MeasureBlocksAttr is MeasureBlocksCtx with miss attribution: one
// collector per block-size simulator over a shared address map fed by
// the live machine. The map is not goroutine-safe, so every simulator
// runs inline on the VM's goroutine regardless of worker settings —
// attribution runs trade throughput for evidence.
func MeasureBlocksAttr(ctx context.Context, prog *core.Program, blocks []int64, budget int64) ([]*cache.Stats, []*attr.Report, error) {
	if len(blocks) == 0 {
		return nil, nil, fmt.Errorf("experiments: MeasureBlocksAttr: no block sizes given")
	}
	sp := obs.Begin("measure-attr")
	defer sp.End()
	sp.Set("blocks", int64(len(blocks)))
	nprocs := int(prog.Layout.Nprocs)
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return nil, nil, err
	}
	m := vm.New(bc)
	m.SetContext(ctx)
	if budget > 0 {
		m.MaxInstrs = budget
	}
	amap := attr.NewMap(prog.Layout)
	amap.AttachMachine(m)
	sims := make([]*cache.Sim, len(blocks))
	cols := make([]*attr.Collector, len(blocks))
	for i, blk := range blocks {
		sims[i], err = cache.New(cache.DefaultConfig(nprocs, blk))
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: MeasureBlocksAttr: block %d: %w", blk, err)
		}
		cols[i] = attr.NewCollector(amap, blk)
		sims[i].SetAttributor(cols[i])
	}
	installMetrics(sims, blocks)
	if err := m.Run(func(r vm.Ref) {
		for _, s := range sims {
			s.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
		}
	}); err != nil {
		return nil, nil, err
	}
	amap.ResolveOwners()
	stats := make([]*cache.Stats, len(sims))
	reports := make([]*attr.Report, len(sims))
	for i := range sims {
		stats[i] = sims[i].Stats()
		reports[i] = cols[i].Report(nprocs)
	}
	return stats, reports, nil
}

// Diagnose measures one program at one block size with attribution —
// the single-cell entry point fsc -diag and fssim -diag use.
func Diagnose(ctx context.Context, prog *core.Program, block int64, budget int64) (*cache.Stats, *attr.Report, error) {
	stats, reps, err := MeasureBlocksAttr(ctx, prog, []int64{block}, budget)
	if err != nil {
		return nil, nil, err
	}
	return stats[0], reps[0], nil
}

// measureCell is the per-cell measurement behind the Figure 3 and
// Table 2 jobs: plain stats normally, attributed stats recorded under
// the cell key when diag is set.
func (cfg Config) measureCell(ctx context.Context, key, program string, ver Version, procs int, blk int64, prog *core.Program, diag bool) (*cache.Stats, error) {
	if !diag {
		stats, err := MeasureBlocksCtx(ctx, prog, []int64{blk}, 1, cfg.StepBudget)
		if err != nil {
			return nil, err
		}
		return stats[0], nil
	}
	stats, reps, err := MeasureBlocksAttr(ctx, prog, []int64{blk}, cfg.StepBudget)
	if err != nil {
		return nil, err
	}
	recordDiagCell(DiagCell{
		Key:            key,
		Program:        program,
		Version:        ver,
		Block:          blk,
		Procs:          procs,
		Applied:        decisionStrings(prog.Applied),
		AppliedTargets: decisionTargets(prog.Applied),
		Report:         reps[0],
	})
	return stats[0], nil
}

func decisionStrings(ds []*transform.Decision) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.String())
	}
	return out
}

func decisionTargets(ds []*transform.Decision) [][]string {
	var out [][]string
	for _, d := range ds {
		out = append(out, d.Targets())
	}
	return out
}

// DiagDelta is one row of the aggregate diagnosis: the false-sharing
// misses of the objects one decision touches, before (N) and after
// (C) the transformation.
type DiagDelta struct {
	Section  string `json:"section"` // "fig3" or "table2"
	Program  string `json:"program"`
	Block    int64  `json:"block"`
	Decision string `json:"decision"` // or "(residual)" / "(total)"
	Objects  string `json:"objects"`  // matched object names
	Before   int64  `json:"fs_before"`
	After    int64  `json:"fs_after"`
}

// Delta returns eliminated false-sharing misses (positive: improved).
func (d DiagDelta) Delta() int64 { return d.Before - d.After }

// DiagDeltas pairs the recorded N and C cells per (section, program,
// block) and computes per-decision false-sharing deltas. Rows sort by
// section, program, block, then decision order.
func DiagDeltas(cells []DiagCell) []DiagDelta {
	type pk struct {
		section, program string
		block            int64
	}
	type pair struct {
		n, c *DiagCell
	}
	pairs := map[pk]*pair{}
	var order []pk
	for i := range cells {
		c := &cells[i]
		section := c.Key
		if j := strings.IndexByte(section, '/'); j >= 0 {
			section = section[:j]
		}
		k := pk{section, c.Program, c.Block}
		p := pairs[k]
		if p == nil {
			p = &pair{}
			pairs[k] = p
			order = append(order, k)
		}
		switch c.Version {
		case VersionN:
			p.n = c
		case VersionC:
			p.c = c
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.section != b.section {
			return a.section < b.section
		}
		if a.program != b.program {
			return a.program < b.program
		}
		return a.block < b.block
	})
	var out []DiagDelta
	for _, k := range order {
		p := pairs[k]
		if p.n == nil || p.c == nil || p.n.Report == nil || p.c.Report == nil {
			continue
		}
		out = append(out, pairDeltas(k.section, k.program, k.block, p.n.Report, p.c.Report, p.c.Applied, p.c.AppliedTargets)...)
	}
	return out
}

// pairDeltas attributes one N/C report pair to the applied decisions:
// each decision claims the false-sharing misses of the objects it
// targets (by name, by owning pointer global, or — for indirection —
// by element struct); whatever no decision claims lands in a
// residual row, and a total row closes the cell.
func pairDeltas(section, program string, block int64, before, after *attr.Report, applied []string, targets [][]string) []DiagDelta {
	var out []DiagDelta
	claimedB := map[string]bool{}
	claimedA := map[string]bool{}
	for i, dec := range applied {
		var tg []string
		if i < len(targets) {
			tg = targets[i]
		}
		bObjs, bSum := claimObjects(before, tg, claimedB)
		aObjs, aSum := claimObjects(after, tg, claimedA)
		names := bObjs
		if len(names) == 0 {
			names = aObjs
		}
		out = append(out, DiagDelta{
			Section: section, Program: program, Block: block,
			Decision: dec, Objects: strings.Join(names, ","),
			Before: bSum, After: aSum,
		})
	}
	var resB, resA int64
	var resObjs []string
	for _, o := range before.Objects {
		if !claimedB[o.Object] && o.FalseShare > 0 {
			resB += o.FalseShare
			resObjs = append(resObjs, o.Object)
		}
	}
	for _, o := range after.Objects {
		if !claimedA[o.Object] && o.FalseShare > 0 {
			resA += o.FalseShare
		}
	}
	if resB > 0 || resA > 0 {
		out = append(out, DiagDelta{
			Section: section, Program: program, Block: block,
			Decision: "(residual)", Objects: strings.Join(resObjs, ","),
			Before: resB, After: resA,
		})
	}
	out = append(out, DiagDelta{
		Section: section, Program: program, Block: block,
		Decision: "(total)",
		Before:   before.FalseShare, After: after.FalseShare,
	})
	return out
}

// claimObjects sums the false-sharing misses of the report objects a
// decision's targets cover, marking them claimed. A target matches an
// object by exact name, or — "Struct.field" targets — by the object's
// element struct.
func claimObjects(r *attr.Report, targets []string, claimed map[string]bool) ([]string, int64) {
	var names []string
	var sum int64
	for _, o := range r.Objects {
		if claimed[o.Object] || !matchTarget(&o, targets) {
			continue
		}
		claimed[o.Object] = true
		if o.FalseShare > 0 || o.TrueShare > 0 {
			names = append(names, o.Object)
		}
		sum += o.FalseShare
	}
	return names, sum
}

func matchTarget(o *attr.ObjectStats, targets []string) bool {
	for _, t := range targets {
		if t == o.Object {
			return true
		}
		if i := strings.IndexByte(t, '.'); i > 0 && o.Struct != "" && t[:i] == o.Struct {
			return true
		}
	}
	return false
}

// RenderDiag formats the aggregate diagnosis. A decision whose delta
// summed across a program's block sizes is negative — the
// transformation added false sharing net of all blocks — carries a
// REGRESSION marker on its rows, which CI greps for. A single-block
// negative delta is not flagged: packing density legitimately shifts
// with block size (indirection shrinks records, so at small blocks
// two now fit where one did), and the paper's own Table 2 averages
// reductions over the block range for the same reason.
func RenderDiag(cells []DiagCell) string {
	deltas := DiagDeltas(cells)
	var sb strings.Builder
	sb.WriteString("Diagnosis: false-sharing misses by applied decision (before=N after=C)\n")
	if len(deltas) == 0 {
		sb.WriteString("  (no paired N/C attribution cells recorded)\n")
		return sb.String()
	}
	type dk struct{ section, program, decision string }
	net := map[dk]int64{}
	for _, d := range deltas {
		net[dk{d.Section, d.Program, d.Decision}] += d.Delta()
	}
	fmt.Fprintf(&sb, "%-7s %-11s %6s %10s %9s %9s  %s\n",
		"section", "program", "block", "fs-before", "fs-after", "delta", "decision [objects]")
	for _, d := range deltas {
		mark := ""
		if net[dk{d.Section, d.Program, d.Decision}] < 0 && d.Decision != "(residual)" && d.Decision != "(total)" {
			mark = "  REGRESSION"
		}
		obj := ""
		if d.Objects != "" {
			obj = " [" + d.Objects + "]"
		}
		fmt.Fprintf(&sb, "%-7s %-11s %6d %10d %9d %9d  %s%s%s\n",
			d.Section, d.Program, d.Block, d.Before, d.After, d.Delta(), d.Decision, obj, mark)
	}
	return sb.String()
}

// RenderDiagPair renders the per-decision deltas of one explicit
// before/after report pair — fsc -diag uses it on its single program.
func RenderDiagPair(program string, block int64, before, after *attr.Report, applied []*transform.Decision) string {
	deltas := pairDeltas("diag", program, block, before, after,
		decisionStrings(applied), decisionTargets(applied))
	var sb strings.Builder
	sb.WriteString("false-sharing delta by decision (before=original after=transformed)\n")
	fmt.Fprintf(&sb, "%10s %9s %9s  %s\n", "fs-before", "fs-after", "delta", "decision [objects]")
	for _, d := range deltas {
		obj := ""
		if d.Objects != "" {
			obj = " [" + d.Objects + "]"
		}
		fmt.Fprintf(&sb, "%10d %9d %9d  %s%s\n", d.Before, d.After, d.Delta(), d.Decision, obj)
	}
	return sb.String()
}
