package experiments

import (
	"context"
	"sort"
	"sync"

	"falseshare/internal/core"
	"falseshare/internal/transform"
	"falseshare/internal/workload"
)

// DegradeEvent records one experiment cell whose restructuring rolled
// objects back to the identity layout (safe mode): the cell still
// completed, but with fewer transformations than planned.
type DegradeEvent struct {
	// Key is the experiment cell, e.g. "fig3/maxflow/C/b128".
	Key string
	// Objects are the degraded object names (deduplicated, sorted).
	Objects []string
	// Details are the rendered Degradation diagnostics.
	Details []string
}

var (
	degradeMu     sync.Mutex
	degradeEvents []DegradeEvent
)

// ResetDegraded clears the recorded degrade events; each driver run
// starts fresh.
func ResetDegraded() {
	degradeMu.Lock()
	degradeEvents = nil
	degradeMu.Unlock()
}

// DegradedEvents returns the events recorded since the last reset, in
// insertion order (nondeterministic across parallel workers; sort by
// Key for deterministic output). Drivers snapshot the length before a
// section and slice from it after, to attribute events per section.
func DegradedEvents() []DegradeEvent {
	degradeMu.Lock()
	defer degradeMu.Unlock()
	return append([]DegradeEvent(nil), degradeEvents...)
}

// DegradedObjects counts the distinct degraded objects across all
// recorded events (the "N objects degraded" summary number).
func DegradedObjects() int {
	seen := map[string]bool{}
	for _, e := range DegradedEvents() {
		for _, o := range e.Objects {
			seen[e.Key+"\x00"+o] = true
		}
	}
	return len(seen)
}

func recordDegraded(key string, degs []core.Degradation) {
	if len(degs) == 0 {
		return
	}
	ev := DegradeEvent{Key: key}
	seen := map[string]bool{}
	for _, d := range degs {
		if !seen[d.Object] {
			seen[d.Object] = true
			ev.Objects = append(ev.Objects, d.Object)
		}
		ev.Details = append(ev.Details, d.String())
	}
	sort.Strings(ev.Objects)
	degradeMu.Lock()
	degradeEvents = append(degradeEvents, ev)
	degradeMu.Unlock()
}

// buildProgram is the verification-aware builder behind every
// experiment cell. Without cfg.Verify it is ProgramCtx; with it, C
// versions run the restructurer in safe mode — the transformed
// program is translation-validated against the original, degraded
// objects are recorded against the cell key, and the (possibly
// partially rolled back) program still completes the cell.
func (cfg Config) buildProgram(ctx context.Context, key string, b *workload.Benchmark, ver Version, nprocs int, block int64, heur transform.Config) (*core.Program, error) {
	if ver != VersionC || !cfg.Verify {
		return ProgramCtx(ctx, b, ver, nprocs, cfg.Scale, block, heur)
	}
	opt := core.Options{Nprocs: nprocs, BlockSize: block, Heuristics: heur, Verify: true}
	res, err := core.RestructureCtx(ctx, b.Source(cfg.Scale), opt)
	if err != nil {
		return nil, err
	}
	recordDegraded(key, res.Degraded)
	return res.Transformed, nil
}
