package experiments

import (
	"strings"
	"testing"
)

func TestCSVRenders(t *testing.T) {
	cells := []Fig3Cell{{
		Program: "x", Version: VersionN, Block: 128, Procs: 12,
		Refs: 100, FSMisses: 10, OtherMisses: 5, FSRate: 10, OtherRate: 5,
	}}
	out := CSVFigure3(cells)
	if !strings.HasPrefix(out, "program,version,") || !strings.Contains(out, "x,N,128,12,100,10,5,") {
		t.Errorf("fig3 csv:\n%s", out)
	}

	curves := []Curve{{
		Program: "x", Version: VersionC, Counts: []int{1, 2},
		Speedup: []float64{1, 1.9}, Cycles: []float64{100, 52},
	}}
	out = CSVCurves(curves)
	if !strings.Contains(out, "x,C,2,1.9000,52") {
		t.Errorf("curves csv:\n%s", out)
	}

	rows := []Table2Row{{Program: "x", Total: 90.5, GroupTranspose: 80}}
	out = CSVTable2(rows)
	if !strings.Contains(out, "x,90.50,80.00,0.00,0.00,0.00") {
		t.Errorf("table2 csv:\n%s", out)
	}
}
