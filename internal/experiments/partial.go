package experiments

import (
	"errors"
	"fmt"
	"strings"

	"falseshare/internal/experiments/pool"
)

// Partial reports an experiment that produced renderable output
// despite failed cells: the driver assembled everything the surviving
// cells support and this error lists exactly what is missing. Callers
// running keep-going render the partial result and print the failure
// section; fail-fast callers treat it like any other error.
type Partial struct {
	// Failed lists the failed cell keys in submission order.
	Failed []string
	// Total is the total number of cells the experiment enumerated.
	Total int
	// Err is the underlying pool error (unwraps to every keyed job
	// error).
	Err error
}

func (p *Partial) Error() string {
	return fmt.Sprintf("%d of %d cells failed: %s", len(p.Failed), p.Total, strings.Join(p.Failed, ", "))
}

// Unwrap exposes the pool error so errors.Is/As reach the per-job
// failures (context.Canceled, faultinject.Error, ...).
func (p *Partial) Unwrap() error { return p.Err }

// Details renders one line per failure for the CLI's error section.
func (p *Partial) Details() string {
	var sb strings.Builder
	for _, f := range pool.Failures(p.Err) {
		fmt.Fprintf(&sb, "  %s\n", f.Error())
	}
	return sb.String()
}

// AsPartial extracts a *Partial from an experiment error.
func AsPartial(err error) (*Partial, bool) {
	var p *Partial
	ok := errors.As(err, &p)
	return p, ok
}

// partial wraps a pool error (possibly nil) into the experiment-level
// error contract: nil stays nil, anything else becomes a *Partial
// listing the failed keys against the cell total.
func partial(err error, total int) error {
	if err == nil {
		return nil
	}
	failures := pool.Failures(err)
	keys := make([]string, len(failures))
	for i, f := range failures {
		keys[i] = f.Key
	}
	return &Partial{Failed: keys, Total: total, Err: err}
}

// failedKeys builds the failed-key set of a pool run, for drivers
// that must know which result slots are valid.
func failedKeys(err error) map[string]bool {
	failures := pool.Failures(err)
	if len(failures) == 0 {
		return nil
	}
	set := make(map[string]bool, len(failures))
	for _, f := range failures {
		set[f.Key] = true
	}
	return set
}
