package experiments

import (
	"fmt"
	"strings"

	"falseshare/internal/sim/ksr"
	"falseshare/internal/workload"
)

// Table3Row is one row of Table 3: the maximum speedup of each
// available version and the processor count where it occurs.
type Table3Row struct {
	Program string
	// Max[ver] and At[ver] hold the maximum speedup and its processor
	// count; versions absent from the program are missing from the
	// maps.
	Max map[Version]float64
	At  map[Version]int
	// Curves keeps the underlying data for plotting and tests.
	Curves []Curve
}

// Table3 regenerates the paper's Table 3 across the whole suite. The
// sweeps of all ten programs fan out through one job pool.
//
// When some sweep jobs fail (and cfg.Policy keeps going), programs
// whose sweeps completed still get rows; a program missing any sweep
// point is dropped (its maxima would be bogus) and reported through
// the *Partial error.
func Table3(cfg Config, machine ksr.Config) ([]Table3Row, error) {
	benches := workload.All()
	perBench, err := benchCurves("table3", benches, cfg, machine)
	if err != nil && perBench == nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	var rows []Table3Row
	for i, b := range benches {
		curves := perBench[i]
		if curves == nil {
			continue // this benchmark lost a sweep job
		}
		row := Table3Row{
			Program: b.Name,
			Max:     map[Version]float64{},
			At:      map[Version]int{},
			Curves:  curves,
		}
		for _, c := range curves {
			row.Max[c.Version] = c.MaxSpeed
			row.At[c.Version] = c.MaxAt
		}
		rows = append(rows, row)
	}
	return rows, err
}

// RenderTable3 formats the rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: maximum speedups (processors at maximum)\n")
	sb.WriteString(fmt.Sprintf("%-11s %12s %12s %12s\n", "program", "original", "compiler", "programmer"))
	cell := func(r Table3Row, v Version) string {
		if _, ok := r.Max[v]; !ok {
			return ""
		}
		return fmt.Sprintf("%.1f (%d)", r.Max[v], r.At[v])
	}
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-11s %12s %12s %12s\n",
			r.Program, cell(r, VersionN), cell(r, VersionC), cell(r, VersionP)))
	}
	return sb.String()
}
