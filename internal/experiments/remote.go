// Distributed execution support: the pieces that let the experiment
// drivers run their cells in other processes without changing what
// they compute.
//
// The contract has three legs:
//
//   - Collect enumerates a run's cells WITHOUT running them — every
//     driver builds its deterministic (program × version × procs ×
//     block × ...) job grid exactly as it would for a local pool run,
//     and the enumeration captures each job as a type-erased CellFunc
//     keyed by the job's pool key. A worker process, handed the same
//     ConfigSpec and SectionSet as the coordinator, reconstructs the
//     identical grid and can therefore execute any cell by key alone.
//   - CellRunner is the coordinator side: runJobs hands the keys (and
//     content fingerprints) of the cells it needs to cfg.Runner and
//     folds the returned (JSON result, span subtree) pairs back into
//     results, journal checkpoints, and the same "pool:<name>" /
//     "job:<key>" span tree a local run records — so a distributed
//     run's manifest is byte-identical to a single-process one,
//     modulo timing.
//   - CellEvents carries the per-cell side records (safe-mode
//     degradations, miss-attribution reports) across the process
//     boundary: workers capture what a cell recorded, the coordinator
//     re-records it, and -verify / -diag summaries stay truthful.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"

	"falseshare/internal/experiments/pool"
	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/sim/ksr"
	"falseshare/internal/workload"
)

// CellSchema versions the distributed cell result format. It is part
// of every content-cache key (alongside the cell fingerprint), so
// bumping it — on any change to what cells compute or how results are
// encoded — invalidates every cached cell at once instead of serving
// stale results. The falseshare/bench schema idiom (see BenchSchema).
const CellSchema = "falseshare/cell/v1"

// ConfigSpec is the JSON-serializable subset of Config a worker needs
// to rebuild the coordinator's exact job grid. Runtime-only fields
// (context, policy callbacks, journal handle, runner) deliberately
// have no place here: workers run cells, they do not make policy.
type ConfigSpec struct {
	Scale           int     `json:"scale"`
	Fig3Procs       int     `json:"fig3_procs"`
	Fig3ProcsTopopt int     `json:"fig3_procs_topopt"`
	Fig3Blocks      []int64 `json:"fig3_blocks"`
	Table2Blocks    []int64 `json:"table2_blocks"`
	SweepCounts     []int   `json:"sweep_counts"`
	StepBudget      int64   `json:"step_budget,omitempty"`
	Verify          bool    `json:"verify,omitempty"`
	Diag            bool    `json:"diag,omitempty"`
}

// Spec extracts the serializable grid parameters of a Config.
func (cfg Config) Spec() ConfigSpec {
	return ConfigSpec{
		Scale:           cfg.Scale,
		Fig3Procs:       cfg.Fig3Procs,
		Fig3ProcsTopopt: cfg.Fig3ProcsTopopt,
		Fig3Blocks:      cfg.Fig3Blocks,
		Table2Blocks:    cfg.Table2Blocks,
		SweepCounts:     cfg.SweepCounts,
		StepBudget:      cfg.StepBudget,
		Verify:          cfg.Verify,
		Diag:            cfg.Diag,
	}
}

// Config rebuilds a worker-side Config from the spec. Workers execute
// one cell at a time in the calling goroutine.
func (s ConfigSpec) Config() Config {
	return Config{
		Scale:           s.Scale,
		Workers:         1,
		Fig3Procs:       s.Fig3Procs,
		Fig3ProcsTopopt: s.Fig3ProcsTopopt,
		Fig3Blocks:      s.Fig3Blocks,
		Table2Blocks:    s.Table2Blocks,
		SweepCounts:     s.SweepCounts,
		StepBudget:      s.StepBudget,
		Verify:          s.Verify,
		Diag:            s.Diag,
	}
}

// SectionSet names the experiments a distributed run covers, plus the
// per-section parameters that are not part of Config. It must round-
// trip JSON: the coordinator ships it to every worker.
type SectionSet struct {
	// Sections are driver names in fsexp order: "fig3", "aggregates",
	// "table2", "fig4", "table3", "compilecost", "matrix".
	Sections []string      `json:"sections"`
	Matrix   MatrixOptions `json:"matrix,omitempty"`
	Machine  ksr.Config    `json:"machine"`
	// AggBlock is ComputeAggregates' block size (fsexp uses 128).
	AggBlock int64 `json:"agg_block,omitempty"`
	// CompileProcs/CompileReps parameterize CompileCost (fsexp: 12, 5).
	CompileProcs int `json:"compile_procs,omitempty"`
	CompileReps  int `json:"compile_reps,omitempty"`
}

func (s SectionSet) aggBlock() int64 {
	if s.AggBlock <= 0 {
		return 128
	}
	return s.AggBlock
}

func (s SectionSet) compileProcs() int {
	if s.CompileProcs <= 0 {
		return 12
	}
	return s.CompileProcs
}

func (s SectionSet) compileReps() int {
	if s.CompileReps <= 0 {
		return 5
	}
	return s.CompileReps
}

// CellRequest asks a CellRunner for one cell by its deterministic
// pool key. Fingerprint, when non-empty, keys the content-addressed
// result cache (see pool.Job.Fingerprint).
type CellRequest struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// CellResult is one executed (or cache-served) cell: the result JSON,
// the observability span subtree the execution recorded — exactly
// what the resume journal stores — and the cell's side events. Err is
// non-nil when the cell failed; Data and Events are then empty.
type CellResult struct {
	Key    string
	Data   json.RawMessage
	Spans  []*obs.Span
	Events CellEvents
	Err    error
	// Retries counts error-retries the runner performed before this
	// outcome (surfaced on the job span like the local pool does).
	Retries int
}

// CellRunner executes cells somewhere else — the distributed fabric's
// coordinator implements it. RunCells must return one CellResult per
// request, index-aligned, regardless of failures (per-cell errors go
// in CellResult.Err); its own error is reserved for whole-run
// breakdowns (no live workers, cancellation before any dispatch).
type CellRunner interface {
	RunCells(ctx context.Context, section string, reqs []CellRequest) ([]CellResult, error)
}

// errCollected is returned by runJobs in enumeration mode. Drivers'
// partial-failure paths pass it through wrapped; Collect unwraps it.
var errCollected = errors.New("experiments: cells collected, not run")

// CellFunc executes one enumerated cell: the job's result marshaled
// to JSON plus the span subtree recorded while running it. It is safe
// to call from any goroutine, once at a time per Enumeration.
type CellFunc func(ctx context.Context) (json.RawMessage, []*obs.Span, error)

// Enumeration is a run's full cell grid, keyed by pool key. Sections
// may overlap (Table 3 re-enumerates Figure 4's sweep cells under the
// same keys); the first enumeration of a key wins, which is sound
// because equal keys denote equal work.
type Enumeration struct {
	cells map[string]CellFunc
	order []string
}

// Len reports the number of distinct cells enumerated.
func (e *Enumeration) Len() int { return len(e.cells) }

// Keys lists the enumerated cell keys in enumeration order.
func (e *Enumeration) Keys() []string {
	return append([]string(nil), e.order...)
}

// Run executes the cell registered under key. ok is false when the
// key was never enumerated — a coordinator/worker configuration
// mismatch the caller must surface, not mask.
func (e *Enumeration) Run(ctx context.Context, key string) (data json.RawMessage, spans []*obs.Span, err error, ok bool) {
	fn := e.cells[key]
	if fn == nil {
		return nil, nil, nil, false
	}
	data, spans, err = fn(ctx)
	return data, spans, err, true
}

func (e *Enumeration) add(key string, fn CellFunc) {
	if _, dup := e.cells[key]; dup {
		return
	}
	e.cells[key] = fn
	e.order = append(e.order, key)
}

// Collect enumerates every cell the given sections would run under
// cfg, without executing any of them. The drivers run their normal
// enumeration code — same loops, same keys, same order — but each
// pool job is captured instead of executed, so a worker process
// reconstructs exactly the grid its coordinator dispatches from.
func Collect(cfg Config, set SectionSet) (*Enumeration, error) {
	e := &Enumeration{cells: map[string]CellFunc{}}
	cfg.enum = e
	cfg.Runner = nil
	cfg.Journal = nil
	cfg.Ctx = nil
	for _, s := range set.Sections {
		var err error
		switch s {
		case "fig3":
			_, err = Figure3(cfg)
		case "aggregates":
			_, err = ComputeAggregates(cfg, set.aggBlock())
		case "table2":
			_, err = Table2(cfg)
		case "fig4":
			_, err = Figure4(cfg, set.Machine)
		case "table3":
			_, err = Table3(cfg, set.Machine)
		case "compilecost":
			_, err = CompileCost(cfg, set.compileProcs(), set.compileReps())
		case "matrix":
			_, err = Matrix(cfg, set.Matrix)
		default:
			return nil, fmt.Errorf("experiments: Collect: unknown section %q", s)
		}
		if err != nil && !errors.Is(err, errCollected) {
			return nil, fmt.Errorf("experiments: Collect %s: %w", s, err)
		}
	}
	return e, nil
}

// collectJobs captures a driver's jobs into the enumeration as
// type-erased CellFuncs. The erased runner reproduces what one local
// pool attempt does around a job: a private recorder bound to the
// goroutine (so the captured span subtree matches what the journal
// would store), the pool.worker fault point, and panic containment.
func collectJobs[T any](e *Enumeration, jobs []pool.Job[T]) {
	for _, j := range jobs {
		j := j
		e.add(j.Key, func(ctx context.Context) (data json.RawMessage, spans []*obs.Span, err error) {
			rec := obs.NewRecorder()
			if base := obs.Default(); base != nil {
				rec.Verbose = base.Verbose
				rec.LogW = base.LogW
				rec.OnMetrics = base.OnMetrics
			}
			prev := obs.BindGoroutine(rec)
			defer obs.BindGoroutine(prev)
			defer func() {
				spans = rec.Spans()
				if p := recover(); p != nil {
					err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
				}
			}()
			if ferr := faultinject.Fire(ctx, "pool.worker", j.Key); ferr != nil {
				return nil, nil, ferr
			}
			v, rerr := j.Run(ctx)
			if rerr != nil {
				return nil, nil, rerr
			}
			b, merr := json.Marshal(v)
			if merr != nil {
				return nil, nil, fmt.Errorf("experiments: marshal cell %s: %w", j.Key, merr)
			}
			return b, nil, nil
		})
	}
}

// runRemote is runJobs' coordinator path: resolve journal hits
// locally, hand the rest to cfg.Runner, and reassemble results,
// spans, journal checkpoints and keyed errors so callers — and the
// manifests — cannot tell the cells ran in other processes.
func runRemote[T any](cfg Config, name string, jobs []pool.Job[T]) ([]T, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	parent := obs.Begin("pool:" + name)
	parent.Set("jobs", int64(len(jobs)))
	workers := pool.Workers(cfg.Workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	parent.Set("workers", int64(workers))
	defer parent.End()
	spans := make([]*obs.Span, len(jobs))
	for i, j := range jobs {
		spans[i] = parent.Child("job:" + j.Key)
	}

	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	var reqs []CellRequest
	var reqIdx []int
	for i, j := range jobs {
		if raw, jsp, ok := cfg.Journal.Lookup(j.Key); ok {
			if uerr := json.Unmarshal(raw, &results[i]); uerr == nil {
				spans[i].Adopt(jsp)
				spans[i].End()
				continue
			}
			obs.Logf("journal: stale checkpoint for %s; re-running", j.Key)
			var zero T
			results[i] = zero
		}
		reqs = append(reqs, CellRequest{Key: j.Key, Fingerprint: j.Fingerprint})
		reqIdx = append(reqIdx, i)
	}

	var rres []CellResult
	var rerr error
	if len(reqs) > 0 {
		rres, rerr = cfg.Runner.RunCells(ctx, name, reqs)
	}
	if rres == nil {
		rres = make([]CellResult, len(reqs))
		for k := range rres {
			cause := rerr
			if cause == nil {
				cause = errors.New("fabric: no result")
			}
			rres[k] = CellResult{Key: reqs[k].Key, Err: cause}
		}
	}
	for k, res := range rres {
		i := reqIdx[k]
		if res.Retries > 0 {
			spans[i].Count("retries", int64(res.Retries))
		}
		if res.Err != nil {
			errs[i] = res.Err
			spans[i].Fail(res.Err)
			spans[i].End()
			continue
		}
		if uerr := json.Unmarshal(res.Data, &results[i]); uerr != nil {
			errs[i] = fmt.Errorf("fabric: cell %s returned unreadable result: %w", jobs[i].Key, uerr)
			spans[i].Fail(errs[i])
			spans[i].End()
			continue
		}
		spans[i].Adopt(res.Spans)
		spans[i].End()
		if aerr := cfg.Journal.Append(jobs[i].Key, res.Data, res.Spans); aerr != nil {
			obs.Logf("journal: %v", aerr)
		}
		AdoptEvents(res.Events)
	}

	var failed []*pool.Error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, &pool.Error{Key: jobs[i].Key, Err: err})
		}
	}
	if failed != nil {
		parent.Set("failed", int64(len(failed)))
		return results, &pool.MultiError{Errors: failed, Jobs: len(jobs)}
	}
	return results, nil
}

// CellEvents are the out-of-band records a cell produces besides its
// result: safe-mode degradations (-verify) and miss-attribution
// reports (-diag). Workers capture them per cell; the coordinator
// adopts them so process-global summaries stay correct. Cells served
// from the journal or the content cache carry none, matching the
// established resume semantics (replayed cells record no events).
type CellEvents struct {
	Degraded []DegradeEvent `json:"degraded,omitempty"`
	Diag     []DiagCell     `json:"diag,omitempty"`
}

// Empty reports whether there is nothing to adopt.
func (ev CellEvents) Empty() bool { return len(ev.Degraded) == 0 && len(ev.Diag) == 0 }

// EventMark is a snapshot of the process-global event logs; see
// MarkEvents/EventsSince.
type EventMark struct{ deg, diag int }

// MarkEvents snapshots the current event-log lengths. A worker marks
// before running a cell and captures the delta after.
func MarkEvents() EventMark {
	degradeMu.Lock()
	deg := len(degradeEvents)
	degradeMu.Unlock()
	diagMu.Lock()
	diag := len(diagCells)
	diagMu.Unlock()
	return EventMark{deg: deg, diag: diag}
}

// EventsSince returns every event recorded after the mark.
func EventsSince(m EventMark) CellEvents {
	var ev CellEvents
	degradeMu.Lock()
	if m.deg < len(degradeEvents) {
		ev.Degraded = append([]DegradeEvent(nil), degradeEvents[m.deg:]...)
	}
	degradeMu.Unlock()
	diagMu.Lock()
	if m.diag < len(diagCells) {
		ev.Diag = append([]DiagCell(nil), diagCells[m.diag:]...)
	}
	diagMu.Unlock()
	return ev
}

// AdoptEvents re-records events captured in another process into this
// one, preserving the -verify and -diag summaries across the fabric.
func AdoptEvents(ev CellEvents) {
	if len(ev.Degraded) > 0 {
		degradeMu.Lock()
		degradeEvents = append(degradeEvents, ev.Degraded...)
		degradeMu.Unlock()
	}
	if len(ev.Diag) > 0 {
		diagMu.Lock()
		diagCells = append(diagCells, ev.Diag...)
		diagMu.Unlock()
	}
}

// fingerprint assembles a cell's content-cache key material: the
// section, every configuration knob the result depends on, and the
// program source hash. Deterministic by construction — no maps.
func fingerprint(section string, kv ...string) string {
	h := sha256.New()
	h.Write([]byte(section))
	for _, s := range kv {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return section + ":" + hex.EncodeToString(h.Sum(nil))
}

// srcHash hashes a program source for fingerprints.
func srcHash(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// verSource returns the source text a version compiles from, for
// fingerprint hashing: P uses the hand-optimized program, N and C both
// start from the unoptimized source.
func verSource(b *workload.Benchmark, ver Version, scale int) string {
	if ver == VersionP {
		return b.ProgrammerSource(scale)
	}
	return b.Source(scale)
}
