package experiments

import (
	"reflect"
	"strings"
	"testing"

	"falseshare/internal/sim/cache"
)

func smallMatrixOptions() MatrixOptions {
	return MatrixOptions{Workloads: 4, Seed: 3, Procs: 4, Block: 64, ScaleMin: true}
}

// TestMatrixInvariants runs a small full grid and checks the cross-cell
// identities the protocol and topology layers promise: MESI classifies
// byte-identically to write-invalidate, write-update never takes
// sharing misses, and the two-ring topology is a pure cost observer
// whose service counts and cycle cost satisfy their exact identities.
func TestMatrixInvariants(t *testing.T) {
	cfg := Config{Scale: 1, Workers: 4, Verify: true}
	ResetDegraded()
	opt := smallMatrixOptions()
	cells, err := Matrix(cfg, opt)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	want := opt.Workloads * len(cache.Protocols()) * len(cache.Topologies())
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	if n := DegradedObjects(); n != 0 {
		t.Errorf("safe mode degraded %d objects on generated programs: %+v", n, DegradedEvents())
	}

	type wk struct{ workload, topo string }
	byProto := map[wk]map[string]MatrixCell{}
	for _, c := range cells {
		if c.N.Refs == 0 {
			t.Errorf("%s: empty N run", c.Key)
		}
		for _, ver := range []MatrixStats{c.N, c.C} {
			switch c.Protocol {
			case "write-update":
				if ver.FalseShare != 0 || ver.TrueShare != 0 || ver.Invalidations != 0 {
					t.Errorf("%s: write-update took sharing misses: fs=%d ts=%d inv=%d",
						c.Key, ver.FalseShare, ver.TrueShare, ver.Invalidations)
				}
			default:
				if ver.Updates != 0 {
					t.Errorf("%s: %s counted updates", c.Key, c.Protocol)
				}
			}
			switch c.Topology {
			case "two-ring":
				if ver.LocalServiced+ver.RemoteServiced != ver.Misses {
					t.Errorf("%s: local %d + remote %d != misses %d",
						c.Key, ver.LocalServiced, ver.RemoteServiced, ver.Misses)
				}
				wantCost := ver.LocalServiced*cache.DefaultLocalLatency + ver.RemoteServiced*cache.DefaultRemoteLatency
				if ver.CostCycles != wantCost {
					t.Errorf("%s: cost %d != %d", c.Key, ver.CostCycles, wantCost)
				}
			default:
				if ver.LocalServiced != 0 || ver.RemoteServiced != 0 || ver.CostCycles != 0 {
					t.Errorf("%s: flat topology counted service costs", c.Key)
				}
			}
		}
		k := wk{c.Workload, c.Topology}
		if byProto[k] == nil {
			byProto[k] = map[string]MatrixCell{}
		}
		byProto[k][c.Protocol] = c
	}

	// MESI vs write-invalidate: identical classification per
	// (workload, topology); upgrades obey the conservation law.
	for k, m := range byProto {
		wi, okW := m["write-invalidate"]
		ms, okM := m["mesi"]
		if !okW || !okM {
			continue
		}
		for _, pair := range [][2]MatrixStats{{wi.N, ms.N}, {wi.C, ms.C}} {
			w, e := pair[0], pair[1]
			if w.Misses != e.Misses || w.FalseShare != e.FalseShare || w.TrueShare != e.TrueShare {
				t.Errorf("%v: MESI classification diverges from WI:\nwi:   %+v\nmesi: %+v", k, w, e)
			}
			if w.Upgrades != e.Upgrades+e.SilentUpgrades {
				t.Errorf("%v: upgrade conservation broken: wi %d != mesi %d + silent %d",
					k, w.Upgrades, e.Upgrades, e.SilentUpgrades)
			}
		}
	}

	// Render smoke: every grid row present, header greppable.
	out := RenderMatrix(cells)
	if !strings.Contains(out, "Protocol/topology matrix") {
		t.Errorf("render lost its header:\n%s", out)
	}
	for _, proto := range cache.Protocols() {
		if !strings.Contains(out, proto.String()) {
			t.Errorf("render missing protocol %s:\n%s", proto, out)
		}
	}
	if !strings.Contains(out, "By pattern") {
		t.Errorf("render missing pattern summary:\n%s", out)
	}
	csv := CSVMatrix(cells)
	if got := strings.Count(csv, "\n"); got != len(cells)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(cells)+1)
	}
}

// TestMatrixDeterministicAcrossWorkers pins the resume/manifest
// contract: the cell slice is byte-identical at any worker count.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	opt := MatrixOptions{Workloads: 2, Seed: 9, Procs: 4, Block: 64, ScaleMin: true}
	a, err := Matrix(Config{Scale: 1, Workers: 1}, opt)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	b, err := Matrix(Config{Scale: 1, Workers: 8}, opt)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cells differ across worker counts:\n%+v\n----\n%+v", a, b)
	}
}

// TestMatrixAttributionInvariants extends the attribution invariants
// to the protocol/topology grid: with -diag, every recorded N report's
// class totals equal the cell's simulator stats, and the per-object
// sums close — under every protocol and topology, not just the
// default configuration the figure drivers use.
func TestMatrixAttributionInvariants(t *testing.T) {
	cfg := Config{Scale: 1, Workers: 1, Diag: true}
	ResetDiag()
	opt := MatrixOptions{Workloads: 2, Seed: 5, Procs: 4, Block: 64, ScaleMin: true}
	cells, err := Matrix(cfg, opt)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	byKey := map[string]MatrixCell{}
	for _, c := range cells {
		byKey[c.Key] = c
	}
	recorded := DiagCells()
	if len(recorded) != len(cells) {
		t.Fatalf("recorded %d diag cells, want %d", len(recorded), len(cells))
	}
	for _, d := range recorded {
		c, ok := byKey[d.Key]
		if !ok {
			t.Errorf("diag cell %s has no matrix cell", d.Key)
			continue
		}
		rep := d.Report
		if rep == nil {
			t.Errorf("%s: no report", d.Key)
			continue
		}
		if rep.FalseShare != c.N.FalseShare || rep.TrueShare != c.N.TrueShare {
			t.Errorf("%s: report fs=%d ts=%d, stats fs=%d ts=%d",
				d.Key, rep.FalseShare, rep.TrueShare, c.N.FalseShare, c.N.TrueShare)
		}
		// Sharing events equal the invalidation-miss class — under
		// MESI and sectored modes too, not just plain WI.
		if rep.TrueShare+rep.FalseShare != c.N.TrueShare+c.N.FalseShare {
			t.Errorf("%s: sharing events %d != invalidation class %d",
				d.Key, rep.TrueShare+rep.FalseShare, c.N.TrueShare+c.N.FalseShare)
		}
		var ts, fs int64
		for _, o := range rep.Objects {
			ts += o.TrueShare
			fs += o.FalseShare
		}
		if ts != c.N.TrueShare || fs != c.N.FalseShare {
			t.Errorf("%s: object sums ts=%d/%d fs=%d/%d", d.Key, ts, c.N.TrueShare, fs, c.N.FalseShare)
		}
	}
}
