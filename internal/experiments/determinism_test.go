package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"falseshare/internal/obs"
	"falseshare/internal/sim/ksr"
)

// The determinism suite is this PR's core correctness guarantee: for
// every figure and table, a parallel run (-j 8) must produce a
// RunManifest byte-identical to the serial run (-j 1) — same results,
// same span-tree shape, same counters — modulo wall-clock fields.
// Anything else means the fan-out changed what the evaluation
// computes, not just how fast.

// determinismConfig is a reduced but non-trivial configuration: small
// sweeps, two block sizes, full benchmark coverage.
func determinismConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.SweepCounts = []int{1, 2, 4}
	cfg.Fig3Blocks = []int64{32, 128}
	cfg.Table2Blocks = []int64{32, 128}
	return cfg
}

// manifestBytes runs fn under a fresh recorder exactly like fsexp
// -reportdir does and returns the manifest normalized for comparison:
// timing fields (started, wall_ms, wall_ns) and the worker-count
// knobs (config.workers, the pool span's workers counter) removed —
// those are the only fields allowed to differ across -j.
func manifestBytes(t *testing.T, name string, cfg Config, fn func() (any, error)) []byte {
	t.Helper()
	rep, err := RunManifest("fsexp", name, ConfigMap(cfg), fn)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", name, cfg.Workers, err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "started")
	delete(doc, "wall_ms")
	if c, ok := doc["config"].(map[string]any); ok {
		delete(c, "workers")
	}
	scrubSpans(doc["spans"])
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scrubSpans strips wall times and the workers counter from a decoded
// span forest, recursively.
func scrubSpans(v any) {
	spans, _ := v.([]any)
	for _, s := range spans {
		m, _ := s.(map[string]any)
		if m == nil {
			continue
		}
		delete(m, "wall_ns")
		delete(m, "wall_ms")
		if c, ok := m["counters"].(map[string]any); ok {
			delete(c, "workers")
			if len(c) == 0 {
				delete(m, "counters")
			}
		}
		scrubSpans(m["children"])
	}
}

// assertDeterministic runs one experiment at -j 1 and -j 8 and
// byte-compares the normalized manifests.
func assertDeterministic(t *testing.T, name string, fn func(cfg Config) (any, error)) {
	t.Helper()
	if obs.Default() != nil {
		t.Fatal("test requires no installed recorder")
	}
	serialCfg, parCfg := determinismConfig(1), determinismConfig(8)
	serial := manifestBytes(t, name, serialCfg, func() (any, error) { return fn(serialCfg) })
	parallel := manifestBytes(t, name, parCfg, func() (any, error) { return fn(parCfg) })
	if !bytes.Equal(serial, parallel) {
		d1, d2 := firstDiff(serial, parallel)
		t.Errorf("%s: -j 8 manifest differs from -j 1:\n--- j1 ---\n%s\n--- j8 ---\n%s", name, d1, d2)
	}
}

// firstDiff returns a context window around the first differing byte.
func firstDiff(a, b []byte) (string, string) {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	window := func(x []byte) string {
		lo, hi := i-120, i+120
		if lo < 0 {
			lo = 0
		}
		if hi > len(x) {
			hi = len(x)
		}
		return string(x[lo:hi])
	}
	return window(a), window(b)
}

func TestDeterminismFig3(t *testing.T) {
	assertDeterministic(t, "fig3", func(cfg Config) (any, error) { return Figure3(cfg) })
}

func TestDeterminismTable2(t *testing.T) {
	assertDeterministic(t, "table2", func(cfg Config) (any, error) { return Table2(cfg) })
}

func TestDeterminismFig4(t *testing.T) {
	machine := ksr.DefaultConfig()
	assertDeterministic(t, "fig4", func(cfg Config) (any, error) { return Figure4(cfg, machine) })
}

func TestDeterminismTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite sweep")
	}
	machine := ksr.DefaultConfig()
	assertDeterministic(t, "table3", func(cfg Config) (any, error) { return Table3(cfg, machine) })
}

// TestDeterminismAggregates covers the §1/§5 headline numbers the
// same way (cheap, so it rides along even though the issue names only
// the four figures/tables).
func TestDeterminismAggregates(t *testing.T) {
	assertDeterministic(t, "aggregates", func(cfg Config) (any, error) { return ComputeAggregates(cfg, 128) })
}

// TestDeterminismMatrix extends the manifest guarantee to the
// protocol/topology matrix: a -matrix -j 8 run's manifest must be
// byte-identical to -j 1 modulo timing, including every cell's
// per-protocol counters and attributed TopFS objects.
func TestDeterminismMatrix(t *testing.T) {
	opt := MatrixOptions{Workloads: 3, Seed: 11, Procs: 4, Block: 64, ScaleMin: true}
	assertDeterministic(t, "matrix", func(cfg Config) (any, error) { return Matrix(cfg, opt) })
}

// TestDeterminismRenderedOutput pins the user-visible text too: the
// rendered Figure 3 and Table 2 must be identical at any -j.
func TestDeterminismRenderedOutput(t *testing.T) {
	cells1, err := Figure3(determinismConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cells8, err := Figure3(determinismConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderFigure3(cells1), RenderFigure3(cells8); a != b {
		t.Errorf("rendered Figure 3 differs between -j 1 and -j 8:\n%s\n---\n%s", a, b)
	}
}
