package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"falseshare/internal/obs"
	"falseshare/internal/sim/cache"
)

// BlockStats is the per-block-size simulation record of a run
// manifest: headline rates, the full counter set, and the
// per-processor decomposition.
type BlockStats struct {
	Block    int64             `json:"block"`
	MissRate float64           `json:"miss_rate"`
	FSRate   float64           `json:"fs_rate"`
	Stats    *cache.Stats      `json:"stats"`
	Procs    []cache.ProcStats `json:"procs"`
}

// NewBlockStats packages one simulator's stats for a manifest.
func NewBlockStats(st *cache.Stats) BlockStats {
	return BlockStats{
		Block:    st.Config.BlockSize,
		MissRate: st.MissRate(),
		FSRate:   st.FSRate(),
		Stats:    st,
		Procs:    st.PerProc(),
	}
}

// BlockStatsList packages a MeasureBlocks result.
func BlockStatsList(stats []*cache.Stats) []BlockStats {
	out := make([]BlockStats, len(stats))
	for i, st := range stats {
		out[i] = NewBlockStats(st)
	}
	return out
}

// RunManifest runs fn under a fresh process-wide recorder and
// packages the recorded spans plus fn's result into one manifest
// (Data["result"]). The previously installed recorder is restored on
// return. fn's error is reported alongside the manifest, which is
// still valid for the spans recorded up to the failure.
func RunManifest(tool, name string, config map[string]any, fn func() (any, error)) (*obs.Report, error) {
	prev := obs.Default()
	rec := obs.NewRecorder()
	if prev != nil {
		rec.Verbose = prev.Verbose
		rec.LogW = prev.LogW
	}
	obs.Install(rec)
	result, err := fn()
	obs.Install(prev)

	rep := rec.Report(tool)
	rep.Config = config
	rep.AddData("name", name)
	if result != nil {
		rep.AddData("result", result)
	}
	if err != nil {
		rep.AddData("error", err.Error())
	}
	return rep, err
}

// WriteManifest writes one manifest as <dir>/<name>.json, creating
// dir if needed, and returns the path.
func WriteManifest(dir, name string, rep *obs.Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".json")
	if err := rep.WriteFile(path); err != nil {
		return "", fmt.Errorf("manifest %s: %w", path, err)
	}
	return path, nil
}

// ConfigMap renders an experiments.Config for a manifest.
func ConfigMap(cfg Config) map[string]any {
	return map[string]any{
		"scale":             cfg.Scale,
		"workers":           cfg.Workers,
		"fig3_procs":        cfg.Fig3Procs,
		"fig3_procs_topopt": cfg.Fig3ProcsTopopt,
		"fig3_blocks":       cfg.Fig3Blocks,
		"table2_blocks":     cfg.Table2Blocks,
		"sweep_counts":      cfg.SweepCounts,
		"verify":            cfg.Verify,
	}
}
