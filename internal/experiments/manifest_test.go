package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/obs"
	"falseshare/internal/workload"
)

// TestReportRequiredFields builds a run manifest exactly the way the
// CLIs do — restructure under a recorder, measure with the cache
// simulator, export JSON — then re-parses it generically and checks
// every field the observability layer promises: per-stage wall times,
// stage counters (PDVs, phases, RSD merges, transformation kinds),
// and per-block / per-processor cache stats.
func TestReportRequiredFields(t *testing.T) {
	bm := workload.Get("maxflow")
	if bm == nil {
		t.Fatal("maxflow not registered")
	}

	rec := obs.NewRecorder()
	obs.Install(rec)
	res, err := core.Restructure(bm.Source(1), core.Options{Nprocs: 4, BlockSize: 128})
	if err != nil {
		obs.Install(nil)
		t.Fatal(err)
	}
	stats, err := MeasureBlocks(res.Transformed, []int64{16, 128})
	obs.Install(nil)
	if err != nil {
		t.Fatal(err)
	}

	rep := rec.Report("fssim")
	rep.Config = map[string]any{"nprocs": 4, "bench": "maxflow"}
	rep.AddData("blocks", BlockStatsList(stats))

	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	if doc["tool"] != "fssim" {
		t.Errorf("tool = %v", doc["tool"])
	}
	if _, ok := doc["config"].(map[string]any); !ok {
		t.Errorf("missing config object")
	}

	// Per-stage wall times and counters.
	spans, _ := doc["spans"].([]any)
	restr := findSpan(spans, "restructure")
	if restr == nil {
		t.Fatal("missing restructure span")
	}
	kids, _ := restr["children"].([]any)
	for _, stage := range []string{"compile", "parse", "typecheck", "cfg", "pdv", "procs", "nonconc", "sideeffect", "decide", "apply", "recheck", "layout"} {
		s := findSpan(kids, stage)
		if s == nil {
			t.Errorf("missing stage span %q", stage)
			continue
		}
		if _, ok := s["wall_ns"].(float64); !ok {
			t.Errorf("stage %q has no wall_ns", stage)
		}
		if _, ok := s["wall_ms"].(float64); !ok {
			t.Errorf("stage %q has no wall_ms", stage)
		}
	}
	wantCounter(t, findSpan(kids, "pdv"), "pdvs")
	wantCounter(t, findSpan(kids, "nonconc"), "phases")
	se := findSpan(kids, "sideeffect")
	for _, c := range []string{"objects", "rsd_added", "rsd_deduped", "rsd_merged", "rsd_capped"} {
		wantCounter(t, se, c)
	}
	dec := findSpan(kids, "decide")
	wantCounter(t, dec, "decisions")
	if dec != nil {
		counters, _ := dec["counters"].(map[string]any)
		kinds := 0
		for k := range counters {
			if len(k) > 5 && k[:5] == "kind:" {
				kinds++
			}
		}
		if kinds == 0 {
			t.Errorf("decide span has no kind:* counters: %v", counters)
		}
	}

	// The VM run recorded under measure.
	vmRun := findSpanDeep(spans, "vm.run")
	if vmRun == nil {
		t.Fatal("missing vm.run span")
	}
	for _, c := range []string{"instrs", "refs", "barriers"} {
		wantCounter(t, vmRun, c)
	}

	// Per-block, per-processor cache stats.
	data, _ := doc["data"].(map[string]any)
	blocks, _ := data["blocks"].([]any)
	if len(blocks) != 2 {
		t.Fatalf("data.blocks has %d entries, want 2", len(blocks))
	}
	for _, b := range blocks {
		blk := b.(map[string]any)
		if _, ok := blk["block"].(float64); !ok {
			t.Errorf("block entry missing block size: %v", blk)
		}
		if _, ok := blk["miss_rate"].(float64); !ok {
			t.Errorf("block entry missing miss_rate")
		}
		st, _ := blk["stats"].(map[string]any)
		if st == nil {
			t.Fatalf("block entry missing stats")
		}
		for _, f := range []string{"Refs", "Cold", "Replace", "TrueShare", "FalseShare"} {
			if _, ok := st[f].(float64); !ok {
				t.Errorf("stats missing %s", f)
			}
		}
		procs, _ := blk["procs"].([]any)
		if len(procs) != 4 {
			t.Fatalf("procs has %d entries, want 4", len(procs))
		}
		p0 := procs[0].(map[string]any)
		for _, f := range []string{"proc", "refs", "misses", "cold", "replace", "true_share", "false_share", "remote"} {
			if _, ok := p0[f].(float64); !ok {
				t.Errorf("proc stats missing %s", f)
			}
		}
	}
}

func findSpan(spans []any, name string) map[string]any {
	for _, s := range spans {
		m, _ := s.(map[string]any)
		if m != nil && m["name"] == name {
			return m
		}
	}
	return nil
}

func findSpanDeep(spans []any, name string) map[string]any {
	for _, s := range spans {
		m, _ := s.(map[string]any)
		if m == nil {
			continue
		}
		if m["name"] == name {
			return m
		}
		if kids, _ := m["children"].([]any); kids != nil {
			if f := findSpanDeep(kids, name); f != nil {
				return f
			}
		}
	}
	return nil
}

func wantCounter(t *testing.T, span map[string]any, name string) {
	t.Helper()
	if span == nil {
		t.Errorf("span for counter %q missing", name)
		return
	}
	counters, _ := span["counters"].(map[string]any)
	if _, ok := counters[name].(float64); !ok {
		t.Errorf("span %v missing counter %q (have %v)", span["name"], name, counters)
	}
}

// TestRunManifest checks the per-figure manifest path fsexp uses.
func TestRunManifest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fig3Blocks = []int64{128}
	rep, err := RunManifest("fsexp", "unit", ConfigMap(cfg), func() (any, error) {
		res, err := core.Restructure(workload.Get("maxflow").Source(1), core.Options{Nprocs: 4, BlockSize: 128})
		if err != nil {
			return nil, err
		}
		return len(res.Applied), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Default() != nil {
		t.Error("RunManifest left a recorder installed")
	}
	if rep.Data["name"] != "unit" {
		t.Errorf("manifest name = %v", rep.Data["name"])
	}
	if _, ok := rep.Data["result"]; !ok {
		t.Error("manifest missing result")
	}
	if len(rep.Spans) == 0 || rep.Spans[0].Name != "restructure" {
		t.Errorf("manifest spans = %+v, want restructure first", rep.Spans)
	}

	dir := t.TempDir()
	path, err := WriteManifest(dir, "unit", rep)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
}

// TestWriteManifestCreatesDir checks that -reportdir need not exist in
// advance: WriteManifest creates the directory — including nested
// paths — instead of erroring, and the manifest lands inside it.
func TestWriteManifestCreatesDir(t *testing.T) {
	rec := obs.NewRecorder()
	rep := rec.Report("fsexp")
	rep.AddData("result", []int{1, 2, 3})

	for _, dir := range []string{
		filepath.Join(t.TempDir(), "runs"),
		filepath.Join(t.TempDir(), "deeply", "nested", "report", "dir"),
	} {
		path, err := WriteManifest(dir, "fig3", rep)
		if err != nil {
			t.Fatalf("WriteManifest(%s): %v", dir, err)
		}
		if want := filepath.Join(dir, "fig3.json"); path != want {
			t.Errorf("manifest path = %s, want %s", path, want)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("manifest not written: %v", err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("manifest is not valid JSON: %v", err)
		}
	}

	// Writing into an existing directory keeps working (idempotent
	// MkdirAll), and a second manifest joins the first.
	dir := t.TempDir()
	if _, err := WriteManifest(dir, "a", rep); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteManifest(dir, "b", rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.json", "b.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
