package experiments

import (
	"fmt"
	"strings"
)

// CSVFigure3 renders Figure 3 cells as CSV for external plotting.
func CSVFigure3(cells []Fig3Cell) string {
	var sb strings.Builder
	sb.WriteString("program,version,block,procs,refs,fs_misses,other_misses,fs_rate_pct,other_rate_pct\n")
	for _, c := range cells {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%d,%d,%d,%.4f,%.4f\n",
			c.Program, c.Version, c.Block, c.Procs, c.Refs, c.FSMisses, c.OtherMisses, c.FSRate, c.OtherRate)
	}
	return sb.String()
}

// CSVCurves renders speedup curves as CSV (long format).
func CSVCurves(curves []Curve) string {
	var sb strings.Builder
	sb.WriteString("program,version,procs,speedup,cycles\n")
	for _, c := range curves {
		for i, p := range c.Counts {
			fmt.Fprintf(&sb, "%s,%s,%d,%.4f,%.0f\n", c.Program, c.Version, p, c.Speedup[i], c.Cycles[i])
		}
	}
	return sb.String()
}

// CSVTable2 renders Table 2 rows as CSV.
func CSVTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("program,total_pct,group_transpose_pct,indirection_pct,pad_align_pct,locks_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			r.Program, r.Total, r.GroupTranspose, r.Indirection, r.PadAlign, r.Locks)
	}
	return sb.String()
}
