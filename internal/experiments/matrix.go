package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/core"
	"falseshare/internal/experiments/pool"
	"falseshare/internal/obs"
	"falseshare/internal/sim/attr"
	"falseshare/internal/sim/cache"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
	"falseshare/internal/workload/gen"
)

// MatrixOptions parameterizes the protocol/topology matrix sweep
// (fsexp -matrix): a generated-workload population crossed with every
// selected coherence protocol and machine topology. The zero value
// takes the full default grid: all three protocols × both topologies
// × 60 generated workloads at 8 processors and 64-byte blocks.
type MatrixOptions struct {
	// Workloads is the generated population size (default 60).
	Workloads int
	// Seed seeds gen.Corpus (default 1); one seed, one population.
	Seed int64
	// Procs and Block fix the machine point the grid is swept at
	// (defaults 8 and 64).
	Procs int
	Block int64
	// Protocols and Topologies select the grid axes (defaults: every
	// protocol, every topology).
	Protocols  []cache.Protocol
	Topologies []cache.Topology
	// ScaleMin shrinks each generated program (not the population:
	// the matrix's value is breadth) for CI smoke runs.
	ScaleMin bool
}

func (o MatrixOptions) withDefaults() MatrixOptions {
	if o.Workloads <= 0 {
		o.Workloads = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Procs <= 0 {
		o.Procs = 8
	}
	if o.Block <= 0 {
		o.Block = 64
	}
	if len(o.Protocols) == 0 {
		o.Protocols = cache.Protocols()
	}
	if len(o.Topologies) == 0 {
		o.Topologies = cache.Topologies()
	}
	return o
}

// MatrixStats is the per-version counter record of one matrix cell —
// the full protocol and topology counter set, compact enough that a
// 360-cell manifest stays readable.
type MatrixStats struct {
	Refs           int64   `json:"refs"`
	Misses         int64   `json:"misses"`
	FalseShare     int64   `json:"false_share"`
	TrueShare      int64   `json:"true_share"`
	Upgrades       int64   `json:"upgrades"`
	SilentUpgrades int64   `json:"silent_upgrades,omitempty"`
	Updates        int64   `json:"updates,omitempty"`
	Invalidations  int64   `json:"invalidations"`
	LocalServiced  int64   `json:"local_serviced,omitempty"`
	RemoteServiced int64   `json:"remote_serviced,omitempty"`
	CostCycles     int64   `json:"cost_cycles,omitempty"`
	MissRate       float64 `json:"miss_rate"`
	FSRate         float64 `json:"fs_rate"`
}

func newMatrixStats(st *cache.Stats) MatrixStats {
	return MatrixStats{
		Refs:           st.Refs,
		Misses:         st.Misses(),
		FalseShare:     st.FalseShare,
		TrueShare:      st.TrueShare,
		Upgrades:       st.Upgrades,
		SilentUpgrades: st.SilentUpgrades,
		Updates:        st.Updates,
		Invalidations:  st.Invalidations,
		LocalServiced:  st.LocalServiced,
		RemoteServiced: st.RemoteServiced,
		CostCycles:     st.CostCycles,
		MissRate:       st.MissRate(),
		FSRate:         st.FSRate(),
	}
}

// StatsRecord condenses raw simulator statistics into the compact,
// JSON-tagged record the matrix manifests use (rates precomputed) —
// also the daemon's analysis summary shape.
func StatsRecord(st *cache.Stats) MatrixStats { return newMatrixStats(st) }

// TopFSObjects names the attribution report's n worst false-sharing
// objects, worst first.
func TopFSObjects(rep *attr.Report, n int) []string { return topFSObjects(rep, n) }

// MatrixCell is one (generated workload × protocol × topology) grid
// cell: the unoptimized (N) and compiler-restructured (C) programs
// measured under that protocol and topology, with the cell's top
// false-sharing objects attributed from the N run.
type MatrixCell struct {
	Key      string `json:"key"` // "matrix/<workload>/<protocol>/<topology>"
	Workload string `json:"workload"`
	Pattern  string `json:"pattern"`
	Protocol string `json:"protocol"`
	Topology string `json:"topology"`
	Procs    int    `json:"procs"`
	Block    int64  `json:"block"`

	N MatrixStats `json:"n"`
	C MatrixStats `json:"c"`
	// TopFS names the unoptimized run's worst false-sharing objects
	// (attribution order, up to three) — the per-cell evidence trail.
	TopFS []string `json:"top_fs,omitempty"`
}

// FSCut returns the percent of the N version's false-sharing misses
// the restructurer eliminated under this cell's protocol/topology.
func (c MatrixCell) FSCut() float64 {
	if c.N.FalseShare == 0 {
		return 0
	}
	return 100 * float64(c.N.FalseShare-c.C.FalseShare) / float64(c.N.FalseShare)
}

// matrixCacheConfig builds the simulator configuration for one grid
// point: the paper's cache geometry under the cell's protocol and
// topology (two-ring latency defaults are the KSR2 numbers).
func matrixCacheConfig(procs int, block int64, proto cache.Protocol, topo cache.Topology) cache.Config {
	ccfg := cache.DefaultConfig(procs, block)
	ccfg.Protocol = proto
	ccfg.Topology = topo
	return ccfg
}

// MeasureConfig executes prog once and simulates its trace under one
// explicit cache configuration (NumProcs is taken from the program's
// layout). It is the protocol/topology-aware sibling of
// MeasureBlocksCtx, serial by construction: one simulator, fed inline.
func MeasureConfig(ctx context.Context, prog *core.Program, ccfg cache.Config, budget int64) (*cache.Stats, error) {
	st, _, err := measureConfig(ctx, prog, ccfg, budget, false)
	return st, err
}

// MeasureConfigAttr is MeasureConfig with miss attribution.
func MeasureConfigAttr(ctx context.Context, prog *core.Program, ccfg cache.Config, budget int64) (*cache.Stats, *attr.Report, error) {
	return measureConfig(ctx, prog, ccfg, budget, true)
}

func measureConfig(ctx context.Context, prog *core.Program, ccfg cache.Config, budget int64, attributed bool) (*cache.Stats, *attr.Report, error) {
	sp := obs.Begin("measure-config")
	defer sp.End()
	nprocs := int(prog.Layout.Nprocs)
	ccfg.NumProcs = nprocs
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return nil, nil, err
	}
	sim, err := cache.New(ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: MeasureConfig: %w", err)
	}
	m := vm.New(bc)
	m.SetContext(ctx)
	if budget > 0 {
		m.MaxInstrs = budget
	}
	var amap *attr.Map
	var col *attr.Collector
	if attributed {
		amap = attr.NewMap(prog.Layout)
		amap.AttachMachine(m)
		col = attr.NewCollector(amap, ccfg.BlockSize)
		sim.SetAttributor(col)
	}
	installMetrics([]*cache.Sim{sim}, []int64{ccfg.BlockSize})
	if err := m.Run(func(r vm.Ref) {
		sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
	}); err != nil {
		return nil, nil, err
	}
	if !attributed {
		return sim.Stats(), nil, nil
	}
	amap.ResolveOwners()
	return sim.Stats(), col.Report(nprocs), nil
}

// topFSObjects extracts the worst false-sharing object names from an
// attribution report, by descending miss count, up to n.
func topFSObjects(rep *attr.Report, n int) []string {
	type of struct {
		name string
		fs   int64
	}
	var objs []of
	for _, o := range rep.Objects {
		if o.FalseShare > 0 {
			objs = append(objs, of{o.Object, o.FalseShare})
		}
	}
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].fs != objs[j].fs {
			return objs[i].fs > objs[j].fs
		}
		return objs[i].name < objs[j].name
	})
	var out []string
	for i := 0; i < len(objs) && i < n; i++ {
		out = append(out, objs[i].name)
	}
	return out
}

// Matrix sweeps the (protocol × topology × generated workload) grid:
// every cell compiles the workload's unoptimized and restructured
// versions, measures both under the cell's protocol and topology, and
// attributes the unoptimized run's false sharing. Cells are
// independent pool jobs keyed "matrix/<workload>/<protocol>/<topology>"
// — journaled, resumable, and policy-governed exactly like the figure
// drivers. Safe mode (cfg.Verify) translation-validates every C build
// and records degradations against the cell key.
func Matrix(cfg Config, opt MatrixOptions) ([]MatrixCell, error) {
	opt = opt.withDefaults()
	params := gen.Corpus(opt.Workloads, opt.Seed)
	if opt.ScaleMin {
		for i := range params {
			if params[i].Elems > 128 {
				params[i].Elems = 128
			}
			if params[i].Rounds > 4 {
				params[i].Rounds = 4
			}
		}
	}
	var jobs []pool.Job[MatrixCell]
	for _, p := range params {
		p := p.Clamped()
		bench := gen.Benchmark(p)
		for _, proto := range opt.Protocols {
			for _, topo := range opt.Topologies {
				proto, topo := proto, topo
				key := fmt.Sprintf("matrix/%s/%s/%s", bench.Name, proto, topo)
				jobs = append(jobs, pool.Job[MatrixCell]{
					Key: key,
					Fingerprint: fingerprint("matrix",
						"wl="+bench.Name, "proto="+proto.String(), "topo="+topo.String(),
						fmt.Sprintf("procs=%d", opt.Procs), fmt.Sprintf("blk=%d", opt.Block),
						fmt.Sprintf("scale=%d", cfg.Scale), fmt.Sprintf("budget=%d", cfg.StepBudget),
						fmt.Sprintf("verify=%v", cfg.Verify),
						"src="+srcHash(bench.Source(cfg.Scale))),
					Run: func(ctx context.Context) (MatrixCell, error) {
						return cfg.matrixCell(ctx, key, p, bench, proto, topo, opt.Procs, opt.Block)
					},
				})
			}
		}
	}
	cells, err := runJobs(cfg, "matrix", jobs)
	if err == nil {
		return cells, nil
	}
	failed := failedKeys(err)
	var ok []MatrixCell
	for i, j := range jobs {
		if !failed[j.Key] {
			ok = append(ok, cells[i])
		}
	}
	return ok, partial(err, len(jobs))
}

// matrixCell runs one grid cell: build N and C, measure both under the
// cell's protocol/topology, attribute the N run's false sharing. The C
// build goes through cfg.buildProgram, so safe mode (cfg.Verify)
// translation-validates it and records degradations under the cell key.
func (cfg Config) matrixCell(ctx context.Context, key string, p gen.Params, bench *workload.Benchmark, proto cache.Protocol, topo cache.Topology, procs int, block int64) (MatrixCell, error) {
	ccfg := matrixCacheConfig(procs, block, proto, topo)
	progN, err := cfg.buildProgram(ctx, key, bench, VersionN, procs, block, transform.Config{})
	if err != nil {
		return MatrixCell{}, fmt.Errorf("matrix %s N: %w", bench.Name, err)
	}
	stN, repN, err := MeasureConfigAttr(ctx, progN, ccfg, cfg.StepBudget)
	if err != nil {
		return MatrixCell{}, fmt.Errorf("matrix %s N run: %w", bench.Name, err)
	}
	progC, err := cfg.buildProgram(ctx, key, bench, VersionC, procs, block, transform.Config{})
	if err != nil {
		return MatrixCell{}, fmt.Errorf("matrix %s C: %w", bench.Name, err)
	}
	stC, err := MeasureConfig(ctx, progC, ccfg, cfg.StepBudget)
	if err != nil {
		return MatrixCell{}, fmt.Errorf("matrix %s C run: %w", bench.Name, err)
	}
	if cfg.Diag {
		recordDiagCell(DiagCell{
			Key:     key,
			Program: bench.Name,
			Version: VersionN,
			Block:   block,
			Procs:   procs,
			Report:  repN,
		})
	}
	return MatrixCell{
		Key:      key,
		Workload: bench.Name,
		Pattern:  p.Pattern.String(),
		Protocol: proto.String(),
		Topology: topo.String(),
		Procs:    procs,
		Block:    block,
		N:        newMatrixStats(stN),
		C:        newMatrixStats(stC),
		TopFS:    topFSObjects(repN, 3),
	}, nil
}

// RenderMatrix formats the aggregated grid: one row per (protocol ×
// topology) point, miss and false-sharing totals of the unoptimized
// vs restructured populations, plus the two-ring service cost. The
// row order follows the options' axis order, so output is
// deterministic at any worker count.
func RenderMatrix(cells []MatrixCell) string {
	type gk struct{ proto, topo string }
	type agg struct {
		cells               int
		refsN, missN, missC int64
		fsN, fsC            int64
		costN, costC        int64
	}
	aggs := map[gk]*agg{}
	var order []gk
	for _, c := range cells {
		k := gk{c.Protocol, c.Topology}
		a := aggs[k]
		if a == nil {
			a = &agg{}
			aggs[k] = a
			order = append(order, k)
		}
		a.cells++
		a.refsN += c.N.Refs
		a.missN += c.N.Misses
		a.missC += c.C.Misses
		a.fsN += c.N.FalseShare
		a.fsC += c.C.FalseShare
		a.costN += c.N.CostCycles
		a.costC += c.C.CostCycles
	}
	var sb strings.Builder
	sb.WriteString("Protocol/topology matrix: generated workloads, N=unoptimized C=compiler\n")
	fmt.Fprintf(&sb, "%-16s %-9s %5s | %9s %9s | %8s %8s %7s | %11s %11s\n",
		"protocol", "topology", "cells", "missN", "missC", "fsN", "fsC", "fs-cut%", "costN(cyc)", "costC(cyc)")
	for _, k := range order {
		a := aggs[k]
		cut := 0.0
		if a.fsN > 0 {
			cut = 100 * float64(a.fsN-a.fsC) / float64(a.fsN)
		}
		fmt.Fprintf(&sb, "%-16s %-9s %5d | %9d %9d | %8d %8d %7.1f | %11d %11d\n",
			k.proto, k.topo, a.cells, a.missN, a.missC, a.fsN, a.fsC, cut, a.costN, a.costC)
	}
	// Pattern summary: false-sharing reduction by generated sharing
	// pattern, aggregated across the whole grid.
	pat := map[string]*agg{}
	var porder []string
	for _, c := range cells {
		a := pat[c.Pattern]
		if a == nil {
			a = &agg{}
			pat[c.Pattern] = a
			porder = append(porder, c.Pattern)
		}
		a.cells++
		a.fsN += c.N.FalseShare
		a.fsC += c.C.FalseShare
	}
	sort.Strings(porder)
	sb.WriteString("\nBy pattern (all protocols/topologies):\n")
	fmt.Fprintf(&sb, "%-11s %5s | %8s %8s %7s\n", "pattern", "cells", "fsN", "fsC", "fs-cut%")
	for _, p := range porder {
		a := pat[p]
		cut := 0.0
		if a.fsN > 0 {
			cut = 100 * float64(a.fsN-a.fsC) / float64(a.fsN)
		}
		fmt.Fprintf(&sb, "%-11s %5d | %8d %8d %7.1f\n", p, a.cells, a.fsN, a.fsC, cut)
	}
	return sb.String()
}

// CSVMatrix emits the raw cells as CSV (fsexp -matrix -csv).
func CSVMatrix(cells []MatrixCell) string {
	var sb strings.Builder
	sb.WriteString("workload,pattern,protocol,topology,procs,block,refsN,missN,missC,fsN,fsC,upgN,upgC,updatesN,costN,costC,topfs\n")
	for _, c := range cells {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			c.Workload, c.Pattern, c.Protocol, c.Topology, c.Procs, c.Block,
			c.N.Refs, c.N.Misses, c.C.Misses, c.N.FalseShare, c.C.FalseShare,
			c.N.Upgrades, c.C.Upgrades, c.N.Updates, c.N.CostCycles, c.C.CostCycles,
			strings.Join(c.TopFS, ";"))
	}
	return sb.String()
}
