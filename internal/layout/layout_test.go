package layout

import (
	"testing"
	"testing/quick"

	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

func compute(t *testing.T, src string, dirs *Directives, nprocs int64) (*types.Info, *Layout) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	l, err := Compute(info, dirs, nprocs)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return info, l
}

const layoutSrc = `
struct Node {
    int a;
    double d;
    int b;
    struct Node *next;
};
shared int x;
shared double y;
shared int arr[10];
shared double mat[4][6];
shared struct Node nodes[3];
lock l;
private int priv;
void main() { }
`

func TestBasicPacking(t *testing.T) {
	_, l := compute(t, layoutSrc, nil, 4)
	x := l.Var("x")
	y := l.Var("y")
	if x.Base != GlobalBase {
		t.Errorf("x base = %#x", x.Base)
	}
	// y is 8-aligned right after x's 4 bytes.
	if y.Base != GlobalBase+8 {
		t.Errorf("y base = %#x, want %#x", y.Base, GlobalBase+8)
	}
	// Private globals take no shared space.
	if l.Var("priv") != nil {
		t.Errorf("private global must not get a shared address")
	}
}

func TestStructLayout(t *testing.T) {
	_, l := compute(t, layoutSrc, nil, 4)
	sl := l.Struct("Node")
	// a at 0, d at 8 (aligned), b at 16, next at 24, size 32.
	want := []int64{0, 8, 16, 24}
	for i, w := range want {
		if sl.Offsets[i] != w {
			t.Errorf("offset[%d] = %d, want %d", i, sl.Offsets[i], w)
		}
	}
	if sl.Size != 32 || sl.Align != 8 {
		t.Errorf("size=%d align=%d", sl.Size, sl.Align)
	}
}

func TestArrayStrides(t *testing.T) {
	_, l := compute(t, layoutSrc, nil, 4)
	mat := l.Var("mat")
	if len(mat.Strides) != 2 || mat.Strides[1] != 8 || mat.Strides[0] != 48 {
		t.Errorf("mat strides = %v", mat.Strides)
	}
	if mat.Total != 4*48 {
		t.Errorf("mat total = %d", mat.Total)
	}
	if got := mat.Address([]int64{2, 3}); got != mat.Base+2*48+3*8 {
		t.Errorf("address = %#x", got)
	}
}

func TestPadElemDirective(t *testing.T) {
	dirs := NewDirectives(64)
	dirs.PadElem["arr"] = 64
	dirs.AlignVar["arr"] = 64
	_, l := compute(t, layoutSrc, dirs, 4)
	arr := l.Var("arr")
	if arr.Strides[0] != 64 {
		t.Errorf("padded stride = %d, want 64", arr.Strides[0])
	}
	if arr.Base%64 != 0 {
		t.Errorf("padded base %#x not aligned", arr.Base)
	}
	if arr.ElemSize != 4 {
		t.Errorf("element size must stay 4 (access width), got %d", arr.ElemSize)
	}
}

func TestPadRowDirective(t *testing.T) {
	dirs := NewDirectives(128)
	dirs.PadRow["mat"] = 128
	_, l := compute(t, layoutSrc, dirs, 4)
	mat := l.Var("mat")
	if mat.Strides[0]%128 != 0 {
		t.Errorf("row stride = %d, want multiple of 128", mat.Strides[0])
	}
	if mat.Strides[1] != 8 {
		t.Errorf("inner stride changed: %d", mat.Strides[1])
	}
}

func TestNprocsDimensions(t *testing.T) {
	src := `
shared int percpu[2 * nprocs];
void main() { }
`
	_, l := compute(t, src, nil, 12)
	v := l.Var("percpu")
	if v.Dims[0] != 24 {
		t.Errorf("dims = %v", v.Dims)
	}
}

func TestSizeOf(t *testing.T) {
	info, l := compute(t, layoutSrc, nil, 4)
	n, err := l.SizeOf(&types.Type{Kind: types.StructK, Struct: info.Structs["Node"]})
	if err != nil || n != 32 {
		t.Errorf("SizeOf(Node) = %d, %v", n, err)
	}
	if n, _ := l.SizeOf(types.IntType); n != 4 {
		t.Errorf("SizeOf(int) = %d", n)
	}
	if n, _ := l.SizeOf(types.PointerTo(types.DoubleType)); n != 8 {
		t.Errorf("SizeOf(ptr) = %d", n)
	}
}

func TestArenas(t *testing.T) {
	_, l := compute(t, layoutSrc, nil, 8)
	if l.ArenaStart(0) != l.ArenaBase || l.ArenaStart(3) != l.ArenaBase+3*l.ArenaSize {
		t.Errorf("arena starts wrong")
	}
	if l.ArenaBase <= l.HeapBase {
		t.Errorf("arenas must follow the heap")
	}
	if l.End != l.ArenaBase+8*l.ArenaSize {
		t.Errorf("End = %#x", l.End)
	}
}

func TestRecursiveStructByValueRejected(t *testing.T) {
	// Pointer recursion is fine (checked elsewhere); value recursion
	// cannot be laid out. The checker already rejects embedded struct
	// values, so construct the cycle via the layout API directly:
	// here we just confirm pointer recursion lays out.
	src := `
struct L { int v; struct L *next; };
shared struct L *head;
void main() { }
`
	_, l := compute(t, src, nil, 2)
	if l.Struct("L").Size != 16 {
		t.Errorf("L size = %d", l.Struct("L").Size)
	}
}

// Property: no two shared globals ever overlap, under arbitrary
// padding/alignment directives.
func TestNoOverlapProperty(t *testing.T) {
	f := func(padX, padArr, alignY, rowMat uint8) bool {
		pow2 := func(v uint8) int64 { return 1 << (2 + v%7) } // 4..256
		dirs := NewDirectives(128)
		dirs.PadElem["x"] = pow2(padX)
		dirs.PadElem["arr"] = pow2(padArr)
		dirs.AlignVar["y"] = pow2(alignY)
		dirs.PadRow["mat"] = pow2(rowMat)

		fAst, err := parser.Parse(layoutSrc)
		if err != nil {
			return false
		}
		info, err := types.Check(fAst)
		if err != nil {
			return false
		}
		l, err := Compute(info, dirs, 6)
		if err != nil {
			return false
		}
		type span struct{ lo, hi int64 }
		var spans []span
		for _, name := range l.Order {
			v := l.Var(name)
			spans = append(spans, span{v.Base, v.Base + v.Total})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		// Heap starts after all globals.
		for _, s := range spans {
			if s.hi > l.HeapBase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: element addresses within a padded array are disjoint and
// honor the stride.
func TestElementAddressProperty(t *testing.T) {
	f := func(pad uint8, i1, i2 uint8) bool {
		p := int64(1) << (2 + pad%7)
		dirs := NewDirectives(128)
		dirs.PadElem["arr"] = p
		fAst, _ := parser.Parse(layoutSrc)
		info, _ := types.Check(fAst)
		l, err := Compute(info, dirs, 4)
		if err != nil {
			return false
		}
		arr := l.Var("arr")
		a, b := int64(i1%10), int64(i2%10)
		addrA, addrB := arr.Address([]int64{a}), arr.Address([]int64{b})
		if a == b {
			return addrA == addrB
		}
		// Distinct elements must not overlap at their access width.
		lo1, hi1 := addrA, addrA+arr.ElemSize
		lo2, hi2 := addrB, addrB+arr.ElemSize
		return hi1 <= lo2 || hi2 <= lo1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectivesString(t *testing.T) {
	d := NewDirectives(64)
	d.PadElem["a"] = 64
	d.AlignVar["b"] = 128
	s := d.String()
	for _, want := range []string{"block=64", "padElem a 64", "align b 128"} {
		if !contains(s, want) {
			t.Errorf("directives string missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRoundUp(t *testing.T) {
	cases := [][3]int64{{5, 4, 8}, {8, 4, 8}, {0, 16, 0}, {1, 1, 1}, {7, 0, 7}}
	for _, c := range cases {
		if got := RoundUp(c[0], c[1]); got != c[2] {
			t.Errorf("RoundUp(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
