// Package layout assigns shared-memory addresses to parc data.
//
// The layout is where the shared data transformations become physical:
// the transformation pass emits Directives (alignment, element padding,
// row padding) and rewrites declarations; this package turns the
// (possibly transformed) declarations plus directives into concrete
// byte addresses, strides and struct offsets for the virtual machine
// and the cache simulator.
//
// Address space map (byte-addressed):
//
//	0x0          null page (never mapped)
//	GlobalBase   shared globals and locks, in declaration order
//	heap         shared heap (alloc), block-aligned start
//	arenas       one per-process arena (allocpp), each block-aligned
package layout

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/faultinject"
	"falseshare/internal/lang/types"
)

// GlobalBase is the address of the first shared global.
const GlobalBase int64 = 0x1000

// VarError is a layout failure attributable to one shared global. The
// restructurer uses the attribution to roll back just the
// transformations that touch that object (per-object degradation)
// instead of failing the whole compile.
type VarError struct {
	Name string // the shared global whose layout failed
	Err  error
}

func (e *VarError) Error() string { return fmt.Sprintf("layout: global %q: %v", e.Name, e.Err) }

func (e *VarError) Unwrap() error { return e.Err }

// Directives carry the data-transformation decisions that affect
// memory layout. Keys are global variable names (after any renaming
// done by the transformation pass).
type Directives struct {
	// BlockSize is the coherence block size padding targets. Zero
	// means "no transformation-driven padding anywhere".
	BlockSize int64
	// AlignVar aligns a global's base address to the given boundary.
	AlignVar map[string]int64
	// PadElem pads a global's innermost element stride up to a
	// multiple of the given size (pad & align; grouped per-process
	// records; padded locks).
	PadElem map[string]int64
	// PadRow pads the outermost-dimension stride (the per-process row
	// of a transposed or reshaped array) to a multiple of the size.
	PadRow map[string]int64
	// PadHeapElem pads elements of the heap array assigned to the
	// named shared global pointer.
	PadHeapElem map[string]int64
}

// NewDirectives returns empty directives for a block size.
func NewDirectives(blockSize int64) *Directives {
	return &Directives{
		BlockSize:   blockSize,
		AlignVar:    map[string]int64{},
		PadElem:     map[string]int64{},
		PadRow:      map[string]int64{},
		PadHeapElem: map[string]int64{},
	}
}

// String renders the directives deterministically.
func (d *Directives) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block=%d\n", d.BlockSize)
	dump := func(label string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s %s %d\n", label, k, m[k])
		}
	}
	dump("align", d.AlignVar)
	dump("padElem", d.PadElem)
	dump("padRow", d.PadRow)
	dump("padHeapElem", d.PadHeapElem)
	return sb.String()
}

// StructLayout is the concrete layout of a struct type.
type StructLayout struct {
	Name    string
	Size    int64
	Align   int64
	Offsets []int64 // by field index
}

// FieldAt returns the index of the field containing byte offset off
// (relative to the struct base): the last field whose offset is <=
// off, so alignment padding counts toward the field it follows. It
// returns -1 when off is negative or past the struct (element
// padding). Offsets are ascending by construction.
func (sl *StructLayout) FieldAt(off int64) int {
	if off < 0 || off >= sl.Size {
		return -1
	}
	for i := len(sl.Offsets) - 1; i >= 0; i-- {
		if off >= sl.Offsets[i] {
			return i
		}
	}
	return -1
}

// VarLayout is the concrete layout of one shared global.
type VarLayout struct {
	Name string
	Sym  *types.Symbol
	Base int64
	// Dims are the concrete extents, outermost first (empty: scalar).
	Dims []int64
	// Strides are the byte strides per dimension, outermost first.
	// The address of v[i0][i1]... is Base + sum_k i_k * Strides[k].
	Strides []int64
	// ElemSize is the byte size of the scalar element itself (without
	// padding); loads/stores use this width.
	ElemSize int64
	// Total is the padded total byte size.
	Total int64
}

// Layout is the complete address map of a program configuration.
type Layout struct {
	Info      *types.Info
	Dirs      *Directives
	Nprocs    int64
	Vars      map[string]*VarLayout
	Structs   map[string]*StructLayout
	Order     []string // globals in declaration order
	HeapBase  int64
	ArenaBase int64 // first arena; arena p starts at ArenaBase + p*ArenaSize
	ArenaSize int64
	// End is the first address past the arenas.
	End int64
}

// DefaultArenaSize is the per-process arena for allocpp storage.
const DefaultArenaSize int64 = 1 << 20

// Compute builds the layout for a checked program.
func Compute(info *types.Info, dirs *Directives, nprocs int64) (*Layout, error) {
	if dirs == nil {
		dirs = NewDirectives(0)
	}
	l := &Layout{
		Info:    info,
		Dirs:    dirs,
		Nprocs:  nprocs,
		Vars:    map[string]*VarLayout{},
		Structs: map[string]*StructLayout{},
	}
	// Struct layouts first (fields may be needed for element sizes).
	for name := range info.Structs {
		if _, err := l.structLayout(name, map[string]bool{}); err != nil {
			return nil, err
		}
	}

	addr := GlobalBase
	for _, g := range info.File.Globals {
		sym := info.Globals[g.Name]
		if sym == nil || !sym.IsShared() {
			continue
		}
		// Per-object fault point: chaos tests target one global here to
		// assert it alone degrades to the identity layout.
		if err := faultinject.Fire(nil, "layout", g.Name); err != nil {
			return nil, &VarError{Name: g.Name, Err: err}
		}
		vl, err := l.varLayout(sym)
		if err != nil {
			return nil, &VarError{Name: g.Name, Err: err}
		}
		align := l.alignOf(sym.Type)
		if a, ok := dirs.AlignVar[g.Name]; ok && a > align {
			align = a
		}
		addr = roundUp(addr, align)
		vl.Base = addr
		addr += vl.Total
		l.Vars[g.Name] = vl
		l.Order = append(l.Order, g.Name)
	}

	block := dirs.BlockSize
	if block < 64 {
		block = 64
	}
	l.HeapBase = roundUp(addr, block*4)
	heapSize := int64(1 << 24) // 16 MiB shared heap
	l.ArenaBase = l.HeapBase + heapSize
	l.ArenaSize = DefaultArenaSize
	l.End = l.ArenaBase + l.ArenaSize*nprocs
	return l, nil
}

// Var returns the layout of a shared global, or nil.
func (l *Layout) Var(name string) *VarLayout { return l.Vars[name] }

// Struct returns the layout of a struct type.
func (l *Layout) Struct(name string) *StructLayout { return l.Structs[name] }

// ArenaStart returns the base address of process p's arena.
func (l *Layout) ArenaStart(p int64) int64 { return l.ArenaBase + p*l.ArenaSize }

// SizeOf returns the allocated byte size of a type (for alloc).
func (l *Layout) SizeOf(t *types.Type) (int64, error) {
	switch t.Kind {
	case types.Int, types.Double, types.Pointer, types.LockT:
		return t.ScalarSize()
	case types.StructK:
		sl := l.Structs[t.Struct.Name]
		if sl == nil {
			return 0, fmt.Errorf("layout: unknown struct %q", t.Struct.Name)
		}
		return sl.Size, nil
	case types.Array:
		dims, ok := types.ArrayDims(t, l.Nprocs)
		if !ok {
			return 0, fmt.Errorf("layout: non-constant array extent")
		}
		es, err := l.SizeOf(types.ElemType(t))
		if err != nil {
			return 0, err
		}
		n := int64(1)
		for _, d := range dims {
			n *= d
		}
		return n * es, nil
	}
	return 0, fmt.Errorf("layout: cannot size type %s", t)
}

func (l *Layout) alignOf(t *types.Type) int64 {
	switch t.Kind {
	case types.Int, types.LockT:
		return 4
	case types.Double, types.Pointer:
		return 8
	case types.Array:
		return l.alignOf(types.ElemType(t))
	case types.StructK:
		if sl := l.Structs[t.Struct.Name]; sl != nil {
			return sl.Align
		}
	}
	return 8
}

func (l *Layout) structLayout(name string, visiting map[string]bool) (*StructLayout, error) {
	if sl, ok := l.Structs[name]; ok {
		return sl, nil
	}
	if visiting[name] {
		return nil, fmt.Errorf("layout: recursive struct embedding in %q", name)
	}
	visiting[name] = true
	si := l.Info.Structs[name]
	if si == nil {
		return nil, fmt.Errorf("layout: unknown struct %q", name)
	}
	sl := &StructLayout{Name: name, Align: 4}
	off := int64(0)
	for _, f := range si.Fields {
		fsize, falign, err := l.fieldSize(f.Type, visiting)
		if err != nil {
			return nil, err
		}
		off = roundUp(off, falign)
		sl.Offsets = append(sl.Offsets, off)
		off += fsize
		if falign > sl.Align {
			sl.Align = falign
		}
	}
	sl.Size = roundUp(off, sl.Align)
	if sl.Size == 0 {
		sl.Size = sl.Align
	}
	l.Structs[name] = sl
	delete(visiting, name)
	return sl, nil
}

func (l *Layout) fieldSize(t *types.Type, visiting map[string]bool) (size, align int64, err error) {
	switch t.Kind {
	case types.Int, types.LockT:
		return t.MustScalarSize(), 4, nil
	case types.Double, types.Pointer:
		return t.MustScalarSize(), 8, nil
	case types.Array:
		dims, ok := types.ArrayDims(t, l.Nprocs)
		if !ok {
			return 0, 0, fmt.Errorf("layout: non-constant field array extent")
		}
		es, ea, err := l.fieldSize(types.ElemType(t), visiting)
		if err != nil {
			return 0, 0, err
		}
		n := int64(1)
		for _, d := range dims {
			n *= d
		}
		return n * es, ea, nil
	case types.StructK:
		sl, err := l.structLayout(t.Struct.Name, visiting)
		if err != nil {
			return 0, 0, err
		}
		return sl.Size, sl.Align, nil
	}
	return 0, 0, fmt.Errorf("layout: cannot size field type %s", t)
}

// varLayout computes dims, strides and sizes for one global.
func (l *Layout) varLayout(sym *types.Symbol) (*VarLayout, error) {
	vl := &VarLayout{Name: sym.Name, Sym: sym}
	t := sym.Type
	dims, ok := types.ArrayDims(t, l.Nprocs)
	if !ok && t.Kind == types.Array {
		return nil, fmt.Errorf("non-constant extent")
	}
	vl.Dims = dims

	elem := types.ElemType(t)
	var esize int64
	switch elem.Kind {
	case types.StructK:
		sl := l.Structs[elem.Struct.Name]
		if sl == nil {
			return nil, fmt.Errorf("unknown struct %q", elem.Struct.Name)
		}
		esize = sl.Size
	default:
		var err error
		esize, err = elem.ScalarSize()
		if err != nil {
			return nil, err
		}
	}
	vl.ElemSize = esize

	// Element stride: padded when directed (pad & align, grouping).
	stride := esize
	if pad, ok := l.Dirs.PadElem[sym.Name]; ok && pad > 0 {
		stride = roundUp(stride, pad)
	}

	if len(dims) == 0 {
		vl.Total = stride
		return vl, nil
	}
	// Strides inner to outer.
	strides := make([]int64, len(dims))
	strides[len(dims)-1] = stride
	for i := len(dims) - 2; i >= 0; i-- {
		row := strides[i+1] * dims[i+1]
		if i == 0 {
			if pad, ok := l.Dirs.PadRow[sym.Name]; ok && pad > 0 {
				row = roundUp(row, pad)
			}
		}
		strides[i] = row
	}
	vl.Strides = strides
	total := strides[0] * dims[0]
	// Row padding of a 1-D array is meaningless; PadRow applies to the
	// outermost dimension of rank >= 2 arrays only.
	vl.Total = total
	return vl, nil
}

// Address computes the address of v[indices...]; len(indices) may be
// less than the rank when taking a row base.
func (vl *VarLayout) Address(indices []int64) int64 {
	a := vl.Base
	for k, idx := range indices {
		a += idx * vl.Strides[k]
	}
	return a
}

func roundUp(v, align int64) int64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) / align * align
}

// RoundUp exposes the padding arithmetic for other packages.
func RoundUp(v, align int64) int64 { return roundUp(v, align) }
