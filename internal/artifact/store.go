// Package artifact is the crash-safe content-addressed artifact
// store behind both the distributed fabric's result cache and the
// fsd daemon's per-stage response cache. One JSON file per artifact,
// addressed by hash(schema version ‖ key): the schema names the
// producing stage and its version (bumping it is a clean cache
// flush without disturbing other generations), the key covers
// everything the artifact depends on — source hash, configuration,
// budgets.
//
// Crash safety is the contract:
//
//   - Writes are atomic (tmp file + rename), so a reader never
//     observes a torn entry and a writer killed mid-write loses at
//     most the entry it was writing.
//   - Open runs a recovery scan: orphaned tmp files are reaped and
//     any entry that fails to parse or whose recorded (schema, key)
//     disagrees with its address is dropped and counted, never
//     served.
//   - Reads validate; a corrupt entry found at read time is dropped
//     (counted in CorruptDropped) and reported as a miss — the cost
//     of corruption is one recomputation, never an error.
//   - Eviction is least-recently-used under a byte budget. Recency
//     survives restarts via an index file that is purely a hint:
//     a torn or missing index costs eviction accuracy (file mtimes
//     stand in), never artifacts.
//
// The store is safe for concurrent use within a process. Multiple
// processes may share a directory (atomic renames keep every file
// well-formed); each process then tracks its own recency and byte
// accounting, and entries written by others are adopted on first
// read.
package artifact

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"falseshare/internal/faultinject"
)

// Options configures a Store.
type Options struct {
	// MaxBytes is the LRU eviction budget over entry file sizes;
	// 0 means unlimited.
	MaxBytes int64
	// FaultPoint, when non-empty, names the faultinject site fired
	// during Put — once on entry (detail "put/<key>") and once just
	// before the rename that commits the entry (detail
	// "rename/<key>"), so chaos specs can kill the process with a
	// torn write on disk or corrupt the payload deliberately.
	FaultPoint string
}

// Counters is a snapshot of the store's activity since Open.
type Counters struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	Evictions      int64 `json:"evictions"`
	Entries        int64 `json:"entries"`
	Bytes          int64 `json:"bytes"`
}

// Store is a crash-safe content-addressed artifact store rooted at
// one directory.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	entries map[string]*entry // hash → entry
	lru     *list.List        // front = least recently used
	bytes   int64
	hits    int64
	misses  int64
	corrupt int64
	evicted int64
}

type entry struct {
	hash string
	size int64
	elem *list.Element
}

// storedEntry is the on-disk format: self-describing, so the
// recovery scan can validate an entry against its own address
// without knowing which stage wrote it.
type storedEntry struct {
	Schema string          `json:"schema"`
	Key    string          `json:"key"`
	Data   json.RawMessage `json:"data"`
}

// indexName is the LRU recency hint flushed by Close. It lives at
// the store root, outside the 2-hex-char entry fan-out.
const indexName = "index.json"

type indexFile struct {
	// Order lists entry hashes least-recently-used first.
	Order []string `json:"order"`
}

// hashOf maps (schema, key) to the entry's content address.
func hashOf(schema, key string) string {
	sum := sha256.Sum256([]byte(schema + "\x00" + key))
	return hex.EncodeToString(sum[:])
}

// Open opens (creating as needed) the store rooted at dir and runs
// the recovery scan: orphan tmp files are reaped, torn or corrupt
// entries are dropped and counted, and the LRU order is rebuilt from
// the index hint (falling back to file mtimes).
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// recover scans the directory, validating every entry file. It runs
// before the store is visible to any other goroutine, so it needs no
// locking.
func (s *Store) recover() error {
	type found struct {
		hash  string
		size  int64
		mtime int64
	}
	var scanned []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, ".tmp-") {
			// A writer died between CreateTemp and rename: the entry
			// it was writing is lost (that is the crash-safety
			// contract — at most that entry), the debris is reaped.
			os.Remove(path)
			s.corrupt++
			return nil
		}
		if path == filepath.Join(s.dir, indexName) {
			return nil
		}
		hash, size, ok := s.validate(path)
		if !ok {
			os.Remove(path)
			s.corrupt++
			return nil
		}
		info, ierr := d.Info()
		var mt int64
		if ierr == nil {
			mt = info.ModTime().UnixNano()
		}
		scanned = append(scanned, found{hash: hash, size: size, mtime: mt})
		return nil
	})
	if err != nil {
		return fmt.Errorf("artifact: recovery scan %s: %w", s.dir, err)
	}

	// Recency: entries named by the index hint keep its order
	// (least-recent first); the rest — written after the last clean
	// flush — rank by mtime and count as more recent.
	sort.Slice(scanned, func(i, j int) bool { return scanned[i].mtime < scanned[j].mtime })
	byHash := make(map[string]found, len(scanned))
	for _, f := range scanned {
		byHash[f.hash] = f
	}
	var idx indexFile
	if b, rerr := os.ReadFile(filepath.Join(s.dir, indexName)); rerr == nil {
		// A torn index is ignored wholesale: it is only a hint.
		if json.Unmarshal(b, &idx) != nil {
			idx.Order = nil
		}
	}
	push := func(f found) {
		e := &entry{hash: f.hash, size: f.size}
		e.elem = s.lru.PushBack(e)
		s.entries[f.hash] = e
		s.bytes += f.size
	}
	for _, h := range idx.Order {
		if f, ok := byHash[h]; ok {
			push(f)
			delete(byHash, h)
		}
	}
	for _, f := range scanned {
		if _, ok := byHash[f.hash]; ok {
			push(f)
			delete(byHash, f.hash)
		}
	}
	s.evictOver("")
	return nil
}

// validate reads one entry file and checks it against its address:
// parseable JSON whose recorded (schema, key) hash to the file's own
// name. Returns the hash and file size on success.
func (s *Store) validate(path string) (string, int64, bool) {
	base := filepath.Base(path)
	if !strings.HasSuffix(base, ".json") {
		return "", 0, false
	}
	hash := strings.TrimSuffix(base, ".json")
	if len(hash) != 64 {
		return "", 0, false
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", 0, false
	}
	var e storedEntry
	if json.Unmarshal(b, &e) != nil || e.Key == "" || hashOf(e.Schema, e.Key) != hash {
		return "", 0, false
	}
	return hash, int64(len(b)), true
}

// path maps a hash to its entry file: <dir>/<h[:2]>/<h>.json, fanned
// out over 256 subdirectories so huge stores don't pile every entry
// into one directory.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// Get returns the artifact stored under (schema, key), if present
// and intact. A torn, tampered, or mismatched entry is dropped and
// reported as a miss, never an error.
func (s *Store) Get(schema, key string) (json.RawMessage, bool) {
	if s == nil || key == "" {
		return nil, false
	}
	hash := hashOf(schema, key)
	path := s.path(hash)

	s.mu.Lock()
	defer s.mu.Unlock()

	b, err := os.ReadFile(path)
	if err != nil {
		s.misses++
		s.forget(hash, false)
		return nil, false
	}
	var e storedEntry
	if json.Unmarshal(b, &e) != nil || e.Schema != schema || e.Key != key {
		// Corrupt on disk: drop it so the recomputed entry replaces
		// it and the damage is visible in the counters.
		os.Remove(path)
		s.forget(hash, false)
		s.corrupt++
		s.misses++
		return nil, false
	}
	s.hits++
	s.touch(hash, int64(len(b)))
	return e.Data, true
}

// Put stores an artifact under (schema, key), atomically: the entry
// is fully written to a tmp file and renamed into place, so readers
// never observe a torn entry and a crash loses at most this write.
// Errors are advisory for cache-shaped callers — a failed Put only
// costs future hits.
func (s *Store) Put(ctx context.Context, schema, key string, data json.RawMessage) error {
	if s == nil || key == "" {
		return nil
	}
	corrupt, err := s.fire(ctx, "put/"+key)
	if err != nil {
		return err
	}
	b, err := json.Marshal(&storedEntry{Schema: schema, Key: key, Data: data})
	if err != nil {
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	if corrupt {
		// A corrupt-mode injection commits a deliberately torn entry:
		// the write proceeds so the read/recovery side must catch it.
		b = b[:len(b)/2]
	}
	hash := hashOf(schema, key)
	path := s.path(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}
	// The crash window: a ModeExit fault here terminates the process
	// with the tmp file written but the entry not yet committed —
	// exactly what kill -9 between write and rename leaves behind.
	if _, err := s.fire(ctx, "rename/"+key); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s: %w", key, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(hash, int64(len(b)))
	s.evictOver(hash)
	return nil
}

// fire triggers the store's fault point. A corrupt-mode injection
// reports corrupt=true so the caller writes deliberate damage (and
// the recovery path must catch it later); other modes surface as
// errors.
func (s *Store) fire(ctx context.Context, detail string) (corrupt bool, err error) {
	if s.opt.FaultPoint == "" {
		return false, nil
	}
	err = faultinject.Fire(ctx, s.opt.FaultPoint, detail)
	if err == nil {
		return false, nil
	}
	if faultinject.IsCorrupt(err) {
		return true, nil
	}
	return false, err
}

// touch records (or refreshes) an entry as most recently used.
// Callers hold s.mu.
func (s *Store) touch(hash string, size int64) {
	if e, ok := s.entries[hash]; ok {
		s.bytes += size - e.size
		e.size = size
		s.lru.MoveToBack(e.elem)
		return
	}
	e := &entry{hash: hash, size: size}
	e.elem = s.lru.PushBack(e)
	s.entries[hash] = e
	s.bytes += size
}

// forget drops an entry from the in-memory index (the file is the
// caller's business). Callers hold s.mu.
func (s *Store) forget(hash string, evicted bool) {
	e, ok := s.entries[hash]
	if !ok {
		return
	}
	s.lru.Remove(e.elem)
	delete(s.entries, hash)
	s.bytes -= e.size
	if evicted {
		s.evicted++
	}
}

// evictOver removes least-recently-used entries until the byte
// budget is met, never evicting keep (the entry just written).
// Callers hold s.mu.
func (s *Store) evictOver(keep string) {
	if s.opt.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opt.MaxBytes && s.lru.Len() > 0 {
		front := s.lru.Front()
		e := front.Value.(*entry)
		if e.hash == keep {
			if s.lru.Len() == 1 {
				return
			}
			s.lru.MoveToBack(front)
			continue
		}
		os.Remove(s.path(e.hash))
		s.forget(e.hash, true)
	}
}

// Counters returns a snapshot of the store's activity. nil-safe.
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Hits:           s.hits,
		Misses:         s.misses,
		CorruptDropped: s.corrupt,
		Evictions:      s.evicted,
		Entries:        int64(len(s.entries)),
		Bytes:          s.bytes,
	}
}

// Close flushes the LRU recency hint. The hint is written atomically
// and is purely advisory: losing it costs eviction accuracy after
// the next Open, never artifacts. nil-safe.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	idx := indexFile{Order: make([]string, 0, s.lru.Len())}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		idx.Order = append(idx.Order, el.Value.(*entry).hash)
	}
	s.mu.Unlock()

	b, err := json.Marshal(&idx)
	if err != nil {
		return fmt.Errorf("artifact: close: %w", err)
	}
	path := filepath.Join(s.dir, indexName)
	tmp, err := os.CreateTemp(s.dir, ".tmp-idx-*")
	if err != nil {
		return fmt.Errorf("artifact: close: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: close: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: close: %w", err)
	}
	return nil
}
