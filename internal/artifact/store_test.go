package artifact

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"falseshare/internal/faultinject"
)

var ctx = context.Background()

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, schema, key, data string) {
	t.Helper()
	if err := s.Put(ctx, schema, key, json.RawMessage(data)); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if _, ok := s.Get("v1", "alpha"); ok {
		t.Fatal("hit on empty store")
	}
	put(t, s, "v1", "alpha", `{"x":1}`)
	got, ok := s.Get("v1", "alpha")
	if !ok || !bytes.Equal(got, []byte(`{"x":1}`)) {
		t.Fatalf("get = %s, %v; want {\"x\":1}, true", got, ok)
	}
	if _, ok := s.Get("v1", "bravo"); ok {
		t.Error("hit for a key never stored")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 2 || c.Entries != 1 || c.Bytes <= 0 {
		t.Errorf("counters = %+v", c)
	}
	// Empty keys never enter the store (unfingerprinted work).
	put(t, s, "v1", "", `1`)
	if _, ok := s.Get("v1", ""); ok {
		t.Error("empty-key Get hit")
	}
	// nil store is inert.
	var nilStore *Store
	if _, ok := nilStore.Get("v1", "alpha"); ok {
		t.Error("nil store hit")
	}
	if err := nilStore.Put(ctx, "v1", "alpha", nil); err != nil {
		t.Errorf("nil store Put: %v", err)
	}
	if err := nilStore.Close(); err != nil {
		t.Errorf("nil store Close: %v", err)
	}
}

func TestStoreSchemaGenerationsCoexist(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "v1", "alpha", `1`)
	put(t, s, "v2", "alpha", `2`)
	if d, ok := s.Get("v1", "alpha"); !ok || string(d) != `1` {
		t.Errorf("v1 entry = %s, %v", d, ok)
	}
	if d, ok := s.Get("v2", "alpha"); !ok || string(d) != `2` {
		t.Errorf("v2 entry = %s, %v", d, ok)
	}
	// Both survive a reopen: a schema bump invalidates by addressing,
	// not by deleting the previous generation.
	r := mustOpen(t, dir, Options{})
	if d, ok := r.Get("v1", "alpha"); !ok || string(d) != `1` {
		t.Errorf("reopened v1 entry = %s, %v", d, ok)
	}
	if c := r.Counters(); c.CorruptDropped != 0 || c.Entries != 2 {
		t.Errorf("reopen counters = %+v", c)
	}
}

func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, ".json") && filepath.Base(p) != indexName {
			files = append(files, p)
		}
		return nil
	})
	return files
}

func TestStoreCorruptReadIsDroppedMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "v1", "alpha", `1`)
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("entry files = %v", files)
	}
	if err := os.WriteFile(files[0], []byte(`{torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("v1", "alpha"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt entry not dropped from disk")
	}
	c := s.Counters()
	if c.CorruptDropped != 1 || c.Hits != 0 {
		t.Errorf("counters = %+v", c)
	}
	// An entry whose recorded key disagrees with its address
	// (collision, tampering) is also dropped.
	b, _ := json.Marshal(&storedEntry{Schema: "v1", Key: "other", Data: json.RawMessage(`1`)})
	os.MkdirAll(filepath.Dir(files[0]), 0o755)
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("v1", "alpha"); ok {
		t.Error("mismatched entry served as a hit")
	}
	if c := s.Counters(); c.CorruptDropped != 2 {
		t.Errorf("counters after mismatch = %+v", c)
	}
}

func TestStoreRecoveryScanDropsTornEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "v1", "alpha", `1`)
	put(t, s, "v1", "bravo", `2`)
	// Tear bravo's file and plant an orphan tmp, as a crashed writer
	// would leave them.
	bh := hashOf("v1", "bravo")
	if err := os.WriteFile(s.path(bh), []byte(`{"schema":"v1","key":"bra`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bh[:2], ".tmp-123"), []byte(`junk`), 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	c := r.Counters()
	if c.CorruptDropped != 2 { // torn entry + orphan tmp
		t.Errorf("CorruptDropped = %d, want 2 (%+v)", c.CorruptDropped, c)
	}
	if c.Entries != 1 {
		t.Errorf("Entries = %d, want 1", c.Entries)
	}
	if d, ok := r.Get("v1", "alpha"); !ok || string(d) != `1` {
		t.Errorf("alpha lost in recovery: %s, %v", d, ok)
	}
	if _, ok := r.Get("v1", "bravo"); ok {
		t.Error("torn bravo served after recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, bh[:2], ".tmp-123")); !os.IsNotExist(err) {
		t.Error("orphan tmp not reaped")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "v1", "alpha", `1`)
	size := s.Counters().Bytes
	s.Close()

	// Budget for two entries of this size (with slack for key-length
	// differences); the third put evicts the least recently used.
	s = mustOpen(t, dir, Options{MaxBytes: 2*size + 8})
	put(t, s, "v1", "bravo", `2`)
	if _, ok := s.Get("v1", "alpha"); !ok { // touch alpha: bravo is now LRU
		t.Fatal("alpha missing before eviction")
	}
	put(t, s, "v1", "charly", `3`)
	c := s.Counters()
	if c.Evictions != 1 || c.Entries != 2 {
		t.Errorf("counters = %+v", c)
	}
	if _, ok := s.Get("v1", "bravo"); ok {
		t.Error("LRU entry bravo survived eviction")
	}
	if _, ok := s.Get("v1", "alpha"); !ok {
		t.Error("recently-used alpha evicted")
	}
	if _, ok := s.Get("v1", "charly"); !ok {
		t.Error("just-written charly evicted")
	}
}

func TestStoreRecencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "v1", "alpha", `1`)
	size := s.Counters().Bytes
	put(t, s, "v1", "bravo", `2`)
	if _, ok := s.Get("v1", "alpha"); !ok { // bravo is LRU at flush time
		t.Fatal("alpha missing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, indexName)); err != nil {
		t.Fatalf("index not flushed: %v", err)
	}
	// Reopen under a one-entry budget: the index hint must direct
	// eviction at bravo, not at the more recently used alpha.
	r := mustOpen(t, dir, Options{MaxBytes: size})
	if _, ok := r.Get("v1", "alpha"); !ok {
		t.Error("recently-used alpha evicted at reopen")
	}
	if _, ok := r.Get("v1", "bravo"); ok {
		t.Error("LRU bravo survived reopen under budget")
	}
	if c := r.Counters(); c.Evictions != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestStoreCorruptFaultWritesDamageReadDropsIt(t *testing.T) {
	set, err := faultinject.Parse("test.store=put/alpha:corrupt:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	s := mustOpen(t, t.TempDir(), Options{FaultPoint: "test.store"})
	put(t, s, "v1", "alpha", `1`) // corrupt injection mangles the payload, write proceeds
	if _, ok := s.Get("v1", "alpha"); ok {
		t.Fatal("deliberately corrupted entry served as a hit")
	}
	if c := s.Counters(); c.CorruptDropped != 1 {
		t.Errorf("counters = %+v", c)
	}
	put(t, s, "v1", "alpha", `1`) // count=1: the rewrite is clean
	if d, ok := s.Get("v1", "alpha"); !ok || string(d) != `1` {
		t.Errorf("clean rewrite = %s, %v", d, ok)
	}
}

func TestStoreErrorFaultFailsPutCleanly(t *testing.T) {
	set, err := faultinject.Parse("test.store=rename/alpha:error:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(set)
	defer faultinject.Disable()

	dir := t.TempDir()
	s := mustOpen(t, dir, Options{FaultPoint: "test.store"})
	if err := s.Put(ctx, "v1", "alpha", json.RawMessage(`1`)); err == nil {
		t.Fatal("injected rename fault did not surface")
	}
	// The failed put left no debris: no tmp files, no entry.
	var tmps []string
	filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(p), ".tmp-") {
			tmps = append(tmps, p)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Errorf("tmp debris after failed put: %v", tmps)
	}
	if _, ok := s.Get("v1", "alpha"); ok {
		t.Error("failed put left a readable entry")
	}
}

// TestStoreCrashMidWriteLosesOnlyThatEntry is the kill -9 contract:
// a process dying between the tmp write and the rename loses exactly
// the entry it was writing. The child (this test binary re-executed)
// writes alpha cleanly, then dies on an injected process exit inside
// bravo's commit window; the parent reopens and checks the damage.
func TestStoreCrashMidWriteLosesOnlyThatEntry(t *testing.T) {
	dir := os.Getenv("ARTIFACT_CRASH_DIR")
	if dir != "" {
		// Child mode.
		set, err := faultinject.Parse("test.store=rename/bravo:exit")
		if err != nil {
			os.Exit(9)
		}
		faultinject.Enable(set)
		s, err := Open(dir, Options{FaultPoint: "test.store"})
		if err != nil {
			os.Exit(9)
		}
		if err := s.Put(ctx, "v1", "alpha", json.RawMessage(`1`)); err != nil {
			os.Exit(9)
		}
		s.Put(ctx, "v1", "bravo", json.RawMessage(`2`)) // exits the process mid-commit
		os.Exit(9)                                      // unreachable if the fault fired
	}

	dir = t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreCrashMidWriteLosesOnlyThatEntry$", "-test.v")
	cmd.Env = append(os.Environ(), "ARTIFACT_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived the injected crash:\n%s", out)
	}
	var ee *exec.ExitError
	if !(errors.As(err, &ee) && ee.ExitCode() == 3) { // faultinject's default exit code
		t.Fatalf("child exit: %v (want exit code 3)\n%s", err, out)
	}

	s := mustOpen(t, dir, Options{})
	if d, ok := s.Get("v1", "alpha"); !ok || string(d) != `1` {
		t.Errorf("alpha lost to bravo's crash: %s, %v", d, ok)
	}
	if _, ok := s.Get("v1", "bravo"); ok {
		t.Error("bravo readable despite crashing before commit")
	}
	c := s.Counters()
	if c.CorruptDropped != 1 { // the reaped tmp file
		t.Errorf("CorruptDropped = %d, want 1 (%+v)", c.CorruptDropped, c)
	}
	var tmps []string
	filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(p), ".tmp-") {
			tmps = append(tmps, p)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Errorf("orphan tmp files after recovery: %v", tmps)
	}
}
