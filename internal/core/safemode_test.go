package core

import (
	"strings"
	"testing"

	"falseshare/internal/faultinject"
	"falseshare/internal/transform"
)

// safemodeSrc triggers several independent decisions — a lock pad, a
// pad&align on a busy scalar, and a group of two pid-indexed vectors
// — so per-object degradation can knock one out while the rest apply.
const safemodeSrc = `
shared int cell[16];
shared int hits[16];
shared int busy1;
shared int result;
lock l;
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        cell[pid] = cell[pid] + 1;
        hits[pid] = hits[pid] + 2;
        acquire(l);
        busy1 = busy1 + 1;
        release(l);
    }
    barrier;
    if (pid == 0) {
        result = busy1;
        for (int k = 0; k < 16; k = k + 1) {
            result = result + cell[k] * (k + 1) + hits[k] * (k + 3);
        }
    }
}
`

func enableFaults(t *testing.T, spec string) {
	t.Helper()
	s, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatalf("faultinject.Parse(%q): %v", spec, err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)
}

func degradedObjects(res *Result) map[string]bool {
	m := map[string]bool{}
	for _, d := range res.Degraded {
		m[d.Object] = true
	}
	return m
}

// TestApplyFaultDegradesOneObject: a decision whose rewrite fails
// rolls back that object only; every other decision still applies,
// and the output is byte-identical to a run where the object was
// excluded from the start.
func TestApplyFaultDegradesOneObject(t *testing.T) {
	opt := Options{Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold()}

	// Control first: exclude busy1 by option, no faults.
	control := restructure(t, safemodeSrc, Options{
		Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold(),
		Exclude: []string{"busy1"},
	})
	if len(control.Degraded) != 0 {
		t.Fatalf("exclusion is not degradation; got %v", control.Degraded)
	}

	enableFaults(t, "transform.apply=busy1:error")
	res := restructure(t, safemodeSrc, opt)

	degraded := degradedObjects(res)
	if len(degraded) != 1 || !degraded["busy1"] {
		t.Fatalf("want exactly busy1 degraded, got %v\n%v", degraded, res.Degraded)
	}
	for _, d := range res.Degraded {
		if d.Stage != "apply" {
			t.Errorf("degradation stage = %q, want apply: %v", d.Stage, d)
		}
		if d.Pos == "" {
			t.Errorf("degradation lost its declaration position: %v", d)
		}
	}
	// The grouped vectors and the lock pad still went through.
	k := kinds(res)
	if k[transform.KindGroupTranspose] != 1 || k[transform.KindLockPad] != 1 {
		t.Fatalf("surviving decisions wrong: %v\n%s", k, res.Plan)
	}
	for _, d := range res.Applied {
		if d.Kind == transform.KindPadAlign && decisionNames(d)["busy1"] {
			t.Fatalf("degraded decision still applied: %v", d)
		}
	}

	// Byte-identical to the control: same source, same directives.
	if res.Transformed.Source != control.Transformed.Source {
		t.Errorf("degraded output differs from exclusion control:\n--- degraded ---\n%s\n--- control ---\n%s",
			res.Transformed.Source, control.Transformed.Source)
	}
	if res.Transformed.Dirs.String() != control.Transformed.Dirs.String() {
		t.Errorf("directives differ from exclusion control:\n%s\nvs\n%s",
			res.Transformed.Dirs, control.Transformed.Dirs)
	}
}

func decisionNames(d *transform.Decision) map[string]bool {
	m := map[string]bool{}
	for _, n := range d.Targets() {
		m[n] = true
	}
	return m
}

// TestApplyPanicContained: a panicking rewrite is contained the same
// way a failing one is — the object degrades, nothing crashes, and
// the program still computes the original answer.
func TestApplyPanicContained(t *testing.T) {
	enableFaults(t, "transform.apply=busy1:panic")
	opt := Options{Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold()}
	res := restructure(t, safemodeSrc, opt)

	degraded := degradedObjects(res)
	if !degraded["busy1"] {
		t.Fatalf("panicking decision not degraded: %v", res.Degraded)
	}
	found := false
	for _, d := range res.Degraded {
		if d.Object == "busy1" && strings.Contains(d.Stage, "panic") {
			found = true
		}
	}
	if !found {
		t.Errorf("degradation does not record the panic: %v", res.Degraded)
	}
	if got, want := checksum(t, res.Transformed, 8), checksum(t, res.Original, 8); got != want {
		t.Errorf("checksum changed %d -> %d", want, got)
	}
}

// TestLayoutFaultDegrades: a layout failure on the synthesized group
// record is attributed back to the grouping decision, which degrades;
// the original vectors reappear in the output.
func TestLayoutFaultDegrades(t *testing.T) {
	enableFaults(t, "layout=gtv1:error")
	opt := Options{Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold()}
	res := restructure(t, safemodeSrc, opt)

	degraded := degradedObjects(res)
	if !degraded["cell"] || !degraded["hits"] {
		t.Fatalf("group members not degraded: %v\n%v", degraded, res.Degraded)
	}
	for _, d := range res.Degraded {
		if d.Stage != "layout" {
			t.Errorf("degradation stage = %q, want layout: %v", d.Stage, d)
		}
	}
	out := res.Transformed.Source
	if !strings.Contains(out, "cell[pid]") || strings.Contains(out, "gtv1") {
		t.Errorf("group rollback incomplete:\n%s", out)
	}
	if got, want := checksum(t, res.Transformed, 8), checksum(t, res.Original, 8); got != want {
		t.Errorf("checksum changed %d -> %d", want, got)
	}
}

// TestCorruptCaughtByVerify is the headline safe-mode property: a
// seeded miscompile (the applier emits a wrong rewrite for the
// grouped vectors) is caught by translation validation, the object
// degrades to the identity layout, and the surviving program passes a
// final validation and computes the original answer.
func TestCorruptCaughtByVerify(t *testing.T) {
	enableFaults(t, "transform.corrupt:error")
	opt := Options{Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold(), Verify: true}
	res := restructure(t, safemodeSrc, opt)

	if len(res.Degraded) == 0 {
		t.Fatalf("seeded miscompile not degraded:\n%s", res.Plan)
	}
	degraded := degradedObjects(res)
	if !degraded["cell"] || !degraded["hits"] {
		t.Fatalf("corrupted group not the degraded object: %v", degraded)
	}
	for _, d := range res.Degraded {
		if d.Stage != "verify" {
			t.Errorf("degradation stage = %q, want verify: %v", d.Stage, d)
		}
	}
	if res.Verify == nil || !res.Verify.OK {
		t.Fatalf("final verification not OK:\n%v", res.Verify)
	}
	if got, want := checksum(t, res.Transformed, 8), checksum(t, res.Original, 8); got != want {
		t.Errorf("checksum changed %d -> %d", want, got)
	}
}

// TestVerifyCleanRunNoDegradation: with verification on and no
// faults, nothing degrades and the report covers the shared objects.
func TestVerifyCleanRunNoDegradation(t *testing.T) {
	opt := Options{Nprocs: 8, BlockSize: 64, Heuristics: heurLowThreshold(), Verify: true}
	res := restructure(t, safemodeSrc, opt)
	if len(res.Degraded) != 0 {
		t.Fatalf("clean run degraded objects: %v", res.Degraded)
	}
	if res.Verify == nil || !res.Verify.OK || len(res.Verify.Objects) == 0 {
		t.Fatalf("verification report missing or not OK:\n%v", res.Verify)
	}
}
