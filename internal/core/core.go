// Package core wires the complete restructurer pipeline — the paper's
// primary contribution, end to end:
//
//	parse -> type check -> CFG/call graph
//	     -> stage 1: PDV detection + per-process control flow
//	     -> stage 2: non-concurrency (barrier phase) analysis
//	     -> stage 3: summary side effects with regular sections
//	     -> §3.3 heuristics -> transformations -> layout directives
//
// The result packages both the original and the transformed program,
// each ready for execution on the simulation substrate.
package core

import (
	"context"
	"fmt"

	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/faultinject"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/sideeffect"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
	"falseshare/internal/obs"
	"falseshare/internal/transform"
)

// Options configures the restructurer.
type Options struct {
	// Nprocs is the process/processor count the analysis assumes and
	// the program will run with.
	Nprocs int
	// BlockSize is the coherence block size transformations target.
	BlockSize int64
	// NoProfiling disables static profiling for ablation (all
	// frequency weights become 1).
	NoProfiling bool
	// RSDLimit overrides the per-object descriptor cap (default 10).
	RSDLimit int
	// Heuristics overrides transformation heuristic settings; the
	// zero value takes the paper defaults (Nprocs and BlockSize are
	// filled in from the options above).
	Heuristics transform.Config
}

func (o Options) defaults() Options {
	if o.Nprocs <= 0 {
		o.Nprocs = 12
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 128
	}
	o.Heuristics.Nprocs = int64(o.Nprocs)
	o.Heuristics.BlockSize = o.BlockSize
	if o.NoProfiling && o.Heuristics.FreqThreshold == 0 {
		// Without static profiling there is no frequency estimate to
		// threshold on: every statically visible access pattern is a
		// candidate. This is the ablation's point — the busy-scalar
		// underestimation disappears, but so does the protection
		// against padding cold data.
		o.Heuristics.FreqThreshold = 1
	}
	return o
}

// analysisConfig builds the side-effect analysis configuration.
func (o Options) analysisConfig() sideeffect.Config {
	return sideeffect.Config{
		Nprocs:          o.Nprocs,
		StaticProfiling: !o.NoProfiling,
		UseTripCounts:   true,
		RSDLimit:        o.RSDLimit,
	}
}

// Program is a checked parc program with a concrete memory layout,
// ready for code generation and execution.
type Program struct {
	Source string
	File   *ast.File
	Info   *types.Info
	Layout *layout.Layout
	Dirs   *layout.Directives
}

// Result is the outcome of restructuring one program.
type Result struct {
	Options Options
	// Original is the program compiled without transformations.
	Original *Program
	// Transformed is the compiler-restructured program.
	Transformed *Program
	// Plan holds all decisions (including skipped ones); Applied the
	// decisions that survived verification.
	Plan    *transform.Plan
	Applied []*transform.Decision
	// Summary, PDVs, Phases expose the analysis results for reports
	// and tests.
	Summary *sideeffect.Summary
	PDVs    *pdv.Result
	Phases  *nonconc.Result
	Procs   *procs.Result
}

// Compile parses, checks and lays out a program without transforming
// it (used for unoptimized and hand-optimized versions). Directives
// may be nil.
func Compile(src string, opt Options) (*Program, error) {
	return CompileCtx(context.Background(), src, opt)
}

// CompileCtx is Compile with cooperative cancellation: the context is
// checked between pipeline stages, so a cancelled experiment run stops
// at the next stage boundary rather than finishing the compile.
func CompileCtx(ctx context.Context, src string, opt Options) (*Program, error) {
	opt = opt.defaults()
	sp := obs.Begin("compile")
	defer sp.End()

	if err := stageGate(ctx, "core.compile"); err != nil {
		return nil, err
	}
	st := obs.Begin("parse")
	file, err := parser.Parse(src)
	st.End()
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	st = obs.Begin("typecheck")
	info, err := types.Check(file)
	st.End()
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	st = obs.Begin("layout")
	lay, err := layout.Compute(info, layout.NewDirectives(opt.BlockSize), int64(opt.Nprocs))
	st.End()
	if err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	return &Program{Source: src, File: file, Info: info, Layout: lay, Dirs: lay.Dirs}, nil
}

// Restructure runs the full pipeline: it analyzes src, decides and
// applies transformations, and returns both program versions.
func Restructure(src string, opt Options) (*Result, error) {
	return RestructureCtx(context.Background(), src, opt)
}

// RestructureCtx is Restructure with cooperative cancellation checked
// between analysis stages.
func RestructureCtx(ctx context.Context, src string, opt Options) (*Result, error) {
	opt = opt.defaults()
	sp := obs.Begin("restructure")
	defer sp.End()

	if err := stageGate(ctx, "core.restructure"); err != nil {
		return nil, err
	}
	orig, err := CompileCtx(ctx, src, opt)
	if err != nil {
		return nil, err
	}

	// A second, independent tree for mutation.
	st := obs.Begin("parse")
	file, err := parser.Parse(src)
	st.End()
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	st = obs.Begin("typecheck")
	info, err := types.Check(file)
	st.End()
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}

	st = obs.Begin("cfg")
	prog := cfg.BuildProgram(file)
	st.End()

	st = obs.Begin("pdv")
	pdvs := pdv.Analyze(info, int64(opt.Nprocs))
	st.Set("pdvs", countPDVs(pdvs))
	st.End()

	st = obs.Begin("procs")
	procRes := procs.Analyze(prog, info, pdvs, opt.Nprocs)
	st.End()

	st = obs.Begin("nonconc")
	phases, err := nonconc.Analyze(prog)
	if err != nil {
		st.End()
		return nil, err
	}
	st.Set("phases", int64(phases.N))
	st.End()

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	st = obs.Begin("sideeffect")
	summary := sideeffect.Analyze(info, prog, pdvs, procRes, phases, opt.analysisConfig())
	st.Set("objects", int64(len(summary.Objects)))
	st.Set("rsd_added", summary.RSD.Added)
	st.Set("rsd_deduped", summary.RSD.Deduped)
	st.Set("rsd_merged", summary.RSD.Merged)
	st.Set("rsd_capped", summary.RSD.Capped)
	st.End()

	st = obs.Begin("decide")
	plan := transform.Decide(summary, info, opt.Heuristics)
	st.Set("decisions", int64(len(plan.Decisions)))
	st.Set("skipped", int64(len(plan.Skipped)))
	for _, d := range plan.Decisions {
		st.Count("kind:"+d.Kind.String(), 1)
	}
	st.End()

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	st = obs.Begin("apply")
	dirs, applied, err := transform.Apply(file, info, plan, opt.BlockSize, int64(opt.Nprocs))
	if err != nil {
		st.End()
		return nil, fmt.Errorf("apply: %w", err)
	}
	st.Set("applied", int64(len(applied)))
	st.End()

	// Re-check the mutated tree and lay it out with the directives.
	st = obs.Begin("recheck")
	newInfo, err := types.Check(file)
	st.End()
	if err != nil {
		return nil, fmt.Errorf("transformed program fails to check (transformation bug): %w\n%s", err, ast.Print(file))
	}
	st = obs.Begin("layout")
	lay, err := layout.Compute(newInfo, dirs, int64(opt.Nprocs))
	st.End()
	if err != nil {
		return nil, fmt.Errorf("layout of transformed program: %w", err)
	}

	return &Result{
		Options:     opt,
		Original:    orig,
		Transformed: &Program{Source: ast.Print(file), File: file, Info: newInfo, Layout: lay, Dirs: dirs},
		Plan:        plan,
		Applied:     applied,
		Summary:     summary,
		PDVs:        pdvs,
		Phases:      phases,
		Procs:       procRes,
	}, nil
}

// stageGate is the entry check of a pipeline stage: cancellation
// first, then the stage's fault-injection point.
func stageGate(ctx context.Context, point string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return faultinject.Fire(ctx, point, "")
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// countPDVs counts the symbols whose value actually differentiates
// processes (nonzero pid coefficient).
func countPDVs(r *pdv.Result) int64 {
	var n int64
	for s := range r.Values {
		if r.IsPDV(s) {
			n++
		}
	}
	return n
}
