// Package core wires the complete restructurer pipeline — the paper's
// primary contribution, end to end:
//
//	parse -> type check -> CFG/call graph
//	     -> stage 1: PDV detection + per-process control flow
//	     -> stage 2: non-concurrency (barrier phase) analysis
//	     -> stage 3: summary side effects with regular sections
//	     -> §3.3 heuristics -> transformations -> layout directives
//
// The result packages both the original and the transformed program,
// each ready for execution on the simulation substrate.
package core

import (
	"context"
	"errors"
	"fmt"

	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/sideeffect"
	"falseshare/internal/cfg"
	"falseshare/internal/faultinject"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
	"falseshare/internal/obs"
	"falseshare/internal/transform"
	"falseshare/internal/verify"
)

// Options configures the restructurer.
type Options struct {
	// Nprocs is the process/processor count the analysis assumes and
	// the program will run with.
	Nprocs int
	// BlockSize is the coherence block size transformations target.
	BlockSize int64
	// NoProfiling disables static profiling for ablation (all
	// frequency weights become 1).
	NoProfiling bool
	// RSDLimit overrides the per-object descriptor cap (default 10).
	RSDLimit int
	// Heuristics overrides transformation heuristic settings; the
	// zero value takes the paper defaults (Nprocs and BlockSize are
	// filled in from the options above).
	Heuristics transform.Config
	// Verify enables translation validation: the transformed program
	// is executed against the original on the VM and objects whose
	// final state diverges are degraded back to the identity layout.
	Verify bool
	// VerifyNprocs overrides the validation process count (default:
	// min(4, Nprocs)).
	VerifyNprocs int
	// VerifyBudget overrides the validation step budget per process.
	VerifyBudget int64
	// Exclude lists objects (shared globals, struct names, or
	// "Struct.field" keys) that must never be transformed — their
	// decisions are dropped up front. Chaos tests use it to build
	// byte-identical control runs for degradation assertions.
	Exclude []string
}

func (o Options) defaults() Options {
	if o.Nprocs <= 0 {
		o.Nprocs = 12
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 128
	}
	o.Heuristics.Nprocs = int64(o.Nprocs)
	o.Heuristics.BlockSize = o.BlockSize
	if o.NoProfiling && o.Heuristics.FreqThreshold == 0 {
		// Without static profiling there is no frequency estimate to
		// threshold on: every statically visible access pattern is a
		// candidate. This is the ablation's point — the busy-scalar
		// underestimation disappears, but so does the protection
		// against padding cold data.
		o.Heuristics.FreqThreshold = 1
	}
	return o
}

// analysisConfig builds the side-effect analysis configuration.
func (o Options) analysisConfig() sideeffect.Config {
	return sideeffect.Config{
		Nprocs:          o.Nprocs,
		StaticProfiling: !o.NoProfiling,
		UseTripCounts:   true,
		RSDLimit:        o.RSDLimit,
	}
}

// Program is a checked parc program with a concrete memory layout,
// ready for code generation and execution.
type Program struct {
	Source string
	File   *ast.File
	Info   *types.Info
	Layout *layout.Layout
	Dirs   *layout.Directives
	// Applied carries the restructuring decisions that produced this
	// program (nil for untransformed compiles). The attribution layer
	// joins per-object miss deltas against it, so the provenance
	// travels with the program even when the Result is discarded.
	Applied []*transform.Decision
}

// Result is the outcome of restructuring one program.
type Result struct {
	Options Options
	// Original is the program compiled without transformations.
	Original *Program
	// Transformed is the compiler-restructured program.
	Transformed *Program
	// Plan holds all decisions (including skipped ones); Applied the
	// decisions that survived verification.
	Plan    *transform.Plan
	Applied []*transform.Decision
	// Summary, PDVs, Phases expose the analysis results for reports
	// and tests.
	Summary *sideeffect.Summary
	PDVs    *pdv.Result
	Phases  *nonconc.Result
	Procs   *procs.Result
	// Degraded lists the objects rolled back to the identity layout
	// (safe mode): their transformation failed to apply, broke the
	// layout, or failed translation validation.
	Degraded []Degradation
	// Verify is the translation-validation report for the final
	// (possibly degraded) transformed program, when Options.Verify.
	Verify *verify.Report
}

// Compile parses, checks and lays out a program without transforming
// it (used for unoptimized and hand-optimized versions). Directives
// may be nil.
func Compile(src string, opt Options) (*Program, error) {
	return CompileCtx(context.Background(), src, opt)
}

// CompileCtx is Compile with cooperative cancellation: the context is
// checked between pipeline stages, so a cancelled experiment run stops
// at the next stage boundary rather than finishing the compile.
func CompileCtx(ctx context.Context, src string, opt Options) (*Program, error) {
	opt = opt.defaults()
	sp := obs.Begin("compile")
	defer sp.End()

	if err := stageGate(ctx, "core.compile"); err != nil {
		return nil, err
	}
	file, info, err := parseAndCheck(src)
	if err != nil {
		return nil, err
	}
	st := obs.Begin("layout")
	var lay *layout.Layout
	err = guard("layout", func() (e error) {
		lay, e = layout.Compute(info, layout.NewDirectives(opt.BlockSize), int64(opt.Nprocs))
		return e
	})
	st.End()
	if err != nil {
		return nil, fmt.Errorf("layout: %w", err)
	}
	return &Program{Source: src, File: file, Info: info, Layout: lay, Dirs: lay.Dirs}, nil
}

// parseAndCheck runs the two front-end stages under panic containment.
func parseAndCheck(src string) (*ast.File, *types.Info, error) {
	st := obs.Begin("parse")
	var file *ast.File
	err := guard("parse", func() (e error) {
		file, e = parser.Parse(src)
		return e
	})
	st.End()
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	st = obs.Begin("typecheck")
	var info *types.Info
	err = guard("typecheck", func() (e error) {
		info, e = types.Check(file)
		return e
	})
	st.End()
	if err != nil {
		return nil, nil, fmt.Errorf("check: %w", err)
	}
	return file, info, nil
}

// Restructure runs the full pipeline: it analyzes src, decides and
// applies transformations, and returns both program versions.
func Restructure(src string, opt Options) (*Result, error) {
	return RestructureCtx(context.Background(), src, opt)
}

// RestructureCtx is Restructure with cooperative cancellation checked
// between analysis stages.
func RestructureCtx(ctx context.Context, src string, opt Options) (*Result, error) {
	opt = opt.defaults()
	sp := obs.Begin("restructure")
	defer sp.End()

	if err := stageGate(ctx, "core.restructure"); err != nil {
		return nil, err
	}
	orig, err := CompileCtx(ctx, src, opt)
	if err != nil {
		return nil, err
	}

	// A second, independent tree for analysis.
	file, info, err := parseAndCheck(src)
	if err != nil {
		return nil, err
	}

	st := obs.Begin("cfg")
	var prog *cfg.CallGraph
	err = guard("cfg", func() error {
		prog = cfg.BuildProgram(file)
		return nil
	})
	st.End()
	if err != nil {
		return nil, err
	}

	st = obs.Begin("pdv")
	var pdvs *pdv.Result
	err = guard("pdv", func() error {
		pdvs = pdv.Analyze(info, int64(opt.Nprocs))
		return nil
	})
	if err == nil {
		st.Set("pdvs", countPDVs(pdvs))
	}
	st.End()
	if err != nil {
		return nil, err
	}

	st = obs.Begin("procs")
	var procRes *procs.Result
	err = guard("procs", func() error {
		procRes = procs.Analyze(prog, info, pdvs, opt.Nprocs)
		return nil
	})
	st.End()
	if err != nil {
		return nil, err
	}

	st = obs.Begin("nonconc")
	var phases *nonconc.Result
	err = guard("nonconc", func() (e error) {
		phases, e = nonconc.Analyze(prog)
		return e
	})
	if err == nil {
		st.Set("phases", int64(phases.N))
	}
	st.End()
	if err != nil {
		return nil, err
	}

	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	st = obs.Begin("sideeffect")
	var summary *sideeffect.Summary
	err = guard("sideeffect", func() error {
		summary = sideeffect.Analyze(info, prog, pdvs, procRes, phases, opt.analysisConfig())
		return nil
	})
	if err == nil {
		st.Set("objects", int64(len(summary.Objects)))
		st.Set("rsd_added", summary.RSD.Added)
		st.Set("rsd_deduped", summary.RSD.Deduped)
		st.Set("rsd_merged", summary.RSD.Merged)
		st.Set("rsd_capped", summary.RSD.Capped)
	}
	st.End()
	if err != nil {
		return nil, err
	}

	st = obs.Begin("decide")
	var plan *transform.Plan
	err = guard("decide", func() error {
		plan = transform.Decide(summary, info, opt.Heuristics)
		return nil
	})
	if err == nil {
		st.Set("decisions", int64(len(plan.Decisions)))
		st.Set("skipped", int64(len(plan.Skipped)))
		for _, d := range plan.Decisions {
			st.Count("kind:"+d.Kind.String(), 1)
		}
	}
	st.End()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Options:  opt,
		Original: orig,
		Plan:     plan,
		Summary:  summary,
		PDVs:     pdvs,
		Phases:   phases,
		Procs:    procRes,
	}
	if err := buildTransformed(ctx, src, opt, res); err != nil {
		return nil, err
	}
	sp.Set("degraded", int64(len(res.Degraded)))
	for _, d := range res.Degraded {
		sp.Count("degraded:"+d.Object, 1)
	}
	return res, nil
}

// buildTransformed runs the safe-mode apply loop: apply the plan,
// recheck, lay out, and (optionally) translation-validate. Any
// failure attributable to a decision degrades just that decision —
// the AST is rebuilt from a FRESH parse with the decision disabled
// (a mid-rewrite panic can leave the tree partially mutated) and the
// loop retries. The loop terminates because every retry disables at
// least one decision.
func buildTransformed(ctx context.Context, src string, opt Options, res *Result) error {
	plan := res.Plan
	disabled := map[*transform.Decision]bool{}
	baseSkipped := append([]string(nil), plan.Skipped...)

	// Exclusions are static skips, not degradations.
	for _, d := range plan.Decisions {
		for _, obj := range opt.Exclude {
			if decisionTouches(d, obj, res.Original.Info) {
				disabled[d] = true
				baseSkipped = append(baseSkipped, fmt.Sprintf("%s: excluded by option (-exclude %s)", d, obj))
			}
		}
	}

	degrade := func(d *transform.Decision, stage, reason string) {
		if disabled[d] {
			return // already rolled back on an earlier finding
		}
		disabled[d] = true
		res.Degraded = append(res.Degraded, degradeTargets(d, res.Original.Info, stage, reason)...)
	}

	for attempt := 0; attempt <= len(plan.Decisions); attempt++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		plan.Skipped = append([]string(nil), baseSkipped...)
		file, info, err := parseAndCheck(src)
		if err != nil {
			return err
		}

		st := obs.Begin("apply")
		var out *transform.Outcome
		err = guard("apply", func() error {
			out = transform.ApplySafe(ctx, file, info, plan, opt.BlockSize, int64(opt.Nprocs),
				func(d *transform.Decision) bool { return disabled[d] })
			return nil
		})
		if err == nil {
			st.Set("applied", int64(len(out.Applied)))
		}
		st.End()
		if err != nil {
			return err
		}
		if len(out.Failed) > 0 {
			for _, f := range out.Failed {
				stage := "apply"
				if f.Panicked {
					stage = "apply (panic)"
				}
				degrade(f.Decision, stage, f.Err.Error())
			}
			continue
		}
		applied := out.Applied

		// Re-check the mutated tree and lay it out with the directives.
		st = obs.Begin("recheck")
		var newInfo *types.Info
		err = guard("recheck", func() (e error) {
			newInfo, e = types.Check(file)
			return e
		})
		st.End()
		if err != nil {
			if len(applied) == 0 {
				return fmt.Errorf("transformed program fails to check (transformation bug): %w\n%s", err, ast.Print(file))
			}
			// Unattributable: degrade everything that was applied.
			for _, d := range applied {
				degrade(d, "recheck", err.Error())
			}
			continue
		}

		st = obs.Begin("layout")
		var lay *layout.Layout
		err = guard("layout", func() (e error) {
			lay, e = layout.Compute(newInfo, out.Dirs, int64(opt.Nprocs))
			return e
		})
		st.End()
		if err != nil {
			var ve *layout.VarError
			if errors.As(err, &ve) {
				hit := false
				for _, d := range applied {
					if decisionTouches(d, ve.Name, res.Original.Info) || decisionTouches(d, ve.Name, newInfo) {
						degrade(d, "layout", err.Error())
						hit = true
					}
				}
				if hit {
					continue
				}
			}
			return fmt.Errorf("layout of transformed program: %w", err)
		}

		trans := &Program{Source: ast.Print(file), File: file, Info: newInfo, Layout: lay, Dirs: out.Dirs, Applied: applied}

		if opt.Verify {
			st = obs.Begin("verify")
			var rep *verify.Report
			err = guard("verify", func() (e error) {
				rep, e = verify.Run(
					verify.Side{File: res.Original.File, Info: res.Original.Info, Layout: res.Original.Layout},
					verify.Side{File: trans.File, Info: trans.Info, Layout: trans.Layout},
					applied,
					verify.Options{Nprocs: opt.VerifyNprocs, StepBudget: opt.VerifyBudget},
				)
				return e
			})
			if err == nil {
				st.Set("verify_objects", int64(len(rep.Objects)))
				if rep.OK {
					st.Set("verify_ok", 1)
				}
			}
			st.End()
			if err != nil {
				return err
			}
			if !rep.Skipped && !rep.OK {
				if len(applied) == 0 {
					// No transformations, yet the programs diverge:
					// that is a validator (or VM) bug, not a layout one.
					return &InternalError{Stage: "verify", Value: "divergence with no applied decisions: " + rep.String()}
				}
				attributed := false
				for _, v := range rep.Failing() {
					for _, d := range applied {
						if decisionTouches(d, v.Object, res.Original.Info) {
							reason := v.Reason
							if v.First != nil {
								reason = v.First.String()
							}
							degrade(d, "verify", reason)
							attributed = true
						}
					}
				}
				if !attributed {
					// A whole-program failure (transformed side failed
					// to run) or an unattributable divergence: roll
					// back every applied decision.
					reason := rep.TransErr
					if reason == "" {
						reason = "unattributable divergence"
					}
					for _, d := range applied {
						degrade(d, "verify", reason)
					}
				}
				continue
			}
			res.Verify = rep
		}

		res.Transformed = trans
		res.Applied = applied
		return nil
	}
	return &InternalError{Stage: "apply", Value: "degradation loop did not converge"}
}

// stageGate is the entry check of a pipeline stage: cancellation
// first, then the stage's fault-injection point.
func stageGate(ctx context.Context, point string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return faultinject.Fire(ctx, point, "")
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// countPDVs counts the symbols whose value actually differentiates
// processes (nonzero pid coefficient).
func countPDVs(r *pdv.Result) int64 {
	var n int64
	for s := range r.Values {
		if r.IsPDV(s) {
			n++
		}
	}
	return n
}
