package core

import (
	"strings"
	"testing"

	"falseshare/internal/lang/parser"
	"falseshare/internal/transform"
)

func restructure(t *testing.T, src string, opt Options) *Result {
	t.Helper()
	res, err := Restructure(src, opt)
	if err != nil {
		t.Fatalf("Restructure: %v", err)
	}
	return res
}

func kinds(res *Result) map[transform.Kind]int {
	m := map[transform.Kind]int{}
	for _, d := range res.Applied {
		m[d.Kind]++
	}
	return m
}

func TestGroupTransposePointVectors(t *testing.T) {
	// Figure 2a: cell[pid] and hits[pid] grouped into records.
	src := `
shared int cell[16];
shared int hits[16];
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        cell[pid] = cell[pid] + 1;
        hits[pid] = hits[pid] + 2;
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	if kinds(res)[transform.KindGroupTranspose] != 1 {
		t.Fatalf("expected one group&transpose decision:\n%s", res.Plan)
	}
	out := res.Transformed.Source
	if !strings.Contains(out, "struct GTrec1") {
		t.Errorf("no grouped record in output:\n%s", out)
	}
	if !strings.Contains(out, "gtv1[pid].cell") {
		t.Errorf("subscripts not rewritten:\n%s", out)
	}
	// Old declarations must be gone.
	if strings.Contains(out, "shared int cell[16]") {
		t.Errorf("original declaration survived:\n%s", out)
	}
	// The record array must be padded to the block.
	if res.Transformed.Dirs.PadElem["gtv1"] != 64 {
		t.Errorf("record not padded: %v", res.Transformed.Dirs.PadElem)
	}
	// The transformed program parses and checks (Restructure already
	// re-checked), and its layout separates processes by >= block.
	vl := res.Transformed.Layout.Var("gtv1")
	if vl == nil || vl.Strides[0] < 64 {
		t.Fatalf("record stride: %+v", vl)
	}
}

func TestTranspose2D(t *testing.T) {
	src := `
shared double w[200][8];
void main() {
    for (int i = 0; i < 200; i = i + 1) {
        w[i][pid] = w[i][pid] + 1.0;
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 128})
	gt := res.Plan.ByKind(transform.KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != transform.ShapeTranspose {
		t.Fatalf("expected transpose:\n%s", res.Plan)
	}
	out := res.Transformed.Source
	if !strings.Contains(out, "w[pid][i]") {
		t.Errorf("subscripts not swapped:\n%s", out)
	}
	if !strings.Contains(out, "w[8][200]") {
		t.Errorf("dimensions not swapped:\n%s", out)
	}
	// Row stride must be padded to a block multiple.
	vl := res.Transformed.Layout.Var("w")
	if vl.Strides[0]%128 != 0 {
		t.Errorf("row stride %d not block-padded", vl.Strides[0])
	}
}

func TestCyclicReshape(t *testing.T) {
	src := `
shared int a[64];
void main() {
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = 0; i < 8; i = i + 1) {
            a[pid + i * nprocs] = a[pid + i * nprocs] + 1;
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	gt := res.Plan.ByKind(transform.KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != transform.ShapeCyclic {
		t.Fatalf("expected cyclic reshape:\n%s", res.Plan)
	}
	out := res.Transformed.Source
	if !strings.Contains(out, "% 8][") {
		t.Errorf("cyclic index rewrite missing:\n%s", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Errorf("transformed source does not parse: %v", err)
	}
}

func TestBlockChunkAlign(t *testing.T) {
	src := `
shared int a[96];
void main() {
    int chunk;
    int lo;
    chunk = 96 / nprocs;
    lo = pid * chunk;
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = lo; i < lo + chunk; i = i + 1) {
            a[i] = a[i] + 1;
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	gt := res.Plan.ByKind(transform.KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != transform.ShapeBlock {
		t.Fatalf("expected block align:\n%s", res.Plan)
	}
	if gt[0].Period != 12 {
		t.Errorf("chunk = %d, want 12", gt[0].Period)
	}
}

func TestIndirection(t *testing.T) {
	src := `
struct Node {
    int count;
    struct Node *next;
};
shared struct Node *heads[16];
void main() {
    struct Node *n;
    n = alloc(struct Node);
    n->next = 0;
    heads[pid] = n;
    barrier;
    for (int i = 0; i < 1000; i = i + 1) {
        struct Node *p;
        p = heads[pid];
        while (p != 0) {
            p->count = p->count + 1;
            p = p->next;
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 128})
	ind := res.Plan.ByKind(transform.KindIndirection)
	if len(ind) != 1 || ind[0].Struct != "Node" {
		t.Fatalf("expected indirection on Node:\n%s", res.Plan)
	}
	if len(ind[0].Fields) != 1 || ind[0].Fields[0] != "count" {
		t.Fatalf("fields: %v (next must not be indirected)", ind[0].Fields)
	}
	out := res.Transformed.Source
	if !strings.Contains(out, "int* count") && !strings.Contains(out, "int *count") {
		t.Errorf("field not retyped:\n%s", out)
	}
	if !strings.Contains(out, "*(p->count) = *(p->count) + 1") &&
		!strings.Contains(out, "*p->count") {
		t.Errorf("accesses not dereferenced:\n%s", out)
	}
	if !strings.Contains(out, "allocpp(int)") {
		t.Errorf("arena allocation not injected:\n%s", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Errorf("transformed source does not parse: %v\n%s", err, out)
	}
}

func TestPadAlignBusyScalar(t *testing.T) {
	src := `
shared int busy1;
shared int busy2;
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        busy1 = busy1 + 1;
        busy2 = busy2 + 1;
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	pads := res.Plan.ByKind(transform.KindPadAlign)
	if len(pads) != 2 {
		t.Fatalf("expected two pad decisions:\n%s", res.Plan)
	}
	// Padded scalars land in distinct blocks.
	l := res.Transformed.Layout
	b1, b2 := l.Var("busy1").Base, l.Var("busy2").Base
	if b1/64 == b2/64 {
		t.Errorf("padded scalars share a block: %x %x", b1, b2)
	}
	// Unoptimized layout packs them into one block.
	lo := res.Original.Layout
	if lo.Var("busy1").Base/64 != lo.Var("busy2").Base/64 {
		t.Errorf("unoptimized scalars should share a block")
	}
}

func TestLocksAlwaysPadded(t *testing.T) {
	src := `
shared int data;
lock l;
void main() {
    acquire(l);
    data = data + 1;
    release(l);
}
`
	res := restructure(t, src, Options{Nprocs: 4, BlockSize: 128})
	lp := res.Plan.ByKind(transform.KindLockPad)
	if len(lp) != 1 {
		t.Fatalf("expected lock pad:\n%s", res.Plan)
	}
	if res.Transformed.Dirs.PadElem["l"] != 128 {
		t.Errorf("lock not padded: %v", res.Transformed.Dirs.PadElem)
	}
}

func TestLockCoAllocationAblation(t *testing.T) {
	src := `
shared int data;
lock l;
void main() {
    acquire(l);
    data = data + 1;
    release(l);
}
`
	res := restructure(t, src, Options{
		Nprocs: 4, BlockSize: 128,
		Heuristics: transform.Config{CoAllocateLocks: true},
	})
	if len(res.Plan.ByKind(transform.KindLockPad)) != 0 {
		t.Fatalf("lock pad should be disabled:\n%s", res.Plan)
	}
}

func TestColdScalarBelowThresholdSkipped(t *testing.T) {
	// The Maxflow/Raytrace anecdote: a busy write-shared scalar whose
	// static weight is underestimated (deep branch nesting) is not a
	// restructuring candidate.
	src := `
shared int busy;
shared int trigger;
void main() {
    for (int i = 0; i < 100; i = i + 1) {
        if (trigger > 10) {
            if (trigger > 20) {
                if (trigger > 30) {
                    if (trigger > 40) {
                        busy = busy + 1;
                    }
                }
            }
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	for _, d := range res.Plan.ByKind(transform.KindPadAlign) {
		for _, g := range d.Globals {
			if g == "busy" {
				t.Fatalf("busy scalar should be below the profiling threshold:\n%s", res.Plan)
			}
		}
	}
	found := false
	for _, s := range res.Plan.Skipped {
		if strings.Contains(s, "global:busy") && strings.Contains(s, "below threshold") {
			found = true
		}
	}
	if !found {
		t.Errorf("busy should be skipped with a threshold reason:\n%s", res.Plan)
	}
}

func TestRevolvingPartitionNotTransformed(t *testing.T) {
	// The Topopt anecdote: a dynamically revolving partition has
	// unit-stride writes (spatial locality) and an unknown base, so
	// neither G&T nor pad applies.
	src := `
shared int part[256];
shared int cursor;
lock l;
void main() {
    int b;
    acquire(l);
    b = cursor;
    cursor = cursor + 32;
    release(l);
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = 0; i < 32; i = i + 1) {
            part[b + i] = part[b + i] + 1;
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	for _, d := range res.Applied {
		for _, obj := range d.Objects {
			if obj == "global:part" {
				t.Fatalf("part must not be transformed (%s):\n%s", d, res.Plan)
			}
		}
	}
}

func TestTransformationsDisabledAblation(t *testing.T) {
	src := `
shared int cell[16];
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        cell[pid] = cell[pid] + 1;
    }
}
`
	res := restructure(t, src, Options{
		Nprocs: 8, BlockSize: 64,
		Heuristics: transform.Config{DisableGroupTranspose: true},
	})
	if len(res.Applied) != 0 {
		t.Fatalf("nothing should be applied:\n%s", res.Plan)
	}
}

func TestForallEndToEnd(t *testing.T) {
	// The HPF-style forall lowers to a cyclic distribution, which the
	// analysis recognizes as an implicitly partitioned array and
	// regroups per process.
	src := `
shared int a[96];
void main() {
    for (int r = 0; r < 50; r = r + 1) {
        forall (int i = 0; i < 96) {
            a[i] = a[i] + r;
        }
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	gt := res.Plan.ByKind(transform.KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != transform.ShapeCyclic {
		t.Fatalf("forall should yield a cyclic reshape:\n%s", res.Plan)
	}
	if gt[0].Period != 8 {
		t.Errorf("period = %d, want nprocs", gt[0].Period)
	}
}

func TestRSDLimitDegradation(t *testing.T) {
	// Several distinct per-process access patterns to one array: with
	// a healthy descriptor budget each stays precise and the array is
	// transformed; with a budget of 1 the lossy merges destroy the
	// disjointness proof and the transformation is (conservatively)
	// dropped.
	src := `
shared int a[192];
void main() {
    for (int r = 0; r < 200; r = r + 1) {
        a[pid] = a[pid] + 1;
        a[pid + 64] = a[pid + 64] + 1;
        a[pid + 128] = a[pid + 128] + 1;
    }
}
`
	healthy := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	if len(healthy.Plan.ByKind(transform.KindGroupTranspose)) == 0 {
		t.Fatalf("healthy budget should transform:\n%s\n%s", healthy.Plan, healthy.Summary)
	}
	starved := restructure(t, src, Options{Nprocs: 8, BlockSize: 64, RSDLimit: 1})
	for _, d := range starved.Applied {
		if d.Kind == transform.KindGroupTranspose {
			t.Fatalf("starved budget should lose the disjointness proof:\n%s", starved.Plan)
		}
	}
}

func TestInitPhaseDoesNotMaskComputePattern(t *testing.T) {
	// Phase 0: process 0 initializes the whole array (shared-looking).
	// Phase 1 (dominant): per-process writes. Non-concurrency analysis
	// must classify by the dominant phase.
	src := `
shared int cell[16];
void main() {
    if (pid == 0) {
        for (int i = 0; i < 16; i = i + 1) {
            cell[i] = 0;
        }
    }
    barrier;
    for (int r = 0; r < 1000; r = r + 1) {
        cell[pid] = cell[pid] + 1;
    }
}
`
	res := restructure(t, src, Options{Nprocs: 8, BlockSize: 64})
	gt := res.Plan.ByKind(transform.KindGroupTranspose)
	if len(gt) != 1 {
		t.Fatalf("expected group&transpose despite init phase:\n%s\nsummary:\n%s", res.Plan, res.Summary)
	}
}
