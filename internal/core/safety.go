package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/types"
	"falseshare/internal/transform"
)

// InternalError is a contained pipeline panic: every stage of the
// compile and restructure pipelines runs under recover, so a bug in
// an analysis or rewrite surfaces as a typed, attributable error —
// with the stage name and stack — instead of killing the process (and
// with it a whole experiment sweep).
type InternalError struct {
	Stage string // pipeline stage that panicked (parse, typecheck, ...)
	Value string // the panic value, rendered
	Stack []byte // goroutine stack at the panic site
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("core: internal error in %s: %s", e.Stage, e.Value)
}

// ErrorStage names the pipeline stage a compile or restructure error
// came from: the contained-panic stage for an *InternalError, or the
// stage prefix ("parse", "check", "layout") the pipeline wraps its
// stage errors with. Returns "" when the error carries no stage —
// callers (the fsd daemon's typed JSON errors, reports) should fall
// back to a generic label.
func ErrorStage(err error) string {
	if err == nil {
		return ""
	}
	var ie *InternalError
	if errors.As(err, &ie) {
		return ie.Stage
	}
	msg := err.Error()
	for _, stage := range []string{"parse", "check", "layout"} {
		if strings.HasPrefix(msg, stage+": ") {
			return stage
		}
	}
	return ""
}

// guard runs one pipeline stage under panic containment.
func guard(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Stage: stage, Value: fmt.Sprint(r), Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Degradation records one object whose transformation was rolled back
// to the identity layout: the decision covering it failed to apply,
// tripped a fault point, broke the layout, or failed translation
// validation. The rest of the program keeps its transformations.
type Degradation struct {
	// Object names the degraded object (a shared global, or
	// "Struct.field" for indirection targets).
	Object string
	// Pos is the object's declaration position in the original
	// program ("line:col"), when resolvable.
	Pos string
	// Stage names where the failure surfaced: apply, recheck, layout,
	// or verify.
	Stage string
	// Reason is the underlying diagnostic.
	Reason string
	// Decision renders the rolled-back decision.
	Decision string
}

func (d Degradation) String() string {
	pos := ""
	if d.Pos != "" {
		pos = " (decl " + d.Pos + ")"
	}
	return fmt.Sprintf("%s%s: %s: %s", d.Object, pos, d.Stage, d.Reason)
}

// decisionTouches reports whether a decision transforms the named
// original-program object. info (the original program's) resolves
// indirection decisions, which target heap structs reached through
// pointer globals rather than the globals themselves.
func decisionTouches(d *transform.Decision, obj string, info *types.Info) bool {
	for _, n := range d.Arrays {
		if n == obj {
			return true
		}
	}
	for _, n := range d.Globals {
		if n == obj {
			return true
		}
	}
	for _, n := range d.HeapVia {
		if n == obj {
			return true
		}
	}
	// The synthesized group record (gtvN) exists only in the
	// transformed program; layout failures name it directly.
	if d.GroupVar != "" && d.GroupVar == obj {
		return true
	}
	if d.Struct != "" {
		if d.Struct == obj {
			return true
		}
		for _, f := range d.Fields {
			if d.Struct+"."+f == obj {
				return true
			}
		}
		// A pointer global whose pointee struct is indirected.
		if info != nil {
			if sym := info.Globals[obj]; sym != nil && sym.Type.Kind == types.Pointer {
				if e := sym.Type.Elem; e != nil && e.Kind == types.StructK && e.Struct.Name == d.Struct {
					return true
				}
			}
		}
	}
	return false
}

// declPos resolves an object's declaration position in the original
// program for Degradation diagnostics.
func declPos(info *types.Info, obj string) string {
	if info == nil {
		return ""
	}
	if sym := info.Globals[obj]; sym != nil {
		if vd, ok := sym.Decl.(*ast.VarDecl); ok {
			return vd.P.String()
		}
	}
	// "Struct.field" or a bare struct name.
	name := obj
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			name = name[:i]
			break
		}
	}
	if si := info.Structs[name]; si != nil && si.Decl != nil {
		return si.Decl.P.String()
	}
	return ""
}

// degradeTargets builds the Degradation records for one failed
// decision, one per touched object, tagged with declaration
// positions from the original program.
func degradeTargets(d *transform.Decision, info *types.Info, stage, reason string) []Degradation {
	var out []Degradation
	for _, obj := range d.Targets() {
		if d.GroupVar != "" && obj == d.GroupVar {
			continue // synthesized name, not an original object
		}
		out = append(out, Degradation{
			Object:   obj,
			Pos:      declPos(info, obj),
			Stage:    stage,
			Reason:   reason,
			Decision: d.String(),
		})
	}
	if len(out) == 0 {
		out = append(out, Degradation{Object: d.Kind.String(), Stage: stage, Reason: reason, Decision: d.String()})
	}
	return out
}
