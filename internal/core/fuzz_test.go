package core

import (
	"errors"
	"math/rand"
	"testing"

	"falseshare/internal/workload"
)

// FuzzCompile feeds mutated programs to the full restructuring
// pipeline. Panic containment turns stage panics into *InternalError
// — which this fuzz target treats as a crash, not a pass: containment
// exists to keep experiment sweeps alive, not to hide compiler bugs.
func FuzzCompile(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(genProgram(rand.New(rand.NewSource(seed))))
	}
	for _, b := range workload.All() {
		f.Add(b.Source(1))
	}
	f.Add(safemodeSrc)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Restructure(src, Options{Nprocs: 4, BlockSize: 64})
		if err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("pipeline stage %s panicked: %s\n%s\nsource:\n%s", ie.Stage, ie.Value, ie.Stack, src)
			}
			return // rejected input: fine
		}
		// Accepted input: the transformed program must itself survive
		// a compile (it is what experiments will run).
		if _, err := Compile(res.Transformed.Source, Options{Nprocs: 4, BlockSize: 64}); err != nil {
			var ie *InternalError
			if errors.As(err, &ie) {
				t.Fatalf("recompile panicked in %s: %s\nsource:\n%s", ie.Stage, ie.Value, res.Transformed.Source)
			}
			t.Fatalf("transformed program does not recompile: %v\noriginal:\n%s\ntransformed:\n%s",
				err, src, res.Transformed.Source)
		}
	})
}
