package core

import (
	"strings"
	"testing"
)

func TestCompileErrorPropagation(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"syntax", `void main( {`, "parse"},
		{"semantic", `void main() { x = 1; }`, "check"},
		{"no main", `shared int a;`, "check"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{Nprocs: 4})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile err = %v, want containing %q", err, tc.want)
			}
			_, err = Restructure(tc.src, Options{Nprocs: 4})
			if err == nil {
				t.Fatalf("Restructure should fail too")
			}
		})
	}
}

func TestBarrierOutsideMainFailsRestructure(t *testing.T) {
	src := `
void sync() { barrier; }
void main() { sync(); }
`
	// Compile (no analysis) accepts it; Restructure must reject it at
	// the non-concurrency stage.
	if _, err := Compile(src, Options{Nprocs: 4}); err != nil {
		t.Fatalf("plain compile should pass: %v", err)
	}
	_, err := Restructure(src, Options{Nprocs: 4})
	if err == nil || !strings.Contains(err.Error(), "only in main") {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := Options{}.defaults()
	if o.Nprocs != 12 || o.BlockSize != 128 {
		t.Errorf("defaults: %+v", o)
	}
	if o.Heuristics.Nprocs != 12 || o.Heuristics.BlockSize != 128 {
		t.Errorf("heuristics defaults: %+v", o.Heuristics)
	}
	a := o.analysisConfig()
	if !a.StaticProfiling || !a.UseTripCounts {
		t.Errorf("analysis defaults: %+v", a)
	}
	noProf := Options{NoProfiling: true}.defaults()
	if noProf.Heuristics.FreqThreshold != 1 {
		t.Errorf("no-profiling threshold: %+v", noProf.Heuristics)
	}
}

func TestRestructureExposesAnalyses(t *testing.T) {
	src := `
shared int a[32];
private int myid;
void main() {
    myid = pid;
    for (int r = 0; r < 100; r = r + 1) {
        a[myid] = a[myid] + 1;
    }
    barrier;
    a[0] = 0;
}
`
	res := restructure(t, src, Options{Nprocs: 4, BlockSize: 64})
	if res.PDVs == nil || !strings.Contains(res.PDVs.String(), "myid") {
		t.Errorf("PDV results missing")
	}
	if res.Phases == nil || res.Phases.N != 2 {
		t.Errorf("phase results missing: %+v", res.Phases)
	}
	if res.Procs == nil || res.Procs.Nprocs != 4 {
		t.Errorf("proc results missing")
	}
	if res.Summary == nil || res.Summary.Object("global:a") == nil {
		t.Errorf("summary missing")
	}
	if res.Original.Source == "" || res.Transformed.Source == "" {
		t.Errorf("sources missing")
	}
}
