package core

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorStage(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&InternalError{Stage: "restructure", Value: "boom"}, "restructure"},
		{fmt.Errorf("wrapped: %w", &InternalError{Stage: "apply", Value: "x"}), "apply"},
		{fmt.Errorf("parse: %w", errors.New("3:1: unexpected token")), "parse"},
		{fmt.Errorf("check: %w", errors.New("undefined: x")), "check"},
		{fmt.Errorf("layout: %w", errors.New("bad align")), "layout"},
		{errors.New("something else entirely"), ""},
	}
	for _, c := range cases {
		if got := ErrorStage(c.err); got != c.want {
			t.Errorf("ErrorStage(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestErrorStageFromPipeline pins the integration: a source that
// fails to parse reports stage "parse" through the real pipeline.
func TestErrorStageFromPipeline(t *testing.T) {
	_, err := Compile("shared int x[", Options{Nprocs: 2, BlockSize: 32})
	if err == nil {
		t.Fatal("malformed source compiled")
	}
	if got := ErrorStage(err); got != "parse" {
		t.Errorf("ErrorStage = %q (err=%v), want parse", got, err)
	}
}
