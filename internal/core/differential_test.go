package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"falseshare/internal/transform"
	"falseshare/internal/vm"
)

// genProgram builds a random but well-formed SPMD program from the
// idiom pool the transformations target, ending with a checksum phase
// so runs are comparable.
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	n := 64 // array extent (>= any nprocs used here)

	arrays := 2 + r.Intn(3)
	for i := 0; i < arrays; i++ {
		fmt.Fprintf(&b, "shared int a%d[%d];\n", i, n)
	}
	b.WriteString("shared int result;\nshared int counter;\nlock l;\n")
	b.WriteString("void main() {\n")

	phases := 1 + r.Intn(3)
	for ph := 0; ph < phases; ph++ {
		arr := fmt.Sprintf("a%d", r.Intn(arrays))
		rounds := 5 + r.Intn(20)
		switch r.Intn(5) {
		case 0: // point per-process updates
			fmt.Fprintf(&b, `
    for (int r%d = 0; r%d < %d; r%d = r%d + 1) {
        %s[pid] = %s[pid] + r%d;
    }
`, ph, ph, rounds, ph, ph, arr, arr, ph)
		case 1: // cyclic partition
			fmt.Fprintf(&b, `
    for (int i%d = pid; i%d < %d; i%d = i%d + nprocs) {
        %s[i%d] = %s[i%d] + 1;
    }
`, ph, ph, n, ph, ph, arr, ph, arr, ph)
		case 2: // block partition
			fmt.Fprintf(&b, `
    {
        int chunk%d;
        int lo%d;
        chunk%d = %d / nprocs;
        lo%d = pid * chunk%d;
        for (int i%d = lo%d; i%d < lo%d + chunk%d; i%d = i%d + 1) {
            %s[i%d] = %s[i%d] + 2;
        }
    }
`, ph, ph, ph, n, ph, ph, ph, ph, ph, ph, ph, ph, ph, arr, ph, arr, ph)
		case 3: // lock-protected counter
			fmt.Fprintf(&b, `
    for (int r%d = 0; r%d < %d; r%d = r%d + 1) {
        acquire(l);
        counter = counter + 1;
        release(l);
    }
`, ph, ph, rounds, ph, ph)
		case 4: // divergent roles
			fmt.Fprintf(&b, `
    if (pid == 0) {
        for (int i%d = 0; i%d < %d; i%d = i%d + 1) {
            %s[i%d] = %s[i%d] + 3;
        }
    }
`, ph, ph, n, ph, ph, arr, ph, arr, ph)
		}
		b.WriteString("    barrier;\n")
	}

	// Checksum phase.
	b.WriteString("    if (pid == 0) {\n        result = counter;\n")
	for i := 0; i < arrays; i++ {
		fmt.Fprintf(&b, `
        for (int k%d = 0; k%d < %d; k%d = k%d + 1) {
            result = result + a%d[k%d] * (k%d + 1);
        }
`, i, i, n, i, i, i, i, i)
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

// checksum runs a program and reads the result global.
func checksum(t *testing.T, prog *Program, nprocs int) int64 {
	t.Helper()
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	m := vm.New(bc)
	if err := m.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.ReadInt(prog.Layout.Var("result").Base)
}

// TestDifferentialRandomPrograms is the compiler's broadest
// correctness property: for randomly generated programs, the
// restructured version computes the same result as the original.
func TestDifferentialRandomPrograms(t *testing.T) {
	const cases = 60
	for seed := 0; seed < cases; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(r)
		nprocs := []int{2, 5, 8}[seed%3]
		res, err := Restructure(src, Options{
			Nprocs: nprocs, BlockSize: 64,
			// Low threshold so transformations actually fire on these
			// small programs.
			Heuristics: heurLowThreshold(),
		})
		if err != nil {
			t.Fatalf("seed %d: restructure: %v\n%s", seed, err, src)
		}
		want := checksum(t, res.Original, nprocs)
		got := checksum(t, res.Transformed, nprocs)
		if want != got {
			t.Errorf("seed %d: checksum changed %d -> %d\ndecisions:\n%s\nsource:\n%s\ntransformed:\n%s",
				seed, want, got, res.Plan, src, res.Transformed.Source)
		}
	}
}

// heurLowThreshold builds a heuristics config with a permissive
// frequency threshold.
func heurLowThreshold() transform.Config {
	return transform.Config{FreqThreshold: 2}
}
