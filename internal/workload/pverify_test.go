package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/transform"
)

func TestPverify(t *testing.T) {
	b := Get("pverify")
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindIndirection] {
		t.Fatalf("pverify wants indirection:\n%s", res.Plan)
	}
	if !ak[transform.KindGroupTranspose] {
		t.Errorf("pverify wants group&transpose on done/steps:\n%s", res.Plan)
	}
	if !ak[transform.KindLockPad] {
		t.Errorf("pverify wants lock padding:\n%s", res.Plan)
	}

	red := fsReduction(sn, sc)
	t.Logf("pverify: FS %d -> %d (%.1f%% reduction), miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red, 100*sn.MissRate(), 100*sc.MissRate())
	// Paper: 91.2% total reduction, indirection-dominated.
	if red < 0.75 {
		t.Errorf("pverify FS reduction %.1f%%, want >= 75%% (paper: 91.2%%)", 100*red)
	}

	// The programmer version must land between N and C on false
	// sharing (padding helps but misses the real fixes).
	const nprocs, block = 12, 128
	pprog, err := core.Compile(b.ProgrammerSource(1), core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		t.Fatalf("P compile: %v", err)
	}
	sp := measure(t, pprog, nprocs, block)
	t.Logf("pverify P: FS %d, miss rate %.3f%%", sp.FalseShare, 100*sp.MissRate())
	if sp.FalseShare >= sn.FalseShare {
		t.Errorf("P version should reduce FS vs N: %d vs %d", sp.FalseShare, sn.FalseShare)
	}
	if sp.FalseShare <= sc.FalseShare {
		t.Errorf("compiler should beat programmer on FS: C=%d P=%d", sc.FalseShare, sp.FalseShare)
	}
}
