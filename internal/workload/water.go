package workload

// Water reproduces the sharing structure of the SPLASH N-body
// molecular dynamics code (Table 1: 1451 lines, versions C and P
// only). Table 3 shows one of the paper's largest compiler-vs-
// programmer gaps: C=9.9 at 40 processors against P=4.6 at 12.
//
//   - kin[] and pot[] are pid-indexed partial-sum vectors updated in
//     the force inner loop; the original leaves them packed (they
//     false-share pervasively), and the compiler groups them.
//   - forces[] is partitioned into contiguous unaligned per-process
//     chunks; the compiler block-aligns the chunks.
//   - virial_lock is co-allocated with the global virial sum; the
//     compiler pads it.
//   - Neighbour interactions read across chunk boundaries: bounded
//     true sharing that correctly survives restructuring.
func init() {
	MustRegister(&Benchmark{
		Name:        "water",
		Description: "N-body molecular dynamics",
		PaperLines:  1451,
		HasN:        false,
		HasP:        true,
		FigureRef:   "Table 3",
		Source:      waterSource,
	})
}

const waterMolecules = 1920

func waterSource(scale int) string {
	steps := scaled(10, scale)
	return sprintf(`
// water (P/original): packed partial-sum vectors, unaligned chunks,
// co-allocated virial lock.
shared double forces[%[1]d];
shared double kin[64];
shared double pot[64];
shared double virial;
lock virial_lock;

void main() {
    int chunk;
    int lo;
    chunk = %[1]d / nprocs;
    lo = pid * chunk;
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            forces[i] = i %% 13 + 1;
        }
    }
    barrier;
    for (int s = 0; s < %[2]d; s = s + 1) {
        for (int i = lo; i < lo + chunk; i = i + 1) {
            // Interact with the next two molecules (may cross the
            // chunk boundary: true sharing at the seams).
            double f;
            f = forces[i] * 0.5;
            if (i + 2 < %[1]d) {
                f = f + forces[i + 1] * 0.25 + forces[i + 2] * 0.125;
            }
            forces[i] = forces[i] + f * 0.0625;
            kin[pid] = kin[pid] + f * f;
            pot[pid] = pot[pid] + f;
        }
        acquire(virial_lock);
        virial = virial + kin[pid] * 0.001;
        release(virial_lock);
        barrier;
    }
}
`, waterMolecules, steps)
}
