package gen

import (
	"strings"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/lang/parser"
)

// TestGenerateDeterministic pins the generator's core contract: equal
// Params produce byte-identical source, and the seed actually
// differentiates programs with identical knobs.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Corpus(16, 1) {
		a, b := Generate(p), Generate(p)
		if a != b {
			t.Fatalf("Generate(%+v) not deterministic:\n%s\n----\n%s", p, a, b)
		}
		q := p
		q.Seed = p.Seed + 1
		if Generate(q) == a {
			t.Errorf("Generate ignored the seed for %+v", p)
		}
	}
}

// TestCorpusDeterministic: one seed, one population.
func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(24, 7), Corpus(24, 7)
	if len(a) != 24 {
		t.Fatalf("Corpus returned %d params, want 24", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Corpus not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Any prefix of length >= patternCount mixes all patterns.
	seen := map[Pattern]bool{}
	for _, p := range a[:int(patternCount)] {
		seen[p.Pattern] = true
	}
	if len(seen) != int(patternCount) {
		t.Errorf("corpus prefix covers %d patterns, want %d", len(seen), patternCount)
	}
}

// TestGeneratedProgramsCompileAndVerify runs every pattern (at knob
// extremes and a seeded middle) through the full pipeline: parse,
// restructure, translation-validate. A generated program that fails
// any stage — or degrades any object in safe mode — is a generator
// bug by definition.
func TestGeneratedProgramsCompileAndVerify(t *testing.T) {
	var cases []Params
	for _, pat := range Patterns() {
		cases = append(cases,
			Params{Seed: 11, Pattern: pat, Elems: 64, Rounds: 2, StrideElems: 1},
			Params{Seed: 12, Pattern: pat, Elems: 256, Rounds: 8, StrideElems: 16, LockPct: 100, FalseSharePct: 100},
			Params{Seed: 13, Pattern: pat, Elems: 128, Rounds: 4, StrideElems: 3, LockPct: 33, FalseSharePct: 50},
		)
	}
	for _, p := range cases {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			src := Generate(p)
			if _, err := parser.Parse(src); err != nil {
				t.Fatalf("parse: %v\n%s", err, src)
			}
			res, err := core.Restructure(src, core.Options{Nprocs: 4, BlockSize: 64, Verify: true})
			if err != nil {
				t.Fatalf("restructure: %v\n%s", err, src)
			}
			if len(res.Degraded) != 0 {
				t.Fatalf("safe mode degraded %d objects: %+v\n%s", len(res.Degraded), res.Degraded, src)
			}
			if res.Verify != nil && !res.Verify.OK {
				t.Fatalf("verification failed: %+v\n%s", res.Verify, src)
			}
		})
	}
}

// TestGeneratedKnobsShapeSource spot-checks that the knobs actually
// steer the program text.
func TestGeneratedKnobsShapeSource(t *testing.T) {
	base := Params{Seed: 5, Pattern: Stride, Elems: 128, Rounds: 8, StrideElems: 4}
	src := Generate(base)
	if strings.Contains(src, "fscnt") || strings.Contains(src, "glock") {
		t.Errorf("zero-rate knobs still emitted their constructs:\n%s", src)
	}
	withFS := base
	withFS.FalseSharePct = 50
	if !strings.Contains(Generate(withFS), "fscnt[pid]") {
		t.Error("FalseSharePct did not inject the pid-indexed counter")
	}
	withLock := base
	withLock.LockPct = 50
	s := Generate(withLock)
	if !strings.Contains(s, "acquire(glock)") || !strings.Contains(s, "release(glock)") {
		t.Error("LockPct did not inject the lock round")
	}
	if Generate(base) == Generate(withFS) {
		t.Error("FalseSharePct changed nothing")
	}
}

// TestBenchmarkWrapper checks the workload.Benchmark adapter: named
// by the params, N version present, source scaled through Rounds.
func TestBenchmarkWrapper(t *testing.T) {
	p := Params{Seed: 3, Pattern: Chunked, Elems: 128, Rounds: 4}
	b := Benchmark(p)
	if b.Name != p.Name() {
		t.Errorf("Benchmark name %q != params name %q", b.Name, p.Name())
	}
	if !b.HasN {
		t.Error("generated benchmarks must expose an N version")
	}
	if b.Source(1) != Generate(p) {
		t.Error("scale 1 source differs from Generate")
	}
	if b.Source(4) == b.Source(1) {
		t.Error("scale did not change the generated source")
	}
}

// TestClamped covers the sanitizer on hostile values (the fuzz
// target's first line of defense).
func TestClamped(t *testing.T) {
	c := Params{Seed: -9, Pattern: Pattern(-7), Elems: 1 << 30, Rounds: -3, StrideElems: 999, LockPct: -5, FalseSharePct: 400}.Clamped()
	if c.Pattern < 0 || c.Pattern >= patternCount {
		t.Errorf("Pattern not folded: %v", c.Pattern)
	}
	if c.Elems < 64 || c.Elems > 4096 || c.Elems%64 != 0 {
		t.Errorf("Elems not clamped: %d", c.Elems)
	}
	if c.Rounds < 2 || c.Rounds > 64 {
		t.Errorf("Rounds not clamped: %d", c.Rounds)
	}
	if c.StrideElems < 1 || c.StrideElems > 16 {
		t.Errorf("StrideElems not clamped: %d", c.StrideElems)
	}
	if c.LockPct < 0 || c.LockPct > 100 || c.FalseSharePct < 0 || c.FalseSharePct > 100 {
		t.Errorf("percents not clamped: %d %d", c.LockPct, c.FalseSharePct)
	}
}
