package gen

import (
	"errors"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/lang/parser"
)

// FuzzWorkloadGen drives the generator with arbitrary knob values.
// Whatever the fuzzer supplies, Clamped must fold it into a valid
// parameter set whose program parses, restructures, and
// translation-validates — a generated program rejected by any
// pipeline stage, a contained stage panic (*core.InternalError), or a
// safe-mode degradation is a generator bug. The determinism contract
// (same Params → byte-identical source) is asserted on every input,
// since the matrix harness relies on it for journal resume.
//
// The seed corpus under testdata/fuzz/FuzzWorkloadGen covers every
// pattern at its knob extremes; go test runs it on every invocation.
func FuzzWorkloadGen(f *testing.F) {
	for _, p := range Corpus(8, 42) {
		f.Add(p.Seed, int(p.Pattern), p.Elems, p.Rounds, p.StrideElems, p.LockPct, p.FalseSharePct)
	}
	f.Fuzz(func(t *testing.T, seed int64, pattern, elems, rounds, stride, lockPct, fsPct int) {
		p := Params{
			Seed:          seed,
			Pattern:       Pattern(pattern),
			Elems:         elems,
			Rounds:        rounds,
			StrideElems:   stride,
			LockPct:       lockPct,
			FalseSharePct: fsPct,
		}
		src := Generate(p)
		if again := Generate(p); again != src {
			t.Fatalf("Generate(%+v) not deterministic", p)
		}
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		res, err := core.Restructure(src, core.Options{Nprocs: 3, BlockSize: 64, Verify: true, VerifyBudget: 20_000_000})
		if err != nil {
			var ie *core.InternalError
			if errors.As(err, &ie) {
				t.Fatalf("pipeline stage %s panicked: %s\n%s\nsource:\n%s", ie.Stage, ie.Value, ie.Stack, src)
			}
			t.Fatalf("generated program does not restructure: %v\n%s", err, src)
		}
		if len(res.Degraded) != 0 {
			t.Fatalf("safe mode degraded %d objects on a generated program: %+v\n%s",
				len(res.Degraded), res.Degraded, src)
		}
		if res.Verify != nil && !res.Verify.OK {
			t.Fatalf("translation validation failed: %s\n%s", res.Verify, src)
		}
	})
}
