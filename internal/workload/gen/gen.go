// Package gen is a seeded, deterministic parc workload generator: the
// population behind fsexp -matrix. The ten hand-built kernels pin the
// paper's Table 1 programs; gen produces arbitrarily many small
// programs with controlled sharing structure — the knobs are the
// sharing patterns those kernels exhibit (strided array sweeps,
// migratory ownership, producer/consumer broadcast, lock-protected
// reductions) plus a false-sharing injection rate — so the
// transformation heuristics and the protocol/topology matrix can be
// judged on a program population instead of a fixed suite.
//
// Determinism is the contract: Generate is a pure function of Params
// (same Params → byte-identical source, locked down by
// FuzzWorkloadGen), and Corpus enumerates a reproducible population
// from a single seed.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"falseshare/internal/workload"
)

// Pattern selects the dominant sharing structure of a generated
// program.
type Pattern int

const (
	// Stride: every process sweeps a shared array with a configurable
	// element stride, so block-level interleaving (and with it true
	// and false sharing) is a function of Params.Stride — the
	// generated analogue of the paper's badly-laid-out vectors.
	Stride Pattern = iota
	// Chunked: every process owns a contiguous chunk of the shared
	// array — the layout the transformations try to produce. Sharing
	// only happens on chunk-boundary blocks.
	Chunked
	// Migratory: phases of whole-array ownership passed around the
	// processes barrier-to-barrier (the MESI-friendly pattern).
	Migratory
	// ProdCons: process 0 rewrites the array each round, everyone
	// else reads it back (the write-update-friendly pattern).
	ProdCons

	patternCount
)

func (p Pattern) String() string {
	switch p {
	case Stride:
		return "stride"
	case Chunked:
		return "chunked"
	case Migratory:
		return "migratory"
	case ProdCons:
		return "prodcons"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Patterns returns every generator pattern, in enum order.
func Patterns() []Pattern {
	return []Pattern{Stride, Chunked, Migratory, ProdCons}
}

// ParsePattern maps a CLI spelling to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range Patterns() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown pattern %q (want stride, chunked, migratory or prodcons)", s)
}

// Params parameterizes one generated program. The zero value is
// valid: Clamped fills every knob with its floor.
type Params struct {
	// Seed varies the arithmetic constants of the program body, so
	// distinct seeds with identical knobs still produce distinct
	// (but structurally identical) programs.
	Seed int64
	// Pattern is the dominant sharing structure.
	Pattern Pattern
	// Elems is the shared array length, clamped to [64, 4096] and
	// rounded to a multiple of 64 so per-process chunks divide evenly
	// at any nprocs up to 64.
	Elems int
	// Rounds is the outer iteration count, clamped to [2, 64].
	Rounds int
	// StrideElems is the element stride of the Stride pattern,
	// clamped to [1, 16] (ignored by the other patterns).
	StrideElems int
	// LockPct is the percentage of rounds that take the global lock
	// and update its (deliberately co-allocated) counter, clamped to
	// [0, 100]. 0 omits the lock entirely.
	LockPct int
	// FalseSharePct is the percentage of rounds injecting an update
	// to a pid-indexed, unpadded counter array — the canonical
	// false-sharing pathology the transformations exist to fix —
	// clamped to [0, 100]. 0 omits the array.
	FalseSharePct int
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamped returns the parameters with every knob forced into its
// documented range; Generate applies it internally, so out-of-range
// values (fuzz inputs included) are never an error.
func (p Params) Clamped() Params {
	if p.Pattern < 0 || p.Pattern >= patternCount {
		p.Pattern = Pattern(((int(p.Pattern) % int(patternCount)) + int(patternCount)) % int(patternCount))
	}
	p.Elems = clampInt(p.Elems, 64, 4096)
	p.Elems -= p.Elems % 64
	p.Rounds = clampInt(p.Rounds, 2, 64)
	p.StrideElems = clampInt(p.StrideElems, 1, 16)
	p.LockPct = clampInt(p.LockPct, 0, 100)
	p.FalseSharePct = clampInt(p.FalseSharePct, 0, 100)
	return p
}

// Name returns a stable identifier encoding every knob — the matrix
// cell key and manifest name for the generated program.
func (p Params) Name() string {
	p = p.Clamped()
	return fmt.Sprintf("%s-e%d-r%d-s%d-l%d-f%d-x%04x",
		p.Pattern, p.Elems, p.Rounds, p.StrideElems, p.LockPct, p.FalseSharePct, p.Seed&0xffff)
}

// pctEvery converts a percentage of rounds into an "every k rounds"
// period (the generated programs gate side work on r %% k == 0).
func pctEvery(pct int) int {
	if pct <= 0 {
		return 0
	}
	if pct >= 100 {
		return 1
	}
	return 100 / pct
}

// Generate renders the parc source for p. It is a pure function:
// byte-identical output for equal Params.
func Generate(p Params) string {
	p = p.Clamped()
	rng := rand.New(rand.NewSource(p.Seed))
	addA := 1 + rng.Intn(7)
	addB := 1 + rng.Intn(7)
	mulInit := 1 + rng.Intn(5)
	modInit := 7 + rng.Intn(9)

	var b strings.Builder
	fmt.Fprintf(&b, "// gen: %s (seed %d)\n", p.Name(), p.Seed)
	fmt.Fprintf(&b, "shared int data[%d];\n", p.Elems)
	b.WriteString("shared int out[64];\n")
	if p.FalseSharePct > 0 {
		// The injected pathology: one int per process, unpadded, so up
		// to block/4 processes ping-pong each block.
		b.WriteString("shared int fscnt[64];\n")
	}
	if p.LockPct > 0 {
		// Lock and counter deliberately co-allocated (the paper's lock
		// padding target).
		b.WriteString("shared int locked_total;\nlock glock;\n")
	}
	b.WriteString("\nvoid main() {\n")

	// Initialization: process 0 seeds the array, everyone waits.
	fmt.Fprintf(&b, `    if (pid == 0) {
        for (int i = 0; i < %d; i = i + 1) {
            data[i] = (i * %d) %% %d;
        }
    }
    barrier;
`, p.Elems, mulInit, modInit)

	b.WriteString("    int acc;\n    acc = 0;\n")
	fmt.Fprintf(&b, "    for (int r = 0; r < %d; r = r + 1) {\n", p.Rounds)

	switch p.Pattern {
	case Stride:
		// Interleaved sweep: process k touches elements k, k+stride*nprocs, ...
		fmt.Fprintf(&b, `        for (int i = pid * %[1]d; i < %[2]d; i = i + %[1]d * nprocs) {
            data[i] = data[i] + %[3]d;
            acc = acc + data[i];
        }
`, p.StrideElems, p.Elems, addA)
	case Chunked:
		fmt.Fprintf(&b, `        int lo;
        int hi;
        lo = pid * (%[1]d / nprocs);
        hi = lo + %[1]d / nprocs;
        for (int i = lo; i < hi; i = i + 1) {
            data[i] = data[i] + %[2]d;
            acc = acc + data[i];
        }
`, p.Elems, addA)
	case Migratory:
		// One owner per round sweeps the whole array; the barrier
		// hands it off.
		fmt.Fprintf(&b, `        if (r %% nprocs == pid) {
            for (int i = 0; i < %[1]d; i = i + 1) {
                data[i] = data[i] + %[2]d;
                acc = acc + data[i];
            }
        }
        barrier;
`, p.Elems, addA)
	case ProdCons:
		fmt.Fprintf(&b, `        if (pid == 0) {
            for (int i = 0; i < %[1]d; i = i + 1) {
                data[i] = data[i] + %[2]d;
            }
        }
        barrier;
        if (pid != 0) {
            for (int i = 0; i < %[1]d; i = i + 1) {
                acc = acc + data[i];
            }
        }
        barrier;
`, p.Elems, addA)
	}

	if every := pctEvery(p.FalseSharePct); every > 0 {
		fmt.Fprintf(&b, `        if (r %% %d == 0) {
            fscnt[pid] = fscnt[pid] + %d;
        }
`, every, addB)
	}
	if every := pctEvery(p.LockPct); every > 0 {
		fmt.Fprintf(&b, `        if (r %% %d == 0) {
            acquire(glock);
            locked_total = locked_total + 1;
            release(glock);
        }
`, every)
	}

	b.WriteString("    }\n    out[pid] = acc;\n}\n")
	return b.String()
}

// Benchmark wraps the generated program as a workload.Benchmark
// (unregistered — matrix cells address it directly). Scale multiplies
// Rounds, mirroring how the hand-built kernels scale work.
func Benchmark(p Params) *workload.Benchmark {
	p = p.Clamped()
	return &workload.Benchmark{
		Name:        p.Name(),
		Description: fmt.Sprintf("generated %s workload", p.Pattern),
		HasN:        true,
		FigureRef:   "fsexp -matrix",
		Source: func(scale int) string {
			q := p
			if scale > 1 {
				q.Rounds = clampInt(q.Rounds*scale, 2, 64)
			}
			return Generate(q)
		},
	}
}

// Corpus enumerates n parameter sets from one seed: patterns cycle in
// enum order while every knob is drawn from the full clamped range,
// so any prefix of the population already mixes all four patterns.
func Corpus(n int, seed int64) []Params {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Params, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Params{
			Seed:          rng.Int63() & 0xffff,
			Pattern:       Pattern(i % int(patternCount)),
			Elems:         64 * (1 + rng.Intn(8)),
			Rounds:        2 + rng.Intn(15),
			StrideElems:   1 + rng.Intn(16),
			LockPct:       rng.Intn(4) * 25,
			FalseSharePct: rng.Intn(5) * 25,
		})
	}
	return out
}
