package workload

// LocusRoute reproduces the sharing structure of the SPLASH standard
// cell router (Table 1: 6709 lines, versions C and P only — the
// original program was already hand-optimized for locality, so there
// is no N version; the compiler runs on the programmer's source).
//
// The programmer's work was largely right: per-process routing
// statistics are grouped into full-block records and the cost grid is
// partitioned geographically (each process routes in its own region,
// with occasional boundary crossings that are genuine true sharing).
// What §5 says remains: the region lock words are packed together —
// "the programmer sometimes left locks unpadded"; LocusRoute suffered
// from it. Padding the locks is essentially all the compiler finds,
// which is why Table 3 shows C=12.3 only just ahead of P=12.0.
func init() {
	MustRegister(&Benchmark{
		Name:        "locusroute",
		Description: "VLSI standard cell router",
		PaperLines:  6709,
		HasN:        false,
		HasP:        true,
		FigureRef:   "Table 3",
		Source:      locusrouteSource,
	})
}

const locusrouteGrid = 4096

func locusrouteSource(scale int) string {
	routes := scaled(6000, scale)
	return sprintf(`
// locusroute (P): geographically partitioned cost grid, hand-grouped
// statistics records, packed region locks.
struct RouteStats {
    int routes;
    int wirelen;
    int fill[30];
};

shared int costgrid[%[1]d];
shared struct RouteStats stats[64];
lock regionlock[64];

void main() {
    int region;
    int mine;
    region = %[1]d / nprocs;
    mine = %[2]d / nprocs;
    for (int r = 0; r < mine; r = r + 1) {
        // Route a wire inside the process's own region...
        int base;
        int len;
        base = pid * region + (r * 13) %% (region - 16);
        len = 10 + r %% 6;
        acquire(regionlock[pid]);
        for (int k = 0; k < len; k = k + 1) {
            costgrid[base + k] = costgrid[base + k] + 1;
        }
        release(regionlock[pid]);
        // ...occasionally crossing into the neighbour's region
        // (genuine true sharing at the seams).
        if (r %% 8 == 0) {
            int nb;
            int nbase;
            nb = (pid + 1) %% nprocs;
            nbase = nb * region + (r * 7) %% (region - 4);
            acquire(regionlock[nb]);
            for (int k = 0; k < 4; k = k + 1) {
                costgrid[nbase + k] = costgrid[nbase + k] + 1;
            }
            release(regionlock[nb]);
        }
        stats[pid].routes = stats[pid].routes + 1;
        stats[pid].wirelen = stats[pid].wirelen + len;
    }
}
`, locusrouteGrid, routes)
}
