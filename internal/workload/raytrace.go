package workload

// Raytrace reproduces the sharing structure of the SPLASH-2 ray
// tracer (Table 1: 12391 lines, versions N, C, P):
//
//   - rays[] and shade[] are pid-indexed per-process accumulators
//     updated per traced ray: the group & transpose target (Table 2:
//     70.4%).
//   - workitem is a hot write-shared work counter without locality
//     (pad & align: 3.3%), and ray_lock is co-allocated next to it in
//     the N version (locks: 4.6%).
//   - hit_shallow/hit_deep counters sit behind deep conditionals:
//     like Maxflow's busy scalars, static profiling underestimates
//     them, they stay unpadded, and Raytrace retains residual false
//     sharing (its total reduction stops at 78.3%).
//
// The programmer version gets the grouping right (full-block padding)
// but §5's wrong tradeoff is encoded too: the programmer padded and
// aligned the read-shared scene[] array, which the static analysis had
// concluded was not per-process — destroying the spatial locality of
// scene reads. P lands just below C (9.2 vs 9.6 at 12), the paper's
// "comparable" case.
func init() {
	MustRegister(&Benchmark{
		Name:        "raytrace",
		Description: "Rendering of 3-dimensional scene",
		PaperLines:  12391,
		HasN:        true,
		HasP:        true,
		FigureRef:   "Fig.3, Fig.4, Table 2, Table 3",
		Source:      raytraceSource,
		PSource:     raytracePSource,
	})
}

const (
	raytraceScene = 512
	raytraceRays  = 7200
)

func raytraceSource(scale int) string {
	rays := scaled(raytraceRays, scale)
	return sprintf(`
// raytrace (N): per-ray accumulation into pid-indexed counters plus a
// shared work counter.
shared double scene[%[1]d];
shared int rays[64];
shared double shade[64];
shared int workitem;
lock ray_lock;
shared int hit_shallow;
shared int hit_deep;

// note_hit is dynamically hot but statically buried under branches.
void note_hit(int d) {
    if (d > -1) {
        if (d > -2) {
            if (d > -3) {
                if (d > -4) {
                    if (d > -5) {
                        if (d > -6) {
                            if (d > -7) {
                                hit_shallow = hit_shallow + 1;
                                hit_deep = hit_deep + d;
                                hit_shallow = hit_shallow + hit_deep %% 3;
                            }
                        }
                    }
                }
            }
        }
    }
}

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            scene[i] = i * 0.0625;
        }
    }
    barrier;
    int mine;
    mine = %[2]d / nprocs;
    for (int r = 0; r < mine; r = r + 1) {
        int cell;
        double acc;
        cell = (pid * 131 + r * 17) %% (%[1]d - 8);
        acc = 0.0;
        for (int k = 0; k < 8; k = k + 1) {
            acc = acc + scene[cell + k];
        }
        shade[pid] = shade[pid] + acc;
        rays[pid] = rays[pid] + 1;
        if (r %% 4 == 0) {
            note_hit(cell %% 5);
        }
        if (r %% 32 == 0) {
            acquire(ray_lock);
            workitem = workitem + 1;
            release(ray_lock);
        }
    }
}
`, raytraceScene, rays)
}

// raytracePSource groups the per-process counters correctly but pads
// the read-shared scene array (one element per block), trading away
// the spatial locality of scene reads.
func raytracePSource(scale int) string {
	rays := scaled(raytraceRays, scale)
	return sprintf(`
// raytrace (P): correct grouping, but a wrongly padded scene array
// and a lock left co-allocated with the work counter.
struct Trace {
    int rays;
    double shade;
    int fill[28];
};

struct Patch {
    double v;
    int fill[6];
};

shared struct Patch scene[%[1]d];
shared struct Trace trace[64];
shared int workitem;
lock ray_lock;
shared int hit_shallow;
shared int hit_deep;

void note_hit(int d) {
    if (d > -1) {
        if (d > -2) {
            if (d > -3) {
                if (d > -4) {
                    if (d > -5) {
                        if (d > -6) {
                            if (d > -7) {
                                hit_shallow = hit_shallow + 1;
                                hit_deep = hit_deep + d;
                                hit_shallow = hit_shallow + hit_deep %% 3;
                            }
                        }
                    }
                }
            }
        }
    }
}

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            scene[i].v = i * 0.0625;
        }
    }
    barrier;
    int mine;
    mine = %[2]d / nprocs;
    for (int r = 0; r < mine; r = r + 1) {
        int cell;
        double acc;
        cell = (pid * 131 + r * 17) %% (%[1]d - 8);
        acc = 0.0;
        for (int k = 0; k < 8; k = k + 1) {
            acc = acc + scene[cell + k].v;
        }
        trace[pid].shade = trace[pid].shade + acc;
        trace[pid].rays = trace[pid].rays + 1;
        if (r %% 4 == 0) {
            note_hit(cell %% 5);
        }
        if (r %% 32 == 0) {
            acquire(ray_lock);
            workitem = workitem + 1;
            release(ray_lock);
        }
    }
}
`, raytraceScene, rays)
}
