package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/sim/cache"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
)

// measure runs a compiled program through the VM + cache simulator.
func measure(t *testing.T, prog *core.Program, nprocs int, block int64) *cache.Stats {
	t.Helper()
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	m := vm.New(bc)
	sim, err := cache.New(cache.DefaultConfig(nprocs, block))
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	if err := m.Run(func(r vm.Ref) {
		sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return sim.Stats()
}

// evaluate restructures a benchmark's base source and returns
// unoptimized and transformed stats at 12 procs / 128-byte blocks.
func evaluate(t *testing.T, b *Benchmark, scale int) (*core.Result, *cache.Stats, *cache.Stats) {
	t.Helper()
	const nprocs, block = 12, 128
	res, err := core.Restructure(b.Source(scale), core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		t.Fatalf("%s: restructure: %v", b.Name, err)
	}
	sn := measure(t, res.Original, nprocs, block)
	sc := measure(t, res.Transformed, nprocs, block)
	return res, sn, sc
}

func appliedKinds(res *core.Result) map[transform.Kind]bool {
	m := map[transform.Kind]bool{}
	for _, d := range res.Applied {
		m[d.Kind] = true
	}
	return m
}

func fsReduction(sn, sc *cache.Stats) float64 {
	if sn.FalseShare == 0 {
		return 0
	}
	return 1 - float64(sc.FalseShare)/float64(sn.FalseShare)
}

func TestAllBenchmarksRegistered(t *testing.T) {
	names := []string{}
	for _, b := range All() {
		names = append(names, b.Name)
	}
	if len(All()) != 10 {
		t.Skipf("suite incomplete: %v", names)
	}
	if len(Unoptimizable()) != 6 {
		t.Errorf("unoptimizable set: %d, want 6", len(Unoptimizable()))
	}
}

func TestMaxflow(t *testing.T) {
	b := Get("maxflow")
	if b == nil {
		t.Skip("not registered")
	}
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindPadAlign] || !ak[transform.KindLockPad] {
		t.Fatalf("maxflow wants pad&align + locks:\n%s", res.Plan)
	}
	if ak[transform.KindGroupTranspose] || ak[transform.KindIndirection] {
		t.Errorf("maxflow must not need G&T/indirection (Table 2):\n%s", res.Plan)
	}
	// The busy counters must be skipped by the profiling threshold.
	skippedBusy := false
	for _, s := range res.Plan.Skipped {
		if contains(s, "push_cnt") && contains(s, "below threshold") {
			skippedBusy = true
		}
	}
	if !skippedBusy {
		t.Errorf("push_cnt should fall below the profiling threshold:\n%s", res.Plan)
	}

	red := fsReduction(sn, sc)
	t.Logf("maxflow: FS %d -> %d (%.1f%% reduction), other %d -> %d, miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red,
		sn.Misses()-sn.FalseShare, sc.Misses()-sc.FalseShare,
		100*sn.MissRate(), 100*sc.MissRate())
	// Paper: 56.5% total reduction with sizable residual (busy scalars).
	if red < 0.30 || red > 0.85 {
		t.Errorf("maxflow FS reduction %.1f%%, want 30-85%% (paper: 56.5%%)", 100*red)
	}
	if sc.FalseShare == 0 {
		t.Errorf("maxflow must retain residual false sharing (busy scalars)")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries, All() has %d", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range names {
		if Get(n) == nil {
			t.Fatalf("Names() lists unknown benchmark %q", n)
		}
	}
	for _, want := range []string{"maxflow", "pverify", "water"} {
		if !containsString(names, want) {
			t.Fatalf("Names() missing %q: %v", want, names)
		}
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func TestRegisterDuplicate(t *testing.T) {
	if err := Register(&Benchmark{Name: "maxflow"}); err == nil {
		t.Fatalf("Register of a duplicate name should error")
	}
	if err := Register(&Benchmark{}); err == nil {
		t.Fatalf("Register without a name should error")
	}
	if err := Register(&Benchmark{Name: "reg-test-tmp"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !Unregister("reg-test-tmp") || Unregister("reg-test-tmp") {
		t.Fatalf("Unregister bookkeeping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustRegister of a duplicate should panic")
		}
	}()
	MustRegister(&Benchmark{Name: "maxflow"})
}
