package workload

// Pverify reproduces the sharing structure of the parallel logic
// verifier of Ma et al. (Table 1: 2759 lines, versions N, C, P):
//
//   - Each process owns a dynamically allocated list of gate records
//     hung off a pid-indexed head array. The build phase interleaves
//     allocations from all processes, so gates owned by different
//     processes share cache blocks; the evaluation phase updates each
//     gate's count and val fields, falsely sharing those blocks with
//     neighbours' link fields. Indirection moves the hot fields into
//     per-process arenas — the dominant fix (Table 2: 81.6%).
//   - done[] and steps[] are pid-indexed bookkeeping vectors, the
//     group & transpose contribution (6.4%).
//   - verify_lock protects a global counter and is co-allocated with
//     it in the N version (lock padding: 3.1%).
//
// The programmer version (§5: the programmer missed both the group &
// transpose and the indirection opportunities) instead pads the gate
// record with filler to 112 bytes — records are neither block-sized
// nor block-aligned, so about a quarter of the record pairs still share a
// 128-byte block, the bookkeeping vectors stay unpadded, and the
// six-fold record footprint costs capacity misses. P lands between N
// and C, the paper's "falls in between" case.
func init() {
	MustRegister(&Benchmark{
		Name:        "pverify",
		Description: "Logical verification",
		PaperLines:  2759,
		HasN:        true,
		HasP:        true,
		FigureRef:   "Fig.3, Fig.4, Table 2, Table 3",
		Source:      pverifySource,
		PSource:     pverifyPSource,
	})
}

const pverifyGates = 600

func pverifySource(scale int) string {
	rounds := scaled(120, scale)
	return sprintf(`
// pverify (N): per-process gate lists in a dynamic graph.
struct Gate {
    int count;
    int val;
    struct Gate *next;
};

shared struct Gate *work[64];
shared int done[64];
shared int steps[64];
shared int verified_total;
lock verify_lock;

void main() {
    // Build: each process allocates its own gates; allocations from
    // different processes interleave in the shared heap.
    int mine;
    mine = %[1]d / nprocs;
    for (int i = 0; i < mine; i = i + 1) {
        struct Gate *g;
        g = alloc(struct Gate);
        g->count = 0;
        g->val = (pid + i) %% 7 + 1;
        g->next = work[pid];
        work[pid] = g;
    }
    barrier;
    // Evaluate: every round walks the process's own list.
    for (int r = 0; r < %[2]d; r = r + 1) {
        struct Gate *p;
        int acc;
        acc = 0;
        p = work[pid];
        while (p != 0) {
            p->count = p->count + p->val;
            acc = acc + p->count;
            p = p->next;
        }
        done[pid] = done[pid] + 1;
        steps[pid] = steps[pid] + acc;
        if (r %% 8 == 0) {
            acquire(verify_lock);
            verified_total = verified_total + 1;
            release(verify_lock);
        }
    }
}
`, pverifyGates, rounds)
}

// pverifyPSource is the hand-optimized version: the programmer padded
// the gate record with filler to 112 bytes (unaligned) but missed the
// indirection and group & transpose opportunities and left the lock
// co-allocated.
func pverifyPSource(scale int) string {
	rounds := scaled(120, scale)
	return sprintf(`
// pverify (P): records hand-padded to 112 bytes; no indirection, no
// grouping, lock co-allocated with its counter.
struct Gate {
    int count;
    int val;
    struct Gate *next;
    int fill[24];
};

shared struct Gate *work[64];
shared int done[64];
shared int steps[64];
shared int verified_total;
lock verify_lock;

void main() {
    int mine;
    mine = %[1]d / nprocs;
    for (int i = 0; i < mine; i = i + 1) {
        struct Gate *g;
        g = alloc(struct Gate);
        g->count = 0;
        g->val = (pid + i) %% 7 + 1;
        g->next = work[pid];
        work[pid] = g;
    }
    barrier;
    for (int r = 0; r < %[2]d; r = r + 1) {
        struct Gate *p;
        int acc;
        acc = 0;
        p = work[pid];
        while (p != 0) {
            p->count = p->count + p->val;
            acc = acc + p->count;
            p = p->next;
        }
        done[pid] = done[pid] + 1;
        steps[pid] = steps[pid] + acc;
        if (r %% 8 == 0) {
            acquire(verify_lock);
            verified_total = verified_total + 1;
            release(verify_lock);
        }
    }
}
`, pverifyGates, rounds)
}
