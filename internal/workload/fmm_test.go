package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/transform"
)

func TestFmm(t *testing.T) {
	b := Get("fmm")
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] || !ak[transform.KindLockPad] {
		t.Fatalf("fmm wants G&T + locks:\n%s", res.Plan)
	}
	// The force vectors must all land in one grouped record.
	grouped := false
	for _, d := range res.Plan.ByKind(transform.KindGroupTranspose) {
		if d.Shape == transform.ShapeGroup && len(d.Arrays) == 4 {
			grouped = true
		}
	}
	if !grouped {
		t.Errorf("fx/fy/fz/inter not grouped together:\n%s", res.Plan)
	}
	// Positions stay untouched (read-shared with locality).
	for _, d := range res.Applied {
		for _, obj := range d.Objects {
			if obj == "global:px" || obj == "global:py" {
				t.Errorf("read-only positions must not be transformed: %s", d)
			}
		}
	}

	red := fsReduction(sn, sc)
	t.Logf("fmm: FS %d -> %d (%.1f%% reduction), miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red, 100*sn.MissRate(), 100*sc.MissRate())
	if red < 0.80 {
		t.Errorf("fmm FS reduction %.1f%%, want >= 80%% (paper: 90.8%%)", 100*red)
	}

	// The under-padded programmer version must keep most of its false
	// sharing at 128-byte blocks (the paper's P == N story).
	pprog, err := core.Compile(b.ProgrammerSource(1), core.Options{Nprocs: 12, BlockSize: 128})
	if err != nil {
		t.Fatalf("P compile: %v", err)
	}
	sp := measure(t, pprog, 12, 128)
	t.Logf("fmm P: FS %d, miss rate %.3f%%", sp.FalseShare, 100*sp.MissRate())
	if sp.FalseShare < sn.FalseShare/4 {
		t.Errorf("32-byte-padded P should retain much false sharing at 128B blocks: P=%d N=%d",
			sp.FalseShare, sn.FalseShare)
	}
}

func TestRadiosity(t *testing.T) {
	b := Get("radiosity")
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] || !ak[transform.KindLockPad] {
		t.Fatalf("radiosity wants G&T + locks:\n%s", res.Plan)
	}
	if !ak[transform.KindPadAlign] {
		t.Errorf("radiosity wants pad&align on done_flag:\n%s", res.Plan)
	}

	red := fsReduction(sn, sc)
	t.Logf("radiosity: FS %d -> %d (%.1f%% reduction), miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red, 100*sn.MissRate(), 100*sc.MissRate())
	if red < 0.80 {
		t.Errorf("radiosity FS reduction %.1f%%, want >= 80%% (paper: 93.5%%)", 100*red)
	}

	// P: partial grouping + packed locks keeps substantial FS.
	pprog, err := core.Compile(b.ProgrammerSource(1), core.Options{Nprocs: 12, BlockSize: 128})
	if err != nil {
		t.Fatalf("P compile: %v", err)
	}
	sp := measure(t, pprog, 12, 128)
	t.Logf("radiosity P: FS %d, miss rate %.3f%%", sp.FalseShare, 100*sp.MissRate())
	if sp.FalseShare <= sc.FalseShare {
		t.Errorf("compiler should beat programmer: C=%d P=%d", sc.FalseShare, sp.FalseShare)
	}
}

func TestRaytrace(t *testing.T) {
	b := Get("raytrace")
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] || !ak[transform.KindLockPad] || !ak[transform.KindPadAlign] {
		t.Fatalf("raytrace wants G&T + pad + locks:\n%s", res.Plan)
	}
	// Busy hit counters skipped by profiling.
	skipped := false
	for _, s := range res.Plan.Skipped {
		if contains(s, "hit_shallow") && contains(s, "below threshold") {
			skipped = true
		}
	}
	if !skipped {
		t.Errorf("hit counters should be under the threshold:\n%s", res.Plan)
	}
	// scene stays untouched by the compiler.
	for _, d := range res.Applied {
		for _, obj := range d.Objects {
			if obj == "global:scene" {
				t.Errorf("scene must not be transformed: %s", d)
			}
		}
	}

	red := fsReduction(sn, sc)
	t.Logf("raytrace: FS %d -> %d (%.1f%% reduction), miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red, 100*sn.MissRate(), 100*sc.MissRate())
	if red < 0.55 || red > 0.95 {
		t.Errorf("raytrace FS reduction %.1f%%, want 55-95%% (paper: 78.3%%)", 100*red)
	}
	if sc.FalseShare == 0 {
		t.Errorf("raytrace must retain residual false sharing (busy scalars)")
	}

	// P: good grouping but the padded scene costs read misses.
	pprog, err := core.Compile(b.ProgrammerSource(1), core.Options{Nprocs: 12, BlockSize: 128})
	if err != nil {
		t.Fatalf("P compile: %v", err)
	}
	sp := measure(t, pprog, 12, 128)
	t.Logf("raytrace P: FS %d, misses %d (C misses %d)", sp.FalseShare, sp.Misses(), sc.Misses())
	if sp.Misses() <= sc.Misses() {
		t.Errorf("P's padded scene should cost misses vs C: P=%d C=%d", sp.Misses(), sc.Misses())
	}
}
