package workload

import (
	"testing"

	"falseshare/internal/transform"
)

func TestTopopt(t *testing.T) {
	b := Get("topopt")
	res, sn, sc := evaluate(t, b, 1)

	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] {
		t.Fatalf("topopt wants group&transpose (gain matrix):\n%s", res.Plan)
	}
	if !ak[transform.KindIndirection] {
		t.Errorf("topopt wants indirection (cell tallies):\n%s", res.Plan)
	}
	// gain must be transposed specifically.
	foundTranspose := false
	for _, d := range res.Plan.ByKind(transform.KindGroupTranspose) {
		if d.Shape == transform.ShapeTranspose && len(d.Arrays) == 1 && d.Arrays[0] == "gain" {
			foundTranspose = true
		}
	}
	if !foundTranspose {
		t.Errorf("gain matrix not transposed:\n%s", res.Plan)
	}
	// The revolving moves[] buffer must NOT be transformed.
	for _, d := range res.Applied {
		for _, obj := range d.Objects {
			if obj == "global:moves" {
				t.Errorf("moves must stay untransformed (revolving partition): %s", d)
			}
		}
	}

	red := fsReduction(sn, sc)
	t.Logf("topopt: FS %d -> %d (%.1f%% reduction), miss rate %.3f%% -> %.3f%%",
		sn.FalseShare, sc.FalseShare, 100*red, 100*sn.MissRate(), 100*sc.MissRate())
	// Paper: 79.9% with residual from the revolving buffer.
	if red < 0.55 || red > 0.95 {
		t.Errorf("topopt FS reduction %.1f%%, want 55-95%% (paper: 79.9%%)", 100*red)
	}
	if sc.FalseShare == 0 {
		t.Errorf("topopt must retain residual false sharing (revolving buffer)")
	}
}
