package workload

// Radiosity reproduces the sharing structure of the SPLASH-2
// radiosity application (Table 1: 10908 lines, versions N, C, P):
//
//   - Per-process task bookkeeping (tasks/lum/qcount vectors indexed
//     by pid, with task stealing reading neighbours' counters) is the
//     dominant group & transpose target (Table 2: 85.6%).
//   - The distributed task-queue locks are hot — every enqueue,
//     dequeue and steal attempt takes one — and the N version packs
//     all 64 lock words into two cache blocks, so lock contention
//     ping-pongs blocks between processes (locks: 6.8%).
//   - done_flag is a small write-shared scalar without locality
//     (pad & align: 1.0%).
//
// The programmer version applies grouping but pads the records to 64
// bytes (two processes per KSR2 block) and leaves the lock words
// packed — §5's "the programmer sometimes left locks unpadded or
// associated them with the data they protected; Radiosity ...
// suffered from both". That is why P's maximum speedup (7.4 at 8)
// barely beats N's (7.0 at 8) while C reaches 19.2 at 28.
func init() {
	MustRegister(&Benchmark{
		Name:        "radiosity",
		Description: "Equilibrium distribution of light",
		PaperLines:  10908,
		HasN:        true,
		HasP:        true,
		FigureRef:   "Fig.3, Table 2, Table 3",
		Source:      radiositySource,
		PSource:     radiosityPSource,
	})
}

const radiosityPatches = 384

func radiositySource(scale int) string {
	rounds := scaled(1920, scale)
	return sprintf(`
// radiosity (N): distributed work queues with stealing.
shared double form[%[1]d];
shared int tasks[64];
shared double lum[64];
shared int qcount[64];
lock qlock[64];
shared int done_flag;

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            form[i] = i * 0.125;
        }
    }
    barrier;
    int rounds;
    rounds = %[2]d / nprocs;
    for (int r = 0; r < rounds; r = r + 1) {
        // Work on the local queue.
        acquire(qlock[pid]);
        qcount[pid] = qcount[pid] + 1;
        release(qlock[pid]);
        int base;
        base = (pid * 31 + r * 7) %% (%[1]d - 8);
        for (int k = 0; k < 8; k = k + 1) {
            lum[pid] = lum[pid] + form[base + k];
            tasks[pid] = tasks[pid] + 1;
        }
        // Occasionally probe the neighbour's queue (work stealing).
        if (r %% 4 == 0) {
            int victim;
            victim = (pid + 1) %% nprocs;
            acquire(qlock[victim]);
            if (qcount[victim] > qcount[pid]) {
                tasks[pid] = tasks[pid] + 1;
            }
            release(qlock[victim]);
        }
        if (r %% 2 == 0) {
            done_flag = done_flag + 1;
        }
    }
}
`, radiosityPatches, rounds)
}

// radiosityPSource groups the vectors into 64-byte records and keeps
// the lock words packed.
func radiosityPSource(scale int) string {
	rounds := scaled(1920, scale)
	return sprintf(`
// radiosity (P): hand-grouped records padded to 64 bytes; lock words
// left packed together.
struct Work {
    int tasks;
    double lum;
    int qcount;
    int fill[10];
};

shared double form[%[1]d];
shared struct Work work[64];
lock qlock[64];
shared int done_flag;

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            form[i] = i * 0.125;
        }
    }
    barrier;
    int rounds;
    rounds = %[2]d / nprocs;
    for (int r = 0; r < rounds; r = r + 1) {
        acquire(qlock[pid]);
        work[pid].qcount = work[pid].qcount + 1;
        release(qlock[pid]);
        int base;
        base = (pid * 31 + r * 7) %% (%[1]d - 8);
        for (int k = 0; k < 8; k = k + 1) {
            work[pid].lum = work[pid].lum + form[base + k];
            work[pid].tasks = work[pid].tasks + 1;
        }
        if (r %% 4 == 0) {
            int victim;
            victim = (pid + 1) %% nprocs;
            acquire(qlock[victim]);
            if (work[victim].qcount > work[pid].qcount) {
                work[pid].tasks = work[pid].tasks + 1;
            }
            release(qlock[victim]);
        }
        if (r %% 2 == 0) {
            done_flag = done_flag + 1;
        }
    }
}
`, radiosityPatches, rounds)
}
