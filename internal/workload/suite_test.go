package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/vm"
)

// TestSuiteRunsEverywhere executes every version of every benchmark
// at awkward processor counts (including non-dividing ones) and
// asserts clean termination — no deadlocks, bounds violations, null
// dereferences or arena exhaustion anywhere in the matrix.
func TestSuiteRunsEverywhere(t *testing.T) {
	counts := []int{1, 7, 13}
	for _, b := range All() {
		for _, nprocs := range counts {
			// N (or base) version.
			prog, err := core.Compile(b.Source(1), core.Options{Nprocs: nprocs, BlockSize: 128})
			if err != nil {
				t.Fatalf("%s base compile at %d: %v", b.Name, nprocs, err)
			}
			runToCompletion(t, b.Name+"/base", prog, nprocs)

			// C version.
			res, err := core.Restructure(b.Source(1), core.Options{Nprocs: nprocs, BlockSize: 128})
			if err != nil {
				t.Fatalf("%s restructure at %d: %v", b.Name, nprocs, err)
			}
			runToCompletion(t, b.Name+"/C", res.Transformed, nprocs)

			// P version where distinct.
			if b.PSource != nil {
				pprog, err := core.Compile(b.PSource(1), core.Options{Nprocs: nprocs, BlockSize: 128})
				if err != nil {
					t.Fatalf("%s P compile at %d: %v", b.Name, nprocs, err)
				}
				runToCompletion(t, b.Name+"/P", pprog, nprocs)
			}
		}
	}
}

func runToCompletion(t *testing.T, label string, prog *core.Program, nprocs int) {
	t.Helper()
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatalf("%s vm compile at %d procs: %v", label, nprocs, err)
	}
	m := vm.New(bc)
	if err := m.Run(nil); err != nil {
		t.Fatalf("%s run at %d procs: %v", label, nprocs, err)
	}
	// Every process must have done real work.
	for _, p := range m.Procs() {
		if p.Instrs == 0 {
			t.Errorf("%s at %d procs: process %d executed nothing", label, nprocs, p.ID)
		}
	}
}

// TestSuiteMetadata validates the registry against Table 1.
func TestSuiteMetadata(t *testing.T) {
	type row struct {
		lines int
		hasN  bool
		hasP  bool
	}
	table1 := map[string]row{
		"maxflow":    {810, true, false},
		"pverify":    {2759, true, true},
		"topopt":     {2206, true, true},
		"fmm":        {4395, true, true},
		"radiosity":  {10908, true, true},
		"raytrace":   {12391, true, true},
		"locusroute": {6709, false, true},
		"mp3d":       {1653, false, true},
		"pthor":      {9420, false, true},
		"water":      {1451, false, true},
	}
	if len(All()) != len(table1) {
		t.Fatalf("suite size = %d, want %d", len(All()), len(table1))
	}
	for name, want := range table1 {
		b := Get(name)
		if b == nil {
			t.Errorf("%s missing", name)
			continue
		}
		if b.PaperLines != want.lines {
			t.Errorf("%s paper lines = %d, want %d", name, b.PaperLines, want.lines)
		}
		if b.HasN != want.hasN || b.HasP != want.hasP {
			t.Errorf("%s versions N=%v P=%v, want N=%v P=%v", name, b.HasN, b.HasP, want.hasN, want.hasP)
		}
		if b.Description == "" || b.FigureRef == "" {
			t.Errorf("%s missing metadata", name)
		}
		if b.ProgrammerSource(1) == "" && want.hasP {
			t.Errorf("%s should have a programmer source", name)
		}
	}
}

// TestScaleParameter verifies workloads scale their trace size.
func TestScaleParameter(t *testing.T) {
	b := Get("raytrace")
	small := measure(t, compileN(t, b, 1), 4, 128)
	big := measure(t, compileN(t, b, 3), 4, 128)
	if big.Refs < small.Refs*2 {
		t.Errorf("scale=3 refs (%d) should be well above scale=1 (%d)", big.Refs, small.Refs)
	}
}

func compileN(t *testing.T, b *Benchmark, scale int) *core.Program {
	t.Helper()
	prog, err := core.Compile(b.Source(scale), core.Options{Nprocs: 4, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
