package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/vm"
)

// TestStrongScaling asserts the workloads divide a fixed amount of
// work: the total instruction count of each base program must stay
// roughly constant as processors are added (sub-linear growth is
// allowed for synchronization overhead). A kernel with a fixed
// per-process component would grow linearly with P and invalidate the
// speedup experiments.
func TestStrongScaling(t *testing.T) {
	for _, b := range All() {
		i1 := totalInstrs(t, b, 1)
		i16 := totalInstrs(t, b, 16)
		growth := float64(i16) / float64(i1)
		t.Logf("%s: instrs 1p=%d 16p=%d growth=%.2fx", b.Name, i1, i16, growth)
		// Allow up to 2.5x for spin/synchronization overhead; a
		// weak-scaling kernel would show ~16x.
		if growth > 2.5 {
			t.Errorf("%s: total work grows %.1fx from 1 to 16 procs (weak scaling?)", b.Name, growth)
		}
	}
}

func totalInstrs(t *testing.T, b *Benchmark, nprocs int) int64 {
	t.Helper()
	prog, err := core.Compile(b.Source(1), core.Options{Nprocs: nprocs, BlockSize: 128})
	if err != nil {
		t.Fatalf("%s at %d: %v", b.Name, nprocs, err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatalf("%s at %d: %v", b.Name, nprocs, err)
	}
	m := vm.New(bc)
	if err := m.Run(nil); err != nil {
		t.Fatalf("%s at %d: %v", b.Name, nprocs, err)
	}
	var total int64
	for _, p := range m.Procs() {
		total += p.Instrs
	}
	return total
}
