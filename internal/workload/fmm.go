package workload

// Fmm reproduces the sharing structure of the SPLASH-2 adaptive fast
// multipole method (Table 1: 4395 lines, versions N, C, P):
//
//   - The force-accumulation vectors fx/fy/fz/inter are indexed by
//     pid and updated on every pairwise interaction: the group &
//     transpose target that dominates the reduction (Table 2: 84.8%).
//   - energy_lock protects the global potential sum (locks: 6.0%).
//   - Particle positions are read-shared with spatial locality and are
//     correctly left alone.
//
// The programmer version is the paper's Fmm story ("programmer efforts
// brought little gain", Figure 4; Table 3 shows P's maximum identical
// to N's): the SPLASH-2 authors grouped the per-process data into
// records but padded them only to 32 bytes — a block size from a
// different machine generation. On the KSR2's 128-byte coherence units
// four processes still share every block, so the hand optimization
// buys almost nothing.
func init() {
	MustRegister(&Benchmark{
		Name:        "fmm",
		Description: "Fast multipole method (n-body)",
		PaperLines:  4395,
		HasN:        true,
		HasP:        true,
		FigureRef:   "Fig.3, Fig.4, Table 2, Table 3",
		Source:      fmmSource,
		PSource:     fmmPSource,
	})
}

const (
	fmmParticles = 560
	fmmWindow    = 17
)

func fmmSource(scale int) string {
	rounds := scaled(4, scale)
	return sprintf(`
// fmm (N): pairwise interactions accumulating into pid-indexed force
// vectors.
shared double px[%[1]d];
shared double py[%[1]d];
shared double fx[64];
shared double fy[64];
shared double fz[64];
shared int inter[64];
shared double energy;
lock energy_lock;

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            px[i] = i * 0.5;
            py[i] = i * 0.25 + 1.0;
        }
    }
    barrier;
    for (int r = 0; r < %[2]d; r = r + 1) {
        for (int i = pid; i < %[1]d; i = i + nprocs) {
            double lx;
            double ly;
            double lz;
            int li;
            lx = 0.0;
            ly = 0.0;
            lz = 0.0;
            li = 0;
            for (int w = 1; w < %[3]d; w = w + 1) {
                int j;
                j = i + w;
                if (j < %[1]d) {
                    double dx;
                    double dy;
                    dx = px[i] - px[j];
                    dy = py[i] - py[j];
                    lx = lx + dx;
                    ly = ly + dy;
                    lz = lz + dx * dy;
                    li = li + 1;
                }
            }
            fx[pid] = fx[pid] + lx;
            fy[pid] = fy[pid] + ly;
            fz[pid] = fz[pid] + lz;
            inter[pid] = inter[pid] + li;
        }
        acquire(energy_lock);
        energy = energy + fx[pid] + fy[pid];
        release(energy_lock);
        barrier;
    }
}
`, fmmParticles, rounds, fmmWindow)
}

// fmmPSource groups the per-process data by hand but pads the record
// to only 32 bytes.
func fmmPSource(scale int) string {
	rounds := scaled(4, scale)
	return sprintf(`
// fmm (P): hand-grouped records, under-padded for the KSR2 block.
struct Acc {
    double fx;
    double fy;
    double fz;
    int inter;
    int fill;
};

shared double px[%[1]d];
shared double py[%[1]d];
shared struct Acc accs[64];
shared double energy;
lock energy_lock;

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            px[i] = i * 0.5;
            py[i] = i * 0.25 + 1.0;
        }
    }
    barrier;
    for (int r = 0; r < %[2]d; r = r + 1) {
        for (int i = pid; i < %[1]d; i = i + nprocs) {
            double lx;
            double ly;
            double lz;
            int li;
            lx = 0.0;
            ly = 0.0;
            lz = 0.0;
            li = 0;
            for (int w = 1; w < %[3]d; w = w + 1) {
                int j;
                j = i + w;
                if (j < %[1]d) {
                    double dx;
                    double dy;
                    dx = px[i] - px[j];
                    dy = py[i] - py[j];
                    lx = lx + dx;
                    ly = ly + dy;
                    lz = lz + dx * dy;
                    li = li + 1;
                }
            }
            accs[pid].fx = accs[pid].fx + lx;
            accs[pid].fy = accs[pid].fy + ly;
            accs[pid].fz = accs[pid].fz + lz;
            accs[pid].inter = accs[pid].inter + li;
        }
        acquire(energy_lock);
        energy = energy + accs[pid].fx + accs[pid].fy;
        release(energy_lock);
        barrier;
    }
}
`, fmmParticles, rounds, fmmWindow)
}
