package workload

// Mp3d reproduces the sharing structure of the SPLASH rarefied-fluid
// simulator (Table 1: 1653 lines, versions C and P only). Mp3d is the
// suite's notorious locality disaster, and the paper's Table 3 shows
// it: the original tops out at 1.3x on 4 processors while the
// compiler-restructured version reaches 2.9x on 28.
//
//   - space[] holds per-cell occupancy updated through particle
//     positions — data-dependent indices, write-shared with no
//     processor or spatial locality. The compiler pads and aligns it.
//   - pvel[] holds per-particle state in contiguous per-process
//     chunks that are not block-aligned; the compiler reshapes the
//     vector so each process's chunk starts on a block boundary.
//   - coll_lock sits right next to the collision counter it protects
//     (§5: "Mp3d suffered from both"); the compiler pads it away.
func init() {
	MustRegister(&Benchmark{
		Name:        "mp3d",
		Description: "Rarefied fluid flow",
		PaperLines:  1653,
		HasN:        false,
		HasP:        true,
		FigureRef:   "Table 3",
		Source:      mp3dSource,
	})
}

const (
	mp3dCells     = 509 // prime, for the position hash
	mp3dParticles = 3840
)

func mp3dSource(scale int) string {
	steps := scaled(12, scale)
	return sprintf(`
// mp3d (P/original): space cells updated through particle positions;
// unaligned per-particle chunks; co-allocated collision lock.
shared int space[%[1]d];
shared double pvel[%[2]d];
shared int collisions;
lock coll_lock;

void main() {
    int chunk;
    int lo;
    chunk = %[2]d / nprocs;
    lo = pid * chunk;
    if (pid == 0) {
        for (int i = 0; i < %[2]d; i = i + 1) {
            pvel[i] = i %% 17 + 1;
        }
    }
    barrier;
    for (int s = 0; s < %[3]d; s = s + 1) {
        for (int i = lo; i < lo + chunk; i = i + 1) {
            // Move the particle: update its velocity...
            pvel[i] = pvel[i] * 1.0625;
            // ...and the occupancy of the space cell it lands in (a
            // data-dependent, locality-free index).
            int cell;
            cell = (i * 37 + s * 101 + pid * 13) %% %[1]d;
            space[cell] = space[cell] + 1;
            if (space[cell] %% 64 == 63) {
                acquire(coll_lock);
                collisions = collisions + 1;
                release(coll_lock);
            }
        }
        barrier;
    }
}
`, mp3dCells, mp3dParticles, steps)
}
