package workload

// Topopt reproduces the sharing structure of Devadas & Newton's
// topological optimizer (Table 1: 2206 lines, versions N, C, P):
//
//   - gain[][] is a candidate-cost matrix whose minor dimension is
//     indexed by pid: adjacent elements of a row belong to different
//     processes. Group & transpose (here: transpose + row padding) is
//     the dominant fix (Table 2: 61.3%).
//   - Cell records are allocated per process and carry a per-process
//     tally field; indirection contributes another 18.6%.
//   - moves[] is the §5 anecdote: a write-shared array dynamically
//     partitioned across processes in a revolving manner. The base of
//     each process's chunk comes from a shared cursor, so the static
//     analysis cannot see the per-process pattern, and the writes are
//     unit-stride, so the array does not look locality-free either.
//     Its false sharing (chunk-boundary blocks) survives, which is why
//     Topopt's total reduction stops at 79.9%.
//
// The programmer version keeps the natural gain layout (missed
// transpose) and plain cell records (missed indirection) but pads the
// cell records and gives the cursor lock its own block — modest fixes
// that nevertheless help, matching the paper's nearly equal P and C
// maxima (10.2 vs 10.3).
func init() {
	MustRegister(&Benchmark{
		Name:        "topopt",
		Description: "Topological optimization",
		PaperLines:  2206,
		HasN:        true,
		HasP:        true,
		FigureRef:   "Fig.3, Table 2, Table 3",
		Source:      topoptSource,
		PSource:     topoptPSource,
	})
}

const (
	topoptCands = 160 // candidate rows in gain[][]
	topoptCells = 480
	topoptMoves = 1024
	topoptChunk = 16 // revolving chunk size
)

func topoptSource(scale int) string {
	rounds := scaled(60, scale)
	return sprintf(`
// topopt (N): candidate gains with pid in the minor dimension, cells
// with per-process tallies, and a revolving move buffer.
struct Cell {
    int tally;
    int kind;
    struct Cell *link;
};

shared int gain[%[1]d][64];
shared struct Cell *cells[64];
shared int moves[%[3]d];
shared int cursor;
shared int best;
lock cursor_lock;

void main() {
    int mine;
    mine = %[2]d / nprocs;
    for (int i = 0; i < mine; i = i + 1) {
        struct Cell *c;
        c = alloc(struct Cell);
        c->tally = 0;
        c->kind = i %% 3;
        c->link = cells[pid];
        cells[pid] = c;
    }
    barrier;
    for (int r = 0; r < %[4]d; r = r + 1) {
        // Per-process column of the gain matrix: each process
        // evaluates its share of the candidates in its own column.
        int share;
        share = 1920 / nprocs;
        for (int k = 0; k < share; k = k + 1) {
            int i;
            i = (k * 7 + r + pid) %% %[1]d;
            gain[i][pid] = gain[i][pid] + k + r;
        }
        // Tally own cells.
        struct Cell *p;
        p = cells[pid];
        while (p != 0) {
            p->tally = p->tally + p->kind;
            p = p->link;
        }
        // Revolving partition of the move buffer: grab a chunk whose
        // base comes from shared state.
        int base;
        acquire(cursor_lock);
        base = cursor;
        cursor = (cursor + %[5]d) %% %[3]d;
        release(cursor_lock);
        for (int i = 0; i < %[5]d; i = i + 1) {
            moves[base + i] = moves[base + i] + 1;
        }
        for (int i = 0; i < %[5]d; i = i + 1) {
            moves[base + i] = moves[base + i] + r;
        }
        if (gain[r %% %[1]d][pid] > best) {
            best = gain[r %% %[1]d][pid];
        }
    }
}
`, topoptCands, topoptCells, topoptMoves, rounds, topoptChunk)
}

func topoptPSource(scale int) string {
	rounds := scaled(60, scale)
	return sprintf(`
// topopt (P): padded cell records and a padded cursor lock, but the
// gain matrix keeps its natural (candidate-major) layout and the
// tallies stay embedded in the cells.
struct Cell {
    int tally;
    int kind;
    struct Cell *link;
    int fill[28];
};

shared int gain[%[1]d][64];
shared struct Cell *cells[64];
shared int moves[%[3]d];
shared int cursor;
shared int best;
lock cursor_lock;
shared int lockpad[32];

void main() {
    int mine;
    mine = %[2]d / nprocs;
    for (int i = 0; i < mine; i = i + 1) {
        struct Cell *c;
        c = alloc(struct Cell);
        c->tally = 0;
        c->kind = i %% 3;
        c->link = cells[pid];
        cells[pid] = c;
    }
    barrier;
    for (int r = 0; r < %[4]d; r = r + 1) {
        int share;
        share = 1920 / nprocs;
        for (int k = 0; k < share; k = k + 1) {
            int i;
            i = (k * 7 + r + pid) %% %[1]d;
            gain[i][pid] = gain[i][pid] + k + r;
        }
        struct Cell *p;
        p = cells[pid];
        while (p != 0) {
            p->tally = p->tally + p->kind;
            p = p->link;
        }
        int base;
        acquire(cursor_lock);
        base = cursor;
        cursor = (cursor + %[5]d) %% %[3]d;
        release(cursor_lock);
        for (int i = 0; i < %[5]d; i = i + 1) {
            moves[base + i] = moves[base + i] + 1;
        }
        for (int i = 0; i < %[5]d; i = i + 1) {
            moves[base + i] = moves[base + i] + r;
        }
        if (gain[r %% %[1]d][pid] > best) {
            best = gain[r %% %[1]d][pid];
        }
    }
}
`, topoptCands, topoptCells, topoptMoves, rounds, topoptChunk)
}
