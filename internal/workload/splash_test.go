package workload

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/transform"
)

// evaluateSplash restructures one of the original-SPLASH-four
// programs: base source is the programmer version; C comes from the
// compiler.
func evaluateSplash(t *testing.T, name string, scale int) (*core.Result, fsPair) {
	t.Helper()
	b := Get(name)
	if b == nil {
		t.Fatalf("%s not registered", name)
	}
	if b.HasN {
		t.Fatalf("%s should be a C/P-only program", name)
	}
	const nprocs, block = 12, 128
	res, err := core.Restructure(b.Source(scale), core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		t.Fatalf("%s: restructure: %v", name, err)
	}
	sp := measure(t, res.Original, nprocs, block)
	sc := measure(t, res.Transformed, nprocs, block)
	return res, fsPair{p: sp.FalseShare, c: sc.FalseShare,
		pRate: sp.MissRate(), cRate: sc.MissRate()}
}

type fsPair struct {
	p, c         int64
	pRate, cRate float64
}

func TestLocusRoute(t *testing.T) {
	res, fs := evaluateSplash(t, "locusroute", 1)
	ak := appliedKinds(res)
	if !ak[transform.KindLockPad] {
		t.Fatalf("locusroute wants lock padding:\n%s", res.Plan)
	}
	// The hand-grouped stats records must not be re-transformed.
	for _, d := range res.Applied {
		for _, obj := range d.Objects {
			if obj == "global:stats" {
				t.Errorf("stats already hand-optimized, must not be touched: %s", d)
			}
		}
	}
	t.Logf("locusroute: FS P=%d C=%d, miss rate %.3f%% -> %.3f%%", fs.p, fs.c, 100*fs.pRate, 100*fs.cRate)
	if fs.c >= fs.p {
		t.Errorf("compiler should still shave false sharing: C=%d P=%d", fs.c, fs.p)
	}
	// The gap is small by design (paper: 12.3 vs 12.0).
	if fs.p > 0 && float64(fs.p-fs.c)/float64(fs.p+1) > 0.98 && fs.p > 10000 {
		t.Logf("note: gap larger than the paper suggests")
	}
}

func TestMp3d(t *testing.T) {
	res, fs := evaluateSplash(t, "mp3d", 1)
	ak := appliedKinds(res)
	if !ak[transform.KindPadAlign] {
		t.Fatalf("mp3d wants pad&align on space[]:\n%s", res.Plan)
	}
	if !ak[transform.KindLockPad] {
		t.Errorf("mp3d wants lock padding:\n%s", res.Plan)
	}
	padSpace := false
	for _, d := range res.Plan.ByKind(transform.KindPadAlign) {
		for _, g := range d.Globals {
			if g == "space" {
				padSpace = true
			}
		}
	}
	if !padSpace {
		t.Errorf("space[] not padded:\n%s", res.Plan)
	}
	t.Logf("mp3d: FS P=%d C=%d, miss rate %.3f%% -> %.3f%%", fs.p, fs.c, 100*fs.pRate, 100*fs.cRate)
	// Big gap expected (paper: 1.3 vs 2.9 maximum speedup).
	if fs.c*2 >= fs.p {
		t.Errorf("compiler should remove most of mp3d's FS: C=%d P=%d", fs.c, fs.p)
	}
}

func TestPthor(t *testing.T) {
	res, fs := evaluateSplash(t, "pthor", 1)
	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] {
		t.Fatalf("pthor wants G&T on qhead/qtail:\n%s", res.Plan)
	}
	if !ak[transform.KindPadAlign] {
		t.Errorf("pthor wants pad&align on evcount:\n%s", res.Plan)
	}
	t.Logf("pthor: FS P=%d C=%d, miss rate %.3f%% -> %.3f%%", fs.p, fs.c, 100*fs.pRate, 100*fs.cRate)
	if fs.c >= fs.p {
		t.Errorf("compiler should reduce pthor FS: C=%d P=%d", fs.c, fs.p)
	}
}

func TestWater(t *testing.T) {
	res, fs := evaluateSplash(t, "water", 1)
	ak := appliedKinds(res)
	if !ak[transform.KindGroupTranspose] {
		t.Fatalf("water wants G&T on kin/pot:\n%s", res.Plan)
	}
	if !ak[transform.KindLockPad] {
		t.Errorf("water wants lock padding:\n%s", res.Plan)
	}
	t.Logf("water: FS P=%d C=%d, miss rate %.3f%% -> %.3f%%", fs.p, fs.c, 100*fs.pRate, 100*fs.cRate)
	if fs.c*2 >= fs.p {
		t.Errorf("compiler should remove most of water's FS: C=%d P=%d", fs.c, fs.p)
	}
}
