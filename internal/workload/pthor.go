package workload

// Pthor reproduces the sharing structure of the SPLASH distributed
// logic simulator (Table 1: 9420 lines, versions C and P only). Pthor
// scales poorly for everyone — Table 3: C=2.8 at 4 processors,
// P=2.2 at 4 — because each timestep serializes on a shared event
// list behind barriers; the compiler still finds what §5 lists as the
// programmer's misses: group & transpose on the per-process queue
// heads/tails and pad & align on the global event counter.
func init() {
	MustRegister(&Benchmark{
		Name:        "pthor",
		Description: "Circuit simulator",
		PaperLines:  9420,
		HasN:        false,
		HasP:        true,
		FigureRef:   "Table 3",
		Source:      pthorSource,
	})
}

const (
	pthorElements = 768
	pthorEvents   = 256
)

func pthorSource(scale int) string {
	steps := scaled(30, scale)
	return sprintf(`
// pthor (P/original): per-process event queues with unpadded heads
// and tails, a hot global event counter, and a serializing shared
// event list.
shared int qhead[64];
shared int qtail[64];
shared int evcount;
shared int eventlist[%[2]d];
shared int elemstate[%[1]d];
lock evlock;

void main() {
    int mine;
    mine = %[1]d / nprocs;
    for (int s = 0; s < %[3]d; s = s + 1) {
        // Evaluate my elements for this timestep.
        for (int i = 0; i < mine; i = i + 1) {
            int e;
            e = pid * mine + i;
            elemstate[e] = elemstate[e] + s;
            qtail[pid] = qtail[pid] + 1;
            evcount = evcount + 1;
        }
        barrier;
        // Merge into the shared event list (serialized: everyone
        // touches the same region — the program's real bottleneck).
        acquire(evlock);
        for (int k = 0; k < 16; k = k + 1) {
            eventlist[(s * 16 + k) %% %[2]d] = eventlist[(s * 16 + k) %% %[2]d] + pid;
        }
        release(evlock);
        barrier;
        // Drain my queue.
        while (qhead[pid] < qtail[pid]) {
            qhead[pid] = qhead[pid] + 1;
        }
        barrier;
    }
}
`, pthorElements, pthorEvents, steps)
}
