package workload

// Maxflow reproduces the sharing structure of Carrasco's parallel
// maximum-flow program (Table 1: 810 lines, versions N and C):
//
//   - excess[] and height[] are updated through data-dependent node
//     indices (the push-relabel wavefront), so writes are shared with
//     no processor or spatial locality: the pad & align targets that
//     produce the bulk of Maxflow's false-sharing reduction (Table 2:
//     49.2%), at the cost of a larger data set ("other" misses nearly
//     double at 128-byte blocks, exactly as §5 reports).
//   - flow_lock is co-allocated with the scalars it protects in the
//     N version; padding it contributes the remaining 7.3%.
//   - push_cnt and relabel_cnt are the §5 anecdote: busy write-shared
//     scalars whose updates sit under deep data-dependent conditional
//     nests. Static profiling underestimates their frequency, they
//     fall below the candidate threshold, and their false sharing
//     remains after transformation — the reason Maxflow's total
//     reduction stops at 56.5%.
func init() {
	MustRegister(&Benchmark{
		Name:        "maxflow",
		Description: "Maximum flow in a directed graph",
		PaperLines:  810,
		HasN:        true,
		HasP:        false,
		FigureRef:   "Fig.3, Table 2, Table 3",
		Source:      maxflowSource,
	})
}

func maxflowSource(scale int) string {
	const nodes = 509 // prime: (i*17+3) % nodes is a permutation walk
	total := scaled(15000, scale)
	return sprintf(`
// maxflow (N): push-relabel kernel with data-dependent node updates.
shared int excess[%[1]d];
shared int height[%[1]d];
shared int perm[%[1]d];
shared int total_flow;
shared int active_count;
lock flow_lock;
shared int push_cnt;
shared int relabel_cnt;

// bump_counters is hot at run time (its guards are almost always
// true) but sits behind a deep conditional nest, so static profiling
// weights it far below its dynamic frequency.
void bump_counters(int e) {
    if (e > -1) {
        if (e > -2) {
            if (e > -3) {
                if (e > -4) {
                    if (e > -5) {
                        if (e > -6) {
                            if (e > -7) {
                                push_cnt = push_cnt + 1;
                                relabel_cnt = relabel_cnt + e;
                                push_cnt = push_cnt + relabel_cnt;
                                relabel_cnt = relabel_cnt + push_cnt;
                            }
                        }
                    }
                }
            }
        }
    }
}

void main() {
    if (pid == 0) {
        for (int i = 0; i < %[1]d; i = i + 1) {
            perm[i] = (i * 17 + 3) %% %[1]d;
            excess[i] = 1;
            height[i] = 1;
        }
    }
    barrier;
    int rounds;
    rounds = %[2]d / nprocs;
    for (int r = 0; r < rounds; r = r + 1) {
        int slot;
        int node;
        slot = (pid + r * nprocs) %% %[1]d;
        node = perm[slot];
        // A node activation performs several push/relabel steps on
        // the same node (temporal processor affinity: padding lets
        // the repeat accesses hit).
        for (int k = 0; k < 4; k = k + 1) {
            excess[node] = excess[node] + 1;
            if (excess[node] > height[node]) {
                height[node] = height[node] + 1;
            }
        }
        bump_counters(excess[node]);
        if (r %% 16 == 0) {
            acquire(flow_lock);
            total_flow = total_flow + 1;
            active_count = active_count + 1;
            release(flow_lock);
        }
    }
}
`, nodes, total)
}
