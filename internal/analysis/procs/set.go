// Package procs implements per-process control-flow analysis (stage 1
// of the paper's compile-time analysis): it computes, for every
// control-flow graph node, the set of processes that may execute it.
//
// Branches whose conditions are decidable per process id (via PDVs)
// split the process set; everything else passes the set through
// unchanged. Function base sets are the union of the sets at their
// call sites, computed to a fixed point over the call graph, so code
// like "if (pid == 0) initialize();" attributes the callee's side
// effects to process 0 only.
package procs

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxProcs bounds the analyzable process count (one bit per process).
const MaxProcs = 64

// Set is a bit set of process ids.
type Set uint64

// All returns the set {0..n-1}.
func All(n int) Set {
	if n >= MaxProcs {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Single returns the singleton {p}.
func Single(p int) Set { return Set(1) << uint(p) }

// Has reports whether p is in the set.
func (s Set) Has(p int) bool { return s&Single(p) != 0 }

// Add returns s with p added.
func (s Set) Add(p int) Set { return s | Single(p) }

// Union returns s with t added.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the processes in both sets.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns the processes in s but not t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Count returns the number of processes in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no processes.
func (s Set) Empty() bool { return s == 0 }

// Procs returns the member ids in increasing order.
func (s Set) Procs() []int {
	out := make([]int, 0, s.Count())
	for p := 0; p < MaxProcs && s != 0; p++ {
		if s.Has(p) {
			out = append(out, p)
			s = s.Minus(Single(p))
		}
	}
	return out
}

// String renders the set as {0,1,2} or {0..11} when contiguous.
func (s Set) String() string {
	ps := s.Procs()
	if len(ps) == 0 {
		return "{}"
	}
	contiguous := true
	for i := 1; i < len(ps); i++ {
		if ps[i] != ps[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous && len(ps) > 2 {
		return fmt.Sprintf("{%d..%d}", ps[0], ps[len(ps)-1])
	}
	strs := make([]string, len(ps))
	for i, p := range ps {
		strs[i] = fmt.Sprintf("%d", p)
	}
	return "{" + strings.Join(strs, ",") + "}"
}
