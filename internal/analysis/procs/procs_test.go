package procs

import (
	"testing"
	"testing/quick"

	"falseshare/internal/analysis/pdv"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

func TestSetOperations(t *testing.T) {
	s := All(4)
	if s.Count() != 4 || !s.Has(0) || !s.Has(3) || s.Has(4) {
		t.Fatalf("All(4) = %s", s)
	}
	if got := Single(2).Union(Single(5)).Count(); got != 2 {
		t.Errorf("union count = %d", got)
	}
	if got := All(8).Intersect(Single(3)); got != Single(3) {
		t.Errorf("intersect = %s", got)
	}
	if got := All(4).Minus(Single(1)).Procs(); len(got) != 3 {
		t.Errorf("minus = %v", got)
	}
	if !Set(0).Empty() || All(1).Empty() {
		t.Errorf("Empty wrong")
	}
}

func TestSetString(t *testing.T) {
	if got := All(12).String(); got != "{0..11}" {
		t.Errorf("contiguous set = %q", got)
	}
	if got := Single(0).Union(Single(5)).String(); got != "{0,5}" {
		t.Errorf("sparse set = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("empty set = %q", got)
	}
}

// Set algebra properties.
func TestSetProperties(t *testing.T) {
	union := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		u := sa.Union(sb)
		for _, p := range sa.Procs() {
			if !u.Has(p) {
				return false
			}
		}
		for _, p := range u.Procs() {
			if !sa.Has(p) && !sb.Has(p) {
				return false
			}
		}
		return true
	}
	deMorgan := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		return sa.Minus(sb) == sa.Intersect(^sb)
	}
	countAdd := func(a uint64, pRaw uint8) bool {
		p := int(pRaw % 64)
		s := Set(a)
		want := s.Count()
		if !s.Has(p) {
			want++
		}
		return s.Add(p).Count() == want
	}
	for name, f := range map[string]any{"union": union, "deMorgan": deMorgan, "countAdd": countAdd} {
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// analyzeSrc runs the front end + per-process analysis.
func analyzeSrc(t *testing.T, src string, nprocs int) (*cfg.CallGraph, *types.Info, *Result) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog := cfg.BuildProgram(f)
	pdvs := pdv.Analyze(info, int64(nprocs))
	return prog, info, Analyze(prog, info, pdvs, nprocs)
}

// stmtSet finds the node set of the statement assigning to the named
// global.
func stmtSet(t *testing.T, prog *cfg.CallGraph, info *types.Info, res *Result, fn, global string) Set {
	t.Helper()
	g := prog.Graphs[fn]
	var found Set
	ok := false
	for _, n := range g.Nodes {
		for _, s := range n.Stmts {
			if as, isAssign := s.(*ast.AssignStmt); isAssign {
				if id, isIdent := as.LHS.(*ast.Ident); isIdent && id.Name == global {
					found = res.Node[n]
					ok = true
				}
			}
		}
	}
	if !ok {
		t.Fatalf("no assignment to %q in %q", global, fn)
	}
	return found
}

func TestPidEqualityBranch(t *testing.T) {
	prog, info, res := analyzeSrc(t, `
shared int a;
shared int b;
shared int c;
void main() {
    if (pid == 0) {
        a = 1;
    } else {
        b = 1;
    }
    c = 1;
}
`, 8)
	if got := stmtSet(t, prog, info, res, "main", "a"); got != Single(0) {
		t.Errorf("a set = %s, want {0}", got)
	}
	if got := stmtSet(t, prog, info, res, "main", "b"); got != All(8).Minus(Single(0)) {
		t.Errorf("b set = %s, want {1..7}", got)
	}
	if got := stmtSet(t, prog, info, res, "main", "c"); got != All(8) {
		t.Errorf("c set = %s, want all", got)
	}
}

func TestPidRangeBranch(t *testing.T) {
	prog, info, res := analyzeSrc(t, `
shared int lo;
shared int hi;
void main() {
    if (pid < 3) {
        lo = 1;
    }
    if (pid >= 6) {
        hi = 1;
    }
}
`, 8)
	if got := stmtSet(t, prog, info, res, "main", "lo"); got.Count() != 3 || !got.Has(2) || got.Has(3) {
		t.Errorf("lo set = %s", got)
	}
	if got := stmtSet(t, prog, info, res, "main", "hi"); got.Count() != 2 || !got.Has(6) || !got.Has(7) {
		t.Errorf("hi set = %s", got)
	}
}

func TestPDVBranch(t *testing.T) {
	// A branch on a copied PDV restricts like a branch on pid.
	prog, info, res := analyzeSrc(t, `
shared int a;
private int myid;
void main() {
    myid = pid;
    if (myid % 1 == 0 && myid == 2) {
        a = 1;
    }
}
`, 8)
	got := stmtSet(t, prog, info, res, "main", "a")
	// myid % 1 is not affine, so the && is undecidable; the analysis
	// must conservatively keep everyone.
	if got != All(8) {
		t.Errorf("undecidable condition must not restrict: %s", got)
	}
}

func TestDecidableConjunction(t *testing.T) {
	prog, info, res := analyzeSrc(t, `
shared int a;
void main() {
    if (pid > 1 && pid < 4) {
        a = 1;
    }
}
`, 8)
	got := stmtSet(t, prog, info, res, "main", "a")
	if got != Single(2).Union(Single(3)) {
		t.Errorf("conjunction set = %s, want {2,3}", got)
	}
}

func TestCalleeInheritsCallSiteSet(t *testing.T) {
	prog, info, res := analyzeSrc(t, `
shared int a;
void helper() {
    a = 1;
}
void main() {
    if (pid == 0) {
        helper();
    }
}
`, 8)
	if got := res.Func["helper"]; got != Single(0) {
		t.Errorf("helper base set = %s, want {0}", got)
	}
	if got := stmtSet(t, prog, info, res, "helper", "a"); got != Single(0) {
		t.Errorf("helper body set = %s, want {0}", got)
	}
}

func TestCalleeUnionOverSites(t *testing.T) {
	_, _, res := analyzeSrc(t, `
shared int a;
void helper() {
    a = 1;
}
void main() {
    if (pid == 0) {
        helper();
    }
    if (pid == 5) {
        helper();
    }
}
`, 8)
	if got := res.Func["helper"]; got != Single(0).Union(Single(5)) {
		t.Errorf("helper base set = %s, want {0,5}", got)
	}
}

func TestForLoopEntryFilter(t *testing.T) {
	// Only processes whose first-iteration test succeeds enter the
	// body: for (i = pid; i < 4; ...) runs for pids 0..3 only.
	prog, info, res := analyzeSrc(t, `
shared int a;
void main() {
    for (int i = pid; i < 4; i = i + 1) {
        a = 1;
    }
}
`, 8)
	got := stmtSet(t, prog, info, res, "main", "a")
	if got != All(4) {
		t.Errorf("loop body set = %s, want {0..3}", got)
	}
}
