package procs

import (
	"falseshare/internal/analysis/affine"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
)

// Result holds the per-node and per-function process sets.
type Result struct {
	Nprocs int
	// Node maps every CFG node (across all functions) to the set of
	// processes that may execute it.
	Node map[*cfg.Node]Set
	// Func maps a function name to the union of the process sets at
	// its call sites (main gets the full set).
	Func map[string]Set
}

// StmtSet returns the process set of the node containing statement s
// in function fn, defaulting to the full set when unknown.
func (r *Result) StmtSet(g *cfg.Graph, s ast.Stmt) Set {
	if n, ok := g.StmtNode[s]; ok {
		return r.Node[n]
	}
	return All(r.Nprocs)
}

// Analyze computes the per-process control-flow annotation.
func Analyze(prog *cfg.CallGraph, info *types.Info, pdvs *pdv.Result, nprocs int) *Result {
	if nprocs > MaxProcs {
		nprocs = MaxProcs
	}
	res := &Result{
		Nprocs: nprocs,
		Node:   map[*cfg.Node]Set{},
		Func:   map[string]Set{},
	}
	a := &analyzer{prog: prog, info: info, pdvs: pdvs, res: res}

	// Everything starts empty except main.
	for name := range prog.Graphs {
		res.Func[name] = 0
	}
	res.Func["main"] = All(nprocs)

	// Fixed point over function base sets: a callee's base set is the
	// union of the node sets at its call sites.
	for iter := 0; iter < len(prog.Graphs)+2; iter++ {
		changed := false
		for name, g := range prog.Graphs {
			a.function(g, res.Func[name])
		}
		for _, site := range prog.Sites {
			ns := res.Node[site.Node]
			old := res.Func[site.Callee]
			nw := old.Union(ns)
			if nw != old {
				res.Func[site.Callee] = nw
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

type analyzer struct {
	prog *cfg.CallGraph
	info *types.Info
	pdvs *pdv.Result
	res  *Result
}

// function runs a worklist dataflow over one CFG: a node's set is the
// union of the filtered contributions of its predecessors.
func (a *analyzer) function(g *cfg.Graph, base Set) {
	// Reset the function's nodes.
	for _, n := range g.Nodes {
		a.res.Node[n] = 0
	}
	a.res.Node[g.Entry] = base

	work := []*cfg.Node{g.Entry}
	inWork := map[*cfg.Node]bool{g.Entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n] = false
		cur := a.res.Node[n]
		for i, s := range n.Succs {
			contrib := a.edgeFilter(n, i, cur)
			old := a.res.Node[s]
			nw := old.Union(contrib)
			if nw != old {
				a.res.Node[s] = nw
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
}

// edgeFilter restricts the process set flowing along the i-th
// successor edge of a branch node whose condition is decidable per
// process.
func (a *analyzer) edgeFilter(n *cfg.Node, i int, in Set) Set {
	if n.Kind != cfg.Branch || in.Empty() {
		return in
	}
	switch stmt := n.CondStmt.(type) {
	case *ast.IfStmt, *ast.WhileStmt:
		// successor 0 = condition true, successor 1 = false.
		_ = stmt
		out := Set(0)
		for _, p := range in.Procs() {
			v, ok := a.evalCond(n.Cond, int64(p), nil)
			if !ok {
				return in // undecidable: pass everything through
			}
			if (i == 0) == v {
				out = out.Add(p)
			}
		}
		return out
	case *ast.ForStmt:
		// The body edge (successor 0) is taken by processes whose
		// first-iteration test succeeds; the exit edge passes all (a
		// process that enters the loop eventually leaves it).
		if i != 0 || n.Cond == nil {
			return in
		}
		ivSym, ivInit := forInduction(stmt, a.info)
		if ivSym == nil {
			return in
		}
		out := Set(0)
		for _, p := range in.Procs() {
			iv0 := affine.Analyze(ivInit, a.info, a.pdvs)
			v0, ok := iv0.EvalPid(int64(p))
			if !ok {
				return in
			}
			v, ok := a.evalCond(n.Cond, int64(p), &ivBinding{sym: ivSym, val: v0})
			if !ok {
				return in
			}
			if v {
				out = out.Add(p)
			}
		}
		return out
	}
	return in
}

// ivBinding binds one induction variable to a concrete value while
// evaluating a first-iteration loop test.
type ivBinding struct {
	sym *types.Symbol
	val int64
}

// evalCond decides a branch condition for a concrete process id,
// consulting PDV values (and, for loop entry tests, the bound
// induction variable). ok=false when the condition is not decidable.
func (a *analyzer) evalCond(e ast.Expr, pid int64, iv *ivBinding) (bool, bool) {
	v, ok := a.evalInt(e, pid, iv)
	return v != 0, ok
}

func (a *analyzer) evalInt(e ast.Expr, pid int64, iv *ivBinding) (int64, bool) {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			v, ok := a.evalInt(x.X, pid, iv)
			if !ok {
				return 0, false
			}
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			l, ok1 := a.evalInt(x.X, pid, iv)
			r, ok2 := a.evalInt(x.Y, pid, iv)
			if !ok1 || !ok2 {
				return 0, false
			}
			if x.Op == token.LAND {
				return b2i(l != 0 && r != 0), true
			}
			return b2i(l != 0 || r != 0), true
		case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
			l, ok1 := a.evalAffine(x.X, pid, iv)
			r, ok2 := a.evalAffine(x.Y, pid, iv)
			if !ok1 || !ok2 {
				return 0, false
			}
			switch x.Op {
			case token.EQ:
				return b2i(l == r), true
			case token.NEQ:
				return b2i(l != r), true
			case token.LT:
				return b2i(l < r), true
			case token.LE:
				return b2i(l <= r), true
			case token.GT:
				return b2i(l > r), true
			case token.GE:
				return b2i(l >= r), true
			}
		}
	}
	return a.evalAffine(e, pid, iv)
}

// evalAffine evaluates an arithmetic subexpression for a concrete pid.
func (a *analyzer) evalAffine(e ast.Expr, pid int64, iv *ivBinding) (int64, bool) {
	env := affine.Env(a.pdvs)
	if iv != nil {
		env = &ivEnv{base: a.pdvs, iv: iv}
	}
	form := affine.Analyze(e, a.info, env)
	if iv != nil {
		// Substitute the bound induction variable.
		if c, ok := form.IV[iv.sym]; ok {
			form = affine.Expr{
				Const:   form.Const + c*iv.val,
				Pid:     form.Pid,
				Residue: form.Residue,
			}
		}
	}
	return form.EvalPid(pid)
}

// ivEnv layers one induction variable over the PDV environment.
type ivEnv struct {
	base affine.Env
	iv   *ivBinding
}

func (e *ivEnv) PDVValue(s *types.Symbol) (affine.Expr, bool) { return e.base.PDVValue(s) }
func (e *ivEnv) IsInduction(s *types.Symbol) bool             { return s == e.iv.sym }
func (e *ivEnv) Nprocs() int64                                { return e.base.Nprocs() }

// forInduction extracts the induction variable symbol and its initial
// expression from a for statement's init clause.
func forInduction(f *ast.ForStmt, info *types.Info) (*types.Symbol, ast.Expr) {
	switch init := f.Init.(type) {
	case *ast.AssignStmt:
		if id, ok := init.LHS.(*ast.Ident); ok {
			return info.Uses[id], init.RHS
		}
	case *ast.DeclStmt:
		if init.Init != nil {
			return info.LocalDecls[init.Decl], init.Init
		}
	}
	return nil, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
