package sideeffect

import (
	"falseshare/internal/analysis/affine"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/rsd"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/types"
)

// Prov classifies where a pointer value can point, from the point of
// view of process locality. It is how the analysis extends the paper's
// per-process reasoning to data embedded in dynamic structures: a
// pointer obtained from a PDV-partitioned root (e.g. heads[pid]) or
// from the process's own allocation, and chased only through the
// structure's own link fields, stays per-process.
type Prov int

const (
	// ProvUnknown means no assignment has been seen yet.
	ProvUnknown Prov = iota
	// ProvPerProcess pointers reach only data owned by the executing
	// process (PDV-partitioned roots, own allocations, own chains).
	ProvPerProcess
	// ProvShared pointers may reach data touched by other processes.
	ProvShared
)

func (p Prov) String() string {
	switch p {
	case ProvPerProcess:
		return "per-process"
	case ProvShared:
		return "shared"
	}
	return "unknown"
}

// join combines two provenances: shared poisons, unknown is identity.
func (p Prov) join(q Prov) Prov {
	if p == ProvShared || q == ProvShared {
		return ProvShared
	}
	if p == ProvPerProcess || q == ProvPerProcess {
		return ProvPerProcess
	}
	return ProvUnknown
}

// provenance computes a provenance for every pointer-typed symbol and
// every function's pointer return value, by fixed point over all
// assignments, argument bindings and returns in the program.
type provenance struct {
	info *types.Info
	pdvs *pdv.Result
	syms map[*types.Symbol]Prov
	rets map[string]Prov
}

func newProvenance(info *types.Info, pdvs *pdv.Result) *provenance {
	pr := &provenance{
		info: info,
		pdvs: pdvs,
		syms: map[*types.Symbol]Prov{},
		rets: map[string]Prov{},
	}
	pr.run()
	return pr
}

func (pr *provenance) run() {
	// Shared global pointers are shared roots by definition.
	for _, sym := range pr.info.Globals {
		if sym.Type != nil && types.ElemType(sym.Type).Kind == types.Pointer && sym.IsShared() {
			pr.syms[sym] = ProvShared
		}
	}
	for iter := 0; iter < 20; iter++ {
		if !pr.pass() {
			break
		}
	}
}

// pass applies every assignment once; reports whether anything changed.
func (pr *provenance) pass() bool {
	changed := false
	update := func(sym *types.Symbol, p Prov) {
		if sym == nil || p == ProvUnknown {
			return
		}
		// Shared global pointers stay shared regardless of what is
		// stored into them.
		if sym.Kind == types.GlobalVar && sym.IsShared() {
			return
		}
		nw := pr.syms[sym].join(p)
		if nw != pr.syms[sym] {
			pr.syms[sym] = nw
			changed = true
		}
	}

	for _, fn := range pr.info.File.Funcs {
		fname := fn.Name
		ast.Walk(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if id, ok := x.LHS.(*ast.Ident); ok {
					sym := pr.info.Uses[id]
					if sym != nil && sym.Type != nil && sym.Type.Kind == types.Pointer {
						update(sym, pr.ExprProv(x.RHS))
					}
				}
			case *ast.DeclStmt:
				if x.Init != nil {
					sym := pr.info.LocalDecls[x.Decl]
					if sym != nil && sym.Type != nil && sym.Type.Kind == types.Pointer {
						update(sym, pr.ExprProv(x.Init))
					}
				}
			case *ast.CallExpr:
				callee := pr.info.Funcs[x.Name]
				if callee != nil {
					for i, arg := range x.Args {
						if i < len(callee.Params) && callee.Params[i].Type.Kind == types.Pointer {
							update(callee.Params[i], pr.ExprProv(arg))
						}
					}
				}
			case *ast.ReturnStmt:
				fi := pr.info.Funcs[fname]
				if x.X != nil && fi != nil && fi.Ret.Kind == types.Pointer {
					nw := pr.rets[fname].join(pr.ExprProv(x.X))
					if nw != pr.rets[fname] {
						pr.rets[fname] = nw
						changed = true
					}
				}
			}
			return true
		})
	}
	return changed
}

// ExprProv computes the provenance of a pointer-valued expression.
func (pr *provenance) ExprProv(e ast.Expr) Prov {
	switch x := e.(type) {
	case *ast.Ident:
		sym := pr.info.Uses[x]
		if sym == nil {
			return ProvShared
		}
		if p, ok := pr.syms[sym]; ok {
			return p
		}
		return ProvUnknown
	case *ast.AllocExpr:
		// Freshly allocated storage belongs to the allocating process.
		return ProvPerProcess
	case *ast.FieldExpr:
		// Chasing a structure's own link field preserves ownership.
		return pr.ExprProv(x.X)
	case *ast.IndexExpr:
		// heads[pid-disjoint subscript] is a per-process root.
		baseT := pr.info.TypeOf(x.X)
		if baseT != nil && (baseT.Kind == types.Array || baseT.Kind == types.Pointer) {
			form := affine.Analyze(x.Index, pr.info, pr.pdvs)
			atom := rsd.FromSubscript(form, nil)
			r := rsd.RSD{atom}
			if r.PairwiseDisjoint(pr.pdvs.Nprocs()) {
				return ProvPerProcess
			}
		}
		// Indexing through a pointer stays within the block that
		// pointer owns: blocks[pid][i] is as per-process as
		// blocks[pid].
		if baseT != nil && baseT.Kind == types.Pointer {
			return pr.ExprProv(x.X)
		}
		return ProvShared
	case *ast.CallExpr:
		if p, ok := pr.rets[x.Name]; ok {
			return p
		}
		return ProvUnknown
	case *ast.IntLit:
		return ProvUnknown // null pointer
	case *ast.DerefExpr:
		return pr.ExprProv(x.X)
	}
	return ProvShared
}

// SymProv returns the provenance of a pointer symbol (shared when
// nothing better is known: unassigned pointers cannot be proven
// per-process).
func (pr *provenance) SymProv(s *types.Symbol) Prov {
	if p, ok := pr.syms[s]; ok && p != ProvUnknown {
		return p
	}
	return ProvShared
}
