package sideeffect

import (
	"strings"
	"testing"
)

func TestFuncFrequencies(t *testing.T) {
	src := `
shared int x;
void leaf() { x = x + 1; }
void hot() { leaf(); }
void cold() { leaf(); }
void main() {
    for (int i = 0; i < 100; i = i + 1) {
        hot();
    }
    if (x > 1000000) {
        cold();
    }
}
`
	_, sum := pipeline(t, src, 4)
	if sum.FuncFreq["main"] != 1 {
		t.Errorf("main freq = %f", sum.FuncFreq["main"])
	}
	if sum.FuncFreq["hot"] < 50 {
		t.Errorf("hot freq = %f, want ~100", sum.FuncFreq["hot"])
	}
	if sum.FuncFreq["cold"] > 1 {
		t.Errorf("cold freq = %f, want ~0.5", sum.FuncFreq["cold"])
	}
	// leaf inherits from both callers.
	if sum.FuncFreq["leaf"] <= sum.FuncFreq["hot"]*0.9 {
		t.Errorf("leaf freq = %f, want >= hot", sum.FuncFreq["leaf"])
	}
}

func TestUnreachableFunctionIgnored(t *testing.T) {
	src := `
shared int x;
shared int y;
void dead() { y = y + 1; }
void main() { x = 1; }
`
	_, sum := pipeline(t, src, 4)
	if sum.Object("global:y") != nil {
		t.Errorf("accesses in unreachable code must not be summarized")
	}
}

func TestRecursionConverges(t *testing.T) {
	src := `
shared int x;
int f(int n) {
    x = x + 1;
    if (n == 0) { return 0; }
    return f(n - 1);
}
void main() { f(10); }
`
	_, sum := pipeline(t, src, 4)
	xo := sum.Object("global:x")
	if xo == nil {
		t.Fatalf("missing summary")
	}
	// The frequency estimate must be finite (capped fixed point).
	if xo.WriteW <= 0 || xo.WriteW > 1e13 {
		t.Errorf("recursive weight = %f", xo.WriteW)
	}
}

func TestSummaryString(t *testing.T) {
	src := `
shared int a[16];
void main() {
    for (int r = 0; r < 10; r = r + 1) {
        a[pid] = a[pid] + 1;
    }
}
`
	_, sum := pipeline(t, src, 4)
	out := sum.String()
	for _, want := range []string{"global:a", "1*pid", "W", "R"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary string missing %q:\n%s", want, out)
		}
	}
}

func TestSortedObjectsDeterministic(t *testing.T) {
	src := `
shared int a;
shared int b;
shared int c;
void main() {
    a = 1;
    b = 1;
    c = 1;
}
`
	_, sum1 := pipeline(t, src, 4)
	_, sum2 := pipeline(t, src, 4)
	n1 := []string{}
	for _, o := range sum1.SortedObjects() {
		n1 = append(n1, o.Obj.Key())
	}
	n2 := []string{}
	for _, o := range sum2.SortedObjects() {
		n2 = append(n2, o.Obj.Key())
	}
	if len(n1) != len(n2) {
		t.Fatalf("lengths differ")
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Errorf("order differs at %d: %s vs %s", i, n1[i], n2[i])
		}
	}
}

func TestLockAccessesCounted(t *testing.T) {
	src := `
shared int x;
lock l;
void main() {
    acquire(l);
    x = x + 1;
    release(l);
}
`
	_, sum := pipeline(t, src, 4)
	lo := sum.Object("global:l")
	if lo == nil {
		t.Fatalf("no lock summary")
	}
	// acquire = read + write, release = write.
	if lo.ReadW != 1 || lo.WriteW != 2 {
		t.Errorf("lock weights r=%f w=%f, want 1/2", lo.ReadW, lo.WriteW)
	}
}
