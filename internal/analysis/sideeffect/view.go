package sideeffect

import (
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/rsd"
)

// View aggregates an object's accesses restricted to one phase.
// Non-concurrency analysis exists exactly for this: the dominant
// sharing pattern is judged per phase, so a one-time initialization
// sweep by process 0 does not mask the steady-state per-process
// pattern of the compute phases.
type View struct {
	Reads      []rsd.Weighted
	Writes     []rsd.Weighted
	ReadW      float64
	WriteW     float64
	ReadProcs  procs.Set
	WriteProcs procs.Set
	ReadProv   Prov
	WriteProv  Prov
}

// DominantPhase returns the phase carrying the most access weight for
// this object (phase 0 when the object has no phased accesses).
func (os *ObjectSummary) DominantPhase() int {
	best, bestW := 0, -1.0
	for p, w := range os.PhaseWeight {
		if w > bestW || (w == bestW && p < best) {
			best, bestW = p, w
		}
	}
	return best
}

// PhaseView builds the view of the object's accesses in one phase.
// Accesses with an empty phase set (code the phase analysis could not
// attribute) are conservatively included in every phase.
func (os *ObjectSummary) PhaseView(phase int, limit int) *View {
	v := &View{}
	for _, a := range os.Accesses {
		if !a.Phases.Empty() && !a.Phases.Has(phase) {
			continue
		}
		if a.Write {
			v.WriteW += a.Weight
			v.WriteProcs = v.WriteProcs.Union(a.Procs)
			v.Writes = rsd.Add(v.Writes, a.R, a.Weight, limit)
			v.WriteProv = v.WriteProv.join(a.Prov)
		} else {
			v.ReadW += a.Weight
			v.ReadProcs = v.ReadProcs.Union(a.Procs)
			v.Reads = rsd.Add(v.Reads, a.R, a.Weight, limit)
			v.ReadProv = v.ReadProv.join(a.Prov)
		}
	}
	return v
}

// PerProcessWrites reports whether, in this view, the write pattern is
// per-process: more than one process writes, and every pair of
// processes writes provably disjoint sections (across all write
// descriptors).
func (v *View) PerProcessWrites(nprocs int64) bool {
	return v.WriteW > 0 && perProcessDescs(v.Writes, nprocs)
}

// PerProcessReads is the read-side analogue.
func (v *View) PerProcessReads(nprocs int64) bool {
	return v.ReadW > 0 && perProcessDescs(v.Reads, nprocs)
}

// perProcessDescs checks cross-process disjointness over a descriptor
// list: for every pair of distinct processes and every pair of
// descriptors, the sections must be provably disjoint.
func perProcessDescs(list []rsd.Weighted, nprocs int64) bool {
	if len(list) == 0 {
		return false
	}
	for p := int64(0); p < nprocs; p++ {
		for q := int64(0); q < nprocs; q++ {
			if p == q {
				continue
			}
			for i := range list {
				for j := range list {
					if !crossDisjoint(list[i].R, list[j].R, p, q) {
						return false
					}
				}
			}
		}
	}
	return true
}

// crossDisjoint reports whether descriptor a's section for process p
// is provably disjoint from descriptor b's section for process q
// (disjoint in at least one common dimension).
func crossDisjoint(a, b rsd.RSD, p, q int64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return false
	}
	for d := 0; d < n; d++ {
		if rsd.DisjointSections(a[d].Section(p), b[d].Section(q)) {
			return true
		}
	}
	return false
}

// SpatialReads reports whether the read pattern has spatial locality:
// some read descriptor walks its innermost dimension with unit stride.
func (v *View) SpatialReads() bool {
	for _, r := range v.Reads {
		if r.R.InnerUnitStride() {
			return true
		}
	}
	return false
}

// SpatialWrites is the write-side analogue.
func (v *View) SpatialWrites() bool {
	for _, w := range v.Writes {
		if w.R.InnerUnitStride() {
			return true
		}
	}
	return false
}
