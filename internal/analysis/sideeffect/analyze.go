package sideeffect

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/analysis/affine"
	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/rsd"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
)

// Config tunes the analysis. The zero value is completed by
// (*Config).defaults to the paper's settings.
type Config struct {
	// Nprocs is the process (= processor) count assumed by the
	// analysis.
	Nprocs int
	// LoopWeight is the frequency multiplier for a loop whose trip
	// count is unknown (static profiling).
	LoopWeight float64
	// BranchWeight is the frequency multiplier per conditional level.
	BranchWeight float64
	// RSDLimit caps the descriptors kept per object (paper: 10).
	RSDLimit int
	// StaticProfiling can be disabled for ablation: all weights 1.
	StaticProfiling bool
	// UseTripCounts makes static profiling use known constant loop
	// trip counts instead of LoopWeight.
	UseTripCounts bool
}

func (c Config) defaults() Config {
	if c.Nprocs <= 0 {
		c.Nprocs = 12
	}
	if c.LoopWeight == 0 {
		c.LoopWeight = 10
	}
	if c.BranchWeight == 0 {
		c.BranchWeight = 0.5
	}
	if c.RSDLimit == 0 {
		c.RSDLimit = rsd.DefaultLimit
	}
	return c
}

// DefaultConfig returns the paper-default analysis configuration.
func DefaultConfig(nprocs int) Config {
	return Config{Nprocs: nprocs, StaticProfiling: true, UseTripCounts: true}.defaults()
}

// Access is one summarized side effect: a read or write of a shared
// object by a set of processes in a set of phases, with an estimated
// frequency weight.
type Access struct {
	Obj    Object
	R      rsd.RSD
	Write  bool
	Procs  procs.Set
	Phases nonconc.PhaseSet
	Weight float64
	Prov   Prov // provenance of the base pointer (field/heap objects)
	Pos    token.Pos
}

// ObjectSummary aggregates the accesses of one object.
type ObjectSummary struct {
	Obj        Object
	Reads      []rsd.Weighted
	Writes     []rsd.Weighted
	ReadW      float64
	WriteW     float64
	ReadProcs  procs.Set
	WriteProcs procs.Set
	// ReadProv/WriteProv join the provenance of pointer-based
	// accesses (fields and heap objects).
	ReadProv  Prov
	WriteProv Prov
	// PhaseWeight distributes total access weight over phases, for
	// dominant-pattern selection.
	PhaseWeight map[int]float64
	// Accesses keeps the raw accesses for diagnostics and tests.
	Accesses []*Access
}

// Summary is the program-wide side-effect summary.
type Summary struct {
	Config  Config
	Objects map[string]*ObjectSummary
	// FuncFreq is the interprocedural execution-frequency estimate per
	// function (main = 1).
	FuncFreq map[string]float64
	// RSD tallies descriptor-list maintenance across the analysis
	// (how often the paper's per-object cap forced lossy merging).
	RSD rsd.Counters
}

// Object returns the summary of one object key, or nil.
func (s *Summary) Object(key string) *ObjectSummary { return s.Objects[key] }

// SortedObjects returns object summaries ordered by total weight
// descending then name, for deterministic reporting.
func (s *Summary) SortedObjects() []*ObjectSummary {
	out := make([]*ObjectSummary, 0, len(s.Objects))
	for _, o := range s.Objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := out[i].ReadW+out[i].WriteW, out[j].ReadW+out[j].WriteW
		if wi != wj {
			return wi > wj
		}
		return out[i].Obj.Key() < out[j].Obj.Key()
	})
	return out
}

// String renders the summary for diagnostics.
func (s *Summary) String() string {
	var sb strings.Builder
	for _, o := range s.SortedObjects() {
		fmt.Fprintf(&sb, "%-24s rW=%9.1f wW=%9.1f rP=%s wP=%s rProv=%s wProv=%s\n",
			o.Obj.Key(), o.ReadW, o.WriteW, o.ReadProcs, o.WriteProcs, o.ReadProv, o.WriteProv)
		for _, w := range o.Writes {
			fmt.Fprintf(&sb, "    W %8.1f %s\n", w.Weight, w.R)
		}
		for _, r := range o.Reads {
			fmt.Fprintf(&sb, "    R %8.1f %s\n", r.Weight, r.R)
		}
	}
	return sb.String()
}

// Analyze runs the summary side-effect analysis over the whole
// program.
func Analyze(info *types.Info, prog *cfg.CallGraph, pdvs *pdv.Result,
	pr *procs.Result, ph *nonconc.Result, cfgc Config) *Summary {

	cfgc = cfgc.defaults()
	a := &analyzer{
		info: info, prog: prog, pdvs: pdvs, procsRes: pr, phases: ph,
		cfg:        cfgc,
		prov:       newProvenance(info, pdvs),
		siteWeight: map[*ast.CallExpr]float64{},
		sum: &Summary{
			Config:   cfgc,
			Objects:  map[string]*ObjectSummary{},
			FuncFreq: map[string]float64{},
		},
	}
	// Pass 1: walk every function once with unit weight, collecting
	// the (trip-count-aware) local weight of each call site.
	a.collecting = true
	for _, fn := range info.File.Funcs {
		a.functionWith(fn, 1)
	}
	a.collecting = false
	// Solve the interprocedural frequency fixed point from the
	// collected site weights.
	a.funcFrequencies()
	// Pass 2: the real walk, scaled by each function's frequency.
	for _, fn := range info.File.Funcs {
		a.functionWith(fn, a.sum.FuncFreq[fn.Name])
	}
	return a.sum
}

type analyzer struct {
	info     *types.Info
	prog     *cfg.CallGraph
	pdvs     *pdv.Result
	procsRes *procs.Result
	phases   *nonconc.Result
	cfg      Config
	prov     *provenance
	sum      *Summary

	// walking context
	fnName string
	graph  *cfg.Graph
	loops  []rsd.Loop
	weight float64
	// current statement context (procs/phases of the CFG node)
	curProcs  procs.Set
	curPhases nonconc.PhaseSet

	// collecting marks the first pass, which records trip-count-aware
	// call-site weights instead of emitting accesses.
	collecting bool
	siteWeight map[*ast.CallExpr]float64
}

// funcFrequencies estimates per-function execution frequencies by
// propagating the collected call-site weights from main to a fixed
// point (bounded iteration handles recursion).
func (a *analyzer) funcFrequencies() {
	for name := range a.prog.Graphs {
		a.sum.FuncFreq[name] = 0
	}
	a.sum.FuncFreq["main"] = 1
	for iter := 0; iter < 10; iter++ {
		changed := false
		next := map[string]float64{"main": 1}
		for _, site := range a.prog.Sites {
			if _, ok := a.prog.Graphs[site.Callee]; !ok {
				continue
			}
			next[site.Callee] += a.sum.FuncFreq[site.Caller] * a.siteWeight[site.Call]
		}
		const cap = 1e12
		for name := range a.prog.Graphs {
			v := next[name]
			if v > cap {
				v = cap
			}
			if name == "main" {
				v = 1
			}
			if v != a.sum.FuncFreq[name] {
				a.sum.FuncFreq[name] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// functionWith walks one function body at the given base weight.
func (a *analyzer) functionWith(fn *ast.FuncDecl, base float64) {
	a.fnName = fn.Name
	a.graph = a.prog.Graphs[fn.Name]
	a.loops = nil
	a.weight = base
	if a.weight == 0 {
		return // unreachable function
	}
	a.stmt(fn.Body)
}

// setStmtContext updates the per-statement process and phase sets.
func (a *analyzer) setStmtContext(s ast.Stmt) {
	a.curProcs = procs.All(a.procsRes.Nprocs)
	a.curPhases = 0
	if n, ok := a.graph.StmtNode[s]; ok {
		a.curProcs = a.procsRes.Node[n]
		if a.fnName == "main" {
			a.curPhases = a.phases.NodePhases[n]
		}
	}
	if a.fnName != "main" {
		a.curPhases = a.phases.FuncPhases[a.fnName]
	}
}

func (a *analyzer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			a.stmt(st)
		}
	case *ast.DeclStmt:
		if x.Init != nil {
			a.setStmtContext(s)
			a.read(x.Init)
		}
	case *ast.AssignStmt:
		a.setStmtContext(s)
		a.read(x.RHS)
		a.access(x.LHS, true)
	case *ast.ExprStmt:
		a.setStmtContext(s)
		a.read(x.X)
	case *ast.ReturnStmt:
		if x.X != nil {
			a.setStmtContext(s)
			a.read(x.X)
		}
	case *ast.AcquireStmt:
		a.setStmtContext(s)
		// Acquiring spins on the lock word: reads then a write.
		a.access(x.Lock, false)
		a.access(x.Lock, true)
	case *ast.ReleaseStmt:
		a.setStmtContext(s)
		a.access(x.Lock, true)
	case *ast.BarrierStmt:
		// synchronization only
	case *ast.IfStmt:
		a.setStmtContext(s)
		a.read(x.Cond)
		saved := a.weight
		if a.cfg.StaticProfiling {
			a.weight *= a.cfg.BranchWeight
		}
		a.stmt(x.Then)
		if x.Else != nil {
			a.stmt(x.Else)
		}
		a.weight = saved
	case *ast.WhileStmt:
		a.setStmtContext(s)
		a.read(x.Cond)
		saved := a.weight
		savedLoops := len(a.loops)
		if a.cfg.StaticProfiling {
			a.weight *= a.cfg.LoopWeight
		}
		// While loops carry no analyzable induction variable.
		a.stmt(x.Body)
		a.loops = a.loops[:savedLoops]
		a.weight = saved
	case *ast.ForStmt:
		a.forStmt(x)
	}
}

func (a *analyzer) forStmt(x *ast.ForStmt) {
	if x.Init != nil {
		a.stmt(x.Init)
	}
	a.setStmtContext(x)
	if x.Cond != nil {
		a.read(x.Cond)
	}

	loop, trip := a.loopInfo(x)
	saved := a.weight
	savedLoops := len(a.loops)
	if a.cfg.StaticProfiling {
		a.weight *= trip
	}
	if loop.IV != nil {
		a.loops = append(a.loops, loop)
	}
	a.stmt(x.Body)
	if x.Post != nil {
		a.stmt(x.Post)
	}
	a.loops = a.loops[:savedLoops]
	a.weight = saved
}

// loopInfo extracts the induction variable, bounds and step of a for
// loop and its estimated trip count.
func (a *analyzer) loopInfo(x *ast.ForStmt) (rsd.Loop, float64) {
	trip := a.cfg.LoopWeight
	var loop rsd.Loop

	ivSym, ivInit := forInduction(x, a.info)
	if ivSym == nil {
		return loop, trip
	}
	loop.IV = ivSym
	loop.Lo = affine.Analyze(ivInit, a.info, a.env())
	loop.Step = 1

	// Step from the post statement: i = i + c.
	if post, ok := x.Post.(*ast.AssignStmt); ok {
		if id, ok := post.LHS.(*ast.Ident); ok && a.info.Uses[id] == ivSym {
			form := affine.Analyze(post.RHS, a.info, &ivOnly{base: a.env(), iv: ivSym})
			if !form.Residue && form.IVCoef(ivSym) == 1 && form.Pid == 0 && len(form.IV) == 1 {
				loop.Step = form.Const
			} else {
				loop.Step = 0
			}
		}
	}

	// Bound from the condition: iv < U or iv <= U.
	if cond, ok := x.Cond.(*ast.BinaryExpr); ok && loop.Step > 0 {
		if id, ok := cond.X.(*ast.Ident); ok && a.info.Uses[id] == ivSym {
			hi := affine.Analyze(cond.Y, a.info, a.env())
			switch cond.Op {
			case token.LT:
				loop.Hi = hi
				loop.Bounded = hi.PidOnly() && loop.Lo.PidOnly()
			case token.LE:
				loop.Hi = hi.Add(affine.Constant(1))
				loop.Bounded = hi.PidOnly() && loop.Lo.PidOnly()
			}
		}
	}
	if loop.Step <= 0 {
		loop.Step = 1
		loop.Bounded = false
	}

	if a.cfg.UseTripCounts && loop.Bounded {
		// Known trip count: evaluate the span for a middle process.
		span := loop.Hi.Sub(loop.Lo)
		if span.PidOnly() {
			p := int64(a.cfg.Nprocs / 2)
			if v, ok := span.EvalPid(p); ok && v >= 0 {
				t := float64((v + loop.Step - 1) / loop.Step)
				if t < 1 {
					t = 1
				}
				trip = t
			}
		}
	}
	return loop, trip
}

// env layers the current loop stack over the PDV environment.
func (a *analyzer) env() affine.Env {
	return &loopEnv{pdvs: a.pdvs, loops: a.loops}
}

type loopEnv struct {
	pdvs  *pdv.Result
	loops []rsd.Loop
}

func (e *loopEnv) PDVValue(s *types.Symbol) (affine.Expr, bool) { return e.pdvs.PDVValue(s) }
func (e *loopEnv) Nprocs() int64                                { return e.pdvs.Nprocs() }
func (e *loopEnv) IsInduction(s *types.Symbol) bool {
	for _, l := range e.loops {
		if l.IV == s {
			return true
		}
	}
	return false
}

// ivOnly treats a single symbol as an induction variable (for step
// extraction).
type ivOnly struct {
	base affine.Env
	iv   *types.Symbol
}

func (e *ivOnly) PDVValue(s *types.Symbol) (affine.Expr, bool) { return e.base.PDVValue(s) }
func (e *ivOnly) Nprocs() int64                                { return e.base.Nprocs() }
func (e *ivOnly) IsInduction(s *types.Symbol) bool             { return s == e.iv }

func forInduction(f *ast.ForStmt, info *types.Info) (*types.Symbol, ast.Expr) {
	switch init := f.Init.(type) {
	case *ast.AssignStmt:
		if id, ok := init.LHS.(*ast.Ident); ok {
			return info.Uses[id], init.RHS
		}
	case *ast.DeclStmt:
		if init.Init != nil {
			return info.LocalDecls[init.Decl], init.Init
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Access extraction

// read walks an expression emitting read accesses for every shared
// object it touches.
func (a *analyzer) read(e ast.Expr) {
	if e == nil {
		return
	}
	a.access(e, false)
}

// access emits the access for the outermost designator of e (write
// when write is true) and read accesses for everything underneath.
func (a *analyzer) access(e ast.Expr, write bool) {
	switch x := e.(type) {
	case *ast.Ident:
		sym := a.info.Uses[x]
		if sym != nil && sym.IsShared() && sym.Type.IsScalar() {
			a.emit(GlobalObject(sym), nil, write, ProvUnknown, x.P)
		}
	case *ast.IndexExpr:
		a.indexAccess(x, write)
	case *ast.FieldExpr:
		f := a.info.FieldUses[x]
		if f != nil {
			p := a.prov.ExprProv(x.X)
			a.emit(FieldObject(f), nil, write, p, x.P)
		}
		a.read(x.X) // the base designator's own loads
	case *ast.DerefExpr:
		a.derefAccess(x, write)
	case *ast.BinaryExpr:
		a.read(x.X)
		a.read(x.Y)
	case *ast.UnaryExpr:
		a.read(x.X)
	case *ast.CallExpr:
		if a.collecting {
			a.siteWeight[x] += a.weight
		}
		for _, arg := range x.Args {
			a.read(arg)
		}
	case *ast.AllocExpr:
		if x.Count != nil {
			a.read(x.Count)
		}
	}
}

// indexAccess resolves an index chain a[i][j]... to its base and emits
// the access with a full descriptor.
func (a *analyzer) indexAccess(x *ast.IndexExpr, write bool) {
	// Peel the chain: innermost IndexExpr is the outermost dimension.
	var indices []ast.Expr
	base := ast.Expr(x)
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			break
		}
		indices = append([]ast.Expr{ix.Index}, indices...)
		base = ix.X
	}
	// Index expressions are themselves reads.
	for _, idx := range indices {
		a.read(idx)
	}

	atoms := make(rsd.RSD, len(indices))
	for i, idx := range indices {
		form := affine.Analyze(idx, a.info, a.env())
		atoms[i] = rsd.FromSubscript(form, a.loops)
	}

	switch b := base.(type) {
	case *ast.Ident:
		sym := a.info.Uses[b]
		if sym == nil {
			return
		}
		switch {
		case sym.IsShared() && sym.Type.Kind == types.Array:
			a.emit(GlobalObject(sym), atoms, write, ProvUnknown, x.P)
		case sym.Type != nil && sym.Type.Kind == types.Pointer:
			if sym.IsShared() {
				// Loading the pointer itself reads the global.
				a.emit(GlobalObject(sym), nil, false, ProvUnknown, b.P)
				a.emit(HeapViaObject(sym), atoms, write, ProvShared, x.P)
			} else {
				p := a.prov.SymProv(sym)
				a.emit(HeapTypeObject(sym.Type.Elem), atoms, write, p, x.P)
			}
		}
	case *ast.FieldExpr:
		// Indexing an array field: attribute to the field object.
		f := a.info.FieldUses[b]
		if f != nil {
			p := a.prov.ExprProv(b.X)
			a.emit(FieldObject(f), atoms, write, p, x.P)
		}
		a.read(b.X)
	default:
		// Other bases (calls returning pointers): attribute by type.
		t := a.info.TypeOf(base)
		if t != nil && t.Kind == types.Pointer {
			a.emit(HeapTypeObject(t.Elem), atoms, write, a.prov.ExprProv(base), x.P)
		}
		a.read(base)
	}
}

// derefAccess handles *p.
func (a *analyzer) derefAccess(x *ast.DerefExpr, write bool) {
	point := rsd.RSD{rsd.Point(affine.Constant(0))}
	switch b := x.X.(type) {
	case *ast.Ident:
		sym := a.info.Uses[b]
		if sym == nil || sym.Type == nil || sym.Type.Kind != types.Pointer {
			return
		}
		if sym.IsShared() {
			a.emit(GlobalObject(sym), nil, false, ProvUnknown, b.P)
			a.emit(HeapViaObject(sym), point, write, ProvShared, x.P)
		} else {
			a.emit(HeapTypeObject(sym.Type.Elem), point, write, a.prov.SymProv(sym), x.P)
		}
	default:
		a.read(x.X)
		t := a.info.TypeOf(x.X)
		if t != nil && t.Kind == types.Pointer {
			a.emit(HeapTypeObject(t.Elem), point, write, a.prov.ExprProv(x.X), x.P)
		}
	}
}

// emit records one access into the summary (suppressed during the
// call-site-weight collection pass).
func (a *analyzer) emit(obj Object, r rsd.RSD, write bool, prov Prov, pos token.Pos) {
	if a.collecting {
		return
	}
	key := obj.Key()
	os := a.sum.Objects[key]
	if os == nil {
		os = &ObjectSummary{Obj: obj, PhaseWeight: map[int]float64{}}
		a.sum.Objects[key] = os
	}
	acc := &Access{
		Obj: obj, R: r, Write: write,
		Procs: a.curProcs, Phases: a.curPhases,
		Weight: a.weight, Prov: prov, Pos: pos,
	}
	os.Accesses = append(os.Accesses, acc)
	if write {
		os.WriteW += acc.Weight
		os.WriteProcs = os.WriteProcs.Union(acc.Procs)
		os.Writes = rsd.AddCounted(os.Writes, r, acc.Weight, a.cfg.RSDLimit, &a.sum.RSD)
		os.WriteProv = os.WriteProv.join(prov)
	} else {
		os.ReadW += acc.Weight
		os.ReadProcs = os.ReadProcs.Union(acc.Procs)
		os.Reads = rsd.AddCounted(os.Reads, r, acc.Weight, a.cfg.RSDLimit, &a.sum.RSD)
		os.ReadProv = os.ReadProv.join(prov)
	}
	for _, p := range acc.Phases.Phases() {
		os.PhaseWeight[p] += acc.Weight
	}
}
