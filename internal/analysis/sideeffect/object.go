// Package sideeffect implements stage 3 of the compile-time analysis:
// an interprocedural, flow-insensitive summary side-effect analysis
// with static profiling, producing per-process, per-phase read/write
// summaries of every shared data object as bounded regular section
// descriptors.
package sideeffect

import (
	"falseshare/internal/lang/types"
)

// ObjKind classifies the shared data objects the analysis tracks.
type ObjKind int

const (
	// GlobalObj is a shared file-scope scalar or array (including
	// locks, whose storage class distinguishes them).
	GlobalObj ObjKind = iota
	// FieldObj is a struct field, aggregated over all instances of the
	// struct (the granularity at which indirection applies).
	FieldObj
	// HeapViaObj is the heap block reachable through a shared global
	// pointer, e.g. the array assigned to "shared double *work".
	HeapViaObj
	// HeapTypeObj aggregates heap storage of one element type reached
	// through local pointers with no better name.
	HeapTypeObj
)

func (k ObjKind) String() string {
	switch k {
	case GlobalObj:
		return "global"
	case FieldObj:
		return "field"
	case HeapViaObj:
		return "heap-via"
	case HeapTypeObj:
		return "heap-type"
	}
	return "obj?"
}

// Object identifies one shared data object.
type Object struct {
	Kind  ObjKind
	Name  string        // global name, "Struct.field", "*global", or "heap.T"
	Sym   *types.Symbol // GlobalObj, HeapViaObj: the global symbol
	Field *types.Field  // FieldObj: the field
}

// Key returns the map key for the object.
func (o Object) Key() string { return o.Kind.String() + ":" + o.Name }

// IsLock reports whether the object is a lock variable.
func (o Object) IsLock() bool {
	return o.Kind == GlobalObj && o.Sym != nil && o.Sym.Type != nil &&
		types.ElemType(o.Sym.Type).Kind == types.LockT
}

// GlobalObject builds the object for a shared global symbol.
func GlobalObject(sym *types.Symbol) Object {
	return Object{Kind: GlobalObj, Name: sym.Name, Sym: sym}
}

// FieldObject builds the object for a struct field.
func FieldObject(f *types.Field) Object {
	return Object{Kind: FieldObj, Name: f.QualifiedName(), Field: f}
}

// HeapViaObject builds the object for the heap block behind a shared
// global pointer.
func HeapViaObject(sym *types.Symbol) Object {
	return Object{Kind: HeapViaObj, Name: "*" + sym.Name, Sym: sym}
}

// HeapTypeObject builds the aggregate object for heap storage of one
// element type.
func HeapTypeObject(t *types.Type) Object {
	return Object{Kind: HeapTypeObj, Name: "heap." + t.String()}
}
