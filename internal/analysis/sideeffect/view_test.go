package sideeffect

import (
	"testing"

	"falseshare/internal/analysis/affine"
	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/rsd"
	"falseshare/internal/lang/types"
)

// mkAccess builds a synthetic access for view tests.
func mkAccess(write bool, phase int, procset procs.Set, w float64, r rsd.RSD, prov Prov) *Access {
	var ps nonconc.PhaseSet
	ps = ps.Add(phase)
	return &Access{
		R: r, Write: write, Procs: procset, Phases: ps, Weight: w, Prov: prov,
	}
}

func pidPoint() rsd.RSD { return rsd.RSD{rsd.Point(affine.PidTerm(0, 1))} }

func TestDominantPhase(t *testing.T) {
	os := &ObjectSummary{PhaseWeight: map[int]float64{0: 5, 1: 100, 2: 3}}
	if got := os.DominantPhase(); got != 1 {
		t.Errorf("dominant = %d", got)
	}
	empty := &ObjectSummary{PhaseWeight: map[int]float64{}}
	if got := empty.DominantPhase(); got != 0 {
		t.Errorf("empty dominant = %d", got)
	}
}

func TestPhaseViewFilters(t *testing.T) {
	os := &ObjectSummary{PhaseWeight: map[int]float64{}}
	os.Accesses = []*Access{
		mkAccess(true, 0, procs.Single(0), 10, pidPoint(), ProvUnknown),
		mkAccess(true, 1, procs.All(4), 50, pidPoint(), ProvUnknown),
		mkAccess(false, 1, procs.All(4), 20, pidPoint(), ProvUnknown),
	}
	v0 := os.PhaseView(0, 10)
	if v0.WriteW != 10 || v0.ReadW != 0 {
		t.Errorf("phase 0 view: %+v", v0)
	}
	v1 := os.PhaseView(1, 10)
	if v1.WriteW != 50 || v1.ReadW != 20 {
		t.Errorf("phase 1 view: %+v", v1)
	}
	if v1.WriteProcs != procs.All(4) {
		t.Errorf("phase 1 procs: %s", v1.WriteProcs)
	}
}

func TestPhaselessAccessInEveryView(t *testing.T) {
	os := &ObjectSummary{PhaseWeight: map[int]float64{}}
	a := mkAccess(true, 0, procs.All(2), 5, pidPoint(), ProvUnknown)
	a.Phases = 0 // unattributed
	os.Accesses = []*Access{a}
	for _, ph := range []int{0, 1, 7} {
		if v := os.PhaseView(ph, 10); v.WriteW != 5 {
			t.Errorf("phase %d misses the unattributed access", ph)
		}
	}
}

func TestPerProcessWritesView(t *testing.T) {
	v := &View{
		WriteW: 10,
		Writes: []rsd.Weighted{{R: pidPoint(), Weight: 10}},
	}
	if !v.PerProcessWrites(8) {
		t.Errorf("pid points must be per-process")
	}
	// Adding an overlapping descriptor breaks it.
	v.Writes = append(v.Writes, rsd.Weighted{R: rsd.RSD{rsd.Point(affine.Constant(3))}, Weight: 1})
	if v.PerProcessWrites(8) {
		t.Errorf("overlapping constant point must break per-process writes")
	}
}

func TestSpatialViews(t *testing.T) {
	unit := rsd.RSD{rsd.FromSubscript(affine.Expr{IV: nil}, nil)}
	_ = unit
	rangeUnit := rsd.RSD{rsd.Atom{
		Known: true,
		Base:  affine.Constant(0),
		Terms: []rsd.IVTerm{{Coef: 1, Step: 1, Bounded: true,
			Lo: affine.Constant(0), Hi: affine.Constant(64)}},
	}}
	v := &View{Reads: []rsd.Weighted{{R: rangeUnit, Weight: 1}}}
	if !v.SpatialReads() {
		t.Errorf("unit-stride range must have spatial locality")
	}
	v2 := &View{Writes: []rsd.Weighted{{R: pidPoint(), Weight: 1}}}
	if v2.SpatialWrites() {
		t.Errorf("points have no spatial locality")
	}
}

func TestProvJoin(t *testing.T) {
	cases := []struct{ a, b, want Prov }{
		{ProvUnknown, ProvUnknown, ProvUnknown},
		{ProvUnknown, ProvPerProcess, ProvPerProcess},
		{ProvPerProcess, ProvPerProcess, ProvPerProcess},
		{ProvPerProcess, ProvShared, ProvShared},
		{ProvShared, ProvUnknown, ProvShared},
	}
	for _, tc := range cases {
		if got := tc.a.join(tc.b); got != tc.want {
			t.Errorf("join(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestObjectHelpers(t *testing.T) {
	sym := &types.Symbol{Name: "g", Kind: types.GlobalVar}
	g := GlobalObject(sym)
	if g.Kind != GlobalObj || g.Key() != "global:g" {
		t.Errorf("GlobalObject: %+v", g)
	}
	hv := HeapViaObject(sym)
	if hv.Name != "*g" || hv.Key() != "heap-via:*g" {
		t.Errorf("HeapViaObject: %+v", hv)
	}
	ht := HeapTypeObject(types.IntType)
	if ht.Name != "heap.int" || ht.Key() != "heap-type:heap.int" {
		t.Errorf("heap type object: %+v", ht)
	}
}
