package sideeffect

import (
	"testing"

	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

// pipeline runs the full front end + analysis stages over src.
func pipeline(t *testing.T, src string, nprocs int) (*types.Info, *Summary) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog := cfg.BuildProgram(f)
	pdvs := pdv.Analyze(info, int64(nprocs))
	pr := procs.Analyze(prog, info, pdvs, nprocs)
	ph, err := nonconc.Analyze(prog)
	if err != nil {
		t.Fatalf("nonconc: %v", err)
	}
	sum := Analyze(info, prog, pdvs, pr, ph, DefaultConfig(nprocs))
	return info, sum
}

func TestBlockCyclicPartitionIsPerProcess(t *testing.T) {
	// The canonical cyclic partition: a[pid + i*nprocs]. Writes by
	// different processes hit disjoint (congruence-separated) sets.
	src := `
shared int a[256];
void main() {
    for (int i = 0; pid + i * nprocs < 256; i = i + 1) {
        a[pid + i * nprocs] = 1;
    }
}
`
	// Rewrite with a bounded loop for the analysis.
	src = `
shared int a[256];
void main() {
    int n;
    n = 256 / nprocs;
    for (int i = 0; i < n; i = i + 1) {
        a[pid + i * nprocs] = 1;
    }
}
`
	_, sum := pipeline(t, src, 4)
	os := sum.Object("global:a")
	if os == nil {
		t.Fatalf("no summary for a:\n%s", sum)
	}
	if len(os.Writes) != 1 {
		t.Fatalf("writes: %+v", os.Writes)
	}
	r := os.Writes[0].R
	if !r.PairwiseDisjoint(4) {
		t.Errorf("cyclic partition not proven disjoint: %s", r)
	}
	if !r.DependsOnPid() {
		t.Errorf("descriptor should depend on pid: %s", r)
	}
}

func TestBlockPartitionIsPerProcess(t *testing.T) {
	src := `
shared double a[240];
void main() {
    int chunk;
    int lo;
    chunk = 240 / nprocs;
    lo = pid * chunk;
    for (int i = lo; i < lo + chunk; i = i + 1) {
        a[i] = a[i] + 1.0;
    }
}
`
	_, sum := pipeline(t, src, 12)
	os := sum.Object("global:a")
	if os == nil {
		t.Fatalf("no summary for a")
	}
	if len(os.Writes) != 1 {
		t.Fatalf("writes: %v", os.Writes)
	}
	r := os.Writes[0].R
	if !r.PairwiseDisjoint(12) {
		t.Errorf("block partition not proven disjoint: %s", r)
	}
	if !r.InnerUnitStride() {
		t.Errorf("block partition should be unit stride: %s", r)
	}
	// Reads also occur (a[i] on the RHS).
	if os.ReadW <= 0 {
		t.Errorf("expected read weight, got %f", os.ReadW)
	}
}

func TestPidColumnAccess2D(t *testing.T) {
	// w[i][pid]: adjacent elements in a row belong to different
	// processes — the group & transpose target shape.
	src := `
shared int w[128][16];
void main() {
    for (int i = 0; i < 128; i = i + 1) {
        w[i][pid] = w[i][pid] + 1;
    }
}
`
	_, sum := pipeline(t, src, 12)
	os := sum.Object("global:w")
	if os == nil {
		t.Fatalf("no summary for w")
	}
	r := os.Writes[0].R
	if len(r) != 2 {
		t.Fatalf("descriptor rank = %d, want 2: %s", len(r), r)
	}
	if got := r.PidDim(); got != 1 {
		t.Errorf("pid dimension = %d, want 1 (%s)", got, r)
	}
	if !r.PairwiseDisjoint(12) {
		t.Errorf("column partition not disjoint: %s", r)
	}
}

func TestSharedScalarWrites(t *testing.T) {
	src := `
shared int counter;
lock l;
void main() {
    for (int i = 0; i < 100; i = i + 1) {
        acquire(l);
        counter = counter + 1;
        release(l);
    }
}
`
	_, sum := pipeline(t, src, 8)
	os := sum.Object("global:counter")
	if os == nil {
		t.Fatalf("no summary for counter")
	}
	if os.WriteProcs.Count() != 8 {
		t.Errorf("counter written by %s, want all 8", os.WriteProcs)
	}
	lk := sum.Object("global:l")
	if lk == nil || !lk.Obj.IsLock() {
		t.Fatalf("lock object missing or misclassified: %+v", lk)
	}
	if lk.WriteW <= 0 {
		t.Errorf("lock should have write weight")
	}
}

func TestPerProcessBranchRestrictsProcs(t *testing.T) {
	src := `
shared int flag;
shared int a[64];
void init() {
    for (int i = 0; i < 64; i = i + 1) {
        a[i] = 0;
    }
}
void main() {
    if (pid == 0) {
        init();
        flag = 1;
    }
    barrier;
    a[pid] = a[pid] + 1;
}
`
	_, sum := pipeline(t, src, 8)
	os := sum.Object("global:flag")
	if os == nil {
		t.Fatalf("no summary for flag")
	}
	if os.WriteProcs.Count() != 1 || !os.WriteProcs.Has(0) {
		t.Errorf("flag written by %s, want {0}", os.WriteProcs)
	}
	// The init() callee's stores should also be attributed to proc 0.
	ao := sum.Object("global:a")
	if ao == nil {
		t.Fatalf("no summary for a")
	}
	// a is written both by init (proc 0) and by everyone after the
	// barrier, so the union is all.
	if ao.WriteProcs.Count() != 8 {
		t.Errorf("a written by %s", ao.WriteProcs)
	}
	// But there must exist an access restricted to {0}.
	found := false
	for _, acc := range ao.Accesses {
		if acc.Write && acc.Procs.Count() == 1 && acc.Procs.Has(0) {
			found = true
		}
	}
	if !found {
		t.Errorf("no write access attributed to proc 0 only")
	}
}

func TestPhasesSplitAtBarriers(t *testing.T) {
	src := `
shared int a[64];
shared int b[64];
void main() {
    a[pid] = 1;
    barrier;
    b[pid] = a[pid];
}
`
	_, sum := pipeline(t, src, 4)
	ao := sum.Object("global:a")
	bo := sum.Object("global:b")
	if ao == nil || bo == nil {
		t.Fatalf("missing summaries")
	}
	// a is written in phase 0, b in phase 1.
	if ao.PhaseWeight[0] <= 0 {
		t.Errorf("a phase weights: %v", ao.PhaseWeight)
	}
	if bo.PhaseWeight[1] <= 0 {
		t.Errorf("b phase weights: %v", bo.PhaseWeight)
	}
}

func TestFieldProvenancePerProcess(t *testing.T) {
	// The Pverify shape: per-process lists hung off a PDV-indexed
	// array of heads; the count field is per-process data embedded in
	// dynamic structures — the indirection target.
	src := `
struct Node {
    int count;
    struct Node *next;
};
shared struct Node *heads[16];
void main() {
    struct Node *p;
    struct Node *n;
    n = alloc(struct Node);
    n->next = 0;
    heads[pid] = n;
    barrier;
    for (int i = 0; i < 100; i = i + 1) {
        p = heads[pid];
        while (p != 0) {
            p->count = p->count + 1;
            p = p->next;
        }
    }
}
`
	_, sum := pipeline(t, src, 8)
	co := sum.Object("field:Node.count")
	if co == nil {
		t.Fatalf("no summary for Node.count:\n%s", sum)
	}
	if co.WriteProv != ProvPerProcess {
		t.Errorf("Node.count write provenance = %s, want per-process", co.WriteProv)
	}
	if co.WriteW <= 0 || co.ReadW <= 0 {
		t.Errorf("count weights: r=%f w=%f", co.ReadW, co.WriteW)
	}
}

func TestFieldProvenanceShared(t *testing.T) {
	// A single shared list traversed by everyone: fields stay shared.
	src := `
struct Node {
    int count;
    struct Node *next;
};
shared struct Node *head;
void main() {
    struct Node *p;
    p = head;
    while (p != 0) {
        p->count = p->count + 1;
        p = p->next;
    }
}
`
	_, sum := pipeline(t, src, 8)
	co := sum.Object("field:Node.count")
	if co == nil {
		t.Fatalf("no summary for Node.count")
	}
	if co.WriteProv != ProvShared {
		t.Errorf("Node.count write provenance = %s, want shared", co.WriteProv)
	}
}

func TestUnknownBaseKeepsStride(t *testing.T) {
	// The Topopt shape: a revolving partition whose base comes from
	// shared memory — per-process undetectable, but unit stride.
	src := `
shared int part[256];
shared int base;
void main() {
    int b;
    b = base;
    for (int i = 0; i < 32; i = i + 1) {
        part[b + i] = 1;
    }
}
`
	_, sum := pipeline(t, src, 8)
	po := sum.Object("global:part")
	if po == nil {
		t.Fatalf("no summary for part")
	}
	r := po.Writes[0].R
	if len(r) != 1 {
		t.Fatalf("rank: %s", r)
	}
	if r[0].Known {
		t.Errorf("base should be unknown: %s", r)
	}
	if !r[0].UnitStride() {
		t.Errorf("stride should be unit: %s", r)
	}
	if r.PairwiseDisjoint(8) {
		t.Errorf("unknown base must not be proven disjoint")
	}
}

func TestStaticProfilingWeights(t *testing.T) {
	src := `
shared int hot;
shared int cold;
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        hot = hot + 1;
        if (hot > 999) {
            if (hot > 1000) {
                cold = cold + 1;
            }
        }
    }
}
`
	_, sum := pipeline(t, src, 4)
	hot := sum.Object("global:hot")
	cold := sum.Object("global:cold")
	if hot == nil || cold == nil {
		t.Fatalf("missing summaries")
	}
	if hot.WriteW <= cold.WriteW*2 {
		t.Errorf("static profiling should weight hot >> cold: hot=%f cold=%f", hot.WriteW, cold.WriteW)
	}
}

func TestProfilingAblation(t *testing.T) {
	src := `
shared int x;
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        x = x + 1;
    }
}
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	prog := cfg.BuildProgram(f)
	pdvs := pdv.Analyze(info, 4)
	pr := procs.Analyze(prog, info, pdvs, 4)
	ph, err := nonconc.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := Config{Nprocs: 4, StaticProfiling: false}
	sum := Analyze(info, prog, pdvs, pr, ph, cfgOff)
	xo := sum.Object("global:x")
	if xo.WriteW != 1 {
		t.Errorf("profiling off: write weight = %f, want 1", xo.WriteW)
	}
}

func TestHeapViaGlobalPointer(t *testing.T) {
	src := `
shared double *work;
void main() {
    if (pid == 0) {
        work = alloc(double, 120);
    }
    barrier;
    int chunk;
    int lo;
    chunk = 120 / nprocs;
    lo = pid * chunk;
    for (int i = lo; i < lo + chunk; i = i + 1) {
        work[i] = 1.0;
    }
}
`
	_, sum := pipeline(t, src, 12)
	wo := sum.Object("heap-via:*work")
	if wo == nil {
		t.Fatalf("no summary for *work:\n%s", sum)
	}
	if !wo.Writes[0].R.PairwiseDisjoint(12) {
		t.Errorf("heap block partition not disjoint: %s", wo.Writes[0].R)
	}
	// Loading the pointer itself must register reads of the global.
	g := sum.Object("global:work")
	if g == nil || g.ReadW <= 0 {
		t.Errorf("pointer loads not recorded")
	}
}
