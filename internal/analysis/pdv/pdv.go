// Package pdv detects process differentiating variables (PDVs).
//
// A PDV is a private variable whose value differs across processes and
// is invariant over the lifetime of a process (paper §2, §3.1). The
// built-in pid is the seed; other variables become PDVs when their
// single assignment copies an affine function of pid (the fork-loop
// induction variable pattern of Figure 1). Variables with constant
// values are tracked too: they feed loop-bound and subscript analysis.
package pdv

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/analysis/affine"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/types"
)

// Result holds the discovered per-symbol affine values. It implements
// affine.Env (with no induction variables in scope) so later stages can
// layer loop contexts on top of it.
type Result struct {
	Values map[*types.Symbol]affine.Expr
	nprocs int64
}

// PDVValue returns the affine value of a symbol if known.
func (r *Result) PDVValue(s *types.Symbol) (affine.Expr, bool) {
	v, ok := r.Values[s]
	return v, ok
}

// IsInduction always reports false: the base environment has no loops
// in scope.
func (r *Result) IsInduction(*types.Symbol) bool { return false }

// Nprocs returns the configured process count.
func (r *Result) Nprocs() int64 { return r.nprocs }

// IsPDV reports whether the symbol's value actually varies across
// processes (nonzero pid coefficient).
func (r *Result) IsPDV(s *types.Symbol) bool {
	v, ok := r.Values[s]
	return ok && v.Pid != 0
}

// String lists the discovered PDVs for diagnostics.
func (r *Result) String() string {
	type entry struct {
		name string
		v    affine.Expr
	}
	var entries []entry
	for s, v := range r.Values {
		name := s.Name
		if s.Func != "" {
			name = s.Func + "." + s.Name
		}
		entries = append(entries, entry{name, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%s = %s\n", e.name, e.v)
	}
	return sb.String()
}

// assignment is one static definition of a scalar symbol.
type assignment struct {
	sym *types.Symbol
	rhs ast.Expr
}

// Analyze finds PDVs and constant-valued private scalars for the given
// process count.
func Analyze(info *types.Info, nprocs int64) *Result {
	res := &Result{Values: map[*types.Symbol]affine.Expr{}, nprocs: nprocs}

	// Collect every static assignment to a scalar symbol, and the
	// argument expressions flowing into each parameter.
	defs := map[*types.Symbol][]assignment{}
	paramArgs := map[*types.Symbol][]ast.Expr{}

	record := func(sym *types.Symbol, rhs ast.Expr) {
		if sym == nil {
			return
		}
		defs[sym] = append(defs[sym], assignment{sym, rhs})
	}

	for _, fn := range info.File.Funcs {
		fi := info.Funcs[fn.Name]
		if fi == nil {
			continue
		}
		ast.Walk(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if id, ok := x.LHS.(*ast.Ident); ok {
					record(info.Uses[id], x.RHS)
				}
			case *ast.DeclStmt:
				if x.Init != nil {
					record(info.LocalDecls[x.Decl], x.Init)
				}
			case *ast.CallExpr:
				callee := info.Funcs[x.Name]
				if callee != nil {
					for i, arg := range x.Args {
						if i < len(callee.Params) {
							p := callee.Params[i]
							paramArgs[p] = append(paramArgs[p], arg)
						}
					}
				}
			}
			return true
		})
	}

	// Fixed point: a symbol's value becomes known when its single
	// definition (or all parameter arguments) evaluate to the same
	// pid-only affine form under the current map.
	for iter := 0; iter < 20; iter++ {
		changed := false

		for sym, ds := range defs {
			if _, done := res.Values[sym]; done {
				continue
			}
			if !candidate(sym) || len(ds) != 1 {
				continue
			}
			v := affine.Analyze(ds[0].rhs, info, res)
			if v.PidOnly() {
				res.Values[sym] = v
				changed = true
			}
		}

		for p, args := range paramArgs {
			if _, done := res.Values[p]; done {
				continue
			}
			if p.Type == nil || p.Type.Kind != types.Int {
				continue
			}
			// A parameter is a PDV only when every call site passes the
			// same pid-only affine value and it is never reassigned in
			// the body.
			if len(defs[p]) > 0 {
				continue
			}
			var val affine.Expr
			ok := true
			for i, a := range args {
				v := affine.Analyze(a, info, res)
				if !v.PidOnly() {
					ok = false
					break
				}
				if i == 0 {
					val = v
				} else if v.Const != val.Const || v.Pid != val.Pid {
					ok = false
					break
				}
			}
			if ok && len(args) > 0 {
				res.Values[p] = val
				changed = true
			}
		}

		if !changed {
			break
		}
	}
	return res
}

// candidate reports whether a symbol may carry a PDV or constant
// value: private file-scope int scalars and local int scalars.
// Parameters are excluded here and handled through call-site argument
// joins.
func candidate(s *types.Symbol) bool {
	if s.Type == nil || s.Type.Kind != types.Int {
		return false
	}
	switch s.Kind {
	case types.GlobalVar:
		return s.Storage == ast.Private
	case types.LocalVar:
		return true
	}
	return false
}
