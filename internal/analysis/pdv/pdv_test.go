package pdv

import (
	"strings"
	"testing"

	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

func analyze(t *testing.T, src string, nprocs int64) (*types.Info, *Result) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info, Analyze(info, nprocs)
}

// symbol finds a global or a local of main by name.
func symbol(t *testing.T, info *types.Info, name string) *types.Symbol {
	t.Helper()
	if s, ok := info.Globals[name]; ok {
		return s
	}
	for _, s := range info.Funcs["main"].Locals {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("symbol %q not found", name)
	return nil
}

func TestDirectCopy(t *testing.T) {
	info, res := analyze(t, `
private int myid;
void main() {
    myid = pid;
}
`, 8)
	s := symbol(t, info, "myid")
	v, ok := res.PDVValue(s)
	if !ok || v.Pid != 1 || v.Const != 0 {
		t.Fatalf("myid value = %v, ok=%v", v, ok)
	}
	if !res.IsPDV(s) {
		t.Errorf("myid should be a PDV")
	}
}

func TestAffineChain(t *testing.T) {
	info, res := analyze(t, `
private int myid;
private int base;
private int chunk;
void main() {
    myid = pid;
    chunk = 120 / nprocs;
    base = myid * chunk + 5;
}
`, 8)
	chunk := symbol(t, info, "chunk")
	if v, ok := res.PDVValue(chunk); !ok || v.Const != 15 || v.Pid != 0 {
		t.Fatalf("chunk = %v, ok=%v", v, ok)
	}
	if res.IsPDV(chunk) {
		t.Errorf("chunk is constant, not a PDV")
	}
	base := symbol(t, info, "base")
	v, ok := res.PDVValue(base)
	if !ok || v.Pid != 15 || v.Const != 5 {
		t.Fatalf("base = %v, ok=%v", v, ok)
	}
}

func TestMultipleAssignmentsDisqualify(t *testing.T) {
	info, res := analyze(t, `
private int x;
void main() {
    x = pid;
    x = x + 1;
}
`, 8)
	if _, ok := res.PDVValue(symbol(t, info, "x")); ok {
		t.Errorf("reassigned variable must not be a PDV")
	}
}

func TestNonAffineDisqualifies(t *testing.T) {
	info, res := analyze(t, `
shared int g;
private int x;
void main() {
    x = g;
}
`, 8)
	if _, ok := res.PDVValue(symbol(t, info, "x")); ok {
		t.Errorf("value loaded from shared memory must not be a PDV")
	}
}

func TestParameterPDV(t *testing.T) {
	src := `
shared int a[64];
void work(int id) {
    a[id] = 1;
}
void main() {
    work(pid * 2);
}
`
	info, res := analyze(t, src, 8)
	p := info.Funcs["work"].Params[0]
	v, ok := res.PDVValue(p)
	if !ok || v.Pid != 2 {
		t.Fatalf("param value = %v, ok=%v", v, ok)
	}
}

func TestParameterConflictingSites(t *testing.T) {
	src := `
shared int a[64];
void work(int id) {
    a[id] = 1;
}
void main() {
    work(pid);
    work(pid + 1);
}
`
	info, res := analyze(t, src, 8)
	p := info.Funcs["work"].Params[0]
	if _, ok := res.PDVValue(p); ok {
		t.Errorf("parameter with conflicting call sites must not be a PDV")
	}
}

func TestParameterReassignedInBody(t *testing.T) {
	src := `
shared int a[64];
void work(int id) {
    id = id + 1;
    a[id] = 1;
}
void main() {
    work(pid);
}
`
	info, res := analyze(t, src, 8)
	p := info.Funcs["work"].Params[0]
	if _, ok := res.PDVValue(p); ok {
		t.Errorf("reassigned parameter must not be a PDV")
	}
}

func TestLoopInductionNotPDV(t *testing.T) {
	info, res := analyze(t, `
shared int a[64];
void main() {
    for (int i = 0; i < 8; i = i + 1) {
        a[i] = 1;
    }
}
`, 8)
	// i has two assignments (init + post): not a PDV.
	var iSym *types.Symbol
	for _, s := range info.Funcs["main"].Locals {
		if s.Name == "i" {
			iSym = s
		}
	}
	if _, ok := res.PDVValue(iSym); ok {
		t.Errorf("loop induction variable must not be a PDV")
	}
}

func TestString(t *testing.T) {
	_, res := analyze(t, `
private int myid;
void main() { myid = pid; }
`, 4)
	if !strings.Contains(res.String(), "myid = 1*pid") {
		t.Errorf("String():\n%s", res.String())
	}
}

func TestNprocsSubstitution(t *testing.T) {
	info, res := analyze(t, `
private int half;
void main() { half = nprocs / 2; }
`, 12)
	v, ok := res.PDVValue(symbol(t, info, "half"))
	if !ok || v.Const != 6 {
		t.Fatalf("half = %v (nprocs must be substituted)", v)
	}
	if res.Nprocs() != 12 {
		t.Errorf("Nprocs = %d", res.Nprocs())
	}
}
