package affine

import (
	"testing"
	"testing/quick"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

// env is a test environment with one PDV ("myid" = pid) and one
// constant ("chunk" = 20), over 4 processes.
type env struct {
	info *types.Info
}

func (e *env) PDVValue(s *types.Symbol) (Expr, bool) {
	switch s.Name {
	case "myid":
		return PidTerm(0, 1), true
	case "chunk":
		return Constant(20), true
	}
	return Expr{}, false
}
func (e *env) IsInduction(s *types.Symbol) bool { return s.Name == "i" || s.Name == "j" }
func (e *env) Nprocs() int64                    { return 4 }

func TestAnalyzeForms(t *testing.T) {
	cases := []struct {
		src          string
		constV, pidV int64
		ivCount      int
		residue      bool
	}{
		{"5", 5, 0, 0, false},
		{"pid", 0, 1, 0, false},
		{"myid", 0, 1, 0, false},
		{"nprocs", 4, 0, 0, false},
		{"pid * 3 + 1", 1, 3, 0, false},
		{"myid * chunk", 0, 20, 0, false},
		{"chunk / 5", 4, 0, 0, false},
		{"i", 0, 0, 1, false},
		{"pid * chunk + i", 0, 20, 1, false},
		{"i * 4 + j", 0, 0, 2, false},
		{"-pid", 0, -1, 0, false},
		{"unknown + i", 0, 0, 1, true}, // stride survives the residue
		{"pid % 2", 0, 0, 0, true},
		{"pid / 2", 0, 0, 0, true},
		{"10 % 3", 1, 0, 0, false},
	}
	for _, tc := range cases {
		form := analyzeExpr(t, tc.src)
		if form.Const != tc.constV || form.Pid != tc.pidV ||
			len(form.IV) != tc.ivCount || form.Residue != tc.residue {
			t.Errorf("Analyze(%q) = %s {const=%d pid=%d ivs=%d residue=%v}, want {%d %d %d %v}",
				tc.src, form, form.Const, form.Pid, len(form.IV), form.Residue,
				tc.constV, tc.pidV, tc.ivCount, tc.residue)
		}
	}
}

// analyzeExpr parses an expression inside a context program (with a
// PDV, a constant, two induction variables and an unknown) and runs
// Analyze on it.
func analyzeExpr(t *testing.T, exprSrc string) Expr {
	t.Helper()
	src := `
private int myid;
private int chunk;
shared int sink;
void main() {
    int i;
    int j;
    int unknown;
    myid = pid;
    chunk = 20;
    i = 0;
    j = 0;
    unknown = sink;
    sink = ` + exprSrc + `;
}
`
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSrc, err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check %q: %v", exprSrc, err)
	}
	main := f.Func("main")
	stmts := main.Body.List
	last, ok := stmts[len(stmts)-1].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("last statement is %T", stmts[len(stmts)-1])
	}
	return Analyze(last.RHS, info, &env{info: info})
}

func TestEvalPid(t *testing.T) {
	e := PidTerm(3, 2) // 3 + 2*pid
	for pid := int64(0); pid < 4; pid++ {
		v, ok := e.EvalPid(pid)
		if !ok || v != 3+2*pid {
			t.Errorf("EvalPid(%d) = %d, %v", pid, v, ok)
		}
	}
	if _, ok := Unknown().EvalPid(0); ok {
		t.Errorf("unknown form must not evaluate")
	}
}

// Properties of the affine algebra, checked with testing/quick.
func TestAffineAlgebraProperties(t *testing.T) {
	type form struct{ C, P int64 }
	mk := func(f form) Expr { return PidTerm(f.C%1000, f.P%1000) }
	eval := func(e Expr, pid int64) int64 {
		v, _ := e.EvalPid(pid)
		return v
	}

	// (a+b) evaluated == a evaluated + b evaluated.
	addHomo := func(a, b form, pidRaw uint8) bool {
		pid := int64(pidRaw % 16)
		ea, eb := mk(a), mk(b)
		return eval(ea.Add(eb), pid) == eval(ea, pid)+eval(eb, pid)
	}
	// (a-b) likewise.
	subHomo := func(a, b form, pidRaw uint8) bool {
		pid := int64(pidRaw % 16)
		ea, eb := mk(a), mk(b)
		return eval(ea.Sub(eb), pid) == eval(ea, pid)-eval(eb, pid)
	}
	// Scaling likewise.
	scaleHomo := func(a form, kRaw int8, pidRaw uint8) bool {
		pid := int64(pidRaw % 16)
		k := int64(kRaw % 20)
		ea := mk(a)
		return eval(ea.Scale(k), pid) == k*eval(ea, pid)
	}
	// Residue is contagious.
	residueContagious := func(a form) bool {
		return mk(a).Add(Unknown()).Residue && Unknown().Sub(mk(a)).Residue
	}
	for name, f := range map[string]any{
		"add": addHomo, "sub": subHomo, "scale": scaleHomo, "residue": residueContagious,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGcd(t *testing.T) {
	cases := [][3]int64{
		{12, 18, 6}, {0, 5, 5}, {5, 0, 5}, {-12, 18, 6}, {7, 13, 1}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := Gcd(c[0], c[1]); got != c[2] {
			t.Errorf("Gcd(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestString(t *testing.T) {
	if s := PidTerm(2, 3).String(); s != "2 + 3*pid" {
		t.Errorf("String = %q", s)
	}
	if s := Constant(0).String(); s != "0" {
		t.Errorf("zero String = %q", s)
	}
	if s := Unknown().String(); s != "?" {
		t.Errorf("unknown String = %q", s)
	}
}
