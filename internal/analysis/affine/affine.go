// Package affine analyzes parc expressions as affine forms over the
// process id (pid), loop induction variables, and constants.
//
// Affine forms are the currency of the compile-time analysis: process
// differentiating variables (PDVs) have affine values in pid, array
// subscripts are affine in pid and induction variables, and bounded
// regular section descriptors are built from these forms. The
// configured process count (nprocs) is substituted at analysis time,
// following the paper's assumption that the number of processes equals
// the number of processors.
package affine

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
)

// Expr is an affine form:
//
//	value = Const + Pid*pid + sum_i IV[s_i]*s_i  (+ unknown residue)
//
// Residue marks a non-affine contribution of unknown value. A form
// with Residue keeps whatever structure was recoverable — in
// particular the induction-variable coefficients, which still
// determine the access stride (the paper's Topopt array is exactly
// this case: an unknown, dynamically computed base plus a unit-stride
// induction term).
type Expr struct {
	Const   int64
	Pid     int64
	IV      map[*types.Symbol]int64
	Residue bool
}

// Constant returns the affine form of a constant.
func Constant(c int64) Expr { return Expr{Const: c} }

// PidTerm returns the affine form c + k*pid.
func PidTerm(c, k int64) Expr { return Expr{Const: c, Pid: k} }

// Unknown returns a fully unknown form.
func Unknown() Expr { return Expr{Residue: true} }

// IsConstant reports whether the form is a known constant.
func (e Expr) IsConstant() bool { return !e.Residue && e.Pid == 0 && len(e.IV) == 0 }

// PidOnly reports whether the form depends on nothing but pid (and
// constants) — the shape a PDV value must have.
func (e Expr) PidOnly() bool { return !e.Residue && len(e.IV) == 0 }

// HasIV reports whether any induction variable appears with a nonzero
// coefficient.
func (e Expr) HasIV() bool { return len(e.IV) > 0 }

// IVCoef returns the coefficient of the given induction variable.
func (e Expr) IVCoef(s *types.Symbol) int64 { return e.IV[s] }

// IVs returns the induction variables with nonzero coefficients, in a
// deterministic order.
func (e Expr) IVs() []*types.Symbol {
	out := make([]*types.Symbol, 0, len(e.IV))
	for s := range e.IV {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// EvalPid evaluates a pid-only form for a concrete process id.
func (e Expr) EvalPid(pid int64) (int64, bool) {
	if !e.PidOnly() {
		return 0, false
	}
	return e.Const + e.Pid*pid, true
}

// DropIVs returns the form with all induction variable terms removed
// (used to take the "base" of a subscript).
func (e Expr) DropIVs() Expr {
	return Expr{Const: e.Const, Pid: e.Pid, Residue: e.Residue}
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	out := Expr{
		Const:   e.Const + f.Const,
		Pid:     e.Pid + f.Pid,
		Residue: e.Residue || f.Residue,
	}
	out.IV = mergeIV(e.IV, f.IV, 1)
	return out
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr {
	out := Expr{
		Const:   e.Const - f.Const,
		Pid:     e.Pid - f.Pid,
		Residue: e.Residue || f.Residue,
	}
	out.IV = mergeIV(e.IV, f.IV, -1)
	return out
}

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	out := Expr{Const: e.Const * k, Pid: e.Pid * k, Residue: e.Residue}
	if len(e.IV) > 0 {
		out.IV = map[*types.Symbol]int64{}
		for s, c := range e.IV {
			if c*k != 0 {
				out.IV[s] = c * k
			}
		}
	}
	return out
}

func mergeIV(a, b map[*types.Symbol]int64, sign int64) map[*types.Symbol]int64 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := map[*types.Symbol]int64{}
	for s, c := range a {
		out[s] = c
	}
	for s, c := range b {
		out[s] += sign * c
	}
	for s, c := range out {
		if c == 0 {
			delete(out, s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// String renders the form for diagnostics.
func (e Expr) String() string {
	var parts []string
	if e.Const != 0 || (e.Pid == 0 && len(e.IV) == 0 && !e.Residue) {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	if e.Pid != 0 {
		parts = append(parts, fmt.Sprintf("%d*pid", e.Pid))
	}
	for _, s := range e.IVs() {
		parts = append(parts, fmt.Sprintf("%d*%s", e.IV[s], s.Name))
	}
	if e.Residue {
		parts = append(parts, "?")
	}
	return strings.Join(parts, " + ")
}

// Env supplies symbol meanings to Analyze.
type Env interface {
	// PDVValue returns the affine (pid-only) value of a symbol that is
	// a process differentiating variable, or ok=false.
	PDVValue(s *types.Symbol) (Expr, bool)
	// IsInduction reports whether the symbol is an induction variable
	// of an enclosing loop at the point of analysis.
	IsInduction(s *types.Symbol) bool
	// Nprocs returns the configured process count.
	Nprocs() int64
}

// Analyze computes the affine form of e. Identifiers resolve through
// info (for the symbol) and env (for its meaning). Anything
// unresolvable contributes an unknown residue rather than failing, so
// partial structure (e.g. strides) survives.
func Analyze(e ast.Expr, info *types.Info, env Env) Expr {
	switch x := e.(type) {
	case *ast.IntLit:
		return Constant(x.Value)
	case *ast.PidExpr:
		return PidTerm(0, 1)
	case *ast.NprocsExpr:
		return Constant(env.Nprocs())
	case *ast.Ident:
		sym := info.Uses[x]
		if sym == nil {
			return Unknown()
		}
		if env.IsInduction(sym) {
			return Expr{IV: map[*types.Symbol]int64{sym: 1}}
		}
		if v, ok := env.PDVValue(sym); ok {
			return v
		}
		return Unknown()
	case *ast.UnaryExpr:
		if x.Op == token.MINUS {
			return Analyze(x.X, info, env).Scale(-1)
		}
		return Unknown()
	case *ast.BinaryExpr:
		a := Analyze(x.X, info, env)
		b := Analyze(x.Y, info, env)
		switch x.Op {
		case token.PLUS:
			return a.Add(b)
		case token.MINUS:
			return a.Sub(b)
		case token.STAR:
			if a.IsConstant() {
				return b.Scale(a.Const)
			}
			if b.IsConstant() {
				return a.Scale(b.Const)
			}
			return Unknown()
		case token.SLASH:
			if b.IsConstant() && b.Const != 0 && a.IsConstant() {
				return Constant(a.Const / b.Const)
			}
			// pid/k and similar divide forms are not affine; give up
			// but keep nothing (division breaks stride structure).
			return Unknown()
		case token.PERCENT:
			if a.IsConstant() && b.IsConstant() && b.Const != 0 {
				return Constant(a.Const % b.Const)
			}
			return Unknown()
		}
		return Unknown()
	}
	return Unknown()
}

// Gcd returns the non-negative greatest common divisor.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
