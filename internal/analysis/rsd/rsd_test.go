package rsd

import (
	"testing"
	"testing/quick"

	"falseshare/internal/analysis/affine"
)

// mkRange builds an atom base + coef*iv for iv in [lo, hi) step.
func mkRange(base affine.Expr, coef, lo, hi, step int64) Atom {
	return Atom{
		Known: true,
		Base:  base,
		Terms: []IVTerm{{
			Coef: coef, Step: step, Bounded: true,
			Lo: affine.Constant(lo), Hi: affine.Constant(hi),
		}},
	}
}

func TestPointSection(t *testing.T) {
	a := Point(affine.PidTerm(3, 2)) // subscript 3 + 2*pid
	s := a.Section(5)
	if !s.Known || s.Lo != 13 || s.Hi != 13 || !s.Exact {
		t.Fatalf("section: %+v", s)
	}
}

func TestBlockRangeSection(t *testing.T) {
	// a[pid*10 + i], i in [0,10): process p owns [10p, 10p+9].
	a := mkRange(affine.PidTerm(0, 10), 1, 0, 10, 1)
	s := a.Section(3)
	if s.Lo != 30 || s.Hi != 39 || s.Stride != 1 || !s.Exact {
		t.Fatalf("section: %+v", s)
	}
	if !(RSD{a}).PairwiseDisjoint(8) {
		t.Errorf("block partition should be disjoint")
	}
}

func TestCyclicDisjointByCongruence(t *testing.T) {
	// a[pid + 8*i], i in [0,16): overlapping intervals, disjoint by
	// congruence classes mod 8.
	a := mkRange(affine.PidTerm(0, 1), 8, 0, 16, 1)
	s0, s1 := a.Section(0), a.Section(1)
	if s0.Hi < s1.Lo || s1.Hi < s0.Lo {
		t.Fatalf("intervals should overlap: %+v %+v", s0, s1)
	}
	if !DisjointSections(s0, s1) {
		t.Errorf("congruence disjointness not detected")
	}
	if !(RSD{a}).PairwiseDisjoint(8) {
		t.Errorf("cyclic partition should be pairwise disjoint")
	}
	// But two processes 8 apart share a class only if pid range
	// exceeded the period — with 9 processes, pid 0 and 8 collide.
	if (RSD{a}).PairwiseDisjoint(9) {
		t.Errorf("9 processes on period 8 must not be disjoint")
	}
}

func TestUnknownNeverDisjoint(t *testing.T) {
	u := UnknownAtom([]IVTerm{{Coef: 1, Step: 1, Bounded: false}})
	if (RSD{u}).Disjoint(0, 1) {
		t.Errorf("unknown sections must not be proven disjoint")
	}
	if !u.UnitStride() {
		t.Errorf("stride must survive an unknown base")
	}
}

func TestEmptySection(t *testing.T) {
	// Loop with hi <= lo for some pid: empty section is disjoint from
	// everything.
	a := Atom{
		Known: true,
		Base:  affine.Constant(0),
		Terms: []IVTerm{{
			Coef: 1, Step: 1, Bounded: true,
			Lo: affine.PidTerm(0, 10), // lo = 10*pid
			Hi: affine.Constant(5),    // hi = 5: empty for pid >= 1
		}},
	}
	s := a.Section(2)
	if !s.Known || !s.Empty {
		t.Fatalf("expected empty section: %+v", s)
	}
	if !DisjointSections(s, a.Section(0)) {
		t.Errorf("empty sections are disjoint from everything")
	}
}

func TestTilingTwoTerms(t *testing.T) {
	// a[i*8 + j], i in [0,4), j in [0,8): exactly [0,32) unit stride.
	a := Atom{
		Known: true,
		Base:  affine.Constant(0),
		Terms: []IVTerm{
			{Coef: 8, Step: 1, Bounded: true, Lo: affine.Constant(0), Hi: affine.Constant(4)},
			{Coef: 1, Step: 1, Bounded: true, Lo: affine.Constant(0), Hi: affine.Constant(8)},
		},
	}
	s := a.Section(0)
	if !s.Exact || s.Lo != 0 || s.Hi != 31 || s.Stride != 1 {
		t.Fatalf("tiled section: %+v", s)
	}
}

func TestPidDimAndStride(t *testing.T) {
	r := RSD{
		mkRange(affine.Constant(0), 1, 0, 100, 1), // dim 0: all rows
		Point(affine.PidTerm(0, 1)),               // dim 1: pid column
	}
	if got := r.PidDim(); got != 1 {
		t.Errorf("PidDim = %d", got)
	}
	if !r.DependsOnPid() {
		t.Errorf("DependsOnPid wrong")
	}
	if r.InnerUnitStride() {
		t.Errorf("a point column has no inner unit stride")
	}
	r2 := RSD{Point(affine.PidTerm(0, 1)), mkRange(affine.Constant(0), 1, 0, 100, 1)}
	if !r2.InnerUnitStride() {
		t.Errorf("unit-stride row should report spatial locality")
	}
}

func TestScalarRSD(t *testing.T) {
	r := RSD{}
	if r.PairwiseDisjoint(4) {
		t.Errorf("scalars cannot be partitioned")
	}
	if r.String() != "[scalar]" {
		t.Errorf("String = %q", r.String())
	}
}

// Property: Section evaluation is consistent with brute-force
// enumeration of single-term atoms.
func TestSectionMatchesEnumeration(t *testing.T) {
	f := func(baseC, basePRaw, coefRaw, loRaw, hiRaw, stepRaw, pidRaw uint8) bool {
		baseP := int64(basePRaw % 8)
		coef := int64(coefRaw%5) + 1
		lo := int64(loRaw % 16)
		hi := lo + int64(hiRaw%16)
		step := int64(stepRaw%3) + 1
		pid := int64(pidRaw % 8)
		a := mkRange(affine.PidTerm(int64(baseC%32), baseP), coef, lo, hi, step)
		s := a.Section(pid)

		// Enumerate.
		base := int64(baseC%32) + baseP*pid
		var vals []int64
		for iv := lo; iv < hi; iv += step {
			vals = append(vals, base+coef*iv)
		}
		if len(vals) == 0 {
			return s.Known && s.Empty
		}
		min, max := vals[0], vals[len(vals)-1]
		if min > max {
			min, max = max, min
		}
		if !s.Known || s.Empty || s.Lo != min || s.Hi != max {
			return false
		}
		if s.Exact {
			// Every enumerated value must be on the stride lattice.
			for _, v := range vals {
				if (v-s.Lo)%s.Stride != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: DisjointSections never claims disjointness when the
// enumerated sets intersect (soundness of the conservative test).
func TestDisjointSoundness(t *testing.T) {
	enum := func(a Atom, pid int64) map[int64]bool {
		out := map[int64]bool{}
		t := a.Terms[0]
		lo, _ := t.Lo.EvalPid(pid)
		hi, _ := t.Hi.EvalPid(pid)
		base, _ := a.Base.EvalPid(pid)
		for iv := lo; iv < hi; iv += t.Step {
			out[base+t.Coef*iv] = true
		}
		return out
	}
	f := func(p1Raw, p2Raw, coef1Raw, coef2Raw, span1, span2, b1, b2 uint8) bool {
		p1, p2 := int64(p1Raw%6), int64(p2Raw%6)
		a1 := mkRange(affine.PidTerm(int64(b1%8), 3), int64(coef1Raw%4)+1, 0, int64(span1%12), 1)
		a2 := mkRange(affine.PidTerm(int64(b2%8), 3), int64(coef2Raw%4)+1, 0, int64(span2%12), 1)
		s1, s2 := a1.Section(p1), a2.Section(p2)
		if !DisjointSections(s1, s2) {
			return true // claiming overlap is always safe
		}
		e1, e2 := enum(a1, p1), enum(a2, p2)
		for v := range e1 {
			if e2[v] {
				return false // claimed disjoint but sets intersect
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDedup(t *testing.T) {
	r := RSD{Point(affine.PidTerm(0, 1))}
	list := Add(nil, r, 5, 10)
	list = Add(list, r, 3, 10)
	if len(list) != 1 || list[0].Weight != 8 {
		t.Fatalf("dedup failed: %+v", list)
	}
}

func TestMergeLimitEnforced(t *testing.T) {
	var list []Weighted
	for i := 0; i < 20; i++ {
		r := RSD{Point(affine.Constant(int64(i)))}
		list = Add(list, r, float64(i+1), 10)
	}
	if len(list) > 10 {
		t.Fatalf("limit not enforced: %d descriptors", len(list))
	}
	// Total weight is conserved.
	total := 0.0
	for _, w := range list {
		total += w.Weight
	}
	if total != 210 {
		t.Errorf("weight not conserved: %f", total)
	}
	// At least one merged descriptor is marked lossy.
	lossy := false
	for _, w := range list {
		lossy = lossy || w.Lossy
	}
	if !lossy {
		t.Errorf("expected lossy merges")
	}
}

func TestMergeTwoPointsExact(t *testing.T) {
	a := Point(affine.PidTerm(0, 2))
	b := Point(affine.PidTerm(6, 2))
	m := mergeAtom(a, b)
	if !m.Known || len(m.Terms) != 1 {
		t.Fatalf("merged atom: %+v", m)
	}
	// The merged atom must cover exactly {2p, 2p+6}.
	s := m.Section(1)
	if s.Lo != 2 || s.Hi != 8 || !s.Exact || s.Stride != 6 {
		t.Fatalf("merged section: %+v", s)
	}
}

func TestAtomString(t *testing.T) {
	if s := Point(affine.PidTerm(0, 1)).String(); s != "1*pid" {
		t.Errorf("point string: %q", s)
	}
	u := Atom{}
	if u.String() != "?" {
		t.Errorf("unknown string: %q", u.String())
	}
}
