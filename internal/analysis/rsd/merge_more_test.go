package rsd

import (
	"strings"
	"testing"

	"falseshare/internal/analysis/affine"
)

func TestMergeRankMismatchWidens(t *testing.T) {
	a := RSD{Point(affine.Constant(1))}
	b := RSD{Point(affine.Constant(1)), Point(affine.Constant(2))}
	m := mergeRSD(a, b)
	if len(m) != 2 {
		t.Fatalf("merged rank = %d", len(m))
	}
	for _, atom := range m {
		if atom.Known {
			t.Errorf("rank-mismatched merge must widen to unknown")
		}
	}
}

func TestMergeAtomIncompatibleWidens(t *testing.T) {
	a := Point(affine.PidTerm(0, 1))
	b := Point(affine.PidTerm(0, 2)) // different pid coefficient
	m := mergeAtom(a, b)
	if m.Known {
		t.Errorf("incompatible points must widen: %s", m.String())
	}
}

func TestMergeIdenticalPoints(t *testing.T) {
	a := Point(affine.PidTerm(3, 1))
	m := mergeAtom(a, Point(affine.PidTerm(3, 1)))
	if m.String() != a.String() {
		t.Errorf("identical merge changed the atom: %s", m.String())
	}
}

func TestAddDefaultLimit(t *testing.T) {
	var list []Weighted
	for i := 0; i < 30; i++ {
		list = Add(list, RSD{Point(affine.Constant(int64(i * 7)))}, 1, 0) // 0 -> default
	}
	if len(list) > DefaultLimit {
		t.Fatalf("default limit not applied: %d", len(list))
	}
}

func TestStrideEdgeCases(t *testing.T) {
	// Point: stride 0, known.
	if s, ok := Point(affine.Constant(1)).Stride(); !ok || s != 0 {
		t.Errorf("point stride = %d, %v", s, ok)
	}
	// Fully unknown: no stride.
	if _, ok := (Atom{}).Stride(); ok {
		t.Errorf("unknown atom must have no stride")
	}
	// Zero-coefficient terms contribute nothing.
	a := Atom{Known: true, Terms: []IVTerm{{Coef: 0, Step: 1, Bounded: true,
		Lo: affine.Constant(0), Hi: affine.Constant(4)}}}
	if _, ok := a.Stride(); ok {
		t.Errorf("zero coefficient gives no stride information")
	}
}

func TestDependsOnPidViaBounds(t *testing.T) {
	// pid appears only in the loop bounds, not the base.
	a := Atom{
		Known: true,
		Base:  affine.Constant(0),
		Terms: []IVTerm{{Coef: 1, Step: 1, Bounded: true,
			Lo: affine.PidTerm(0, 10), Hi: affine.PidTerm(10, 10)}},
	}
	if !a.DependsOnPid() {
		t.Errorf("pid-dependent bounds not detected")
	}
}

func TestSectionUnknownCases(t *testing.T) {
	// Unbounded term: unknown section.
	a := Atom{Known: true, Base: affine.Constant(0),
		Terms: []IVTerm{{Coef: 1, Step: 1, Bounded: false}}}
	if s := a.Section(0); s.Known {
		t.Errorf("unbounded term must yield unknown section")
	}
	// Residue in base.
	b := Atom{Known: true, Base: affine.Unknown()}
	if s := b.Section(0); s.Known {
		t.Errorf("residue base must yield unknown section")
	}
	// Unknown sections are never provably disjoint.
	if DisjointSections(a.Section(0), b.Section(0)) {
		t.Errorf("unknown sections cannot be disjoint")
	}
}

func TestRSDStringForms(t *testing.T) {
	r := RSD{Point(affine.PidTerm(0, 1)), Atom{}}
	s := r.String()
	if !strings.Contains(s, "[1*pid]") || !strings.Contains(s, "[?]") {
		t.Errorf("rsd string: %q", s)
	}
	term := Atom{Known: true, Base: affine.Constant(2),
		Terms: []IVTerm{{Coef: 3, Step: 2, Bounded: true,
			Lo: affine.Constant(0), Hi: affine.Constant(8)}}}
	if !strings.Contains(term.String(), "3*iv[0:8:2]") {
		t.Errorf("range atom string: %q", term.String())
	}
	unb := Atom{Known: false, Terms: []IVTerm{{Coef: 1, Step: 1}}}
	if !strings.Contains(unb.String(), "iv[?:1]") {
		t.Errorf("unbounded atom string: %q", unb.String())
	}
}

func TestFromSubscriptUnknownIV(t *testing.T) {
	// An induction-like variable with no loop record keeps stride but
	// loses the base.
	form := affine.Expr{IV: nil}
	_ = form
	// Build via FromSubscript with a form containing an IV symbol but
	// empty loop list: handled in build.go.
	// (covered indirectly in sideeffect tests; here check nil loops)
	a := FromSubscript(affine.PidTerm(1, 2), nil)
	if !a.IsPoint() || a.Base.Pid != 2 {
		t.Errorf("point from pid form: %s", a.String())
	}
}
