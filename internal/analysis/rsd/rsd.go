// Package rsd implements bounded regular section descriptors (after
// Havlak & Kennedy), the representation the summary side-effect
// analysis uses for the array sections each process reads and writes.
//
// A descriptor is a vector of atoms, one per array dimension. Each
// atom describes the accessed subscripts in that dimension as an
// affine base in pid plus bounded induction-variable terms; an atom
// whose base could not be resolved is still useful because its
// induction terms determine the access stride (the paper's Topopt
// case). Descriptors are parametric in pid: instantiating them for
// concrete process ids yields the per-process sections whose
// disjointness establishes implicit array partitioning.
package rsd

import (
	"fmt"
	"strings"

	"falseshare/internal/analysis/affine"
)

// IVTerm is one induction-variable contribution to a subscript:
// Coef * iv, where iv ranges over [Lo, Hi) in steps of Step.
type IVTerm struct {
	Coef    int64
	Lo, Hi  affine.Expr // pid-only affine bounds; Hi is exclusive
	Step    int64       // > 0
	Bounded bool        // false when the loop bounds are unknown
}

// Atom describes the accessed subscripts of one dimension.
type Atom struct {
	// Known is false when the subscript base could not be resolved to
	// a pid-only affine form (e.g. it was loaded from shared memory).
	Known bool
	// Base is the pid-only affine base subscript.
	Base affine.Expr
	// Terms are the bounded induction-variable contributions; an atom
	// with no terms is a single point.
	Terms []IVTerm
}

// Point returns an atom for a single known subscript.
func Point(base affine.Expr) Atom { return Atom{Known: true, Base: base} }

// UnknownAtom returns an atom with unknown base and the given terms
// (which still carry stride information).
func UnknownAtom(terms []IVTerm) Atom { return Atom{Known: false, Terms: terms} }

// IsPoint reports whether the atom is a single known subscript.
func (a Atom) IsPoint() bool { return a.Known && len(a.Terms) == 0 }

// Stride returns the element stride of the atom: the gcd of the
// induction contributions. A point has stride 0. ok is false when no
// stride information is available.
func (a Atom) Stride() (int64, bool) {
	if len(a.Terms) == 0 {
		if a.Known {
			return 0, true
		}
		return 0, false
	}
	var g int64
	for _, t := range a.Terms {
		g = affine.Gcd(g, t.Coef*t.Step)
	}
	if g == 0 {
		return 0, false
	}
	return g, true
}

// UnitStride reports whether the atom walks the dimension with unit
// stride (the paper's spatial-locality signal).
func (a Atom) UnitStride() bool {
	s, ok := a.Stride()
	return ok && s == 1
}

// DependsOnPid reports whether the accessed section varies with the
// process id.
func (a Atom) DependsOnPid() bool {
	if a.Base.Pid != 0 {
		return true
	}
	for _, t := range a.Terms {
		if t.Lo.Pid != 0 || t.Hi.Pid != 0 {
			return true
		}
	}
	return false
}

// Section is the concrete strided index set of an atom for one pid.
type Section struct {
	Known  bool  // bounds known
	Lo, Hi int64 // inclusive bounds (valid when Known)
	Stride int64 // >= 1 when Exact
	Exact  bool  // the set is exactly {Lo, Lo+Stride, ..., <= Hi}
	Empty  bool  // the section contains no elements
}

// Section instantiates the atom for a concrete process id.
func (a Atom) Section(pid int64) Section {
	if !a.Known {
		return Section{}
	}
	base, ok := a.Base.EvalPid(pid)
	if !ok {
		return Section{}
	}
	lo, hi := base, base
	stride := int64(0)
	exact := true
	for _, t := range a.Terms {
		if !t.Bounded || t.Step <= 0 || t.Coef == 0 {
			return Section{} // unknown extent
		}
		tlo, ok1 := t.Lo.EvalPid(pid)
		thi, ok2 := t.Hi.EvalPid(pid)
		if !ok1 || !ok2 {
			return Section{}
		}
		if thi <= tlo {
			return Section{Known: true, Empty: true}
		}
		// last iteration value
		n := (thi - tlo - 1) / t.Step
		last := tlo + n*t.Step
		a1 := t.Coef * tlo
		a2 := t.Coef * last
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		lo += a1
		hi += a2
		stride = affine.Gcd(stride, t.Coef*t.Step)
		if len(a.Terms) > 1 {
			// Multiple terms: the bounding interval and gcd stride are
			// kept, but the set is not guaranteed to be exactly
			// strided unless the terms tile (dominant common case:
			// i*M + j with j spanning [0,M)). Detect that tiling.
			exact = false
		}
	}
	if stride == 0 {
		stride = 1
	}
	// Tiling check for the canonical two-term linearized subscript
	// i*M + j, j in [0,M) step 1: the set is exactly unit-strided.
	if len(a.Terms) == 2 {
		t0, t1 := a.Terms[0], a.Terms[1]
		if isTiling(t0, t1, pid) || isTiling(t1, t0, pid) {
			exact = true
			stride = minAbs(t0.Coef*t0.Step, t1.Coef*t1.Step)
		}
	}
	return Section{Known: true, Lo: lo, Hi: hi, Stride: stride, Exact: exact}
}

// isTiling reports whether inner spans exactly the stride of outer,
// making the combined two-term set contiguous with the inner stride.
func isTiling(outer, inner IVTerm, pid int64) bool {
	ilo, ok1 := inner.Lo.EvalPid(pid)
	ihi, ok2 := inner.Hi.EvalPid(pid)
	if !ok1 || !ok2 || inner.Step != 1 || inner.Coef < 0 {
		return false
	}
	span := (ihi - ilo) * inner.Coef
	return span == outer.Coef*outer.Step || span == -outer.Coef*outer.Step
}

func minAbs(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a < b {
		return a
	}
	return b
}

// DisjointSections conservatively decides whether two concrete
// sections are provably disjoint.
func DisjointSections(a, b Section) bool {
	if a.Empty || b.Empty {
		return true
	}
	if !a.Known || !b.Known {
		return false
	}
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return true
	}
	// Overlapping intervals: congruence can still separate them, e.g.
	// cyclic partitions pid + k*nprocs.
	if a.Exact && b.Exact {
		g := affine.Gcd(a.Stride, b.Stride)
		if g > 1 && (a.Lo-b.Lo)%g != 0 {
			return true
		}
	}
	return false
}

// String renders the atom for diagnostics.
func (a Atom) String() string {
	if !a.Known && len(a.Terms) == 0 {
		return "?"
	}
	var parts []string
	if a.Known {
		parts = append(parts, a.Base.String())
	} else {
		parts = append(parts, "?")
	}
	for _, t := range a.Terms {
		if t.Bounded {
			parts = append(parts, fmt.Sprintf("%d*iv[%s:%s:%d]", t.Coef, t.Lo, t.Hi, t.Step))
		} else {
			parts = append(parts, fmt.Sprintf("%d*iv[?:%d]", t.Coef, t.Step))
		}
	}
	return strings.Join(parts, " + ")
}

// RSD is a full descriptor: one atom per array dimension (outermost
// first). A scalar has an empty descriptor.
type RSD []Atom

// String renders the descriptor.
func (r RSD) String() string {
	if len(r) == 0 {
		return "[scalar]"
	}
	parts := make([]string, len(r))
	for i, a := range r {
		parts[i] = "[" + a.String() + "]"
	}
	return strings.Join(parts, "")
}

// DependsOnPid reports whether any dimension varies with pid.
func (r RSD) DependsOnPid() bool {
	for _, a := range r {
		if a.DependsOnPid() {
			return true
		}
	}
	return false
}

// Disjoint reports whether the sections touched by processes p and q
// are provably disjoint: disjoint in at least one dimension.
func (r RSD) Disjoint(p, q int64) bool {
	for _, a := range r {
		if DisjointSections(a.Section(p), a.Section(q)) {
			return true
		}
	}
	return false
}

// PairwiseDisjoint reports whether all distinct process pairs in
// 0..nprocs-1 touch provably disjoint sections.
func (r RSD) PairwiseDisjoint(nprocs int64) bool {
	if len(r) == 0 {
		return false // scalars cannot be partitioned
	}
	for p := int64(0); p < nprocs; p++ {
		for q := p + 1; q < nprocs; q++ {
			if !r.Disjoint(p, q) {
				return false
			}
		}
	}
	return true
}

// PidDim returns the index of the first dimension whose section
// varies with pid, or -1.
func (r RSD) PidDim() int {
	for i, a := range r {
		if a.DependsOnPid() {
			return i
		}
	}
	return -1
}

// InnerUnitStride reports whether the innermost dimension is walked
// with unit stride (or is a known point, which has trivial locality).
func (r RSD) InnerUnitStride() bool {
	if len(r) == 0 {
		return false
	}
	inner := r[len(r)-1]
	if inner.IsPoint() {
		return false
	}
	return inner.UnitStride()
}
