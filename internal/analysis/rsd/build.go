package rsd

import (
	"falseshare/internal/analysis/affine"
	"falseshare/internal/lang/types"
)

// Loop describes one enclosing loop for subscript analysis.
type Loop struct {
	IV      *types.Symbol
	Lo, Hi  affine.Expr // pid-only affine bounds; Hi exclusive
	Step    int64       // > 0 for analyzable loops
	Bounded bool        // false when bounds or step are unknown
}

// FromSubscript builds the atom for one dimension from the affine form
// of its subscript expression and the enclosing loop context.
func FromSubscript(form affine.Expr, loops []Loop) Atom {
	loopOf := map[*types.Symbol]*Loop{}
	for i := range loops {
		loopOf[loops[i].IV] = &loops[i]
	}

	atom := Atom{Known: !form.Residue, Base: form.DropIVs()}
	if form.Residue {
		atom.Base = affine.Expr{}
	}
	for _, iv := range form.IVs() {
		coef := form.IVCoef(iv)
		l, ok := loopOf[iv]
		if !ok {
			// An induction-like variable with no analyzable loop: the
			// base becomes unknown but the term still records stride.
			atom.Known = false
			atom.Terms = append(atom.Terms, IVTerm{Coef: coef, Step: 1, Bounded: false})
			continue
		}
		t := IVTerm{Coef: coef, Step: l.Step, Bounded: l.Bounded, Lo: l.Lo, Hi: l.Hi}
		if !l.Bounded {
			if t.Step <= 0 {
				t.Step = 1
			}
		}
		atom.Terms = append(atom.Terms, t)
	}
	return atom
}
