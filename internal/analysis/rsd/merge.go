package rsd

import "falseshare/internal/analysis/affine"

// DefaultLimit is the maximum number of descriptors kept per data
// structure before merging, matching the paper's observation that no
// benchmark array needed more than 10.
const DefaultLimit = 10

// Weighted is a descriptor with its static-profiling weight.
type Weighted struct {
	R      RSD
	Weight float64
	// Lossy marks descriptors produced by information-losing merges.
	Lossy bool
}

// Counters tallies descriptor-list maintenance for observability:
// how much the per-object cap (the paper's "small preset limit")
// actually bites on a given program.
type Counters struct {
	// Added counts descriptors inserted as new list entries.
	Added int64
	// Deduped counts insertions folded into an identical descriptor
	// (weight merge, no information loss).
	Deduped int64
	// Merged counts lossy cheapest-pair merges.
	Merged int64
	// Capped counts insertions that pushed a list over its limit and
	// forced merging.
	Capped int64
}

// Add adds other into c.
func (c *Counters) Add(other Counters) {
	c.Added += other.Added
	c.Deduped += other.Deduped
	c.Merged += other.Merged
	c.Capped += other.Capped
}

// Add inserts a descriptor into the list, deduplicating identical
// descriptors (no information loss) and enforcing the descriptor
// limit. When the limit is exceeded, the two cheapest descriptors are
// merged, losing information only as a last resort — mirroring the
// paper's policy of merging "when very little or no information will
// be lost, or when the number of descriptors exceeds some small preset
// limit".
func Add(list []Weighted, r RSD, w float64, limit int) []Weighted {
	return AddCounted(list, r, w, limit, nil)
}

// AddCounted is Add with maintenance counters recorded into c (which
// may be nil).
func AddCounted(list []Weighted, r RSD, w float64, limit int, c *Counters) []Weighted {
	if limit <= 0 {
		limit = DefaultLimit
	}
	key := r.String()
	for i := range list {
		if !list[i].Lossy && list[i].R.String() == key {
			list[i].Weight += w
			if c != nil {
				c.Deduped++
			}
			return list
		}
	}
	list = append(list, Weighted{R: r, Weight: w})
	if c != nil {
		c.Added++
		if len(list) > limit {
			c.Capped++
		}
	}
	for len(list) > limit {
		list = mergeCheapest(list)
		if c != nil {
			c.Merged++
		}
	}
	return list
}

// mergeCheapest merges the two lowest-weight descriptors into one
// widened descriptor.
func mergeCheapest(list []Weighted) []Weighted {
	if len(list) < 2 {
		return list
	}
	i1, i2 := 0, 1
	if list[i2].Weight < list[i1].Weight {
		i1, i2 = i2, i1
	}
	for k := 2; k < len(list); k++ {
		if list[k].Weight < list[i1].Weight {
			i2 = i1
			i1 = k
		} else if list[k].Weight < list[i2].Weight {
			i2 = k
		}
	}
	merged := Weighted{
		R:      mergeRSD(list[i1].R, list[i2].R),
		Weight: list[i1].Weight + list[i2].Weight,
		Lossy:  true,
	}
	var out []Weighted
	for k := range list {
		if k != i1 && k != i2 {
			out = append(out, list[k])
		}
	}
	return append(out, merged)
}

// mergeRSD widens two descriptors dimension by dimension.
func mergeRSD(a, b RSD) RSD {
	if len(a) != len(b) {
		// Structurally incompatible: collapse to a fully unknown
		// descriptor of the larger rank.
		n := len(a)
		if len(b) > n {
			n = len(b)
		}
		out := make(RSD, n)
		for i := range out {
			out[i] = Atom{}
		}
		return out
	}
	out := make(RSD, len(a))
	for i := range a {
		out[i] = mergeAtom(a[i], b[i])
	}
	return out
}

// mergeAtom merges two atoms of one dimension. Identical atoms merge
// exactly; two points whose bases share the pid coefficient merge into
// an exact two-point range; anything else widens to unknown.
func mergeAtom(a, b Atom) Atom {
	if a.String() == b.String() {
		return a
	}
	if a.IsPoint() && b.IsPoint() && a.Base.Pid == b.Base.Pid {
		d := b.Base.Const - a.Base.Const
		if d < 0 {
			d = -d
			a, b = b, a
		}
		if d == 0 {
			return a
		}
		// {base, base+d}: an exact strided pair.
		lo := a.Base
		return Atom{
			Known: true,
			Base:  lo,
			Terms: []IVTerm{{
				Coef:    d,
				Lo:      pointBound(0),
				Hi:      pointBound(2),
				Step:    1,
				Bounded: true,
			}},
		}
	}
	return Atom{} // unknown
}

func pointBound(v int64) affine.Expr { return affine.Constant(v) }
