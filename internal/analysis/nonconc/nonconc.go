// Package nonconc implements non-concurrency analysis (stage 2 of the
// paper's compile-time analysis, after Jeremiassen & Eggers PACT'94 and
// Masticola & Ryder): it uses the barrier synchronization structure to
// partition the program into phases that cannot execute concurrently
// and computes the flow of control between them.
//
// Phases let the side-effect analysis detect when the sharing pattern
// of a data structure shifts during execution; coupled with static
// profiling they determine the dominant pattern the data is
// restructured for.
package nonconc

import (
	"fmt"
	"strings"

	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
)

// PhaseSet is a bit set of phase ids (at most 64 static phases).
type PhaseSet uint64

// MaxPhases bounds the number of analyzable static phases.
const MaxPhases = 64

// Has reports whether phase p is in the set.
func (s PhaseSet) Has(p int) bool { return s&(1<<uint(p)) != 0 }

// Add returns s with phase p added.
func (s PhaseSet) Add(p int) PhaseSet { return s | 1<<uint(p) }

// Union returns the union of the sets.
func (s PhaseSet) Union(t PhaseSet) PhaseSet { return s | t }

// Empty reports whether the set is empty.
func (s PhaseSet) Empty() bool { return s == 0 }

// Phases returns the member phase ids in increasing order.
func (s PhaseSet) Phases() []int {
	var out []int
	for p := 0; p < MaxPhases && s != 0; p++ {
		if s.Has(p) {
			out = append(out, p)
			s &^= 1 << uint(p)
		}
	}
	return out
}

// String renders the set.
func (s PhaseSet) String() string {
	ps := s.Phases()
	strs := make([]string, len(ps))
	for i, p := range ps {
		strs[i] = fmt.Sprintf("%d", p)
	}
	return "{" + strings.Join(strs, ",") + "}"
}

// Result is the phase partition of a program.
type Result struct {
	// N is the number of static phases: one per barrier statement in
	// main, plus the initial phase 0.
	N int
	// NodePhases maps each node of main's CFG to the phases in which
	// it can execute.
	NodePhases map[*cfg.Node]PhaseSet
	// FuncPhases maps every function to the phases in which it can be
	// called (transitively).
	FuncPhases map[string]PhaseSet
	// Succ is the phase control-flow relation: Succ[i] holds j when
	// control can pass from phase i to phase j by crossing a barrier.
	Succ map[int]PhaseSet
	// BarrierPhase maps each barrier statement to the phase it begins.
	BarrierPhase map[*ast.BarrierStmt]int
}

// StmtPhases returns the phases of the main-CFG node containing s; for
// statements in other functions use FuncPhases.
func (r *Result) StmtPhases(g *cfg.Graph, s ast.Stmt) PhaseSet {
	if n, ok := g.StmtNode[s]; ok {
		return r.NodePhases[n]
	}
	return allPhases(r.N)
}

func allPhases(n int) PhaseSet {
	if n >= MaxPhases {
		return ^PhaseSet(0)
	}
	return PhaseSet(1)<<uint(n) - 1
}

// Analyze computes the phase partition. parc restricts barriers to
// main; a barrier in any other function is reported as an error.
func Analyze(prog *cfg.CallGraph) (*Result, error) {
	for name, g := range prog.Graphs {
		if name == "main" {
			continue
		}
		if bs := g.Barriers(); len(bs) > 0 {
			return nil, fmt.Errorf("nonconc: barrier at %s in function %q: parc allows barriers only in main", bs[0].Barrier.P, name)
		}
	}
	main := prog.Graphs["main"]
	if main == nil {
		return nil, fmt.Errorf("nonconc: program has no main")
	}

	barriers := main.Barriers()
	if len(barriers)+1 > MaxPhases {
		return nil, fmt.Errorf("nonconc: program has %d barriers; at most %d phases are supported", len(barriers), MaxPhases-1)
	}

	res := &Result{
		N:            len(barriers) + 1,
		NodePhases:   map[*cfg.Node]PhaseSet{},
		FuncPhases:   map[string]PhaseSet{},
		Succ:         map[int]PhaseSet{},
		BarrierPhase: map[*ast.BarrierStmt]int{},
	}

	isBarrier := func(n *cfg.Node) bool { return n.Kind == cfg.Barrier }
	barrierID := map[*cfg.Node]int{}
	for i, b := range barriers {
		barrierID[b] = i + 1
		res.BarrierPhase[b.Barrier] = i + 1
	}

	// region(start, phase): all nodes reachable from start without
	// crossing a barrier belong to the phase; barriers on the frontier
	// define phase successors.
	mark := func(start *cfg.Node, phase int) {
		region := main.Reachable(start, isBarrier)
		for n := range region {
			res.NodePhases[n] = res.NodePhases[n].Add(phase)
			if id, ok := barrierID[n]; ok && n != start {
				res.Succ[phase] = res.Succ[phase].Add(id)
			}
		}
	}
	mark(main.Entry, 0)
	for _, b := range barriers {
		mark(b, barrierID[b])
	}

	// Function phases: seeded from call sites in main, then propagated
	// through the call graph to a fixed point.
	for name := range prog.Graphs {
		res.FuncPhases[name] = 0
	}
	res.FuncPhases["main"] = allPhases(res.N)
	for iter := 0; iter < len(prog.Graphs)+2; iter++ {
		changed := false
		for _, site := range prog.Sites {
			var ps PhaseSet
			if site.Caller == "main" {
				ps = res.NodePhases[site.Node]
			} else {
				ps = res.FuncPhases[site.Caller]
			}
			old := res.FuncPhases[site.Callee]
			nw := old.Union(ps)
			if nw != old {
				res.FuncPhases[site.Callee] = nw
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res, nil
}
