package nonconc

import (
	"strings"
	"testing"

	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

func build(t *testing.T, src string) (*cfg.CallGraph, *types.Info) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return cfg.BuildProgram(f), info
}

// phasesOfAssign returns the phase set of the statement assigning the
// named global in main.
func phasesOfAssign(t *testing.T, prog *cfg.CallGraph, res *Result, global string) PhaseSet {
	t.Helper()
	g := prog.Graphs["main"]
	for _, n := range g.Nodes {
		for _, s := range n.Stmts {
			if as, ok := s.(*ast.AssignStmt); ok {
				if id, ok2 := as.LHS.(*ast.Ident); ok2 && id.Name == global {
					return res.NodePhases[n]
				}
			}
		}
	}
	t.Fatalf("no assignment to %q", global)
	return 0
}

func TestLinearPhases(t *testing.T) {
	prog, _ := build(t, `
shared int a;
shared int b;
shared int c;
void main() {
    a = 1;
    barrier;
    b = 1;
    barrier;
    c = 1;
}
`)
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("phases = %d, want 3", res.N)
	}
	for name, want := range map[string]int{"a": 0, "b": 1, "c": 2} {
		ps := phasesOfAssign(t, prog, res, name)
		if ps.Phases()[0] != want || len(ps.Phases()) != 1 {
			t.Errorf("%s phases = %s, want {%d}", name, ps, want)
		}
	}
	// Phase control flow: 0 -> 1 -> 2.
	if !res.Succ[0].Has(1) || !res.Succ[1].Has(2) || res.Succ[0].Has(2) {
		t.Errorf("phase successors wrong: %v", res.Succ)
	}
}

func TestBarrierInLoop(t *testing.T) {
	prog, _ := build(t, `
shared int a;
shared int b;
void main() {
    for (int s = 0; s < 10; s = s + 1) {
        a = a + 1;
        barrier;
        b = b + 1;
        barrier;
    }
}
`)
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 {
		t.Fatalf("phases = %d, want 3 (initial + 2 barriers)", res.N)
	}
	// a executes in phase 0 (first iteration) and in phase 2 (after
	// the loop's second barrier wraps around).
	pa := phasesOfAssign(t, prog, res, "a")
	if !pa.Has(0) || !pa.Has(2) || pa.Has(1) {
		t.Errorf("a phases = %s, want {0,2}", pa)
	}
	pb := phasesOfAssign(t, prog, res, "b")
	if !pb.Has(1) || pb.Has(0) {
		t.Errorf("b phases = %s, want {1}", pb)
	}
	// The loop's second barrier flows back to the first.
	if !res.Succ[2].Has(1) {
		t.Errorf("phase 2 should flow to phase 1: %v", res.Succ)
	}
}

func TestFuncPhases(t *testing.T) {
	prog, _ := build(t, `
shared int a;
void initwork() { a = 0; }
void compute() { a = a + 1; }
void main() {
    initwork();
    barrier;
    compute();
}
`)
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FuncPhases["initwork"]; !got.Has(0) || got.Has(1) {
		t.Errorf("initwork phases = %s, want {0}", got)
	}
	if got := res.FuncPhases["compute"]; !got.Has(1) || got.Has(0) {
		t.Errorf("compute phases = %s, want {1}", got)
	}
}

func TestTransitiveFuncPhases(t *testing.T) {
	prog, _ := build(t, `
shared int a;
void leaf() { a = a + 1; }
void mid() { leaf(); }
void main() {
    barrier;
    mid();
}
`)
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FuncPhases["leaf"]; !got.Has(1) || got.Has(0) {
		t.Errorf("leaf phases = %s, want {1}", got)
	}
}

func TestBarrierOutsideMainRejected(t *testing.T) {
	prog, _ := build(t, `
void sync() { barrier; }
void main() { sync(); }
`)
	_, err := Analyze(prog)
	if err == nil || !strings.Contains(err.Error(), "only in main") {
		t.Fatalf("expected barrier restriction error, got %v", err)
	}
}

func TestPhaseSetOps(t *testing.T) {
	var s PhaseSet
	s = s.Add(0).Add(5)
	if !s.Has(0) || !s.Has(5) || s.Has(1) || s.Empty() {
		t.Errorf("set ops wrong: %s", s)
	}
	if got := s.String(); got != "{0,5}" {
		t.Errorf("String = %q", got)
	}
	if got := s.Union(PhaseSet(0).Add(1)).Phases(); len(got) != 3 {
		t.Errorf("union = %v", got)
	}
}

func TestNoMain(t *testing.T) {
	// Build a call graph manually missing main.
	prog := &cfg.CallGraph{Graphs: map[string]*cfg.Graph{}}
	if _, err := Analyze(prog); err == nil {
		t.Fatalf("expected error for missing main")
	}
}
