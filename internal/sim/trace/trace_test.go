package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"falseshare/internal/vm"
)

func randRefs(seed int64, n int) []vm.Ref {
	r := rand.New(rand.NewSource(seed))
	out := make([]vm.Ref, n)
	for i := range out {
		size := int8(4)
		if r.Intn(2) == 0 {
			size = 8
		}
		out[i] = vm.Ref{
			Proc:  r.Intn(56),
			Addr:  int64(r.Intn(1 << 24)),
			Size:  size,
			Write: r.Intn(2) == 0,
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	refs := randRefs(1, 1000)
	var buf bytes.Buffer
	w := NewWriter(&buf, 56)
	for _, r := range refs {
		w.Write(r)
	}
	n, err := w.Flush()
	if err != nil || n != 1000 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	var got []vm.Ref
	if err := NewReader(&buf).ForEach(func(r vm.Ref) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refs, got) {
		t.Fatalf("round trip mismatch: %d vs %d records", len(refs), len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		refs := randRefs(seed, int(nRaw)%64+1)
		var buf bytes.Buffer
		w := NewWriter(&buf, 56)
		for _, r := range refs {
			w.Write(r)
		}
		if _, err := w.Flush(); err != nil {
			return false
		}
		var got []vm.Ref
		if err := NewReader(&buf).ForEach(func(r vm.Ref) { got = append(got, r) }); err != nil {
			return false
		}
		return reflect.DeepEqual(refs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	w.Write(vm.Ref{Proc: 1, Addr: 0x1000, Size: 4})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncated", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestTeeAndFilters(t *testing.T) {
	var all, low, p3 Counter
	sink := Tee(
		all.Sink(),
		FilterRange(0, 0x2000, low.Sink()),
		FilterProc(3, p3.Sink()),
	)
	sink(vm.Ref{Proc: 3, Addr: 0x1000, Size: 4, Write: true})
	sink(vm.Ref{Proc: 1, Addr: 0x3000, Size: 4})
	sink(vm.Ref{Proc: 3, Addr: 0x3000, Size: 8})
	if all.Refs != 3 || all.Writes != 1 || all.Reads != 2 {
		t.Errorf("all: %s", all.String())
	}
	if low.Refs != 1 {
		t.Errorf("low: %s", low.String())
	}
	if p3.Refs != 2 || p3.ByProc[3] != 2 {
		t.Errorf("p3: %s", p3.String())
	}
}

func TestCounterGrowsByProc(t *testing.T) {
	var c Counter
	s := c.Sink()
	s(vm.Ref{Proc: 55, Addr: 1, Size: 4})
	if len(c.ByProc) != 56 || c.ByProc[55] != 1 {
		t.Errorf("ByProc: %v", c.ByProc)
	}
}

func TestHeaderNprocs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 12)
	w.Write(vm.Ref{Proc: 11, Addr: 0x1000, Size: 4})
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if n := r.Nprocs(); n != 12 {
		t.Fatalf("Nprocs = %d, want 12", n)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}

func TestLegacyHeaderlessTrace(t *testing.T) {
	// A pre-header trace: raw records, no magic. It must replay (with
	// Nprocs reporting 0 = unknown).
	raw := make([]byte, recordSize)
	raw[0] = 7 // proc 7
	raw[10] = 4
	r := NewReader(bytes.NewReader(raw))
	if n := r.Nprocs(); n != 0 {
		t.Fatalf("legacy Nprocs = %d, want 0", n)
	}
	ref, err := r.Next()
	if err != nil || ref.Proc != 7 || ref.Size != 4 {
		t.Fatalf("legacy record = %+v, %v", ref, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestCorruptProcOutOfRange(t *testing.T) {
	// A record claiming proc 9 in a trace whose header declares 4
	// processes: the reader must fail with a record-level diagnosis,
	// not hand the ref to a simulator that will index out of bounds.
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	w.Write(vm.Ref{Proc: 1, Addr: 0x1000, Size: 4})
	w.Write(vm.Ref{Proc: 9, Addr: 0x2000, Size: 4})
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "record 2") || !strings.Contains(err.Error(), "proc 9") {
		t.Fatalf("err = %v, want record-2 proc-out-of-range", err)
	}
}

func TestCorruptZeroSize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	w.Write(vm.Ref{Proc: 0, Addr: 0x1000, Size: 0})
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(bytes.NewReader(buf.Bytes())).Next()
	if err == nil || !strings.Contains(err.Error(), "invalid size") {
		t.Fatalf("err = %v, want invalid-size", err)
	}
}

func TestCorruptVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	w.Write(vm.Ref{Proc: 0, Addr: 0x1000, Size: 4})
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	_, err := NewReader(bytes.NewReader(b)).Next()
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("err = %v, want unsupported-version", err)
	}
}

func TestCorruptTruncatedHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:headerSize-2]
	_, err := NewReader(bytes.NewReader(trunc)).Next()
	if err == nil || !strings.Contains(err.Error(), "truncated header") {
		t.Fatalf("err = %v, want truncated-header", err)
	}
}

func TestCorruptBadHeaderNprocs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(bytes.NewReader(buf.Bytes())).Next()
	if err == nil || !strings.Contains(err.Error(), "0 processors") {
		t.Fatalf("err = %v, want zero-processors", err)
	}
}
