package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/sim/cache"
	"falseshare/internal/sim/trace"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

// TestReplayFidelity checks the paper's stored-trace methodology end
// to end: a live run simulated directly and a replay of the saved
// trace must produce identical cache statistics for every block size.
func TestReplayFidelity(t *testing.T) {
	const nprocs = 4
	blocks := []int64{16, 64, 128}

	bm := workload.Get("maxflow")
	if bm == nil {
		t.Fatal("maxflow not registered")
	}
	prog, err := core.Compile(bm.Source(1), core.Options{Nprocs: nprocs, BlockSize: blocks[0]})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatal(err)
	}

	// Live run: one simulator per block size plus the trace writer.
	liveSims := make([]*cache.Sim, len(blocks))
	sinks := make([]trace.Sink, 0, len(blocks)+1)
	for i, blk := range blocks {
		liveSims[i], err = cache.New(cache.DefaultConfig(nprocs, blk))
		if err != nil {
			t.Fatal(err)
		}
		s := liveSims[i]
		sinks = append(sinks, func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) })
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf, nprocs)
	sinks = append(sinks, tw.Sink())
	if err := vm.New(bc).Run(trace.Tee(sinks...)); err != nil {
		t.Fatal(err)
	}
	n, err := tw.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("live run emitted no references")
	}

	// Replay through the stored-trace path.
	replaySims := make([]*cache.Sim, len(blocks))
	replaySinks := make([]trace.Sink, len(blocks))
	for i, blk := range blocks {
		var err error
		replaySims[i], err = cache.New(cache.DefaultConfig(nprocs, blk))
		if err != nil {
			t.Fatal(err)
		}
		s := replaySims[i]
		replaySinks[i] = func(r vm.Ref) { s.Access(r.Proc, r.Addr, int64(r.Size), r.Write) }
	}
	if err := trace.NewReader(bytes.NewReader(buf.Bytes())).ForEach(trace.Tee(replaySinks...)); err != nil {
		t.Fatal(err)
	}

	for i, blk := range blocks {
		live, replayed := liveSims[i].Stats(), replaySims[i].Stats()
		if live.Refs != int64(0) && live.Misses() == 0 {
			t.Errorf("block %d: suspicious live run with zero misses", blk)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Errorf("block %d: replayed stats differ from live run\nlive:   %sreplay: %s",
				blk, live, replayed)
		}
	}
}
