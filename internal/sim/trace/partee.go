package trace

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"

	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
	"falseshare/internal/vm"
)

// DefaultBatch is the ParTee batch size: large enough that channel
// sends amortize to nothing against the per-reference simulation cost,
// small enough to keep workers busy on short traces.
const DefaultBatch = 8192

// ParTee fans one reference stream out to several sinks, each running
// on its own goroutine and fed fixed-size batches. The stream every
// sink observes is identical to — and in the same order as — the one a
// plain Tee would deliver, so deterministic consumers (the cache
// simulators: the trace is identical across block sizes) produce
// results identical to the serial path. Batches are shared read-only
// across workers and never mutated after publication.
type ParTee struct {
	sinks []Sink
	chans []chan []vm.Ref
	spans []*obs.Span
	wg    sync.WaitGroup

	batchSize int
	cur       []vm.Ref

	mu       sync.Mutex
	failures []error
	closed   bool
}

// NewParTee starts one goroutine per sink. batch <= 0 uses
// DefaultBatch. Feed references through Sink() and finish with Close().
func NewParTee(batch int, sinks ...Sink) *ParTee {
	if batch <= 0 {
		batch = DefaultBatch
	}
	t := &ParTee{
		sinks:     sinks,
		chans:     make([]chan []vm.Ref, len(sinks)),
		spans:     make([]*obs.Span, len(sinks)),
		batchSize: batch,
		cur:       make([]vm.Ref, 0, batch),
	}
	for i := range sinks {
		// A little buffering decouples the producer (the VM) from
		// transient per-sink speed differences.
		t.chans[i] = make(chan []vm.Ref, 4)
		t.wg.Add(1)
		go t.worker(i)
	}
	return t
}

// SetSpan attaches an observability span to worker i; the worker
// stamps it with refs/batches counters and ends it when the stream
// closes. Call before feeding references. Workers are already running
// when SetSpan is called (NewParTee starts them), and a worker whose
// fault point fires at startup touches its span immediately, so span
// slots are accessed under the ParTee mutex on both sides.
func (t *ParTee) SetSpan(i int, s *obs.Span) {
	t.mu.Lock()
	t.spans[i] = s
	t.mu.Unlock()
}

// span reads worker i's span slot under the lock (nil-safe: obs spans
// accept calls on nil).
func (t *ParTee) span(i int) *obs.Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[i]
}

func (t *ParTee) worker(i int) {
	defer t.wg.Done()
	var refs, batches int64
	fail := func(err error) {
		t.mu.Lock()
		t.failures = append(t.failures, err)
		t.mu.Unlock()
		t.span(i).Fail(err)
		for range t.chans[i] {
			// Drain so the producer never blocks on a dead worker.
		}
	}
	defer func() {
		if p := recover(); p != nil {
			fail(fmt.Errorf("trace: sink %d panicked: %v\n%s", i, p, debug.Stack()))
		}
		sp := t.span(i)
		sp.Set("refs", refs)
		sp.Set("batches", batches)
		sp.End()
	}()
	if err := faultinject.Fire(nil, "trace.partee", strconv.Itoa(i)); err != nil {
		fail(fmt.Errorf("trace: sink %d: %w", i, err))
		return
	}
	sink := t.sinks[i]
	for b := range t.chans[i] {
		batches++
		refs += int64(len(b))
		for _, r := range b {
			sink(r)
		}
	}
}

// Sink returns the producer-side sink. It must be called from a single
// goroutine (the VM's run loop).
func (t *ParTee) Sink() Sink {
	return func(r vm.Ref) {
		t.cur = append(t.cur, r)
		if len(t.cur) == t.batchSize {
			t.publish()
		}
	}
}

func (t *ParTee) publish() {
	b := t.cur
	for _, ch := range t.chans {
		ch <- b
	}
	t.cur = make([]vm.Ref, 0, t.batchSize)
}

// Close flushes the final partial batch, waits for every worker to
// finish, and surfaces any sink panic or injected fault as an error.
// It is idempotent: a second Close only reports the recorded failures
// again, so cleanup paths may call it unconditionally.
func (t *ParTee) Close() error {
	t.mu.Lock()
	closed := t.closed
	t.closed = true
	t.mu.Unlock()
	if !closed {
		if len(t.cur) > 0 {
			t.publish()
		}
		for _, ch := range t.chans {
			close(ch)
		}
		t.wg.Wait()
	}
	if len(t.failures) > 0 {
		return t.failures[0]
	}
	return nil
}
