package trace

import (
	"testing"

	"falseshare/internal/vm"
)

// BenchmarkParTee measures the batched fan-out path that MeasureBlocks
// and fssim -j use to feed one simulator goroutine per block size. The
// sinks are deliberately trivial so the number isolates the delivery
// cost per reference per sink, not simulator work.
func BenchmarkParTee(b *testing.B) {
	refs := randRefs(3, 1<<14)
	mask := len(refs) - 1
	for _, nsinks := range []int{2, 4} {
		b.Run(map[int]string{2: "sinks2", 4: "sinks4"}[nsinks], func(b *testing.B) {
			var counts = make([]int64, nsinks)
			sinks := make([]Sink, nsinks)
			for i := range sinks {
				i := i
				sinks[i] = func(r vm.Ref) { counts[i]++ }
			}
			pt := NewParTee(0, sinks...)
			sink := pt.Sink()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink(refs[i&mask])
			}
			b.StopTimer()
			if err := pt.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTraceWriter measures the binary encoder (the -save-trace
// path): one 14-byte record append per op into a reused buffer.
func BenchmarkTraceWriter(b *testing.B) {
	refs := randRefs(4, 1<<14)
	mask := len(refs) - 1
	w := NewWriter(discard{}, 56)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(refs[i&mask])
	}
	b.StopTimer()
	if _, err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
