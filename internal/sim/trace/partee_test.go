package trace

import (
	"strings"
	"testing"

	"falseshare/internal/obs"
	"falseshare/internal/vm"
)

// TestParallelParTeeMatchesTee: every sink of a ParTee must observe
// the exact reference sequence a serial Tee would deliver, including a
// final partial batch.
func TestParallelParTeeMatchesTee(t *testing.T) {
	const n = 10_000 // not a multiple of the batch size
	mk := func() (Sink, *[]vm.Ref) {
		var got []vm.Ref
		return func(r vm.Ref) { got = append(got, r) }, &got
	}
	s1, got1 := mk()
	s2, got2 := mk()
	pt := NewParTee(256, s1, s2)
	sink := pt.Sink()
	want := make([]vm.Ref, 0, n)
	for i := 0; i < n; i++ {
		r := vm.Ref{Proc: i % 7, Addr: int64(i * 4), Size: 4, Write: i%3 == 0}
		want = append(want, r)
		sink(r)
	}
	if err := pt.Close(); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*[]vm.Ref{"sink1": got1, "sink2": got2} {
		if len(*got) != n {
			t.Fatalf("%s: saw %d refs, want %d", name, len(*got), n)
		}
		for i, r := range *got {
			if r != want[i] {
				t.Fatalf("%s: ref %d = %+v, want %+v", name, i, r, want[i])
			}
		}
	}
}

// TestParallelParTeePanic: a panicking sink surfaces from Close as an
// error and never deadlocks the producer.
func TestParallelParTeePanic(t *testing.T) {
	healthy := 0
	pt := NewParTee(8,
		func(r vm.Ref) {
			if r.Addr == 100 {
				panic("sink exploded")
			}
		},
		func(r vm.Ref) { healthy++ },
	)
	sink := pt.Sink()
	for i := 0; i < 1000; i++ {
		sink(vm.Ref{Addr: int64(i), Size: 4})
	}
	err := pt.Close()
	if err == nil {
		t.Fatal("expected panic error from Close")
	}
	if !strings.Contains(err.Error(), "sink exploded") {
		t.Errorf("error should carry the panic value: %v", err)
	}
	if healthy != 1000 {
		t.Errorf("healthy sink saw %d refs, want 1000", healthy)
	}
}

// TestParallelParTeeSpans: per-worker spans carry ref/batch counters.
func TestParallelParTeeSpans(t *testing.T) {
	rec := obs.NewRecorder()
	obs.Install(rec)
	defer obs.Install(nil)
	parent := obs.Begin("measure")
	pt := NewParTee(100, func(vm.Ref) {}, func(vm.Ref) {})
	pt.SetSpan(0, parent.Child("sim:a"))
	pt.SetSpan(1, parent.Child("sim:b"))
	sink := pt.Sink()
	for i := 0; i < 250; i++ {
		sink(vm.Ref{Addr: int64(i), Size: 4})
	}
	if err := pt.Close(); err != nil {
		t.Fatal(err)
	}
	parent.End()
	spans := rec.Spans()
	if len(spans) != 1 || len(spans[0].Children) != 2 {
		t.Fatalf("span tree: %+v", spans)
	}
	for i, c := range spans[0].Children {
		if c.Counters["refs"] != 250 {
			t.Errorf("worker %d refs = %d, want 250", i, c.Counters["refs"])
		}
		if c.Counters["batches"] != 3 { // 100 + 100 + 50
			t.Errorf("worker %d batches = %d, want 3", i, c.Counters["batches"])
		}
	}
}
