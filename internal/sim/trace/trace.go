// Package trace provides utilities over the shared-memory reference
// streams the VM produces: composable sinks (fan-out, filters,
// counters) and a compact binary format for storing traces on disk,
// mirroring the paper's use of stored traces for simulation [EKKL90].
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"falseshare/internal/vm"
)

// Sink consumes references.
type Sink func(vm.Ref)

// Tee fans a reference stream out to several sinks.
func Tee(sinks ...Sink) Sink {
	return func(r vm.Ref) {
		for _, s := range sinks {
			s(r)
		}
	}
}

// FilterRange passes only references inside [lo, hi) — e.g. one data
// structure's address span — to the wrapped sink.
func FilterRange(lo, hi int64, s Sink) Sink {
	return func(r vm.Ref) {
		if r.Addr >= lo && r.Addr < hi {
			s(r)
		}
	}
}

// FilterProc passes only one process's references.
func FilterProc(proc int, s Sink) Sink {
	return func(r vm.Ref) {
		if r.Proc == proc {
			s(r)
		}
	}
}

// Counter tallies a reference stream.
type Counter struct {
	Refs   int64
	Reads  int64
	Writes int64
	// ByProc counts per process (grown on demand).
	ByProc []int64
}

// Sink returns the counting sink.
func (c *Counter) Sink() Sink {
	return func(r vm.Ref) {
		c.Refs++
		if r.Write {
			c.Writes++
		} else {
			c.Reads++
		}
		for r.Proc >= len(c.ByProc) {
			c.ByProc = append(c.ByProc, 0)
		}
		c.ByProc[r.Proc]++
	}
}

// String renders the counter.
func (c *Counter) String() string {
	return fmt.Sprintf("refs=%d reads=%d writes=%d procs=%d", c.Refs, c.Reads, c.Writes, len(c.ByProc))
}

// ---------------------------------------------------------------------------
// Binary format: a fixed 14-byte little-endian record per reference:
//
//	proc  uint16
//	addr  uint64
//	size  uint8
//	write uint8 (0/1)
//	pad   2 bytes (record alignment / future flags)

const recordSize = 14

// Writer streams references into an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Sink returns a sink writing every reference.
func (tw *Writer) Sink() Sink {
	return func(r vm.Ref) { tw.Write(r) }
}

// Write appends one reference.
func (tw *Writer) Write(r vm.Ref) {
	if tw.err != nil {
		return
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(r.Proc))
	binary.LittleEndian.PutUint64(buf[2:], uint64(r.Addr))
	buf[10] = uint8(r.Size)
	if r.Write {
		buf[11] = 1
	}
	if _, err := tw.w.Write(buf[:]); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Flush completes the stream and reports the record count.
func (tw *Writer) Flush() (int64, error) {
	if tw.err != nil {
		return tw.n, tw.err
	}
	return tw.n, tw.w.Flush()
}

// Reader decodes a stored trace.
type Reader struct {
	r *bufio.Reader
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next reference; io.EOF ends the stream.
func (tr *Reader) Next() (vm.Ref, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return vm.Ref{}, fmt.Errorf("trace: truncated record")
		}
		return vm.Ref{}, err
	}
	return vm.Ref{
		Proc:  int(binary.LittleEndian.Uint16(buf[0:])),
		Addr:  int64(binary.LittleEndian.Uint64(buf[2:])),
		Size:  int8(buf[10]),
		Write: buf[11] != 0,
	}, nil
}

// ForEach replays a stored trace into a sink.
func (tr *Reader) ForEach(s Sink) error {
	for {
		r, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s(r)
	}
}
