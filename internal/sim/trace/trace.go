// Package trace provides utilities over the shared-memory reference
// streams the VM produces: composable sinks (fan-out, filters,
// counters) and a compact binary format for storing traces on disk,
// mirroring the paper's use of stored traces for simulation [EKKL90].
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"falseshare/internal/vm"
)

// Sink consumes references.
type Sink func(vm.Ref)

// Tee fans a reference stream out to several sinks.
func Tee(sinks ...Sink) Sink {
	return func(r vm.Ref) {
		for _, s := range sinks {
			s(r)
		}
	}
}

// FilterRange passes only references inside [lo, hi) — e.g. one data
// structure's address span — to the wrapped sink.
func FilterRange(lo, hi int64, s Sink) Sink {
	return func(r vm.Ref) {
		if r.Addr >= lo && r.Addr < hi {
			s(r)
		}
	}
}

// FilterProc passes only one process's references.
func FilterProc(proc int, s Sink) Sink {
	return func(r vm.Ref) {
		if r.Proc == proc {
			s(r)
		}
	}
}

// Counter tallies a reference stream.
type Counter struct {
	Refs   int64
	Reads  int64
	Writes int64
	// ByProc counts per process (grown on demand).
	ByProc []int64
}

// Sink returns the counting sink.
func (c *Counter) Sink() Sink {
	return func(r vm.Ref) {
		c.Refs++
		if r.Write {
			c.Writes++
		} else {
			c.Reads++
		}
		for r.Proc >= len(c.ByProc) {
			c.ByProc = append(c.ByProc, 0)
		}
		c.ByProc[r.Proc]++
	}
}

// String renders the counter.
func (c *Counter) String() string {
	return fmt.Sprintf("refs=%d reads=%d writes=%d procs=%d", c.Refs, c.Reads, c.Writes, len(c.ByProc))
}

// ---------------------------------------------------------------------------
// Binary format: an 8-byte little-endian header
//
//	magic    [4]byte "FSTR"
//	version  uint8   (currently 1)
//	reserved uint8
//	nprocs   uint16  (process count of the capture)
//
// followed by a fixed 14-byte little-endian record per reference:
//
//	proc  uint16
//	addr  uint64
//	size  uint8
//	write uint8 (0/1)
//	pad   2 bytes (record alignment / future flags)
//
// Traces written before the header existed start directly with
// records; Reader detects those by the missing magic and replays them
// without per-record process validation. (The detection cannot
// misfire: a legacy record starting with "FSTR" would claim process
// 0x5346 = 21318, far beyond any simulated machine.)

const (
	recordSize = 14
	headerSize = 8

	formatVersion = 1
)

var magic = [4]byte{'F', 'S', 'T', 'R'}

// MapSidecar names the address-map sidecar conventionally stored next
// to a trace file. A trace is a bare reference stream; replaying it
// with miss attribution needs the address→(object, field) map that
// existed at capture time, which the capturing tool saves at this
// path (see attr.Map.WriteFile) and the replaying tool loads from it.
func MapSidecar(tracePath string) string {
	return tracePath + ".map.json"
}

// Writer streams references into an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps w and emits the trace header recording the capture's
// process count. Header write errors surface on the first Write or
// Flush.
func NewWriter(w io.Writer, nprocs int) *Writer {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	hdr[4] = formatVersion
	binary.LittleEndian.PutUint16(hdr[6:], uint16(nprocs))
	_, tw.err = tw.w.Write(hdr[:])
	return tw
}

// Sink returns a sink writing every reference.
func (tw *Writer) Sink() Sink {
	return func(r vm.Ref) { tw.Write(r) }
}

// Write appends one reference.
func (tw *Writer) Write(r vm.Ref) {
	if tw.err != nil {
		return
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(r.Proc))
	binary.LittleEndian.PutUint64(buf[2:], uint64(r.Addr))
	buf[10] = uint8(r.Size)
	if r.Write {
		buf[11] = 1
	}
	if _, err := tw.w.Write(buf[:]); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Flush completes the stream and reports the record count.
func (tw *Writer) Flush() (int64, error) {
	if tw.err != nil {
		return tw.n, tw.err
	}
	return tw.n, tw.w.Flush()
}

// Reader decodes a stored trace, validating each record so that a
// corrupted or mismatched file fails with a descriptive error here
// instead of an index panic deep inside the simulator.
type Reader struct {
	r      *bufio.Reader
	nprocs int   // from the header; 0 for legacy headerless traces
	n      int64 // records decoded, for error messages
	gotHdr bool
	hdrErr error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// readHeader consumes the header if the stream starts with the format
// magic; headerless legacy streams are left untouched with nprocs 0.
func (tr *Reader) readHeader() error {
	if tr.gotHdr {
		return tr.hdrErr
	}
	tr.gotHdr = true
	pk, err := tr.r.Peek(len(magic))
	if len(pk) < len(magic) || [4]byte(pk) != magic {
		// Legacy stream (or one too short to hold a header): records
		// begin immediately. Read errors, including io.EOF on an empty
		// stream, resurface from the first record read.
		_ = err
		return nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		tr.hdrErr = fmt.Errorf("trace: truncated header")
		return tr.hdrErr
	}
	if hdr[4] != formatVersion {
		tr.hdrErr = fmt.Errorf("trace: unsupported format version %d (want %d)", hdr[4], formatVersion)
		return tr.hdrErr
	}
	tr.nprocs = int(binary.LittleEndian.Uint16(hdr[6:]))
	if tr.nprocs < 1 {
		tr.hdrErr = fmt.Errorf("trace: header declares %d processors", tr.nprocs)
		return tr.hdrErr
	}
	return nil
}

// Nprocs reports the process count declared by the trace header, or 0
// for legacy headerless traces. (Any header error is also returned by
// the first Next.)
func (tr *Reader) Nprocs() int {
	_ = tr.readHeader()
	return tr.nprocs
}

// Next returns the next reference; io.EOF ends the stream. Records
// naming a process outside the header's range, or with a non-positive
// size, yield an error identifying the offending record.
func (tr *Reader) Next() (vm.Ref, error) {
	if err := tr.readHeader(); err != nil {
		return vm.Ref{}, err
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return vm.Ref{}, fmt.Errorf("trace: record %d: truncated", tr.n+1)
		}
		return vm.Ref{}, err
	}
	tr.n++
	r := vm.Ref{
		Proc:  int(binary.LittleEndian.Uint16(buf[0:])),
		Addr:  int64(binary.LittleEndian.Uint64(buf[2:])),
		Size:  int8(buf[10]),
		Write: buf[11] != 0,
	}
	if tr.nprocs > 0 && r.Proc >= tr.nprocs {
		return vm.Ref{}, fmt.Errorf("trace: record %d: proc %d out of range (header declares %d processors)",
			tr.n, r.Proc, tr.nprocs)
	}
	if r.Size < 1 {
		return vm.Ref{}, fmt.Errorf("trace: record %d: invalid size %d", tr.n, buf[10])
	}
	return r, nil
}

// ForEach replays a stored trace into a sink.
func (tr *Reader) ForEach(s Sink) error {
	for {
		r, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s(r)
	}
}
