package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// foldUpgrades normalizes a Stats for cross-protocol comparison: MESI
// turns some bus upgrades into silent ones (that is the entire point
// of the E state), so the protocol-independent quantity is their sum.
// Everything else must match exactly — the returned copy differs from
// the input only in the folded pair.
func foldUpgrades(s *Stats) *Stats {
	c := *s
	c.Upgrades += c.SilentUpgrades
	c.SilentUpgrades = 0
	c.ProcRefs = s.ProcRefs
	c.ProcMisses = s.ProcMisses
	c.ProcCold = s.ProcCold
	c.ProcReplace = s.ProcReplace
	c.ProcTS = s.ProcTS
	c.ProcFS = s.ProcFS
	c.ProcRemote = s.ProcRemote
	return &c
}

// genNoSharingTrace builds a trace with no write sharing of any kind:
// every processor reads and writes its own disjoint region (with
// enough footprint to force replacements), and all processors read a
// common region that nobody ever writes. On such traces the three
// protocols are required to behave identically — there is never a
// remote copy to invalidate, update, or downgrade-for-classification.
func genNoSharingTrace(seed int64, nprocs, n int) []traceRef {
	rng := rand.New(rand.NewSource(seed))
	out := make([]traceRef, n)
	for i := range out {
		proc := rng.Intn(nprocs)
		var addr int64
		write := false
		if rng.Intn(3) == 0 {
			// Read-only shared region: immutable data, safe under any
			// protocol.
			addr = 0x400000 + rng.Int63n(8*1024)
		} else {
			// Private per-processor region, 64 KB apart so no block is
			// ever shared.
			addr = int64(0x10000*(proc+1)) + rng.Int63n(8*1024)
			write = rng.Intn(10) < 4
		}
		addr -= addr % WordSize
		size := int64(4)
		if rng.Intn(6) == 0 {
			size = 4 * (1 + rng.Int63n(16))
		}
		out[i] = traceRef{proc: proc, addr: addr, size: size, write: write}
	}
	return out
}

// TestProtocolsAgreeNoSharing is the differential anchor: on traces
// with no write sharing, MESI and write-update must produce Stats
// byte-identical to the PR 4 map-based write-invalidate oracle —
// every counter, every miss class, the whole per-processor
// decomposition — modulo only MESI's documented Upgrades /
// SilentUpgrades split (folded by foldUpgrades; write-update must
// match outright, updates included, since there is never a remote
// copy to refresh).
func TestProtocolsAgreeNoSharing(t *testing.T) {
	for _, nprocs := range []int{2, 4, 8} {
		for _, block := range []int64{16, 64, 256} {
			for _, proto := range Protocols() {
				cfg := DefaultConfig(nprocs, block)
				cfg.CacheSize = 4 * 1024 // force replacements
				cfg.Assoc = 2
				cfg.Protocol = proto
				sim := mustNew(t, cfg)
				ref := newRefSim(cfg)
				for i, r := range genNoSharingTrace(int64(nprocs)*77+block, nprocs, 20000) {
					ks := sim.Access(r.proc, r.addr, r.size, r.write)
					kr := ref.Access(r.proc, r.addr, r.size, r.write)
					if ks != kr {
						t.Fatalf("p%d b%d %v: ref %d (%+v): got %v oracle %v",
							nprocs, block, proto, i, r, ks, kr)
					}
				}
				got, want := foldUpgrades(sim.Stats()), foldUpgrades(&ref.stats)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("p%d b%d %v: stats diverge from oracle\ngot:    %soracle: %s",
						nprocs, block, proto, got, want)
				}
				if proto == WriteUpdate && sim.Stats().Updates != 0 {
					t.Errorf("p%d b%d: write-update counted %d updates on a no-sharing trace",
						nprocs, block, sim.Stats().Updates)
				}
			}
		}
	}
}

// TestMESIMatchesWriteInvalidateClassification pins the designed MESI
// invariant on arbitrary sharing traces: the E state changes upgrade
// traffic, never classification. For every trace, MESI's Stats equal
// write-invalidate's after folding the upgrade split, and the
// conservation law WI.Upgrades == MESI.Upgrades + MESI.SilentUpgrades
// holds exactly.
func TestMESIMatchesWriteInvalidateClassification(t *testing.T) {
	sawSilent := false
	for _, nprocs := range []int{2, 4, 8} {
		for _, block := range []int64{16, 64, 128} {
			cfg := DefaultConfig(nprocs, block)
			cfg.CacheSize = 4 * 1024
			cfg.Assoc = 2
			wi := mustNew(t, cfg)
			mcfg := cfg
			mcfg.Protocol = MESI
			mesi := mustNew(t, mcfg)
			for i, r := range genTrace(int64(nprocs)*31+block, nprocs, 25000) {
				kw := wi.Access(r.proc, r.addr, r.size, r.write)
				km := mesi.Access(r.proc, r.addr, r.size, r.write)
				if kw != km {
					t.Fatalf("p%d b%d: ref %d (%+v): wi=%v mesi=%v", nprocs, block, i, r, kw, km)
				}
			}
			ws, ms := wi.Stats(), mesi.Stats()
			if ws.Upgrades != ms.Upgrades+ms.SilentUpgrades {
				t.Errorf("p%d b%d: upgrade conservation broken: wi %d != mesi %d + silent %d",
					nprocs, block, ws.Upgrades, ms.Upgrades, ms.SilentUpgrades)
			}
			if ms.SilentUpgrades > 0 {
				sawSilent = true
			}
			g, w := foldUpgrades(ms), foldUpgrades(ws)
			g.Config, w.Config = Config{}, Config{}
			if !reflect.DeepEqual(g, w) {
				t.Errorf("p%d b%d: MESI classification diverged from write-invalidate\nmesi: %swi:   %s",
					nprocs, block, g, w)
			}
		}
	}
	if !sawSilent {
		t.Error("no configuration ever exercised a silent E->M upgrade; the MESI comparison is vacuous")
	}
}

// migratoryTrace models migratory data: a region of blocks owned by
// one processor at a time, each owner reading then updating every
// block before handing off. Between handoffs the old owner sweeps a
// large private buffer, evicting its copies — so the next owner's
// read misses find no cached copy anywhere. That is exactly the case
// MESI's E state exists for: the read fill is Exclusive and the
// following write upgrades silently, where write-invalidate pays a
// bus upgrade per block per handoff.
func migratoryTrace(nprocs, blocks int, block int64, rounds int) []traceRef {
	var out []traceRef
	region := int64(0x100000)
	evict := int64(0x800000)
	for round := 0; round < rounds; round++ {
		owner := round % nprocs
		for b := 0; b < blocks; b++ {
			addr := region + int64(b)*block
			out = append(out,
				traceRef{proc: owner, addr: addr, size: 4, write: false},
				traceRef{proc: owner, addr: addr, size: 4, write: true})
		}
		// The owner flushes its own copies before the handoff (64
		// sets * 2 ways of 4 KB / assoc-2 cache pressure).
		for i := int64(0); i < 4*1024/block*4; i++ {
			out = append(out, traceRef{proc: owner, addr: evict + int64(owner)*0x40000 + i*block, size: 4, write: false})
		}
	}
	return out
}

// TestMigratoryFavorsMESI is the directed divergence test for MESI:
// on a migratory pattern the two protocols classify identically
// (foldUpgrades equality is already pinned above), and the benefit
// shows up as strictly fewer bus upgrades — the sign asserted here —
// because most ownership acquisitions ride the E state.
func TestMigratoryFavorsMESI(t *testing.T) {
	cfg := DefaultConfig(4, 64)
	cfg.CacheSize = 4 * 1024
	cfg.Assoc = 2
	wi := mustNew(t, cfg)
	mcfg := cfg
	mcfg.Protocol = MESI
	mesi := mustNew(t, mcfg)
	for _, r := range migratoryTrace(4, 16, 64, 40) {
		wi.Access(r.proc, r.addr, r.size, r.write)
		mesi.Access(r.proc, r.addr, r.size, r.write)
	}
	ws, ms := wi.Stats(), mesi.Stats()
	if ms.Misses() != ws.Misses() {
		t.Fatalf("migratory: miss counts must match (mesi %d, wi %d)", ms.Misses(), ws.Misses())
	}
	if ms.Upgrades >= ws.Upgrades {
		t.Errorf("migratory must favor MESI: mesi bus upgrades %d >= wi %d", ms.Upgrades, ws.Upgrades)
	}
	if ms.SilentUpgrades == 0 {
		t.Error("migratory pattern never hit the E state")
	}
}

// producerConsumerTrace models a broadcast buffer: one producer
// rewrites a small region, then every consumer reads it, repeatedly.
// The producer sweeps a private buffer between rounds, evicting its
// own copies, so each round's writes are write misses that must act
// on the consumers' copies: invalidation kills them (one sharing miss
// per consumer per block per round), update refreshes them in place.
func producerConsumerTrace(nprocs, words int, rounds int, block int64) []traceRef {
	var out []traceRef
	base := int64(0x100000)
	evict := int64(0x800000)
	for round := 0; round < rounds; round++ {
		for w := 0; w < words; w++ {
			out = append(out, traceRef{proc: 0, addr: base + int64(w)*4, size: 4, write: true})
		}
		for p := 1; p < nprocs; p++ {
			for w := 0; w < words; w++ {
				out = append(out, traceRef{proc: p, addr: base + int64(w)*4, size: 4, write: false})
			}
		}
		for i := int64(0); i < 8*1024/block; i++ {
			out = append(out, traceRef{proc: 0, addr: evict + i*block, size: 4, write: false})
		}
	}
	return out
}

// TestProducerConsumerFavorsWriteUpdate is the directed divergence
// test for write-update: on a producer/consumer pattern the
// invalidation protocol makes every consumer re-miss each round,
// while update keeps all copies live and pays update transactions
// instead. The asserted sign: strictly fewer misses under
// write-update, zero sharing misses, nonzero update traffic.
func TestProducerConsumerFavorsWriteUpdate(t *testing.T) {
	cfg := DefaultConfig(4, 64)
	cfg.CacheSize = 4 * 1024
	cfg.Assoc = 2
	wi := mustNew(t, cfg)
	ucfg := cfg
	ucfg.Protocol = WriteUpdate
	wu := mustNew(t, ucfg)
	for _, r := range producerConsumerTrace(4, 32, 20, 64) {
		wi.Access(r.proc, r.addr, r.size, r.write)
		wu.Access(r.proc, r.addr, r.size, r.write)
	}
	ws, us := wi.Stats(), wu.Stats()
	if us.Misses() >= ws.Misses() {
		t.Errorf("producer/consumer must favor write-update: wu misses %d >= wi %d", us.Misses(), ws.Misses())
	}
	if us.TrueShare != 0 || us.FalseShare != 0 {
		t.Errorf("write-update took sharing misses: ts=%d fs=%d", us.TrueShare, us.FalseShare)
	}
	if us.Updates == 0 {
		t.Error("write-update counted no update transactions on a sharing trace")
	}
	if ws.TrueShare+ws.FalseShare == 0 {
		t.Error("write-invalidate took no sharing misses; the comparison is vacuous")
	}
}

// TestWriteUpdateNeverInvalidates pins the protocol's defining
// property on arbitrary traces: no invalidations, and therefore no
// invalidation-miss class at all — every miss is cold or replacement.
func TestWriteUpdateNeverInvalidates(t *testing.T) {
	for _, nprocs := range []int{2, 8} {
		cfg := DefaultConfig(nprocs, 64)
		cfg.CacheSize = 4 * 1024
		cfg.Assoc = 2
		cfg.Protocol = WriteUpdate
		sim := mustNew(t, cfg)
		for _, r := range genTrace(int64(nprocs)*13, nprocs, 20000) {
			sim.Access(r.proc, r.addr, r.size, r.write)
		}
		st := sim.Stats()
		if st.Invalidations != 0 {
			t.Errorf("p%d: write-update invalidated %d lines", nprocs, st.Invalidations)
		}
		if st.TrueShare != 0 || st.FalseShare != 0 {
			t.Errorf("p%d: write-update classified sharing misses: ts=%d fs=%d", nprocs, st.TrueShare, st.FalseShare)
		}
		if st.Misses() != st.Cold+st.Replace {
			t.Errorf("p%d: miss classes inconsistent: %s", nprocs, st)
		}
		if st.Updates == 0 {
			t.Errorf("p%d: no update traffic on a sharing trace", nprocs)
		}
	}
}

// TestParseProtocolTopology covers the CLI spellings both ways.
func TestParseProtocolTopology(t *testing.T) {
	for _, p := range Protocols() {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, alias := range []string{"wi", "inv", "wu", "update", "mesi"} {
		if _, err := ParseProtocol(alias); err != nil {
			t.Errorf("ParseProtocol(%q): %v", alias, err)
		}
	}
	if _, err := ParseProtocol("mosi"); err == nil {
		t.Error("ParseProtocol accepted an unknown protocol")
	}
	for _, tp := range Topologies() {
		got, err := ParseTopology(tp.String())
		if err != nil || got != tp {
			t.Errorf("ParseTopology(%q) = %v, %v", tp.String(), got, err)
		}
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Error("ParseTopology accepted an unknown topology")
	}
}

// TestValidateProtocolTopologySector is the regression suite for the
// new Validate cross-field checks, including the WordInvalidate /
// SectorSize conflict this PR fixes. Every rejection must be a typed
// *ConfigError naming the offending field.
func TestValidateProtocolTopologySector(t *testing.T) {
	base := DefaultConfig(4, 64)
	cases := []struct {
		name  string
		mut   func(*Config)
		field string // "" means the config must be valid
	}{
		{"default", func(c *Config) {}, ""},
		{"mesi", func(c *Config) { c.Protocol = MESI }, ""},
		{"write-update", func(c *Config) { c.Protocol = WriteUpdate }, ""},
		{"two-ring-defaults", func(c *Config) { c.Topology = TopoTwoRing }, ""},
		{"two-ring-explicit", func(c *Config) {
			c.Topology = TopoTwoRing
			c.RingSize = 4
			c.LocalLatency = 10
			c.RemoteLatency = 100
		}, ""},
		{"sector16", func(c *Config) { c.SectorSize = 16 }, ""},
		{"word-invalidate-matching-sector", func(c *Config) {
			c.WordInvalidate = true
			c.SectorSize = WordSize
		}, ""},
		{"bad-protocol", func(c *Config) { c.Protocol = protocolCount }, "Protocol"},
		{"negative-protocol", func(c *Config) { c.Protocol = -1 }, "Protocol"},
		{"bad-topology", func(c *Config) { c.Topology = topologyCount }, "Topology"},
		{"sector-too-small", func(c *Config) { c.SectorSize = 2 }, "SectorSize"},
		{"sector-not-pow2", func(c *Config) { c.SectorSize = 24 }, "SectorSize"},
		{"sector-exceeds-block", func(c *Config) { c.SectorSize = 128 }, "SectorSize"},
		{"sector-mask-overflow", func(c *Config) {
			c.BlockSize = 1024
			c.SectorSize = 4
		}, "SectorSize"},
		// The cross-field fix: word-invalidate mode IS 4-byte sector
		// invalidation; a conflicting explicit granularity must be
		// rejected, not silently resolved in favor of either knob.
		{"word-invalidate-conflicting-sector", func(c *Config) {
			c.WordInvalidate = true
			c.SectorSize = 16
		}, "SectorSize"},
		{"write-update-word-invalidate", func(c *Config) {
			c.Protocol = WriteUpdate
			c.WordInvalidate = true
		}, "Protocol"},
		{"write-update-sector", func(c *Config) {
			c.Protocol = WriteUpdate
			c.SectorSize = 16
		}, "Protocol"},
		{"ring-params-on-flat", func(c *Config) { c.RingSize = 32 }, "Topology"},
		{"negative-ring-size", func(c *Config) {
			c.Topology = TopoTwoRing
			c.RingSize = -1
		}, "RingSize"},
		{"negative-latency", func(c *Config) {
			c.Topology = TopoTwoRing
			c.LocalLatency = -175
		}, "LocalLatency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
				}
				return
			}
			ce, ok := err.(*ConfigError)
			if !ok {
				t.Fatalf("Validate(%+v) = %v (%T), want *ConfigError", cfg, err, err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
			}
		})
	}
}
