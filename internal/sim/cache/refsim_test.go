package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// refSim is the original map-based, scan-based simulator, kept as the
// correctness oracle for the flat paged-table + sharer-directory
// rewrite (verbatim except that Access follows the same
// most-severe-sub-block return contract as Sim): both implement the
// same protocols, topologies and classification, so for any trace and
// any configuration their Stats must be byte-identical. Only the
// mechanics differ — refSim pays map lookups, per-block allocations
// and O(NumProcs × Assoc) tag scans on every coherence path, which is
// exactly what the flat tables and the multi-word sharer vector
// remove. The scans deleted from the production simulator live on
// here: each coherence helper below walks every processor's cache the
// way the pre-directory code did, so the directory walk is checked
// against first principles rather than against itself.
type refSim struct {
	cfg      Config
	nsets    int64
	blkShift uint
	setMask  int64
	nrings   int

	caches [][]line
	meta   []map[int64]*refBlockMeta

	wordWriter map[int64]int32
	wordTime   map[int64]int64

	time  int64
	stats Stats
}

type refBlockMeta struct {
	seen      bool
	resident  bool
	lostByInv bool
	lostAt    int64
}

func newRefSim(cfg Config) *refSim {
	if cfg.Assoc <= 0 {
		cfg.Assoc = 4
	}
	if cfg.Topology == TopoTwoRing {
		if cfg.RingSize == 0 {
			cfg.RingSize = DefaultRingSize
		}
		if cfg.LocalLatency == 0 {
			cfg.LocalLatency = DefaultLocalLatency
		}
		if cfg.RemoteLatency == 0 {
			cfg.RemoteLatency = DefaultRemoteLatency
		}
	}
	nsets := cfg.CacheSize / (cfg.BlockSize * int64(cfg.Assoc))
	if nsets < 1 {
		nsets = 1
	}
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	s := &refSim{
		cfg:        cfg,
		nsets:      nsets,
		setMask:    nsets - 1,
		wordWriter: map[int64]int32{},
		wordTime:   map[int64]int64{},
	}
	for b := cfg.BlockSize; b > 1; b >>= 1 {
		s.blkShift++
	}
	if cfg.Topology == TopoTwoRing {
		s.nrings = (cfg.NumProcs + cfg.RingSize - 1) / cfg.RingSize
	}
	s.caches = make([][]line, cfg.NumProcs)
	s.meta = make([]map[int64]*refBlockMeta, cfg.NumProcs)
	for p := 0; p < cfg.NumProcs; p++ {
		s.caches[p] = make([]line, nsets*int64(cfg.Assoc))
		s.meta[p] = map[int64]*refBlockMeta{}
	}
	s.stats.Config = cfg
	s.stats.Sets = nsets
	s.stats.EffectiveCacheSize = nsets * cfg.BlockSize * int64(cfg.Assoc)
	s.stats.ProcRefs = make([]int64, cfg.NumProcs)
	s.stats.ProcMisses = make([]int64, cfg.NumProcs)
	s.stats.ProcCold = make([]int64, cfg.NumProcs)
	s.stats.ProcReplace = make([]int64, cfg.NumProcs)
	s.stats.ProcTS = make([]int64, cfg.NumProcs)
	s.stats.ProcFS = make([]int64, cfg.NumProcs)
	s.stats.ProcRemote = make([]int64, cfg.NumProcs)
	return s
}

func (s *refSim) Access(proc int, addr int64, size int64, write bool) MissKind {
	worst := s.accessBlock(proc, addr, min64(size, s.cfg.BlockSize-addr%s.cfg.BlockSize), write)
	end := addr + size
	next := (addr>>s.blkShift + 1) << s.blkShift
	for next < end {
		n := min64(end-next, s.cfg.BlockSize)
		if k := s.accessBlock(proc, next, n, write); k > worst {
			worst = k
		}
		next += s.cfg.BlockSize
	}
	return worst
}

func (s *refSim) accessBlock(proc int, addr, size int64, write bool) MissKind {
	s.time++
	s.stats.Refs++
	s.stats.ProcRefs[proc]++
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}

	block := addr >> s.blkShift
	set := block & s.setMask
	ways := s.caches[proc][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]

	hitWay := -1
	for w := range ways {
		if ways[w].valid && ways[w].tag == block {
			hitWay = w
			break
		}
	}

	kind := Hit
	if hitWay >= 0 {
		ln := &ways[hitWay]
		if s.cfg.WordInvalidate && ln.invMask&s.wordBits(addr, size) != 0 {
			ln.invMask = 0
			ln.lru = s.time
			if write {
				ln.state = stateModified
				s.invalidateWords(proc, block, addr, size)
				s.recordWrite(proc, addr, size)
			} else {
				ln.state = stateShared
			}
			s.stats.TrueShare++
			s.stats.ProcMisses[proc]++
			s.stats.ProcTS[proc]++
			if s.heldElsewhere(proc, block) {
				s.stats.ProcRemote[proc]++
			}
			s.chargeMiss(proc, block)
			return TrueSharing
		}
		ln.lru = s.time
		if write && ln.state == stateShared {
			s.stats.Upgrades++
			if s.cfg.Protocol != WriteUpdate {
				s.invalidateOthers(proc, block)
			}
			ln.state = stateModified
		} else if write && ln.state == stateExclusive {
			s.stats.SilentUpgrades++
		}
		if write {
			ln.state = stateModified
			if s.cfg.Protocol == WriteUpdate {
				s.updateOthers(proc, block)
			}
			if s.cfg.WordInvalidate {
				s.invalidateWords(proc, block, addr, size)
			}
			s.recordWrite(proc, addr, size)
		}
		s.stats.Hits++
		return Hit
	}

	bm := s.blockMeta(proc, block)
	switch {
	case !bm.seen:
		kind = Cold
		s.stats.Cold++
		s.stats.ProcCold[proc]++
	case bm.lostByInv:
		if s.modifiedByOtherSince(proc, addr, size, bm.lostAt) {
			kind = TrueSharing
			s.stats.TrueShare++
			s.stats.ProcTS[proc]++
		} else {
			kind = FalseSharing
			s.stats.FalseShare++
			s.stats.ProcFS[proc]++
		}
	default:
		kind = Replacement
		s.stats.Replace++
		s.stats.ProcReplace[proc]++
	}
	s.stats.ProcMisses[proc]++
	remote := s.heldElsewhere(proc, block)
	if remote {
		s.stats.ProcRemote[proc]++
	}
	s.chargeMiss(proc, block)

	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid {
		old := ways[victim].tag
		obm := s.blockMeta(proc, old)
		if obm.resident {
			obm.resident = false
			obm.lostByInv = false
			obm.lostAt = s.time
		}
	}
	st := stateShared
	if write {
		st = stateModified
		if s.cfg.Protocol == WriteUpdate {
			s.updateOthers(proc, block)
		} else {
			s.invalidateOthers(proc, block)
		}
		if s.cfg.WordInvalidate {
			s.invalidateWords(proc, block, addr, size)
		}
		s.recordWrite(proc, addr, size)
	} else if s.cfg.Protocol == MESI {
		if remote {
			s.downgradeOthers(proc, block)
		} else {
			st = stateExclusive
		}
	}
	ways[victim] = line{tag: block, valid: true, state: st, lru: s.time}
	bm.seen = true
	bm.resident = true
	return kind
}

func (s *refSim) invalidateOthers(proc int, block int64) {
	if s.cfg.WordInvalidate {
		return
	}
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				ways[w].valid = false
				s.stats.Invalidations++
				bm := s.blockMeta(p, block)
				bm.resident = false
				bm.lostByInv = true
				bm.lostAt = s.time
			}
		}
	}
}

// updateOthers is the write-update fan-out as a full tag scan: one
// Updates count per remote valid copy of the block.
func (s *refSim) updateOthers(proc int, block int64) {
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				s.stats.Updates++
			}
		}
	}
}

// downgradeOthers is the MESI read-fill snoop as a full tag scan:
// remote Exclusive copies demote to Shared.
func (s *refSim) downgradeOthers(proc int, block int64) {
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block && ways[w].state == stateExclusive {
				ways[w].state = stateShared
			}
		}
	}
}

// chargeMiss mirrors Sim.chargeMiss for the two-ring topology, with
// serviceRemote implemented as a full tag scan: a valid same-ring copy
// means local service, any other valid copy means crossing rings, and
// a block cached nowhere is served by its home ring.
func (s *refSim) chargeMiss(proc int, block int64) {
	if s.cfg.Topology != TopoTwoRing {
		return
	}
	if s.serviceRemote(proc, block) {
		s.stats.RemoteServiced++
		s.stats.CostCycles += s.cfg.RemoteLatency
	} else {
		s.stats.LocalServiced++
		s.stats.CostCycles += s.cfg.LocalLatency
	}
}

func (s *refSim) serviceRemote(proc int, block int64) bool {
	r := proc / s.cfg.RingSize
	cached := false
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				if p/s.cfg.RingSize == r {
					return false
				}
				cached = true
			}
		}
	}
	if cached {
		return true
	}
	return s.homeRing(block) != r
}

func (s *refSim) homeRing(block int64) int {
	n := int64(s.nrings)
	h := block % n
	if h < 0 {
		h += n
	}
	return int(h)
}

func (s *refSim) wordBits(addr, size int64) uint64 {
	blockStart := addr >> s.blkShift << s.blkShift
	first := (addr - blockStart) / WordSize
	last := (addr + size - 1 - blockStart) / WordSize
	var m uint64
	for w := first; w <= last && w < 64; w++ {
		m |= 1 << uint(w)
	}
	return m
}

func (s *refSim) invalidateWords(proc int, block, addr, size int64) {
	bits := s.wordBits(addr, size)
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				if ways[w].invMask&bits != bits {
					s.stats.Invalidations++
				}
				ways[w].invMask |= bits
			}
		}
	}
}

func (s *refSim) heldElsewhere(proc int, block int64) bool {
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				return true
			}
		}
	}
	return false
}

func (s *refSim) recordWrite(proc int, addr, size int64) {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		s.wordWriter[w] = int32(proc)
		s.wordTime[w] = s.time
	}
}

func (s *refSim) modifiedByOtherSince(proc int, addr, size, t int64) bool {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		if s.wordTime[w] >= t && s.wordWriter[w] != int32(proc) {
			return true
		}
	}
	return false
}

func (s *refSim) blockMeta(proc int, block int64) *refBlockMeta {
	bm := s.meta[proc][block]
	if bm == nil {
		bm = &refBlockMeta{}
		s.meta[proc][block] = bm
	}
	return bm
}

// ---------------------------------------------------------------------------

// traceRef is one synthetic trace record for the equivalence tests.
type traceRef struct {
	proc  int
	addr  int64
	size  int64
	write bool
}

// genTrace builds a deterministic mixed trace: mostly word accesses
// over a shared heap with per-processor hot regions, a slice of
// block-spanning accesses, and a sprinkle of far outliers to exercise
// the overflow paths of the paged tables.
func genTrace(seed int64, nprocs, n int) []traceRef {
	rng := rand.New(rand.NewSource(seed))
	out := make([]traceRef, n)
	for i := range out {
		proc := rng.Intn(nprocs)
		var addr int64
		switch r := rng.Intn(64); {
		case r == 0: // rare far outlier: beyond the direct page directory
			addr = (int64(1) << 40) + rng.Int63n(4096)
		case r < 20: // per-processor region (mostly private)
			addr = int64(0x10000*(proc+1)) + rng.Int63n(2048)
		default: // shared heap
			addr = 0x1000 + rng.Int63n(16*1024)
		}
		addr -= addr % WordSize
		size := int64(4)
		if rng.Intn(5) == 0 {
			size = 4 * (1 + rng.Int63n(16)) // up to 64 bytes, spans blocks
		}
		out[i] = traceRef{proc: proc, addr: addr, size: size, write: rng.Intn(10) < 3}
	}
	return out
}

// TestFlatMatchesReference replays identical traces through the flat
// paged-table simulator and the original map-based one across the full
// (procs × block × protocol) matrix and requires byte-identical Stats
// — every global counter, every miss class, the whole per-processor
// decomposition — and identical per-reference return values.
func TestFlatMatchesReference(t *testing.T) {
	nprocsList := []int{1, 2, 4, 8}
	blockList := []int64{4, 16, 64, 128, 256}
	for _, nprocs := range nprocsList {
		for _, block := range blockList {
			for _, wi := range []bool{false, true} {
				cfg := DefaultConfig(nprocs, block)
				// Shrink the cache so replacements actually happen.
				cfg.CacheSize = 4 * 1024
				cfg.Assoc = 2
				cfg.WordInvalidate = wi
				flat, err := New(cfg)
				if err != nil {
					t.Fatalf("New(%+v): %v", cfg, err)
				}
				ref := newRefSim(cfg)
				tr := genTrace(int64(nprocs)*1000+block, nprocs, 25000)
				for i, r := range tr {
					kf := flat.Access(r.proc, r.addr, r.size, r.write)
					kr := ref.Access(r.proc, r.addr, r.size, r.write)
					if kf != kr {
						t.Fatalf("p%d b%d wi=%v: ref %d (%+v): flat=%v ref=%v",
							nprocs, block, wi, i, r, kf, kr)
					}
				}
				if !reflect.DeepEqual(flat.Stats(), &ref.stats) {
					t.Errorf("p%d b%d wi=%v: stats diverge\nflat: %sref:  %s",
						nprocs, block, wi, flat.Stats(), &ref.stats)
				}
			}
		}
	}
}

// TestFlatMatchesReferenceTinyCache thrashes a minimal cache (1 set,
// direct-mapped at the limit) so the eviction bookkeeping paths get
// the same byte-identity treatment.
func TestFlatMatchesReferenceTinyCache(t *testing.T) {
	cfg := Config{NumProcs: 3, BlockSize: 32, CacheSize: 64, Assoc: 1}
	flat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefSim(cfg)
	for _, r := range genTrace(99, 3, 40000) {
		flat.Access(r.proc, r.addr, r.size, r.write)
		ref.Access(r.proc, r.addr, r.size, r.write)
	}
	if !reflect.DeepEqual(flat.Stats(), &ref.stats) {
		t.Errorf("stats diverge\nflat: %sref:  %s", flat.Stats(), &ref.stats)
	}
}

// TestFlatMatchesReferenceWideProcs pins the first multi-word sharer
// vector width: 70 processors need K=2 directory words per block, the
// narrowest configuration where the old single-uint64 mask could not
// represent every processor and the deleted wideProcs fallback used to
// take over.
func TestFlatMatchesReferenceWideProcs(t *testing.T) {
	cfg := DefaultConfig(70, 64)
	flat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if flat.sharers.words != 2 {
		t.Fatalf("70 processors: sharer vector words = %d, want 2", flat.sharers.words)
	}
	ref := newRefSim(cfg)
	for _, r := range genTrace(7, 70, 30000) {
		flat.Access(r.proc, r.addr, r.size, r.write)
		ref.Access(r.proc, r.addr, r.size, r.write)
	}
	if !reflect.DeepEqual(flat.Stats(), &ref.stats) {
		t.Errorf("stats diverge\nflat: %sref:  %s", flat.Stats(), &ref.stats)
	}
}

// TestFlatMatchesReferenceWideMatrix is the full wide-processor
// byte-identity matrix: {70, 128, 1024} processors × every protocol ×
// both topologies, flat multi-word directory vs the map-based scan
// oracle. 70 straddles a word boundary (K=2 with a partial top word),
// 128 is an exact two-word vector, and 1024 is the paper-scale
// sixteen-word machine. Trace lengths shrink with width because the
// oracle is O(procs) per coherence event — identity, not throughput,
// is what this test buys.
func TestFlatMatchesReferenceWideMatrix(t *testing.T) {
	type dims struct {
		nprocs int
		refs   int
	}
	widths := []dims{{70, 20000}, {128, 20000}, {1024, 4000}}
	if testing.Short() {
		widths = []dims{{70, 8000}, {128, 8000}, {1024, 1500}}
	}
	for _, d := range widths {
		for _, proto := range Protocols() {
			for _, topo := range Topologies() {
				cfg := DefaultConfig(d.nprocs, 64)
				// Small cache: replacements and re-fills churn the
				// sharer vector instead of letting it grow monotonic.
				cfg.CacheSize = 8 * 1024
				cfg.Assoc = 2
				cfg.Protocol = proto
				cfg.Topology = topo
				flat, err := New(cfg)
				if err != nil {
					t.Fatalf("New(p%d %v %v): %v", d.nprocs, proto, topo, err)
				}
				if want := int64((d.nprocs + 63) / 64); flat.sharers.words != want {
					t.Fatalf("p%d: sharer vector words = %d, want %d", d.nprocs, flat.sharers.words, want)
				}
				ref := newRefSim(cfg)
				tr := genTrace(int64(d.nprocs)*31+int64(proto)*7+int64(topo), d.nprocs, d.refs)
				for i, r := range tr {
					kf := flat.Access(r.proc, r.addr, r.size, r.write)
					kr := ref.Access(r.proc, r.addr, r.size, r.write)
					if kf != kr {
						t.Fatalf("p%d %v %v: ref %d (%+v): flat=%v ref=%v",
							d.nprocs, proto, topo, i, r, kf, kr)
					}
				}
				if !reflect.DeepEqual(flat.Stats(), &ref.stats) {
					t.Errorf("p%d %v %v: stats diverge\nflat: %sref:  %s",
						d.nprocs, proto, topo, flat.Stats(), &ref.stats)
				}
			}
		}
	}
}
