package cache

import (
	"fmt"
	"testing"
)

// benchTrace builds a deterministic mixed workload shaped like the
// real benchmarks: per-processor hot regions with a shared heap,
// ~30% writes, a sprinkle of block-spanning doubles. Length is a
// power of two so replay can index with a mask.
func benchTrace(nprocs, n int) []traceRef {
	return genTrace(0xbe7c4, nprocs, n)
}

// BenchmarkAccess measures the simulator hot path: one Sim.Access per
// op on a 12-processor, 64-byte-block configuration. This is the
// number the BENCH_sim.json trajectory tracks as ns/ref — the paper's
// whole evaluation is tens of millions of these calls.
func BenchmarkAccess(b *testing.B) {
	for _, blk := range []int64{16, 64, 256} {
		b.Run(fmt.Sprintf("b%d", blk), func(b *testing.B) {
			s := mustNew(b, DefaultConfig(12, blk))
			tr := benchTrace(12, 1<<16)
			mask := len(tr) - 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := tr[i&mask]
				s.Access(r.proc, r.addr, r.size, r.write)
			}
		})
	}
}

// BenchmarkAccessWide is BenchmarkAccess at the machine widths the
// paper's KSR2 discussion gestures at: 128, 256 and 1024 processors
// (sharer vectors of 2, 4 and 16 words) at the 64-byte block size.
// Before the multi-word directory these configurations fell off the
// O(procs × assoc) scan cliff — roughly 10× the 12-proc ns/ref; the
// vector walk keeps them within the same band.
func BenchmarkAccessWide(b *testing.B) {
	for _, nprocs := range []int{128, 256, 1024} {
		b.Run(fmt.Sprintf("p%d", nprocs), func(b *testing.B) {
			s := mustNew(b, DefaultConfig(nprocs, 64))
			tr := benchTrace(nprocs, 1<<16)
			mask := len(tr) - 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := tr[i&mask]
				s.Access(r.proc, r.addr, r.size, r.write)
			}
		})
	}
}

// BenchmarkAccessWordInvalidate is BenchmarkAccess under the Dubois
// per-word-invalidation protocol (the §6 hardware ablation).
func BenchmarkAccessWordInvalidate(b *testing.B) {
	cfg := DefaultConfig(12, 128)
	cfg.WordInvalidate = true
	s := mustNew(b, cfg)
	tr := benchTrace(12, 1<<16)
	mask := len(tr) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr[i&mask]
		s.Access(r.proc, r.addr, r.size, r.write)
	}
}

// BenchmarkAccessReference replays BenchmarkAccess's exact workload
// through the retired map-based implementation (refsim_test.go), so
// `benchstat` on the two series shows what the flat paged tables buy.
func BenchmarkAccessReference(b *testing.B) {
	for _, blk := range []int64{16, 64, 256} {
		b.Run(fmt.Sprintf("b%d", blk), func(b *testing.B) {
			s := newRefSim(DefaultConfig(12, blk))
			tr := benchTrace(12, 1<<16)
			mask := len(tr) - 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := tr[i&mask]
				s.Access(r.proc, r.addr, r.size, r.write)
			}
		})
	}
}

// BenchmarkSweep measures the block-size-sweep shape every figure
// uses: the same reference fed to one simulator per block size
// (16/64/128/256), as MeasureBlocks does on its serial path. One op =
// one reference through all four simulators.
func BenchmarkSweep(b *testing.B) {
	blocks := []int64{16, 64, 128, 256}
	sims := make([]*Sim, len(blocks))
	for i, blk := range blocks {
		sims[i] = mustNew(b, DefaultConfig(12, blk))
	}
	tr := benchTrace(12, 1<<16)
	mask := len(tr) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := tr[i&mask]
		for _, s := range sims {
			s.Access(r.proc, r.addr, r.size, r.write)
		}
	}
}
