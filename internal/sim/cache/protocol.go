// Protocol and topology layer: the simulator historically spoke
// exactly one dialect — write-invalidate coherence over a flat
// machine. The matrix experiments (fsexp -matrix) sweep the
// transformation heuristics across protocol and topology variants, so
// both are now first-class configuration:
//
//   - Protocol selects the coherence protocol. WriteInvalidate is the
//     historical default and the baseline every figure in the paper
//     uses. MESI adds the Exclusive state: a read miss that finds no
//     other cached copy fills Exclusive, and the first write to an
//     Exclusive line takes ownership silently (no bus transaction) —
//     miss classification is provably identical to write-invalidate,
//     only the upgrade traffic differs (see SilentUpgrades).
//     WriteUpdate broadcasts writes to the other cached copies instead
//     of invalidating them: sharers never lose their lines, so
//     invalidation misses (true and false sharing both) disappear and
//     the cost moves into update traffic (see Stats.Updates).
//
//   - Topology selects the machine shape for miss costing. TopoFlat
//     charges nothing (the historical behavior: the KSR time model in
//     internal/sim/ksr owns latency). TopoTwoRing models the paper's
//     KSR2 directly in the simulator: processors sit on rings of
//     RingSize, every miss is serviced either by a same-ring copy
//     (LocalLatency, 175 cycles on the KSR2) or across rings
//     (RemoteLatency, 600 cycles), and blocks with no cached copy are
//     served by their home ring. Stats.CostCycles accumulates the
//     asymmetric service cost; LocalServiced/RemoteServiced decompose
//     every miss by where it was serviced.
//
// Sub-block (sector) invalidation is the third new axis: SectorSize
// generalizes the all-or-nothing line invalidation to sectors, with
// WordInvalidate remaining the historical word-granularity special
// case. See Config.SectorSize.
package cache

import (
	"fmt"
	"math/bits"
)

// Protocol identifies the coherence protocol the simulator runs.
type Protocol int

const (
	// WriteInvalidate is the paper's protocol and the zero-value
	// default: writes invalidate every other cached copy of the block.
	WriteInvalidate Protocol = iota
	// MESI adds the Exclusive state to write-invalidate: read misses
	// with no other sharer fill Exclusive and upgrade to Modified
	// silently on the first write.
	MESI
	// WriteUpdate broadcasts writes to the other cached copies instead
	// of invalidating them.
	WriteUpdate

	protocolCount // internal bound for validation
)

func (p Protocol) String() string {
	switch p {
	case WriteInvalidate:
		return "write-invalidate"
	case MESI:
		return "mesi"
	case WriteUpdate:
		return "write-update"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// ParseProtocol maps a CLI spelling to a Protocol. It accepts the
// String() forms plus the short aliases "wi", "inv" and "wu".
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "write-invalidate", "wi", "inv":
		return WriteInvalidate, nil
	case "mesi":
		return MESI, nil
	case "write-update", "wu", "update":
		return WriteUpdate, nil
	}
	return 0, fmt.Errorf("cache: unknown protocol %q (want write-invalidate, mesi or write-update)", s)
}

// Protocols returns every supported protocol, in enum order — the
// matrix sweep's default protocol axis.
func Protocols() []Protocol {
	return []Protocol{WriteInvalidate, MESI, WriteUpdate}
}

// Topology identifies the machine shape used for miss costing.
type Topology int

const (
	// TopoFlat is the zero-value default: no per-miss cost model (the
	// execution-time model in internal/sim/ksr owns latency).
	TopoFlat Topology = iota
	// TopoTwoRing is the paper's KSR2 shape: processors on rings of
	// Config.RingSize, with asymmetric same-ring vs cross-ring miss
	// service latencies.
	TopoTwoRing

	topologyCount // internal bound for validation
)

func (t Topology) String() string {
	switch t {
	case TopoFlat:
		return "flat"
	case TopoTwoRing:
		return "two-ring"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// ParseTopology maps a CLI spelling to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "flat":
		return TopoFlat, nil
	case "two-ring", "rings", "ksr":
		return TopoTwoRing, nil
	}
	return 0, fmt.Errorf("cache: unknown topology %q (want flat or two-ring)", s)
}

// Topologies returns every supported topology, in enum order.
func Topologies() []Topology {
	return []Topology{TopoFlat, TopoTwoRing}
}

// KSR2 latency defaults (paper §5): a miss serviced on the
// requester's own ring costs 175 cycles; crossing rings costs 600.
const (
	DefaultRingSize      = 32
	DefaultLocalLatency  = 175
	DefaultRemoteLatency = 600
)

// ring returns the ring a processor sits on (TopoTwoRing).
func (s *Sim) ring(proc int) int { return proc / s.cfg.RingSize }

// chargeMiss accounts one miss service in the two-level topology:
// local when a same-ring cache (or the block's home ring) services
// it, remote when the request has to cross rings. Flat topology
// charges nothing. Must be called before the requester inserts itself
// into the sharer set.
func (s *Sim) chargeMiss(proc int, block int64) {
	if !s.twoRing {
		return
	}
	if s.serviceRemote(proc, block) {
		s.stats.RemoteServiced++
		s.stats.CostCycles += s.cfg.RemoteLatency
	} else {
		s.stats.LocalServiced++
		s.stats.CostCycles += s.cfg.LocalLatency
	}
}

// serviceRemote reports whether a miss by proc on block is serviced
// across rings. A cached copy on the requester's ring always wins
// (the directory forwards to the nearest sharer — cross-ring cost is
// never charged while a same-ring sharer exists); any other cached
// copy is a cross-ring service; with no cached copy the block's home
// ring serves it.
func (s *Sim) serviceRemote(proc int, block int64) bool {
	r := s.ring(proc)
	rm := s.ringMasks[r]
	cached := false
	vec := s.sharers.get(block)
	for wi, m := range vec {
		if wi == proc>>6 {
			m &^= 1 << uint(proc&63)
		}
		if m == 0 {
			continue
		}
		if m&rm[wi] != 0 {
			return false
		}
		cached = true
	}
	if cached {
		return true
	}
	return s.homeRing(block) != r
}

// homeRing assigns every block a home ring (round-robin over the
// machine's rings), the service point for misses with no cached copy.
// Corrupted traces can produce negative block numbers; fold them in
// rather than indexing negatively.
func (s *Sim) homeRing(block int64) int {
	n := int64(s.nrings)
	h := block % n
	if h < 0 {
		h += n
	}
	return int(h)
}

// downgradeOthers demotes a remote Exclusive copy of block to the
// Shared state (MESI: a read miss snoops the E copy down to S, so the
// next write by its holder is a real, bus-visible upgrade again).
// Only the Exclusive state downgrades: the historical write-invalidate
// protocol here leaves remote Modified copies undisturbed by read
// fills (the owner keeps write-hitting without coherence traffic), and
// MESI must preserve that so its miss classification stays byte-
// identical to write-invalidate — E is the one state WI does not have,
// and it maps back to WI's Shared exactly when demoted on every remote
// fill. No statistics change: downgrades transfer no data and
// invalidate nothing.
func (s *Sim) downgradeOthers(proc int, block int64) {
	base := (block & s.setMask) * s.assoc
	vec := s.sharers.get(block)
	for wi, others := range vec {
		if wi == proc>>6 {
			others &^= 1 << uint(proc&63)
		}
		for m := others; m != 0; m &= m - 1 {
			p := wi<<6 + bits.TrailingZeros64(m)
			ways := s.caches[p][base : base+s.assoc]
			for w := range ways {
				if ways[w].valid && ways[w].tag == block && ways[w].state == stateExclusive {
					ways[w].state = stateShared
				}
			}
		}
	}
}

// updateOthers refreshes every other cached copy of block with the
// written data (WriteUpdate): the copies stay valid — no invalidation,
// no classification state change — and each refresh counts one update
// transaction. The word stamps are recorded by the caller as usual, so
// a later protocol comparison sees identical write history.
func (s *Sim) updateOthers(proc int, block int64) {
	base := (block & s.setMask) * s.assoc
	vec := s.sharers.get(block)
	for wi, others := range vec {
		if wi == proc>>6 {
			others &^= 1 << uint(proc&63)
		}
		for m := others; m != 0; m &= m - 1 {
			p := wi<<6 + bits.TrailingZeros64(m)
			ways := s.caches[p][base : base+s.assoc]
			for w := range ways {
				if ways[w].valid && ways[w].tag == block {
					s.stats.Updates++
				}
			}
		}
	}
}
