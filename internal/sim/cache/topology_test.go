package cache

import (
	"fmt"
	"reflect"
	"testing"
)

// TestTopologyMatrixInvariants runs random traces across the full
// (protocol × topology × procs × block) matrix and checks the
// accounting identities the two-level cost model guarantees:
//
//   - miss classes always sum to Misses(), per-processor sums match;
//   - under two-ring, every miss is serviced exactly once, locally or
//     remotely, and CostCycles is exactly the latency-weighted sum;
//   - under flat, all topology counters stay zero.
func TestTopologyMatrixInvariants(t *testing.T) {
	for _, proto := range Protocols() {
		for _, topo := range Topologies() {
			for _, nprocs := range []int{2, 8, 70} {
				for _, block := range []int64{16, 64} {
					name := fmt.Sprintf("%v/%v/p%d/b%d", proto, topo, nprocs, block)
					t.Run(name, func(t *testing.T) {
						cfg := DefaultConfig(nprocs, block)
						cfg.CacheSize = 4 * 1024
						cfg.Assoc = 2
						cfg.Protocol = proto
						cfg.Topology = topo
						if topo == TopoTwoRing {
							// Small rings so even 8 processors span
							// several of them.
							cfg.RingSize = 4
						}
						sim := mustNew(t, cfg)
						for _, r := range genTrace(int64(nprocs)*7+block, nprocs, 15000) {
							sim.Access(r.proc, r.addr, r.size, r.write)
						}
						st := sim.Stats()
						if st.Hits+st.Misses() != st.Refs {
							t.Errorf("hits %d + misses %d != refs %d", st.Hits, st.Misses(), st.Refs)
						}
						var pm, pts, pfs int64
						for p := 0; p < nprocs; p++ {
							pm += st.ProcMisses[p]
							pts += st.ProcTS[p]
							pfs += st.ProcFS[p]
						}
						if pm != st.Misses() || pts != st.TrueShare || pfs != st.FalseShare {
							t.Errorf("per-proc sums diverge: misses %d/%d ts %d/%d fs %d/%d",
								pm, st.Misses(), pts, st.TrueShare, pfs, st.FalseShare)
						}
						if topo == TopoTwoRing {
							if st.LocalServiced+st.RemoteServiced != st.Misses() {
								t.Errorf("service decomposition %d+%d != misses %d",
									st.LocalServiced, st.RemoteServiced, st.Misses())
							}
							want := st.LocalServiced*cfg.LocalLatency + st.RemoteServiced*cfg.RemoteLatency
							if cfg.LocalLatency == 0 {
								want = st.LocalServiced*DefaultLocalLatency + st.RemoteServiced*DefaultRemoteLatency
							}
							if st.CostCycles != want {
								t.Errorf("CostCycles %d != local*%d + remote*%d = %d",
									st.CostCycles, cfg.LocalLatency, cfg.RemoteLatency, want)
							}
						} else {
							if st.LocalServiced != 0 || st.RemoteServiced != 0 || st.CostCycles != 0 {
								t.Errorf("flat topology accumulated cost: local=%d remote=%d cost=%d",
									st.LocalServiced, st.RemoteServiced, st.CostCycles)
							}
						}
					})
				}
			}
		}
	}
}

// TestTwoRingMatchesFlatClassification pins that the topology layer is
// a pure cost observer: the same trace through a flat and a two-ring
// simulator produces identical classification — only the three new
// service counters may differ.
func TestTwoRingMatchesFlatClassification(t *testing.T) {
	cfg := DefaultConfig(8, 64)
	cfg.CacheSize = 4 * 1024
	cfg.Assoc = 2
	flat := mustNew(t, cfg)
	rcfg := cfg
	rcfg.Topology = TopoTwoRing
	rcfg.RingSize = 4
	ring := mustNew(t, rcfg)
	for i, r := range genTrace(42, 8, 20000) {
		kf := flat.Access(r.proc, r.addr, r.size, r.write)
		kr := ring.Access(r.proc, r.addr, r.size, r.write)
		if kf != kr {
			t.Fatalf("ref %d (%+v): flat=%v two-ring=%v", i, r, kf, kr)
		}
	}
	fs, rs := *flat.Stats(), *ring.Stats()
	// Blank the fields that legitimately differ, then demand identity.
	fs.Config, rs.Config = Config{}, Config{}
	rs.LocalServiced, rs.RemoteServiced, rs.CostCycles = 0, 0, 0
	if !reflect.DeepEqual(&fs, &rs) {
		t.Errorf("two-ring topology changed classification\nflat: %sring: %s", &fs, &rs)
	}
	if ring.Stats().CostCycles == 0 {
		t.Error("two-ring run charged no cost; the comparison is vacuous")
	}
}

// TestSameRingSharersServiceLocally is the directed topology test:
// cross-ring cost must never be charged while a same-ring sharer
// exists. A trace confined to ring 0's processors, touching only
// blocks whose home ring is 0, can never be serviced remotely.
func TestSameRingSharersServiceLocally(t *testing.T) {
	cfg := DefaultConfig(8, 64)
	cfg.Topology = TopoTwoRing
	cfg.RingSize = 4 // procs 0-3 on ring 0, 4-7 on ring 1
	sim := mustNew(t, cfg)
	// Even blocks have home ring 0 (block % nrings with nrings == 2).
	for i := 0; i < 4000; i++ {
		proc := i % 4
		blk := int64(2 * (i % 37))
		addr := blk*64 + int64(i%16)*4
		sim.Access(proc, addr, 4, i%3 == 0)
	}
	st := sim.Stats()
	if st.RemoteServiced != 0 {
		t.Errorf("ring-0-only trace serviced %d misses across rings", st.RemoteServiced)
	}
	if st.LocalServiced != st.Misses() {
		t.Errorf("local services %d != misses %d", st.LocalServiced, st.Misses())
	}
	if st.CostCycles != st.Misses()*DefaultLocalLatency {
		t.Errorf("cost %d != misses * %d", st.CostCycles, DefaultLocalLatency)
	}
}

// TestCrossRingServiceCharged is the complementary directed test: a
// block cached only on another ring is always serviced remotely.
func TestCrossRingServiceCharged(t *testing.T) {
	cfg := DefaultConfig(8, 64)
	cfg.Topology = TopoTwoRing
	cfg.RingSize = 4
	sim := mustNew(t, cfg)
	// Proc 0 (ring 0) warms an even block (home ring 0): cold miss,
	// serviced locally by the home ring.
	sim.Access(0, 2*64, 4, true)
	if st := sim.Stats(); st.RemoteServiced != 0 || st.LocalServiced != 1 {
		t.Fatalf("home-ring cold fill mischarged: local=%d remote=%d", st.LocalServiced, st.RemoteServiced)
	}
	// Proc 4 (ring 1) reads it: the only copy lives on ring 0, so the
	// service must cross rings regardless of the home ring.
	sim.Access(4, 2*64, 4, false)
	st := sim.Stats()
	if st.RemoteServiced != 1 {
		t.Fatalf("cross-ring fetch not charged remotely: local=%d remote=%d", st.LocalServiced, st.RemoteServiced)
	}
	if st.CostCycles != DefaultLocalLatency+DefaultRemoteLatency {
		t.Errorf("cost %d != %d + %d", st.CostCycles, DefaultLocalLatency, DefaultRemoteLatency)
	}
	// Proc 5 (ring 1) reads it: its ring-mate's copy now services the
	// miss locally — cross-ring cost never applies with a same-ring
	// sharer.
	sim.Access(5, 2*64, 4, false)
	if got := sim.Stats().RemoteServiced; got != 1 {
		t.Errorf("same-ring sharer ignored: remote serviced %d, want 1", got)
	}
}

// TestSectorMatrixInvariants runs the sector-invalidation modes across
// a (protocol × sector × procs × block) matrix: class accounting must
// stay exact, and whole-line sharer bookkeeping must keep working
// when copies survive invalidation with masked sectors.
func TestSectorMatrixInvariants(t *testing.T) {
	for _, proto := range []Protocol{WriteInvalidate, MESI} {
		for _, sector := range []int64{4, 16, 64} {
			for _, nprocs := range []int{2, 8, 70} {
				for _, block := range []int64{64, 256} {
					if sector > block {
						continue
					}
					name := fmt.Sprintf("%v/s%d/p%d/b%d", proto, sector, nprocs, block)
					t.Run(name, func(t *testing.T) {
						cfg := DefaultConfig(nprocs, block)
						cfg.CacheSize = 4 * 1024
						cfg.Assoc = 2
						cfg.Protocol = proto
						cfg.SectorSize = sector
						sim := mustNew(t, cfg)
						for _, r := range genTrace(int64(nprocs)*3+sector+block, nprocs, 15000) {
							sim.Access(r.proc, r.addr, r.size, r.write)
						}
						st := sim.Stats()
						if st.Hits+st.Misses() != st.Refs {
							t.Errorf("hits %d + misses %d != refs %d", st.Hits, st.Misses(), st.Refs)
						}
						var pm int64
						for p := 0; p < nprocs; p++ {
							pm += st.ProcMisses[p]
						}
						if pm != st.Misses() {
							t.Errorf("per-proc misses %d != total %d", pm, st.Misses())
						}
					})
				}
			}
		}
	}
}

// TestSectorWordSizeEqualsWordInvalidate pins the design equivalence:
// SectorSize == WordSize is exactly the historical WordInvalidate
// mode. Every touched invalid sector is a remotely written word, so
// the word-granularity classifier agrees with the hardwired
// always-true-sharing rule, and the stats must be byte-identical
// (modulo the Config field naming the mode).
func TestSectorWordSizeEqualsWordInvalidate(t *testing.T) {
	for _, nprocs := range []int{2, 4, 8} {
		for _, block := range []int64{16, 64, 256} {
			cfg := DefaultConfig(nprocs, block)
			cfg.CacheSize = 4 * 1024
			cfg.Assoc = 2
			wcfg := cfg
			wcfg.WordInvalidate = true
			scfg := cfg
			scfg.SectorSize = WordSize
			wi := mustNew(t, wcfg)
			sec := mustNew(t, scfg)
			for i, r := range genTrace(int64(nprocs)*1000+block, nprocs, 25000) {
				kw := wi.Access(r.proc, r.addr, r.size, r.write)
				ks := sec.Access(r.proc, r.addr, r.size, r.write)
				if kw != ks {
					t.Fatalf("p%d b%d: ref %d (%+v): word-invalidate=%v sector4=%v",
						nprocs, block, i, r, kw, ks)
				}
			}
			ws, ss := *wi.Stats(), *sec.Stats()
			ws.Config, ss.Config = Config{}, Config{}
			if !reflect.DeepEqual(&ws, &ss) {
				t.Errorf("p%d b%d: SectorSize=4 diverges from WordInvalidate\nword:   %ssector: %s",
					nprocs, block, &ws, &ss)
			}
		}
	}
}

// TestCoarseSectorsReintroduceFalseSharing is the directed sector
// test: two processors touching different words of the same sector
// false-share at sector granularity (the refetch is a false-sharing
// miss — no word the reader uses was written), while word-granularity
// invalidation eliminates the miss entirely.
func TestCoarseSectorsReintroduceFalseSharing(t *testing.T) {
	run := func(cfg Config) *Stats {
		sim := mustNew(t, cfg)
		// Both processors warm the block, then proc 0 repeatedly
		// writes word 0 while proc 1 reads word 1 — same 32-byte
		// sector, disjoint words.
		sim.Access(1, 4, 4, false)
		sim.Access(0, 0, 4, false)
		for i := 0; i < 50; i++ {
			sim.Access(0, 0, 4, true)
			sim.Access(1, 4, 4, false)
		}
		return sim.Stats()
	}
	base := DefaultConfig(2, 64)

	coarse := base
	coarse.SectorSize = 32
	cs := run(coarse)
	if cs.FalseShare == 0 {
		t.Errorf("32-byte sectors produced no false sharing: %s", cs)
	}
	if cs.TrueShare != 0 {
		t.Errorf("disjoint-word ping-pong misclassified as true sharing: %s", cs)
	}

	word := base
	word.WordInvalidate = true
	wsS := run(word)
	if got := wsS.TrueShare + wsS.FalseShare; got != 0 {
		t.Errorf("word-granularity invalidation still took %d sharing misses: %s", got, wsS)
	}

	whole := base
	hs := run(whole)
	if hs.FalseShare == 0 {
		t.Errorf("whole-line invalidation produced no false sharing: %s", hs)
	}
}
