// Package cache implements the trace-driven multiprocessor cache
// simulator used to measure false sharing (paper §4): per-processor
// first-level caches kept coherent by a write-invalidate protocol,
// with miss classification at word granularity.
//
// Miss taxonomy:
//
//   - cold: the processor touches the block for the first time;
//   - replacement: the processor lost the block to eviction
//     (capacity/conflict) and re-references it;
//   - invalidation misses: the processor lost the block to another
//     processor's write. They split into
//     true sharing — a word accessed by the missing reference was
//     written by another processor since this processor lost the
//     block — and
//     false sharing — it was not: only *other* words of the block
//     changed, so with a one-word block the miss would not exist.
//
// This follows the classification used by Eggers/Jeremiassen and
// Torrellas et al.
//
// The per-reference bookkeeping is kept in flat paged tables rather
// than hash maps: every figure and table of the paper is produced by
// replaying tens of millions of references through Access, so the
// classification state (per-processor block metadata, per-word last
// writer/time) is indexed directly by block and word number through a
// two-level page directory. Pages are allocated on first touch and
// metadata is stored by value, so the steady-state hot path performs
// no hashing and no allocation.
package cache

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordSize is the sharing-classification granularity in bytes.
const WordSize = 4

// Config describes one simulated cache configuration.
type Config struct {
	NumProcs  int
	BlockSize int64 // bytes, power of two, >= 4 (<= 256 with WordInvalidate)

	// CacheSize is the per-processor first-level cache in bytes.
	// Rounding contract: New derives the set count as CacheSize /
	// (BlockSize × Assoc) rounded DOWN to a power of two (minimum 1)
	// so block numbers can be masked into sets. A CacheSize whose
	// division is not already a power of two therefore simulates the
	// next smaller power-of-two geometry — e.g. 48 KB with 64-byte
	// blocks at associativity 4 simulates 128 sets (32 KB), not 192.
	// The geometry actually simulated is surfaced as Stats.Sets and
	// Stats.EffectiveCacheSize in every report and manifest.
	CacheSize int64
	Assoc     int // set associativity (LRU); <= 0 defaults to 4

	// WordInvalidate models the hardware alternative of Dubois et al.
	// (paper §6): writes invalidate remote copies at word rather than
	// block granularity, so a subsequent read of an *unwritten* word
	// in the block still hits. This eliminates false-sharing misses
	// entirely in hardware, at the cost of per-word valid bits; the
	// ablation benchmarks compare it against the compile-time
	// transformations. WordInvalidate is exactly SectorSize ==
	// WordSize with the historical always-true-sharing classification;
	// setting both to conflicting granularities is a configuration
	// error.
	WordInvalidate bool

	// SectorSize enables sub-block (sector) invalidation: writes
	// invalidate remote copies at SectorSize-byte granularity instead
	// of killing the whole line. 0 (the default) keeps whole-line
	// invalidation. Must be a power of two in [WordSize, BlockSize]
	// with at most 64 sectors per block. Sector misses are classified
	// at word granularity: touching an invalidated sector whose
	// accessed words were NOT remotely written is a false-sharing miss
	// — sector granularity interpolates between word-invalidate
	// hardware (no false sharing) and whole-block invalidation.
	SectorSize int64

	// Protocol selects the coherence protocol (write-invalidate,
	// MESI, write-update); the zero value is the historical
	// write-invalidate. See protocol.go.
	Protocol Protocol

	// Topology selects the machine shape for miss costing; the zero
	// value (flat) charges nothing. TopoTwoRing models the KSR2's
	// two-level rings: RingSize processors per ring, LocalLatency
	// cycles for a same-ring miss service, RemoteLatency across rings
	// (defaults 32/175/600, the paper's numbers).
	Topology      Topology
	RingSize      int
	LocalLatency  int64
	RemoteLatency int64
}

// ConfigError reports an invalid simulator configuration, naming the
// offending field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("cache: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration the way New does. A non-power-of-
// two BlockSize would miscompute the block shift, so every addr>>shift
// block number — and with it every classification — would be garbage;
// a block larger than 64 words would overflow the per-word uint64
// invalidation mask in WordInvalidate mode. Both are rejected here
// rather than silently producing wrong data. Assoc 0 is allowed (New
// defaults it to 4).
func (c Config) Validate() error {
	if c.NumProcs < 1 {
		return &ConfigError{"NumProcs", fmt.Sprintf("must be >= 1 (got %d)", c.NumProcs)}
	}
	if c.BlockSize < WordSize {
		return &ConfigError{"BlockSize", fmt.Sprintf("must be >= %d bytes (got %d)", WordSize, c.BlockSize)}
	}
	if c.BlockSize&(c.BlockSize-1) != 0 {
		return &ConfigError{"BlockSize", fmt.Sprintf("must be a power of two (got %d)", c.BlockSize)}
	}
	if c.WordInvalidate && c.BlockSize > 64*WordSize {
		return &ConfigError{"BlockSize", fmt.Sprintf(
			"word-invalidate mode tracks at most 64 words per block (%d bytes); got %d",
			64*WordSize, c.BlockSize)}
	}
	if c.CacheSize < c.BlockSize {
		return &ConfigError{"CacheSize", fmt.Sprintf("must hold at least one block (%d bytes); got %d", c.BlockSize, c.CacheSize)}
	}
	if c.Assoc < 0 {
		return &ConfigError{"Assoc", fmt.Sprintf("must be >= 0 (got %d)", c.Assoc)}
	}
	if c.Protocol < 0 || c.Protocol >= protocolCount {
		return &ConfigError{"Protocol", fmt.Sprintf("unknown protocol %d", int(c.Protocol))}
	}
	if c.Topology < 0 || c.Topology >= topologyCount {
		return &ConfigError{"Topology", fmt.Sprintf("unknown topology %d", int(c.Topology))}
	}
	if c.SectorSize != 0 {
		if c.SectorSize < WordSize {
			return &ConfigError{"SectorSize", fmt.Sprintf("must be >= %d bytes (got %d)", WordSize, c.SectorSize)}
		}
		if c.SectorSize&(c.SectorSize-1) != 0 {
			return &ConfigError{"SectorSize", fmt.Sprintf("must be a power of two (got %d)", c.SectorSize)}
		}
		if c.SectorSize > c.BlockSize {
			return &ConfigError{"SectorSize", fmt.Sprintf("must not exceed BlockSize %d (got %d)", c.BlockSize, c.SectorSize)}
		}
		if c.BlockSize/c.SectorSize > 64 {
			return &ConfigError{"SectorSize", fmt.Sprintf(
				"sector invalidation tracks at most 64 sectors per block; %d-byte sectors in a %d-byte block need %d",
				c.SectorSize, c.BlockSize, c.BlockSize/c.SectorSize)}
		}
		// Cross-field: word-invalidate mode IS sector invalidation at
		// word granularity. A conflicting explicit SectorSize would
		// make the two knobs silently fight over the same invalidation
		// mask, so only the agreeing combination is accepted.
		if c.WordInvalidate && c.SectorSize != WordSize {
			return &ConfigError{"SectorSize", fmt.Sprintf(
				"conflicts with WordInvalidate: word-invalidate mode fixes the invalidation granularity at %d bytes (got SectorSize %d)",
				WordSize, c.SectorSize)}
		}
	}
	if c.Protocol == WriteUpdate {
		// An update protocol never invalidates remote copies, so both
		// invalidation-granularity knobs are meaningless with it —
		// reject the combination instead of silently ignoring a knob.
		if c.WordInvalidate {
			return &ConfigError{"Protocol", "write-update never invalidates; WordInvalidate does not apply"}
		}
		if c.SectorSize != 0 {
			return &ConfigError{"Protocol", "write-update never invalidates; SectorSize does not apply"}
		}
	}
	if c.Topology == TopoTwoRing {
		if c.RingSize < 0 {
			return &ConfigError{"RingSize", fmt.Sprintf("must be >= 0 (got %d; 0 takes the KSR2 default of %d)", c.RingSize, DefaultRingSize)}
		}
		if c.LocalLatency < 0 || c.RemoteLatency < 0 {
			return &ConfigError{"LocalLatency", fmt.Sprintf(
				"ring latencies must be >= 0 (got local %d, remote %d; 0 takes the KSR2 defaults %d/%d)",
				c.LocalLatency, c.RemoteLatency, DefaultLocalLatency, DefaultRemoteLatency)}
		}
	} else {
		if c.RingSize != 0 || c.LocalLatency != 0 || c.RemoteLatency != 0 {
			return &ConfigError{"Topology", fmt.Sprintf(
				"ring parameters (RingSize %d, LocalLatency %d, RemoteLatency %d) require Topology two-ring",
				c.RingSize, c.LocalLatency, c.RemoteLatency)}
		}
	}
	return nil
}

// DefaultConfig is the paper's simulated machine: 32 KB first-level
// caches (infinite second level) with the given block size.
func DefaultConfig(nprocs int, blockSize int64) Config {
	return Config{NumProcs: nprocs, BlockSize: blockSize, CacheSize: 32 * 1024, Assoc: 4}
}

// MissKind classifies one reference's outcome. The order is the
// severity order Access uses for block-spanning references: sharing
// misses rank above replacement and cold, and false sharing — the
// avoidable class this whole system exists to eliminate — ranks above
// true sharing.
type MissKind int

const (
	Hit MissKind = iota
	Cold
	Replacement
	TrueSharing
	FalseSharing
)

func (k MissKind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Cold:
		return "cold"
	case Replacement:
		return "replacement"
	case TrueSharing:
		return "true-sharing"
	case FalseSharing:
		return "false-sharing"
	}
	return "miss?"
}

// Stats accumulates simulation results.
type Stats struct {
	Config Config

	// Sets and EffectiveCacheSize record the cache geometry actually
	// simulated: the set count is CacheSize / (BlockSize × Assoc)
	// rounded down to a power of two (see the rounding contract on
	// Config.CacheSize), so EffectiveCacheSize — Sets × BlockSize ×
	// Assoc — can be smaller than the CacheSize the configuration
	// names. Surfaced here so the round-down is visible in every
	// stats report and manifest instead of silently shrinking the
	// machine.
	Sets               int64
	EffectiveCacheSize int64

	Refs   int64
	Reads  int64
	Writes int64

	Hits       int64
	Cold       int64
	Replace    int64
	TrueShare  int64
	FalseShare int64

	// Upgrades counts write hits to shared lines (ownership
	// acquisitions that invalidate other copies but transfer no data).
	Upgrades int64
	// Invalidations counts line invalidations caused in other caches.
	Invalidations int64

	// SilentUpgrades counts MESI Exclusive→Modified transitions:
	// ownership acquisitions the E state makes free (no bus
	// transaction). Always zero outside the MESI protocol. For any
	// trace, write-invalidate's Upgrades equals MESI's Upgrades +
	// SilentUpgrades — the E state converts bus upgrades into silent
	// ones, it never changes miss classification.
	SilentUpgrades int64
	// Updates counts remote cached copies refreshed by writes under
	// the write-update protocol (one per copy per broadcast write).
	// Always zero outside write-update.
	Updates int64

	// Two-level topology decomposition (TopoTwoRing; all zero on the
	// flat topology): every miss is serviced either on the
	// requester's own ring or across rings, and CostCycles totals the
	// asymmetric service latencies — exactly LocalServiced *
	// LocalLatency + RemoteServiced * RemoteLatency.
	LocalServiced  int64
	RemoteServiced int64
	CostCycles     int64

	// Per-processor counters for the execution-time model and the
	// per-miss-class decomposition (§5's per-processor attribution).
	ProcRefs    []int64
	ProcMisses  []int64
	ProcCold    []int64
	ProcReplace []int64
	ProcTS      []int64 // true-sharing misses
	ProcFS      []int64 // false-sharing misses
	ProcRemote  []int64 // misses serviced by another processor's cache
}

// ProcStats is one processor's view of the simulation, for reports.
type ProcStats struct {
	Proc       int   `json:"proc"`
	Refs       int64 `json:"refs"`
	Misses     int64 `json:"misses"`
	Cold       int64 `json:"cold"`
	Replace    int64 `json:"replace"`
	TrueShare  int64 `json:"true_share"`
	FalseShare int64 `json:"false_share"`
	Remote     int64 `json:"remote"`
}

// PerProc decomposes the stats by processor.
func (s *Stats) PerProc() []ProcStats {
	out := make([]ProcStats, len(s.ProcRefs))
	for p := range out {
		out[p] = ProcStats{
			Proc:       p,
			Refs:       s.ProcRefs[p],
			Misses:     s.ProcMisses[p],
			Cold:       s.ProcCold[p],
			Replace:    s.ProcReplace[p],
			TrueShare:  s.ProcTS[p],
			FalseShare: s.ProcFS[p],
			Remote:     s.ProcRemote[p],
		}
	}
	return out
}

// Misses returns the total miss count.
func (s *Stats) Misses() int64 { return s.Cold + s.Replace + s.TrueShare + s.FalseShare }

// MissRate returns misses per reference.
func (s *Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Refs)
}

// FSRate returns the false-sharing miss rate (false-sharing misses per
// reference) — the white portion of the paper's Figure 3 bars.
func (s *Stats) FSRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.FalseShare) / float64(s.Refs)
}

// OtherRate returns the non-false-sharing miss rate (the black
// portion of the Figure 3 bars).
func (s *Stats) OtherRate() float64 { return s.MissRate() - s.FSRate() }

// String renders the stats.
func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "refs=%d (r=%d w=%d) missrate=%.4f%%\n", s.Refs, s.Reads, s.Writes, 100*s.MissRate())
	fmt.Fprintf(&sb, "  cold=%d replace=%d true=%d false=%d upgrades=%d inval=%d\n",
		s.Cold, s.Replace, s.TrueShare, s.FalseShare, s.Upgrades, s.Invalidations)
	return sb.String()
}

// line is one cache line.
type line struct {
	tag   int64 // block address
	valid bool
	state byte // stateShared, stateModified or stateExclusive (MESI)
	lru   int64
	// invMask marks per-sector invalidations (WordInvalidate and
	// SectorSize modes): bit s set means sector s of the block was
	// written remotely and must be refetched before use. In
	// word-invalidate mode a sector is one word.
	invMask uint64
	// invAt is the time of the oldest outstanding sector invalidation
	// (the classification epoch for sector misses); invBy/invAddr
	// record the write responsible, for false-sharing attribution.
	// All three reset when the line refetches.
	invAt   int64
	invAddr int64
	invBy   int32
}

const (
	stateShared    byte = 0
	stateModified  byte = 1
	stateExclusive byte = 2 // MESI only: sole copy, clean
)

// blockMeta tracks why a processor lost a block, for classification.
// Stored by value inside metaTable pages. lostBy and lostAddr record
// the processor and address of the write that invalidated the copy;
// they are maintained only while an Attributor is installed (the
// classification itself never reads them) so the uninstalled hot path
// stores nothing extra.
type blockMeta struct {
	lostAt    int64
	lostAddr  int64
	lostBy    int32
	seen      bool
	resident  bool
	lostByInv bool
}

// wordStamp records the last write to one word: who wrote it and the
// simulator time of the write. The time doubles as the validity epoch:
// the zero value (time 0) means "never written", and every real write
// carries a time >= 1, so pages need no separate initialization or
// clearing when they are first touched.
type wordStamp struct {
	time   int64
	writer int32
}

// The page tables below replace the map[int64] bookkeeping of earlier
// versions. Both are two-level structures: a directory of fixed-size
// pages indexed by (key >> pageShift), with the page entry picked by
// the low bits. The directory is a plain slice for the dense low range
// every real trace lives in; page indices beyond maxDirectPages — or
// negative ones, which only corrupted replay traces produce — fall
// back to a small overflow map so a single wild address cannot force a
// giant directory allocation.
const (
	pageShift = 12
	pageSize  = 1 << pageShift // entries per page
	pageMask  = pageSize - 1

	// maxDirectPages bounds the slice directory: 64K pages × 4K
	// entries covers the first 256M blocks/words (a 4 GB address
	// space at the smallest block size) with direct indexing.
	maxDirectPages = 1 << 16
)

type metaPage [pageSize]blockMeta

// metaTable is one processor's block-number → blockMeta table.
type metaTable struct {
	pages    []*metaPage
	overflow map[int64]*metaPage
}

// at returns the metadata slot for a block, allocating its page on
// first touch. The fast path is two bounds checks and two indexed
// loads; the returned pointer stays valid forever (pages are never
// moved or freed).
func (t *metaTable) at(block int64) *blockMeta {
	pi := block >> pageShift
	if uint64(pi) < uint64(len(t.pages)) {
		if p := t.pages[pi]; p != nil {
			return &p[block&pageMask]
		}
	}
	return t.slow(block, pi)
}

func (t *metaTable) slow(block, pi int64) *blockMeta {
	if pi >= 0 && pi < maxDirectPages {
		if pi >= int64(len(t.pages)) {
			pages := make([]*metaPage, pi+1)
			copy(pages, t.pages)
			t.pages = pages
		}
		p := t.pages[pi]
		if p == nil {
			p = new(metaPage)
			t.pages[pi] = p
		}
		return &p[block&pageMask]
	}
	if t.overflow == nil {
		t.overflow = make(map[int64]*metaPage)
	}
	p := t.overflow[pi]
	if p == nil {
		p = new(metaPage)
		t.overflow[pi] = p
	}
	return &p[block&pageMask]
}

type wordPage [pageSize]wordStamp

// wordTable is the global word-number → last-writer table.
type wordTable struct {
	pages    []*wordPage
	overflow map[int64]*wordPage
}

// at returns the stamp slot for a word, allocating its page on first
// touch (used on the write path).
func (t *wordTable) at(word int64) *wordStamp {
	pi := word >> pageShift
	if uint64(pi) < uint64(len(t.pages)) {
		if p := t.pages[pi]; p != nil {
			return &p[word&pageMask]
		}
	}
	return t.slow(word, pi)
}

func (t *wordTable) slow(word, pi int64) *wordStamp {
	if pi >= 0 && pi < maxDirectPages {
		if pi >= int64(len(t.pages)) {
			pages := make([]*wordPage, pi+1)
			copy(pages, t.pages)
			t.pages = pages
		}
		p := t.pages[pi]
		if p == nil {
			p = new(wordPage)
			t.pages[pi] = p
		}
		return &p[word&pageMask]
	}
	if t.overflow == nil {
		t.overflow = make(map[int64]*wordPage)
	}
	p := t.overflow[pi]
	if p == nil {
		p = new(wordPage)
		t.overflow[pi] = p
	}
	return &p[word&pageMask]
}

// get returns the stamp for a word without allocating: words never
// written read as the zero stamp (used on the classification path, so
// classifying misses over cold regions costs no memory).
func (t *wordTable) get(word int64) wordStamp {
	pi := word >> pageShift
	if uint64(pi) < uint64(len(t.pages)) {
		if p := t.pages[pi]; p != nil {
			return p[word&pageMask]
		}
		return wordStamp{}
	}
	if t.overflow != nil {
		if p := t.overflow[pi]; p != nil {
			return p[word&pageMask]
		}
	}
	return wordStamp{}
}

// sharerTable is a directory-style presence vector: for each block, a
// bitmask of the processors whose cache currently holds a valid copy.
// It turns the coherence broadcasts — "who else holds this block?",
// "invalidate every other copy" — from O(nprocs × assoc) tag scans
// into a load plus a walk over the set bits, which on real traces is
// almost always zero or one sharer. The vector is words uint64s per
// block (words = ceil(NumProcs/64), fixed at New time): 64-processor
// machines keep the historical single-word layout and one-load fast
// path, and wider machines — the 128–1024-processor KSR2-scale
// configurations — walk the extra words with the same
// TrailingZeros64 loops. There is no scan fallback at any width.
type sharerTable struct {
	words    int64 // uint64s per block vector: ceil(NumProcs/64)
	pages    [][]uint64
	overflow map[int64][]uint64
}

// at returns the vector slot for a block, allocating its page on first
// touch (used when the vector is mutated: fills, evictions,
// invalidations). The returned slice aliases the page and stays valid
// forever; slicing an existing page allocates nothing.
func (t *sharerTable) at(block int64) []uint64 {
	pi := block >> pageShift
	if uint64(pi) < uint64(len(t.pages)) {
		if p := t.pages[pi]; p != nil {
			off := (block & pageMask) * t.words
			return p[off : off+t.words : off+t.words]
		}
	}
	return t.slow(block, pi)
}

func (t *sharerTable) slow(block, pi int64) []uint64 {
	var p []uint64
	if pi >= 0 && pi < maxDirectPages {
		if pi >= int64(len(t.pages)) {
			pages := make([][]uint64, pi+1)
			copy(pages, t.pages)
			t.pages = pages
		}
		p = t.pages[pi]
		if p == nil {
			p = make([]uint64, pageSize*t.words)
			t.pages[pi] = p
		}
	} else {
		if t.overflow == nil {
			t.overflow = make(map[int64][]uint64)
		}
		p = t.overflow[pi]
		if p == nil {
			p = make([]uint64, pageSize*t.words)
			t.overflow[pi] = p
		}
	}
	off := (block & pageMask) * t.words
	return p[off : off+t.words : off+t.words]
}

// get returns the vector without allocating: blocks never cached read
// as nil (no sharers), and ranging over a nil slice visits nothing.
func (t *sharerTable) get(block int64) []uint64 {
	pi := block >> pageShift
	if uint64(pi) < uint64(len(t.pages)) {
		if p := t.pages[pi]; p != nil {
			off := (block & pageMask) * t.words
			return p[off : off+t.words : off+t.words]
		}
		return nil
	}
	if t.overflow != nil {
		if p := t.overflow[pi]; p != nil {
			off := (block & pageMask) * t.words
			return p[off : off+t.words : off+t.words]
		}
	}
	return nil
}

// set and unset maintain one processor's presence bit (fill/evict).
func (t *sharerTable) set(block int64, proc int) {
	t.at(block)[proc>>6] |= 1 << uint(proc&63)
}

func (t *sharerTable) unset(block int64, proc int) {
	t.at(block)[proc>>6] &^= 1 << uint(proc&63)
}

// Sim is the multiprocessor cache simulator.
type Sim struct {
	cfg      Config
	nsets    int64
	blkShift uint
	setMask  int64
	assoc    int64 // cfg.Assoc, precomputed as int64 for set-base math

	caches [][]line    // [proc][set*assoc+way]
	meta   []metaTable // [proc] block classification state

	// words records the last writer and time per word.
	words wordTable

	// sharers tracks which processors hold each block (see
	// sharerTable): a multi-word presence vector sized from NumProcs
	// at New time, so every width from 1 to 1024+ processors takes
	// the same directory-walk coherence paths.
	sharers sharerTable

	// Protocol/topology/sector state (see protocol.go). sectored is
	// set for both WordInvalidate and SectorSize modes; secShift is
	// the log2 of the invalidation granularity (2 for word mode).
	// ringMasks[r] is the sharer-vector footprint of ring r, in the
	// same multi-word layout as the sharer table.
	protocol  Protocol
	sectored  bool
	secShift  uint
	twoRing   bool
	nrings    int
	ringMasks [][]uint64

	time  int64
	stats Stats

	// Sampling hook (SetSampler): sampler is invoked every
	// sampleEvery block references so long simulations can stream
	// progress.
	sampleEvery int64
	sampler     func(*Stats)

	// Attribution hook (SetAttributor). Like the sampler and the obs
	// recorder, a nil hook costs a single predictable branch on the
	// miss and invalidation paths and nothing on hits.
	attr Attributor
}

// Attributor receives miss-provenance events from the simulator. It
// is the bridge to the attribution layer (internal/sim/attr): the
// simulator reports raw processors and addresses, the attributor maps
// them back to objects and fields.
//
// OnMiss fires once per non-hit block-level access (block-spanning
// references fire once per covered block, matching how Stats count).
// For sharing misses, writer is the processor whose write caused the
// miss and writerAddr the address it wrote: for true sharing the most
// recent remote write to a word the access covers, for false sharing
// the write that invalidated this processor's copy. For cold and
// replacement misses writer is -1.
//
// OnInvalidate fires once per cache line invalidated in another
// processor's cache: writer performed the write of [addr, addr+size)
// that cost victim its copy (in WordInvalidate mode, its copy of the
// written words).
//
// Callbacks run synchronously on the Access path; implementations
// must be fast and must not call back into the Sim.
type Attributor interface {
	OnMiss(proc int, addr, size int64, write bool, kind MissKind, writer int, writerAddr int64)
	OnInvalidate(writer int, addr, size int64, victim int)
}

// New builds a simulator. The configuration is validated first (see
// Config.Validate); an invalid one returns a *ConfigError instead of a
// simulator that silently misclassifies every reference.
func New(cfg Config) (*Sim, error) {
	if cfg.Assoc == 0 {
		cfg.Assoc = 4
	}
	if cfg.Topology == TopoTwoRing {
		if cfg.RingSize == 0 {
			cfg.RingSize = DefaultRingSize
		}
		if cfg.LocalLatency == 0 {
			cfg.LocalLatency = DefaultLocalLatency
		}
		if cfg.RemoteLatency == 0 {
			cfg.RemoteLatency = DefaultRemoteLatency
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.CacheSize / (cfg.BlockSize * int64(cfg.Assoc))
	if nsets < 1 {
		nsets = 1
	}
	// Round sets down to a power of two for masking.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	s := &Sim{
		cfg:      cfg,
		nsets:    nsets,
		setMask:  nsets - 1,
		assoc:    int64(cfg.Assoc),
		protocol: cfg.Protocol,
	}
	s.sharers.words = int64((cfg.NumProcs + 63) / 64)
	for b := cfg.BlockSize; b > 1; b >>= 1 {
		s.blkShift++
	}
	switch {
	case cfg.WordInvalidate:
		s.sectored, s.secShift = true, 2 // one word per sector
	case cfg.SectorSize > 0:
		s.sectored = true
		for b := cfg.SectorSize; b > 1; b >>= 1 {
			s.secShift++
		}
	}
	if cfg.Topology == TopoTwoRing {
		s.twoRing = true
		s.nrings = (cfg.NumProcs + cfg.RingSize - 1) / cfg.RingSize
		s.ringMasks = make([][]uint64, s.nrings)
		flat := make([]uint64, int64(s.nrings)*s.sharers.words)
		for r := range s.ringMasks {
			s.ringMasks[r] = flat[int64(r)*s.sharers.words : int64(r+1)*s.sharers.words]
		}
		for p := 0; p < cfg.NumProcs; p++ {
			s.ringMasks[p/cfg.RingSize][p>>6] |= 1 << uint(p&63)
		}
	}
	s.caches = make([][]line, cfg.NumProcs)
	s.meta = make([]metaTable, cfg.NumProcs)
	for p := 0; p < cfg.NumProcs; p++ {
		s.caches[p] = make([]line, nsets*int64(cfg.Assoc))
	}
	s.stats.Config = cfg
	s.stats.Sets = nsets
	s.stats.EffectiveCacheSize = nsets * cfg.BlockSize * int64(cfg.Assoc)
	s.stats.ProcRefs = make([]int64, cfg.NumProcs)
	s.stats.ProcMisses = make([]int64, cfg.NumProcs)
	s.stats.ProcCold = make([]int64, cfg.NumProcs)
	s.stats.ProcReplace = make([]int64, cfg.NumProcs)
	s.stats.ProcTS = make([]int64, cfg.NumProcs)
	s.stats.ProcFS = make([]int64, cfg.NumProcs)
	s.stats.ProcRemote = make([]int64, cfg.NumProcs)
	return s, nil
}

// Stats returns the accumulated statistics.
func (s *Sim) Stats() *Stats { return &s.stats }

// SetSampler installs fn, invoked synchronously with the running
// stats after every n block references (n <= 0 disables sampling).
// The callback must not retain the *Stats across calls: it points at
// the simulator's live accumulator.
func (s *Sim) SetSampler(n int64, fn func(*Stats)) {
	s.sampleEvery = n
	s.sampler = fn
}

// SetAttributor installs the attribution hook (nil uninstalls it).
// Install it before the first Access: writer provenance for false
// sharing is recorded at invalidation time, so misses whose
// invalidation predates installation report writer -1.
func (s *Sim) SetAttributor(a Attributor) { s.attr = a }

// Access simulates one memory reference, splitting it at block
// boundaries if necessary (an 8-byte access with 4-byte blocks spans
// two blocks). Stats count every sub-block access individually; the
// returned classification is the most severe one across the
// sub-blocks in MissKind order (Hit < Cold < Replacement <
// TrueSharing < FalseSharing), so a caller tallying return values
// sees a sharing miss whenever any part of the reference incurred
// one.
func (s *Sim) Access(proc int, addr int64, size int64, write bool) MissKind {
	worst := s.accessBlock(proc, addr, min64(size, s.cfg.BlockSize-addr%s.cfg.BlockSize), write)
	end := addr + size
	next := (addr>>s.blkShift + 1) << s.blkShift
	for next < end {
		n := min64(end-next, s.cfg.BlockSize)
		if k := s.accessBlock(proc, next, n, write); k > worst {
			worst = k
		}
		next += s.cfg.BlockSize
	}
	return worst
}

func (s *Sim) accessBlock(proc int, addr, size int64, write bool) MissKind {
	s.time++
	s.stats.Refs++
	s.stats.ProcRefs[proc]++
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	if s.sampleEvery > 0 && s.stats.Refs%s.sampleEvery == 0 {
		s.sampler(&s.stats)
	}

	block := addr >> s.blkShift
	base := (block & s.setMask) * s.assoc
	ways := s.caches[proc][base : base+s.assoc]

	// Lookup.
	hitWay := -1
	for w := range ways {
		if ways[w].valid && ways[w].tag == block {
			hitWay = w
			break
		}
	}

	kind := Hit
	if hitWay >= 0 {
		ln := &ways[hitWay]
		// Sector modes (WordInvalidate, SectorSize): a resident line
		// may hold remotely written (invalid) sectors; touching one
		// refetches the block and classifies as a sharing miss.
		if s.sectored && ln.invMask&s.sectorBits(addr, size) != 0 {
			return s.sectorMiss(proc, block, addr, size, write, ln)
		}
		ln.lru = s.time
		if write && ln.state == stateShared {
			s.stats.Upgrades++
			if s.protocol != WriteUpdate {
				s.invalidateOthers(proc, block, addr, size)
			}
			ln.state = stateModified
		} else if write && ln.state == stateExclusive {
			// MESI: the sole clean copy takes ownership silently — the
			// bus transaction the E state exists to avoid.
			s.stats.SilentUpgrades++
		}
		if write {
			ln.state = stateModified
			if s.protocol == WriteUpdate {
				s.updateOthers(proc, block)
			}
			if s.sectored {
				s.invalidateSectors(proc, block, addr, size)
			}
			s.recordWrite(proc, addr, size)
		}
		s.stats.Hits++
		return Hit
	}

	// Miss: classify.
	bm := s.meta[proc].at(block)
	missWriter, missWriterAddr := -1, int64(0)
	switch {
	case !bm.seen:
		kind = Cold
		s.stats.Cold++
		s.stats.ProcCold[proc]++
	case bm.lostByInv:
		if s.attr == nil {
			if s.modifiedByOtherSince(proc, addr, size, bm.lostAt) {
				kind = TrueSharing
				s.stats.TrueShare++
				s.stats.ProcTS[proc]++
			} else {
				kind = FalseSharing
				s.stats.FalseShare++
				s.stats.ProcFS[proc]++
			}
		} else if wr, wa, ok := s.lastOtherWriter(proc, addr, size, bm.lostAt); ok {
			// Same scan as modifiedByOtherSince, but it keeps the
			// writer: a covered word was remotely written, so the miss
			// is true sharing attributed to that write.
			kind = TrueSharing
			s.stats.TrueShare++
			s.stats.ProcTS[proc]++
			missWriter, missWriterAddr = wr, wa
		} else {
			kind = FalseSharing
			s.stats.FalseShare++
			s.stats.ProcFS[proc]++
			// Only other words changed: blame the invalidating write
			// recorded when the copy was lost.
			missWriter, missWriterAddr = int(bm.lostBy), bm.lostAddr
		}
	default:
		kind = Replacement
		s.stats.Replace++
		s.stats.ProcReplace[proc]++
	}
	s.stats.ProcMisses[proc]++
	remote := s.heldElsewhere(proc, block)
	if remote {
		s.stats.ProcRemote[proc]++
	}
	s.chargeMiss(proc, block)
	if s.attr != nil {
		s.attr.OnMiss(proc, addr, size, write, kind, missWriter, missWriterAddr)
	}

	// Fill: evict the LRU way.
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid {
		// Record eviction of the old block.
		old := ways[victim].tag
		obm := s.meta[proc].at(old)
		if obm.resident {
			obm.resident = false
			obm.lostByInv = false
			obm.lostAt = s.time
		}
		s.sharers.unset(old, proc)
	}
	st := stateShared
	if write {
		st = stateModified
		if s.protocol == WriteUpdate {
			s.updateOthers(proc, block)
		} else {
			s.invalidateOthers(proc, block, addr, size)
		}
		if s.sectored {
			s.invalidateSectors(proc, block, addr, size)
		}
		s.recordWrite(proc, addr, size)
	} else if s.protocol == MESI {
		// MESI read fill: the sole copy fills Exclusive; otherwise the
		// other holders snoop down to Shared so their next write is a
		// bus-visible upgrade again.
		if remote {
			s.downgradeOthers(proc, block)
		} else {
			st = stateExclusive
		}
	}
	ways[victim] = line{tag: block, valid: true, state: st, lru: s.time}
	s.sharers.set(block, proc)
	bm.seen = true
	bm.resident = true
	return kind
}

// invalidateOthers removes the block from every other processor's
// cache, marking the loss as invalidation for classification. addr
// and size identify the write responsible; they feed the attribution
// hook and are otherwise unused. Callers in the sector modes use
// invalidateSectors instead for data writes; this whole-line variant
// remains for fills acquiring ownership.
func (s *Sim) invalidateOthers(proc int, block, addr, size int64) {
	if s.sectored {
		// Ownership transfers still happen, but copies stay readable
		// for their valid sectors; nothing to do here (the written
		// sectors are invalidated by invalidateSectors).
		return
	}
	base := (block & s.setMask) * s.assoc
	vec := s.sharers.at(block)
	for wi := range vec {
		others := vec[wi]
		if wi == proc>>6 {
			others &^= 1 << uint(proc&63)
		}
		for m := others; m != 0; m &= m - 1 {
			p := wi<<6 + bits.TrailingZeros64(m)
			ways := s.caches[p][base : base+s.assoc]
			for w := range ways {
				if ways[w].valid && ways[w].tag == block {
					ways[w].valid = false
					s.stats.Invalidations++
					bm := s.meta[p].at(block)
					bm.resident = false
					bm.lostByInv = true
					bm.lostAt = s.time
					if s.attr != nil {
						bm.lostBy = int32(proc)
						bm.lostAddr = addr
						s.attr.OnInvalidate(proc, addr, size, p)
					}
				}
			}
		}
		vec[wi] &^= others
	}
}

// sectorBits returns the per-sector bit mask covered by [addr,
// addr+size) within its block (per-word in WordInvalidate mode).
//
// The w < 64 clamp below is load-bearing only because Validate caps a
// block at 64 sectors (and WordInvalidate blocks at 64 words): the
// widest legal geometry puts the block's last sector exactly at bit
// 63, so the clamp never drops a sector of a valid configuration — it
// only keeps the shift in range if a corrupted size ever reaches this
// path. TestSectorBit63Exercised pins the 64-sector edge so a future
// relaxation of the Validate invariant cannot silently truncate here.
func (s *Sim) sectorBits(addr, size int64) uint64 {
	blockStart := addr >> s.blkShift << s.blkShift
	first := (addr - blockStart) >> s.secShift
	last := (addr + size - 1 - blockStart) >> s.secShift
	var m uint64
	for w := first; w <= last && w < 64; w++ {
		m |= 1 << uint(w)
	}
	return m
}

// sectorMiss handles a reference that hit a resident line but touched
// a remotely invalidated sector: the block refetches, counted as a
// sharing miss. In word-invalidate mode the touched word itself was
// remotely written, so the miss is always true sharing (the
// historical classification). With coarser sectors the remote write
// may have hit a *different* word of the same sector, so the miss
// classifies at word granularity against the line's invalidation
// epoch: true sharing when a covered word changed remotely since the
// epoch, false sharing otherwise — sector granularity reintroduces
// exactly the within-sector false sharing that word-invalidate
// hardware eliminates.
func (s *Sim) sectorMiss(proc int, block, addr, size int64, write bool, ln *line) MissKind {
	kind := TrueSharing
	if !s.cfg.WordInvalidate && !s.modifiedByOtherSince(proc, addr, size, ln.invAt) {
		kind = FalseSharing
	}
	invBy, invAddr := int(ln.invBy), ln.invAddr
	ln.invMask = 0
	ln.invAt, ln.invBy, ln.invAddr = 0, 0, 0
	ln.lru = s.time
	if write {
		ln.state = stateModified
		s.invalidateSectors(proc, block, addr, size)
		s.recordWrite(proc, addr, size)
	} else {
		ln.state = stateShared
	}
	if kind == TrueSharing {
		s.stats.TrueShare++
		s.stats.ProcTS[proc]++
	} else {
		s.stats.FalseShare++
		s.stats.ProcFS[proc]++
	}
	s.stats.ProcMisses[proc]++
	if s.heldElsewhere(proc, block) {
		s.stats.ProcRemote[proc]++
	}
	s.chargeMiss(proc, block)
	if s.attr != nil {
		if kind == TrueSharing {
			wr, wa, ok := s.lastOtherWriter(proc, addr, size, 1)
			if !ok {
				wr, wa = -1, 0
			}
			s.attr.OnMiss(proc, addr, size, write, TrueSharing, wr, wa)
		} else {
			// Only other sectors' words changed: blame the write that
			// opened the line's invalidation epoch.
			s.attr.OnMiss(proc, addr, size, write, FalseSharing, invBy, invAddr)
		}
	}
	return kind
}

// invalidateSectors marks the written sectors invalid in every other
// cache holding the block (WordInvalidate and SectorSize modes). A
// line's first outstanding sector invalidation opens its
// classification epoch (invAt) and records the write responsible.
func (s *Sim) invalidateSectors(proc int, block, addr, size int64) {
	sbits := s.sectorBits(addr, size)
	base := (block & s.setMask) * s.assoc
	// Copies stay resident (only the written sectors are masked), so
	// the sharer vector is read, not cleared.
	vec := s.sharers.get(block)
	for wi := range vec {
		others := vec[wi]
		if wi == proc>>6 {
			others &^= 1 << uint(proc&63)
		}
		for m := others; m != 0; m &= m - 1 {
			p := wi<<6 + bits.TrailingZeros64(m)
			ways := s.caches[p][base : base+s.assoc]
			for w := range ways {
				if ways[w].valid && ways[w].tag == block {
					if ways[w].invMask&sbits != sbits {
						s.stats.Invalidations++
						if s.attr != nil {
							s.attr.OnInvalidate(proc, addr, size, p)
						}
					}
					if ways[w].invMask == 0 {
						ways[w].invAt = s.time
						ways[w].invBy = int32(proc)
						ways[w].invAddr = addr
					}
					ways[w].invMask |= sbits
				}
			}
		}
	}
}

// heldElsewhere reports whether another processor's cache holds the
// block (the miss would be serviced cache-to-cache on the KSR).
func (s *Sim) heldElsewhere(proc int, block int64) bool {
	vec := s.sharers.get(block)
	for wi, m := range vec {
		if wi == proc>>6 {
			m &^= 1 << uint(proc&63)
		}
		if m != 0 {
			return true
		}
	}
	return false
}

// recordWrite stamps the words covered by a write.
func (s *Sim) recordWrite(proc int, addr, size int64) {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		st := s.words.at(w)
		st.time = s.time
		st.writer = int32(proc)
	}
}

// modifiedByOtherSince reports whether any word covered by [addr,
// addr+size) was written by a processor other than proc at or after t.
func (s *Sim) modifiedByOtherSince(proc int, addr, size, t int64) bool {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		if st := s.words.get(w); st.time >= t && st.writer != int32(proc) {
			return true
		}
	}
	return false
}

// lastOtherWriter is modifiedByOtherSince with provenance: it returns
// the processor and word address of the most recent qualifying remote
// write, for the attribution hook.
func (s *Sim) lastOtherWriter(proc int, addr, size, t int64) (writer int, waddr int64, ok bool) {
	best := int64(0)
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		if st := s.words.get(w); st.time >= t && st.writer != int32(proc) && st.time > best {
			best = st.time
			writer = int(st.writer)
			waddr = w * WordSize
			ok = true
		}
	}
	return writer, waddr, ok
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
