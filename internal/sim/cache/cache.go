// Package cache implements the trace-driven multiprocessor cache
// simulator used to measure false sharing (paper §4): per-processor
// first-level caches kept coherent by a write-invalidate protocol,
// with miss classification at word granularity.
//
// Miss taxonomy:
//
//   - cold: the processor touches the block for the first time;
//   - replacement: the processor lost the block to eviction
//     (capacity/conflict) and re-references it;
//   - invalidation misses: the processor lost the block to another
//     processor's write. They split into
//     true sharing — a word accessed by the missing reference was
//     written by another processor since this processor lost the
//     block — and
//     false sharing — it was not: only *other* words of the block
//     changed, so with a one-word block the miss would not exist.
//
// This follows the classification used by Eggers/Jeremiassen and
// Torrellas et al.
package cache

import (
	"fmt"
	"strings"
)

// WordSize is the sharing-classification granularity in bytes.
const WordSize = 4

// Config describes one simulated cache configuration.
type Config struct {
	NumProcs  int
	BlockSize int64 // bytes, power of two, 4..256
	CacheSize int64 // per-processor first-level cache, bytes
	Assoc     int   // set associativity (LRU)

	// WordInvalidate models the hardware alternative of Dubois et al.
	// (paper §6): writes invalidate remote copies at word rather than
	// block granularity, so a subsequent read of an *unwritten* word
	// in the block still hits. This eliminates false-sharing misses
	// entirely in hardware, at the cost of per-word valid bits; the
	// ablation benchmarks compare it against the compile-time
	// transformations.
	WordInvalidate bool
}

// DefaultConfig is the paper's simulated machine: 32 KB first-level
// caches (infinite second level) with the given block size.
func DefaultConfig(nprocs int, blockSize int64) Config {
	return Config{NumProcs: nprocs, BlockSize: blockSize, CacheSize: 32 * 1024, Assoc: 4}
}

// MissKind classifies one reference's outcome.
type MissKind int

const (
	Hit MissKind = iota
	Cold
	Replacement
	TrueSharing
	FalseSharing
)

func (k MissKind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Cold:
		return "cold"
	case Replacement:
		return "replacement"
	case TrueSharing:
		return "true-sharing"
	case FalseSharing:
		return "false-sharing"
	}
	return "miss?"
}

// Stats accumulates simulation results.
type Stats struct {
	Config Config

	Refs   int64
	Reads  int64
	Writes int64

	Hits       int64
	Cold       int64
	Replace    int64
	TrueShare  int64
	FalseShare int64

	// Upgrades counts write hits to shared lines (ownership
	// acquisitions that invalidate other copies but transfer no data).
	Upgrades int64
	// Invalidations counts line invalidations caused in other caches.
	Invalidations int64

	// Per-processor counters for the execution-time model and the
	// per-miss-class decomposition (§5's per-processor attribution).
	ProcRefs    []int64
	ProcMisses  []int64
	ProcCold    []int64
	ProcReplace []int64
	ProcTS      []int64 // true-sharing misses
	ProcFS      []int64 // false-sharing misses
	ProcRemote  []int64 // misses serviced by another processor's cache
}

// ProcStats is one processor's view of the simulation, for reports.
type ProcStats struct {
	Proc       int   `json:"proc"`
	Refs       int64 `json:"refs"`
	Misses     int64 `json:"misses"`
	Cold       int64 `json:"cold"`
	Replace    int64 `json:"replace"`
	TrueShare  int64 `json:"true_share"`
	FalseShare int64 `json:"false_share"`
	Remote     int64 `json:"remote"`
}

// PerProc decomposes the stats by processor.
func (s *Stats) PerProc() []ProcStats {
	out := make([]ProcStats, len(s.ProcRefs))
	for p := range out {
		out[p] = ProcStats{
			Proc:       p,
			Refs:       s.ProcRefs[p],
			Misses:     s.ProcMisses[p],
			Cold:       s.ProcCold[p],
			Replace:    s.ProcReplace[p],
			TrueShare:  s.ProcTS[p],
			FalseShare: s.ProcFS[p],
			Remote:     s.ProcRemote[p],
		}
	}
	return out
}

// Misses returns the total miss count.
func (s *Stats) Misses() int64 { return s.Cold + s.Replace + s.TrueShare + s.FalseShare }

// MissRate returns misses per reference.
func (s *Stats) MissRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Refs)
}

// FSRate returns the false-sharing miss rate (false-sharing misses per
// reference) — the white portion of the paper's Figure 3 bars.
func (s *Stats) FSRate() float64 {
	if s.Refs == 0 {
		return 0
	}
	return float64(s.FalseShare) / float64(s.Refs)
}

// OtherRate returns the non-false-sharing miss rate (the black
// portion of the Figure 3 bars).
func (s *Stats) OtherRate() float64 { return s.MissRate() - s.FSRate() }

// String renders the stats.
func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "refs=%d (r=%d w=%d) missrate=%.4f%%\n", s.Refs, s.Reads, s.Writes, 100*s.MissRate())
	fmt.Fprintf(&sb, "  cold=%d replace=%d true=%d false=%d upgrades=%d inval=%d\n",
		s.Cold, s.Replace, s.TrueShare, s.FalseShare, s.Upgrades, s.Invalidations)
	return sb.String()
}

// line is one cache line.
type line struct {
	tag   int64 // block address
	valid bool
	state byte // stateShared or stateModified
	lru   int64
	// invMask marks per-word invalidations (WordInvalidate mode): bit
	// w set means word w of the block was written remotely and must be
	// refetched before use.
	invMask uint64
}

const (
	stateShared   byte = 0
	stateModified byte = 1
)

// blockMeta tracks why a processor lost a block, for classification.
type blockMeta struct {
	seen      bool
	resident  bool
	lostByInv bool
	lostAt    int64
	wayHint   int32
}

// Sim is the multiprocessor cache simulator.
type Sim struct {
	cfg      Config
	nsets    int64
	blkShift uint
	setMask  int64

	caches [][]line // [proc][set*assoc+way]
	meta   []map[int64]*blockMeta

	// wordWriter/wordTime record the last writer and time per word.
	wordWriter map[int64]int32
	wordTime   map[int64]int64

	time  int64
	stats Stats

	// Sampling hook (SetSampler): sampler is invoked every
	// sampleEvery block references so long simulations can stream
	// progress.
	sampleEvery int64
	sampler     func(*Stats)
}

// New builds a simulator.
func New(cfg Config) *Sim {
	if cfg.Assoc <= 0 {
		cfg.Assoc = 4
	}
	nsets := cfg.CacheSize / (cfg.BlockSize * int64(cfg.Assoc))
	if nsets < 1 {
		nsets = 1
	}
	// Round sets down to a power of two for masking.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	s := &Sim{
		cfg:        cfg,
		nsets:      nsets,
		setMask:    nsets - 1,
		wordWriter: map[int64]int32{},
		wordTime:   map[int64]int64{},
	}
	for b := cfg.BlockSize; b > 1; b >>= 1 {
		s.blkShift++
	}
	s.caches = make([][]line, cfg.NumProcs)
	s.meta = make([]map[int64]*blockMeta, cfg.NumProcs)
	for p := 0; p < cfg.NumProcs; p++ {
		s.caches[p] = make([]line, nsets*int64(cfg.Assoc))
		s.meta[p] = map[int64]*blockMeta{}
	}
	s.stats.Config = cfg
	s.stats.ProcRefs = make([]int64, cfg.NumProcs)
	s.stats.ProcMisses = make([]int64, cfg.NumProcs)
	s.stats.ProcCold = make([]int64, cfg.NumProcs)
	s.stats.ProcReplace = make([]int64, cfg.NumProcs)
	s.stats.ProcTS = make([]int64, cfg.NumProcs)
	s.stats.ProcFS = make([]int64, cfg.NumProcs)
	s.stats.ProcRemote = make([]int64, cfg.NumProcs)
	return s
}

// Stats returns the accumulated statistics.
func (s *Sim) Stats() *Stats { return &s.stats }

// SetSampler installs fn, invoked synchronously with the running
// stats after every n block references (n <= 0 disables sampling).
// The callback must not retain the *Stats across calls: it points at
// the simulator's live accumulator.
func (s *Sim) SetSampler(n int64, fn func(*Stats)) {
	s.sampleEvery = n
	s.sampler = fn
}

// Access simulates one memory reference, splitting it at block
// boundaries if necessary (an 8-byte access with 4-byte blocks spans
// two blocks), and returns the classification of its first block.
func (s *Sim) Access(proc int, addr int64, size int64, write bool) MissKind {
	first := s.accessBlock(proc, addr, min64(size, s.cfg.BlockSize-addr%s.cfg.BlockSize), write)
	end := addr + size
	next := (addr>>s.blkShift + 1) << s.blkShift
	for next < end {
		n := min64(end-next, s.cfg.BlockSize)
		s.accessBlock(proc, next, n, write)
		next += s.cfg.BlockSize
	}
	return first
}

func (s *Sim) accessBlock(proc int, addr, size int64, write bool) MissKind {
	s.time++
	s.stats.Refs++
	s.stats.ProcRefs[proc]++
	if write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	if s.sampleEvery > 0 && s.stats.Refs%s.sampleEvery == 0 {
		s.sampler(&s.stats)
	}

	block := addr >> s.blkShift
	set := block & s.setMask
	ways := s.caches[proc][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]

	// Lookup.
	hitWay := -1
	for w := range ways {
		if ways[w].valid && ways[w].tag == block {
			hitWay = w
			break
		}
	}

	kind := Hit
	if hitWay >= 0 {
		ln := &ways[hitWay]
		// Word-invalidate mode: a resident line may hold remotely
		// written (invalid) words; touching one is a true-sharing
		// miss that refetches the block.
		if s.cfg.WordInvalidate && ln.invMask&s.wordBits(addr, size) != 0 {
			ln.invMask = 0
			ln.lru = s.time
			if write {
				ln.state = stateModified
				s.invalidateWords(proc, block, addr, size)
				s.recordWrite(proc, addr, size)
			} else {
				ln.state = stateShared
			}
			s.stats.TrueShare++
			s.stats.ProcMisses[proc]++
			s.stats.ProcTS[proc]++
			if s.heldElsewhere(proc, block) {
				s.stats.ProcRemote[proc]++
			}
			return TrueSharing
		}
		ln.lru = s.time
		if write && ln.state == stateShared {
			s.stats.Upgrades++
			s.invalidateOthers(proc, block)
			ln.state = stateModified
		}
		if write {
			ln.state = stateModified
			if s.cfg.WordInvalidate {
				s.invalidateWords(proc, block, addr, size)
			}
			s.recordWrite(proc, addr, size)
		}
		s.stats.Hits++
		return Hit
	}

	// Miss: classify.
	bm := s.blockMeta(proc, block)
	switch {
	case !bm.seen:
		kind = Cold
		s.stats.Cold++
		s.stats.ProcCold[proc]++
	case bm.lostByInv:
		if s.modifiedByOtherSince(proc, addr, size, bm.lostAt) {
			kind = TrueSharing
			s.stats.TrueShare++
			s.stats.ProcTS[proc]++
		} else {
			kind = FalseSharing
			s.stats.FalseShare++
			s.stats.ProcFS[proc]++
		}
	default:
		kind = Replacement
		s.stats.Replace++
		s.stats.ProcReplace[proc]++
	}
	s.stats.ProcMisses[proc]++
	if s.heldElsewhere(proc, block) {
		s.stats.ProcRemote[proc]++
	}

	// Fill: evict the LRU way.
	victim := 0
	for w := range ways {
		if !ways[w].valid {
			victim = w
			break
		}
		if ways[w].lru < ways[victim].lru {
			victim = w
		}
	}
	if ways[victim].valid {
		// Record eviction of the old block.
		old := ways[victim].tag
		obm := s.blockMeta(proc, old)
		if obm.resident {
			obm.resident = false
			obm.lostByInv = false
			obm.lostAt = s.time
		}
	}
	st := stateShared
	if write {
		st = stateModified
		s.invalidateOthers(proc, block)
		if s.cfg.WordInvalidate {
			s.invalidateWords(proc, block, addr, size)
		}
		s.recordWrite(proc, addr, size)
	}
	ways[victim] = line{tag: block, valid: true, state: st, lru: s.time}
	bm.seen = true
	bm.resident = true
	bm.wayHint = int32(victim)
	return kind
}

// invalidateOthers removes the block from every other processor's
// cache, marking the loss as invalidation for classification. Callers
// in WordInvalidate mode use invalidateWords instead for data writes;
// this whole-line variant remains for fills acquiring ownership.
func (s *Sim) invalidateOthers(proc int, block int64) {
	if s.cfg.WordInvalidate {
		// Ownership transfers still happen, but copies stay readable
		// for their valid words; nothing to do here (the written
		// words are invalidated by invalidateWords).
		return
	}
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				ways[w].valid = false
				s.stats.Invalidations++
				bm := s.blockMeta(p, block)
				bm.resident = false
				bm.lostByInv = true
				bm.lostAt = s.time
			}
		}
	}
}

// wordBits returns the per-word bit mask covered by [addr, addr+size)
// within its block.
func (s *Sim) wordBits(addr, size int64) uint64 {
	blockStart := addr >> s.blkShift << s.blkShift
	first := (addr - blockStart) / WordSize
	last := (addr + size - 1 - blockStart) / WordSize
	var m uint64
	for w := first; w <= last && w < 64; w++ {
		m |= 1 << uint(w)
	}
	return m
}

// invalidateWords marks the written words invalid in every other
// cache holding the block (WordInvalidate mode).
func (s *Sim) invalidateWords(proc int, block, addr, size int64) {
	bits := s.wordBits(addr, size)
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				if ways[w].invMask&bits != bits {
					s.stats.Invalidations++
				}
				ways[w].invMask |= bits
			}
		}
	}
}

// heldElsewhere reports whether another processor's cache holds the
// block (the miss would be serviced cache-to-cache on the KSR).
func (s *Sim) heldElsewhere(proc int, block int64) bool {
	set := block & s.setMask
	for p := 0; p < s.cfg.NumProcs; p++ {
		if p == proc {
			continue
		}
		ways := s.caches[p][set*int64(s.cfg.Assoc) : (set+1)*int64(s.cfg.Assoc)]
		for w := range ways {
			if ways[w].valid && ways[w].tag == block {
				return true
			}
		}
	}
	return false
}

// recordWrite stamps the words covered by a write.
func (s *Sim) recordWrite(proc int, addr, size int64) {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		s.wordWriter[w] = int32(proc)
		s.wordTime[w] = s.time
	}
}

// modifiedByOtherSince reports whether any word covered by [addr,
// addr+size) was written by a processor other than proc at or after t.
func (s *Sim) modifiedByOtherSince(proc int, addr, size, t int64) bool {
	for w := addr / WordSize; w <= (addr+size-1)/WordSize; w++ {
		if s.wordTime[w] >= t && s.wordWriter[w] != int32(proc) {
			return true
		}
	}
	return false
}

func (s *Sim) blockMeta(proc int, block int64) *blockMeta {
	bm := s.meta[proc][block]
	if bm == nil {
		bm = &blockMeta{}
		s.meta[proc][block] = bm
	}
	return bm
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
