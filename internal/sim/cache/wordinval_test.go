package cache

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func wiSim(t testing.TB, nprocs int, block int64) *Sim {
	cfg := DefaultConfig(nprocs, block)
	cfg.WordInvalidate = true
	return mustNew(t, cfg)
}

func TestWordInvalidateKillsFalseSharing(t *testing.T) {
	// The Dubois-style hardware: the FS ping-pong pattern produces no
	// misses at all after warmup.
	s := wiSim(t, 2, 64)
	for i := 0; i < 1000; i++ {
		s.Access(0, 0x1000, 4, true)
		s.Access(1, 0x1004, 4, true)
	}
	st := s.Stats()
	if st.FalseShare != 0 {
		t.Fatalf("word invalidation must eliminate FS misses: %d", st.FalseShare)
	}
	// Only the two cold misses remain.
	if st.Misses() != 2 {
		t.Errorf("misses = %d, want 2 (cold only)", st.Misses())
	}
}

func TestWordInvalidateKeepsTrueSharing(t *testing.T) {
	s := wiSim(t, 2, 64)
	s.Access(0, 0x1000, 4, false) // P0 caches the word
	s.Access(1, 0x1000, 4, true)  // P1 writes it
	if k := s.Access(0, 0x1000, 4, false); k != TrueSharing {
		t.Fatalf("reread of a remotely written word = %v, want true-sharing", k)
	}
}

func TestWordInvalidateRefetchClears(t *testing.T) {
	s := wiSim(t, 2, 64)
	s.Access(0, 0x1000, 4, false)
	s.Access(1, 0x1000, 4, true)
	s.Access(0, 0x1000, 4, false) // true-sharing miss, refetch
	if k := s.Access(0, 0x1000, 4, false); k != Hit {
		t.Fatalf("after refetch = %v, want hit", k)
	}
}

func TestWordInvalidateDoubleSpansWords(t *testing.T) {
	s := wiSim(t, 2, 64)
	s.Access(0, 0x1000, 8, false)
	s.Access(1, 0x1004, 4, true) // writes the second word of the double
	if k := s.Access(0, 0x1000, 8, false); k != TrueSharing {
		t.Fatalf("double overlapping a written word = %v", k)
	}
}

// Properties shared by both protocols, over random traces.
func TestProtocolInvariants(t *testing.T) {
	run := func(seed int64, wordInval bool, nprocs int, block int64) *Stats {
		cfg := DefaultConfig(nprocs, block)
		cfg.WordInvalidate = wordInval
		s := mustNew(t, cfg)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			proc := r.Intn(nprocs)
			addr := 0x1000 + int64(r.Intn(64))*4
			size := int64(4)
			if r.Intn(4) == 0 {
				size = 8
				addr &^= 7
			}
			s.Access(proc, addr, size, r.Intn(3) == 0)
		}
		return s.Stats()
	}
	f := func(seedRaw uint32, wi bool, npRaw, blkRaw uint8) bool {
		nprocs := 1 + int(npRaw%8)
		block := int64(4) << (blkRaw % 7) // 4..256
		st := run(int64(seedRaw), wi, nprocs, block)
		// Accounting closes.
		if st.Hits+st.Misses() != st.Refs {
			return false
		}
		// One processor can never have sharing misses.
		if nprocs == 1 && (st.TrueShare != 0 || st.FalseShare != 0) {
			return false
		}
		// Word-size blocks cannot false-share; neither can the
		// word-invalidate protocol at any block size.
		if (block == 4 || wi) && st.FalseShare != 0 {
			return false
		}
		// Per-proc counters sum to the totals.
		var refs, misses int64
		for p := 0; p < nprocs; p++ {
			refs += st.ProcRefs[p]
			misses += st.ProcMisses[p]
		}
		return refs == st.Refs && misses == st.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical traces produce identical statistics.
func TestDeterminism(t *testing.T) {
	mk := func() *Stats {
		s := sim(t, 4, 64)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			s.Access(r.Intn(4), 0x1000+int64(r.Intn(256))*4, 4, r.Intn(2) == 0)
		}
		return s.Stats()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic stats:\n%v\n%v", a, b)
	}
}
