package cache

import (
	"fmt"
	"reflect"
	"testing"
)

// Wide-machine regression tests: the multi-word sharer directory must
// uphold the same accounting identities at 128 and 1024 processors
// that the narrow (single-word) configurations have always been held
// to. These run under -race in CI, so a data race anywhere on the
// wide coherence paths fails here too.

// TestTopologyWideCostIdentities asserts the two-ring cost identities
// — Local + Remote == Misses and CostCycles == 175·Local + 600·Remote
// — at 128 and 1024 processors with the paper's default ring geometry
// (RingSize 32: 4 and 32 rings respectively), plus the full miss
// taxonomy invariants.
func TestTopologyWideCostIdentities(t *testing.T) {
	refs := 30000
	if testing.Short() {
		refs = 10000
	}
	for _, nprocs := range []int{128, 1024} {
		t.Run(fmt.Sprintf("p%d", nprocs), func(t *testing.T) {
			cfg := DefaultConfig(nprocs, 64)
			cfg.CacheSize = 8 * 1024
			cfg.Assoc = 2
			cfg.Topology = TopoTwoRing // default RingSize 32
			sim := mustNew(t, cfg)
			for _, r := range genTrace(int64(nprocs)*13, nprocs, refs) {
				sim.Access(r.proc, r.addr, r.size, r.write)
			}
			st := sim.Stats()
			checkInvariants(t, st, fmt.Sprintf("p%d two-ring", nprocs))
			if st.LocalServiced+st.RemoteServiced != st.Misses() {
				t.Errorf("service decomposition %d+%d != misses %d",
					st.LocalServiced, st.RemoteServiced, st.Misses())
			}
			want := st.LocalServiced*DefaultLocalLatency + st.RemoteServiced*DefaultRemoteLatency
			if st.CostCycles != want {
				t.Errorf("CostCycles %d != %d·local + %d·remote = %d",
					st.CostCycles, DefaultLocalLatency, DefaultRemoteLatency, want)
			}
			if st.LocalServiced == 0 || st.RemoteServiced == 0 {
				t.Errorf("degenerate service split (local=%d remote=%d); the identities are vacuous",
					st.LocalServiced, st.RemoteServiced)
			}
		})
	}
}

// TestMESIConservationWide asserts the upgrade conservation law —
// WI.Upgrades == MESI.Upgrades + MESI.SilentUpgrades, with identical
// classification otherwise — at 128 and 1024 processors, where the
// sole-sharer check behind the E state walks a multi-word vector.
func TestMESIConservationWide(t *testing.T) {
	refs := 30000
	if testing.Short() {
		refs = 10000
	}
	for _, nprocs := range []int{128, 1024} {
		t.Run(fmt.Sprintf("p%d", nprocs), func(t *testing.T) {
			cfg := DefaultConfig(nprocs, 64)
			cfg.CacheSize = 8 * 1024
			cfg.Assoc = 2
			wi := mustNew(t, cfg)
			mcfg := cfg
			mcfg.Protocol = MESI
			mesi := mustNew(t, mcfg)
			for i, r := range genTrace(int64(nprocs)*17, nprocs, refs) {
				kw := wi.Access(r.proc, r.addr, r.size, r.write)
				km := mesi.Access(r.proc, r.addr, r.size, r.write)
				if kw != km {
					t.Fatalf("ref %d (%+v): WI=%v MESI=%v", i, r, kw, km)
				}
			}
			ws, ms := wi.Stats(), mesi.Stats()
			if ws.Upgrades != ms.Upgrades+ms.SilentUpgrades {
				t.Errorf("conservation law broken: WI upgrades %d != MESI %d + silent %d",
					ws.Upgrades, ms.Upgrades, ms.SilentUpgrades)
			}
			if ms.SilentUpgrades == 0 {
				t.Error("MESI saw no silent upgrades; the conservation check is vacuous")
			}
			got, want := *foldUpgrades(ms), *foldUpgrades(ws)
			got.Config, want.Config = Config{}, Config{}
			if !reflect.DeepEqual(&got, &want) {
				t.Errorf("p%d: MESI classification diverges from WI\nmesi: %swi:   %s",
					nprocs, &got, &want)
			}
		})
	}
}

// TestSectorBit63Exercised pins the widest legal sector geometry: a
// 256-byte block in word-invalidate mode has exactly 64 words, so the
// block's last word maps to invalidation-mask bit 63 — the edge the
// w < 64 clamp in sectorBits sits on. If a future change relaxed the
// Validate cap without widening the mask, this is the test that
// catches the silent truncation.
func TestSectorBit63Exercised(t *testing.T) {
	cfg := Config{NumProcs: 2, BlockSize: 256, CacheSize: 32 * 1024, Assoc: 4, WordInvalidate: true}
	s := mustNew(t, cfg)
	if got := s.sectorBits(252, 4); got != 1<<63 {
		t.Fatalf("sectorBits(252, 4) = %#x, want bit 63 (%#x)", got, uint64(1)<<63)
	}
	if got := s.sectorBits(0, 256); got != ^uint64(0) {
		t.Fatalf("sectorBits(0, 256) = %#x, want all 64 bits set", got)
	}

	// Behavioral check: proc 1 caches the block, proc 0 writes its
	// last word. The write must land on bit 63 of proc 1's copy — the
	// unwritten first word still hits, the written last word is a
	// true-sharing refetch.
	s.Access(1, 0, 4, false)
	s.Access(0, 252, 4, true)
	if k := s.Access(1, 0, 4, false); k != Hit {
		t.Errorf("read of unwritten word 0: got %v, want %v", k, Hit)
	}
	if k := s.Access(1, 252, 4, false); k != TrueSharing {
		t.Errorf("read of remotely written word 63: got %v, want %v", k, TrueSharing)
	}

	// Same geometry via explicit 4-byte sectors (64 sectors per block).
	scfg := Config{NumProcs: 2, BlockSize: 256, CacheSize: 32 * 1024, Assoc: 4, SectorSize: 4}
	s2 := mustNew(t, scfg)
	if got := s2.sectorBits(252, 4); got != 1<<63 {
		t.Fatalf("SectorSize=4: sectorBits(252, 4) = %#x, want bit 63", got)
	}
}

// TestEffectiveGeometrySurfaced pins the cache-geometry rounding
// contract documented on Config.CacheSize: a CacheSize whose set
// division is not a power of two simulates the next smaller
// power-of-two geometry, and Stats must say so. 48 KB at 64-byte
// blocks, associativity 4, divides to 192 sets and therefore actually
// simulates 128 sets — a 32 KB machine.
func TestEffectiveGeometrySurfaced(t *testing.T) {
	cfg := DefaultConfig(4, 64)
	cfg.CacheSize = 48 * 1024
	s := mustNew(t, cfg)
	if got := s.Stats().Sets; got != 128 {
		t.Errorf("48 KB / (64 B × 4-way): Sets = %d, want 128", got)
	}
	if got := s.Stats().EffectiveCacheSize; got != 32*1024 {
		t.Errorf("48 KB config: EffectiveCacheSize = %d, want %d", got, 32*1024)
	}

	// An exact power-of-two geometry loses nothing.
	exact := mustNew(t, DefaultConfig(4, 64))
	if st := exact.Stats(); st.Sets != 128 || st.EffectiveCacheSize != 32*1024 {
		t.Errorf("32 KB config: Sets=%d EffectiveCacheSize=%d, want 128/%d",
			st.Sets, st.EffectiveCacheSize, 32*1024)
	}
}
