package cache

import (
	"math/rand"
	"testing"
)

// The miss-taxonomy invariant: every reference is a hit or exactly one
// of cold / replacement / true-sharing / false-sharing, and the
// per-processor decomposition sums back to the totals. This must hold
// for ANY access trace — the property the parallel experiment runner
// leans on when it trusts per-job stats computed on worker goroutines.

// checkInvariants asserts the taxonomy and PerProc sums on s.
func checkInvariants(t *testing.T, s *Stats, ctx string) {
	t.Helper()
	if got := s.Cold + s.Replace + s.TrueShare + s.FalseShare; got != s.Misses() {
		t.Errorf("%s: cold+replace+true+false = %d, Misses() = %d", ctx, got, s.Misses())
	}
	if s.Hits+s.Misses() != s.Refs {
		t.Errorf("%s: hits (%d) + misses (%d) != refs (%d)", ctx, s.Hits, s.Misses(), s.Refs)
	}
	if s.Reads+s.Writes != s.Refs {
		t.Errorf("%s: reads (%d) + writes (%d) != refs (%d)", ctx, s.Reads, s.Writes, s.Refs)
	}

	var refs, misses, cold, repl, ts, fs int64
	for _, p := range s.PerProc() {
		refs += p.Refs
		misses += p.Misses
		cold += p.Cold
		repl += p.Replace
		ts += p.TrueShare
		fs += p.FalseShare
		if p.Cold+p.Replace+p.TrueShare+p.FalseShare != p.Misses {
			t.Errorf("%s: proc %d: class sum %d != misses %d", ctx,
				p.Proc, p.Cold+p.Replace+p.TrueShare+p.FalseShare, p.Misses)
		}
		if p.Remote > p.Misses {
			t.Errorf("%s: proc %d: remote (%d) exceeds misses (%d)", ctx, p.Proc, p.Remote, p.Misses)
		}
	}
	if refs != s.Refs {
		t.Errorf("%s: PerProc refs sum %d != %d", ctx, refs, s.Refs)
	}
	if misses != s.Misses() {
		t.Errorf("%s: PerProc miss sum %d != %d", ctx, misses, s.Misses())
	}
	if cold != s.Cold || repl != s.Replace || ts != s.TrueShare || fs != s.FalseShare {
		t.Errorf("%s: PerProc class sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			ctx, cold, repl, ts, fs, s.Cold, s.Replace, s.TrueShare, s.FalseShare)
	}
}

// TestPerProcMissTaxonomyInvariant drives randomized traces through
// every interesting configuration corner: tiny caches (forced
// replacement), small and large blocks, word-invalidate mode, and
// skewed processor mixes.
func TestPerProcMissTaxonomyInvariant(t *testing.T) {
	type scenario struct {
		name    string
		cfg     Config
		addrs   int64 // address-space size
		refs    int
		maxSize int64 // access sizes 4..maxSize (crossing blocks when > block)
	}
	scenarios := []scenario{
		{"dense-small-blocks", Config{NumProcs: 4, BlockSize: 16, CacheSize: 1024, Assoc: 2}, 4 * 1024, 20000, 8},
		{"large-blocks", Config{NumProcs: 8, BlockSize: 128, CacheSize: 4096, Assoc: 4}, 64 * 1024, 20000, 8},
		{"thrash-tiny-cache", Config{NumProcs: 3, BlockSize: 32, CacheSize: 256, Assoc: 1}, 32 * 1024, 20000, 4},
		{"word-invalidate", Config{NumProcs: 6, BlockSize: 64, CacheSize: 2048, Assoc: 4, WordInvalidate: true}, 8 * 1024, 20000, 8},
		{"spanning-accesses", Config{NumProcs: 4, BlockSize: 16, CacheSize: 2048, Assoc: 4}, 8 * 1024, 15000, 64},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5eed + int64(len(sc.name))))
			s := mustNew(t, sc.cfg)
			for i := 0; i < sc.refs; i++ {
				proc := rng.Intn(sc.cfg.NumProcs)
				if rng.Intn(4) == 0 {
					// Skew a quarter of the traffic onto processor 0 to
					// exercise asymmetric sharing.
					proc = 0
				}
				addr := rng.Int63n(sc.addrs)
				addr -= addr % WordSize
				size := int64(4)
				if sc.maxSize > 4 {
					size += 4 * rng.Int63n(sc.maxSize/4)
				}
				write := rng.Intn(10) < 3
				s.Access(proc, addr, size, write)
			}
			st := s.Stats()
			if st.Refs == 0 || st.Misses() == 0 {
				t.Fatal("degenerate trace: no refs or no misses")
			}
			checkInvariants(t, st, sc.name)
		})
	}
}

// TestPerProcInvariantSharedCounters reruns one randomized trace and
// checks the simulation is reproducible reference-for-reference (the
// determinism the sharded MeasureBlocks path relies on).
func TestPerProcInvariantSharedCounters(t *testing.T) {
	gen := func() *Stats {
		rng := rand.New(rand.NewSource(42))
		s := mustNew(t, Config{NumProcs: 5, BlockSize: 64, CacheSize: 2048, Assoc: 2})
		for i := 0; i < 30000; i++ {
			s.Access(rng.Intn(5), rng.Int63n(16*1024)&^3, 4, rng.Intn(2) == 0)
		}
		return s.Stats()
	}
	a, b := gen(), gen()
	if a.Config != b.Config {
		t.Fatal("config drift")
	}
	if a.Refs != b.Refs || a.Hits != b.Hits || a.Cold != b.Cold || a.Replace != b.Replace ||
		a.TrueShare != b.TrueShare || a.FalseShare != b.FalseShare ||
		a.Upgrades != b.Upgrades || a.Invalidations != b.Invalidations {
		t.Errorf("identical traces produced different stats:\n%v\n%v", a, b)
	}
	for p := range a.ProcRefs {
		if a.ProcRefs[p] != b.ProcRefs[p] || a.ProcFS[p] != b.ProcFS[p] || a.ProcTS[p] != b.ProcTS[p] {
			t.Errorf("proc %d counters differ across identical traces", p)
		}
	}
	checkInvariants(t, a, "rerun")
}
