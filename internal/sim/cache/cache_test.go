package cache

import (
	"errors"
	"testing"
)

// mustNew builds a simulator from a config the test knows is valid.
func mustNew(t testing.TB, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func sim(t testing.TB, nprocs int, block int64) *Sim {
	return mustNew(t, DefaultConfig(nprocs, block))
}

func TestColdThenHit(t *testing.T) {
	s := sim(t, 2, 64)
	if k := s.Access(0, 0x1000, 4, false); k != Cold {
		t.Fatalf("first access = %v, want cold", k)
	}
	if k := s.Access(0, 0x1004, 4, false); k != Hit {
		t.Fatalf("same-block access = %v, want hit", k)
	}
	if k := s.Access(0, 0x1040, 4, false); k != Cold {
		t.Fatalf("next block = %v, want cold", k)
	}
}

func TestFalseSharingClassification(t *testing.T) {
	s := sim(t, 2, 64)
	// P0 reads word A; P1 writes word B in the same block; P0 rereads
	// word A -> false sharing (A unchanged).
	s.Access(0, 0x1000, 4, false)
	s.Access(1, 0x1020, 4, true) // invalidates P0
	if k := s.Access(0, 0x1000, 4, false); k != FalseSharing {
		t.Fatalf("reread = %v, want false-sharing", k)
	}
}

func TestTrueSharingClassification(t *testing.T) {
	s := sim(t, 2, 64)
	// P0 reads word A; P1 writes word A; P0 rereads A -> true sharing.
	s.Access(0, 0x1000, 4, false)
	s.Access(1, 0x1000, 4, true)
	if k := s.Access(0, 0x1000, 4, false); k != TrueSharing {
		t.Fatalf("reread = %v, want true-sharing", k)
	}
}

func TestWriteInvalidateUpgrade(t *testing.T) {
	s := sim(t, 2, 64)
	s.Access(0, 0x1000, 4, false)
	s.Access(1, 0x1000, 4, false)
	// P0 writes: upgrade, invalidating P1.
	if k := s.Access(0, 0x1000, 4, true); k != Hit {
		t.Fatalf("upgrade = %v, want hit", k)
	}
	st := s.Stats()
	if st.Upgrades != 1 || st.Invalidations != 1 {
		t.Fatalf("upgrades=%d invalidations=%d", st.Upgrades, st.Invalidations)
	}
	if k := s.Access(1, 0x1000, 4, false); k != TrueSharing {
		t.Fatalf("P1 reread = %v, want true-sharing", k)
	}
}

func TestOneWordBlocksHaveNoFalseSharing(t *testing.T) {
	// With 4-byte blocks every invalidation miss is true sharing by
	// definition.
	s := sim(t, 4, 4)
	for i := 0; i < 1000; i++ {
		p := i % 4
		addr := int64(0x1000 + (i%16)*4)
		s.Access(p, addr, 4, i%3 == 0)
	}
	if s.Stats().FalseShare != 0 {
		t.Fatalf("false sharing with one-word blocks: %d", s.Stats().FalseShare)
	}
}

func TestFalseSharingGrowsWithBlockSize(t *testing.T) {
	// Two processors ping-pong adjacent words: large blocks produce
	// false sharing, one-word blocks none.
	run := func(block int64) *Stats {
		s := sim(t, 2, block)
		for i := 0; i < 2000; i++ {
			s.Access(0, 0x1000, 4, true)
			s.Access(1, 0x1004, 4, true)
		}
		return s.Stats()
	}
	small := run(4)
	big := run(128)
	if small.FalseShare != 0 {
		t.Errorf("4-byte blocks: false sharing = %d, want 0", small.FalseShare)
	}
	if big.FalseShare < 3000 {
		t.Errorf("128-byte blocks: false sharing = %d, want ~4000", big.FalseShare)
	}
}

func TestReplacementMiss(t *testing.T) {
	cfg := Config{NumProcs: 1, BlockSize: 64, CacheSize: 1024, Assoc: 1}
	s := mustNew(t, cfg)
	// Two blocks mapping to the same set (set count = 1024/64 = 16).
	a := int64(0x10000)
	b := a + 16*64
	s.Access(0, a, 4, false)
	s.Access(0, b, 4, false) // evicts a
	if k := s.Access(0, a, 4, false); k != Replacement {
		t.Fatalf("re-access = %v, want replacement", k)
	}
}

func TestStraddlingAccessSplit(t *testing.T) {
	s := sim(t, 1, 4)
	// An 8-byte access with 4-byte blocks touches two blocks.
	s.Access(0, 0x1000, 8, false)
	if got := s.Stats().Refs; got != 2 {
		t.Fatalf("refs = %d, want 2 (split)", got)
	}
}

// TestStraddlingAccessMostSevere pins the Access return contract for
// block-spanning references: Stats count every sub-block, and the
// returned MissKind is the most severe sub-block classification, so
// callers tallying return values agree with Stats.Misses() about
// whether the reference missed at all.
func TestStraddlingAccessMostSevere(t *testing.T) {
	s := sim(t, 2, 8)
	// Warm the first block only; the second half of the straddling
	// access below is cold while the first half hits.
	if k := s.Access(0, 0x1000, 4, false); k != Cold {
		t.Fatalf("warmup = %v, want cold", k)
	}
	if k := s.Access(0, 0x1004, 8, false); k != Cold {
		t.Fatalf("hit+cold straddle = %v, want cold (most severe)", k)
	}
	if got := s.Stats().Refs; got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	// Sharing beats cold/replacement: P1 writes into the second block
	// only, then P0 re-runs the straddle — first half hits, second is
	// an invalidation miss, and the return value must say so.
	s.Access(0, 0x1008, 4, false)
	s.Access(1, 0x100c, 4, true) // invalidates P0's second block
	if k := s.Access(0, 0x1004, 8, false); k != FalseSharing {
		t.Fatalf("hit+fs straddle = %v, want false-sharing (most severe)", k)
	}
	// The return-value tally and Stats agree on the miss count.
	if miss := s.Stats().Misses(); miss != 4 {
		t.Fatalf("misses = %d, want 4", miss)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig(4, 64)
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"non-power-of-two block", func(c *Config) { c.BlockSize = 48 }, "BlockSize"},
		{"sub-word block", func(c *Config) { c.BlockSize = 2 }, "BlockSize"},
		{"zero block", func(c *Config) { c.BlockSize = 0 }, "BlockSize"},
		{"word-invalidate over 64 words", func(c *Config) { c.BlockSize = 512; c.WordInvalidate = true }, "BlockSize"},
		{"no processors", func(c *Config) { c.NumProcs = 0 }, "NumProcs"},
		{"negative processors", func(c *Config) { c.NumProcs = -3 }, "NumProcs"},
		{"cache smaller than a block", func(c *Config) { c.CacheSize = 32 }, "CacheSize"},
		{"negative assoc", func(c *Config) { c.Assoc = -1 }, "Assoc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			var cerr *ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("Validate(%+v) = %v, want *ConfigError", cfg, err)
			}
			if cerr.Field != tc.field {
				t.Errorf("error names field %q, want %q (%v)", cerr.Field, tc.field, err)
			}
			if s, err := New(cfg); err == nil || s != nil {
				t.Errorf("New accepted the invalid config (err=%v)", err)
			}
		})
	}
}

func TestValidateAcceptsGoodConfigs(t *testing.T) {
	good := []Config{
		DefaultConfig(1, 4),
		DefaultConfig(56, 256),
		{NumProcs: 2, BlockSize: 1024, CacheSize: 64 * 1024, Assoc: 8}, // big blocks fine without word-invalidate
		{NumProcs: 4, BlockSize: 256, CacheSize: 32 * 1024, Assoc: 4, WordInvalidate: true},
		{NumProcs: 1, BlockSize: 64, CacheSize: 64}, // Assoc 0 defaults in New
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
		if _, err := New(cfg); err != nil {
			t.Errorf("New(%+v) = %v, want ok", cfg, err)
		}
	}
}

func TestPaddingEliminatesFalseSharing(t *testing.T) {
	// The transformation story in miniature: adjacent counters vs
	// block-padded counters.
	adjacent := sim(t, 4, 64)
	for i := 0; i < 1000; i++ {
		for p := 0; p < 4; p++ {
			adjacent.Access(p, 0x1000+int64(p)*4, 4, true)
		}
	}
	padded := sim(t, 4, 64)
	for i := 0; i < 1000; i++ {
		for p := 0; p < 4; p++ {
			padded.Access(p, 0x1000+int64(p)*64, 4, true)
		}
	}
	fa, fp := adjacent.Stats().FalseShare, padded.Stats().FalseShare
	if fa < 3000 {
		t.Errorf("adjacent counters: false sharing = %d, want ~4000", fa)
	}
	if fp != 0 {
		t.Errorf("padded counters: false sharing = %d, want 0", fp)
	}
}

func TestPerProcCounters(t *testing.T) {
	s := sim(t, 2, 64)
	s.Access(0, 0x1000, 4, true)
	s.Access(1, 0x1000, 4, false)
	st := s.Stats()
	if st.ProcRefs[0] != 1 || st.ProcRefs[1] != 1 {
		t.Fatalf("proc refs: %v", st.ProcRefs)
	}
	if st.ProcMisses[0] != 1 || st.ProcMisses[1] != 1 {
		t.Fatalf("proc misses: %v", st.ProcMisses)
	}
	// P1's miss is serviced by P0's cache.
	if st.ProcRemote[1] != 1 {
		t.Fatalf("remote: %v", st.ProcRemote)
	}
}

func TestRatesAndAccounting(t *testing.T) {
	s := sim(t, 2, 64)
	for i := 0; i < 100; i++ {
		s.Access(i%2, int64(0x1000+4*(i%8)), 4, i%4 == 0)
	}
	st := s.Stats()
	if st.Hits+st.Misses() != st.Refs {
		t.Fatalf("accounting: hits=%d misses=%d refs=%d", st.Hits, st.Misses(), st.Refs)
	}
	if st.MissRate() < 0 || st.MissRate() > 1 {
		t.Fatalf("miss rate %f", st.MissRate())
	}
	if st.FSRate() > st.MissRate() {
		t.Fatalf("fs rate exceeds miss rate")
	}
}

func TestPerProcMissClassCounters(t *testing.T) {
	s := sim(t, 2, 64)
	// P0 cold miss, P1 writes the same block (invalidating P0), P0
	// rereads an untouched word -> false sharing; P1 rereads the word
	// P1 wrote after P0 reclaims ownership? Keep it simple: check the
	// class vectors sum to the global class counters.
	s.Access(0, 0x1000, 4, false) // cold
	s.Access(1, 0x1020, 4, true)  // cold + invalidate P0
	s.Access(0, 0x1000, 4, false) // false sharing
	s.Access(1, 0x1020, 4, false) // hit
	st := s.Stats()
	sum := func(v []int64) int64 {
		var n int64
		for _, x := range v {
			n += x
		}
		return n
	}
	if sum(st.ProcCold) != st.Cold {
		t.Errorf("ProcCold %v != Cold %d", st.ProcCold, st.Cold)
	}
	if sum(st.ProcReplace) != st.Replace {
		t.Errorf("ProcReplace %v != Replace %d", st.ProcReplace, st.Replace)
	}
	if sum(st.ProcTS) != st.TrueShare {
		t.Errorf("ProcTS %v != TrueShare %d", st.ProcTS, st.TrueShare)
	}
	if sum(st.ProcFS) != st.FalseShare {
		t.Errorf("ProcFS %v != FalseShare %d", st.ProcFS, st.FalseShare)
	}
	if st.ProcFS[0] != 1 {
		t.Errorf("P0 false-sharing = %d, want 1", st.ProcFS[0])
	}

	pp := st.PerProc()
	if len(pp) != 2 {
		t.Fatalf("PerProc len = %d", len(pp))
	}
	for p, ps := range pp {
		if ps.Proc != p || ps.Refs != st.ProcRefs[p] || ps.Misses != st.ProcMisses[p] ||
			ps.Cold != st.ProcCold[p] || ps.FalseShare != st.ProcFS[p] {
			t.Errorf("PerProc[%d] = %+v inconsistent with stats", p, ps)
		}
		if ps.Misses != ps.Cold+ps.Replace+ps.TrueShare+ps.FalseShare {
			t.Errorf("PerProc[%d]: classes do not sum to misses: %+v", p, ps)
		}
	}
}

func TestSampler(t *testing.T) {
	s := sim(t, 1, 64)
	var calls int
	var lastRefs int64
	s.SetSampler(10, func(st *Stats) {
		calls++
		lastRefs = st.Refs
	})
	for i := 0; i < 35; i++ {
		s.Access(0, int64(0x1000+4*i), 4, false)
	}
	if calls != 3 {
		t.Fatalf("sampler fired %d times over 35 refs with period 10, want 3", calls)
	}
	if lastRefs != 30 {
		t.Fatalf("last sample at refs=%d, want 30", lastRefs)
	}
	// Disabling stops further samples.
	s.SetSampler(0, nil)
	for i := 0; i < 20; i++ {
		s.Access(0, int64(0x1000+4*i), 4, false)
	}
	if calls != 3 {
		t.Fatalf("sampler fired after being disabled")
	}
}
