// Collector: the cache.Attributor implementation that folds miss
// provenance into per-object tallies, and the report it renders.
package attr

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/sim/cache"
)

// maxEdges bounds the raw writer→victim edge table so adversarial
// traces cannot grow it without limit; the overflow is counted and
// reported instead of silently dropped.
const maxEdges = 1 << 14

type edgeKey struct {
	writerID  int
	writerOff int64
	victimID  int
	victimOff int64
	fs        bool
}

type tally struct {
	counts    [5]int64 // indexed by cache.MissKind
	invCaused int64
	fsByOff   map[int64]int64
	tsByOff   map[int64]int64
	heat      []int64 // false-sharing misses per word offset in block
}

// Collector aggregates attribution events for one simulator. It is
// not safe for concurrent use: install one collector per Sim and run
// the simulation serially (the diagnostic paths do).
type Collector struct {
	m         *Map
	blockSize int64
	objs      map[int]*tally
	edges     map[edgeKey]int64
	dropped   int64
	totals    [5]int64
	invals    int64
}

// NewCollector builds a collector over the map for one block size.
func NewCollector(m *Map, blockSize int64) *Collector {
	return &Collector{
		m:         m,
		blockSize: blockSize,
		objs:      map[int]*tally{},
		edges:     map[edgeKey]int64{},
	}
}

func (c *Collector) obj(id int) *tally {
	t := c.objs[id]
	if t == nil {
		t = &tally{fsByOff: map[int64]int64{}, tsByOff: map[int64]int64{}}
		if c.blockSize >= cache.WordSize {
			t.heat = make([]int64, c.blockSize/cache.WordSize)
		}
		c.objs[id] = t
	}
	return t
}

// OnMiss implements cache.Attributor.
func (c *Collector) OnMiss(proc int, addr, size int64, write bool, kind cache.MissKind, writer int, writerAddr int64) {
	loc := c.m.Resolve(addr)
	t := c.obj(loc.ID)
	t.counts[kind]++
	c.totals[kind]++
	if kind != cache.TrueSharing && kind != cache.FalseSharing {
		return
	}
	fs := kind == cache.FalseSharing
	if fs {
		t.fsByOff[loc.Offset]++
		if len(t.heat) > 0 {
			t.heat[(addr%c.blockSize)/cache.WordSize]++
		}
	} else {
		t.tsByOff[loc.Offset]++
	}
	if writer < 0 {
		return
	}
	wloc := c.m.Resolve(writerAddr)
	k := edgeKey{wloc.ID, wloc.Offset, loc.ID, loc.Offset, fs}
	if _, ok := c.edges[k]; !ok && len(c.edges) >= maxEdges {
		c.dropped++
		return
	}
	c.edges[k]++
}

// OnInvalidate implements cache.Attributor.
func (c *Collector) OnInvalidate(writer int, addr, size int64, victim int) {
	loc := c.m.Resolve(addr)
	c.obj(loc.ID).invCaused++
	c.invals++
}

// Totals returns the event totals by miss class, for invariant
// checks against cache.Stats.
func (c *Collector) Totals() (cold, replace, trueShare, falseShare int64) {
	return c.totals[cache.Cold], c.totals[cache.Replacement],
		c.totals[cache.TrueSharing], c.totals[cache.FalseSharing]
}

// Invalidations returns the invalidation event total.
func (c *Collector) Invalidations() int64 { return c.invals }

// FieldStat is one field's sharing-miss tally within an object.
type FieldStat struct {
	Field      string `json:"field"`
	TrueShare  int64  `json:"true_share,omitempty"`
	FalseShare int64  `json:"false_share,omitempty"`
}

// Edge is one aggregated writer→victim sharing relationship.
type Edge struct {
	Writer string `json:"writer"` // "object.field" of the causing write
	Victim string `json:"victim"` // "object.field" of the missing access
	Kind   string `json:"kind"`   // "false-sharing" or "true-sharing"
	Count  int64  `json:"count"`
}

// ObjectStats is one object's attribution summary.
type ObjectStats struct {
	Object     string      `json:"object"`
	Kind       string      `json:"kind"`
	Struct     string      `json:"struct,omitempty"`
	Cold       int64       `json:"cold,omitempty"`
	Replace    int64       `json:"replace,omitempty"`
	TrueShare  int64       `json:"true_share,omitempty"`
	FalseShare int64       `json:"false_share,omitempty"`
	InvCaused  int64       `json:"inval_caused,omitempty"`
	Fields     []FieldStat `json:"fields,omitempty"`
	Heat       []int64     `json:"heat,omitempty"`
}

// Misses returns the object's total miss count.
func (o *ObjectStats) Misses() int64 { return o.Cold + o.Replace + o.TrueShare + o.FalseShare }

// Report is the full attribution summary of one simulation.
type Report struct {
	Procs         int           `json:"procs"`
	Block         int64         `json:"block"`
	Cold          int64         `json:"cold"`
	Replace       int64         `json:"replace"`
	TrueShare     int64         `json:"true_share"`
	FalseShare    int64         `json:"false_share"`
	Invalidations int64         `json:"invalidations"`
	Objects       []ObjectStats `json:"objects"`
	Edges         []Edge        `json:"edges,omitempty"`
	EdgesDropped  int64         `json:"edges_dropped,omitempty"`
}

// FSByObject returns object → false-sharing miss count, the shape
// the before/after transformation deltas are computed over.
func (r *Report) FSByObject() map[string]int64 {
	out := map[string]int64{}
	for _, o := range r.Objects {
		if o.FalseShare > 0 {
			out[o.Object] += o.FalseShare
		}
	}
	return out
}

// Report snapshots the collected tallies. Call after the simulation
// (and after Map.ResolveOwners, so heap spans carry their owners'
// names); the collector may keep accumulating afterwards.
func (c *Collector) Report(procs int) *Report {
	r := &Report{
		Procs:         procs,
		Block:         c.blockSize,
		Cold:          c.totals[cache.Cold],
		Replace:       c.totals[cache.Replacement],
		TrueShare:     c.totals[cache.TrueSharing],
		FalseShare:    c.totals[cache.FalseSharing],
		Invalidations: c.invals,
		EdgesDropped:  c.dropped,
	}
	// Entries sharing a name are one logical object — e.g. the many
	// same-struct heap spans of an interleaved build phase — so merge
	// tallies by name before building the rows.
	byName := map[string]*tally{}
	repID := map[string]int{}
	for id, t := range c.objs {
		name := c.m.Object(id)
		mt := byName[name]
		if mt == nil {
			mt = &tally{fsByOff: map[int64]int64{}, tsByOff: map[int64]int64{}}
			if len(t.heat) > 0 {
				mt.heat = make([]int64, len(t.heat))
			}
			byName[name] = mt
			repID[name] = id
		}
		for k, n := range t.counts {
			mt.counts[k] += n
		}
		mt.invCaused += t.invCaused
		for off, n := range t.fsByOff {
			mt.fsByOff[off] += n
		}
		for off, n := range t.tsByOff {
			mt.tsByOff[off] += n
		}
		for i, h := range t.heat {
			mt.heat[i] += h
		}
	}
	for name, t := range byName {
		id := repID[name]
		o := ObjectStats{
			Object:     name,
			Kind:       c.m.ObjectKind(id),
			Struct:     c.m.StructOf(id),
			Cold:       t.counts[cache.Cold],
			Replace:    t.counts[cache.Replacement],
			TrueShare:  t.counts[cache.TrueSharing],
			FalseShare: t.counts[cache.FalseSharing],
			InvCaused:  t.invCaused,
			Fields:     c.fieldStats(id, t),
		}
		for _, h := range t.heat {
			if h > 0 {
				o.Heat = t.heat
				break
			}
		}
		r.Objects = append(r.Objects, o)
	}
	sort.Slice(r.Objects, func(i, j int) bool {
		a, b := &r.Objects[i], &r.Objects[j]
		if a.FalseShare != b.FalseShare {
			return a.FalseShare > b.FalseShare
		}
		if a.TrueShare != b.TrueShare {
			return a.TrueShare > b.TrueShare
		}
		if am, bm := a.Misses(), b.Misses(); am != bm {
			return am > bm
		}
		return a.Object < b.Object
	})
	r.Edges = c.edgeStats()
	return r
}

// fieldStats folds the per-offset tallies into named fields.
func (c *Collector) fieldStats(id int, t *tally) []FieldStat {
	agg := map[string]*FieldStat{}
	fold := func(m map[int64]int64, fs bool) {
		for off, n := range m {
			name := c.m.FieldName(id, off)
			if name == "" {
				continue
			}
			st := agg[name]
			if st == nil {
				st = &FieldStat{Field: name}
				agg[name] = st
			}
			if fs {
				st.FalseShare += n
			} else {
				st.TrueShare += n
			}
		}
	}
	fold(t.fsByOff, true)
	fold(t.tsByOff, false)
	out := make([]FieldStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FalseShare != out[j].FalseShare {
			return out[i].FalseShare > out[j].FalseShare
		}
		if out[i].TrueShare != out[j].TrueShare {
			return out[i].TrueShare > out[j].TrueShare
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// edgeStats aggregates raw offset-level edges to object.field pairs.
func (c *Collector) edgeStats() []Edge {
	agg := map[[3]string]int64{}
	for k, n := range c.edges {
		kind := "true-sharing"
		if k.fs {
			kind = "false-sharing"
		}
		agg[[3]string{c.label(k.writerID, k.writerOff), c.label(k.victimID, k.victimOff), kind}] += n
	}
	out := make([]Edge, 0, len(agg))
	for k, n := range agg {
		out = append(out, Edge{Writer: k[0], Victim: k[1], Kind: k[2], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Writer != out[j].Writer {
			return out[i].Writer < out[j].Writer
		}
		return out[i].Victim < out[j].Victim
	})
	if len(out) > 64 {
		out = out[:64]
	}
	return out
}

func (c *Collector) label(id int, off int64) string {
	obj := c.m.Object(id)
	if f := c.m.FieldName(id, off); f != "" {
		return obj + "." + f
	}
	return obj
}

// Render formats the report as the "top false-sharing objects" table
// with per-block word heatmaps and writer→victim edges.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "attribution: procs=%d block=%d  cold=%d replace=%d true=%d false=%d inval=%d\n",
		r.Procs, r.Block, r.Cold, r.Replace, r.TrueShare, r.FalseShare, r.Invalidations)
	if len(r.Objects) == 0 {
		sb.WriteString("  (no misses attributed)\n")
		return sb.String()
	}
	sb.WriteString("top false-sharing objects:\n")
	fmt.Fprintf(&sb, "  %4s  %-24s %-7s %9s %9s %9s %9s  %s\n",
		"rank", "object", "kind", "false", "true", "cold+rep", "inval'd", "hot fields")
	shown := 0
	for _, o := range r.Objects {
		if shown >= 12 {
			fmt.Fprintf(&sb, "  … %d more objects\n", len(r.Objects)-shown)
			break
		}
		shown++
		var hot []string
		for i, f := range o.Fields {
			if i >= 3 {
				break
			}
			hot = append(hot, fmt.Sprintf("%s(fs=%d,ts=%d)", f.Field, f.FalseShare, f.TrueShare))
		}
		fmt.Fprintf(&sb, "  %4d  %-24s %-7s %9d %9d %9d %9d  %s\n",
			shown, o.Object, o.Kind, o.FalseShare, o.TrueShare,
			o.Cold+o.Replace, o.InvCaused, strings.Join(hot, " "))
	}
	if heats := r.heatLines(); len(heats) > 0 {
		sb.WriteString("false-sharing heat per word offset in block (' '<.<:<#):\n")
		for _, h := range heats {
			sb.WriteString(h)
		}
	}
	if len(r.Edges) > 0 {
		sb.WriteString("writer -> victim edges:\n")
		for i, e := range r.Edges {
			if i >= 12 {
				fmt.Fprintf(&sb, "  … %d more edges\n", len(r.Edges)-i)
				break
			}
			fmt.Fprintf(&sb, "  %-28s -> %-28s %-13s %d\n", e.Writer, e.Victim, e.Kind, e.Count)
		}
	}
	if r.EdgesDropped > 0 {
		fmt.Fprintf(&sb, "  (edge table full: %d events uncounted)\n", r.EdgesDropped)
	}
	return sb.String()
}

func (r *Report) heatLines() []string {
	var out []string
	for _, o := range r.Objects {
		if len(out) >= 6 {
			break
		}
		if len(o.Heat) == 0 {
			continue
		}
		max := int64(0)
		for _, h := range o.Heat {
			if h > max {
				max = h
			}
		}
		if max == 0 {
			continue
		}
		bar := make([]byte, len(o.Heat))
		for i, h := range o.Heat {
			switch {
			case h == 0:
				bar[i] = ' '
			case h*3 <= max:
				bar[i] = '.'
			case h*3 <= 2*max:
				bar[i] = ':'
			default:
				bar[i] = '#'
			}
		}
		out = append(out, fmt.Sprintf("  %-24s [%s]\n", o.Object, bar))
	}
	return out
}
