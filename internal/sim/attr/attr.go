// Package attr attributes coherence misses to program objects: it
// inverts the address assignment of internal/layout — static globals
// by their bases and strides, heap allocations through the machine's
// allocation records, arenas by address arithmetic — and aggregates
// the simulator's miss-provenance events (cache.Attributor) into
// per-object, per-field and per-block-offset tallies with
// writer→victim edges.
//
// This is the evidence stream behind the paper's §4/§5 discussion:
// not just "how many false-sharing misses at block size B" but which
// object's which field suffered them and whose writes caused them,
// before and after a transformation.
package attr

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
	"falseshare/internal/vm"
)

// Object kinds (entry provenance).
const (
	KindGlobal = "global" // shared global from the layout
	KindHeap   = "heap"   // shared-heap allocation (alloc)
	KindArena  = "arena"  // per-process arena (allocpp)
	KindNone   = "unmapped"
)

// Field is one struct member's byte span within an element.
type Field struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Size int64  `json:"size"`
}

// entry is one mapped address range.
type entry struct {
	lo, hi     int64
	object     string
	kind       string
	dims       []int64 // extents, outermost first (empty: one element)
	strides    []int64 // byte strides matching dims
	elemSize   int64   // payload bytes of one element (0: opaque range)
	structName string  // element struct type ("" for scalars)
}

// Loc locates one address within the map.
type Loc struct {
	ID     int   // entry id, stable for the map's lifetime
	Elem   int64 // flattened element slot (padded space)
	Offset int64 // byte offset within the element (may land in padding)
}

// Map resolves addresses back to (object, element, offset). Static
// ranges come from a layout; heap spans are discovered lazily through
// the attached machine's allocation records, arena addresses by
// arithmetic. A Map is not safe for concurrent use — each simulator
// gets its own collector, and diagnostic runs are serial.
type Map struct {
	entries []entry
	order   []int // entry ids sorted by lo
	structs map[string][]Field
	// sizeStructs maps a struct's layout size to its name when that
	// size is unambiguous, typing anonymous heap spans by their
	// allocation stride ("" marks a size two structs share).
	sizeStructs map[int64]string

	mach *vm.Machine

	heapBase  int64
	arenaBase int64
	arenaSize int64
	end       int64
	nprocs    int64

	ptrGlobals []ptrGlobal
	unmapped   int // id of the catch-all entry
}

// ptrGlobal is a shared scalar pointer global: reading its value
// after a run names the heap span it points at.
type ptrGlobal struct {
	name       string
	base       int64
	structName string
	elemSize   int64
}

// NewMap builds the reverse map for one program configuration.
func NewMap(l *layout.Layout) *Map {
	m := &Map{
		structs:     map[string][]Field{},
		sizeStructs: map[int64]string{},
		heapBase:    l.HeapBase,
		arenaBase:   l.ArenaBase,
		arenaSize:   l.ArenaSize,
		end:         l.End,
		nprocs:      l.Nprocs,
	}
	m.unmapped = m.addEntry(entry{lo: -1, hi: -1, object: "(unmapped)", kind: KindNone})
	for _, name := range l.Order {
		vl := l.Vars[name]
		if vl == nil {
			continue
		}
		e := entry{
			lo:       vl.Base,
			hi:       vl.Base + vl.Total,
			object:   name,
			kind:     KindGlobal,
			dims:     vl.Dims,
			strides:  vl.Strides,
			elemSize: vl.ElemSize,
		}
		t := vl.Sym.Type
		for t != nil && t.Kind == types.Array {
			t = t.Elem
		}
		if t != nil && t.Kind == types.StructK {
			e.structName = t.Struct.Name
		}
		m.insert(e)
		if t != nil && t.Kind == types.Pointer && len(vl.Dims) == 0 {
			pg := ptrGlobal{name: name, base: vl.Base}
			if pe := t.Elem; pe != nil {
				if pe.Kind == types.StructK {
					pg.structName = pe.Struct.Name
					if sl := l.Structs[pe.Struct.Name]; sl != nil {
						pg.elemSize = sl.Size
					}
				} else if pe.IsScalar() {
					pg.elemSize = pe.MustScalarSize()
				}
			}
			m.ptrGlobals = append(m.ptrGlobals, pg)
		}
	}
	for name, sl := range l.Structs {
		var si *types.StructInfo
		if l.Info != nil {
			si = l.Info.Structs[name]
		}
		fields := make([]Field, 0, len(sl.Offsets))
		for i, off := range sl.Offsets {
			end := sl.Size
			if i+1 < len(sl.Offsets) {
				end = sl.Offsets[i+1]
			}
			fname := fmt.Sprintf("f%d", i)
			if si != nil && i < len(si.Fields) {
				fname = si.Fields[i].Name
			}
			fields = append(fields, Field{Name: fname, Off: off, Size: end - off})
		}
		m.structs[name] = fields
		if prev, ok := m.sizeStructs[sl.Size]; ok && prev != name {
			m.sizeStructs[sl.Size] = "" // size shared by two structs: ambiguous
		} else {
			m.sizeStructs[sl.Size] = name
		}
	}
	return m
}

// AttachMachine connects the live machine whose allocation records
// and memory name the dynamic ranges. Attach before simulating so
// heap misses resolve to their allocation spans.
func (m *Map) AttachMachine(mach *vm.Machine) { m.mach = mach }

func (m *Map) addEntry(e entry) int {
	m.entries = append(m.entries, e)
	return len(m.entries) - 1
}

// insert registers a range and keeps the order index sorted.
func (m *Map) insert(e entry) int {
	id := m.addEntry(e)
	i := sort.Search(len(m.order), func(i int) bool {
		return m.entries[m.order[i]].lo > e.lo
	})
	m.order = append(m.order, 0)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = id
	return id
}

// find returns the id of the range containing addr, or -1.
func (m *Map) find(addr int64) int {
	lo, hi := 0, len(m.order)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.entries[m.order[mid]].lo <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1
	}
	id := m.order[lo-1]
	if addr < m.entries[id].hi {
		return id
	}
	return -1
}

// Resolve maps an address to its location. Unknown heap and arena
// addresses register their range on first touch; anything outside
// the program's address space lands in the catch-all "(unmapped)"
// entry.
func (m *Map) Resolve(addr int64) Loc {
	id := m.find(addr)
	if id < 0 {
		id = m.discover(addr)
	}
	e := &m.entries[id]
	if e.lo < 0 {
		return Loc{ID: id}
	}
	off := addr - e.lo
	elem := int64(0)
	rem := off
	for k, s := range e.strides {
		if s <= 0 {
			break
		}
		i := rem / s
		rem -= i * s
		if k < len(e.dims) {
			elem = elem*e.dims[k] + i
		} else {
			elem = i
		}
	}
	return Loc{ID: id, Elem: elem, Offset: rem}
}

func (m *Map) discover(addr int64) int {
	switch {
	case addr >= m.heapBase && addr < m.arenaBase:
		if m.mach != nil {
			if start, end, stride, ok := m.mach.AllocSpan(addr); ok {
				return m.insert(m.heapEntry(vm.Span{Start: start, End: end, Stride: stride}))
			}
		}
		if m.mach == nil {
			// Replay without a machine or sidecar: the whole heap is
			// one opaque object rather than silently unmapped.
			return m.insert(entry{lo: m.heapBase, hi: m.arenaBase, object: "heap", kind: KindHeap})
		}
	case addr >= m.arenaBase && addr < m.end && m.arenaSize > 0:
		p := (addr - m.arenaBase) / m.arenaSize
		lo := m.arenaBase + p*m.arenaSize
		return m.insert(entry{
			lo: lo, hi: lo + m.arenaSize,
			object: fmt.Sprintf("arena:p%d", p),
			kind:   KindArena,
		})
	}
	return m.unmapped
}

// heapEntry maps one recorded allocation. A span whose stride is the
// layout size of exactly one struct takes that struct's identity: the
// interleaved per-gate allocations of a pverify-style build phase then
// collapse into one logical "heap:Gate" object instead of hundreds of
// anonymous spans (the collector merges same-named entries).
func (m *Map) heapEntry(sp vm.Span) entry {
	e := entry{
		lo:     sp.Start,
		hi:     sp.End,
		object: fmt.Sprintf("heap@0x%x", sp.Start),
		kind:   KindHeap,
	}
	if sp.Stride > 0 {
		e.dims = []int64{(sp.End - sp.Start + sp.Stride - 1) / sp.Stride}
		e.strides = []int64{sp.Stride}
		e.elemSize = sp.Stride
		if sn := m.sizeStructs[sp.Stride]; sn != "" {
			e.object = "heap:" + sn
			e.structName = sn
		}
	}
	return e
}

// ResolveOwners names the dynamic heap spans after a run: every
// recorded allocation is registered (misses may not have touched them
// all), then each shared pointer global is read from machine memory
// and the span holding its value takes the global's name and element
// type — the same resolution the translation validator uses to walk
// heap structures. Spans no global reaches keep their "heap@0x…"
// names. Safe to call with no machine attached (no-op).
func (m *Map) ResolveOwners() {
	if m.mach == nil {
		return
	}
	for _, sp := range m.mach.AllocSpans() {
		if m.find(sp.Start) < 0 {
			m.insert(m.heapEntry(sp))
		}
	}
	for _, pg := range m.ptrGlobals {
		ptr := m.mach.ReadPtr(pg.base)
		if ptr == 0 {
			continue
		}
		id := m.find(ptr)
		if id < 0 {
			continue
		}
		e := &m.entries[id]
		if e.kind != KindHeap {
			continue
		}
		if strings.HasPrefix(e.object, "heap@") || strings.HasPrefix(e.object, "heap:") {
			e.object = pg.name
		} else if e.object != pg.name {
			e.object += "," + pg.name
		}
		if e.structName == "" {
			e.structName = pg.structName
		}
		if pg.elemSize > 0 && (e.elemSize == 0 || pg.elemSize < e.elemSize) {
			e.elemSize = pg.elemSize
		}
	}
}

// Object returns the name of an entry.
func (m *Map) Object(id int) string {
	if id < 0 || id >= len(m.entries) {
		return "(unmapped)"
	}
	return m.entries[id].object
}

// StructOf returns the element struct type of an entry ("" for
// scalars and opaque ranges).
func (m *Map) StructOf(id int) string {
	if id < 0 || id >= len(m.entries) {
		return ""
	}
	return m.entries[id].structName
}

// ObjectKind returns the provenance kind of an entry.
func (m *Map) ObjectKind(id int) string {
	if id < 0 || id >= len(m.entries) {
		return KindNone
	}
	return m.entries[id].kind
}

// FieldName labels the byte offset off within an element of entry id:
// the struct field containing it, "(pad)" for bytes past the element
// payload, or an offset label for large non-struct elements. Scalar
// elements and opaque ranges (arenas) return "".
func (m *Map) FieldName(id int, off int64) string {
	if id < 0 || id >= len(m.entries) {
		return ""
	}
	e := &m.entries[id]
	if e.elemSize > 0 && off >= e.elemSize {
		return "(pad)"
	}
	if e.structName != "" {
		fields := m.structs[e.structName]
		for i := len(fields) - 1; i >= 0; i-- {
			if off >= fields[i].Off {
				return fields[i].Name
			}
		}
	}
	if e.elemSize > 16 || (e.elemSize == 0 && e.kind != KindArena) {
		return fmt.Sprintf("+0x%x", off)
	}
	return ""
}
