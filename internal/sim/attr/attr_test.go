package attr

import (
	"path/filepath"
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
	"falseshare/internal/vm"
)

// buildLayout runs the front end on src and computes the address map
// input the attribution layer inverts. The parsed file is returned
// alongside so callers can compile it (symbol resolution is by AST
// node identity).
func buildLayout(t *testing.T, src string, dirs *layout.Directives, nprocs int) (*ast.File, *layout.Layout) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if dirs == nil {
		dirs = layout.NewDirectives(64)
	}
	l, err := layout.Compute(info, dirs, int64(nprocs))
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return f, l
}

const mapSrc = `
struct Rec {
    int a;
    int b;
};
shared int x;
shared int v[10];
shared struct Rec r[4];
void main() {
    x = 1;
}
`

// TestMapResolveGlobals checks the static inversion: scalars, array
// elements, and struct fields all resolve back to their names.
func TestMapResolveGlobals(t *testing.T) {
	_, l := buildLayout(t, mapSrc, nil, 2)
	m := NewMap(l)

	xv, vv, rv := l.Vars["x"], l.Vars["v"], l.Vars["r"]
	if xv == nil || vv == nil || rv == nil {
		t.Fatalf("layout missing globals: %v", l.Order)
	}

	loc := m.Resolve(xv.Base)
	if m.Object(loc.ID) != "x" || loc.Elem != 0 || loc.Offset != 0 {
		t.Errorf("x resolves to %s elem=%d off=%d", m.Object(loc.ID), loc.Elem, loc.Offset)
	}
	if k := m.ObjectKind(loc.ID); k != KindGlobal {
		t.Errorf("x kind = %s", k)
	}

	loc = m.Resolve(vv.Base + 7*vv.Strides[0])
	if m.Object(loc.ID) != "v" || loc.Elem != 7 || loc.Offset != 0 {
		t.Errorf("v[7] resolves to %s elem=%d off=%d", m.Object(loc.ID), loc.Elem, loc.Offset)
	}

	// r[3].b — the second int field of the fourth record.
	loc = m.Resolve(rv.Base + 3*rv.Strides[0] + 4)
	if m.Object(loc.ID) != "r" || loc.Elem != 3 {
		t.Errorf("r[3].b resolves to %s elem=%d", m.Object(loc.ID), loc.Elem)
	}
	if f := m.FieldName(loc.ID, loc.Offset); f != "b" {
		t.Errorf("r[3].b field = %q, want b", f)
	}
	if s := m.StructOf(loc.ID); s != "Rec" {
		t.Errorf("r struct = %q, want Rec", s)
	}

	// An address before every global is unmapped, not misattributed.
	loc = m.Resolve(xv.Base - 8)
	if k := m.ObjectKind(loc.ID); k != KindNone {
		t.Errorf("address below the globals resolved to %s (%s)", m.Object(loc.ID), k)
	}
}

// TestMapResolvePadding checks that a padded element stride separates
// payload from padding: offsets past ElemSize label as "(pad)".
func TestMapResolvePadding(t *testing.T) {
	dirs := layout.NewDirectives(64)
	dirs.PadElem["v"] = 64
	_, l := buildLayout(t, mapSrc, dirs, 2)
	m := NewMap(l)

	vv := l.Vars["v"]
	if vv.Strides[0] <= vv.ElemSize {
		t.Fatalf("padElem had no effect: stride=%d elem=%d", vv.Strides[0], vv.ElemSize)
	}
	// Payload byte of element 2.
	loc := m.Resolve(vv.Base + 2*vv.Strides[0])
	if m.Object(loc.ID) != "v" || loc.Elem != 2 || loc.Offset != 0 {
		t.Errorf("v[2] resolves to %s elem=%d off=%d", m.Object(loc.ID), loc.Elem, loc.Offset)
	}
	// A byte in element 2's padding tail.
	loc = m.Resolve(vv.Base + 2*vv.Strides[0] + vv.ElemSize)
	if loc.Elem != 2 {
		t.Errorf("pad byte attributed to element %d, want 2", loc.Elem)
	}
	if f := m.FieldName(loc.ID, loc.Offset); f != "(pad)" {
		t.Errorf("pad byte field = %q, want (pad)", f)
	}
}

const heapSrc = `
struct Rec {
    int a;
    int b;
};
shared struct Rec *owned;
void main() {
    struct Rec *g;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        g = alloc(struct Rec);
        g->a = i;
    }
    owned = alloc(struct Rec);
    owned->b = 2;
}
`

// TestHeapOwners runs a program that allocates records through a local
// pointer (anonymous) and a shared pointer global (owned), and checks
// that after ResolveOwners the owned span takes the global's name
// while the anonymous spans are typed by their allocation stride.
func TestHeapOwners(t *testing.T) {
	f, l := buildLayout(t, heapSrc, nil, 1)
	m := NewMap(l)
	bc, err := vm.Compile(f, l.Info, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(bc)
	m.AttachMachine(mach)
	if err := mach.Run(nil); err != nil {
		t.Fatal(err)
	}
	m.ResolveOwners()

	spans := mach.AllocSpans()
	if len(spans) != 5 {
		t.Fatalf("expected 5 allocations, got %d", len(spans))
	}
	// The first four spans are anonymous Rec allocations.
	loc := m.Resolve(spans[0].Start)
	if got := m.Object(loc.ID); got != "heap:Rec" {
		t.Errorf("anonymous span named %q, want heap:Rec", got)
	}
	if s := m.StructOf(loc.ID); s != "Rec" {
		t.Errorf("anonymous span struct = %q, want Rec", s)
	}
	// Field resolution inside a heap record.
	loc = m.Resolve(spans[1].Start + 4)
	if f := m.FieldName(loc.ID, loc.Offset); f != "b" {
		t.Errorf("heap record field = %q, want b", f)
	}
	// The last span is reachable from the shared pointer global.
	loc = m.Resolve(spans[4].Start)
	if got := m.Object(loc.ID); got != "owned" {
		t.Errorf("owned span named %q, want owned", got)
	}
	if k := m.ObjectKind(loc.ID); k != KindHeap {
		t.Errorf("owned span kind = %s, want %s", k, KindHeap)
	}
}

// TestMapFileRoundTrip checks the trace sidecar: a map written after a
// run and reloaded without a machine resolves the same addresses to
// the same objects and fields.
func TestMapFileRoundTrip(t *testing.T) {
	f, l := buildLayout(t, heapSrc, nil, 1)
	m := NewMap(l)
	bc, err := vm.Compile(f, l.Info, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(bc)
	m.AttachMachine(mach)
	if err := mach.Run(nil); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.trc.map.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMap(path)
	if err != nil {
		t.Fatal(err)
	}

	ov := l.Vars["owned"]
	probes := []int64{ov.Base, mach.AllocSpans()[0].Start, mach.AllocSpans()[4].Start + 4}
	for _, addr := range probes {
		a, b := m.Resolve(addr), back.Resolve(addr)
		if m.Object(a.ID) != back.Object(b.ID) {
			t.Errorf("addr 0x%x: live=%s loaded=%s", addr, m.Object(a.ID), back.Object(b.ID))
		}
		if m.FieldName(a.ID, a.Offset) != back.FieldName(b.ID, b.Offset) {
			t.Errorf("addr 0x%x: field live=%q loaded=%q",
				addr, m.FieldName(a.ID, a.Offset), back.FieldName(b.ID, b.Offset))
		}
	}

	if _, err := LoadMap(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing sidecar succeeded")
	}
}
