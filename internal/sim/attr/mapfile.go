// Map freezing: a Map can be serialized to a JSON sidecar next to a
// saved trace, so replaying the trace later (a different process, no
// compiler or machine in sight) can still attribute misses. Freezing
// resolves heap owners first, so the file carries the complete
// address space: globals, named heap spans, arenas.
package attr

import (
	"encoding/json"
	"fmt"
	"os"
)

// MapSchema identifies the sidecar format.
const MapSchema = "falseshare/addrmap/v1"

type mapFile struct {
	Schema    string             `json:"schema"`
	Nprocs    int64              `json:"nprocs"`
	HeapBase  int64              `json:"heap_base"`
	ArenaBase int64              `json:"arena_base"`
	ArenaSize int64              `json:"arena_size"`
	End       int64              `json:"end"`
	Entries   []entryJSON        `json:"entries"`
	Structs   map[string][]Field `json:"structs,omitempty"`
}

type entryJSON struct {
	Lo       int64   `json:"lo"`
	Hi       int64   `json:"hi"`
	Object   string  `json:"object"`
	Kind     string  `json:"kind"`
	Dims     []int64 `json:"dims,omitempty"`
	Strides  []int64 `json:"strides,omitempty"`
	ElemSize int64   `json:"elem_size,omitempty"`
	Struct   string  `json:"struct,omitempty"`
}

// WriteFile freezes the map to path. With a machine attached the
// heap owners are resolved first, so every allocation lands in the
// file under its best-known name.
func (m *Map) WriteFile(path string) error {
	m.ResolveOwners()
	f := mapFile{
		Schema:    MapSchema,
		Nprocs:    m.nprocs,
		HeapBase:  m.heapBase,
		ArenaBase: m.arenaBase,
		ArenaSize: m.arenaSize,
		End:       m.end,
		Structs:   m.structs,
	}
	for _, id := range m.order {
		e := &m.entries[id]
		f.Entries = append(f.Entries, entryJSON{
			Lo: e.lo, Hi: e.hi,
			Object: e.object, Kind: e.kind,
			Dims: e.dims, Strides: e.strides,
			ElemSize: e.elemSize, Struct: e.structName,
		})
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("attr: marshal map: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadMap reads a frozen map. The result resolves statically — no
// machine is attached, so addresses outside the recorded ranges fall
// back to arena arithmetic or "(unmapped)".
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f mapFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("attr: parse map %s: %w", path, err)
	}
	if f.Schema != MapSchema {
		return nil, fmt.Errorf("attr: %s: unsupported map schema %q", path, f.Schema)
	}
	m := &Map{
		structs:   f.Structs,
		heapBase:  f.HeapBase,
		arenaBase: f.ArenaBase,
		arenaSize: f.ArenaSize,
		end:       f.End,
		nprocs:    f.Nprocs,
	}
	if m.structs == nil {
		m.structs = map[string][]Field{}
	}
	m.unmapped = m.addEntry(entry{lo: -1, hi: -1, object: "(unmapped)", kind: KindNone})
	for _, ej := range f.Entries {
		m.insert(entry{
			lo: ej.Lo, hi: ej.Hi,
			object: ej.Object, kind: ej.Kind,
			dims: ej.Dims, strides: ej.Strides,
			elemSize: ej.ElemSize, structName: ej.Struct,
		})
	}
	return m, nil
}
