package ksr

import (
	"fmt"
	"testing"

	"falseshare/internal/core"
)

// falselySharedSource builds a kernel whose per-process counters share
// cache blocks (heavy false sharing) unless padded.
const falselySharedSource = `
shared int counter[64];
void main() {
    int rounds;
    rounds = 4800 / nprocs;
    for (int i = 0; i < rounds; i = i + 1) {
        counter[pid] = counter[pid] + 1;
    }
}
`

func compileAt(t *testing.T, src string, transformed bool) func(p int) (*core.Program, error) {
	t.Helper()
	return func(p int) (*core.Program, error) {
		if !transformed {
			return core.Compile(src, core.Options{Nprocs: p, BlockSize: 128})
		}
		res, err := core.Restructure(src, core.Options{Nprocs: p, BlockSize: 128})
		if err != nil {
			return nil, err
		}
		return res.Transformed, nil
	}
}

func TestExecuteBasic(t *testing.T) {
	prog, err := core.Compile(falselySharedSource, core.Options{Nprocs: 4, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Execute(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Instrs <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.Stats.FalseShare == 0 {
		t.Fatalf("expected false sharing in unpadded counters")
	}
}

func TestTransformedRunsFasterUnderContention(t *testing.T) {
	cfg := DefaultConfig()
	const p = 8
	orig, err := compileAt(t, falselySharedSource, false)(p)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := compileAt(t, falselySharedSource, true)(p)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Execute(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Execute(trans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.FalseShare >= ro.Stats.FalseShare/10 {
		t.Errorf("transformation left false sharing: %d vs %d", rt.Stats.FalseShare, ro.Stats.FalseShare)
	}
	if rt.Cycles >= ro.Cycles {
		t.Errorf("transformed not faster: %.0f vs %.0f cycles", rt.Cycles, ro.Cycles)
	}
}

func TestScalabilityReversalAndRecovery(t *testing.T) {
	// The paper's headline effect: the unoptimized program's speedup
	// reverses as contention grows; the transformed version keeps
	// scaling and reaches a higher maximum.
	cfg := DefaultConfig()
	counts := []int{1, 2, 4, 8, 16}

	runCurve := func(transformed bool) []float64 {
		rs, err := Sweep(counts, compileAt(t, falselySharedSource, transformed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Base: uniprocessor run of the unoptimized version.
		base, err := Sweep([]int{1}, compileAt(t, falselySharedSource, false), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return SpeedupCurve(rs, base[0].Cycles)
	}

	orig := runCurve(false)
	trans := runCurve(true)

	maxO, atO := MaxSpeedup(counts, orig)
	maxT, atT := MaxSpeedup(counts, trans)
	if maxT <= maxO {
		t.Errorf("transformed max speedup %.2f (at %d) not above original %.2f (at %d)\norig: %v\ntrans: %v",
			maxT, atT, maxO, atO, orig, trans)
	}
	if atT < atO {
		t.Errorf("transformed should scale to at least as many processors: %d vs %d", atT, atO)
	}
	// The unoptimized curve must flatten or reverse before the top end.
	if orig[len(orig)-1] >= float64(counts[len(counts)-1])*0.8 {
		t.Errorf("unoptimized program scales suspiciously well: %v", orig)
	}
}

func TestPhaseAccounting(t *testing.T) {
	src := `
shared int a[256];
void main() {
    for (int i = 0; i < 100; i = i + 1) { a[pid] = a[pid] + 1; }
    barrier;
    for (int i = 0; i < 100; i = i + 1) { a[pid + 32] = a[pid + 32] + 1; }
}
`
	prog, err := core.Compile(src, core.Options{Nprocs: 4, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Execute(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Phases != 2 {
		t.Fatalf("phases = %d, want 2", r.Phases)
	}
}

func TestCrossRingLatency(t *testing.T) {
	// Above 32 processors misses get more expensive; just exercise the
	// path and sanity-check monotone cost per miss.
	cfg := DefaultConfig()
	src := `
shared int x[1024];
void main() {
    for (int i = 0; i < 50; i = i + 1) {
        x[pid] = x[pid] + 1;
    }
}
`
	var perMiss [2]float64
	for i, p := range []int{16, 48} {
		prog, err := core.Compile(src, core.Options{Nprocs: p, BlockSize: 128})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Execute(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Misses() > 0 {
			perMiss[i] = r.Cycles / float64(r.Stats.Misses())
		}
	}
	if perMiss[1] <= perMiss[0] {
		t.Logf("per-miss cost: 16p=%.1f 48p=%.1f", perMiss[0], perMiss[1])
	}
}

func ExampleSpeedupCurve() {
	rs := []*Result{{Cycles: 100}, {Cycles: 50}, {Cycles: 25}}
	fmt.Println(SpeedupCurve(rs, 100))
	// Output: [1 2 4]
}
