// Package ksr models execution time on a KSR2-like hierarchical
// ring-based shared memory multiprocessor (paper §4).
//
// The machine parameters follow the paper: 128-byte coherence units,
// a miss latency of 175 cycles when serviced on the same ring and 600
// cycles across rings, and 32 processors per ring (56 processors span
// two rings). On top of the base latencies the model charges ring
// contention: every miss and ownership upgrade occupies the ring for a
// fixed number of cycles, and the effective miss latency grows with
// ring utilization (an M/M/1-style queueing term, solved to a fixed
// point per phase). This is the mechanism behind the paper's central
// scalability observation: memory contention from false sharing grows
// more than linearly with the number of processors and eventually
// reverses the speedup trend, while transformed programs keep scaling.
//
// Work is accounted phase by phase (between barrier releases): each
// phase's duration is the maximum over processors of compute cycles
// plus effective miss stall cycles, so load imbalance inside a phase
// costs time even though the simulator's scheduler is round-robin.
package ksr

import (
	"context"
	"fmt"

	"falseshare/internal/core"
	"falseshare/internal/sim/cache"
	"falseshare/internal/vm"
)

// Config holds the machine model parameters.
type Config struct {
	BlockSize     int64   // coherence unit (128 on the KSR2)
	CacheSize     int64   // per-processor local (data) cache
	Assoc         int     // associativity
	LocalLatency  float64 // same-ring miss service, cycles
	RemoteLatency float64 // cross-ring miss service, cycles
	RingSize      int     // processors per ring
	RingOccupancy float64 // ring cycles consumed per transaction
	CPI           float64 // cycles per (non-stalled) instruction
	MaxUtil       float64 // utilization cap for the queueing term
	// StepBudget caps per-process instructions on the underlying VM
	// (0: the VM default); see vm.Machine.MaxInstrs.
	StepBudget int64
}

// DefaultConfig returns the KSR2-like parameters.
func DefaultConfig() Config {
	return Config{
		BlockSize:     128,
		CacheSize:     256 * 1024,
		Assoc:         4,
		LocalLatency:  175,
		RemoteLatency: 600,
		RingSize:      32,
		RingOccupancy: 12,
		CPI:           1,
		MaxUtil:       0.98,
	}
}

// Result summarizes one execution-time simulation.
type Result struct {
	P      int
	Cycles float64
	// Instrs is the total instruction count across processors.
	Instrs int64
	// Stats is the cache simulation underlying the time model.
	Stats *cache.Stats
	// Phases is the number of barrier-delimited phases accounted.
	Phases int
	// StallFrac is the fraction of cycles attributed to miss stalls
	// on the critical path (diagnostic).
	StallFrac float64
}

// phaseSnapshot captures per-processor counters at a phase boundary.
type phaseSnapshot struct {
	instrs []int64
	misses []int64
	remote []int64
	txTot  int64 // misses + upgrades, ring transactions
}

// Execute runs the program (already compiled for its process count)
// through the VM + cache simulator and applies the time model.
func Execute(prog *core.Program, cfg Config) (*Result, error) {
	return ExecuteCtx(context.Background(), prog, cfg)
}

// ExecuteCtx is Execute with cooperative cancellation: the VM checks
// ctx periodically, so a cancelled sweep job stops mid-execution.
func ExecuteCtx(ctx context.Context, prog *core.Program, cfg Config) (*Result, error) {
	nprocs := int(prog.Layout.Nprocs)
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		return nil, err
	}
	m := vm.New(bc)
	m.SetContext(ctx)
	if cfg.StepBudget > 0 {
		m.MaxInstrs = cfg.StepBudget
	}
	sim, err := cache.New(cache.Config{
		NumProcs:  nprocs,
		BlockSize: cfg.BlockSize,
		CacheSize: cfg.CacheSize,
		Assoc:     cfg.Assoc,
	})
	if err != nil {
		return nil, err
	}

	snap := func() phaseSnapshot {
		st := sim.Stats()
		s := phaseSnapshot{
			instrs: make([]int64, nprocs),
			misses: make([]int64, nprocs),
			remote: make([]int64, nprocs),
			txTot:  st.Misses() + st.Upgrades,
		}
		for i, p := range m.Procs() {
			s.instrs[i] = p.Instrs
		}
		copy(s.misses, st.ProcMisses)
		copy(s.remote, st.ProcRemote)
		return s
	}

	var boundaries []phaseSnapshot
	m.OnBarrier = func() { boundaries = append(boundaries, snap()) }

	if err := m.Run(func(r vm.Ref) {
		sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
	}); err != nil {
		return nil, err
	}
	boundaries = append(boundaries, snap()) // final phase

	res := &Result{P: nprocs, Stats: sim.Stats(), Phases: len(boundaries)}
	var prev phaseSnapshot
	prev.instrs = make([]int64, nprocs)
	prev.misses = make([]int64, nprocs)
	prev.remote = make([]int64, nprocs)

	var totalStall, totalCycles float64
	for _, b := range boundaries {
		t, stall := phaseTime(cfg, nprocs, prev, b)
		totalCycles += t
		totalStall += stall
		prev = b
	}
	res.Cycles = totalCycles
	for _, p := range m.Procs() {
		res.Instrs += p.Instrs
	}
	if totalCycles > 0 {
		res.StallFrac = totalStall / totalCycles
	}
	return res, nil
}

// phaseTime computes the duration of one phase: the slowest
// processor's compute plus miss stalls, with ring-contention-inflated
// miss latency solved to a fixed point.
func phaseTime(cfg Config, nprocs int, prev, cur phaseSnapshot) (cycles, stall float64) {
	tx := float64(cur.txTot - prev.txTot)

	// Base service latency per miss for each processor: local-ring vs
	// cross-ring mix. Processors are assigned to rings in order, so
	// with P <= RingSize everything is local; beyond that a miss
	// crosses rings with probability proportional to the other ring's
	// share of processors.
	crossFrac := 0.0
	if nprocs > cfg.RingSize {
		other := float64(nprocs - cfg.RingSize)
		crossFrac = other / float64(nprocs) * 2 * (float64(cfg.RingSize) / float64(nprocs))
		if crossFrac > 1 {
			crossFrac = 1
		}
	}
	baseLat := cfg.LocalLatency*(1-crossFrac) + cfg.RemoteLatency*crossFrac

	// Fixed point on the phase duration.
	t := 1.0
	for p := 0; p < nprocs; p++ {
		c := float64(cur.instrs[p]-prev.instrs[p]) * cfg.CPI
		if c > t {
			t = c
		}
	}
	var worstStall float64
	for iter := 0; iter < 30; iter++ {
		rho := tx * cfg.RingOccupancy / t
		if rho > cfg.MaxUtil {
			rho = cfg.MaxUtil
		}
		lat := baseLat + cfg.RingOccupancy*rho/(1-rho)
		nt := 1.0
		worstStall = 0
		for p := 0; p < nprocs; p++ {
			c := float64(cur.instrs[p]-prev.instrs[p]) * cfg.CPI
			s := float64(cur.misses[p]-prev.misses[p]) * lat
			if c+s > nt {
				nt = c + s
				worstStall = s
			}
		}
		if diff := nt - t; diff < 0.5 && diff > -0.5 {
			t = nt
			break
		}
		t = nt
	}
	return t, worstStall
}

// Sweep runs a program source across processor counts, compiling (and
// optionally restructuring) for each count, and returns results
// indexed like the given counts. compile maps a processor count to a
// ready program.
func Sweep(counts []int, compile func(p int) (*core.Program, error), cfg Config) ([]*Result, error) {
	out := make([]*Result, 0, len(counts))
	for _, p := range counts {
		prog, err := compile(p)
		if err != nil {
			return nil, fmt.Errorf("ksr: compile for %d procs: %w", p, err)
		}
		r, err := Execute(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("ksr: run at %d procs: %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// SpeedupCurve converts cycle counts to speedups relative to base
// (typically the uniprocessor run of the unoptimized version, as in
// the paper's Figure 4).
func SpeedupCurve(results []*Result, base float64) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		if r.Cycles > 0 {
			out[i] = base / r.Cycles
		}
	}
	return out
}

// MaxSpeedup returns the best speedup and the processor count where
// it occurs (Table 3's columns).
func MaxSpeedup(counts []int, speedups []float64) (float64, int) {
	best, at := 0.0, 0
	for i, s := range speedups {
		if s > best {
			best, at = s, counts[i]
		}
	}
	return best, at
}
