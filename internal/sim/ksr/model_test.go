package ksr

import (
	"testing"
	"testing/quick"
)

// snap builds a phase snapshot pair with one phase of work.
func snap(nprocs int, instrs, misses []int64, tx int64) (phaseSnapshot, phaseSnapshot) {
	prev := phaseSnapshot{
		instrs: make([]int64, nprocs),
		misses: make([]int64, nprocs),
		remote: make([]int64, nprocs),
	}
	cur := phaseSnapshot{
		instrs: instrs,
		misses: misses,
		remote: make([]int64, nprocs),
		txTot:  tx,
	}
	return prev, cur
}

func TestPhaseTimeComputeBound(t *testing.T) {
	cfg := DefaultConfig()
	prev, cur := snap(2, []int64{1000, 500}, []int64{0, 0}, 0)
	cycles, stall := phaseTime(cfg, 2, prev, cur)
	if cycles != 1000 {
		t.Errorf("compute-bound phase = %.0f cycles, want 1000 (max over procs)", cycles)
	}
	if stall != 0 {
		t.Errorf("no misses, stall = %f", stall)
	}
}

func TestPhaseTimeMissBound(t *testing.T) {
	cfg := DefaultConfig()
	prev, cur := snap(2, []int64{100, 100}, []int64{10, 0}, 10)
	cycles, stall := phaseTime(cfg, 2, prev, cur)
	// At least compute plus 10 misses at base latency.
	min := 100 + 10*cfg.LocalLatency
	if cycles < min {
		t.Errorf("miss-bound phase = %.0f, want >= %.0f", cycles, min)
	}
	if stall <= 0 {
		t.Errorf("stall missing")
	}
}

func TestContentionSuperlinear(t *testing.T) {
	// Doubling transaction load more than doubles total miss cost per
	// miss once the ring saturates.
	cfg := DefaultConfig()
	perMiss := func(misses int64) float64 {
		prev, cur := snap(4,
			[]int64{1000, 1000, 1000, 1000},
			[]int64{misses, misses, misses, misses}, 4*misses)
		cycles, _ := phaseTime(cfg, 4, prev, cur)
		return (cycles - 1000) / float64(misses)
	}
	light := perMiss(10)
	heavy := perMiss(10000)
	if heavy <= light {
		t.Errorf("contention must raise per-miss cost: light=%.1f heavy=%.1f", light, heavy)
	}
}

func TestCrossRingRaisesLatency(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(nprocs int) float64 {
		instrs := make([]int64, nprocs)
		misses := make([]int64, nprocs)
		for i := range instrs {
			instrs[i] = 100
			misses[i] = 10
		}
		prev, cur := snap(nprocs, instrs, misses, 0) // no contention term
		cycles, _ := phaseTime(cfg, nprocs, prev, cur)
		return cycles
	}
	within := mk(16)
	across := mk(48)
	if across <= within {
		t.Errorf("crossing rings must cost more: 16p=%.0f 48p=%.0f", within, across)
	}
}

// Property: phase time is monotone in per-processor work and misses.
func TestPhaseTimeMonotone(t *testing.T) {
	cfg := DefaultConfig()
	f := func(i1, i2, m1, m2 uint16) bool {
		a := int64(i1)%10000 + 1
		b := a + int64(i2)%10000
		ma := int64(m1) % 500
		mb := ma + int64(m2)%500
		prevA, curA := snap(1, []int64{a}, []int64{ma}, ma)
		prevB, curB := snap(1, []int64{b}, []int64{mb}, mb)
		ta, _ := phaseTime(cfg, 1, prevA, curA)
		tb, _ := phaseTime(cfg, 1, prevB, curB)
		return tb >= ta-0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSpeedupHelper(t *testing.T) {
	counts := []int{1, 2, 4}
	max, at := MaxSpeedup(counts, []float64{1, 3, 2})
	if max != 3 || at != 2 {
		t.Errorf("MaxSpeedup = %f at %d", max, at)
	}
}
