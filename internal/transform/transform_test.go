package transform

import (
	"strings"
	"testing"

	"falseshare/internal/analysis/nonconc"
	"falseshare/internal/analysis/pdv"
	"falseshare/internal/analysis/procs"
	"falseshare/internal/analysis/sideeffect"
	"falseshare/internal/cfg"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
)

// plan runs the analysis + heuristics on src.
func plan(t *testing.T, src string, cfgc Config) (*ast.File, *types.Info, *Plan) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog := cfg.BuildProgram(f)
	n := int(cfgc.defaults().Nprocs)
	pdvs := pdv.Analyze(info, int64(n))
	pr := procs.Analyze(prog, info, pdvs, n)
	ph, err := nonconc.Analyze(prog)
	if err != nil {
		t.Fatalf("nonconc: %v", err)
	}
	sum := sideeffect.Analyze(info, prog, pdvs, pr, ph, sideeffect.DefaultConfig(n))
	return f, info, Decide(sum, info, cfgc)
}

func TestDecisionStrings(t *testing.T) {
	ds := []*Decision{
		{Kind: KindGroupTranspose, Shape: ShapeGroup, Arrays: []string{"a", "b"}, Period: 64, Reason: "r"},
		{Kind: KindIndirection, Struct: "S", Fields: []string{"f"}, Reason: "r"},
		{Kind: KindPadAlign, Globals: []string{"g"}, Reason: "r"},
		{Kind: KindLockPad, Globals: []string{"l"}, Reason: "r"},
	}
	for _, d := range ds {
		if d.String() == "" || !strings.Contains(d.String(), "r") {
			t.Errorf("decision string: %q", d)
		}
	}
	p := &Plan{Decisions: ds, Skipped: []string{"x: y"}}
	if !strings.Contains(p.String(), "skip: x: y") {
		t.Errorf("plan string:\n%s", p)
	}
	if len(p.ByKind(KindPadAlign)) != 1 {
		t.Errorf("ByKind wrong")
	}
}

func TestKindAndShapeStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindGroupTranspose: "group&transpose",
		KindIndirection:    "indirection",
		KindPadAlign:       "pad&align",
		KindLockPad:        "locks",
	} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", k, k)
		}
	}
	for s, want := range map[GTShape]string{
		ShapeGroup: "group", ShapeTranspose: "transpose",
		ShapeCyclic: "cyclic-reshape", ShapeBlock: "block-align",
		ShapeAlignRows: "align-rows",
	} {
		if s.String() != want {
			t.Errorf("Shape %d = %q", s, s)
		}
	}
}

// The apply-side verification: a transformation whose rewrite cannot
// cover every access must be dropped, not half-applied.
func TestApplySkipsUncoverableTranspose(t *testing.T) {
	// w escapes through a helper that receives the row index only —
	// fine; but here we alias w via a partial index expression used
	// as a value, which the transpose rewrite cannot cover.
	src := `
shared int w[100][16];
shared int sink;
void main() {
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = 0; i < 100; i = i + 1) {
            w[i][pid] = w[i][pid] + 1;
        }
    }
    sink = w[3][4];
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	// The decision exists (pattern is per-process)...
	if len(pl.ByKind(KindGroupTranspose)) != 1 {
		t.Fatalf("expected a transpose decision:\n%s", pl)
	}
	// ...and applies fine, because w[3][4] is still full-rank.
	dirs, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || dirs.PadRow["w"] != 64 {
		t.Fatalf("transpose should apply: %v", applied)
	}
	// The constant subscript must be swapped too.
	out := ast.Print(f)
	if !strings.Contains(out, "w[4][3]") {
		t.Errorf("constant access not swapped:\n%s", out)
	}
}

func TestApplyGroupRemovesOldDecls(t *testing.T) {
	src := `
shared int a[32];
shared int b[32];
void main() {
    for (int r = 0; r < 1000; r = r + 1) {
        a[pid] = a[pid] + 1;
        b[pid] = b[pid] + a[pid];
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	_, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) == 0 {
		t.Fatalf("nothing applied:\n%s", pl)
	}
	if f.Global("a") != nil || f.Global("b") != nil {
		t.Errorf("grouped arrays must be removed")
	}
	if f.Struct("GTrec1") == nil || f.Global("gtv1") == nil {
		t.Errorf("grouped record/array missing:\n%s", ast.Print(f))
	}
	// Re-check the rewritten program.
	if _, err := types.Check(f); err != nil {
		t.Errorf("transformed file fails check: %v", err)
	}
}

func TestGroupNameCollisionAvoided(t *testing.T) {
	src := `
shared int GTrec1;
shared int gtv1;
shared int a[32];
void main() {
    gtv1 = 0;
    GTrec1 = 0;
    for (int r = 0; r < 1000; r = r + 1) {
        a[pid] = a[pid] + 1;
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	_, _, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Struct("GTrec2") == nil && f.Global("gtv2") == nil {
		t.Errorf("collision not avoided:\n%s", ast.Print(f))
	}
	if _, err := types.Check(f); err != nil {
		t.Errorf("transformed file fails check: %v", err)
	}
}

func TestIndirectionSkipsStaticInstances(t *testing.T) {
	src := `
struct S { int v; };
shared struct S statics[8];
shared struct S *dyn[64];
void main() {
    struct S *p;
    p = alloc(struct S);
    dyn[pid] = p;
    barrier;
    for (int r = 0; r < 1000; r = r + 1) {
        dyn[pid]->v = dyn[pid]->v + 1;
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	_, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range applied {
		if d.Kind == KindIndirection {
			t.Fatalf("indirection must be skipped for structs with static instances")
		}
	}
	found := false
	for _, s := range pl.Skipped {
		if strings.Contains(s, "static instances") {
			found = true
		}
	}
	if !found {
		t.Errorf("skip reason missing:\n%s", pl)
	}
}

func TestIndirectionArrayAllocLoop(t *testing.T) {
	src := `
struct S { int v; struct S *next; };
shared struct S *blocks[64];
void main() {
    struct S *arr;
    arr = alloc(struct S, 10);
    blocks[pid] = arr;
    barrier;
    for (int r = 0; r < 1000; r = r + 1) {
        for (int i = 0; i < 10; i = i + 1) {
            blocks[pid][i].v = blocks[pid][i].v + 1;
        }
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	if len(pl.ByKind(KindIndirection)) != 1 {
		t.Fatalf("expected indirection:\n%s", pl)
	}
	_, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) == 0 {
		t.Fatalf("indirection not applied:\n%s", pl)
	}
	out := ast.Print(f)
	// The array allocation must be followed by an injection loop.
	if !strings.Contains(out, "allocpp(int)") || !strings.Contains(out, "__ind") {
		t.Errorf("array allocation loop missing:\n%s", out)
	}
	if _, err := types.Check(f); err != nil {
		t.Errorf("transformed file fails check: %v\n%s", err, out)
	}
}

func TestNakedIfBodyAllocSite(t *testing.T) {
	// The alloc site is a naked (unbraced) if-body: the injector must
	// wrap it in a block.
	src := `
struct S { int v; struct S *next; };
shared struct S *q[64];
void main() {
    struct S *p;
    p = 0;
    if (pid >= 0) p = alloc(struct S);
    if (p != 0) {
        p->next = q[pid];
        q[pid] = p;
    }
    barrier;
    for (int r = 0; r < 1000; r = r + 1) {
        struct S *w;
        w = q[pid];
        while (w != 0) {
            w->v = w->v + 1;
            w = w->next;
        }
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	if len(pl.ByKind(KindIndirection)) != 1 {
		t.Fatalf("expected indirection:\n%s", pl)
	}
	_, _, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := ast.Print(f)
	if !strings.Contains(out, "allocpp(int)") {
		t.Errorf("injection missing for naked if body:\n%s", out)
	}
	if _, err := types.Check(f); err != nil {
		t.Errorf("transformed file fails check: %v\n%s", err, out)
	}
}

func TestHeuristicThresholdConfig(t *testing.T) {
	src := `
shared int hot[32];
void main() {
    for (int r = 0; r < 20; r = r + 1) {
        hot[pid] = hot[pid] + 1;
    }
}
`
	// Weight 40 (20 writes + 20 reads) < default threshold 50: skipped.
	_, _, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	if len(pl.Decisions) != 0 {
		t.Errorf("should be under threshold:\n%s", pl)
	}
	// Lower threshold: transformed.
	_, _, pl = plan(t, src, Config{Nprocs: 8, BlockSize: 64, FreqThreshold: 10})
	if len(pl.ByKind(KindGroupTranspose)) != 1 {
		t.Errorf("should fire with low threshold:\n%s", pl)
	}
}
