package transform

import (
	"fmt"
	"sort"

	"falseshare/internal/analysis/rsd"
	"falseshare/internal/analysis/sideeffect"
	"falseshare/internal/lang/types"
)

// Config tunes the Section 3.3 transformation heuristics. The zero
// value is completed to the paper's settings; the Disable* flags exist
// for ablation studies.
type Config struct {
	// Nprocs is the analyzed process count.
	Nprocs int64
	// BlockSize is the coherence block size transformations pad to.
	BlockSize int64
	// WriteDominance is the write:read ratio required to transform
	// data whose reads are shared *with* locality (paper: one order of
	// magnitude).
	WriteDominance float64
	// FreqThreshold is the minimum weighted access frequency for a
	// data structure to be considered at all. Static profiling's
	// underestimation of busy scalars (the paper's Maxflow/Raytrace
	// residue) manifests through this threshold.
	FreqThreshold float64

	// CoAllocateLocks disables lock padding (Torrellas-style
	// co-allocation) for ablation.
	CoAllocateLocks bool
	// DisableGroupTranspose, DisableIndirection and DisablePadAlign
	// turn off individual transformations for ablation.
	DisableGroupTranspose bool
	DisableIndirection    bool
	DisablePadAlign       bool
}

func (c Config) defaults() Config {
	if c.Nprocs <= 0 {
		c.Nprocs = 12
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 128
	}
	if c.WriteDominance == 0 {
		c.WriteDominance = 10
	}
	if c.FreqThreshold == 0 {
		c.FreqThreshold = 50
	}
	return c
}

// Decide runs the transformation heuristics over the side-effect
// summary and returns the transformation plan.
func Decide(sum *sideeffect.Summary, info *types.Info, cfg Config) *Plan {
	cfg = cfg.defaults()
	h := &heuristics{sum: sum, info: info, cfg: cfg, plan: &Plan{}}

	type groupCand struct {
		name   string
		extent int64
	}
	var groupCands []groupCand
	indFields := map[string][]string{} // struct -> fields

	for _, os := range sum.SortedObjects() {
		obj := os.Obj

		// Locks are always padded (§3.2).
		if obj.IsLock() {
			if !cfg.CoAllocateLocks {
				h.plan.Decisions = append(h.plan.Decisions, &Decision{
					Kind:    KindLockPad,
					Objects: []string{obj.Key()},
					Globals: []string{obj.Sym.Name},
					Reason:  "locks are always padded to a cache block",
				})
			}
			continue
		}

		phase := os.DominantPhase()
		v := os.PhaseView(phase, sum.Config.RSDLimit)
		total := v.ReadW + v.WriteW

		if total < cfg.FreqThreshold {
			h.skip(obj.Key(), fmt.Sprintf("estimated frequency %.1f below threshold %.1f", total, cfg.FreqThreshold))
			continue
		}

		perProcW := h.perProcessWrites(os, v)
		if perProcW && v.WriteProcs.Count() > 1 || (obj.Kind == sideeffect.FieldObj && perProcW) {
			if !h.readsAllowTransform(obj, v) {
				h.skip(obj.Key(), "reads are shared with locality and writes do not dominate")
				continue
			}
			switch obj.Kind {
			case sideeffect.GlobalObj:
				if cfg.DisableGroupTranspose {
					h.skip(obj.Key(), "group&transpose disabled")
					continue
				}
				d, extent, grouped := h.shapeDecision(os, v)
				if d == nil {
					h.skip(obj.Key(), "per-process pattern with no applicable reshape")
					continue
				}
				if grouped {
					groupCands = append(groupCands, groupCand{name: obj.Sym.Name, extent: extent})
				} else {
					h.plan.Decisions = append(h.plan.Decisions, d)
				}
			case sideeffect.HeapViaObj:
				if cfg.DisableGroupTranspose {
					h.skip(obj.Key(), "group&transpose disabled")
					continue
				}
				h.plan.Decisions = append(h.plan.Decisions, &Decision{
					Kind:    KindGroupTranspose,
					Shape:   ShapeGroup,
					Objects: []string{obj.Key()},
					HeapVia: []string{obj.Sym.Name},
					Reason:  "per-process heap sections padded to block boundaries",
				})
			case sideeffect.FieldObj:
				if cfg.DisableIndirection {
					h.skip(obj.Key(), "indirection disabled")
					continue
				}
				f := obj.Field
				if f.Type.Kind == types.Pointer {
					h.skip(obj.Key(), "link fields define the structure and are not indirected")
					continue
				}
				if f.Type.Kind == types.Array {
					h.skip(obj.Key(), "array fields are not indirected")
					continue
				}
				indFields[f.Parent.Name] = append(indFields[f.Parent.Name], f.Name)
			default:
				h.skip(obj.Key(), "no transformation for heap-type aggregate")
			}
			continue
		}

		// Pad & align: both reads and writes shared, no processor or
		// spatial locality (§3.3).
		sharedWrites := v.WriteProcs.Count() > 1 && !perProcW
		sharedReads := v.ReadW == 0 || v.ReadProcs.Count() > 1
		if sharedWrites && sharedReads && !v.SpatialWrites() && !v.SpatialReads() {
			if cfg.DisablePadAlign {
				h.skip(obj.Key(), "pad&align disabled")
				continue
			}
			switch obj.Kind {
			case sideeffect.GlobalObj:
				h.plan.Decisions = append(h.plan.Decisions, &Decision{
					Kind:    KindPadAlign,
					Objects: []string{obj.Key()},
					Globals: []string{obj.Sym.Name},
					Reason:  "write-shared without processor or spatial locality",
				})
			case sideeffect.HeapViaObj:
				h.plan.Decisions = append(h.plan.Decisions, &Decision{
					Kind:    KindPadAlign,
					Objects: []string{obj.Key()},
					HeapVia: []string{obj.Sym.Name},
					Reason:  "write-shared heap block without locality",
				})
			default:
				h.skip(obj.Key(), "pad&align does not apply to fields")
			}
			continue
		}

		h.skip(obj.Key(), describePattern(v))
	}

	// Gather group candidates by extent: vectors with identical
	// extents whose same-index elements belong to the same process
	// are grouped into one record array (Figure 2a).
	byExtent := map[int64][]string{}
	for _, gc := range groupCands {
		byExtent[gc.extent] = append(byExtent[gc.extent], gc.name)
	}
	extents := make([]int64, 0, len(byExtent))
	for e := range byExtent {
		extents = append(extents, e)
	}
	sort.Slice(extents, func(i, j int) bool { return extents[i] < extents[j] })
	for _, e := range extents {
		names := byExtent[e]
		sort.Strings(names)
		keys := make([]string, len(names))
		for i, n := range names {
			keys[i] = "global:" + n
		}
		h.plan.Decisions = append(h.plan.Decisions, &Decision{
			Kind:    KindGroupTranspose,
			Shape:   ShapeGroup,
			Objects: keys,
			Arrays:  names,
			Period:  e,
			Reason:  "pid-indexed vectors grouped into per-process records",
		})
	}

	// Indirection decisions, one per struct.
	structs := make([]string, 0, len(indFields))
	for s := range indFields {
		structs = append(structs, s)
	}
	sort.Strings(structs)
	for _, s := range structs {
		fields := indFields[s]
		sort.Strings(fields)
		keys := make([]string, len(fields))
		for i, f := range fields {
			keys[i] = "field:" + s + "." + f
		}
		h.plan.Decisions = append(h.plan.Decisions, &Decision{
			Kind:    KindIndirection,
			Objects: keys,
			Struct:  s,
			Fields:  fields,
			Reason:  "per-process fields embedded in dynamic structures",
		})
	}

	return h.plan
}

type heuristics struct {
	sum  *sideeffect.Summary
	info *types.Info
	cfg  Config
	plan *Plan
}

func (h *heuristics) skip(key, reason string) {
	h.plan.Skipped = append(h.plan.Skipped, key+": "+reason)
}

// perProcessWrites decides whether the object's dominant-phase writes
// are per-process: either the descriptors prove pairwise-disjoint
// sections, or (for pointer-reached data) the write provenance is
// per-process.
func (h *heuristics) perProcessWrites(os *sideeffect.ObjectSummary, v *sideeffect.View) bool {
	if v.WriteW <= 0 {
		return false
	}
	switch os.Obj.Kind {
	case sideeffect.FieldObj, sideeffect.HeapTypeObj:
		return v.WriteProv == sideeffect.ProvPerProcess
	default:
		return v.PerProcessWrites(h.cfg.Nprocs)
	}
}

// readsAllowTransform applies the read-side condition of §3.3: reads
// must be per-process, absent, or shared without locality; shared
// reads *with* locality require order-of-magnitude write dominance.
func (h *heuristics) readsAllowTransform(obj sideeffect.Object, v *sideeffect.View) bool {
	if v.ReadW == 0 {
		return true
	}
	switch obj.Kind {
	case sideeffect.FieldObj, sideeffect.HeapTypeObj:
		if v.ReadProv == sideeffect.ProvPerProcess {
			return true
		}
	default:
		if v.PerProcessReads(h.cfg.Nprocs) {
			return true
		}
	}
	if !v.SpatialReads() {
		return true // read-shared without spatial locality
	}
	return v.WriteW >= h.cfg.WriteDominance*v.ReadW
}

// shapeDecision derives the group & transpose shape for a global array
// from its dominant write descriptor. It returns (decision, extent,
// grouped): grouped decisions are emitted later so same-extent vectors
// can be gathered into one record.
func (h *heuristics) shapeDecision(os *sideeffect.ObjectSummary, v *sideeffect.View) (*Decision, int64, bool) {
	sym := os.Obj.Sym
	dims, ok := types.ArrayDims(sym.Type, h.cfg.Nprocs)
	if !ok || len(dims) == 0 {
		return nil, 0, false
	}
	w := heaviest(v.Writes)
	if w == nil || len(w.R) != len(dims) {
		return nil, 0, false
	}
	r := w.R

	switch len(dims) {
	case 1:
		a := r[0]
		if a.IsPoint() && a.Base.Pid != 0 {
			// One element per process: group candidate.
			return &Decision{}, dims[0], true
		}
		s0 := a.Section(0)
		s1 := a.Section(1)
		if !s0.Known || !s1.Known || !s0.Exact {
			return nil, 0, false
		}
		if s0.Stride > 1 && s1.Lo-s0.Lo != 0 && s1.Lo-s0.Lo < s0.Stride {
			// Cyclic partition: stride P, process p owns residue class
			// lo(p) mod P.
			return &Decision{
				Kind:    KindGroupTranspose,
				Shape:   ShapeCyclic,
				Objects: []string{os.Obj.Key()},
				Arrays:  []string{sym.Name},
				Period:  s0.Stride,
				Reason:  fmt.Sprintf("cyclic partition with period %d regrouped per process", s0.Stride),
			}, 0, false
		}
		if s0.Stride == 1 {
			chunk := s1.Lo - s0.Lo
			span := s0.Hi - s0.Lo + 1
			if chunk > 0 && span <= chunk {
				return &Decision{
					Kind:    KindGroupTranspose,
					Shape:   ShapeBlock,
					Objects: []string{os.Obj.Key()},
					Arrays:  []string{sym.Name},
					Period:  chunk,
					Reason:  fmt.Sprintf("contiguous per-process chunks of %d elements aligned to blocks", chunk),
				}, 0, false
			}
		}
		return nil, 0, false
	case 2:
		switch r.PidDim() {
		case 1:
			return &Decision{
				Kind:    KindGroupTranspose,
				Shape:   ShapeTranspose,
				Objects: []string{os.Obj.Key()},
				Arrays:  []string{sym.Name},
				Reason:  "pid indexes the minor dimension: transpose",
			}, 0, false
		case 0:
			return &Decision{
				Kind:    KindGroupTranspose,
				Shape:   ShapeAlignRows,
				Objects: []string{os.Obj.Key()},
				Arrays:  []string{sym.Name},
				Reason:  "process-major rows aligned and padded to blocks",
			}, 0, false
		}
	}
	return nil, 0, false
}

func heaviest(list []rsd.Weighted) *rsd.Weighted {
	var best *rsd.Weighted
	for i := range list {
		if best == nil || list[i].Weight > best.Weight {
			best = &list[i]
		}
	}
	return best
}

// describePattern explains why no transformation applied.
func describePattern(v *sideeffect.View) string {
	switch {
	case v.WriteW == 0:
		return "read-only in dominant phase"
	case v.WriteProcs.Count() <= 1:
		return "written by a single process"
	case v.SpatialWrites():
		return "write-shared but with spatial locality (e.g. unknown-base unit-stride partition)"
	default:
		return "no heuristic matched"
	}
}
