// Package transform implements the paper's four shared-data
// transformations — group & transpose, indirection, pad & align, and
// lock padding — together with the Section 3.3 heuristics that decide
// which data structures to restructure.
package transform

import (
	"fmt"
	"strings"
)

// Kind enumerates the transformations.
type Kind int

const (
	// KindGroupTranspose groups per-process data and transposes or
	// reshapes arrays so each process's section is contiguous and
	// block-aligned.
	KindGroupTranspose Kind = iota
	// KindIndirection moves per-process fields of dynamically
	// allocated structures into per-process arenas behind pointers.
	KindIndirection
	// KindPadAlign pads write-shared, locality-free data to cache
	// block boundaries.
	KindPadAlign
	// KindLockPad pads lock variables to their own cache blocks.
	KindLockPad
)

func (k Kind) String() string {
	switch k {
	case KindGroupTranspose:
		return "group&transpose"
	case KindIndirection:
		return "indirection"
	case KindPadAlign:
		return "pad&align"
	case KindLockPad:
		return "locks"
	}
	return "transform?"
}

// GTShape describes how group & transpose restructures its target.
type GTShape int

const (
	// ShapeGroup gathers one or more pid-indexed vectors into an array
	// of per-process records padded to the block size (Figure 2a).
	ShapeGroup GTShape = iota
	// ShapeTranspose swaps the dimensions of a 2-D array whose second
	// dimension is pid-partitioned.
	ShapeTranspose
	// ShapeCyclic reshapes a cyclically partitioned vector
	// a[pid + i*P] into a[P][N/P] so each process's elements become a
	// contiguous padded row.
	ShapeCyclic
	// ShapeBlock aligns the contiguous per-process chunks of a
	// block-partitioned vector on block boundaries by reshaping
	// a[pid*C + i] into a[N/C][C] with padded rows.
	ShapeBlock
	// ShapeAlignRows pads and aligns the rows of an already
	// process-major 2-D array (the layout SPLASH2 programmers chose by
	// hand) without changing subscripts.
	ShapeAlignRows
)

func (s GTShape) String() string {
	switch s {
	case ShapeGroup:
		return "group"
	case ShapeTranspose:
		return "transpose"
	case ShapeCyclic:
		return "cyclic-reshape"
	case ShapeBlock:
		return "block-align"
	case ShapeAlignRows:
		return "align-rows"
	}
	return "shape?"
}

// Decision is one planned transformation.
type Decision struct {
	Kind Kind
	// Objects are the summary object keys this decision covers.
	Objects []string
	// Reason explains the heuristic trigger (for reports and tests).
	Reason string

	// Group & transpose parameters.
	Shape GTShape
	// Arrays are the global array names involved (>1 only for
	// ShapeGroup).
	Arrays []string
	// Period is the cyclic period (ShapeCyclic) or chunk size
	// (ShapeBlock) in elements.
	Period int64

	// Indirection parameters.
	Struct string
	Fields []string

	// Pad & align / lock parameters.
	Globals []string // shared globals to pad (locks included)
	HeapVia []string // shared global pointers whose heap elements pad

	// GroupVar and GroupStruct are filled in by Apply for ShapeGroup
	// decisions: the synthesized record array and struct names. The
	// translation validator uses them to remap grouped vectors.
	GroupVar    string
	GroupStruct string
}

// Targets returns the shared global names the decision touches —
// the arrays, padded globals and heap pointers from the plan, plus
// the synthesized group variable once Apply has run. Indirection
// decisions target struct fields, not globals; they contribute
// "Struct.field" keys (callers that need the pointer globals reaching
// that struct resolve them against their own type info).
func (d *Decision) Targets() []string {
	var out []string
	seen := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			if n != "" && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(d.Arrays...)
	add(d.Globals...)
	add(d.HeapVia...)
	add(d.GroupVar)
	for _, f := range d.Fields {
		add(d.Struct + "." + f)
	}
	return out
}

// TargetKey renders the targets as one comma-joined string — the
// detail the transform.apply and transform.corrupt fault points fire
// with, so chaos specs can select a single object by substring.
func (d *Decision) TargetKey() string { return strings.Join(d.Targets(), ",") }

// String renders the decision.
func (d *Decision) String() string {
	switch d.Kind {
	case KindGroupTranspose:
		return fmt.Sprintf("%s(%s: %s) period=%d — %s", d.Kind, d.Shape, strings.Join(d.Arrays, ","), d.Period, d.Reason)
	case KindIndirection:
		return fmt.Sprintf("%s(struct %s: %s) — %s", d.Kind, d.Struct, strings.Join(d.Fields, ","), d.Reason)
	case KindPadAlign:
		return fmt.Sprintf("%s(%s%s) — %s", d.Kind, strings.Join(d.Globals, ","), heapSuffix(d.HeapVia), d.Reason)
	case KindLockPad:
		return fmt.Sprintf("%s(%s) — %s", d.Kind, strings.Join(d.Globals, ","), d.Reason)
	}
	return d.Kind.String()
}

func heapSuffix(hv []string) string {
	if len(hv) == 0 {
		return ""
	}
	return " heap:" + strings.Join(hv, ",")
}

// Plan is the full set of decisions for a program.
type Plan struct {
	Decisions []*Decision
	// Skipped records objects considered but rejected, with reasons —
	// the paper's residual-false-sharing cases show up here.
	Skipped []string
}

// String renders the plan.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, d := range p.Decisions {
		fmt.Fprintf(&sb, "%s\n", d)
	}
	for _, s := range p.Skipped {
		fmt.Fprintf(&sb, "skip: %s\n", s)
	}
	return sb.String()
}

// ByKind returns the decisions of one kind.
func (p *Plan) ByKind(k Kind) []*Decision {
	var out []*Decision
	for _, d := range p.Decisions {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}
