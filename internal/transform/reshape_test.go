package transform

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/types"
)

func TestApplyCyclicReshape(t *testing.T) {
	src := `
shared int a[64];
void main() {
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = 0; i < 8; i = i + 1) {
            a[pid + i * nprocs] = a[pid + i * nprocs] + 1;
        }
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	gt := pl.ByKind(KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != ShapeCyclic || gt[0].Period != 8 {
		t.Fatalf("plan:\n%s", pl)
	}
	dirs, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 {
		t.Fatalf("not applied:\n%s", pl)
	}
	out := ast.Print(f)
	if !strings.Contains(out, "a[8][8]") {
		t.Errorf("declaration not reshaped:\n%s", out)
	}
	if !strings.Contains(out, "% 8][") || !strings.Contains(out, "/ 8]") {
		t.Errorf("subscripts not rewritten:\n%s", out)
	}
	if dirs.PadRow["a"] != 64 {
		t.Errorf("row padding missing: %v", dirs.PadRow)
	}
	if _, err := types.Check(f); err != nil {
		t.Errorf("reshaped program fails check: %v\n%s", err, out)
	}
}

func TestApplyBlockReshape(t *testing.T) {
	src := `
shared int a[96];
void main() {
    int chunk;
    int lo;
    chunk = 96 / nprocs;
    lo = pid * chunk;
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = lo; i < lo + chunk; i = i + 1) {
            a[i] = a[i] + 1;
        }
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	gt := pl.ByKind(KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != ShapeBlock || gt[0].Period != 12 {
		t.Fatalf("plan:\n%s", pl)
	}
	_, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 {
		t.Fatalf("not applied:\n%s", pl)
	}
	out := ast.Print(f)
	if !strings.Contains(out, "a[8][12]") {
		t.Errorf("declaration not reshaped:\n%s", out)
	}
	if !strings.Contains(out, "/ 12][") || !strings.Contains(out, "% 12]") {
		t.Errorf("subscripts not rewritten:\n%s", out)
	}
	if _, err := types.Check(f); err != nil {
		t.Errorf("reshaped program fails check: %v\n%s", err, out)
	}
}

func TestApplyAlignRows(t *testing.T) {
	// Already process-major 2-D array: only directives, no rewrite.
	src := `
shared int rows[64][10];
void main() {
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = 0; i < 10; i = i + 1) {
            rows[pid][i] = rows[pid][i] + 1;
        }
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 128})
	gt := pl.ByKind(KindGroupTranspose)
	if len(gt) != 1 || gt[0].Shape != ShapeAlignRows {
		t.Fatalf("plan:\n%s", pl)
	}
	dirs, _, err := Apply(f, info, pl, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dirs.PadRow["rows"] != 128 || dirs.AlignVar["rows"] != 128 {
		t.Errorf("directives: %v %v", dirs.PadRow, dirs.AlignVar)
	}
	// Subscripts untouched.
	if !strings.Contains(ast.Print(f), "rows[pid][i]") {
		t.Errorf("align-rows must not rewrite subscripts")
	}
}

func TestHeapViaGroupDirective(t *testing.T) {
	src := `
shared double *slots;
void main() {
    if (pid == 0) {
        slots = alloc(double, 64);
    }
    barrier;
    for (int r = 0; r < 200; r = r + 1) {
        slots[pid] = slots[pid] + 1.0;
    }
}
`
	f, info, pl := plan(t, src, Config{Nprocs: 8, BlockSize: 64})
	dirs, applied, err := Apply(f, info, pl, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range applied {
		if d.Kind == KindGroupTranspose && len(d.HeapVia) == 1 && d.HeapVia[0] == "slots" {
			found = true
		}
	}
	if !found {
		t.Fatalf("heap-via grouping not applied:\n%s", pl)
	}
	if dirs.PadHeapElem["slots"] != 64 {
		t.Errorf("heap pad directive missing: %v", dirs.PadHeapElem)
	}
}
