package transform

import (
	"context"
	"fmt"
	"runtime/debug"

	"falseshare/internal/faultinject"
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
)

// DecisionFailure records one decision whose application failed — an
// error, an injected fault, or a contained panic. The restructurer
// turns failures into per-object degradations (the object keeps its
// identity layout) instead of failing the whole compile.
type DecisionFailure struct {
	Decision *Decision
	Err      error
	Panicked bool
	Stack    []byte // panic stack (Panicked only)
}

func (f *DecisionFailure) Error() string {
	if f.Panicked {
		return fmt.Sprintf("apply %s: panic: %v", f.Decision, f.Err)
	}
	return fmt.Sprintf("apply %s: %v", f.Decision, f.Err)
}

func (f *DecisionFailure) Unwrap() error { return f.Err }

// Outcome is the result of one ApplySafe pass.
type Outcome struct {
	Dirs    *layout.Directives
	Applied []*Decision
	Failed  []*DecisionFailure
}

// Apply executes a transformation plan: it mutates the AST (dimension
// swaps, reshapes, grouping, indirection) and emits layout directives
// (alignment and padding). The caller must re-run the type checker on
// the mutated file.
//
// Decisions whose preconditions fail verification (e.g. an access the
// rewrite cannot cover) are dropped and recorded in plan.Skipped —
// transformations must apply universally or not at all (paper §2).
// The returned slice holds the decisions actually applied.
//
// Apply fails fast: the first decision failure (including a contained
// panic) aborts with its error. Callers that want per-object
// degradation use ApplySafe.
func Apply(file *ast.File, info *types.Info, plan *Plan, blockSize int64, nprocs int64) (*layout.Directives, []*Decision, error) {
	out := ApplySafe(nil, file, info, plan, blockSize, nprocs, nil)
	if len(out.Failed) > 0 {
		return nil, nil, out.Failed[0]
	}
	return out.Dirs, out.Applied, nil
}

// ApplySafe executes a plan with per-decision fault containment: each
// decision runs under recover and its transform.apply fault point, and
// a failing decision is recorded in Outcome.Failed while the remaining
// decisions still apply. skip, when non-nil, excludes decisions up
// front (the restructurer's degradation loop passes the already
// degraded set).
//
// CAUTION: a decision that fails mid-rewrite may leave the AST
// partially mutated. When Outcome.Failed is non-empty the caller must
// rebuild from a fresh parse with those decisions excluded rather than
// use the mutated file. ctx is only consulted by fault points.
func ApplySafe(ctx context.Context, file *ast.File, info *types.Info, plan *Plan, blockSize int64, nprocs int64, skip func(*Decision) bool) *Outcome {
	a := &applier{
		ctx:    ctx,
		file:   file,
		info:   info,
		plan:   plan,
		dirs:   layout.NewDirectives(blockSize),
		nprocs: nprocs,
		block:  blockSize,
	}
	out := &Outcome{Dirs: a.dirs}
	// Order: padding first (pure directives), then grouping/reshaping
	// (declaration + subscript rewrites), then indirection (type +
	// access rewrites + allocation-site injection).
	for _, kind := range []Kind{KindLockPad, KindPadAlign, KindGroupTranspose, KindIndirection} {
		for _, d := range plan.ByKind(kind) {
			if skip != nil && skip(d) {
				continue
			}
			ok, failure := a.applyOne(d)
			if failure != nil {
				out.Failed = append(out.Failed, failure)
				continue
			}
			if ok {
				out.Applied = append(out.Applied, d)
			}
		}
	}
	return out
}

type applier struct {
	ctx    context.Context
	file   *ast.File
	info   *types.Info
	plan   *Plan
	dirs   *layout.Directives
	nprocs int64
	block  int64
	gtSeq  int
}

// applyOne runs a single decision under panic containment and its
// fault point.
func (a *applier) applyOne(d *Decision) (ok bool, failure *DecisionFailure) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
			failure = &DecisionFailure{
				Decision: d,
				Err:      fmt.Errorf("%v", r),
				Panicked: true,
				Stack:    debug.Stack(),
			}
		}
	}()
	if err := faultinject.Fire(a.ctx, "transform.apply", d.TargetKey()); err != nil {
		return false, &DecisionFailure{Decision: d, Err: err}
	}
	ok, err := a.apply(d)
	if err != nil {
		return false, &DecisionFailure{Decision: d, Err: err}
	}
	return ok, nil
}

// corrupted reports whether the transform.corrupt fault point fires
// for this decision: a firing point makes the applier emit a
// deliberately WRONG rewrite (a seeded miscompile) so tests can prove
// the translation validator catches it. Never fires in production —
// the point only exists under an enabled fault set.
func (a *applier) corrupted(d *Decision) bool {
	return faultinject.Fire(a.ctx, "transform.corrupt", d.TargetKey()) != nil
}

func (a *applier) skip(d *Decision, reason string) (bool, error) {
	a.plan.Skipped = append(a.plan.Skipped, fmt.Sprintf("%s: %s", d, reason))
	return false, nil
}

func (a *applier) apply(d *Decision) (bool, error) {
	switch d.Kind {
	case KindLockPad, KindPadAlign:
		for _, g := range d.Globals {
			a.dirs.PadElem[g] = a.block
			a.dirs.AlignVar[g] = a.block
		}
		for _, g := range d.HeapVia {
			a.dirs.PadHeapElem[g] = a.block
		}
		return true, nil
	case KindGroupTranspose:
		return a.applyGT(d)
	case KindIndirection:
		return a.applyIndirection(d)
	}
	return false, fmt.Errorf("transform: unknown decision kind %v", d.Kind)
}

// ---------------------------------------------------------------------------
// Group & transpose

func (a *applier) applyGT(d *Decision) (bool, error) {
	switch d.Shape {
	case ShapeAlignRows:
		name := d.Arrays[0]
		a.dirs.PadRow[name] = a.block
		a.dirs.AlignVar[name] = a.block
		return true, nil

	case ShapeGroup:
		if len(d.HeapVia) > 0 {
			for _, g := range d.HeapVia {
				a.dirs.PadHeapElem[g] = a.block
			}
			return true, nil
		}
		return a.applyGroup(d)

	case ShapeTranspose:
		return a.applyTranspose(d)

	case ShapeCyclic, ShapeBlock:
		return a.applyReshape(d)
	}
	return false, fmt.Errorf("transform: unknown G&T shape %v", d.Shape)
}

// applyGroup gathers 1-D vectors into an array of per-process records.
func (a *applier) applyGroup(d *Decision) (bool, error) {
	// Verify every use of every array is a full rank-1 subscript.
	var decls []*ast.VarDecl
	for _, name := range d.Arrays {
		g := a.file.Global(name)
		sym := a.info.Globals[name]
		if g == nil || sym == nil {
			return a.skip(d, "array declaration not found")
		}
		if !a.fullIndexUsesOnly(sym, 1) {
			return a.skip(d, fmt.Sprintf("array %q has accesses the rewrite cannot cover", name))
		}
		elem := types.ElemType(sym.Type)
		if !elem.IsScalar() {
			return a.skip(d, fmt.Sprintf("array %q has non-scalar elements", name))
		}
		decls = append(decls, g)
	}

	a.gtSeq++
	structName := fmt.Sprintf("GTrec%d", a.gtSeq)
	varName := fmt.Sprintf("gtv%d", a.gtSeq)
	for a.nameTaken(structName) || a.nameTaken(varName) {
		a.gtSeq++
		structName = fmt.Sprintf("GTrec%d", a.gtSeq)
		varName = fmt.Sprintf("gtv%d", a.gtSeq)
	}

	// Build the record: one field per grouped vector.
	sd := &ast.StructDecl{Name: structName}
	for _, g := range decls {
		sd.Fields = append(sd.Fields, &ast.FieldDecl{
			Type: g.Type.Clone(),
			Name: g.Name,
		})
	}
	a.file.Structs = append(a.file.Structs, sd)

	// The grouped array, padded per element so that no two processes'
	// records share a block.
	nv := &ast.VarDecl{
		Storage: ast.Shared,
		Type:    &ast.TypeExpr{Name: structName, Struct: true},
		Name:    varName,
		Dims:    []ast.Expr{ast.CloneExpr(decls[0].Dims[0])},
	}

	// Replace the first grouped declaration with the record array and
	// delete the rest, preserving declaration order.
	var globals []*ast.VarDecl
	replaced := false
	inGroup := func(g *ast.VarDecl) bool {
		for _, od := range decls {
			if od == g {
				return true
			}
		}
		return false
	}
	for _, g := range a.file.Globals {
		if inGroup(g) {
			if !replaced {
				globals = append(globals, nv)
				replaced = true
			}
			continue
		}
		globals = append(globals, g)
	}
	a.file.Globals = globals

	a.dirs.PadElem[varName] = a.block
	a.dirs.AlignVar[varName] = a.block
	d.GroupVar = varName
	d.GroupStruct = structName

	// Rewrite a[e] -> gtv[e].a for every grouped vector.
	targets := map[*types.Symbol]string{}
	for _, name := range d.Arrays {
		targets[a.info.Globals[name]] = name
	}
	corrupt := a.corrupted(d)
	ast.RewriteFile(a.file, func(e ast.Expr) ast.Expr {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return e
		}
		id, ok := ix.X.(*ast.Ident)
		if !ok {
			return e
		}
		fieldName, ok := targets[a.info.Uses[id]]
		if !ok {
			return e
		}
		index := ix.Index
		if corrupt {
			// Seeded miscompile: collapse every grouped access onto
			// record 0, so all processes stomp one slot.
			index = ast.NewInt(0)
		}
		return &ast.FieldExpr{
			P:    ix.P,
			X:    &ast.IndexExpr{P: ix.P, X: ast.NewIdent(varName), Index: index},
			Name: fieldName,
		}
	})
	return true, nil
}

// applyTranspose swaps the two dimensions of a 2-D array.
func (a *applier) applyTranspose(d *Decision) (bool, error) {
	name := d.Arrays[0]
	g := a.file.Global(name)
	sym := a.info.Globals[name]
	if g == nil || sym == nil || len(g.Dims) != 2 {
		return a.skip(d, "not a 2-D array")
	}
	if !a.fullIndexUsesOnly(sym, 2) {
		return a.skip(d, "accesses the transpose cannot cover")
	}
	g.Dims[0], g.Dims[1] = g.Dims[1], g.Dims[0]
	a.dirs.PadRow[name] = a.block
	a.dirs.AlignVar[name] = a.block

	if a.corrupted(d) {
		// Seeded miscompile: the declaration was transposed but the
		// subscripts were not rewritten, so every access lands at the
		// mirrored element.
		return true, nil
	}
	ast.RewriteFile(a.file, func(e ast.Expr) ast.Expr {
		outer, ok := e.(*ast.IndexExpr)
		if !ok {
			return e
		}
		inner, ok := outer.X.(*ast.IndexExpr)
		if !ok {
			return e
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok || a.info.Uses[id] != sym {
			return e
		}
		inner.Index, outer.Index = outer.Index, inner.Index
		return e
	})
	return true, nil
}

// applyReshape turns a 1-D vector into a 2-D array so that each
// process's section becomes a contiguous padded row.
//
//	cyclic period P: a[e]  ->  a[e % P][e / P],  dims [P][ceil(N/P)]
//	block chunk C:   a[e]  ->  a[e / C][e % C],  dims [ceil(N/C)][C]
func (a *applier) applyReshape(d *Decision) (bool, error) {
	name := d.Arrays[0]
	g := a.file.Global(name)
	sym := a.info.Globals[name]
	if g == nil || sym == nil || len(g.Dims) != 1 {
		return a.skip(d, "not a 1-D array")
	}
	if d.Period <= 0 {
		return a.skip(d, "no reshape period")
	}
	if !a.fullIndexUsesOnly(sym, 1) {
		return a.skip(d, "accesses the reshape cannot cover")
	}
	dims, ok := types.ArrayDims(sym.Type, a.nprocs)
	if !ok {
		return a.skip(d, "non-constant extent")
	}
	n := dims[0]
	p := d.Period
	other := (n + p - 1) / p

	if d.Shape == ShapeCyclic {
		g.Dims = []ast.Expr{ast.NewInt(p), ast.NewInt(other)}
	} else {
		g.Dims = []ast.Expr{ast.NewInt(other), ast.NewInt(p)}
	}
	a.dirs.PadRow[name] = a.block
	a.dirs.AlignVar[name] = a.block

	shape := d.Shape
	if a.corrupted(d) {
		// Seeded miscompile: emit the OTHER reshape's subscript mapping
		// (cyclic <-> block), scattering each process's elements.
		if shape == ShapeCyclic {
			shape = ShapeBlock
		} else {
			shape = ShapeCyclic
		}
	}
	ast.RewriteFile(a.file, func(e ast.Expr) ast.Expr {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return e
		}
		id, ok := ix.X.(*ast.Ident)
		if !ok || a.info.Uses[id] != sym {
			return e
		}
		idx := ix.Index
		var first, second ast.Expr
		if shape == ShapeCyclic {
			first = ast.NewBinary(token.PERCENT, idx, ast.NewInt(p))
			second = ast.NewBinary(token.SLASH, ast.CloneExpr(idx), ast.NewInt(p))
		} else {
			first = ast.NewBinary(token.SLASH, idx, ast.NewInt(p))
			second = ast.NewBinary(token.PERCENT, ast.CloneExpr(idx), ast.NewInt(p))
		}
		return &ast.IndexExpr{
			P:     ix.P,
			X:     &ast.IndexExpr{P: ix.P, X: ast.NewIdent(name), Index: first},
			Index: second,
		}
	})
	return true, nil
}

// fullIndexUsesOnly verifies that every use of sym in the program is
// the base of an index chain of exactly the given rank — the condition
// under which subscript rewriting covers all accesses.
func (a *applier) fullIndexUsesOnly(sym *types.Symbol, rank int) bool {
	ok := true
	for _, fn := range a.file.Funcs {
		var check func(e ast.Expr, depth int)
		check = func(e ast.Expr, depth int) {
			switch x := e.(type) {
			case *ast.Ident:
				if a.info.Uses[x] == sym && depth != rank {
					ok = false
				}
			case *ast.IndexExpr:
				check(x.X, depth+1)
				check(x.Index, 0)
			case *ast.FieldExpr:
				check(x.X, 0)
			case *ast.BinaryExpr:
				check(x.X, 0)
				check(x.Y, 0)
			case *ast.UnaryExpr:
				check(x.X, 0)
			case *ast.DerefExpr:
				check(x.X, 0)
			case *ast.CallExpr:
				for _, arg := range x.Args {
					check(arg, 0)
				}
			case *ast.AllocExpr:
				if x.Count != nil {
					check(x.Count, 0)
				}
			}
		}
		ast.Walk(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				check(s.LHS, 0)
				check(s.RHS, 0)
			case *ast.DeclStmt:
				if s.Init != nil {
					check(s.Init, 0)
				}
			case *ast.ExprStmt:
				check(s.X, 0)
			case *ast.ReturnStmt:
				if s.X != nil {
					check(s.X, 0)
				}
			case *ast.IfStmt:
				check(s.Cond, 0)
			case *ast.WhileStmt:
				check(s.Cond, 0)
			case *ast.ForStmt:
				if s.Cond != nil {
					check(s.Cond, 0)
				}
			case *ast.AcquireStmt:
				check(s.Lock, 0)
			case *ast.ReleaseStmt:
				check(s.Lock, 0)
			}
			return true
		})
	}
	return ok
}

func (a *applier) nameTaken(name string) bool {
	if a.file.Global(name) != nil || a.file.Struct(name) != nil || a.file.Func(name) != nil {
		return true
	}
	return false
}
