package transform

import (
	"fmt"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
)

// Operator shorthands for synthesized code.
const (
	ltOp   = token.LT
	plusOp = token.PLUS
)

// applyIndirection implements the indirection transformation (Figure
// 2b): the per-process fields of a dynamically allocated structure are
// replaced by pointers into per-process memory areas.
//
// Concretely, for each field f of struct S in the decision:
//
//  1. the field's type T becomes T*;
//  2. every access x->f / x.f becomes *(x->f) / *(x.f);
//  3. after every allocation of an S (alloc(struct S) or
//     alloc(struct S, n)), code is injected that allocates the field's
//     storage from the allocating process's arena:
//     p->f = allocpp(T);   or a loop over the n elements.
//
// The two run-time costs the paper names — extra space for the
// pointers and one extra memory access per reference — arise naturally
// from the rewritten program.
func (a *applier) applyIndirection(d *Decision) (bool, error) {
	sd := a.file.Struct(d.Struct)
	si := a.info.Structs[d.Struct]
	if sd == nil || si == nil {
		return a.skip(d, "struct not found")
	}
	// Structs instantiated statically cannot be retrofitted with
	// per-process areas (the owner is unknown at initialization).
	for _, g := range a.file.Globals {
		sym := a.info.Globals[g.Name]
		if sym == nil {
			continue
		}
		if et := types.ElemType(sym.Type); et.Kind == types.StructK && et.Struct.Name == d.Struct {
			return a.skip(d, fmt.Sprintf("struct %q has static instances (%s)", d.Struct, g.Name))
		}
	}

	fieldSet := map[string]bool{}
	origType := map[string]*ast.TypeExpr{}
	for _, f := range d.Fields {
		fd := sd.Field(f)
		if fd == nil {
			return a.skip(d, fmt.Sprintf("field %q not found", f))
		}
		if len(fd.Dims) > 0 {
			return a.skip(d, fmt.Sprintf("field %q is an array", f))
		}
		fieldSet[f] = true
		origType[f] = fd.Type.Clone()
	}

	// (2) Wrap every access to a targeted field in a dereference. The
	// pre-transformation FieldUses map identifies the accesses; nodes
	// injected below are not in the map and stay unwrapped.
	ast.RewriteFile(a.file, func(e ast.Expr) ast.Expr {
		fe, ok := e.(*ast.FieldExpr)
		if !ok {
			return e
		}
		f := a.info.FieldUses[fe]
		if f == nil || f.Parent != si || !fieldSet[fe.Name] {
			return e
		}
		return &ast.DerefExpr{P: fe.P, X: fe}
	})

	// (1) Retype the fields.
	for _, f := range d.Fields {
		sd.Field(f).Type.Stars++
	}

	// (3) Inject arena allocations after every allocation site.
	for _, fn := range a.file.Funcs {
		a.injectInStmt(fn.Body, d, origType)
	}
	return true, nil
}

// injectInStmt walks statements, expanding allocation sites of the
// decision's struct. Blocks get statements appended in place; naked
// control-statement bodies are wrapped in blocks first.
func (a *applier) injectInStmt(s ast.Stmt, d *Decision, origType map[string]*ast.TypeExpr) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		var out []ast.Stmt
		for _, st := range x.List {
			a.injectInStmt(st, d, origType)
			out = append(out, st)
			out = append(out, a.allocInjections(st, d, origType)...)
		}
		x.List = out
	case *ast.IfStmt:
		x.Then = a.wrapIfAllocSite(x.Then, d, origType)
		if x.Else != nil {
			x.Else = a.wrapIfAllocSite(x.Else, d, origType)
		}
	case *ast.WhileStmt:
		x.Body = a.wrapIfAllocSite(x.Body, d, origType)
	case *ast.ForStmt:
		x.Body = a.wrapIfAllocSite(x.Body, d, origType)
	}
}

// wrapIfAllocSite processes a control-statement body: block bodies
// recurse, and a naked alloc-site statement is wrapped in a block so
// injections have somewhere to live.
func (a *applier) wrapIfAllocSite(s ast.Stmt, d *Decision, origType map[string]*ast.TypeExpr) ast.Stmt {
	if b, ok := s.(*ast.BlockStmt); ok {
		a.injectInStmt(b, d, origType)
		return b
	}
	a.injectInStmt(s, d, origType)
	if inj := a.allocInjections(s, d, origType); len(inj) > 0 {
		return &ast.BlockStmt{P: s.Pos(), List: append([]ast.Stmt{s}, inj...)}
	}
	return s
}

// allocInjections returns the statements to insert after st when it
// allocates the decision's struct.
func (a *applier) allocInjections(st ast.Stmt, d *Decision, origType map[string]*ast.TypeExpr) []ast.Stmt {
	var lhs ast.Expr
	var alloc *ast.AllocExpr
	switch x := st.(type) {
	case *ast.AssignStmt:
		if al, ok := x.RHS.(*ast.AllocExpr); ok {
			lhs, alloc = x.LHS, al
		}
	case *ast.DeclStmt:
		if x.Init != nil {
			if al, ok := x.Init.(*ast.AllocExpr); ok {
				lhs = ast.NewIdent(x.Decl.Name)
				alloc = al
			}
		}
	}
	if alloc == nil || !alloc.Type.Struct || alloc.Type.Name != d.Struct || alloc.Type.Stars != 0 {
		return nil
	}

	mkAlloc := func(f string) *ast.AllocExpr {
		return &ast.AllocExpr{Type: origType[f].Clone(), PerProc: true}
	}

	if alloc.Count == nil {
		// p = alloc(struct S);  =>  p->f = allocpp(T);
		var out []ast.Stmt
		for _, f := range d.Fields {
			out = append(out, &ast.AssignStmt{
				LHS: &ast.FieldExpr{X: ast.CloneExpr(lhs), Name: f, Arrow: true},
				RHS: mkAlloc(f),
			})
		}
		return out
	}

	// p = alloc(struct S, n);  =>
	//   for (int __gi = 0; __gi < n; __gi = __gi + 1) {
	//       p[__gi].f = allocpp(T);
	//   }
	a.gtSeq++
	iv := fmt.Sprintf("__ind%d", a.gtSeq)
	var body []ast.Stmt
	for _, f := range d.Fields {
		body = append(body, &ast.AssignStmt{
			LHS: &ast.FieldExpr{
				X:    &ast.IndexExpr{X: ast.CloneExpr(lhs), Index: ast.NewIdent(iv)},
				Name: f,
			},
			RHS: mkAlloc(f),
		})
	}
	loop := &ast.ForStmt{
		Init: &ast.DeclStmt{
			Decl: &ast.VarDecl{Storage: ast.Auto, Type: &ast.TypeExpr{Name: "int"}, Name: iv},
			Init: ast.NewInt(0),
		},
		Cond: ast.NewBinary(ltOp, ast.NewIdent(iv), ast.CloneExpr(alloc.Count)),
		Post: &ast.AssignStmt{
			LHS: ast.NewIdent(iv),
			RHS: ast.NewBinary(plusOp, ast.NewIdent(iv), ast.NewInt(1)),
		},
		Body: &ast.BlockStmt{List: body},
	}
	return []ast.Stmt{loop}
}
